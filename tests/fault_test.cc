/// End-to-end data-integrity and fault-injection matrix: CRC32C and the
/// page/log-record checksums built on it, the bounded-backoff retry
/// policy, the deterministic seeded io::FaultInjector (EIO, torn writes,
/// bit flips, named crash points), buffer-pool checksum verification and
/// media auto-repair (archive + live log page rebuild), the background
/// scrubber, archived-segment CRC enforcement, shipper reconnect, and a
/// randomized crash-point sweep: kill the engine at seeded crash points
/// (with torn in-flight writes), recover, and verify committed state.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "buffer/buffer_pool.h"
#include "common/crc32c.h"
#include "common/random.h"
#include "common/status.h"
#include "common/types.h"
#include "io/fault_injector.h"
#include "io/retry.h"
#include "io/volume.h"
#include "log/log_record.h"
#include "log/log_storage.h"
#include "page/page.h"
#include "page/slotted_page.h"
#include "repl/archive.h"
#include "repl/framing.h"
#include "repl/replica.h"
#include "repl/shipper.h"
#include "sm/options.h"
#include "sm/session.h"
#include "sm/storage_manager.h"

namespace shoremt {
namespace {

// ------------------------------------------------------------- helpers ----

/// Creates (and later removes) a throwaway directory under cwd.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "./fault_test.XXXXXX";
    char* d = ::mkdtemp(tmpl);
    EXPECT_NE(d, nullptr);
    if (d != nullptr) path_ = d;
  }
  ~TempDir() {
    if (!path_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

sm::StorageOptions EngineOptions(size_t segment_bytes) {
  sm::StorageOptions o = sm::StorageOptions::ForStage(sm::Stage::kFinal);
  o.log.segment_bytes = segment_bytes;
  o.buffer.enable_cleaner = false;
  o.checkpoint_daemon = false;
  return o;
}

std::vector<uint8_t> Row(uint64_t key) {
  std::vector<uint8_t> payload(64);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(key * 7 + i);
  }
  return payload;
}

/// Finds the first stamped heap data page on the volume (a page whose
/// write-back went through the pool's checksum stamp). Returns
/// kInvalidPageNum when none exists.
PageNum FindStampedDataPage(io::Volume* volume, std::vector<uint8_t>* img) {
  img->assign(kPageSize, 0);
  for (PageNum p = 1; p < volume->NumPages(); ++p) {
    if (!volume->ReadPage(p, img->data()).ok()) continue;
    const page::PageHeader* h = page::HeaderOf(img->data());
    if (h->magic == page::kPageMagic && h->type == page::PageType::kData &&
        h->slot_count > 0 && h->checksum != 0) {
      return p;
    }
  }
  return kInvalidPageNum;
}

// --------------------------------------------------------------- CRC32C ----

TEST(Crc32cTest, KnownVectorAndExtendChaining) {
  // The canonical CRC32C check vector (RFC 3720 appendix).
  const char* digits = "123456789";
  EXPECT_EQ(Crc32c(digits, 9), 0xE3069283u);
  // Extend chains partial buffers into the whole-buffer result.
  uint32_t chained = Crc32cExtend(Crc32cExtend(0, digits, 4), digits + 4, 5);
  EXPECT_EQ(chained, 0xE3069283u);
  // Empty input is the identity.
  EXPECT_EQ(Crc32cExtend(0xDEADBEEF, digits, 0), 0xDEADBEEFu);
}

TEST(PageChecksumTest, StampVerifyAndDetectBitFlip) {
  std::vector<uint8_t> img(kPageSize);
  page::SlottedPage sp(img.data());
  sp.Init(7, 3, page::PageType::kData);
  std::vector<uint8_t> rec(80, 0x5A);
  ASSERT_TRUE(sp.Insert(rec).ok());

  // Unstamped (checksum word 0) passes vacuously: direct volume writes
  // and pre-checksum volumes are unverified, never false corruption.
  EXPECT_EQ(page::HeaderOf(img.data())->checksum, 0u);
  EXPECT_TRUE(page::VerifyPageChecksum(img.data()));

  page::StampPageChecksum(img.data());
  ASSERT_NE(page::HeaderOf(img.data())->checksum, 0u);
  EXPECT_TRUE(page::VerifyPageChecksum(img.data()));

  // A single flipped bit anywhere outside the checksum word fails the
  // verify — payload, header fields, and the magic itself.
  for (size_t off : {size_t{100}, size_t{4}, size_t{0}, kPageSize - 1}) {
    img[off] ^= 0x10;
    EXPECT_FALSE(page::VerifyPageChecksum(img.data())) << "offset " << off;
    img[off] ^= 0x10;
    EXPECT_TRUE(page::VerifyPageChecksum(img.data()));
  }

  // Re-stamping after a legitimate change produces a fresh valid stamp.
  ASSERT_TRUE(sp.Insert(rec).ok());
  EXPECT_FALSE(page::VerifyPageChecksum(img.data()));
  page::StampPageChecksum(img.data());
  EXPECT_TRUE(page::VerifyPageChecksum(img.data()));
}

TEST(LogRecordCrcTest, TrailingCrcDetectsCorruptedRecord) {
  log::LogRecord rec;
  rec.type = log::LogRecordType::kPageInsert;
  rec.txn = 42;
  rec.page = 9;
  rec.store = 3;
  rec.slot = 5;
  rec.after.assign(100, 0xAB);

  std::vector<uint8_t> wire;
  log::SerializeLogRecord(rec, &wire);
  ASSERT_EQ(wire.size(), rec.SerializedSize());

  log::LogRecord parsed;
  size_t consumed = 0;
  ASSERT_TRUE(log::DeserializeLogRecord(wire, &parsed, &consumed).ok());
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(parsed.after, rec.after);
  EXPECT_EQ(parsed.txn, rec.txn);

  // One corrupted payload byte fails the trailing CRC.
  std::vector<uint8_t> bad = wire;
  bad[log::kLogRecordHeaderSize + 10] ^= 0x01;
  Status st = log::DeserializeLogRecord(bad, &parsed, &consumed);
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();

  // A corrupted header byte (the length prefix aside) fails too.
  bad = wire;
  bad[6] ^= 0x80;  // slot field
  st = log::DeserializeLogRecord(bad, &parsed, &consumed);
  EXPECT_FALSE(st.ok());

  // A torn tail (record cut short) never parses as a whole record.
  std::vector<uint8_t> torn(wire.begin(), wire.end() - 3);
  EXPECT_FALSE(log::DeserializeLogRecord(torn, &parsed, &consumed).ok());
}

// ---------------------------------------------------------------- retry ----

TEST(RetryTest, TransientErrorsRetryUntilSuccess) {
  io::RetryPolicy policy;
  policy.max_retries = 4;
  policy.initial_backoff_ns = 1'000;
  policy.max_backoff_ns = 10'000;

  io::MemVolume volume;
  int calls = 0;
  uint32_t retries = 0;
  Status st = io::RetryTransient(
      &volume, policy,
      [&] {
        return ++calls < 3 ? Status::IOError("flaky") : Status::Ok();
      },
      &retries);
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
  // Retries and their backoff are charged to the volume's IoStats.
  EXPECT_EQ(volume.stats().retries.load(), 2u);
  EXPECT_GT(volume.stats().retry_backoff_ns.load(), 0u);
}

TEST(RetryTest, PermanentErrorsNeverRetry) {
  io::RetryPolicy policy;
  policy.initial_backoff_ns = 1'000;
  int calls = 0;
  uint32_t retries = 0;
  Status st = io::RetryTransient(
      nullptr, policy,
      [&] {
        ++calls;
        return Status::Corruption("bad bytes");
      },
      &retries);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retries, 0u);
}

TEST(RetryTest, BudgetExhaustionSurfacesTheError) {
  io::RetryPolicy policy;
  policy.max_retries = 2;
  policy.initial_backoff_ns = 1'000;
  int calls = 0;
  Status st = io::RetryTransient(nullptr, policy, [&] {
    ++calls;
    return Status::IOError("dead device");
  });
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_EQ(calls, 3);  // initial attempt + 2 retries
}

// ------------------------------------------------------- fault injector ----

TEST(FaultInjectorTest, TransientFailuresArePerPageAndBounded) {
  io::FaultOptions fo;
  fo.seed = 11;
  fo.read_error_rate = 1.0;  // every fresh read selects its page
  fo.transient_attempts = 2;
  io::FaultInjector inj(fo);

  // Page 5: exactly two injected failures per selection, then the next
  // selection re-arms — the per-page transiency a retry loop must ride.
  EXPECT_FALSE(inj.PreRead(5).ok());
  EXPECT_FALSE(inj.PreRead(5).ok());
  EXPECT_EQ(inj.injected_read_errors(), 2u);
}

TEST(FaultInjectorTest, CrashPointCountdownMakesDeviceDeadUntilReset) {
  io::FaultOptions fo;
  fo.seed = 3;
  fo.crash_tears_writes = false;
  io::FaultInjector inj(fo);
  inj.ArmCrashPoint("volume.read", 3);

  EXPECT_TRUE(inj.PreRead(1).ok());
  EXPECT_TRUE(inj.PreRead(2).ok());
  EXPECT_FALSE(inj.PreRead(3).ok()) << "third hit crashes";
  EXPECT_TRUE(inj.crashed());
  EXPECT_EQ(inj.injected_crashes(), 1u);

  // Crashed: EVERY hooked operation fails, not just reads.
  size_t torn = 0;
  EXPECT_FALSE(inj.PreWrite(9, kPageSize, &torn).ok());
  EXPECT_FALSE(inj.PreAppend(128, &torn).ok());

  inj.Reset();
  EXPECT_FALSE(inj.crashed());
  EXPECT_TRUE(inj.PreRead(3).ok());
  EXPECT_TRUE(inj.PreWrite(9, kPageSize, &torn).ok());
}

TEST(FaultInjectorTest, BitFlipMutatesExactlyOneBit) {
  io::FaultOptions fo;
  fo.seed = 5;
  fo.bit_flip_rate = 1.0;
  io::FaultInjector inj(fo);
  std::vector<uint8_t> buf(256, 0);
  inj.PostRead(1, buf.data(), buf.size());
  EXPECT_EQ(inj.injected_bit_flips(), 1u);
  int set_bits = 0;
  for (uint8_t b : buf) set_bits += __builtin_popcount(b);
  EXPECT_EQ(set_bits, 1);
}

// --------------------------------------------- pool checksum + scrubber ----

TEST(BufferPoolFaultTest, CorruptionWithoutRepairSourceSurfaces) {
  io::MemVolume volume;
  ASSERT_TRUE(volume.Extend(4).ok());
  std::vector<uint8_t> img(kPageSize);
  page::SlottedPage sp(img.data());
  sp.Init(2, 1, page::PageType::kData);
  ASSERT_TRUE(sp.Insert(Row(1)).ok());
  page::StampPageChecksum(img.data());
  img[200] ^= 0x08;  // silent media corruption under a valid stamp
  ASSERT_TRUE(volume.WritePage(2, img.data()).ok());

  buffer::BufferPool pool(&volume, buffer::BufferPoolOptions{});
  auto h = pool.FixPage(2, sync::LatchMode::kShared);
  ASSERT_FALSE(h.ok()) << "corrupt image must never be served";
  EXPECT_EQ(h.status().code(), StatusCode::kCorruption)
      << h.status().ToString();
  EXPECT_GE(pool.stats().checksum_failures.load(), 1u);
}

TEST(BufferPoolFaultTest, ScrubberFindsAndRepairsColdPage) {
  io::MemVolume volume;
  ASSERT_TRUE(volume.Extend(6).ok());
  std::vector<std::vector<uint8_t>> pristine(6,
                                             std::vector<uint8_t>(kPageSize));
  for (PageNum p = 1; p <= 4; ++p) {
    page::SlottedPage sp(pristine[p].data());
    sp.Init(p, 1, page::PageType::kData);
    ASSERT_TRUE(sp.Insert(Row(p)).ok());
    page::StampPageChecksum(pristine[p].data());
    ASSERT_TRUE(volume.WritePage(p, pristine[p].data()).ok());
  }
  // Damage page 3 on the media (under its valid stamp).
  std::vector<uint8_t> bad = pristine[3];
  bad[100] ^= 0x01;
  ASSERT_TRUE(volume.WritePage(3, bad.data()).ok());

  buffer::BufferPool pool(&volume, buffer::BufferPoolOptions{});
  pool.SetPageRepairer([&](PageNum page, uint8_t* out) {
    std::memcpy(out, pristine[page].data(), kPageSize);
    return volume.WritePage(page, out);
  });

  ASSERT_TRUE(pool.ScrubPass(16).ok());
  EXPECT_GE(pool.stats().scrub_pages.load(), 4u);
  EXPECT_EQ(pool.stats().checksum_failures.load(), 1u);
  EXPECT_EQ(pool.stats().pages_repaired.load(), 1u);

  // The MEDIA copy is healed, byte-identical to the pristine image.
  std::vector<uint8_t> now(kPageSize);
  ASSERT_TRUE(volume.ReadPage(3, now.data()).ok());
  EXPECT_EQ(std::memcmp(now.data(), pristine[3].data(), kPageSize), 0);
}

TEST(BufferPoolFaultTest, ScrubberDaemonRunsInBackground) {
  io::MemVolume volume;
  ASSERT_TRUE(volume.Extend(8).ok());
  buffer::BufferPoolOptions opts;
  opts.enable_scrubber = true;
  opts.scrub_interval_us = 500;
  opts.scrub_pages_per_pass = 4;
  buffer::BufferPool pool(&volume, opts);
  for (int spins = 0; spins < 4000; ++spins) {
    if (pool.stats().scrub_pages.load() > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(pool.stats().scrub_pages.load(), 0u);
}

TEST(BufferPoolFaultTest, PrefetchErrorSurfacesToFixer) {
  io::MemVolume volume;
  ASSERT_TRUE(volume.Extend(8).ok());
  std::vector<uint8_t> img(kPageSize);
  page::SlottedPage sp(img.data());
  sp.Init(2, 1, page::PageType::kData);
  page::StampPageChecksum(img.data());
  ASSERT_TRUE(volume.WritePage(2, img.data()).ok());

  buffer::BufferPoolOptions opts;
  opts.io.retry_initial_backoff_ns = 1'000;
  opts.io.retry_max_backoff_ns = 10'000;
  buffer::BufferPool pool(&volume, opts);

  io::FaultOptions fo;
  fo.seed = 9;
  fo.read_error_rate = 1.0;
  fo.transient_attempts = 0;  // sticky: the page is a dead sector
  io::FaultInjector inj(fo);
  volume.set_fault_injector(&inj);

  PageNum pages[] = {2};
  pool.PrefetchPages(pages);
  for (int spins = 0; spins < 4000; ++spins) {
    if (pool.stats().prefetch_errors.load() > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(pool.stats().prefetch_errors.load(), 0u);

  // The failed detached read must surface as an error, never a hang or a
  // silent empty frame. (The fixer's own retried read also fails — the
  // sector is stick-dead.)
  auto h = pool.FixPage(2, sync::LatchMode::kShared);
  EXPECT_FALSE(h.ok());

  // Once the media recovers, the same page fixes cleanly (any stale
  // recorded prefetch error is consumed, not served forever).
  volume.set_fault_injector(nullptr);
  auto h2 = pool.FixPage(2, sync::LatchMode::kShared);
  EXPECT_TRUE(h2.ok()) << h2.status().ToString();
}

// ----------------------------------------------- engine-level integrity ----

TEST(SmFaultTest, TransientReadErrorsCompleteViaRetry) {
  io::MemVolume volume;
  log::LogStorage wal;
  sm::StorageOptions opts = EngineOptions(0);
  constexpr uint64_t kRows = 200;
  {
    auto db = std::move(*sm::StorageManager::Open(opts, &volume, &wal));
    auto session = db->OpenSession();
    ASSERT_TRUE(session->Begin().ok());
    auto table = session->CreateTable("t");
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(session->Commit().ok());
    for (uint64_t k = 0; k < kRows; ++k) {
      ASSERT_TRUE(session->Begin().ok());
      ASSERT_TRUE(session->Insert(*table, k, Row(k)).ok());
      ASSERT_TRUE(session->Commit().ok());
    }
    // Checkpoint so the reopen's redo pass has nothing to rebuild from
    // the log: every post-restart read must come off the (flaky) media.
    ASSERT_TRUE(db->pool()->CleanerPass(0).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(db->Shutdown().ok());
  }

  // Reopen with a flaky device: every injected EIO is transient (the page
  // succeeds within the retry budget), so recovery and a full read pass
  // complete without a single surfaced error.
  io::FaultOptions fo;
  fo.seed = 1234;
  fo.read_error_rate = 0.5;
  fo.transient_attempts = 1;
  io::FaultInjector inj(fo);
  volume.set_fault_injector(&inj);
  opts.buffer.io.max_retries = 6;
  opts.buffer.io.retry_initial_backoff_ns = 1'000;
  opts.buffer.io.retry_max_backoff_ns = 20'000;

  auto reopened = sm::StorageManager::Open(opts, &volume, &wal);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& db = *reopened;
  auto session = db->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  auto table = session->OpenTable("t");
  ASSERT_TRUE(table.ok());
  for (uint64_t k = 0; k < kRows; ++k) {
    auto got = session->Read(*table, k);
    ASSERT_TRUE(got.ok()) << "key " << k << ": " << got.status().ToString();
    auto want = Row(k);
    EXPECT_TRUE(std::equal(got->begin(), got->end(), want.begin()));
  }
  ASSERT_TRUE(session->Commit().ok());
  volume.set_fault_injector(nullptr);

  EXPECT_GT(inj.injected_read_errors(), 0u) << "the schedule injected noise";
  EXPECT_GT(volume.stats().retries.load(), 0u) << "and retries absorbed it";
}

TEST(SmFaultTest, BitFlipDetectAndRepairByteIdentical) {
  io::MemVolume volume;
  log::LogStorage wal;
  sm::StorageOptions opts = EngineOptions(0);
  constexpr uint64_t kRows = 120;
  {
    auto db = std::move(*sm::StorageManager::Open(opts, &volume, &wal));
    auto session = db->OpenSession();
    ASSERT_TRUE(session->Begin().ok());
    auto table = session->CreateTable("t");
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(session->Commit().ok());
    for (uint64_t k = 0; k < kRows; ++k) {
      ASSERT_TRUE(session->Begin().ok());
      ASSERT_TRUE(session->Insert(*table, k, Row(k)).ok());
      ASSERT_TRUE(session->Commit().ok());
    }
    // Checkpoint before shutdown: without it, reopen would redo the whole
    // log and rebuild every page in memory without ever reading the
    // damaged media — masking the flip instead of repairing it.
    ASSERT_TRUE(db->pool()->CleanerPass(0).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    ASSERT_TRUE(db->Shutdown().ok());
  }

  // Flip one bit in a stamped data page directly on the media.
  std::vector<uint8_t> pristine;
  PageNum victim = FindStampedDataPage(&volume, &pristine);
  ASSERT_NE(victim, kInvalidPageNum);
  std::vector<uint8_t> bad = pristine;
  bad[300] ^= 0x40;
  ASSERT_TRUE(volume.WritePage(victim, bad.data()).ok());

  // Reopen: the first read-in of the damaged page detects the flip and
  // rebuilds the image from the log — no surfaced error, no lost row.
  auto reopened = sm::StorageManager::Open(opts, &volume, &wal);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& db = *reopened;
  auto session = db->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  auto table = session->OpenTable("t");
  ASSERT_TRUE(table.ok());
  for (uint64_t k = 0; k < kRows; ++k) {
    auto got = session->Read(*table, k);
    ASSERT_TRUE(got.ok()) << "key " << k << ": " << got.status().ToString();
    auto want = Row(k);
    EXPECT_TRUE(std::equal(got->begin(), got->end(), want.begin()));
  }
  ASSERT_TRUE(session->Commit().ok());
  EXPECT_GE(db->pool()->stats().checksum_failures.load(), 1u);
  EXPECT_GE(db->pool()->stats().pages_repaired.load(), 1u);

  // The healed MEDIA image is byte-identical to the pre-damage one.
  std::vector<uint8_t> healed(kPageSize);
  ASSERT_TRUE(volume.ReadPage(victim, healed.data()).ok());
  EXPECT_EQ(std::memcmp(healed.data(), pristine.data(), kPageSize), 0);
}

TEST(SmFaultTest, BitFlipRepairFromArchivePlusLiveLog) {
  TempDir dir;
  io::MemVolume volume;
  log::LogStorage wal(0, 4096);
  sm::StorageOptions opts = EngineOptions(4096);
  opts.log.archive_dir = dir.path();
  constexpr uint64_t kRows = 300;
  {
    auto db = std::move(*sm::StorageManager::Open(opts, &volume, &wal));
    auto session = db->OpenSession();
    ASSERT_TRUE(session->Begin().ok());
    auto table = session->CreateTable("t");
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(session->Commit().ok());
    for (uint64_t k = 0; k < kRows; ++k) {
      ASSERT_TRUE(session->Begin().ok());
      ASSERT_TRUE(session->Insert(*table, k, Row(k)).ok());
      ASSERT_TRUE(session->Commit().ok());
      if (k % 60 == 59) {
        // Flush + checkpoint so early segments recycle INTO the archive:
        // part of the victim page's history then lives only there.
        ASSERT_TRUE(db->pool()->CleanerPass(0).ok());
        ASSERT_TRUE(db->Checkpoint().ok());
      }
    }
    ASSERT_TRUE(db->Shutdown().ok());
    EXPECT_GT(wal.segments_archived(), 0u);
  }

  std::vector<uint8_t> pristine;
  PageNum victim = FindStampedDataPage(&volume, &pristine);
  ASSERT_NE(victim, kInvalidPageNum);
  std::vector<uint8_t> bad = pristine;
  bad[64] ^= 0x02;
  ASSERT_TRUE(volume.WritePage(victim, bad.data()).ok());

  auto reopened = sm::StorageManager::Open(opts, &volume, &wal);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& db = *reopened;
  auto session = db->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  auto table = session->OpenTable("t");
  ASSERT_TRUE(table.ok());
  for (uint64_t k = 0; k < kRows; ++k) {
    auto got = session->Read(*table, k);
    ASSERT_TRUE(got.ok()) << "key " << k << ": " << got.status().ToString();
    auto want = Row(k);
    EXPECT_TRUE(std::equal(got->begin(), got->end(), want.begin()));
  }
  ASSERT_TRUE(session->Commit().ok());
  EXPECT_GE(db->pool()->stats().pages_repaired.load(), 1u);
}

// ---------------------------------------------------- archive integrity ----

TEST(ArchiveIntegrityTest, CorruptedArchivedSegmentIsRejected) {
  TempDir dir;
  log::LogStorage storage(0, /*segment_bytes=*/64);
  storage.set_archive_dir(dir.path());
  for (uint8_t round = 0; round < 10; ++round) {
    std::vector<uint8_t> rec(40, round);
    ASSERT_TRUE(storage.Append(rec).ok());
  }
  ASSERT_EQ(storage.Recycle(Lsn{385}), 6u);

  // Flip one byte inside the second archived segment file.
  std::string seg = dir.path() + "/seg-00000000000000000064.log";
  {
    std::fstream f(seg, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(10);
    char c = 0;
    f.read(&c, 1);
    c ^= 0x20;
    f.seekp(10);
    f.write(&c, 1);
  }

  auto archive = log::LogArchive::Open(dir.path());
  ASSERT_TRUE(archive.ok()) << archive.status().ToString();
  std::vector<uint8_t> out;
  // Intact segments still read fine...
  EXPECT_TRUE(archive->Read(0, 64, &out).ok());
  // ...but any range touching the damaged one fails its manifest CRC.
  Status st = archive->Read(64, 64, &out);
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
  EXPECT_FALSE(archive->Read(0, 384, &out).ok());
}

TEST(ArchiveIntegrityTest, RestoreToLsnRejectsCorruptedArchive) {
  TempDir dir;
  io::MemVolume volume;
  log::LogStorage wal(0, 4096);
  sm::StorageOptions o = EngineOptions(4096);
  o.log.archive_dir = dir.path();

  Lsn target;
  {
    auto db = std::move(*sm::StorageManager::Open(o, &volume, &wal));
    auto session = db->OpenSession();
    ASSERT_TRUE(session->Begin().ok());
    auto table = session->CreateTable("t");
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(session->Commit().ok());
    for (int round = 0; round < 12; ++round) {
      ASSERT_TRUE(session->Begin().ok());
      for (int i = 0; i < 20; ++i) {
        uint64_t key = static_cast<uint64_t>(round) * 20 + i;
        ASSERT_TRUE(session->Insert(*table, key, Row(key)).ok());
      }
      ASSERT_TRUE(session->Commit().ok());
      if (round % 4 == 3) {
        ASSERT_TRUE(db->pool()->CleanerPass(0).ok());
        ASSERT_TRUE(db->Checkpoint().ok());
      }
    }
    target = db->log()->durable_lsn();
    ASSERT_TRUE(db->Shutdown().ok());
    ASSERT_GT(wal.segments_archived(), 0u);
  }

  // Damage the first archived segment, then attempt a restore across it.
  std::string first;
  for (const auto& e : std::filesystem::directory_iterator(dir.path())) {
    std::string name = e.path().filename().string();
    if (name.rfind("seg-", 0) == 0 &&
        (first.empty() || e.path().string() < first)) {
      first = e.path().string();
    }
  }
  ASSERT_FALSE(first.empty());
  {
    std::fstream f(first, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(20);
    char c = 0x7F;
    f.write(&c, 1);
  }

  auto restored = repl::RestoreToLsn(dir.path(), &wal, target,
                                     EngineOptions(4096));
  ASSERT_FALSE(restored.ok()) << "restore must refuse untrusted bytes";
}

// ---------------------------------------------------- shipper reconnect ----

/// Loopback socket pair, closed by the destructor.
struct Loopback {
  int fds[2] = {-1, -1};
  Loopback() { EXPECT_TRUE(repl::MakeSocketPair(fds).ok()); }
  ~Loopback() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
};

TEST(ShipperReconnectTest, ResumesAfterReplicaLossAndLagCountsAcrossGap) {
  Loopback net1;
  io::MemVolume volume;
  log::LogStorage wal(0, 4096);
  auto db =
      std::move(*sm::StorageManager::Open(EngineOptions(4096), &volume, &wal));
  repl::SegmentShipper::Options so;
  so.reconnect = true;
  so.poll_interval_ms = 1;
  so.reconnect_backoff_initial_ms = 1;
  so.reconnect_wait_budget_ms = 30'000;
  repl::SegmentShipper shipper(db->log(), net1.fds[0], so);
  shipper.Start();

  auto session = db->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  auto table = session->CreateTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session->Commit().ok());

  // First replica consumes batch A, then dies.
  {
    io::MemVolume rvolume;
    log::LogStorage rwal(0, 4096);
    repl::Replica::Options ro;
    ro.storage = EngineOptions(4096);
    repl::Replica replica(&rvolume, &rwal, ro);
    ASSERT_TRUE(replica.Start(net1.fds[1]).ok());
    ASSERT_TRUE(session->Begin().ok());
    for (uint64_t k = 0; k < 50; ++k) {
      ASSERT_TRUE(session->Insert(*table, k, Row(k)).ok());
    }
    ASSERT_TRUE(session->Commit().ok());
    ASSERT_TRUE(replica.WaitReplayed(wal.size() + 1, 10'000))
        << replica.error().ToString();
    replica.Stop();
  }

  // Disconnected: batch B lands on the primary; the lag gauge keeps
  // counting against the last pre-disconnect ack instead of resetting.
  ASSERT_TRUE(session->Begin().ok());
  for (uint64_t k = 50; k < 100; ++k) {
    ASSERT_TRUE(session->Insert(*table, k, Row(k)).ok());
  }
  ASSERT_TRUE(session->Commit().ok());
  EXPECT_GT(shipper.lag_bytes(), 0u);

  // A fresh replica connects through ReplaceSocket; shipping resumes from
  // ITS kHello cursor (zero — it re-streams the whole log), so the new
  // replica converges on batches A and B.
  Loopback net2;
  shipper.ReplaceSocket(net2.fds[0]);
  io::MemVolume rvolume2;
  log::LogStorage rwal2(0, 4096);
  repl::Replica::Options ro2;
  ro2.storage = EngineOptions(4096);
  repl::Replica replica2(&rvolume2, &rwal2, ro2);
  ASSERT_TRUE(replica2.Start(net2.fds[1]).ok());
  ASSERT_TRUE(replica2.WaitReplayed(wal.size() + 1, 10'000))
      << replica2.error().ToString();
  EXPECT_EQ(shipper.reconnects(), 1u);

  auto rsession = replica2.sm()->OpenSession();
  ASSERT_TRUE(rsession->Begin().ok());
  auto rtable = rsession->OpenTable("t");
  ASSERT_TRUE(rtable.ok());
  for (uint64_t k = 0; k < 100; ++k) {
    auto got = rsession->Read(*rtable, k);
    ASSERT_TRUE(got.ok()) << "key " << k << ": " << got.status().ToString();
  }
  ASSERT_TRUE(rsession->Commit().ok());
  rsession.reset();

  replica2.Stop();
  shipper.Stop();
  EXPECT_TRUE(shipper.status().ok()) << shipper.status().ToString();
}

// --------------------------------------------------- crash-point sweeps ----

/// One randomized kill/recover/verify cycle: run a seeded transactional
/// workload with a seeded crash point armed (torn in-flight writes on),
/// then reset the "device", recover, and check that exactly the
/// committed state survived.
void RunCrashCycle(uint64_t seed) {
  io::MemVolume volume;
  log::LogStorage wal(0, 4096);
  io::FaultOptions fo;
  fo.seed = seed;
  fo.crash_tears_writes = true;
  io::FaultInjector inj(fo);
  volume.set_fault_injector(&inj);
  wal.set_fault_injector(&inj);

  sm::StorageOptions opts = EngineOptions(4096);
  opts.buffer.io.retry_initial_backoff_ns = 1'000;
  opts.buffer.io.retry_max_backoff_ns = 10'000;

  Rng rng(seed * 0x9E3779B9u + 1);
  std::map<uint64_t, std::vector<uint8_t>> committed;
  {
    auto opened = sm::StorageManager::Open(opts, &volume, &wal);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    auto& db = *opened;
    auto* ddl = db->Begin();
    auto table = db->CreateTable(ddl, "t");
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(db->Commit(ddl).ok());

    static const char* kPoints[] = {"log.append", "volume.write",
                                    "volume.read"};
    inj.ArmCrashPoint(kPoints[seed % 3], 1 + rng.Uniform(12));

    int total_txns = 10 + static_cast<int>(rng.Uniform(15));
    for (int i = 0; i < total_txns && !inj.crashed(); ++i) {
      if (i % 4 == 3) (void)db->pool()->CleanerPass(16);  // drives writes
      auto* txn = db->Begin();
      std::map<uint64_t, std::vector<uint8_t>> delta = committed;
      int ops = 1 + static_cast<int>(rng.Uniform(6));
      bool ok = true;
      for (int j = 0; j < ops && ok; ++j) {
        uint64_t key = rng.Uniform(80);
        if (rng.Bernoulli(0.7)) {
          std::vector<uint8_t> payload(8 + rng.Uniform(90));
          for (auto& b : payload) b = static_cast<uint8_t>(rng.Next());
          ok = (delta.contains(key)
                    ? db->Update(txn, *table, key, payload)
                    : db->Insert(txn, *table, key, payload).status())
                   .ok();
          if (ok) delta[key] = payload;
        } else if (delta.contains(key)) {
          ok = db->Delete(txn, *table, key).ok();
          if (ok) delta.erase(key);
        }
      }
      if (!ok || rng.Bernoulli(0.2)) {
        (void)db->Abort(txn);  // may itself fail once the device is dead
        if (!ok) break;
      } else if (db->Commit(txn).ok()) {
        committed = std::move(delta);
      } else {
        break;  // commit lost to the crash: delta is NOT merged
      }
    }
    if (!inj.crashed()) inj.ForceCrash();  // power cut at end of schedule
    db->SimulateCrash();
  }

  // Power restored: the device works again; the torn tail and whatever
  // eviction half-wrote are what recovery must sort out.
  inj.Reset();
  auto reopened = sm::StorageManager::Open(opts, &volume, &wal);
  ASSERT_TRUE(reopened.ok())
      << "seed " << seed << ": " << reopened.status().ToString();
  auto& db = *reopened;
  auto table = db->OpenTable("t");
  ASSERT_TRUE(table.ok());
  auto* check = db->Begin();
  for (const auto& [key, payload] : committed) {
    auto read = db->Read(check, *table, key);
    ASSERT_TRUE(read.ok())
        << "lost committed key " << key << " (seed " << seed << ")";
    EXPECT_TRUE(std::equal(read->begin(), read->end(), payload.begin(),
                           payload.end()))
        << "corrupt committed key " << key << " (seed " << seed << ")";
  }
  uint64_t rows = 0;
  ASSERT_TRUE(db->Scan(check, *table, 0, UINT64_MAX,
                       [&](uint64_t key, std::span<const uint8_t>) {
                         EXPECT_TRUE(committed.contains(key))
                             << "leaked key " << key << " (seed " << seed
                             << ")";
                         ++rows;
                         return true;
                       })
                  .ok());
  EXPECT_EQ(rows, committed.size()) << "seed " << seed;
  ASSERT_TRUE(db->Commit(check).ok());

  // And the recovered engine still takes writes.
  auto* writer = db->Begin();
  ASSERT_TRUE(db->Insert(writer, *table, 777777, Row(7)).ok());
  ASSERT_TRUE(db->Commit(writer).ok());
}

class CrashPointSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrashPointSweep, CommittedStateSurvivesInjectedCrash) {
  // Each parameter covers a band of seeds so the suite stays ≥50 cycles
  // without 50 separate test registrations.
  uint64_t base = GetParam();
  for (uint64_t seed = base; seed < base + 6; ++seed) {
    RunCrashCycle(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashPointSweep,
                         ::testing::Values(100, 200, 300, 400, 500, 600, 700,
                                           800, 900, 1000),
                         [](const auto& info) {
                           return "band" + std::to_string(info.param);
                         });

TEST(SmFaultTest, TornLogTailAtCrashRecoversCommittedPrefix) {
  io::MemVolume volume;
  log::LogStorage wal(0, 4096);
  io::FaultOptions fo;
  fo.seed = 77;
  fo.crash_tears_writes = true;
  io::FaultInjector inj(fo);
  wal.set_fault_injector(&inj);

  sm::StorageOptions opts = EngineOptions(4096);
  std::map<uint64_t, std::vector<uint8_t>> committed;
  {
    auto db = std::move(*sm::StorageManager::Open(opts, &volume, &wal));
    auto* ddl = db->Begin();
    auto table = db->CreateTable(ddl, "t");
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(db->Commit(ddl).ok());

    // The crash fires mid-append a few commits in and TEARS that append:
    // a byte prefix of the flush reaches the device, the classic torn
    // log tail the recovery scan must stop at (record CRC + length).
    inj.ArmCrashPoint("log.append", 4);
    for (uint64_t k = 0; k < 50; ++k) {
      auto* txn = db->Begin();
      if (!db->Insert(txn, *table, k, Row(k)).ok()) {
        (void)db->Abort(txn);
        break;
      }
      if (!db->Commit(txn).ok()) break;
      committed[k] = Row(k);
    }
    EXPECT_TRUE(inj.crashed()) << "the armed crash point fired";
    EXPECT_EQ(inj.injected_crashes(), 1u);
    ASSERT_FALSE(committed.empty());
    ASSERT_LT(committed.size(), 50u) << "some commits were lost to the crash";
    db->SimulateCrash();
  }

  inj.Reset();
  auto reopened = sm::StorageManager::Open(opts, &volume, &wal);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& db = *reopened;
  auto table = db->OpenTable("t");
  ASSERT_TRUE(table.ok());
  auto* check = db->Begin();
  for (const auto& [key, payload] : committed) {
    auto read = db->Read(check, *table, key);
    ASSERT_TRUE(read.ok()) << "lost committed key " << key;
    EXPECT_TRUE(std::equal(read->begin(), read->end(), payload.begin(),
                           payload.end()));
  }
  ASSERT_TRUE(db->Commit(check).ok());
}

}  // namespace
}  // namespace shoremt
