#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "buffer/buffer_pool.h"
#include "buffer/frame_table.h"
#include "buffer/in_transit.h"
#include "common/random.h"
#include "common/types.h"
#include "io/volume.h"
#include "page/page.h"
#include "page/slotted_page.h"

namespace shoremt::buffer {
namespace {

using sync::LatchMode;

// ----------------------------------------------------------- FrameTable ---

class FrameTableTest : public ::testing::TestWithParam<TableKind> {
 protected:
  std::unique_ptr<FrameTable> Make(size_t cap = 256) {
    return MakeFrameTable(GetParam(), cap);
  }
};

TEST_P(FrameTableTest, InsertFindErase) {
  auto t = Make();
  EXPECT_TRUE(t->Insert(10, 1));
  EXPECT_TRUE(t->Insert(20, 2));
  EXPECT_FALSE(t->Insert(10, 3)) << "duplicate insert must fail";

  int pinned = -1;
  EXPECT_EQ(t->FindAndPin(10, [&](int f) { pinned = f; }), 1);
  EXPECT_EQ(pinned, 1);
  EXPECT_EQ(t->FindAndPin(99, [&](int) { FAIL(); }), -1);

  EXPECT_TRUE(t->EraseIf(10, [](int) { return true; }));
  EXPECT_EQ(t->FindAndPin(10, [&](int) {}), -1);
  EXPECT_FALSE(t->EraseIf(10, [](int) { return true; }));
}

TEST_P(FrameTableTest, EraseVetoedByCheck) {
  auto t = Make();
  ASSERT_TRUE(t->Insert(5, 7));
  EXPECT_FALSE(t->EraseIf(5, [](int) { return false; }));
  EXPECT_EQ(t->FindAndPin(5, [](int) {}), 7);
}

TEST_P(FrameTableTest, SizeTracksMappings) {
  auto t = Make();
  for (PageNum p = 1; p <= 100; ++p) {
    ASSERT_TRUE(t->Insert(p, static_cast<int>(p)));
  }
  EXPECT_EQ(t->Size(), 100u);
  for (PageNum p = 1; p <= 50; ++p) {
    ASSERT_TRUE(t->EraseIf(p, [](int) { return true; }));
  }
  EXPECT_EQ(t->Size(), 50u);
}

TEST_P(FrameTableTest, DenseFillStressesCollisions) {
  // Fill to table capacity; every mapping must remain findable (the cuckoo
  // strategy must relocate or overflow, never lose entries).
  constexpr size_t kN = 256;
  auto t = Make(kN);
  for (PageNum p = 1; p <= kN; ++p) {
    ASSERT_TRUE(t->Insert(p * 977, static_cast<int>(p)));
  }
  for (PageNum p = 1; p <= kN; ++p) {
    EXPECT_EQ(t->FindAndPin(p * 977, [](int) {}), static_cast<int>(p));
  }
}

TEST_P(FrameTableTest, ConcurrentMixedOperations) {
  auto t = Make(1024);
  std::atomic<bool> stop{false};
  // Writer threads churn distinct key ranges; a reader thread hammers
  // lookups. No crashes, no lost updates within a range.
  std::vector<std::thread> workers;
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&, w] {
      for (int round = 0; round < 300; ++round) {
        PageNum base = static_cast<PageNum>(w) * 10000 + 1;
        for (PageNum p = base; p < base + 20; ++p) {
          t->Insert(p, static_cast<int>(p % 997));
        }
        for (PageNum p = base; p < base + 20; ++p) {
          t->EraseIf(p, [](int) { return true; });
        }
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load()) {
      for (PageNum p = 1; p < 60; ++p) {
        t->FindOptimistic(p);
        t->FindAndPin(p * 10000 + 3, [](int) {});
      }
    }
  });
  for (auto& w : workers) w.join();
  stop.store(true);
  reader.join();
  EXPECT_EQ(t->Size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, FrameTableTest,
                         ::testing::Values(TableKind::kGlobalChained,
                                           TableKind::kPerBucketChained,
                                           TableKind::kCuckoo),
                         [](const auto& info) {
                           switch (info.param) {
                             case TableKind::kGlobalChained:
                               return "GlobalChained";
                             case TableKind::kPerBucketChained:
                               return "PerBucket";
                             case TableKind::kCuckoo:
                               return "Cuckoo";
                           }
                           return "Unknown";
                         });

// ------------------------------------------------------------ InTransit ---

TEST(InTransitTest, WaitBlocksUntilRemove) {
  InTransitTable transit(4);
  transit.Add(42);
  std::atomic<bool> cleared{false};
  std::thread waiter([&] {
    transit.WaitUntilClear(42);
    cleared.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(cleared.load());
  transit.Remove(42);
  waiter.join();
  EXPECT_TRUE(cleared.load());
  EXPECT_EQ(transit.adds(), 1u);
  EXPECT_EQ(transit.waits(), 1u);
}

TEST(InTransitTest, ClearPageDoesNotWait) {
  InTransitTable transit(1);
  transit.Add(7);
  transit.WaitUntilClear(8);  // Different page: returns immediately.
  EXPECT_EQ(transit.waits(), 0u);
  transit.Remove(7);
}

// ----------------------------------------------------------- BufferPool ---

BufferPoolOptions SmallPool(size_t frames, TableKind kind = TableKind::kCuckoo) {
  BufferPoolOptions o;
  o.frame_count = frames;
  o.table_kind = kind;
  return o;
}

class BufferPoolTest : public ::testing::TestWithParam<TableKind> {
 protected:
  BufferPoolTest() {
    EXPECT_TRUE(vol_.Extend(512).ok());
  }
  io::MemVolume vol_;
};

TEST_P(BufferPoolTest, NewPageWriteReadBack) {
  BufferPool pool(&vol_, SmallPool(16, GetParam()));
  {
    auto h = pool.NewPage(3);
    ASSERT_TRUE(h.ok());
    page::SlottedPage sp(h->data());
    sp.Init(3, 1, page::PageType::kData);
    uint8_t rec[] = {1, 2, 3};
    ASSERT_TRUE(sp.Insert(rec).ok());
    h->MarkDirty(Lsn{100}, Lsn{100});
  }
  {
    auto h = pool.FixPage(3, LatchMode::kShared);
    ASSERT_TRUE(h.ok());
    page::SlottedPage sp(const_cast<uint8_t*>(h->data()));
    auto rec = sp.Read(0);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ((*rec)[2], 3);
    EXPECT_EQ(sp.header()->page_lsn, 100u);
  }
  EXPECT_EQ(pool.stats().hits.load(), 1u);
}

TEST_P(BufferPoolTest, EvictionPersistsDirtyPages) {
  // Pool of 8 frames; touch 64 pages so each is evicted multiple times.
  BufferPool pool(&vol_, SmallPool(8, GetParam()));
  for (PageNum p = 1; p <= 64; ++p) {
    auto h = pool.NewPage(p);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    page::SlottedPage sp(h->data());
    sp.Init(p, 1, page::PageType::kData);
    std::vector<uint8_t> rec(8, static_cast<uint8_t>(p));
    ASSERT_TRUE(sp.Insert(rec).ok());
    h->MarkDirty(Lsn{p}, Lsn{p});
  }
  EXPECT_GT(pool.stats().evictions.load(), 0u);
  EXPECT_GT(pool.stats().dirty_writebacks.load(), 0u);
  // Re-read everything; contents must have survived eviction round trips.
  for (PageNum p = 1; p <= 64; ++p) {
    auto h = pool.FixPage(p, LatchMode::kShared);
    ASSERT_TRUE(h.ok());
    page::SlottedPage sp(const_cast<uint8_t*>(h->data()));
    auto rec = sp.Read(0);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ((*rec)[0], static_cast<uint8_t>(p));
  }
}

TEST_P(BufferPoolTest, PinnedPagesAreNotEvicted) {
  BufferPool pool(&vol_, SmallPool(4, GetParam()));
  auto pinned = pool.NewPage(1);
  ASSERT_TRUE(pinned.ok());
  std::memset(pinned->data(), 0xEE, 64);
  // Churn through many other pages, forcing eviction pressure.
  for (PageNum p = 2; p <= 20; ++p) {
    auto h = pool.NewPage(p);
    ASSERT_TRUE(h.ok());
    page::FormatPage(h->data(), p, 1, page::PageType::kData);
    h->MarkDirty(Lsn{p}, Lsn{p});
  }
  // The pinned frame still holds our bytes.
  EXPECT_EQ(pinned->data()[10], 0xEE);
}

TEST_P(BufferPoolTest, AllFramesPinnedReportsBusy) {
  BufferPool pool(&vol_, SmallPool(4, GetParam()));
  std::vector<PageHandle> held;
  for (PageNum p = 1; p <= 4; ++p) {
    auto h = pool.NewPage(p);
    ASSERT_TRUE(h.ok());
    held.push_back(std::move(*h));
  }
  auto fifth = pool.FixPage(5, LatchMode::kShared);
  EXPECT_TRUE(fifth.status().IsBusy());
  held.clear();
  auto again = pool.FixPage(1, LatchMode::kShared);
  EXPECT_TRUE(again.ok());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, BufferPoolTest,
                         ::testing::Values(TableKind::kGlobalChained,
                                           TableKind::kPerBucketChained,
                                           TableKind::kCuckoo),
                         [](const auto& info) {
                           switch (info.param) {
                             case TableKind::kGlobalChained:
                               return "GlobalChained";
                             case TableKind::kPerBucketChained:
                               return "PerBucket";
                             case TableKind::kCuckoo:
                               return "Cuckoo";
                           }
                           return "Unknown";
                         });

TEST(BufferPoolSingleTest, OptimisticPinCountsHotHits) {
  io::MemVolume vol;
  ASSERT_TRUE(vol.Extend(64).ok());
  BufferPool pool(&vol, SmallPool(16));
  // First fix: miss. Keep one pin so the page stays "hot" (pinned).
  auto keeper = pool.NewPage(1);
  ASSERT_TRUE(keeper.ok());
  keeper->DowngradeLatch();  // Keep the pin; shared fixes must coexist.
  for (int i = 0; i < 100; ++i) {
    auto h = pool.FixPage(1, LatchMode::kShared);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_GE(pool.stats().optimistic_hits.load(), 100u);
}

TEST(BufferPoolSingleTest, PinIfPinnedDisabledUsesLockedPath) {
  io::MemVolume vol;
  ASSERT_TRUE(vol.Extend(64).ok());
  BufferPoolOptions o = SmallPool(16);
  o.pin_if_pinned = false;
  BufferPool pool(&vol, o);
  auto keeper = pool.NewPage(1);
  ASSERT_TRUE(keeper.ok());
  keeper->DowngradeLatch();  // Keep the pin; shared fixes must coexist.
  for (int i = 0; i < 10; ++i) {
    auto h = pool.FixPage(1, LatchMode::kShared);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_EQ(pool.stats().optimistic_hits.load(), 0u);
}

TEST(BufferPoolSingleTest, WalHookRunsBeforeDirtyWriteback) {
  io::MemVolume vol;
  ASSERT_TRUE(vol.Extend(256).ok());
  std::vector<uint64_t> flushed_lsns;
  BufferPool pool(&vol, SmallPool(4), [&](Lsn lsn) {
    flushed_lsns.push_back(lsn.value);
    return Status::Ok();
  });
  for (PageNum p = 1; p <= 12; ++p) {
    auto h = pool.NewPage(p);
    ASSERT_TRUE(h.ok());
    page::FormatPage(h->data(), p, 1, page::PageType::kData);
    h->MarkDirty(Lsn{p * 10}, Lsn{p * 10});
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_GE(flushed_lsns.size(), 12u);
  // Every flushed LSN matches the page LSN stamped by MarkDirty.
  for (uint64_t lsn : flushed_lsns) EXPECT_EQ(lsn % 10, 0u);
}

TEST(BufferPoolSingleTest, FlushPageClearsDirty) {
  io::MemVolume vol;
  ASSERT_TRUE(vol.Extend(64).ok());
  BufferPool pool(&vol, SmallPool(8));
  {
    auto h = pool.NewPage(2);
    ASSERT_TRUE(h.ok());
    page::FormatPage(h->data(), 2, 1, page::PageType::kData);
    h->MarkDirty(Lsn{5}, Lsn{5});
  }
  EXPECT_EQ(pool.ScanMinRecLsn().value, 5u);
  ASSERT_TRUE(pool.FlushPage(2).ok());
  EXPECT_EQ(pool.ScanMinRecLsn().value, 0u);
  // Flushing an uncached page is a no-op.
  EXPECT_TRUE(pool.FlushPage(200).ok());
}

TEST(BufferPoolSingleTest, ScanMinRecLsnFindsOldest) {
  io::MemVolume vol;
  ASSERT_TRUE(vol.Extend(64).ok());
  BufferPool pool(&vol, SmallPool(8));
  for (PageNum p = 1; p <= 3; ++p) {
    auto h = pool.NewPage(p);
    ASSERT_TRUE(h.ok());
    page::FormatPage(h->data(), p, 1, page::PageType::kData);
    h->MarkDirty(Lsn{100 - p * 10}, Lsn{100 - p * 10});  // 90, 80, 70.
  }
  EXPECT_EQ(pool.ScanMinRecLsn().value, 70u);
}

TEST(BufferPoolSingleTest, CleanerSweepWritesAndTracksLsn) {
  io::MemVolume vol;
  ASSERT_TRUE(vol.Extend(64).ok());
  BufferPool pool(&vol, SmallPool(8));
  for (PageNum p = 1; p <= 4; ++p) {
    auto h = pool.NewPage(p);
    ASSERT_TRUE(h.ok());
    page::FormatPage(h->data(), p, 1, page::PageType::kData);
    h->MarkDirty(Lsn{p * 7}, Lsn{p * 7});
  }
  ASSERT_TRUE(pool.CleanerSweep().ok());
  EXPECT_EQ(pool.stats().cleaner_writes.load(), 4u);
  EXPECT_EQ(pool.CleanerTrackedLsn().value, 28u);  // Newest seen.
  EXPECT_EQ(pool.ScanMinRecLsn().value, 0u);       // Everything clean.
}

TEST(BufferPoolSingleTest, BackgroundCleanerRuns) {
  io::MemVolume vol;
  ASSERT_TRUE(vol.Extend(64).ok());
  BufferPoolOptions o = SmallPool(8);
  o.enable_cleaner = true;
  o.cleaner_interval_us = 500;
  BufferPool pool(&vol, o);
  {
    auto h = pool.NewPage(1);
    ASSERT_TRUE(h.ok());
    page::FormatPage(h->data(), 1, 1, page::PageType::kData);
    h->MarkDirty(Lsn{1}, Lsn{1});
  }
  // Wait for at least one sweep to pick it up.
  for (int i = 0; i < 200 && pool.stats().cleaner_writes.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(pool.stats().cleaner_writes.load(), 0u);
}

TEST(BufferPoolSingleTest, HandleMoveTransfersOwnership) {
  io::MemVolume vol;
  ASSERT_TRUE(vol.Extend(64).ok());
  BufferPool pool(&vol, SmallPool(8));
  auto h = pool.NewPage(1);
  ASSERT_TRUE(h.ok());
  PageHandle moved = std::move(*h);
  EXPECT_TRUE(moved.valid());
  EXPECT_FALSE(h->valid());
  moved.Unfix();
  EXPECT_FALSE(moved.valid());
  // Page is evictable again: churn succeeds.
  for (PageNum p = 2; p <= 12; ++p) {
    ASSERT_TRUE(pool.NewPage(p).ok());
  }
}

TEST(BufferPoolSingleTest, DowngradeLatchAllowsReaders) {
  io::MemVolume vol;
  ASSERT_TRUE(vol.Extend(64).ok());
  BufferPool pool(&vol, SmallPool(8));
  auto w = pool.NewPage(1);
  ASSERT_TRUE(w.ok());
  w->DowngradeLatch();
  // A concurrent shared fix must now succeed without blocking.
  auto r = pool.FixPage(1, LatchMode::kShared);
  EXPECT_TRUE(r.ok());
}

TEST(BufferPoolSingleTest, ConcurrentFixStormKeepsDataIntact) {
  io::MemVolume vol;
  ASSERT_TRUE(vol.Extend(256).ok());
  BufferPool pool(&vol, SmallPool(32));
  // Seed 64 pages, each holding a counter record.
  for (PageNum p = 1; p <= 64; ++p) {
    auto h = pool.NewPage(p);
    ASSERT_TRUE(h.ok());
    page::SlottedPage sp(h->data());
    sp.Init(p, 1, page::PageType::kData);
    uint64_t zero = 0;
    ASSERT_TRUE(
        sp.Insert({reinterpret_cast<uint8_t*>(&zero), sizeof(zero)}).ok());
    h->MarkDirty(Lsn{1}, Lsn{1});
  }
  // 4 threads increment counters on random pages under EX latches.
  std::vector<std::thread> workers;
  constexpr int kOpsPerThread = 500;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(t + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        PageNum p = 1 + rng.Uniform(64);
        auto h = pool.FixPage(p, LatchMode::kExclusive);
        ASSERT_TRUE(h.ok());
        page::SlottedPage sp(h->data());
        auto rec = sp.Read(0);
        ASSERT_TRUE(rec.ok());
        uint64_t v;
        std::memcpy(&v, rec->data(), sizeof(v));
        ++v;
        ASSERT_TRUE(
            sp.Update(0, {reinterpret_cast<uint8_t*>(&v), sizeof(v)}).ok());
        h->MarkDirty(Lsn{v}, Lsn{v});
      }
    });
  }
  for (auto& w : workers) w.join();
  // Sum of all counters equals total increments (no lost updates through
  // latching + eviction round trips).
  uint64_t total = 0;
  for (PageNum p = 1; p <= 64; ++p) {
    auto h = pool.FixPage(p, LatchMode::kShared);
    ASSERT_TRUE(h.ok());
    page::SlottedPage sp(const_cast<uint8_t*>(h->data()));
    uint64_t v;
    std::memcpy(&v, sp.Read(0)->data(), sizeof(v));
    total += v;
  }
  EXPECT_EQ(total, 4u * kOpsPerThread);
}

TEST(BufferPoolSingleTest, PrefetchInstallsAndDedupesAgainstMisses) {
  io::MemVolume vol;
  ASSERT_TRUE(vol.Extend(256).ok());
  // Seed fingerprinted pages straight on the volume.
  std::vector<uint8_t> img(kPageSize);
  for (PageNum p = 1; p <= 128; ++p) {
    page::FormatPage(img.data(), p, 1, page::PageType::kData);
    img[kPageSize - 1] = static_cast<uint8_t>(p);
    ASSERT_TRUE(vol.WritePage(p, img.data()).ok());
  }
  BufferPoolOptions o = SmallPool(64);
  o.prefetch_window = 32;
  BufferPool pool(&vol, o);

  // Concurrent prefetchers and fixers over the same page set: every fix
  // must observe the correct image, whichever side loaded it first.
  std::vector<PageNum> ids;
  for (PageNum p = 1; p <= 128; ++p) ids.push_back(p);
  std::thread prefetcher([&] {
    for (int round = 0; round < 8; ++round) {
      for (size_t at = 0; at < ids.size(); at += 16) {
        pool.PrefetchPages(
            std::span<const PageNum>(ids.data() + at,
                                     std::min<size_t>(16, ids.size() - at)));
      }
    }
  });
  std::vector<std::thread> fixers;
  for (int t = 0; t < 3; ++t) {
    fixers.emplace_back([&, t] {
      Rng rng(t + 7);
      for (int i = 0; i < 400; ++i) {
        PageNum p = 1 + rng.Uniform(128);
        auto h = pool.FixPage(p, LatchMode::kShared);
        ASSERT_TRUE(h.ok()) << h.status().ToString();
        ASSERT_EQ(h->data()[kPageSize - 1], static_cast<uint8_t>(p));
      }
    });
  }
  prefetcher.join();
  for (auto& f : fixers) f.join();
  // Every submitted read completed (the pool is being destroyed next, so
  // the scheduler must be drained), and installs never exceed issues.
  EXPECT_GE(pool.stats().prefetch_issued.load(),
            pool.stats().prefetch_installed.load());
  EXPECT_GT(pool.stats().prefetch_issued.load(), 0u);
}

TEST(BufferPoolSingleTest, PrefetchedPagesBecomeHitsNotDuplicateReads) {
  io::MemVolume vol;
  ASSERT_TRUE(vol.Extend(64).ok());
  std::vector<uint8_t> img(kPageSize);
  for (PageNum p = 1; p <= 16; ++p) {
    page::FormatPage(img.data(), p, 1, page::PageType::kData);
    ASSERT_TRUE(vol.WritePage(p, img.data()).ok());
  }
  BufferPool pool(&vol, SmallPool(32));
  std::vector<PageNum> ids = {1, 2, 3, 4, 5, 6, 7, 8};
  pool.PrefetchPages(ids);
  // Wait for the detached reads to land (installed count is published by
  // the worker after the table insert).
  while (pool.stats().prefetch_installed.load() < ids.size()) {
    std::this_thread::yield();
  }
  uint64_t misses_before = pool.stats().misses.load();
  for (PageNum p : ids) {
    auto h = pool.FixPage(p, LatchMode::kShared);
    ASSERT_TRUE(h.ok());
  }
  EXPECT_EQ(pool.stats().misses.load(), misses_before)
      << "prefetched pages must fix as hits";
}

TEST(BufferPoolSingleTest, BatchedCleanerSurvivesEvictionRaces) {
  io::MemVolume vol;
  ASSERT_TRUE(vol.Extend(512).ok());
  BufferPoolOptions o = SmallPool(16);  // Small pool: constant eviction.
  o.cleaner_threads = 2;
  BufferPool pool(&vol, o);
  // Writers dirty pages while cleaner passes run concurrently; eviction
  // pressure makes the cleaner and the eviction write-back race for the
  // same dirty pages (arbitrated by the in-transit claims).
  std::atomic<bool> stop{false};
  std::thread cleaner([&] {
    while (!stop.load()) {
      (void)pool.CleanerPass(8);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(t + 11);
      for (int i = 0; i < 300; ++i) {
        PageNum p = 1 + rng.Uniform(96);
        auto h = pool.FixPage(p, LatchMode::kExclusive);
        if (!h.ok()) {
          // First touch may race another first toucher; format via NewPage.
          auto nh = pool.NewPage(p);
          ASSERT_TRUE(nh.ok()) << nh.status().ToString();
          page::SlottedPage sp(nh->data());
          sp.Init(p, 1, page::PageType::kData);
          uint64_t zero = 0;
          ASSERT_TRUE(sp.Insert({reinterpret_cast<uint8_t*>(&zero),
                                 sizeof(zero)})
                          .ok());
          nh->MarkDirty(Lsn{1}, Lsn{1});
          continue;
        }
        page::SlottedPage sp(h->data());
        if (sp.header()->magic != page::kPageMagic) {
          sp.Init(p, 1, page::PageType::kData);
          uint64_t zero = 0;
          ASSERT_TRUE(sp.Insert({reinterpret_cast<uint8_t*>(&zero),
                                 sizeof(zero)})
                          .ok());
          h->MarkDirty(Lsn{1}, Lsn{1});
          continue;
        }
        auto rec = sp.Read(0);
        ASSERT_TRUE(rec.ok());
        uint64_t v;
        std::memcpy(&v, rec->data(), sizeof(v));
        ++v;
        ASSERT_TRUE(
            sp.Update(0, {reinterpret_cast<uint8_t*>(&v), sizeof(v)}).ok());
        h->MarkDirty(Lsn{v + 1}, Lsn{v + 1});
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  cleaner.join();
  // Under full contention every concurrent pass may legitimately come up
  // empty (eviction wrote the page first, or a writer held the latch and
  // TryAcquire refused to block) — so assert on a quiesced final pass:
  // the writers' last updates left resident dirty frames nothing evicted.
  ASSERT_TRUE(pool.CleanerPass(64).ok());
  EXPECT_GT(pool.stats().cleaner_writes.load(), 0u);
  // Everything the cleaner and eviction wrote must still read back
  // intact — no torn images, no lost updates from double write-back.
  ASSERT_TRUE(pool.FlushAll().ok());
  for (PageNum p = 1; p <= 96; ++p) {
    auto h = pool.FixPage(p, LatchMode::kShared);
    ASSERT_TRUE(h.ok());
    page::SlottedPage sp(const_cast<uint8_t*>(h->data()));
    if (sp.header()->magic != page::kPageMagic) continue;  // Never written.
    EXPECT_EQ(sp.header()->page_num, p);
  }
}

TEST(BufferPoolSingleTest, CleanerBatchesCoalesceAdjacentPages) {
  io::MemVolume vol;
  ASSERT_TRUE(vol.Extend(256).ok());
  BufferPoolOptions o = SmallPool(64);
  BufferPool pool(&vol, o);
  // Dirty an adjacent page range, then run one cleaner pass: the batch
  // sorts by page id and must coalesce into far fewer device calls than
  // pages written.
  for (PageNum p = 10; p < 42; ++p) {
    auto h = pool.NewPage(p);
    ASSERT_TRUE(h.ok());
    page::FormatPage(h->data(), p, 1, page::PageType::kData);
    h->MarkDirty(Lsn{p}, Lsn{p});
  }
  uint64_t calls_before = vol.stats().writes.load();
  uint64_t pages_before = vol.stats().pages_written.load();
  ASSERT_TRUE(pool.CleanerSweep().ok());
  uint64_t calls = vol.stats().writes.load() - calls_before;
  uint64_t pages = vol.stats().pages_written.load() - pages_before;
  EXPECT_EQ(pages, 32u);
  EXPECT_LT(calls, pages) << "adjacent dirty pages must coalesce";
  EXPECT_EQ(pool.stats().cleaner_writes.load(), 32u);
  EXPECT_GE(pool.stats().cleaner_batches.load(), 1u);
}

}  // namespace
}  // namespace shoremt::buffer
