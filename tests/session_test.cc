#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "btree/btree_node.h"
#include "io/volume.h"
#include "log/log_storage.h"
#include "sm/options.h"
#include "sm/session.h"
#include "sm/storage_manager.h"

namespace shoremt::sm {
namespace {

std::vector<uint8_t> Row(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::string AsString(std::span<const uint8_t> v) {
  return std::string(v.begin(), v.end());
}

struct Harness {
  io::MemVolume volume;
  log::LogStorage log;
  std::unique_ptr<StorageManager> sm;

  explicit Harness(StorageOptions options =
                       StorageOptions::ForStage(Stage::kFinal)) {
    auto opened = StorageManager::Open(options, &volume, &log);
    EXPECT_TRUE(opened.ok());
    sm = std::move(*opened);
  }
};

TEST(SessionTest, LifecycleAndBasicDml) {
  Harness h;
  auto session = h.sm->OpenSession();
  EXPECT_FALSE(session->InTransaction());
  // DML without a transaction is rejected, not UB.
  EXPECT_EQ(session->Read(TableInfo{}, 1).status().code(),
            StatusCode::kInvalidArgument);

  ASSERT_TRUE(session->Begin().ok());
  EXPECT_FALSE(session->Begin().ok()) << "nested Begin must fail";
  auto table = session->CreateTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session->Insert(*table, 1, Row("v1")).ok());
  EXPECT_EQ(AsString(*session->Read(*table, 1)), "v1");
  ASSERT_TRUE(session->Update(*table, 1, Row("v2")).ok());
  EXPECT_EQ(AsString(*session->Read(*table, 1)), "v2");
  ASSERT_TRUE(session->Delete(*table, 1).ok());
  EXPECT_TRUE(session->Read(*table, 1).status().IsNotFound());
  ASSERT_TRUE(session->Commit().ok());
  EXPECT_FALSE(session->InTransaction());
}

TEST(SessionTest, AbortRollsBack) {
  Harness h;
  auto session = h.sm->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  auto table = session->CreateTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session->Insert(*table, 1, Row("keep")).ok());
  ASSERT_TRUE(session->Commit().ok());

  ASSERT_TRUE(session->Begin().ok());
  ASSERT_TRUE(session->Update(*table, 1, Row("mutated")).ok());
  ASSERT_TRUE(session->Insert(*table, 2, Row("discard")).ok());
  ASSERT_TRUE(session->Abort().ok());

  ASSERT_TRUE(session->Begin().ok());
  EXPECT_EQ(AsString(*session->Read(*table, 1)), "keep");
  EXPECT_TRUE(session->Read(*table, 2).status().IsNotFound());
  ASSERT_TRUE(session->Commit().ok());
}

TEST(SessionTest, CursorIteratesAcrossLeafBoundaries) {
  Harness h;
  auto session = h.sm->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  auto table = session->CreateTable("t");
  ASSERT_TRUE(table.ok());
  // Enough rows for several leaves (a leaf holds ~508 entries).
  constexpr uint64_t kRows = 1500;
  static_assert(kRows > 2 * btree::BTreeNode::kMaxEntries);
  for (uint64_t k = 0; k < kRows; ++k) {
    ASSERT_TRUE(session->Insert(*table, k, Row("r" + std::to_string(k))).ok());
  }
  ASSERT_TRUE(session->Commit().ok());

  ASSERT_TRUE(session->Begin().ok());
  auto cur = session->OpenCursor(*table);
  uint64_t expect = 0;
  for (auto st = cur.Seek(0); cur.Valid(); st = cur.Next()) {
    ASSERT_TRUE(st.ok());
    ASSERT_EQ(cur.key(), expect);
    ASSERT_EQ(AsString(cur.value()), "r" + std::to_string(expect));
    ++expect;
  }
  EXPECT_EQ(expect, kRows);

  // Bounded range, starting between keys.
  uint64_t seen = 0;
  for (auto st = cur.Seek(700); cur.Valid() && cur.key() <= 900;
       st = cur.Next()) {
    ASSERT_TRUE(st.ok());
    ++seen;
  }
  EXPECT_EQ(seen, 201u);
  ASSERT_TRUE(session->Commit().ok());
}

TEST(SessionTest, CursorSurvivesConcurrentInsertsAndSplits) {
  Harness h;
  auto writer = h.sm->OpenSession();
  ASSERT_TRUE(writer->Begin().ok());
  auto table = writer->CreateTable("t");
  ASSERT_TRUE(table.ok());
  // Even keys 0..2*kBase-2 — spans 2+ leaves.
  constexpr uint64_t kBase = 600;
  for (uint64_t i = 0; i < kBase; ++i) {
    ASSERT_TRUE(writer->Insert(*table, 2 * i, Row("even")).ok());
  }
  ASSERT_TRUE(writer->Commit().ok());

  auto reader = h.sm->OpenSession();
  ASSERT_TRUE(reader->Begin().ok());
  auto cur = reader->OpenCursor(*table);
  std::vector<uint64_t> seen;
  auto st = cur.Seek(0);
  ASSERT_TRUE(st.ok());
  // Drain the first ~100 rows, then flood odd keys everywhere — behind,
  // at, and ahead of the cursor — forcing leaf splits mid-iteration.
  for (int i = 0; i < 100 && cur.Valid(); ++i) {
    seen.push_back(cur.key());
    ASSERT_TRUE(cur.Next().ok());
  }
  ASSERT_TRUE(writer->Begin().ok());
  for (uint64_t i = 0; i < kBase; ++i) {
    ASSERT_TRUE(writer->Insert(*table, 2 * i + 1, Row("odd")).ok());
  }
  ASSERT_TRUE(writer->Commit().ok());
  while (cur.Valid()) {
    seen.push_back(cur.key());
    ASSERT_TRUE(cur.Next().ok());
  }
  ASSERT_TRUE(reader->Commit().ok());

  // Exactly-once: strictly increasing keys, and every even key appears —
  // keys that existed for the whole scan can be neither skipped nor
  // duplicated by the splits.
  for (size_t i = 1; i < seen.size(); ++i) {
    ASSERT_LT(seen[i - 1], seen[i]) << "duplicate or out-of-order key";
  }
  uint64_t evens = 0;
  for (uint64_t k : seen) evens += (k % 2 == 0);
  EXPECT_EQ(evens, kBase);
}

TEST(SessionTest, HarvestTotalsMatchPerSessionCounts) {
  Harness h;
  TableInfo table;
  {
    auto setup = h.sm->OpenSession();
    ASSERT_TRUE(setup->Begin().ok());
    auto t = setup->CreateTable("t");
    ASSERT_TRUE(t.ok());
    table = *t;
    ASSERT_TRUE(setup->Commit().ok());
  }  // Setup session harvested here.
  SessionStats baseline = h.sm->harvested_session_stats();

  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 25;
  constexpr int kInsertsPerTxn = 4;
  std::vector<SessionStats> local(kThreads);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto session = h.sm->OpenSession();
      for (int i = 0; i < kTxnsPerThread; ++i) {
        ASSERT_TRUE(session->Begin().ok());
        for (int k = 0; k < kInsertsPerTxn; ++k) {
          uint64_t key = (static_cast<uint64_t>(t) << 32) |
                         static_cast<uint64_t>(i * kInsertsPerTxn + k);
          ASSERT_TRUE(session->Insert(table, key, Row("x")).ok());
          ASSERT_TRUE(session->Read(table, key).ok());
        }
        ASSERT_TRUE(session->Commit().ok());
      }
      local[t] = session->stats();  // Snapshot before harvest-on-close.
    });
  }
  for (auto& w : workers) w.join();

  // The manager's aggregate must equal the sum of what each session
  // counted privately — nothing lost, nothing double-counted.
  SessionStats expected;
  for (const auto& s : local) expected.Add(s);
  SessionStats agg = h.sm->harvested_session_stats();
  EXPECT_EQ(agg.inserts - baseline.inserts, expected.inserts);
  EXPECT_EQ(agg.reads - baseline.reads, expected.reads);
  EXPECT_EQ(agg.commits - baseline.commits, expected.commits);
  EXPECT_EQ(agg.log_bytes - baseline.log_bytes, expected.log_bytes);
  EXPECT_EQ(expected.inserts,
            uint64_t{kThreads} * kTxnsPerThread * kInsertsPerTxn);
  EXPECT_EQ(expected.reads,
            uint64_t{kThreads} * kTxnsPerThread * kInsertsPerTxn);
  EXPECT_GT(expected.log_bytes, 0u);
}

TEST(SessionTest, ApplyCommitsWholeBatch) {
  Harness h;
  auto session = h.sm->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  auto table = session->CreateTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session->Insert(*table, 1, Row("one")).ok());
  ASSERT_TRUE(session->Commit().ok());

  std::vector<uint8_t> two = Row("two"), one2 = Row("one v2");
  std::vector<Op> batch = {
      {OpType::kInsert, 2, two},
      {OpType::kUpdate, 1, one2},
  };
  ASSERT_TRUE(session->Apply(*table, batch).ok());
  EXPECT_FALSE(session->InTransaction()) << "auto-txn Apply must commit";

  ASSERT_TRUE(session->Begin().ok());
  EXPECT_EQ(AsString(*session->Read(*table, 2)), "two");
  EXPECT_EQ(AsString(*session->Read(*table, 1)), "one v2");
  ASSERT_TRUE(session->Commit().ok());
  EXPECT_EQ(session->stats().batches, 1u);
  EXPECT_EQ(session->stats().batch_ops, 2u);
}

TEST(SessionTest, ApplyIsAtomicOnMidBatchFailure) {
  Harness h;
  auto session = h.sm->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  auto table = session->CreateTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session->Insert(*table, 5, Row("existing")).ok());
  ASSERT_TRUE(session->Commit().ok());

  // Third op collides with key 5 -> whole batch must abort.
  std::vector<uint8_t> a = Row("a"), b = Row("b"), dup = Row("dup");
  std::vector<Op> batch = {
      {OpType::kInsert, 10, a},
      {OpType::kInsert, 11, b},
      {OpType::kInsert, 5, dup},
  };
  Status st = session->Apply(*table, batch);
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(session->InTransaction())
      << "failed auto-txn Apply must clean up after itself";

  ASSERT_TRUE(session->Begin().ok());
  EXPECT_TRUE(session->Read(*table, 10).status().IsNotFound())
      << "no partial batch effects may survive";
  EXPECT_TRUE(session->Read(*table, 11).status().IsNotFound());
  EXPECT_EQ(AsString(*session->Read(*table, 5)), "existing");
  ASSERT_TRUE(session->Commit().ok());
}

TEST(SessionTest, OpenTableBlocksOnInFlightDdl) {
  // A lock-wait budget far above the DDL thread's sleep, so a loaded CI
  // scheduler cannot turn the intended block into a Deadlock timeout.
  StorageOptions opts = StorageOptions::ForStage(Stage::kFinal);
  opts.lock.timeout_us = 30'000'000;
  Harness h(opts);
  std::atomic<bool> created{false};
  std::atomic<bool> committed{false};
  std::thread ddl([&] {
    auto session = h.sm->OpenSession();
    ASSERT_TRUE(session->Begin().ok());
    ASSERT_TRUE(session->CreateTable("racy").ok());
    created.store(true, std::memory_order_release);
    // Hold the X store locks while the observer tries to open the table.
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    committed.store(true, std::memory_order_release);
    ASSERT_TRUE(session->Commit().ok());
  });
  while (!created.load(std::memory_order_acquire)) std::this_thread::yield();

  auto observer = h.sm->OpenSession();
  auto table = observer->OpenTable("racy");
  // The lookup parked on the creator's store lock: by the time it
  // returns, the DDL has committed — never a half-created table.
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_TRUE(committed.load(std::memory_order_acquire))
      << "OpenTable returned while the DDL transaction was still open";
  ddl.join();

  ASSERT_TRUE(observer->Begin().ok());
  ASSERT_TRUE(observer->Insert(*table, 1, Row("v")).ok());
  ASSERT_TRUE(observer->Commit().ok());
}

TEST(SessionTest, ReadBufferIsReusedAcrossReads) {
  Harness h;
  auto session = h.sm->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  auto table = session->CreateTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session->Insert(*table, 1, Row("the longer first row")).ok());
  ASSERT_TRUE(session->Insert(*table, 2, Row("second")).ok());
  auto r1 = session->Read(*table, 1);
  ASSERT_TRUE(r1.ok());
  const uint8_t* p1 = r1->data();
  auto r2 = session->Read(*table, 2);
  ASSERT_TRUE(r2.ok());
  // Same backing storage (no per-read allocation once warm); the old span
  // now sees the new bytes — documented invalidation semantics.
  EXPECT_EQ(p1, r2->data());
  EXPECT_EQ(AsString(*r2), "second");
  ASSERT_TRUE(session->Commit().ok());
}

TEST(SessionTest, DeprecatedFacadeInteroperatesWithSessions) {
  Harness h;
  auto session = h.sm->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  auto table = session->CreateTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session->Insert(*table, 1, Row("via-session")).ok());
  ASSERT_TRUE(session->Commit().ok());

  // Old-style callers still work against the same data.
  auto* txn = h.sm->Begin();
  auto read = h.sm->Read(txn, *table, 1);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(std::string(read->begin(), read->end()), "via-session");
  ASSERT_TRUE(h.sm->Commit(txn).ok());
}

}  // namespace
}  // namespace shoremt::sm
