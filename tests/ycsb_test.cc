#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "io/volume.h"
#include "log/log_storage.h"
#include "obs/metrics.h"
#include "obs/metrics_registry.h"
#include "sm/session.h"
#include "sm/storage_manager.h"
#include "workload/ycsb.h"

namespace shoremt::workload {
namespace {

using sm::StorageManager;
using sm::StorageOptions;

struct YcsbFixture {
  io::MemVolume volume;
  log::LogStorage wal;
  std::unique_ptr<StorageManager> db;
  YcsbDatabase ycsb;

  explicit YcsbFixture(YcsbConfig cfg) {
    auto opened = StorageManager::Open(
        StorageOptions::ForStage(sm::Stage::kFinal), &volume, &wal);
    EXPECT_TRUE(opened.ok());
    db = std::move(*opened);
    auto loader = db->OpenSession();
    EXPECT_TRUE(LoadYcsb(loader.get(), cfg, &ycsb).ok());
  }
};

TEST(YcsbPayloadTest, CounterRoundTripsAndSizeFloors) {
  std::vector<uint8_t> p;
  FillYcsbPayload(/*key=*/17, /*field_size=*/100, /*counter=*/7, &p);
  EXPECT_EQ(p.size(), 100u);
  EXPECT_EQ(ReadYcsbCounter(p), 7u);
  FillYcsbPayload(17, /*field_size=*/4, /*counter=*/0xdeadbeefULL, &p);
  EXPECT_EQ(p.size(), 8u);  // Floored to hold the counter.
  EXPECT_EQ(ReadYcsbCounter(p), 0xdeadbeefULL);
  // Deterministic per key, distinct across keys.
  std::vector<uint8_t> q, r;
  FillYcsbPayload(5, 64, 0, &q);
  FillYcsbPayload(5, 64, 0, &r);
  EXPECT_EQ(q, r);
  FillYcsbPayload(6, 64, 0, &r);
  EXPECT_NE(q, r);
}

TEST(YcsbTest, LoadPopulatesEveryKey) {
  YcsbConfig cfg;
  cfg.record_count = 500;
  cfg.field_size = 32;
  YcsbFixture f(cfg);
  EXPECT_EQ(f.ycsb.visible_count.load(), 500u);
  EXPECT_EQ(f.ycsb.next_insert_key.load(), 500u);
  auto session = f.db->OpenSession();
  for (uint64_t k : {uint64_t{0}, uint64_t{250}, uint64_t{499}}) {
    ASSERT_TRUE(session->Begin().ok());
    auto r = session->Read(f.ycsb.usertable, k);
    ASSERT_TRUE(r.ok()) << "key " << k;
    EXPECT_EQ(r->size(), 32u);
    EXPECT_EQ(ReadYcsbCounter(*r), 0u);
    ASSERT_TRUE(session->Commit().ok());
  }
}

TEST(YcsbTest, MixRatiosHonoredWithinTolerance) {
  YcsbConfig cfg;
  cfg.record_count = 1'000;
  cfg.field_size = 16;
  YcsbFixture f(cfg);
  auto session = f.db->OpenSession();
  sm::SessionStats after_load = session->stats();
  YcsbWorker worker(&f.ycsb, /*seed=*/42);
  const int kTxns = 4'000;
  // Workload A: 50% read / 50% update.
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_TRUE(RunYcsbTxn(session.get(), &worker, YcsbWorkload::kA));
  }
  sm::SessionStats a = session->stats();
  double read_frac = static_cast<double>(a.reads - after_load.reads) / kTxns;
  EXPECT_NEAR(read_frac, 0.50, 0.05);
  // Workload B: 95% read / 5% update on top.
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_TRUE(RunYcsbTxn(session.get(), &worker, YcsbWorkload::kB));
  }
  sm::SessionStats b = session->stats();
  read_frac = static_cast<double>(b.reads - a.reads) / kTxns;
  EXPECT_NEAR(read_frac, 0.95, 0.03);
  EXPECT_EQ(b.inserts, a.inserts);  // A and B never insert.
}

TEST(YcsbTest, ScanReturnsConsecutiveKeys) {
  YcsbConfig cfg;
  cfg.record_count = 200;
  cfg.field_size = 16;
  YcsbFixture f(cfg);
  auto session = f.db->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  sm::Cursor cur = session->OpenCursor(f.ycsb.usertable);
  ASSERT_TRUE(cur.Seek(50).ok());
  for (uint64_t expect = 50; expect < 60; ++expect) {
    ASSERT_TRUE(cur.Valid());
    EXPECT_EQ(cur.key(), expect);
    EXPECT_EQ(cur.value().size(), 16u);
    ASSERT_TRUE(cur.Next().ok());
  }
  ASSERT_TRUE(session->Commit().ok());
  // Workload E through the txn runner counts its rows in the session.
  YcsbWorker worker(&f.ycsb, /*seed=*/7);
  sm::SessionStats before = session->stats();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(RunYcsbTxn(session.get(), &worker, YcsbWorkload::kE));
  }
  EXPECT_GT(session->stats().cursor_rows, before.cursor_rows);
}

TEST(YcsbTest, RmwCountersPersistAndMatchMetric) {
  YcsbConfig cfg;
  cfg.record_count = 50;  // Small table: RMWs revisit rows.
  cfg.field_size = 24;
  cfg.zipf_theta = 0.9;
  YcsbFixture f(cfg);
  uint64_t rmws = 0;
  {
    auto session = f.db->OpenSession();
    YcsbWorker worker(&f.ycsb, /*seed=*/99);
    for (int i = 0; i < 1'000; ++i) {
      ASSERT_TRUE(RunYcsbTxn(session.get(), &worker, YcsbWorkload::kF));
    }
    rmws = session->counters()->Value(obs::Metric::kRmws);
  }
  EXPECT_GT(rmws, 0u);
  // Every RMW bumped exactly one row's embedded counter under its X lock:
  // the table-wide counter sum must equal the metric.
  auto session = f.db->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  uint64_t sum = 0;
  for (uint64_t k = 0; k < cfg.record_count; ++k) {
    auto r = session->Read(f.ycsb.usertable, k);
    ASSERT_TRUE(r.ok());
    sum += ReadYcsbCounter(*r);
  }
  ASSERT_TRUE(session->Commit().ok());
  EXPECT_EQ(sum, rmws);
  EXPECT_EQ(f.db->metrics()->Snapshot()[obs::Metric::kRmws], rmws);
}

TEST(YcsbTest, InsertWorkloadGrowsVisibleFrontier) {
  YcsbConfig cfg;
  cfg.record_count = 300;
  cfg.field_size = 16;
  YcsbFixture f(cfg);
  auto session = f.db->OpenSession();
  YcsbWorker worker(&f.ycsb, /*seed=*/1);
  for (int i = 0; i < 2'000; ++i) {
    ASSERT_TRUE(RunYcsbTxn(session.get(), &worker, YcsbWorkload::kD));
  }
  uint64_t visible = f.ycsb.visible_count.load();
  EXPECT_GT(visible, 300u);  // ~5% of 2000 inserts committed + published.
  EXPECT_GE(f.ycsb.next_insert_key.load(), visible);
  // Published keys are readable (D's read-latest draws from them).
  ASSERT_TRUE(session->Begin().ok());
  EXPECT_TRUE(session->Read(f.ycsb.usertable, visible - 1).ok());
  ASSERT_TRUE(session->Commit().ok());
}

TEST(YcsbTest, WorkerKeySequenceDeterministicForSeed) {
  YcsbConfig cfg;
  cfg.record_count = 1'000;
  cfg.zipf_theta = 0.9;
  YcsbFixture f(cfg);
  YcsbWorker a(&f.ycsb, /*seed=*/123), b(&f.ycsb, /*seed=*/123);
  YcsbWorker c(&f.ycsb, /*seed=*/456);
  bool diverged = false;
  for (int i = 0; i < 200; ++i) {
    uint64_t ka = a.NextKey();
    EXPECT_EQ(ka, b.NextKey());
    EXPECT_LT(ka, 1'000u);
    diverged |= ka != c.NextKey();
  }
  EXPECT_TRUE(diverged);
}

TEST(YcsbTest, ScrambledZipfSpreadsHotKeys) {
  // The Zipf generator's hot ranks are 0,1,2...; after scrambling, the
  // hottest request keys must not all cluster at the bottom of the key
  // space (YCSB's ScrambledZipfian property).
  YcsbConfig cfg;
  cfg.record_count = 10'000;
  cfg.zipf_theta = 0.99;
  YcsbFixture f(cfg);
  YcsbWorker worker(&f.ycsb, /*seed=*/5);
  int low_half = 0;
  const int kSamples = 4'000;
  for (int i = 0; i < kSamples; ++i) {
    if (worker.NextKey() < 5'000) ++low_half;
  }
  double low_frac = static_cast<double>(low_half) / kSamples;
  EXPECT_GT(low_frac, 0.3);
  EXPECT_LT(low_frac, 0.7);
}

}  // namespace
}  // namespace shoremt::workload
