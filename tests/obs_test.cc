#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "io/volume.h"
#include "log/log_storage.h"
#include "obs/metrics.h"
#include "obs/metrics_registry.h"
#include "obs/profiling_thread.h"
#include "sm/session.h"
#include "sm/storage_manager.h"

namespace shoremt::obs {
namespace {

using sm::StorageManager;
using sm::StorageOptions;

TEST(WorkerCountersTest, IncAndValue) {
  WorkerCounters wc;
  wc.Inc(Metric::kTxnCommits);
  wc.Inc(Metric::kTxnCommits, 4);
  wc.Inc(Metric::kLogBytes, 100);
  EXPECT_EQ(wc.Value(Metric::kTxnCommits), 5u);
  EXPECT_EQ(wc.Value(Metric::kLogBytes), 100u);
  EXPECT_EQ(wc.Value(Metric::kTxnAborts), 0u);
}

TEST(MetricsRegistryTest, RegisterBumpSnapshot) {
  MetricsRegistry reg;
  WorkerCounters* a = reg.RegisterWorker();
  WorkerCounters* b = reg.RegisterWorker();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(reg.active_workers(), 2u);
  a->Inc(Metric::kReads, 10);
  b->Inc(Metric::kReads, 5);
  b->Inc(Metric::kUpdates, 7);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap[Metric::kReads], 15u);
  EXPECT_EQ(snap[Metric::kUpdates], 7u);
  reg.UnregisterWorker(a);
  reg.UnregisterWorker(b);
  EXPECT_EQ(reg.active_workers(), 0u);
}

TEST(MetricsRegistryTest, UnregisterFoldsIntoRetired) {
  MetricsRegistry reg;
  WorkerCounters* a = reg.RegisterWorker();
  a->Inc(Metric::kTxnCommits, 42);
  a->RecordLatency(1000);
  a->RecordLatency(2000);
  reg.UnregisterWorker(a);
  // Totals survive the worker; the freed slot hands out zeroed counters.
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap[Metric::kTxnCommits], 42u);
  EXPECT_EQ(snap.latency.count, 2u);
  WorkerCounters* b = reg.RegisterWorker();
  EXPECT_EQ(b, a);  // Slot reuse (first free slot).
  EXPECT_EQ(b->Value(Metric::kTxnCommits), 0u);
  b->Inc(Metric::kTxnCommits, 8);
  EXPECT_EQ(reg.Snapshot()[Metric::kTxnCommits], 50u);
  reg.UnregisterWorker(b);
}

TEST(MetricsRegistryTest, SourcesAddAtSnapshotTime) {
  MetricsRegistry reg;
  std::atomic<uint64_t> external{123};
  reg.AddSource([&](std::array<uint64_t, kMetricCount>* t) {
    (*t)[static_cast<size_t>(Metric::kBufferHits)] +=
        external.load(std::memory_order_relaxed);
  });
  EXPECT_EQ(reg.Snapshot()[Metric::kBufferHits], 123u);
  external = 456;
  EXPECT_EQ(reg.Snapshot()[Metric::kBufferHits], 456u);
}

TEST(MetricsRegistryTest, ExhaustionReturnsNull) {
  MetricsRegistry reg;
  std::vector<WorkerCounters*> all;
  for (size_t i = 0; i < MetricsRegistry::kMaxWorkers; ++i) {
    WorkerCounters* wc = reg.RegisterWorker();
    ASSERT_NE(wc, nullptr);
    all.push_back(wc);
  }
  EXPECT_EQ(reg.RegisterWorker(), nullptr);
  reg.UnregisterWorker(all.back());
  EXPECT_NE(reg.RegisterWorker(), nullptr);
}

/// Register/unregister churn racing live bumps and a concurrent snapshot
/// reader: every counted increment must survive into the final snapshot
/// (the retired fold), no matter how slots recycle. Run under TSan in CI.
TEST(MetricsRegistryTest, ChurnConservesTotals) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  constexpr int kBumpsPerRound = 50;
  std::atomic<bool> stop{false};
  // A reader thread exercising Snapshot against the churn.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      MetricsSnapshot snap = reg.Snapshot();
      (void)snap;
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        WorkerCounters* wc = reg.RegisterWorker();
        ASSERT_NE(wc, nullptr);  // 8 << kMaxWorkers: never exhausted.
        for (int b = 0; b < kBumpsPerRound; ++b) {
          wc->Inc(Metric::kTxnCommits);
          wc->RecordLatency(100 + b);
        }
        reg.UnregisterWorker(wc);
      }
    });
  }
  for (auto& w : workers) w.join();
  stop = true;
  reader.join();
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap[Metric::kTxnCommits],
            uint64_t(kThreads) * kRounds * kBumpsPerRound);
  EXPECT_EQ(snap.latency.count, uint64_t(kThreads) * kRounds * kBumpsPerRound);
  EXPECT_EQ(reg.active_workers(), 0u);
}

TEST(LatencySnapshotTest, QuantilesFromMergedBuckets) {
  MetricsRegistry reg;
  WorkerCounters* a = reg.RegisterWorker();
  WorkerCounters* b = reg.RegisterWorker();
  // 90 fast ops on one worker, 10 slow on the other: p50 must sit in the
  // fast band and p99 in the slow band after the cross-worker merge.
  for (int i = 0; i < 90; ++i) a->RecordLatency(1'000);
  for (int i = 0; i < 10; ++i) b->RecordLatency(1'000'000);
  Histogram h = reg.Snapshot().latency.ToHistogram();
  EXPECT_EQ(h.count(), 100u);
  EXPECT_LT(h.P50(), 10'000u);
  EXPECT_GT(h.P99(), 100'000u);
  reg.UnregisterWorker(a);
  reg.UnregisterWorker(b);
}

TEST(ProfilingThreadTest, EmitsHeaderAndTicksCsv) {
  MetricsRegistry reg;
  WorkerCounters* wc = reg.RegisterWorker();
  std::mutex mu;
  std::vector<std::string> lines;
  ProfilingOptions opts;
  opts.interval = std::chrono::microseconds(5'000);
  opts.sink = [&](const std::string& l) {
    std::lock_guard<std::mutex> g(mu);
    lines.push_back(l);
  };
  opts.prefix = "x ";
  ProfilingThread prof(&reg, opts);
  prof.Start();
  wc->Inc(Metric::kReads, 7);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  prof.Stop();
  reg.UnregisterWorker(wc);
  std::lock_guard<std::mutex> g(mu);
  ASSERT_GE(lines.size(), 2u);  // Header + at least the final tick.
  EXPECT_EQ(lines[0].rfind("x tick,elapsed_s,txn_begins", 0), 0u);
  EXPECT_EQ(lines.size() - 1, prof.ticks());
}

TEST(ProfilingThreadTest, JsonLinesFormat) {
  MetricsRegistry reg;
  WorkerCounters* wc = reg.RegisterWorker();
  std::mutex mu;
  std::vector<std::string> lines;
  ProfilingOptions opts;
  opts.interval = std::chrono::microseconds(100'000);
  opts.format = ProfilingOptions::Format::kJsonLines;
  opts.sink = [&](const std::string& l) {
    std::lock_guard<std::mutex> g(mu);
    lines.push_back(l);
  };
  ProfilingThread prof(&reg, opts);
  prof.Start();
  wc->Inc(Metric::kTxnCommits, 3);
  prof.Stop();  // Final tick carries the 3 commits.
  reg.UnregisterWorker(wc);
  std::lock_guard<std::mutex> g(mu);
  ASSERT_GE(lines.size(), 1u);
  const std::string& last = lines.back();
  EXPECT_EQ(last.front(), '{');
  EXPECT_EQ(last.back(), '}');
  EXPECT_NE(last.find("\"tick\":"), std::string::npos);
  EXPECT_NE(last.find("\"txn_commits\":3"), std::string::npos);
  EXPECT_NE(last.find("\"p999_ns\":"), std::string::npos);
}

/// The reconciliation invariant: the cumulative deltas the feed emitted
/// equal the registry totals at the final tick — even across worker
/// churn between ticks.
TEST(ProfilingThreadTest, EmittedDeltasReconcileWithTotals) {
  MetricsRegistry reg;
  ProfilingOptions opts;
  opts.interval = std::chrono::microseconds(2'000);
  opts.sink = [](const std::string&) {};  // Discard; emitted() is the API.
  ProfilingThread prof(&reg, opts);
  prof.Start();
  constexpr int kThreads = 4;
  constexpr int kRounds = 100;
  constexpr int kBumps = 25;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        WorkerCounters* wc = reg.RegisterWorker();
        ASSERT_NE(wc, nullptr);
        for (int b = 0; b < kBumps; ++b) {
          wc->Inc(Metric::kTxnCommits);
          wc->RecordLatency(500);
        }
        reg.UnregisterWorker(wc);
      }
    });
  }
  for (auto& w : workers) w.join();
  prof.Stop();
  const uint64_t expected = uint64_t(kThreads) * kRounds * kBumps;
  MetricsSnapshot emitted = prof.emitted();
  EXPECT_EQ(emitted[Metric::kTxnCommits], expected);
  EXPECT_EQ(emitted.latency.count, expected);
  EXPECT_EQ(reg.Snapshot()[Metric::kTxnCommits], expected);
}

/// Start/stop/teardown races: ticking at a tiny interval while workers
/// bump and the controller stops mid-flight. Repeated so TSan gets many
/// interleavings; the invariant is no crash/race and ticks monotone.
TEST(ProfilingThreadTest, StartStopTeardownRace) {
  for (int round = 0; round < 20; ++round) {
    MetricsRegistry reg;
    ProfilingOptions opts;
    opts.interval = std::chrono::microseconds(500);
    opts.sink = [](const std::string&) {};
    ProfilingThread prof(&reg, opts);
    std::atomic<bool> stop{false};
    std::thread bumper([&] {
      WorkerCounters* wc = reg.RegisterWorker();
      while (!stop.load(std::memory_order_relaxed)) {
        wc->Inc(Metric::kReads);
        wc->RecordLatency(123);
      }
      reg.UnregisterWorker(wc);
    });
    prof.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    prof.Stop();
    uint64_t after_stop = prof.ticks();
    EXPECT_GE(after_stop, 1u);
    stop = true;
    bumper.join();
    // Destructor's Stop must be a no-op now.
  }
}

/// End-to-end: a real StorageManager run, live registry totals vs the
/// harvested SessionStats — the two statistics systems must agree on the
/// counters they share, and the feed's cumulative account must match.
TEST(ProfilingThreadTest, RegistryReconcilesWithSessionStats) {
  io::MemVolume volume;
  log::LogStorage wal;
  auto opened = StorageManager::Open(
      StorageOptions::ForStage(sm::Stage::kFinal), &volume, &wal);
  ASSERT_TRUE(opened.ok());
  auto& db = *opened;

  ProfilingOptions opts;
  opts.interval = std::chrono::microseconds(5'000);
  opts.sink = [](const std::string&) {};
  ProfilingThread prof(db->metrics(), opts);
  prof.Start();

  {
    auto session = db->OpenSession();
    ASSERT_TRUE(session->Begin().ok());
    auto table = session->CreateTable("t");
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(session->Commit().ok());
    std::vector<uint8_t> payload(32, 0xab);
    for (uint64_t k = 0; k < 200; ++k) {
      ASSERT_TRUE(session->Begin().ok());
      ASSERT_TRUE(session->Insert(*table, k, payload).ok());
      ASSERT_TRUE(session->Commit().ok());
    }
    for (uint64_t k = 0; k < 100; ++k) {
      ASSERT_TRUE(session->Begin().ok());
      ASSERT_TRUE(session->Read(*table, k).ok());
      ASSERT_TRUE(session->Commit().ok());
    }
  }  // Session closes: harvests + folds its worker block into retired.

  prof.Stop();
  sm::SessionStats harvested = db->harvested_session_stats();
  MetricsSnapshot live = db->metrics()->Snapshot();
  MetricsSnapshot emitted = prof.emitted();

  EXPECT_EQ(live[Metric::kTxnBegins], harvested.begins);
  EXPECT_EQ(live[Metric::kTxnCommits], harvested.commits);
  EXPECT_EQ(live[Metric::kTxnAborts], harvested.aborts);
  EXPECT_EQ(live[Metric::kInserts], harvested.inserts);
  EXPECT_EQ(live[Metric::kReads], harvested.reads);
  EXPECT_EQ(live[Metric::kLockWaits], harvested.lock_waits);
  EXPECT_EQ(live[Metric::kLogBytes], harvested.log_bytes);
  // The feed's cumulative deltas match the live totals for the
  // worker-side metrics (sources keep moving after Stop — e.g. the
  // session-close path itself appends no more, but compare worker-side
  // only to stay exact).
  EXPECT_EQ(emitted[Metric::kTxnCommits], live[Metric::kTxnCommits]);
  EXPECT_EQ(emitted[Metric::kInserts], live[Metric::kInserts]);
  EXPECT_EQ(emitted[Metric::kReads], live[Metric::kReads]);
  EXPECT_EQ(emitted.latency.count, harvested.commits);
  // Engine sources feed the registry too: the inserts touched the buffer
  // pool and the log.
  EXPECT_GT(live[Metric::kBufferHits], 0u);
  EXPECT_GT(live[Metric::kLogRecords], 0u);
  EXPECT_GT(live[Metric::kLockAcquired], 0u);
}

}  // namespace
}  // namespace shoremt::obs
