#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "io/volume.h"
#include "page/page.h"
#include "page/slotted_page.h"
#include "space/space_manager.h"

namespace shoremt {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::string ToString(std::span<const uint8_t> s) {
  return std::string(s.begin(), s.end());
}

// ---------------------------------------------------------------- page ----

class SlottedPageTest : public ::testing::Test {
 protected:
  SlottedPageTest() : sp_(buf_) {
    sp_.Init(7, 3, page::PageType::kData);
  }
  alignas(8) uint8_t buf_[kPageSize] = {};
  page::SlottedPage sp_;
};

TEST_F(SlottedPageTest, InitSetsHeader) {
  const page::PageHeader* h = sp_.header();
  EXPECT_EQ(h->magic, page::kPageMagic);
  EXPECT_EQ(h->page_num, 7u);
  EXPECT_EQ(h->store, 3u);
  EXPECT_EQ(h->type, page::PageType::kData);
  EXPECT_EQ(sp_.SlotCount(), 0u);
  EXPECT_TRUE(page::PageLooksValid(buf_, 7));
  EXPECT_FALSE(page::PageLooksValid(buf_, 8));
}

TEST_F(SlottedPageTest, InsertAndRead) {
  auto payload = Bytes("hello world");
  auto slot = sp_.Insert(payload);
  ASSERT_TRUE(slot.ok());
  auto read = sp_.Read(*slot);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(ToString(*read), "hello world");
  EXPECT_EQ(sp_.LiveCount(), 1u);
}

TEST_F(SlottedPageTest, MultipleRecordsKeepDistinctSlots) {
  for (int i = 0; i < 10; ++i) {
    auto slot = sp_.Insert(Bytes("record-" + std::to_string(i)));
    ASSERT_TRUE(slot.ok());
    EXPECT_EQ(*slot, i);
  }
  for (int i = 0; i < 10; ++i) {
    auto read = sp_.Read(static_cast<uint16_t>(i));
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(ToString(*read), "record-" + std::to_string(i));
  }
}

TEST_F(SlottedPageTest, DeleteTombstonesAndReuses) {
  auto s0 = sp_.Insert(Bytes("aaa"));
  auto s1 = sp_.Insert(Bytes("bbb"));
  ASSERT_TRUE(s0.ok() && s1.ok());
  ASSERT_TRUE(sp_.Delete(*s0).ok());
  EXPECT_FALSE(sp_.IsLive(*s0));
  EXPECT_TRUE(sp_.Read(*s0).status().IsNotFound());
  EXPECT_TRUE(sp_.Delete(*s0).IsNotFound());
  // New insert reuses the tombstoned slot 0.
  auto s2 = sp_.Insert(Bytes("ccc"));
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, *s0);
  EXPECT_EQ(ToString(*sp_.Read(*s2)), "ccc");
}

TEST_F(SlottedPageTest, UpdateInPlaceAndGrow) {
  auto slot = sp_.Insert(Bytes("0123456789"));
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(sp_.Update(*slot, Bytes("short")).ok());
  EXPECT_EQ(ToString(*sp_.Read(*slot)), "short");
  ASSERT_TRUE(sp_.Update(*slot, Bytes(std::string(200, 'x'))).ok());
  EXPECT_EQ(sp_.Read(*slot)->size(), 200u);
}

TEST_F(SlottedPageTest, FillsUntilOutOfSpace) {
  std::vector<uint8_t> rec(100);
  int inserted = 0;
  for (;;) {
    auto slot = sp_.Insert(rec);
    if (!slot.ok()) {
      EXPECT_EQ(slot.status().code(), StatusCode::kOutOfSpace);
      break;
    }
    ++inserted;
  }
  // 8KB page, 100-byte records + 4-byte slots: ~78 fit.
  EXPECT_GT(inserted, 70);
  EXPECT_LT(inserted, 82);
  EXPECT_FALSE(sp_.Fits(100));
  EXPECT_TRUE(sp_.Fits(1));
}

TEST_F(SlottedPageTest, CompactionRecoversDeletedSpace) {
  std::vector<uint8_t> rec(500);
  std::vector<uint16_t> slots;
  while (true) {
    auto s = sp_.Insert(rec);
    if (!s.ok()) break;
    slots.push_back(*s);
  }
  // Delete every other record, then insert records that only fit after
  // compaction.
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(sp_.Delete(slots[i]).ok());
  }
  auto big = sp_.Insert(std::vector<uint8_t>(900));
  ASSERT_TRUE(big.ok()) << big.status().ToString();
  // Survivors are intact after compaction.
  for (size_t i = 1; i < slots.size(); i += 2) {
    EXPECT_TRUE(sp_.IsLive(slots[i]));
    EXPECT_EQ(sp_.Read(slots[i])->size(), 500u);
  }
}

TEST_F(SlottedPageTest, RejectsOversizeRecord) {
  auto r = sp_.Insert(std::vector<uint8_t>(kPageSize));
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SlottedPageTest, InsertAtForRedo) {
  ASSERT_TRUE(sp_.InsertAt(0, Bytes("redo")).ok());
  EXPECT_TRUE(sp_.InsertAt(0, Bytes("dup")).code() ==
              StatusCode::kAlreadyExists);
  // Commit-order replicated replay can materialize slot 5 before 1-4:
  // the gap becomes tombstones a later InsertAt (or Insert reuse) fills.
  ASSERT_TRUE(sp_.InsertAt(5, Bytes("gap")).ok());
  EXPECT_TRUE(sp_.IsLive(5));
  EXPECT_EQ(sp_.Read(5)->size(), Bytes("gap").size());
  for (uint16_t s = 1; s < 5; ++s) EXPECT_FALSE(sp_.IsLive(s));
  ASSERT_TRUE(sp_.InsertAt(3, Bytes("fill")).ok());
  EXPECT_TRUE(sp_.IsLive(3));
}

// ------------------------------------------------------------------ io ----

TEST(MemVolumeTest, ExtendReadWriteRoundtrip) {
  io::MemVolume vol;
  EXPECT_EQ(vol.NumPages(), 0u);
  ASSERT_TRUE(vol.Extend(16).ok());
  EXPECT_EQ(vol.NumPages(), 16u);

  alignas(8) uint8_t out[kPageSize];
  alignas(8) uint8_t in[kPageSize];
  std::memset(out, 0xab, sizeof(out));
  ASSERT_TRUE(vol.WritePage(5, out).ok());
  ASSERT_TRUE(vol.ReadPage(5, in).ok());
  EXPECT_EQ(std::memcmp(out, in, kPageSize), 0);
  EXPECT_EQ(vol.stats().reads.load(), 1u);
  EXPECT_EQ(vol.stats().writes.load(), 1u);
}

TEST(MemVolumeTest, FreshPagesAreZero) {
  io::MemVolume vol;
  ASSERT_TRUE(vol.Extend(4).ok());
  uint8_t in[kPageSize];
  ASSERT_TRUE(vol.ReadPage(3, in).ok());
  for (size_t i = 0; i < kPageSize; ++i) ASSERT_EQ(in[i], 0);
}

TEST(MemVolumeTest, OutOfRangeAccessFails) {
  io::MemVolume vol;
  ASSERT_TRUE(vol.Extend(2).ok());
  uint8_t buf[kPageSize] = {};
  EXPECT_EQ(vol.ReadPage(2, buf).code(), StatusCode::kIOError);
  EXPECT_EQ(vol.WritePage(9, buf).code(), StatusCode::kIOError);
}

TEST(MemVolumeTest, GrowthKeepsOldData) {
  io::MemVolume vol;
  ASSERT_TRUE(vol.Extend(1).ok());
  uint8_t buf[kPageSize];
  std::memset(buf, 0x77, sizeof(buf));
  ASSERT_TRUE(vol.WritePage(0, buf).ok());
  ASSERT_TRUE(vol.Extend(5000).ok());  // Crosses chunk boundaries.
  uint8_t in[kPageSize];
  ASSERT_TRUE(vol.ReadPage(0, in).ok());
  EXPECT_EQ(in[100], 0x77);
}

TEST(MemVolumeTest, ConcurrentWritersDistinctPages) {
  io::MemVolume vol;
  ASSERT_TRUE(vol.Extend(64).ok());
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&vol, t] {
      uint8_t buf[kPageSize];
      std::memset(buf, static_cast<uint8_t>(t + 1), sizeof(buf));
      for (int i = 0; i < 16; ++i) {
        ASSERT_TRUE(vol.WritePage(t * 16 + i, buf).ok());
      }
    });
  }
  for (auto& w : workers) w.join();
  uint8_t in[kPageSize];
  for (int t = 0; t < 4; ++t) {
    ASSERT_TRUE(vol.ReadPage(t * 16 + 7, in).ok());
    EXPECT_EQ(in[0], t + 1);
  }
}

TEST(FileVolumeTest, PersistsAcrossReopen) {
  std::string path = ::testing::TempDir() + "/shoremt_vol_test.db";
  ::unlink(path.c_str());
  {
    auto vol = io::FileVolume::Open(path);
    ASSERT_TRUE(vol.ok());
    ASSERT_TRUE((*vol)->Extend(8).ok());
    uint8_t buf[kPageSize];
    std::memset(buf, 0x5c, sizeof(buf));
    ASSERT_TRUE((*vol)->WritePage(3, buf).ok());
  }
  {
    auto vol = io::FileVolume::Open(path);
    ASSERT_TRUE(vol.ok());
    EXPECT_EQ((*vol)->NumPages(), 8u);
    uint8_t in[kPageSize];
    ASSERT_TRUE((*vol)->ReadPage(3, in).ok());
    EXPECT_EQ(in[4000], 0x5c);
  }
  ::unlink(path.c_str());
}

// --------------------------------------------------------------- space ----

class SpaceManagerTest : public ::testing::Test {
 protected:
  SpaceManagerTest() : sm_(&vol_, space::SpaceOptions{}) {}
  io::MemVolume vol_;
  space::SpaceManager sm_;
};

TEST_F(SpaceManagerTest, CreateAndDropStore) {
  EXPECT_TRUE(sm_.CreateStore(1).ok());
  EXPECT_TRUE(sm_.StoreExists(1));
  EXPECT_EQ(sm_.CreateStore(1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(sm_.CreateStore(kInvalidStoreId).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(sm_.DropStore(1).ok());
  EXPECT_FALSE(sm_.StoreExists(1));
  EXPECT_EQ(sm_.DropStore(1).code(), StatusCode::kNotFound);
}

TEST_F(SpaceManagerTest, AllocationFillsExtentsSequentially) {
  ASSERT_TRUE(sm_.CreateStore(1).ok());
  std::vector<PageNum> pages;
  for (int i = 0; i < 12; ++i) {
    auto p = sm_.AllocatePage(1, nullptr);
    ASSERT_TRUE(p.ok());
    pages.push_back(*p);
  }
  // First 8 pages fill extent 1 (extent 0 is reserved), contiguously.
  for (int i = 1; i < 8; ++i) EXPECT_EQ(pages[i], pages[i - 1] + 1);
  EXPECT_EQ(ExtentOf(pages[0]), 1u);
  EXPECT_EQ(ExtentOf(pages[8]), 2u);
  EXPECT_EQ(*sm_.PageCountOf(1), 12u);
  EXPECT_GE(vol_.NumPages(), pages.back() + 1);
}

TEST_F(SpaceManagerTest, InitCallbackReceivesPage) {
  ASSERT_TRUE(sm_.CreateStore(1).ok());
  PageNum seen = kInvalidPageNum;
  auto p = sm_.AllocatePage(1, [&](PageNum page) {
    seen = page;
    return Status::Ok();
  });
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(seen, *p);
}

TEST_F(SpaceManagerTest, OwnershipTracking) {
  ASSERT_TRUE(sm_.CreateStore(1).ok());
  ASSERT_TRUE(sm_.CreateStore(2).ok());
  auto p1 = sm_.AllocatePage(1, nullptr);
  auto p2 = sm_.AllocatePage(2, nullptr);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(*sm_.OwnerOf(*p1), 1u);
  EXPECT_EQ(*sm_.OwnerOf(*p2), 2u);
  EXPECT_TRUE(sm_.OwnerOf(*p1 + kPagesPerExtent * 50).status().IsNotFound());
}

TEST_F(SpaceManagerTest, ExtentCacheHitsOnRepeatedChecks) {
  ASSERT_TRUE(sm_.CreateStore(1).ok());
  auto p = sm_.AllocatePage(1, nullptr);
  ASSERT_TRUE(p.ok());
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(sm_.OwnerOf(*p).ok());
  // First check misses, the rest hit (same thread, hot extent).
  EXPECT_GE(sm_.stats().ownership_cache_hits.load(), 99u);
}

TEST_F(SpaceManagerTest, CacheInvalidatedByDrop) {
  ASSERT_TRUE(sm_.CreateStore(1).ok());
  auto p = sm_.AllocatePage(1, nullptr);
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(sm_.OwnerOf(*p).ok());  // Warm the cache.
  ASSERT_TRUE(sm_.DropStore(1).ok());
  EXPECT_TRUE(sm_.OwnerOf(*p).status().IsNotFound());
}

TEST_F(SpaceManagerTest, FreePageAndExtentRecycling) {
  ASSERT_TRUE(sm_.CreateStore(1).ok());
  std::vector<PageNum> pages;
  for (int i = 0; i < 8; ++i) {
    auto p = sm_.AllocatePage(1, nullptr);
    ASSERT_TRUE(p.ok());
    pages.push_back(*p);
  }
  for (PageNum p : pages) ASSERT_TRUE(sm_.FreePage(p).ok());
  EXPECT_EQ(*sm_.PageCountOf(1), 0u);
  EXPECT_TRUE(sm_.FreePage(pages[0]).IsNotFound());
  // The freed extent is reused by the next allocation.
  ASSERT_TRUE(sm_.CreateStore(2).ok());
  auto p = sm_.AllocatePage(2, nullptr);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(ExtentOf(*p), ExtentOf(pages[0]));
}

TEST_F(SpaceManagerTest, LastPageTracksAppends) {
  ASSERT_TRUE(sm_.CreateStore(1).ok());
  EXPECT_TRUE(sm_.LastPageOf(1).status().IsNotFound());
  PageNum last = kInvalidPageNum;
  for (int i = 0; i < 20; ++i) {
    auto p = sm_.AllocatePage(1, nullptr);
    ASSERT_TRUE(p.ok());
    last = *p;
  }
  EXPECT_EQ(*sm_.LastPageOf(1), last);
}

TEST(SpaceManagerStagedTest, NoLastPageCacheWalksChain) {
  io::MemVolume vol;
  space::SpaceOptions opts;
  opts.last_page_cache = false;
  space::SpaceManager sm(&vol, opts);
  ASSERT_TRUE(sm.CreateStore(1).ok());
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(sm.AllocatePage(1, nullptr).ok());
  ASSERT_TRUE(sm.LastPageOf(1).ok());
  EXPECT_EQ(sm.stats().last_page_scan_steps.load(), 50u);
  ASSERT_TRUE(sm.LastPageOf(1).ok());
  EXPECT_EQ(sm.stats().last_page_scan_steps.load(), 100u);
}

TEST(SpaceManagerStagedTest, NoExtentCacheAlwaysMisses) {
  io::MemVolume vol;
  space::SpaceOptions opts;
  opts.extent_cache = false;
  space::SpaceManager sm(&vol, opts);
  ASSERT_TRUE(sm.CreateStore(1).ok());
  auto p = sm.AllocatePage(1, nullptr);
  ASSERT_TRUE(p.ok());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(sm.OwnerOf(*p).ok());
  EXPECT_EQ(sm.stats().ownership_cache_hits.load(), 0u);
}

TEST(SpaceManagerStagedTest, FullScanOwnershipStillCorrect) {
  io::MemVolume vol;
  space::SpaceOptions opts;
  opts.extent_cache = false;
  opts.full_scan_ownership = true;
  space::SpaceManager sm(&vol, opts);
  ASSERT_TRUE(sm.CreateStore(1).ok());
  ASSERT_TRUE(sm.CreateStore(2).ok());
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(sm.AllocatePage(1, nullptr).ok());
  auto p = sm.AllocatePage(2, nullptr);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*sm.OwnerOf(*p), 2u);
}

TEST(SpaceManagerStagedTest, NonRefactoredRunsInitInsideCs) {
  // Behavioural contract only (timing covered by benches): init callback
  // still runs and failures propagate.
  io::MemVolume vol;
  space::SpaceOptions opts;
  opts.refactored_alloc = false;
  space::SpaceManager sm(&vol, opts);
  ASSERT_TRUE(sm.CreateStore(1).ok());
  auto p = sm.AllocatePage(
      1, [](PageNum) { return Status::IOError("injected"); });
  EXPECT_EQ(p.status().code(), StatusCode::kIOError);
}

TEST(SpaceManagerStagedTest, MutexKindsAllWork) {
  for (auto kind : {sync::MutexKind::kPthread, sync::MutexKind::kTtas,
                    sync::MutexKind::kMcs}) {
    io::MemVolume vol;
    space::SpaceOptions opts;
    opts.mutex_kind = kind;
    space::SpaceManager sm(&vol, opts);
    ASSERT_TRUE(sm.CreateStore(1).ok());
    std::vector<std::thread> workers;
    std::atomic<int> failures{0};
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&] {
        for (int i = 0; i < 50; ++i) {
          if (!sm.AllocatePage(1, nullptr).ok()) failures.fetch_add(1);
        }
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(*sm.PageCountOf(1), 200u);
    // All pages distinct.
    auto pages = sm.PagesOf(1);
    ASSERT_TRUE(pages.ok());
    std::set<PageNum> unique(pages->begin(), pages->end());
    EXPECT_EQ(unique.size(), 200u);
  }
}

TEST_F(SpaceManagerTest, RedoHooksRebuildState) {
  ASSERT_TRUE(sm_.ApplyCreateStore(9).ok());
  ASSERT_TRUE(sm_.ApplyAllocPage(9, 24).ok());
  ASSERT_TRUE(sm_.ApplyAllocPage(9, 25).ok());
  ASSERT_TRUE(sm_.ApplyAllocPage(9, 24).ok());  // Idempotent.
  EXPECT_EQ(*sm_.PageCountOf(9), 2u);
  EXPECT_EQ(*sm_.OwnerOf(24), 9u);
  EXPECT_EQ(*sm_.LastPageOf(9), 25u);
  // Conflicting redo is rejected.
  ASSERT_TRUE(sm_.ApplyCreateStore(10).ok());
  EXPECT_EQ(sm_.ApplyAllocPage(10, 25).code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace shoremt
