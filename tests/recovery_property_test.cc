#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "io/volume.h"
#include "log/log_storage.h"
#include "sm/options.h"
#include "sm/storage_manager.h"

namespace shoremt::sm {
namespace {

/// Randomized ARIES torture test: run a random transactional workload,
/// crash at a random point (nothing flushed to the volume except what
/// eviction/cleaner wrote), recover, and verify the database equals the
/// reference model of *committed* state — no lost committed writes, no
/// leaked uncommitted ones.
struct CrashCase {
  uint64_t seed;
  Stage stage;
  bool checkpoint_midway;
};

class RecoveryProperty : public ::testing::TestWithParam<CrashCase> {};

TEST_P(RecoveryProperty, CommittedStateSurvivesRandomCrash) {
  auto [seed, stage, checkpoint_midway] = GetParam();
  Rng rng(seed);
  io::MemVolume volume;
  log::LogStorage wal;

  // Reference model of committed state only.
  std::map<uint64_t, std::vector<uint8_t>> committed;

  {
    auto opened =
        StorageManager::Open(StorageOptions::ForStage(stage), &volume, &wal);
    ASSERT_TRUE(opened.ok());
    auto& db = *opened;
    auto* ddl = db->Begin();
    auto table = db->CreateTable(ddl, "t");
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(db->Commit(ddl).ok());

    int total_txns = 30 + static_cast<int>(rng.Uniform(30));
    int crash_after = static_cast<int>(rng.Uniform(total_txns));
    for (int i = 0; i < total_txns; ++i) {
      if (checkpoint_midway && i == crash_after / 2) {
        ASSERT_TRUE(db->Checkpoint().ok());
      }
      auto* txn = db->Begin();
      // Shadow of this transaction's effects.
      std::map<uint64_t, std::vector<uint8_t>> delta = committed;
      int ops = 1 + static_cast<int>(rng.Uniform(8));
      bool ok = true;
      for (int j = 0; j < ops && ok; ++j) {
        uint64_t key = rng.Uniform(200);
        int kind = static_cast<int>(rng.Uniform(100));
        if (kind < 55) {
          std::vector<uint8_t> payload(8 + rng.Uniform(120));
          for (auto& b : payload) b = static_cast<uint8_t>(rng.Next());
          if (delta.contains(key)) {
            ok = db->Update(txn, *table, key, payload).ok();
          } else {
            ok = db->Insert(txn, *table, key, payload).ok();
          }
          if (ok) delta[key] = payload;
        } else if (kind < 80) {
          if (delta.contains(key)) {
            ok = db->Delete(txn, *table, key).ok();
            if (ok) delta.erase(key);
          }
        } else {
          auto read = db->Read(txn, *table, key);
          if (delta.contains(key)) {
            ok = read.ok() && std::equal(read->begin(), read->end(),
                                         delta[key].begin(),
                                         delta[key].end());
          } else {
            ok = read.status().IsNotFound();
          }
        }
      }
      if (!ok) {
        ASSERT_TRUE(db->Abort(txn).ok());
      } else if (rng.Bernoulli(0.25)) {
        // Deliberate rollback: delta discarded.
        ASSERT_TRUE(db->Abort(txn).ok());
      } else {
        ASSERT_TRUE(db->Commit(txn).ok());
        committed = std::move(delta);
      }
      if (i == crash_after) {
        // Leave one transaction in flight at the crash for extra spice.
        auto* loser = db->Begin();
        (void)db->Insert(loser, *table, 9999,
                         std::vector<uint8_t>(16, 0xDE));
        break;
      }
    }
    db->SimulateCrash();
  }

  // Restart + recovery.
  auto reopened =
      StorageManager::Open(StorageOptions::ForStage(stage), &volume, &wal);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& db = *reopened;
  auto table = db->OpenTable("t");
  ASSERT_TRUE(table.ok());

  auto* check = db->Begin();
  // Every committed row present and intact.
  for (const auto& [key, payload] : committed) {
    auto read = db->Read(check, *table, key);
    ASSERT_TRUE(read.ok()) << "lost committed key " << key << " (seed "
                           << seed << ")";
    EXPECT_TRUE(std::equal(read->begin(), read->end(), payload.begin(),
                           payload.end()))
        << "corrupt committed key " << key << " (seed " << seed << ")";
  }
  // No extra rows (uncommitted leaks), checked via full scan.
  uint64_t rows = 0;
  ASSERT_TRUE(db->Scan(check, *table, 0, UINT64_MAX,
                       [&](uint64_t key, std::span<const uint8_t>) {
                         EXPECT_TRUE(committed.contains(key))
                             << "leaked uncommitted key " << key << " (seed "
                             << seed << ")";
                         ++rows;
                         return true;
                       }).ok());
  EXPECT_EQ(rows, committed.size());
  ASSERT_TRUE(db->Commit(check).ok());

  // And the recovered system remains fully usable.
  auto* writer = db->Begin();
  ASSERT_TRUE(db->Insert(writer, *table, 777777,
                         std::vector<uint8_t>(8, 0x42))
                  .ok());
  ASSERT_TRUE(db->Commit(writer).ok());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndStages, RecoveryProperty,
    ::testing::Values(CrashCase{1001, Stage::kFinal, false},
                      CrashCase{1002, Stage::kFinal, true},
                      CrashCase{1003, Stage::kFinal, true},
                      CrashCase{1004, Stage::kFinal, false},
                      CrashCase{2001, Stage::kBaseline, false},
                      CrashCase{2002, Stage::kBaseline, true},
                      CrashCase{3001, Stage::kLog, true},
                      CrashCase{3002, Stage::kBufferPool2, true},
                      CrashCase{4001, Stage::kCaching, false},
                      CrashCase{4002, Stage::kLockManager, true}),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed);
    });

/// Double-crash: crash during the post-recovery session too; recovery of
/// a recovered log (with CLRs in it) must be stable.
TEST(RecoveryProperty2, DoubleCrashWithClrsIsStable) {
  io::MemVolume volume;
  log::LogStorage wal;
  std::vector<uint8_t> payload(32, 0xAB);
  {
    auto db = std::move(*StorageManager::Open(
        StorageOptions::ForStage(Stage::kFinal), &volume, &wal));
    auto* ddl = db->Begin();
    auto table = db->CreateTable(ddl, "t");
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(db->Commit(ddl).ok());
    auto* t1 = db->Begin();
    ASSERT_TRUE(db->Insert(t1, *table, 1, payload).ok());
    ASSERT_TRUE(db->Commit(t1).ok());
    // Aborted txn → CLRs in the log.
    auto* t2 = db->Begin();
    ASSERT_TRUE(db->Update(t2, *table, 1, std::vector<uint8_t>(8, 1)).ok());
    ASSERT_TRUE(db->Insert(t2, *table, 2, payload).ok());
    ASSERT_TRUE(db->Abort(t2).ok());
    // In-flight txn at crash → restart undo writes more CLRs.
    auto* t3 = db->Begin();
    ASSERT_TRUE(db->Update(t3, *table, 1, std::vector<uint8_t>(8, 2)).ok());
    db->SimulateCrash();
  }
  for (int round = 0; round < 3; ++round) {
    auto db = std::move(*StorageManager::Open(
        StorageOptions::ForStage(Stage::kFinal), &volume, &wal));
    auto table = db->OpenTable("t");
    ASSERT_TRUE(table.ok());
    auto* check = db->Begin();
    auto read = db->Read(check, *table, 1);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read->size(), payload.size()) << "round " << round;
    EXPECT_TRUE(db->Read(check, *table, 2).status().IsNotFound());
    ASSERT_TRUE(db->Commit(check).ok());
    db->SimulateCrash();  // Crash again immediately after recovery.
  }
}

}  // namespace
}  // namespace shoremt::sm
