#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.h"
#include "io/io_scheduler.h"
#include "io/volume.h"

namespace shoremt::io {
namespace {

/// A volume filled with per-page fingerprints so reads are verifiable.
std::unique_ptr<MemVolume> MakeVolume(PageNum pages,
                                      VolumeOptions options = {}) {
  auto vol = std::make_unique<MemVolume>(options);
  EXPECT_TRUE(vol->Extend(pages).ok());
  std::vector<uint8_t> buf(kPageSize);
  for (PageNum p = 0; p < pages; ++p) {
    std::memset(buf.data(), static_cast<int>(p % 251), kPageSize);
    EXPECT_TRUE(vol->WritePage(p, buf.data()).ok());
  }
  return vol;
}

bool PageHasFingerprint(const uint8_t* buf, PageNum p) {
  uint8_t want = static_cast<uint8_t>(p % 251);
  for (size_t i = 0; i < kPageSize; ++i) {
    if (buf[i] != want) return false;
  }
  return true;
}

// ----------------------------------------------------------- vectored ops --

TEST(VolumeVectored, MemVolumeReadWriteRoundTrip) {
  auto vol = MakeVolume(16);
  uint64_t calls_before = vol->stats().reads.load();

  std::vector<std::vector<uint8_t>> bufs(4, std::vector<uint8_t>(kPageSize));
  uint8_t* ptrs[4];
  for (int i = 0; i < 4; ++i) ptrs[i] = bufs[i].data();
  ASSERT_TRUE(vol->ReadPagesV(3, ptrs, 4).ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(PageHasFingerprint(ptrs[i], 3 + i)) << "page " << 3 + i;
  }
  // One device call for four pages — the accounting must say so.
  EXPECT_EQ(vol->stats().reads.load(), calls_before + 1);
  EXPECT_EQ(vol->stats().batched_reads.load(), 1u);

  for (int i = 0; i < 4; ++i) std::memset(ptrs[i], 0xAB, kPageSize);
  const uint8_t* cptrs[4] = {ptrs[0], ptrs[1], ptrs[2], ptrs[3]};
  ASSERT_TRUE(vol->WritePagesV(8, cptrs, 4).ok());
  std::vector<uint8_t> check(kPageSize);
  for (PageNum p = 8; p < 12; ++p) {
    ASSERT_TRUE(vol->ReadPage(p, check.data()).ok());
    EXPECT_EQ(check[0], 0xAB);
    EXPECT_EQ(check[kPageSize - 1], 0xAB);
  }
}

TEST(VolumeVectored, BoundsCheckedAsAWhole) {
  auto vol = MakeVolume(4);
  std::vector<uint8_t> a(kPageSize), b(kPageSize);
  uint8_t* ptrs[2] = {a.data(), b.data()};
  // First page valid, second past the end: the whole run must fail.
  EXPECT_FALSE(vol->ReadPagesV(3, ptrs, 2).ok());
  const uint8_t* cptrs[2] = {a.data(), b.data()};
  EXPECT_FALSE(vol->WritePagesV(3, cptrs, 2).ok());
}

TEST(VolumeVectored, FileVolumePreadvPwritev) {
  std::string path = testing::TempDir() + "/io_test_vol.bin";
  std::remove(path.c_str());
  auto opened = FileVolume::Open(path);
  ASSERT_TRUE(opened.ok());
  auto vol = std::move(*opened);
  ASSERT_TRUE(vol->Extend(8).ok());

  std::vector<std::vector<uint8_t>> bufs(3, std::vector<uint8_t>(kPageSize));
  for (int i = 0; i < 3; ++i) {
    std::memset(bufs[i].data(), 0x30 + i, kPageSize);
  }
  const uint8_t* w[3] = {bufs[0].data(), bufs[1].data(), bufs[2].data()};
  ASSERT_TRUE(vol->WritePagesV(2, w, 3).ok());

  std::vector<std::vector<uint8_t>> in(3, std::vector<uint8_t>(kPageSize));
  uint8_t* r[3] = {in[0].data(), in[1].data(), in[2].data()};
  ASSERT_TRUE(vol->ReadPagesV(2, r, 3).ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(std::memcmp(in[i].data(), bufs[i].data(), kPageSize), 0);
  }
  std::remove(path.c_str());
}

TEST(VolumeVectored, DirectIoRequestFallsBackGracefully) {
  // On tmpfs O_DIRECT is rejected; the open must still succeed buffered
  // and I/O must work either way.
  std::string path = testing::TempDir() + "/io_test_direct.bin";
  std::remove(path.c_str());
  VolumeOptions options;
  options.direct_io = true;
  auto opened = FileVolume::Open(path, options);
  ASSERT_TRUE(opened.ok());
  auto vol = std::move(*opened);
  ASSERT_TRUE(vol->Extend(4).ok());
  // Deliberately misaligned buffer: the direct path must bounce, the
  // buffered path doesn't care.
  std::vector<uint8_t> raw(kPageSize + 64);
  uint8_t* misaligned = raw.data() + 1;
  std::memset(misaligned, 0x77, kPageSize);
  ASSERT_TRUE(vol->WritePage(1, misaligned).ok());
  std::vector<uint8_t> check(kPageSize);
  ASSERT_TRUE(vol->ReadPage(1, check.data()).ok());
  EXPECT_EQ(check[0], 0x77);
  EXPECT_EQ(check[kPageSize - 1], 0x77);
  std::remove(path.c_str());
}

// ------------------------------------------------------------- scheduler ---

TEST(IoScheduler, RingSubmitPollHarvestsEveryCompletion) {
  auto vol = MakeVolume(64);
  IoScheduler sched(vol.get());
  auto ring = sched.CreateRing();

  std::mutex mu;
  std::map<PageNum, bool> seen;  // page -> fingerprint ok
  std::vector<std::vector<uint8_t>> bufs(32, std::vector<uint8_t>(kPageSize));
  for (PageNum p = 0; p < 32; ++p) {
    ring->QueueRead(p, bufs[p].data(), [&, p](PageNum page, Status st) {
      ASSERT_TRUE(st.ok());
      ASSERT_EQ(page, p);
      std::lock_guard<std::mutex> g(mu);
      seen[p] = PageHasFingerprint(bufs[p].data(), p);
    });
  }
  ring->Submit();
  size_t harvested = 0;
  while (harvested < 32) {
    harvested += ring->Poll();
    std::this_thread::yield();
  }
  EXPECT_EQ(harvested, 32u);
  EXPECT_EQ(ring->in_flight(), 0u);
  EXPECT_TRUE(ring->Drain().ok());
  std::lock_guard<std::mutex> g(mu);
  ASSERT_EQ(seen.size(), 32u);
  for (const auto& [page, ok] : seen) EXPECT_TRUE(ok) << "page " << page;
}

TEST(IoScheduler, CoalescesAdjacentRunsIntoSingleDeviceCalls) {
  auto vol = MakeVolume(64);
  IoSchedulerOptions options;
  options.workers = 1;  // Deterministic device-call accounting.
  options.max_run_pages = 16;
  IoScheduler sched(vol.get(), options);
  auto ring = sched.CreateRing();

  // Three adjacent runs with gaps: [4..9], [20..21], [40].
  std::vector<std::vector<uint8_t>> bufs(9, std::vector<uint8_t>(kPageSize));
  size_t i = 0;
  for (PageNum p : {4, 5, 6, 7, 8, 9, 20, 21, 40}) {
    ring->QueueRead(p, bufs[i++].data());
  }
  EXPECT_EQ(ring->Submit(), 3u);
  ASSERT_TRUE(ring->Drain().ok());

  EXPECT_EQ(sched.stats().device_calls.load(), 3u);
  EXPECT_EQ(sched.stats().batched_calls.load(), 2u);       // 6-run + 2-run.
  EXPECT_EQ(sched.stats().coalesced_pages.load(), 6u);     // (6-1) + (2-1).
  EXPECT_EQ(sched.stats().submitted.load(), 9u);
  EXPECT_EQ(sched.stats().completed.load(), 9u);
  i = 0;
  for (PageNum p : {4, 5, 6, 7, 8, 9, 20, 21, 40}) {
    EXPECT_TRUE(PageHasFingerprint(bufs[i++].data(), p)) << "page " << p;
  }
}

TEST(IoScheduler, CoalescingRespectsKindAndRunCap) {
  auto vol = MakeVolume(64);
  IoSchedulerOptions options;
  options.workers = 1;
  options.max_run_pages = 4;
  IoScheduler sched(vol.get(), options);
  auto ring = sched.CreateRing();

  // 8 adjacent pages with a 4-page cap -> 2 runs; a write wedged between
  // adjacent reads always breaks the run.
  std::vector<std::vector<uint8_t>> bufs(11, std::vector<uint8_t>(kPageSize));
  for (int k = 0; k < 8; ++k) ring->QueueRead(k, bufs[k].data());
  EXPECT_EQ(ring->Submit(), 2u);

  ring->QueueRead(20, bufs[8].data());
  ring->QueueWrite(21, bufs[9].data());
  ring->QueueRead(22, bufs[10].data());
  EXPECT_EQ(ring->Submit(), 3u);
  ASSERT_TRUE(ring->Drain().ok());
}

TEST(IoScheduler, BoundedWindowExertsBackpressure) {
  VolumeOptions vol_options;
  vol_options.write_latency_ns = 200'000;  // 200us per device call.
  auto vol = MakeVolume(64, vol_options);
  IoSchedulerOptions options;
  options.workers = 1;
  options.ring_window = 2;
  options.max_run_pages = 1;  // Every request is its own run.
  IoScheduler sched(vol.get(), options);
  auto ring = sched.CreateRing();

  std::vector<uint8_t> buf(kPageSize, 0x11);
  // Non-adjacent writes so nothing coalesces: 8 requests through a
  // window of 2 must block Submit at least once.
  for (PageNum p = 0; p < 16; p += 2) ring->QueueWrite(p, buf.data());
  ring->Submit();
  ASSERT_TRUE(ring->Drain().ok());
  EXPECT_GT(sched.stats().backpressure_waits.load(), 0u);
  EXPECT_EQ(sched.stats().completed.load(), 8u);
}

TEST(IoScheduler, ErrorsAreStickyPerRequestNotPerBatch) {
  auto vol = MakeVolume(8);  // Pages 0..7 valid.
  IoSchedulerOptions options;
  options.workers = 1;
  IoScheduler sched(vol.get(), options);
  auto ring = sched.CreateRing();

  std::vector<uint8_t> buf(kPageSize, 0x22);
  std::mutex mu;
  std::map<PageNum, bool> ok_by_page;
  auto record = [&](PageNum page, Status st) {
    std::lock_guard<std::mutex> g(mu);
    ok_by_page[page] = st.ok();
  };
  // Three separate runs (gaps force the split): valid, past-the-end
  // (fails), valid. The middle failure must not poison its neighbors.
  ring->QueueWrite(2, buf.data(), record);
  ring->QueueWrite(100, buf.data(), record);
  ring->QueueWrite(5, buf.data(), record);
  EXPECT_EQ(ring->Submit(), 3u);

  Status st = ring->Drain();
  EXPECT_FALSE(st.ok()) << "drain must surface the sticky first error";
  std::lock_guard<std::mutex> g(mu);
  EXPECT_TRUE(ok_by_page[2]);
  EXPECT_FALSE(ok_by_page[100]);
  EXPECT_TRUE(ok_by_page[5]);
  EXPECT_EQ(sched.stats().errors.load(), 1u);
  // A second drain after the error was consumed reports clean.
  EXPECT_TRUE(ring->Drain().ok());
}

TEST(IoScheduler, DetachedSubmissionRecyclesSlotsAndShedsWhenFull) {
  auto vol = MakeVolume(16);
  IoSchedulerOptions options;
  options.workers = 2;
  options.slots = 4;
  IoScheduler sched(vol.get(), options);

  std::atomic<size_t> done{0};
  std::vector<std::vector<uint8_t>> bufs(64, std::vector<uint8_t>(kPageSize));
  size_t accepted = 0;
  for (size_t k = 0; k < 64; ++k) {
    Status st = sched.TrySubmitDetached(
        IoOpKind::kRead, k % 16, bufs[k].data(),
        [&](PageNum, Status s) {
          ASSERT_TRUE(s.ok());
          done.fetch_add(1);
        });
    if (st.ok()) {
      ++accepted;
    } else {
      EXPECT_TRUE(st.IsBusy()) << st.ToString();
    }
  }
  EXPECT_GT(accepted, 0u);
  while (done.load() < accepted) std::this_thread::yield();
  // Slots recycled: a fresh submission after the storm must fit again.
  EXPECT_TRUE(sched
                  .TrySubmitDetached(IoOpKind::kRead, 0, bufs[0].data(),
                                     [&](PageNum, Status) { done.fetch_add(1); })
                  .ok());
  while (done.load() < accepted + 1) std::this_thread::yield();
}

TEST(IoScheduler, TeardownWithInFlightOpsExecutesEverythingQueued) {
  VolumeOptions vol_options;
  vol_options.write_latency_ns = 100'000;
  auto vol = MakeVolume(32, vol_options);
  std::atomic<size_t> done{0};
  std::vector<uint8_t> buf(kPageSize, 0x33);
  {
    IoSchedulerOptions options;
    options.workers = 1;
    options.max_run_pages = 1;
    IoScheduler sched(vol.get(), options);
    auto ring = sched.CreateRing();
    for (PageNum p = 0; p < 24; p += 2) {
      ring->QueueWrite(p, buf.data(),
                       [&](PageNum, Status) { done.fetch_add(1); });
    }
    ring->Submit();
    // Destroy ring + scheduler immediately: the ring drains, the
    // scheduler executes whatever is still queued before stopping.
  }
  EXPECT_EQ(done.load(), 12u);
  std::vector<uint8_t> check(kPageSize);
  for (PageNum p = 0; p < 24; p += 2) {
    ASSERT_TRUE(vol->ReadPage(p, check.data()).ok());
    EXPECT_EQ(check[0], 0x33) << "page " << p;
  }
}

}  // namespace
}  // namespace shoremt::io
