#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "io/volume.h"
#include "log/log_storage.h"
#include "sm/options.h"
#include "sm/storage_manager.h"

namespace shoremt::sm {
namespace {

std::vector<uint8_t> Row(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::string AsString(const std::vector<uint8_t>& v) {
  return std::string(v.begin(), v.end());
}

/// Durable state (volume + log) that outlives StorageManager instances, so
/// tests can crash and reopen.
struct Durable {
  io::MemVolume volume;
  log::LogStorage log;

  Result<std::unique_ptr<StorageManager>> Open(
      StorageOptions options = StorageOptions::ForStage(Stage::kFinal)) {
    return StorageManager::Open(options, &volume, &log);
  }
};

TEST(StorageManagerTest, CreateOpenTable) {
  Durable d;
  auto sm = d.Open();
  ASSERT_TRUE(sm.ok());
  auto* txn = (*sm)->Begin();
  auto table = (*sm)->CreateTable(txn, "users");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*sm)->CreateTable(txn, "users").status().code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE((*sm)->Commit(txn).ok());
  auto opened = (*sm)->OpenTable("users");
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->heap_store, table->heap_store);
  EXPECT_TRUE((*sm)->OpenTable("ghosts").status().IsNotFound());
}

TEST(StorageManagerTest, InsertReadRoundtrip) {
  Durable d;
  auto sm = d.Open();
  ASSERT_TRUE(sm.ok());
  auto* txn = (*sm)->Begin();
  auto table = (*sm)->CreateTable(txn, "t");
  ASSERT_TRUE(table.ok());
  auto rid = (*sm)->Insert(txn, *table, 7, Row("hello"));
  ASSERT_TRUE(rid.ok());
  auto read = (*sm)->Read(txn, *table, 7);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(AsString(*read), "hello");
  EXPECT_TRUE((*sm)->Read(txn, *table, 8).status().IsNotFound());
  ASSERT_TRUE((*sm)->Commit(txn).ok());
}

TEST(StorageManagerTest, UpdateAndDelete) {
  Durable d;
  auto sm = d.Open();
  ASSERT_TRUE(sm.ok());
  auto* txn = (*sm)->Begin();
  auto table = (*sm)->CreateTable(txn, "t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*sm)->Insert(txn, *table, 1, Row("v1")).ok());
  ASSERT_TRUE((*sm)->Update(txn, *table, 1, Row("v2-longer")).ok());
  EXPECT_EQ(AsString(*(*sm)->Read(txn, *table, 1)), "v2-longer");
  ASSERT_TRUE((*sm)->Delete(txn, *table, 1).ok());
  EXPECT_TRUE((*sm)->Read(txn, *table, 1).status().IsNotFound());
  EXPECT_TRUE((*sm)->Delete(txn, *table, 1).IsNotFound());
  ASSERT_TRUE((*sm)->Commit(txn).ok());
}

TEST(StorageManagerTest, ScanOrderedRange) {
  Durable d;
  auto sm = d.Open();
  ASSERT_TRUE(sm.ok());
  auto* txn = (*sm)->Begin();
  auto table = (*sm)->CreateTable(txn, "t");
  ASSERT_TRUE(table.ok());
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(
        (*sm)->Insert(txn, *table, k, Row("row" + std::to_string(k))).ok());
  }
  ASSERT_TRUE((*sm)->Commit(txn).ok());

  auto* txn2 = (*sm)->Begin();
  std::vector<uint64_t> keys;
  ASSERT_TRUE((*sm)->Scan(txn2, *table, 10, 20,
                          [&](uint64_t key, std::span<const uint8_t> row) {
                            keys.push_back(key);
                            EXPECT_EQ(std::string(row.begin(), row.end()),
                                      "row" + std::to_string(key));
                            return true;
                          }).ok());
  ASSERT_EQ(keys.size(), 11u);
  EXPECT_EQ(keys.front(), 10u);
  EXPECT_EQ(keys.back(), 20u);
  ASSERT_TRUE((*sm)->Commit(txn2).ok());
}

TEST(StorageManagerTest, AbortRollsBackHeapAndIndex) {
  Durable d;
  auto sm = d.Open();
  ASSERT_TRUE(sm.ok());
  auto* setup = (*sm)->Begin();
  auto table = (*sm)->CreateTable(setup, "t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*sm)->Insert(setup, *table, 1, Row("keep")).ok());
  ASSERT_TRUE((*sm)->Commit(setup).ok());

  auto* txn = (*sm)->Begin();
  ASSERT_TRUE((*sm)->Insert(txn, *table, 2, Row("discard")).ok());
  ASSERT_TRUE((*sm)->Update(txn, *table, 1, Row("mutated")).ok());
  ASSERT_TRUE((*sm)->Abort(txn).ok());

  auto* check = (*sm)->Begin();
  EXPECT_TRUE((*sm)->Read(check, *table, 2).status().IsNotFound())
      << "aborted insert must vanish from the index";
  EXPECT_EQ(AsString(*(*sm)->Read(check, *table, 1)), "keep")
      << "aborted update must restore the old image";
  ASSERT_TRUE((*sm)->Commit(check).ok());
}

TEST(StorageManagerTest, AbortRestoresDeletedRow) {
  Durable d;
  auto sm = d.Open();
  ASSERT_TRUE(sm.ok());
  auto* setup = (*sm)->Begin();
  auto table = (*sm)->CreateTable(setup, "t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*sm)->Insert(setup, *table, 5, Row("precious")).ok());
  ASSERT_TRUE((*sm)->Commit(setup).ok());

  auto* txn = (*sm)->Begin();
  ASSERT_TRUE((*sm)->Delete(txn, *table, 5).ok());
  ASSERT_TRUE((*sm)->Abort(txn).ok());

  auto* check = (*sm)->Begin();
  EXPECT_EQ(AsString(*(*sm)->Read(check, *table, 5)), "precious");
  ASSERT_TRUE((*sm)->Commit(check).ok());
}

TEST(StorageManagerTest, DuplicateKeyInsertFailsCleanly) {
  Durable d;
  auto sm = d.Open();
  ASSERT_TRUE(sm.ok());
  auto* txn = (*sm)->Begin();
  auto table = (*sm)->CreateTable(txn, "t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*sm)->Insert(txn, *table, 1, Row("first")).ok());
  EXPECT_EQ((*sm)->Insert(txn, *table, 1, Row("second")).status().code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE((*sm)->Abort(txn).ok());
}

TEST(StorageManagerTest, CrashBeforeCommitLosesNothingDurable) {
  Durable d;
  TableInfo table;
  {
    auto sm = d.Open();
    ASSERT_TRUE(sm.ok());
    auto* setup = (*sm)->Begin();
    auto t = (*sm)->CreateTable(setup, "t");
    ASSERT_TRUE(t.ok());
    table = *t;
    ASSERT_TRUE((*sm)->Insert(setup, table, 1, Row("durable")).ok());
    ASSERT_TRUE((*sm)->Commit(setup).ok());

    auto* loser = (*sm)->Begin();
    ASSERT_TRUE((*sm)->Insert(loser, table, 2, Row("in-flight")).ok());
    ASSERT_TRUE((*sm)->Update(loser, table, 1, Row("tampered")).ok());
    // Crash: loser never commits; nothing was flushed to the volume.
    (*sm)->SimulateCrash();
  }
  auto sm = d.Open();
  ASSERT_TRUE(sm.ok()) << sm.status().ToString();
  auto* check = (*sm)->Begin();
  auto reopened = (*sm)->OpenTable("t");
  ASSERT_TRUE(reopened.ok()) << "catalog must survive via the log";
  EXPECT_EQ(AsString(*(*sm)->Read(check, *reopened, 1)), "durable");
  EXPECT_TRUE((*sm)->Read(check, *reopened, 2).status().IsNotFound());
  ASSERT_TRUE((*sm)->Commit(check).ok());
}

TEST(StorageManagerTest, CrashAfterCommitPreservesEverything) {
  Durable d;
  {
    auto sm = d.Open();
    ASSERT_TRUE(sm.ok());
    auto* txn = (*sm)->Begin();
    auto table = (*sm)->CreateTable(txn, "t");
    ASSERT_TRUE(table.ok());
    for (uint64_t k = 0; k < 200; ++k) {
      ASSERT_TRUE(
          (*sm)->Insert(txn, *table, k, Row("val" + std::to_string(k))).ok());
    }
    ASSERT_TRUE((*sm)->Commit(txn).ok());
    (*sm)->SimulateCrash();  // Volume never saw most of these pages.
  }
  auto sm = d.Open();
  ASSERT_TRUE(sm.ok()) << sm.status().ToString();
  auto table = (*sm)->OpenTable("t");
  ASSERT_TRUE(table.ok());
  auto* check = (*sm)->Begin();
  for (uint64_t k = 0; k < 200; ++k) {
    auto read = (*sm)->Read(check, *table, k);
    ASSERT_TRUE(read.ok()) << "key " << k << ": " << read.status().ToString();
    EXPECT_EQ(AsString(*read), "val" + std::to_string(k));
  }
  ASSERT_TRUE((*sm)->Commit(check).ok());
}

TEST(StorageManagerTest, RecoveryIsIdempotentAcrossDoubleCrash) {
  Durable d;
  {
    auto sm = d.Open();
    ASSERT_TRUE(sm.ok());
    auto* txn = (*sm)->Begin();
    auto table = (*sm)->CreateTable(txn, "t");
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE((*sm)->Insert(txn, *table, 1, Row("one")).ok());
    ASSERT_TRUE((*sm)->Commit(txn).ok());
    auto* loser = (*sm)->Begin();
    ASSERT_TRUE((*sm)->Insert(loser, *table, 2, Row("two")).ok());
    (*sm)->SimulateCrash();
  }
  {
    // First recovery, then crash again immediately.
    auto sm = d.Open();
    ASSERT_TRUE(sm.ok());
    (*sm)->SimulateCrash();
  }
  auto sm = d.Open();
  ASSERT_TRUE(sm.ok());
  auto table = (*sm)->OpenTable("t");
  ASSERT_TRUE(table.ok());
  auto* check = (*sm)->Begin();
  EXPECT_EQ(AsString(*(*sm)->Read(check, *table, 1)), "one");
  EXPECT_TRUE((*sm)->Read(check, *table, 2).status().IsNotFound());
  ASSERT_TRUE((*sm)->Commit(check).ok());
}

TEST(StorageManagerTest, CheckpointBoundsRecoveryWork) {
  Durable d;
  {
    auto sm = d.Open();
    ASSERT_TRUE(sm.ok());
    auto* txn = (*sm)->Begin();
    auto table = (*sm)->CreateTable(txn, "t");
    ASSERT_TRUE(table.ok());
    for (uint64_t k = 0; k < 100; ++k) {
      ASSERT_TRUE((*sm)->Insert(txn, *table, k, Row("x")).ok());
    }
    ASSERT_TRUE((*sm)->Commit(txn).ok());
    auto ck = (*sm)->Checkpoint();
    ASSERT_TRUE(ck.ok());
    auto* txn2 = (*sm)->Begin();
    ASSERT_TRUE((*sm)->Insert(txn2, *table, 1000, Row("tail")).ok());
    ASSERT_TRUE((*sm)->Commit(txn2).ok());
    (*sm)->SimulateCrash();
  }
  auto sm = d.Open();
  ASSERT_TRUE(sm.ok());
  auto table = (*sm)->OpenTable("t");
  ASSERT_TRUE(table.ok());
  auto* check = (*sm)->Begin();
  EXPECT_TRUE((*sm)->Read(check, *table, 50).ok());
  EXPECT_TRUE((*sm)->Read(check, *table, 1000).ok());
  ASSERT_TRUE((*sm)->Commit(check).ok());
}

TEST(StorageManagerTest, BlockingCheckpointVariantAlsoRecovers) {
  Durable d;
  StorageOptions opts = StorageOptions::ForStage(Stage::kFinal);
  opts.decoupled_checkpoint = false;
  {
    auto sm = d.Open(opts);
    ASSERT_TRUE(sm.ok());
    auto* txn = (*sm)->Begin();
    auto table = (*sm)->CreateTable(txn, "t");
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE((*sm)->Insert(txn, *table, 1, Row("v")).ok());
    ASSERT_TRUE((*sm)->Commit(txn).ok());
    ASSERT_TRUE((*sm)->Checkpoint().ok());
    (*sm)->SimulateCrash();
  }
  auto sm = d.Open(opts);
  ASSERT_TRUE(sm.ok());
  auto table = (*sm)->OpenTable("t");
  ASSERT_TRUE(table.ok());
  auto* check = (*sm)->Begin();
  EXPECT_TRUE((*sm)->Read(check, *table, 1).ok());
  ASSERT_TRUE((*sm)->Commit(check).ok());
}

TEST(StorageManagerTest, ConcurrentPrivateTables) {
  // The paper's Figure 1 setup in miniature: each client inserts into its
  // own table — no logical contention, only internal structures shared.
  Durable d;
  auto sm = d.Open();
  ASSERT_TRUE(sm.ok());
  constexpr int kClients = 4;
  constexpr uint64_t kRows = 300;
  std::vector<TableInfo> tables(kClients);
  for (int c = 0; c < kClients; ++c) {
    auto* txn = (*sm)->Begin();
    auto t = (*sm)->CreateTable(txn, "client" + std::to_string(c));
    ASSERT_TRUE(t.ok());
    tables[c] = *t;
    ASSERT_TRUE((*sm)->Commit(txn).ok());
  }
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      auto* txn = (*sm)->Begin();
      for (uint64_t k = 0; k < kRows; ++k) {
        if (!(*sm)->Insert(txn, tables[c], k, Row("r")).ok()) {
          failures.fetch_add(1);
        }
        if ((k + 1) % 100 == 0) {
          if (!(*sm)->Commit(txn).ok()) failures.fetch_add(1);
          txn = (*sm)->Begin();
        }
      }
      if (!(*sm)->Commit(txn).ok()) failures.fetch_add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  auto* check = (*sm)->Begin();
  for (int c = 0; c < kClients; ++c) {
    uint64_t seen = 0;
    ASSERT_TRUE((*sm)->Scan(check, tables[c], 0, UINT64_MAX,
                            [&](uint64_t, std::span<const uint8_t>) {
                              ++seen;
                              return true;
                            }).ok());
    EXPECT_EQ(seen, kRows) << "client " << c;
  }
  ASSERT_TRUE((*sm)->Commit(check).ok());
}

class StagePresetTest : public ::testing::TestWithParam<Stage> {};

TEST_P(StagePresetTest, FullWorkloadIsCorrectAtEveryStage) {
  // Every §7 stage must produce the same answers — the stages differ only
  // in scalability, never in semantics.
  Durable d;
  auto sm = d.Open(StorageOptions::ForStage(GetParam()));
  ASSERT_TRUE(sm.ok());
  auto* txn = (*sm)->Begin();
  auto table = (*sm)->CreateTable(txn, "t");
  ASSERT_TRUE(table.ok());
  for (uint64_t k = 0; k < 150; ++k) {
    ASSERT_TRUE(
        (*sm)->Insert(txn, *table, k, Row("v" + std::to_string(k))).ok());
  }
  ASSERT_TRUE((*sm)->Commit(txn).ok());

  auto* loser = (*sm)->Begin();
  ASSERT_TRUE((*sm)->Update(loser, *table, 3, Row("bad")).ok());
  ASSERT_TRUE((*sm)->Abort(loser).ok());

  auto* check = (*sm)->Begin();
  EXPECT_EQ(AsString(*(*sm)->Read(check, *table, 3)), "v3");
  EXPECT_EQ(AsString(*(*sm)->Read(check, *table, 149)), "v149");
  ASSERT_TRUE((*sm)->Commit(check).ok());
}

TEST_P(StagePresetTest, RecoversAfterCrash) {
  Durable d;
  {
    auto sm = d.Open(StorageOptions::ForStage(GetParam()));
    ASSERT_TRUE(sm.ok());
    auto* txn = (*sm)->Begin();
    auto table = (*sm)->CreateTable(txn, "t");
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE((*sm)->Insert(txn, *table, 42, Row("answer")).ok());
    ASSERT_TRUE((*sm)->Commit(txn).ok());
    (*sm)->SimulateCrash();
  }
  auto sm = d.Open(StorageOptions::ForStage(GetParam()));
  ASSERT_TRUE(sm.ok());
  auto table = (*sm)->OpenTable("t");
  ASSERT_TRUE(table.ok());
  auto* check = (*sm)->Begin();
  EXPECT_EQ(AsString(*(*sm)->Read(check, *table, 42)), "answer");
  ASSERT_TRUE((*sm)->Commit(check).ok());
}

INSTANTIATE_TEST_SUITE_P(AllStages, StagePresetTest,
                         ::testing::ValuesIn(kAllStages),
                         [](const auto& info) {
                           std::string name(StageName(info.param));
                           for (char& c : name) {
                             if (c == ' ') c = '_';
                           }
                           return name;
                         });

TEST(StorageManagerTest, LargeRowsRejected) {
  Durable d;
  auto sm = d.Open();
  ASSERT_TRUE(sm.ok());
  auto* txn = (*sm)->Begin();
  auto table = (*sm)->CreateTable(txn, "t");
  ASSERT_TRUE(table.ok());
  std::vector<uint8_t> huge(kPageSize, 0);
  EXPECT_EQ((*sm)->Insert(txn, *table, 1, huge).status().code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE((*sm)->Abort(txn).ok());
}

TEST(StorageManagerTest, RowConflictBetweenTxnsTimesOut) {
  Durable d;
  StorageOptions opts = StorageOptions::ForStage(Stage::kFinal);
  opts.lock.timeout_us = 30'000;
  auto sm = d.Open(opts);
  ASSERT_TRUE(sm.ok());
  auto* t1 = (*sm)->Begin();
  auto table = (*sm)->CreateTable(t1, "t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*sm)->Insert(t1, *table, 1, Row("v")).ok());
  ASSERT_TRUE((*sm)->Commit(t1).ok());

  auto* writer = (*sm)->Begin();
  ASSERT_TRUE((*sm)->Update(writer, *table, 1, Row("w")).ok());
  auto* reader = (*sm)->Begin();
  EXPECT_TRUE((*sm)->Read(reader, *table, 1).status().IsDeadlock())
      << "reader must time out against the writer's X lock";
  ASSERT_TRUE((*sm)->Abort(reader).ok());
  ASSERT_TRUE((*sm)->Commit(writer).ok());
}

}  // namespace
}  // namespace shoremt::sm
