#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "btree/btree.h"
#include "btree/btree_node.h"
#include "buffer/buffer_pool.h"
#include "buffer/frame_table.h"
#include "common/random.h"
#include "io/volume.h"
#include "lock/lock_manager.h"
#include "lock/txn_lock_list.h"
#include "log/log_manager.h"
#include "log/log_record.h"
#include "log/log_storage.h"
#include "page/slotted_page.h"
#include "space/space_manager.h"
#include "txn/txn_manager.h"

namespace shoremt {
namespace {

// Each property suite runs the same randomized scenario under several
// seeds via TEST_P; a failure message carries the seed for replay.

// ----------------------------------------------------- slotted page ------

class SlottedPageProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlottedPageProperty, RandomOpsMatchReferenceModel) {
  Rng rng(GetParam());
  alignas(8) uint8_t buf[kPageSize] = {};
  page::SlottedPage sp(buf);
  sp.Init(1, 1, page::PageType::kData);

  std::map<uint16_t, std::vector<uint8_t>> model;  // slot → payload.
  for (int op = 0; op < 3000; ++op) {
    int kind = static_cast<int>(rng.Uniform(100));
    if (kind < 45) {  // Insert.
      std::vector<uint8_t> payload(rng.Uniform(300) + 1);
      for (auto& b : payload) b = static_cast<uint8_t>(rng.Next());
      auto slot = sp.Insert(payload);
      if (slot.ok()) {
        ASSERT_FALSE(model.contains(*slot)) << "live slot reused";
        model[*slot] = payload;
      } else {
        ASSERT_EQ(slot.status().code(), StatusCode::kOutOfSpace);
      }
    } else if (kind < 65 && !model.empty()) {  // Delete random live slot.
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_TRUE(sp.Delete(it->first).ok());
      model.erase(it);
    } else if (kind < 85 && !model.empty()) {  // Update random live slot.
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      std::vector<uint8_t> payload(rng.Uniform(200) + 1);
      for (auto& b : payload) b = static_cast<uint8_t>(rng.Next());
      Status st = sp.Update(it->first, payload);
      if (st.ok()) {
        it->second = payload;
      } else {
        ASSERT_EQ(st.code(), StatusCode::kOutOfSpace);
      }
    } else if (kind < 95) {  // Read random slot (live or not).
      uint16_t slot = static_cast<uint16_t>(rng.Uniform(sp.SlotCount() + 2));
      auto rec = sp.Read(slot);
      auto it = model.find(slot);
      if (it == model.end()) {
        EXPECT_FALSE(rec.ok());
      } else {
        ASSERT_TRUE(rec.ok());
        EXPECT_TRUE(std::equal(rec->begin(), rec->end(),
                               it->second.begin(), it->second.end()));
      }
    } else {  // Compact; contents must be preserved.
      sp.Compact();
    }
  }
  // Full final audit.
  EXPECT_EQ(sp.LiveCount(), model.size());
  for (const auto& [slot, payload] : model) {
    auto rec = sp.Read(slot);
    ASSERT_TRUE(rec.ok()) << "slot " << slot;
    EXPECT_TRUE(std::equal(rec->begin(), rec->end(), payload.begin(),
                           payload.end()))
        << "slot " << slot;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlottedPageProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ----------------------------------------------------- frame tables ------

struct FrameTableCase {
  buffer::TableKind kind;
  uint64_t seed;
};

class FrameTableProperty : public ::testing::TestWithParam<FrameTableCase> {};

TEST_P(FrameTableProperty, RandomOpsMatchReferenceMap) {
  auto [kind, seed] = GetParam();
  Rng rng(seed);
  auto table = buffer::MakeFrameTable(kind, 512);
  std::unordered_map<PageNum, int> model;

  for (int op = 0; op < 8000; ++op) {
    PageNum page = 1 + rng.Uniform(700);
    int kind_sel = static_cast<int>(rng.Uniform(100));
    if (kind_sel < 40) {
      int frame = static_cast<int>(rng.Uniform(512));
      bool inserted = table->Insert(page, frame);
      EXPECT_EQ(inserted, !model.contains(page)) << "page " << page;
      if (inserted) model[page] = frame;
    } else if (kind_sel < 65) {
      bool erased = table->EraseIf(page, [](int) { return true; });
      EXPECT_EQ(erased, model.erase(page) > 0) << "page " << page;
    } else if (kind_sel < 80) {
      // Vetoed erase never changes anything.
      table->EraseIf(page, [](int) { return false; });
      int found = table->FindAndPin(page, [](int) {});
      auto it = model.find(page);
      EXPECT_EQ(found, it == model.end() ? -1 : it->second);
    } else {
      int found = table->FindAndPin(page, [](int) {});
      auto it = model.find(page);
      EXPECT_EQ(found, it == model.end() ? -1 : it->second) << "page "
                                                            << page;
    }
  }
  EXPECT_EQ(table->Size(), model.size());
  for (const auto& [page, frame] : model) {
    EXPECT_EQ(table->FindAndPin(page, [](int) {}), frame);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, FrameTableProperty,
    ::testing::Values(
        FrameTableCase{buffer::TableKind::kGlobalChained, 11},
        FrameTableCase{buffer::TableKind::kGlobalChained, 22},
        FrameTableCase{buffer::TableKind::kPerBucketChained, 11},
        FrameTableCase{buffer::TableKind::kPerBucketChained, 22},
        FrameTableCase{buffer::TableKind::kCuckoo, 11},
        FrameTableCase{buffer::TableKind::kCuckoo, 22},
        FrameTableCase{buffer::TableKind::kCuckoo, 33},
        FrameTableCase{buffer::TableKind::kCuckoo, 44}),
    [](const auto& info) {
      std::string name;
      switch (info.param.kind) {
        case buffer::TableKind::kGlobalChained: name = "Global"; break;
        case buffer::TableKind::kPerBucketChained: name = "Bucket"; break;
        case buffer::TableKind::kCuckoo: name = "Cuckoo"; break;
      }
      return name + std::to_string(info.param.seed);
    });

// ----------------------------------------------------------- B+Tree ------

class BTreeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeProperty, RandomOpsMatchReferenceMap) {
  Rng rng(GetParam());
  io::MemVolume volume;
  ASSERT_TRUE(volume.Extend(kPagesPerExtent).ok());
  log::LogStorage storage;
  log::LogManager log(&storage, log::LogOptions{});
  buffer::BufferPoolOptions pool_opts;
  pool_opts.frame_count = 512;
  buffer::BufferPool pool(&volume, pool_opts,
                          [&](Lsn lsn) { return log.FlushTo(lsn); });
  space::SpaceManager space(&volume, space::SpaceOptions{});
  lock::LockManager locks(lock::LockOptions{});
  txn::TxnManager txns(&log, &locks, txn::TxnOptions{});

  ASSERT_TRUE(space.CreateStore(1).ok());
  auto* setup = txns.Begin();
  auto root = btree::BTree::CreateRoot(&pool, &space, &log, &txns, setup, 1);
  ASSERT_TRUE(root.ok());
  ASSERT_TRUE(txns.Commit(setup).ok());
  btree::BTree tree(&pool, &space, &log, &txns, 1, *root,
                    btree::BTreeOptions{});

  std::map<uint64_t, RecordId> model;
  auto* txn = txns.Begin();
  for (int op = 0; op < 6000; ++op) {
    uint64_t key = rng.Uniform(4000);
    int kind = static_cast<int>(rng.Uniform(100));
    if (kind < 50) {
      RecordId rid{key + 1, static_cast<uint16_t>(op % 100)};
      Status st = tree.Insert(txn, key, rid);
      if (model.contains(key)) {
        EXPECT_EQ(st.code(), StatusCode::kAlreadyExists) << "key " << key;
      } else {
        ASSERT_TRUE(st.ok()) << st.ToString();
        model[key] = rid;
      }
    } else if (kind < 75) {
      Status st = tree.Remove(txn, key);
      if (model.erase(key) > 0) {
        ASSERT_TRUE(st.ok());
      } else {
        EXPECT_TRUE(st.IsNotFound());
      }
    } else if (kind < 95) {
      auto found = tree.Find(txn, key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(found.status().IsNotFound());
      } else {
        ASSERT_TRUE(found.ok());
        EXPECT_EQ(*found, it->second) << "key " << key;
      }
    } else {
      // Range scan over a random window equals the model's view.
      uint64_t lo = rng.Uniform(4000);
      uint64_t hi = lo + rng.Uniform(500);
      std::vector<uint64_t> got;
      ASSERT_TRUE(tree.Scan(lo, hi, [&](uint64_t k, RecordId) {
                        got.push_back(k);
                        return true;
                      }).ok());
      std::vector<uint64_t> expect;
      for (auto it = model.lower_bound(lo);
           it != model.end() && it->first <= hi; ++it) {
        expect.push_back(it->first);
      }
      EXPECT_EQ(got, expect) << "range [" << lo << "," << hi << "]";
    }
  }
  EXPECT_EQ(*tree.CountEntries(), model.size());
  ASSERT_TRUE(txns.Commit(txn).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeProperty,
                         ::testing::Values(101, 202, 303, 404));

// ------------------------------------------------------- log records -----

class LogRecordProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LogRecordProperty, RandomRecordsRoundtrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    log::LogRecord rec;
    rec.type = static_cast<log::LogRecordType>(rng.Uniform(15));
    rec.txn = rng.Next();
    rec.prev_lsn = Lsn{rng.Next()};
    rec.undo_next = Lsn{rng.Next()};
    rec.page = rng.Next();
    rec.store = static_cast<StoreId>(rng.Next());
    rec.slot = static_cast<uint16_t>(rng.Next());
    rec.page_type = static_cast<uint8_t>(rng.Next());
    rec.before.resize(rng.Uniform(200));
    rec.after.resize(rng.Uniform(200));
    for (auto& b : rec.before) b = static_cast<uint8_t>(rng.Next());
    for (auto& b : rec.after) b = static_cast<uint8_t>(rng.Next());

    std::vector<uint8_t> bytes;
    SerializeLogRecord(rec, &bytes);
    log::LogRecord back;
    size_t consumed;
    ASSERT_TRUE(DeserializeLogRecord(bytes, &back, &consumed).ok());
    EXPECT_EQ(consumed, bytes.size());
    EXPECT_EQ(back.type, rec.type);
    EXPECT_EQ(back.txn, rec.txn);
    EXPECT_EQ(back.prev_lsn, rec.prev_lsn);
    EXPECT_EQ(back.undo_next, rec.undo_next);
    EXPECT_EQ(back.page, rec.page);
    EXPECT_EQ(back.store, rec.store);
    EXPECT_EQ(back.slot, rec.slot);
    EXPECT_EQ(back.before, rec.before);
    EXPECT_EQ(back.after, rec.after);
  }
}

TEST_P(LogRecordProperty, TruncationNeverCrashes) {
  Rng rng(GetParam());
  log::LogRecord rec;
  rec.type = log::LogRecordType::kPageUpdate;
  rec.before.resize(100, 0x11);
  rec.after.resize(100, 0x22);
  std::vector<uint8_t> bytes;
  SerializeLogRecord(rec, &bytes);
  // Every strict prefix must fail cleanly with Corruption.
  for (int i = 0; i < 200; ++i) {
    size_t len = rng.Uniform(bytes.size());
    log::LogRecord back;
    size_t consumed;
    std::span<const uint8_t> prefix(bytes.data(), len);
    Status st = DeserializeLogRecord(prefix, &back, &consumed);
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << "prefix " << len;
  }
}

TEST_P(LogRecordProperty, RandomByteCorruptionIsRejectedOrSane) {
  Rng rng(GetParam());
  log::LogRecord rec;
  rec.type = log::LogRecordType::kPageInsert;
  rec.after.resize(64, 0x5a);
  std::vector<uint8_t> bytes;
  SerializeLogRecord(rec, &bytes);
  for (int i = 0; i < 300; ++i) {
    std::vector<uint8_t> mutated = bytes;
    mutated[rng.Uniform(mutated.size())] ^=
        static_cast<uint8_t>(1 + rng.Uniform(255));
    log::LogRecord back;
    size_t consumed;
    // Must either parse (length fields still consistent) or fail with
    // Corruption — never crash or over-read.
    Status st = DeserializeLogRecord(mutated, &back, &consumed);
    if (st.ok()) EXPECT_LE(consumed, mutated.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogRecordProperty,
                         ::testing::Values(7, 77, 777));

// ----------------------------------------------------- space manager -----

class SpaceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpaceProperty, AllocFreeConservesState) {
  Rng rng(GetParam());
  io::MemVolume volume;
  space::SpaceManager space(&volume, space::SpaceOptions{});
  constexpr StoreId kStores = 4;
  for (StoreId s = 1; s <= kStores; ++s) {
    ASSERT_TRUE(space.CreateStore(s).ok());
  }
  std::map<PageNum, StoreId> model;  // page → owner.
  for (int op = 0; op < 4000; ++op) {
    if (rng.Bernoulli(0.6) || model.empty()) {
      StoreId s = 1 + static_cast<StoreId>(rng.Uniform(kStores));
      auto page = space.AllocatePage(s, nullptr);
      ASSERT_TRUE(page.ok());
      ASSERT_FALSE(model.contains(*page)) << "double allocation";
      model[*page] = s;
    } else {
      auto it = model.begin();
      std::advance(it, rng.Uniform(model.size()));
      ASSERT_TRUE(space.FreePage(it->first).ok());
      model.erase(it);
    }
  }
  // Audit: ownership and per-store page counts match the model.
  std::map<StoreId, uint64_t> counts;
  for (const auto& [page, owner] : model) {
    auto got = space.OwnerOf(page);
    ASSERT_TRUE(got.ok()) << "page " << page;
    EXPECT_EQ(*got, owner);
    ++counts[owner];
  }
  for (StoreId s = 1; s <= kStores; ++s) {
    EXPECT_EQ(*space.PageCountOf(s), counts[s]) << "store " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpaceProperty, ::testing::Values(3, 33, 333));

// ------------------------------------------------------ lock manager -----

class LockProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LockProperty, GrantedSetsAlwaysPairwiseCompatible) {
  // Single-threaded random lock traffic through per-transaction handles:
  // after every operation the held modes recorded by our shadow model
  // must match both the handle cache and the shared table, and all
  // concurrently granted modes on one object must be pairwise
  // compatible. Release is all-or-nothing per transaction (strict 2PL
  // bulk release — the only release the redesigned API has).
  Rng rng(GetParam());
  lock::LockOptions opts;
  opts.timeout_us = 1000;  // Conflicts fail fast in single-threaded use.
  lock::LockManager mgr(opts);
  constexpr int kTxns = 5;
  constexpr int kObjects = 6;
  std::vector<lock::TxnLockList> handles;
  for (int t = 0; t < kTxns; ++t) {
    handles.push_back(mgr.Attach(static_cast<TxnId>(t + 1)));
  }
  // model[obj][txn] = mode.
  std::map<int, std::map<TxnId, lock::LockMode>> model;

  auto compatible_with_all = [&](int obj, TxnId txn, lock::LockMode mode) {
    for (const auto& [other, held] : model[obj]) {
      if (other != txn && !lock::Compatible(held, mode)) return false;
    }
    return true;
  };

  for (int op = 0; op < 5000; ++op) {
    size_t ti = rng.Uniform(kTxns);
    TxnId txn = static_cast<TxnId>(ti + 1);
    int obj = static_cast<int>(rng.Uniform(kObjects));
    lock::LockId id = lock::LockId::Store(static_cast<StoreId>(obj + 1));
    if (rng.Bernoulli(0.8)) {
      auto mode = static_cast<lock::LockMode>(1 + rng.Uniform(5));
      lock::LockMode prior = model[obj].contains(txn) ? model[obj][txn]
                                                      : lock::LockMode::kNone;
      lock::LockMode target = lock::Supremum(prior, mode);
      Status st = handles[ti].Lock(id, mode);
      if (target == prior) {
        // Covered by the cache: must succeed without touching the table.
        ASSERT_TRUE(st.ok()) << st.ToString();
      } else if (compatible_with_all(obj, txn, target)) {
        ASSERT_TRUE(st.ok())
            << "obj " << obj << " txn " << txn << ": " << st.ToString();
        model[obj][txn] = target;
      } else {
        EXPECT_TRUE(st.IsDeadlock()) << st.ToString();
      }
    } else {
      // End of transaction: bulk-release everything it held and re-attach
      // a fresh handle under the same id.
      handles[ti].ReleaseAll();
      for (auto& [o, held] : model) held.erase(txn);
      handles[ti] = mgr.Attach(txn);
    }
    lock::LockMode expect = model[obj].contains(txn) ? model[obj][txn]
                                                     : lock::LockMode::kNone;
    EXPECT_EQ(handles[ti].HeldMode(id), expect);
    EXPECT_EQ(mgr.HeldMode(txn, id), expect)
        << "handle cache and shared table must agree";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockProperty, ::testing::Values(9, 99, 999));

}  // namespace
}  // namespace shoremt
