#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "io/volume.h"
#include "log/log_storage.h"
#include "sm/options.h"
#include "sm/storage_manager.h"
#include "workload/insert_workload.h"

namespace shoremt::sm {
namespace {

std::vector<uint8_t> Row(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(IntegrationTest, FileVolumeBackedDatabasePersists) {
  std::string path = ::testing::TempDir() + "/shoremt_integration.vol";
  ::unlink(path.c_str());
  log::LogStorage wal;
  {
    auto vol = io::FileVolume::Open(path);
    ASSERT_TRUE(vol.ok());
    auto db = std::move(*StorageManager::Open(
        StorageOptions::ForStage(Stage::kFinal), vol->get(), &wal));
    auto* txn = db->Begin();
    auto table = db->CreateTable(txn, "t");
    ASSERT_TRUE(table.ok());
    for (uint64_t k = 0; k < 100; ++k) {
      ASSERT_TRUE(
          db->Insert(txn, *table, k, Row("disk" + std::to_string(k))).ok());
    }
    ASSERT_TRUE(db->Commit(txn).ok());
    ASSERT_TRUE(db->Shutdown().ok());  // Clean shutdown: pages on disk.
  }
  {
    // Reopen the file; recovery replays whatever the file misses.
    auto vol = io::FileVolume::Open(path);
    ASSERT_TRUE(vol.ok());
    auto db = std::move(*StorageManager::Open(
        StorageOptions::ForStage(Stage::kFinal), vol->get(), &wal));
    auto table = db->OpenTable("t");
    ASSERT_TRUE(table.ok());
    auto* check = db->Begin();
    auto read = db->Read(check, *table, 57);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(std::string(read->begin(), read->end()), "disk57");
    ASSERT_TRUE(db->Commit(check).ok());
  }
  ::unlink(path.c_str());
}

TEST(IntegrationTest, LockEscalationEndToEnd) {
  io::MemVolume volume;
  log::LogStorage wal;
  StorageOptions opts = StorageOptions::ForStage(Stage::kFinal);
  opts.lock.escalation_threshold = 50;
  auto db = std::move(*StorageManager::Open(opts, &volume, &wal));
  auto* txn = db->Begin();
  auto table = db->CreateTable(txn, "bulk");
  ASSERT_TRUE(table.ok());
  for (uint64_t k = 0; k < 200; ++k) {
    ASSERT_TRUE(db->Insert(txn, *table, k, Row("x")).ok());
  }
  EXPECT_GE(db->locks()->stats().escalations.load(), 1u)
      << "200 row locks past a threshold of 50 must escalate";
  // After escalation the store lock blocks other writers entirely.
  ASSERT_TRUE(db->Commit(txn).ok());
  auto* after = db->Begin();
  EXPECT_TRUE(db->Read(after, *table, 199).ok());
  ASSERT_TRUE(db->Commit(after).ok());
}

TEST(IntegrationTest, TinyPoolDirtyEvictionKeepsConsistency) {
  // A 16-frame pool forces constant dirty eviction + in-transit traffic
  // while 4 writers hammer it; everything must read back intact.
  io::MemVolume volume;
  log::LogStorage wal;
  StorageOptions opts = StorageOptions::ForStage(Stage::kFinal);
  opts.buffer.frame_count = 16;
  auto db = std::move(*StorageManager::Open(opts, &volume, &wal));
  constexpr int kThreads = 4;
  constexpr uint64_t kRows = 150;
  std::vector<TableInfo> tables(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    auto* txn = db->Begin();
    auto table = db->CreateTable(txn, "t" + std::to_string(t));
    ASSERT_TRUE(table.ok());
    tables[t] = *table;
    ASSERT_TRUE(db->Commit(txn).ok());
  }
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto* txn = db->Begin();
      for (uint64_t k = 0; k < kRows; ++k) {
        // ~500-byte rows so 4 tables overflow the 16-frame pool and force
        // dirty evictions mid-run.
        std::string value = "v" + std::to_string(t) + "_" +
                            std::to_string(k) + std::string(500, 'p');
        if (!db->Insert(txn, tables[t], k, Row(value)).ok()) {
          failures.fetch_add(1);
        }
      }
      if (!db->Commit(txn).ok()) failures.fetch_add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(db->pool()->stats().dirty_writebacks.load(), 0u)
      << "a 16-frame pool must have evicted dirty pages";
  auto* check = db->Begin();
  Rng rng(5);
  for (int probe = 0; probe < 100; ++probe) {
    int t = static_cast<int>(rng.Uniform(kThreads));
    uint64_t k = rng.Uniform(kRows);
    auto read = db->Read(check, tables[t], k);
    ASSERT_TRUE(read.ok()) << "t" << t << " key " << k;
    EXPECT_EQ(std::string(read->begin(), read->end()),
              "v" + std::to_string(t) + "_" + std::to_string(k) +
                  std::string(500, 'p'));
  }
  ASSERT_TRUE(db->Commit(check).ok());
}

TEST(IntegrationTest, SlowVolumeStillCorrect) {
  // Latency-injected volume: misses and write-backs take real time, which
  // stretches the in-transit window the bpool-2 optimizations target.
  io::MemVolume volume(io::VolumeOptions{.read_latency_ns = 200'000,
                                         .write_latency_ns = 200'000});
  log::LogStorage wal;
  StorageOptions opts = StorageOptions::ForStage(Stage::kFinal);
  opts.buffer.frame_count = 8;
  auto db = std::move(*StorageManager::Open(opts, &volume, &wal));
  auto* txn = db->Begin();
  auto table = db->CreateTable(txn, "slow");
  ASSERT_TRUE(table.ok());
  for (uint64_t k = 0; k < 150; ++k) {
    ASSERT_TRUE(db->Insert(txn, *table, k, Row(std::string(600, 's'))).ok());
  }
  ASSERT_TRUE(db->Commit(txn).ok());
  auto* check = db->Begin();
  for (uint64_t k = 0; k < 150; ++k) {
    ASSERT_TRUE(db->Read(check, *table, k).ok()) << k;
  }
  ASSERT_TRUE(db->Commit(check).ok());
  EXPECT_GT(volume.stats().reads.load(), 0u);
}

TEST(IntegrationTest, InsertBenchRunsAtEveryStage) {
  // The paper's primary workload must complete at every §7 snapshot (the
  // figure benches rely on this).
  for (Stage stage : kAllStages) {
    io::MemVolume volume;
    log::LogStorage wal;
    auto db = std::move(
        *StorageManager::Open(StorageOptions::ForStage(stage), &volume, &wal));
    workload::InsertBenchConfig cfg;
    cfg.clients = 2;
    cfg.records_per_commit = 50;
    cfg.warmup_ms = 10;
    cfg.duration_ms = 80;
    auto state = workload::SetupInsertBench(db.get(), cfg);
    ASSERT_TRUE(state.ok()) << StageName(stage);
    auto r = workload::RunInsertBench(cfg, &*state);
    EXPECT_GT(r.txns, 0u) << StageName(stage);
  }
}

TEST(IntegrationTest, CheckpointShrinksRecoveryScanWindow) {
  // After a checkpoint, recovery must not need to redo from LSN 1: the
  // analysis pass reads the checkpoint's redo point. Indirect check: a
  // crash long after a checkpoint still recovers (covered elsewhere) AND
  // the checkpoint body carries a non-null redo LSN.
  io::MemVolume volume;
  log::LogStorage wal;
  auto db = std::move(*StorageManager::Open(
      StorageOptions::ForStage(Stage::kFinal), &volume, &wal));
  auto* txn = db->Begin();
  auto table = db->CreateTable(txn, "t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(db->Insert(txn, *table, 1, Row("x")).ok());
  ASSERT_TRUE(db->Commit(txn).ok());
  auto ck = db->Checkpoint();
  ASSERT_TRUE(ck.ok());
  auto rec = db->log()->ReadRecord(*ck);
  ASSERT_TRUE(rec.ok());
  log::CheckpointBody body;
  ASSERT_TRUE(DeserializeCheckpoint(rec->after, &body).ok());
  EXPECT_FALSE(body.redo_lsn.IsNull());
}

}  // namespace
}  // namespace shoremt::sm
