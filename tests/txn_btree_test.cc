#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "btree/btree.h"
#include "btree/btree_node.h"
#include "buffer/buffer_pool.h"
#include "io/volume.h"
#include "lock/lock_manager.h"
#include "log/log_manager.h"
#include "space/space_manager.h"
#include "txn/txn_manager.h"

namespace shoremt {
namespace {

/// Builds the full component stack (final-stage options) for direct
/// B+Tree / transaction-manager testing.
class ComponentHarness {
 public:
  ComponentHarness()
      : log_(&log_storage_, log::LogOptions{}),
        pool_(&volume_, MakePoolOptions(),
              [this](Lsn lsn) { return log_.FlushTo(lsn); }),
        space_(&volume_, space::SpaceOptions{}),
        locks_(MakeLockOptions()),
        txns_(&log_, &locks_, txn::TxnOptions{}) {
    EXPECT_TRUE(volume_.Extend(kPagesPerExtent).ok());
  }

  static buffer::BufferPoolOptions MakePoolOptions() {
    buffer::BufferPoolOptions o;
    o.frame_count = 256;
    return o;
  }
  static lock::LockOptions MakeLockOptions() {
    lock::LockOptions o;
    o.timeout_us = 50'000;
    return o;
  }

  btree::BTree MakeTree(StoreId store) {
    EXPECT_TRUE(space_.CreateStore(store).ok());
    auto* txn = txns_.Begin();
    auto root = btree::BTree::CreateRoot(&pool_, &space_, &log_, &txns_, txn,
                                         store);
    EXPECT_TRUE(root.ok());
    EXPECT_TRUE(txns_.Commit(txn).ok());
    return btree::BTree(&pool_, &space_, &log_, &txns_, store, *root,
                        btree::BTreeOptions{});
  }

  io::MemVolume volume_;
  log::LogStorage log_storage_;
  log::LogManager log_;
  buffer::BufferPool pool_;
  space::SpaceManager space_;
  lock::LockManager locks_;
  txn::TxnManager txns_;
};

// ------------------------------------------------------------ BTreeNode ---

TEST(BTreeNodeTest, InitAndInsertSorted) {
  alignas(8) uint8_t buf[kPageSize] = {};
  btree::BTreeNode node(buf);
  node.Init(5, 1, 0);
  EXPECT_TRUE(node.IsLeaf());
  EXPECT_EQ(node.count(), 0u);
  EXPECT_TRUE(node.InsertSorted(30, 300));
  EXPECT_TRUE(node.InsertSorted(10, 100));
  EXPECT_TRUE(node.InsertSorted(20, 200));
  ASSERT_EQ(node.count(), 3u);
  EXPECT_EQ(node.entry(0).key, 10u);
  EXPECT_EQ(node.entry(1).key, 20u);
  EXPECT_EQ(node.entry(2).key, 30u);
  EXPECT_FALSE(node.InsertSorted(20, 999)) << "duplicates rejected";
}

TEST(BTreeNodeTest, FindAndRemove) {
  alignas(8) uint8_t buf[kPageSize] = {};
  btree::BTreeNode node(buf);
  node.Init(5, 1, 0);
  for (uint64_t k = 0; k < 50; ++k) node.InsertSorted(k * 2, k);
  uint16_t idx;
  EXPECT_TRUE(node.FindKey(48, &idx));
  EXPECT_EQ(node.entry(idx).value, 24u);
  EXPECT_FALSE(node.FindKey(49, &idx));
  EXPECT_TRUE(node.RemoveKey(48));
  EXPECT_FALSE(node.FindKey(48, &idx));
  EXPECT_FALSE(node.RemoveKey(48));
  EXPECT_EQ(node.count(), 49u);
}

TEST(BTreeNodeTest, ChildRouting) {
  alignas(8) uint8_t buf[kPageSize] = {};
  btree::BTreeNode node(buf);
  node.Init(5, 1, 1);  // Internal.
  node.set_leftmost_child(100);
  node.InsertSorted(10, 110);
  node.InsertSorted(20, 120);
  EXPECT_EQ(node.ChildFor(5), 100u);    // < 10.
  EXPECT_EQ(node.ChildFor(10), 110u);   // == 10.
  EXPECT_EQ(node.ChildFor(15), 110u);   // In [10, 20).
  EXPECT_EQ(node.ChildFor(20), 120u);
  EXPECT_EQ(node.ChildFor(999), 120u);
}

TEST(BTreeNodeTest, SplitLeafHalves) {
  alignas(8) uint8_t a_buf[kPageSize] = {};
  alignas(8) uint8_t b_buf[kPageSize] = {};
  btree::BTreeNode a(a_buf), b(b_buf);
  a.Init(1, 1, 0);
  b.Init(2, 1, 0);
  for (uint64_t k = 0; k < 100; ++k) a.InsertSorted(k, k);
  uint64_t sep = a.SplitInto(&b);
  EXPECT_EQ(a.count(), 50u);
  EXPECT_EQ(b.count(), 50u);
  EXPECT_EQ(sep, 50u);
  EXPECT_EQ(b.entry(0).key, 50u);
}

TEST(BTreeNodeTest, SplitInternalPromotesSeparator) {
  alignas(8) uint8_t a_buf[kPageSize] = {};
  alignas(8) uint8_t b_buf[kPageSize] = {};
  btree::BTreeNode a(a_buf), b(b_buf);
  a.Init(1, 1, 1);
  b.Init(2, 1, 1);
  a.set_leftmost_child(1000);
  for (uint64_t k = 1; k <= 99; ++k) a.InsertSorted(k, 1000 + k);
  uint64_t sep = a.SplitInto(&b);
  // Separator is promoted (not duplicated in the right node).
  EXPECT_EQ(b.leftmost_child(), 1000 + sep);
  uint16_t idx;
  EXPECT_FALSE(b.FindKey(sep, &idx));
  EXPECT_EQ(a.count() + b.count() + 1, 99u);
}

TEST(BTreeNodeTest, ContentRoundtripIncludesChain) {
  alignas(8) uint8_t a_buf[kPageSize] = {};
  alignas(8) uint8_t b_buf[kPageSize] = {};
  btree::BTreeNode a(a_buf), b(b_buf);
  a.Init(1, 1, 0);
  a.InsertSorted(7, 70);
  page::HeaderOf(a_buf)->next_page = 42;
  page::HeaderOf(a_buf)->prev_page = 41;
  b.Init(2, 1, 0);
  b.RestoreContent(a.SerializeContent());
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.entry(0).key, 7u);
  EXPECT_EQ(page::HeaderOf(b_buf)->next_page, 42u);
  EXPECT_EQ(page::HeaderOf(b_buf)->prev_page, 41u);
}

TEST(BTreeNodeTest, RecordIdPackingRoundtrip) {
  RecordId rid{123456, 789};
  EXPECT_EQ(btree::UnpackRecordId(btree::PackRecordId(rid)), rid);
}

// ---------------------------------------------------------------- BTree ---

TEST(BTreeTest, InsertFindSingle) {
  ComponentHarness h;
  auto tree = h.MakeTree(1);
  auto* txn = h.txns_.Begin();
  ASSERT_TRUE(tree.Insert(txn, 42, RecordId{9, 1}).ok());
  auto found = tree.Find(txn, 42);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, (RecordId{9, 1}));
  EXPECT_TRUE(tree.Find(txn, 43).status().IsNotFound());
  ASSERT_TRUE(h.txns_.Commit(txn).ok());
}

TEST(BTreeTest, DuplicateKeyRejected) {
  ComponentHarness h;
  auto tree = h.MakeTree(1);
  auto* txn = h.txns_.Begin();
  ASSERT_TRUE(tree.Insert(txn, 1, RecordId{9, 1}).ok());
  EXPECT_EQ(tree.Insert(txn, 1, RecordId{9, 2}).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(h.txns_.Commit(txn).ok());
}

TEST(BTreeTest, ManyKeysForceMultiLevelSplits) {
  ComponentHarness h;
  auto tree = h.MakeTree(1);
  auto* txn = h.txns_.Begin();
  // ~508 entries per node: 3000 keys forces root + internal splits.
  constexpr uint64_t kN = 3000;
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_TRUE(tree.Insert(txn, k * 7 % kN, RecordId{k + 1, 0}).ok())
        << "key " << k * 7 % kN;
  }
  ASSERT_TRUE(h.txns_.Commit(txn).ok());
  EXPECT_GT(tree.stats().splits.load(), 0u);
  EXPECT_EQ(*tree.CountEntries(), kN);
  // Every key findable with the right value.
  for (uint64_t k = 0; k < kN; ++k) {
    auto found = tree.Find(nullptr, k * 7 % kN);
    ASSERT_TRUE(found.ok()) << "key " << k * 7 % kN;
    EXPECT_EQ(found->page, k + 1);
  }
}

TEST(BTreeTest, ScanInOrderAcrossLeaves) {
  ComponentHarness h;
  auto tree = h.MakeTree(1);
  auto* txn = h.txns_.Begin();
  constexpr uint64_t kN = 2000;
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_TRUE(tree.Insert(txn, (kN - 1 - k) * 3, RecordId{k + 1, 0}).ok());
  }
  ASSERT_TRUE(h.txns_.Commit(txn).ok());
  uint64_t prev = 0;
  uint64_t seen = 0;
  ASSERT_TRUE(tree.Scan(0, UINT64_MAX, [&](uint64_t key, RecordId) {
                    if (seen > 0) EXPECT_GT(key, prev);
                    prev = key;
                    ++seen;
                    return true;
                  }).ok());
  EXPECT_EQ(seen, kN);
  // Bounded scan.
  seen = 0;
  ASSERT_TRUE(tree.Scan(300, 600, [&](uint64_t key, RecordId) {
                    EXPECT_GE(key, 300u);
                    EXPECT_LE(key, 600u);
                    ++seen;
                    return true;
                  }).ok());
  EXPECT_EQ(seen, 101u);  // 300,303,...,600.
}

TEST(BTreeTest, RemoveThenNotFound) {
  ComponentHarness h;
  auto tree = h.MakeTree(1);
  auto* txn = h.txns_.Begin();
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree.Insert(txn, k, RecordId{1, static_cast<uint16_t>(k)}).ok());
  }
  for (uint64_t k = 0; k < 100; k += 2) {
    ASSERT_TRUE(tree.Remove(txn, k).ok());
  }
  ASSERT_TRUE(h.txns_.Commit(txn).ok());
  for (uint64_t k = 0; k < 100; ++k) {
    auto found = tree.Find(nullptr, k);
    if (k % 2 == 0) {
      EXPECT_TRUE(found.status().IsNotFound()) << k;
    } else {
      EXPECT_TRUE(found.ok()) << k;
    }
  }
  EXPECT_TRUE(tree.Remove(txn, 0).IsNotFound());
}

TEST(BTreeTest, ConcurrentDisjointInserts) {
  ComponentHarness h;
  auto tree = h.MakeTree(1);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 800;
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto* txn = h.txns_.Begin();
      for (uint64_t k = 0; k < kPerThread; ++k) {
        uint64_t key = static_cast<uint64_t>(t) * 1'000'000 + k;
        if (!tree.Insert(txn, key, RecordId{key + 1, 0}).ok()) {
          failures.fetch_add(1);
        }
      }
      if (!h.txns_.Commit(txn).ok()) failures.fetch_add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(*tree.CountEntries(), kThreads * kPerThread);
}

TEST(BTreeTest, ReadersRunDuringInserts) {
  ComponentHarness h;
  auto tree = h.MakeTree(1);
  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};
  std::thread writer([&] {
    auto* txn = h.txns_.Begin();
    for (uint64_t k = 0; k < 2000; ++k) {
      ASSERT_TRUE(tree.Insert(txn, k, RecordId{k + 1, 0}).ok());
    }
    ASSERT_TRUE(h.txns_.Commit(txn).ok());
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load()) {
      auto r = tree.Find(nullptr, 1);
      // Key 1 is either not-yet-inserted or fully present — never torn.
      if (!r.ok() && !r.status().IsNotFound()) reader_errors.fetch_add(1);
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(reader_errors.load(), 0);
}

// ----------------------------------------------------------- TxnManager ---

TEST(TxnManagerTest, BeginCommitLifecycle) {
  ComponentHarness h;
  auto* t1 = h.txns_.Begin();
  auto* t2 = h.txns_.Begin();
  EXPECT_EQ(h.txns_.ActiveCount(), 2u);
  EXPECT_EQ(h.txns_.OldestActiveTxn(), t1->id);
  TxnId id1 = t1->id;
  ASSERT_TRUE(h.txns_.Commit(t1).ok());
  EXPECT_EQ(h.txns_.ActiveCount(), 1u);
  EXPECT_GT(h.txns_.OldestActiveTxn(), id1);
  ASSERT_TRUE(h.txns_.Commit(t2).ok());
  EXPECT_EQ(h.txns_.OldestActiveTxn(), kInvalidTxnId);
  EXPECT_EQ(h.txns_.stats().committed.load(), 2u);
}

TEST(TxnManagerTest, OldestTxnScanVariant) {
  io::MemVolume vol;
  log::LogStorage storage;
  log::LogManager log(&storage, log::LogOptions{});
  lock::LockManager locks(lock::LockOptions{});
  txn::TxnOptions opts;
  opts.oldest_txn_cache = false;
  txn::TxnManager txns(&log, &locks, opts);
  auto* t1 = txns.Begin();
  EXPECT_EQ(txns.OldestActiveTxn(), t1->id);
  EXPECT_GT(txns.stats().oldest_scans.load(), 0u) << "scan path exercised";
  ASSERT_TRUE(txns.Commit(t1).ok());
}

TEST(TxnManagerTest, CommitForcesLogDurability) {
  ComponentHarness h;
  auto* txn = h.txns_.Begin();
  log::LogRecord rec;
  rec.type = log::LogRecordType::kPageInsert;
  rec.txn = txn->id;
  rec.page = 9;
  rec.after = {1, 2, 3};
  auto a = h.log_.Append(rec);
  ASSERT_TRUE(a.ok());
  h.txns_.NoteLogged(txn, a->lsn, a->end);
  EXPECT_LT(h.log_.durable_lsn().value, a->end.value);
  ASSERT_TRUE(h.txns_.Commit(txn).ok());
  EXPECT_GT(h.log_.durable_lsn().value, a->end.value);
}

TEST(TxnManagerTest, LockEscalationAfterThreshold) {
  io::MemVolume vol;
  log::LogStorage storage;
  log::LogManager log(&storage, log::LogOptions{});
  lock::LockOptions lock_opts;
  lock_opts.escalation_threshold = 10;  // Escalation lives in the lock layer.
  lock::LockManager locks(lock_opts);
  txn::TxnManager txns(&log, &locks, txn::TxnOptions{});
  auto* txn = txns.Begin();
  for (uint16_t i = 0; i < 15; ++i) {
    ASSERT_TRUE(txn->locks.LockRecord(1, RecordId{1, i},
                                      lock::LockMode::kX).ok());
  }
  EXPECT_EQ(locks.stats().escalations.load(), 1u);
  EXPECT_EQ(txn->locks.escalations(), 1u);
  EXPECT_EQ(locks.HeldMode(txn->id, lock::LockId::Store(1)),
            lock::LockMode::kX);
  ASSERT_TRUE(txns.Commit(txn).ok());
  EXPECT_EQ(locks.LockedObjectCount(), 0u);
}

TEST(TxnManagerTest, CheckpointRecordsActiveTxns) {
  ComponentHarness h;
  auto* t1 = h.txns_.Begin();
  Lsn redo_out;
  auto ck = h.txns_.TakeCheckpoint([] { return Lsn{123}; }, {}, &redo_out);
  ASSERT_TRUE(ck.ok());
  EXPECT_EQ(h.txns_.last_checkpoint(), *ck);
  auto rec = h.log_.ReadRecord(*ck);
  ASSERT_TRUE(rec.ok());
  log::CheckpointBody body;
  ASSERT_TRUE(DeserializeCheckpoint(rec->after, &body).ok());
  // The redo LSN is floored by the oldest active transaction's begin LSN
  // (t1 began before the source's 123): recycling below it would cut a
  // live undo chain.
  EXPECT_EQ(body.redo_lsn, t1->begin_lsn);
  EXPECT_EQ(redo_out, body.redo_lsn);
  ASSERT_EQ(body.active_txns.size(), 1u);
  EXPECT_EQ(body.active_txns[0].id, t1->id);
  EXPECT_EQ(body.active_txns[0].first_lsn, t1->begin_lsn);
  ASSERT_TRUE(h.txns_.Commit(t1).ok());

  // With no active transactions the source value stands.
  auto ck2 = h.txns_.TakeCheckpoint([&] { return h.log_.next_lsn(); }, {},
                                    &redo_out);
  ASSERT_TRUE(ck2.ok());
  auto rec2 = h.log_.ReadRecord(*ck2);
  ASSERT_TRUE(rec2.ok());
  ASSERT_TRUE(DeserializeCheckpoint(rec2->after, &body).ok());
  EXPECT_EQ(body.redo_lsn, redo_out);
  EXPECT_EQ(body.redo_lsn, *ck2);  // next_lsn at snapshot = this record.
  EXPECT_TRUE(body.active_txns.empty());
}

}  // namespace
}  // namespace shoremt
