#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "sync/backoff.h"
#include "sync/clh_lock.h"
#include "sync/hybrid_mutex.h"
#include "sync/lockfree_stack.h"
#include "sync/mcs_lock.h"
#include "sync/rw_latch.h"
#include "sync/spinlock.h"
#include "sync/sync_stats.h"
#include "sync/ticket_lock.h"

namespace shoremt::sync {
namespace {

// Number of threads for concurrency tests; kept small because the test
// machine may have a single hardware context.
constexpr int kThreads = 4;
constexpr int kItersPerThread = 2000;

/// Hammers `lock` from kThreads threads incrementing an unprotected
/// counter; mutual exclusion holds iff the final count is exact.
template <typename Lock>
void CheckMutualExclusion(Lock& lock) {
  int64_t counter = 0;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&] {
      for (int j = 0; j < kItersPerThread; ++j) {
        std::lock_guard<Lock> guard(lock);
        ++counter;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, int64_t{kThreads} * kItersPerThread);
}

TEST(TatasLockTest, MutualExclusion) {
  TatasLock lock;
  CheckMutualExclusion(lock);
}

TEST(TatasLockTest, TryLockSemantics) {
  TatasLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_TRUE(lock.IsLocked());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_FALSE(lock.IsLocked());
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(TtasLockTest, MutualExclusion) {
  TtasLock lock;
  CheckMutualExclusion(lock);
}

TEST(TtasLockTest, TryLockSemantics) {
  TtasLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
}

TEST(TicketLockTest, MutualExclusion) {
  TicketLock lock;
  CheckMutualExclusion(lock);
}

TEST(TicketLockTest, TryLockOnlyWhenFree) {
  TicketLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(HybridMutexTest, MutualExclusion) {
  HybridMutex lock;
  CheckMutualExclusion(lock);
}

TEST(HybridMutexTest, TryLockSemantics) {
  HybridMutex lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(HybridMutexTest, ContendedSleepersWakeUp) {
  HybridMutex lock;
  std::atomic<int> entered{0};
  lock.lock();
  std::vector<std::thread> workers;
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&] {
      lock.lock();
      entered.fetch_add(1);
      lock.unlock();
    });
  }
  // Hold long enough that waiters take the parking slow path.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(entered.load(), 0);
  lock.unlock();
  for (auto& w : workers) w.join();
  EXPECT_EQ(entered.load(), kThreads);
}

TEST(McsLockTest, MutualExclusion) {
  McsLock lock;
  int64_t counter = 0;
  std::vector<std::thread> workers;
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&] {
      for (int j = 0; j < kItersPerThread; ++j) {
        McsGuard guard(lock);
        ++counter;
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(counter, int64_t{kThreads} * kItersPerThread);
}

TEST(McsLockTest, TryAcquireFailsWhenHeld) {
  McsLock lock;
  McsLock::QNode a, b;
  EXPECT_TRUE(lock.TryAcquire(&a));
  EXPECT_TRUE(lock.IsLocked());
  EXPECT_FALSE(lock.TryAcquire(&b));
  lock.Release(&a);
  EXPECT_FALSE(lock.IsLocked());
}

TEST(McsLockTest, HandoffToQueuedWaiter) {
  McsLock lock;
  McsLock::QNode a;
  lock.Acquire(&a);
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    McsLock::QNode b;
    lock.Acquire(&b);
    got.store(true);
    lock.Release(&b);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(got.load());
  lock.Release(&a);
  waiter.join();
  EXPECT_TRUE(got.load());
}

TEST(RwLatchTest, SharedHoldersCoexist) {
  RwLatch latch;
  latch.AcquireShared();
  latch.AcquireShared();
  EXPECT_EQ(latch.ReaderCount(), 2u);
  EXPECT_FALSE(latch.TryAcquire(LatchMode::kExclusive));
  latch.ReleaseShared();
  latch.ReleaseShared();
  EXPECT_EQ(latch.ReaderCount(), 0u);
}

TEST(RwLatchTest, ExclusiveExcludesAll) {
  RwLatch latch;
  latch.AcquireExclusive();
  EXPECT_TRUE(latch.IsHeldExclusive());
  EXPECT_FALSE(latch.TryAcquire(LatchMode::kShared));
  EXPECT_FALSE(latch.TryAcquire(LatchMode::kExclusive));
  latch.ReleaseExclusive();
  EXPECT_FALSE(latch.IsHeldExclusive());
}

TEST(RwLatchTest, UpgradeOnlyForSoleReader) {
  RwLatch latch;
  latch.AcquireShared();
  latch.AcquireShared();
  EXPECT_FALSE(latch.TryUpgrade());  // Two readers: no upgrade.
  latch.ReleaseShared();
  EXPECT_TRUE(latch.TryUpgrade());  // Sole reader upgrades.
  EXPECT_TRUE(latch.IsHeldExclusive());
  latch.ReleaseExclusive();
}

TEST(RwLatchTest, DowngradeKeepsHold) {
  RwLatch latch;
  latch.AcquireExclusive();
  latch.Downgrade();
  EXPECT_FALSE(latch.IsHeldExclusive());
  EXPECT_EQ(latch.ReaderCount(), 1u);
  // Another reader can now join.
  EXPECT_TRUE(latch.TryAcquire(LatchMode::kShared));
  latch.ReleaseShared();
  latch.ReleaseShared();
}

TEST(RwLatchTest, WriterExclusionUnderConcurrency) {
  RwLatch latch;
  int64_t value = 0;
  std::vector<std::thread> workers;
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&, i] {
      for (int j = 0; j < kItersPerThread; ++j) {
        if (j % 4 == 0) {
          latch.AcquireExclusive();
          ++value;
          latch.ReleaseExclusive();
        } else {
          latch.AcquireShared();
          // Readers must never observe a torn value; hard to check
          // directly, but the counter math below validates writer mutual
          // exclusion.
          latch.ReleaseShared();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(value, int64_t{kThreads} * (kItersPerThread / 4));
}

TEST(RwLatchTest, LatchGuardReleasesOnScopeExit) {
  RwLatch latch;
  {
    LatchGuard guard(latch, LatchMode::kExclusive);
    EXPECT_TRUE(latch.IsHeldExclusive());
  }
  EXPECT_FALSE(latch.IsHeldExclusive());
  {
    LatchGuard guard(latch, LatchMode::kShared);
    EXPECT_EQ(latch.ReaderCount(), 1u);
    guard.Release();
    EXPECT_EQ(latch.ReaderCount(), 0u);
  }
}

TEST(LockFreeStackTest, PushPopSingleThread) {
  LockFreeIndexStack stack(8);
  EXPECT_TRUE(stack.Empty());
  EXPECT_FALSE(stack.Pop().has_value());
  stack.Push(3);
  stack.Push(5);
  EXPECT_FALSE(stack.Empty());
  EXPECT_EQ(stack.Pop().value(), 5u);  // LIFO.
  EXPECT_EQ(stack.Pop().value(), 3u);
  EXPECT_FALSE(stack.Pop().has_value());
}

TEST(LockFreeStackTest, ConcurrentPushPopPreservesSet) {
  constexpr uint32_t kSlots = 64;
  LockFreeIndexStack stack(kSlots);
  for (uint32_t i = 0; i < kSlots; ++i) stack.Push(i);

  // Each thread repeatedly pops a slot and pushes it back; at the end every
  // slot must still be present exactly once.
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kItersPerThread; ++i) {
        auto idx = stack.Pop();
        if (idx.has_value()) stack.Push(*idx);
      }
    });
  }
  for (auto& w : workers) w.join();

  std::set<uint32_t> seen;
  while (auto idx = stack.Pop()) {
    EXPECT_TRUE(seen.insert(*idx).second) << "duplicate slot " << *idx;
  }
  EXPECT_EQ(seen.size(), kSlots);
}

TEST(SyncStatsTest, RecordsAcquisitions) {
  SyncStats stats("test");
  stats.RecordAcquire(false, 0);
  stats.RecordAcquire(true, 500);
  stats.RecordHold(1000);
  stats.RecordHold(2000);
  EXPECT_EQ(stats.acquires(), 2u);
  EXPECT_EQ(stats.contended(), 1u);
  EXPECT_EQ(stats.total_wait_ns(), 500u);
  EXPECT_EQ(stats.total_hold_ns(), 3000u);
  EXPECT_DOUBLE_EQ(stats.ContentionRate(), 0.5);
  EXPECT_DOUBLE_EQ(stats.MeanHoldNs(), 1500.0);
  stats.Reset();
  EXPECT_EQ(stats.acquires(), 0u);
}

TEST(SyncStatsTest, StatsHookedIntoLock) {
  SyncStats stats("hooked");
  TtasLock lock(&stats);
  {
    std::lock_guard<TtasLock> g(lock);
  }
  EXPECT_EQ(stats.acquires(), 1u);
  EXPECT_EQ(stats.contended(), 0u);
}

TEST(SyncStatsRegistryTest, RegisterReportUnregister) {
  SyncStats stats("registry_probe");
  auto& reg = SyncStatsRegistry::Instance();
  reg.Register(&stats);
  stats.RecordAcquire(false, 0);
  std::string report = reg.Report();
  EXPECT_NE(report.find("registry_probe"), std::string::npos);
  reg.ResetAll();
  EXPECT_EQ(stats.acquires(), 0u);
  reg.Unregister(&stats);
  auto all = reg.All();
  for (auto* s : all) EXPECT_NE(s, &stats);
}

TEST(BackoffTest, PauseDoesNotCrashAndResets) {
  Backoff b;
  for (int i = 0; i < 50; ++i) b.Pause();
  b.Reset();
  b.Pause();
}

TEST(ClhLockTest, MutualExclusion) {
  ClhLock lock;
  CheckMutualExclusion(lock);
}

TEST(ClhLockTest, TryLockSemantics) {
  ClhLock lock;
  EXPECT_FALSE(lock.IsLocked());
  EXPECT_TRUE(lock.try_lock());
  EXPECT_TRUE(lock.IsLocked());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_FALSE(lock.IsLocked());
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(ClhLockTest, ReacquireManyTimesRecyclesNodes) {
  ClhLock lock;
  for (int i = 0; i < 10000; ++i) {
    lock.lock();
    lock.unlock();
  }
  EXPECT_FALSE(lock.IsLocked());
}

TEST(ClhLockTest, TwoLocksHeldSimultaneously) {
  // Per-lock thread slots: holding A must not corrupt B's queue.
  ClhLock a, b;
  a.lock();
  b.lock();
  EXPECT_TRUE(a.IsLocked());
  EXPECT_TRUE(b.IsLocked());
  b.unlock();
  EXPECT_TRUE(a.IsLocked());
  EXPECT_FALSE(b.IsLocked());
  a.unlock();
}

TEST(ClhLockTest, HandoffToQueuedWaiter) {
  ClhLock lock;
  lock.lock();
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    lock.lock();
    got.store(true);
    lock.unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(got.load());
  lock.unlock();
  waiter.join();
  EXPECT_TRUE(got.load());
}

TEST(ClhLockTest, FreshInstanceAfterDestroyIsClean) {
  // Exercises the instance-id keyed thread slots: destroy a lock, create
  // another (likely at the same address), and use it from this thread.
  for (int round = 0; round < 50; ++round) {
    auto lock = std::make_unique<ClhLock>();
    lock->lock();
    lock->unlock();
  }
}

}  // namespace
}  // namespace shoremt::sync
