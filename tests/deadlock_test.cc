#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "lock/lock_manager.h"
#include "lock/txn_lock_list.h"

namespace shoremt::lock {
namespace {

using enum LockMode;

LockOptions WfgOptions(size_t shards = 0) {
  LockOptions o;
  o.deadlock_policy = DeadlockPolicy::kWaitsForGraph;
  o.timeout_us = 2'000'000;  // Long timeout: detection must not rely on it.
  o.shards = shards;
  return o;
}

TEST(DeadlockDetectorTest, TwoTxnCycleDetectedImmediately) {
  LockManager mgr(WfgOptions());
  LockId a = LockId::Store(1);
  LockId b = LockId::Store(2);
  TxnLockList h1 = mgr.Attach(1);
  TxnLockList h2 = mgr.Attach(2);
  ASSERT_TRUE(h1.Lock(a, kX).ok());
  ASSERT_TRUE(h2.Lock(b, kX).ok());

  std::atomic<bool> t1_blocked{false};
  std::thread t1([&] {
    t1_blocked.store(true);
    // Txn 1 waits for b (held by 2).
    Status st = h1.Lock(b, kX);
    // Eventually granted once txn 2 is aborted by the detector.
    EXPECT_TRUE(st.ok()) << st.ToString();
  });
  while (!t1_blocked.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  // Txn 2 requesting a closes the cycle: it must be chosen as victim
  // promptly (well under the 2s timeout).
  uint64_t t0 = NowNanos();
  Status st = h2.Lock(a, kX);
  uint64_t elapsed_ms = (NowNanos() - t0) / 1'000'000;
  EXPECT_TRUE(st.IsDeadlock()) << st.ToString();
  EXPECT_LT(elapsed_ms, 500u) << "cycle must not wait out the timeout";
  EXPECT_GE(mgr.stats().cycles_detected.load(), 1u);

  // Victim releases its locks (bulk); the waiter drains.
  h2.ReleaseAll();
  t1.join();
  h1.ReleaseAll();
  EXPECT_EQ(mgr.LockedObjectCount(), 0u);
}

TEST(DeadlockDetectorTest, ThreeTxnCycleDetected) {
  LockManager mgr(WfgOptions());
  LockId a = LockId::Store(1), b = LockId::Store(2), c = LockId::Store(3);
  TxnLockList h1 = mgr.Attach(1);
  TxnLockList h2 = mgr.Attach(2);
  TxnLockList h3 = mgr.Attach(3);
  ASSERT_TRUE(h1.Lock(a, kX).ok());
  ASSERT_TRUE(h2.Lock(b, kX).ok());
  ASSERT_TRUE(h3.Lock(c, kX).ok());

  std::thread t1([&] { EXPECT_TRUE(h1.Lock(b, kX).ok()); });   // 1→2
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  std::thread t2([&] { EXPECT_TRUE(h2.Lock(c, kX).ok()); });   // 2→3
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  // 3→1 closes the 3-cycle.
  Status st = h3.Lock(a, kX);
  EXPECT_TRUE(st.IsDeadlock());

  h3.ReleaseAll();  // Victim unwinds; 2 gets c...
  t2.join();
  h2.ReleaseAll();  // ...then 1 gets b.
  t1.join();
  h1.ReleaseAll();
  EXPECT_EQ(mgr.LockedObjectCount(), 0u);
}

/// Finds `n` store ids mapping to pairwise-distinct shards.
std::vector<StoreId> DistinctShardStores(const LockManager& mgr, size_t n) {
  std::vector<StoreId> stores;
  std::vector<size_t> shards;
  for (StoreId s = 1; s < 10'000 && stores.size() < n; ++s) {
    size_t shard = mgr.ShardIndex(LockId::Store(s));
    bool seen = false;
    for (size_t used : shards) seen = seen || used == shard;
    if (!seen) {
      stores.push_back(s);
      shards.push_back(shard);
    }
  }
  return stores;
}

TEST(DeadlockDetectorTest, CrossShardTwoTxnCycleDetected) {
  // The two locks live in different shards, so each edge sits in a
  // different waits-for partition: only the merged-graph check can see
  // the cycle.
  LockManager mgr(WfgOptions(/*shards=*/4));
  ASSERT_EQ(mgr.shard_count(), 4u);
  auto stores = DistinctShardStores(mgr, 2);
  ASSERT_EQ(stores.size(), 2u);
  LockId a = LockId::Store(stores[0]);
  LockId b = LockId::Store(stores[1]);
  TxnLockList h1 = mgr.Attach(1);
  TxnLockList h2 = mgr.Attach(2);
  ASSERT_TRUE(h1.Lock(a, kX).ok());
  ASSERT_TRUE(h2.Lock(b, kX).ok());

  std::atomic<bool> t1_blocked{false};
  std::thread t1([&] {
    t1_blocked.store(true);
    EXPECT_TRUE(h1.Lock(b, kX).ok());  // Granted after the victim unwinds.
  });
  while (!t1_blocked.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  uint64_t t0 = NowNanos();
  Status st = h2.Lock(a, kX);
  uint64_t elapsed_ms = (NowNanos() - t0) / 1'000'000;
  EXPECT_TRUE(st.IsDeadlock()) << st.ToString();
  EXPECT_LT(elapsed_ms, 500u) << "cross-shard cycle must not wait out the "
                                 "timeout";
  EXPECT_GE(mgr.stats().cycles_detected.load(), 1u);
  h2.ReleaseAll();
  t1.join();
  h1.ReleaseAll();
  EXPECT_EQ(mgr.LockedObjectCount(), 0u);
}

TEST(DeadlockDetectorTest, CrossShardThreeTxnCycleDetected) {
  // Three transactions, three locks, three distinct shards: the cycle is
  // visible only through the epoch-stamped merge of all partitions.
  LockManager mgr(WfgOptions(/*shards=*/4));
  auto stores = DistinctShardStores(mgr, 3);
  ASSERT_EQ(stores.size(), 3u);
  LockId a = LockId::Store(stores[0]);
  LockId b = LockId::Store(stores[1]);
  LockId c = LockId::Store(stores[2]);
  TxnLockList h1 = mgr.Attach(1);
  TxnLockList h2 = mgr.Attach(2);
  TxnLockList h3 = mgr.Attach(3);
  ASSERT_TRUE(h1.Lock(a, kX).ok());
  ASSERT_TRUE(h2.Lock(b, kX).ok());
  ASSERT_TRUE(h3.Lock(c, kX).ok());

  std::thread t1([&] { EXPECT_TRUE(h1.Lock(b, kX).ok()); });   // 1→2
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  std::thread t2([&] { EXPECT_TRUE(h2.Lock(c, kX).ok()); });   // 2→3
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  uint64_t t0 = NowNanos();
  Status st = h3.Lock(a, kX);  // 3→1 closes the cycle.
  uint64_t elapsed_ms = (NowNanos() - t0) / 1'000'000;
  EXPECT_TRUE(st.IsDeadlock()) << st.ToString();
  EXPECT_LT(elapsed_ms, 500u);

  h3.ReleaseAll();
  t2.join();
  h2.ReleaseAll();
  t1.join();
  h1.ReleaseAll();
  EXPECT_EQ(mgr.LockedObjectCount(), 0u);
}

TEST(DeadlockDetectorTest, WaitChainWithoutCycleIsNotAVictim) {
  LockManager mgr(WfgOptions());
  LockId a = LockId::Store(1), b = LockId::Store(2);
  TxnLockList h1 = mgr.Attach(1);
  TxnLockList h2 = mgr.Attach(2);
  TxnLockList h3 = mgr.Attach(3);
  ASSERT_TRUE(h1.Lock(a, kX).ok());
  ASSERT_TRUE(h2.Lock(b, kX).ok());

  // 3 waits on a, 2 waits on a: a chain, no cycle — nobody may be killed.
  std::atomic<int> granted{0};
  std::thread t3([&] {
    if (h3.Lock(a, kS).ok()) granted.fetch_add(1);
  });
  std::thread t2([&] {
    if (h2.Lock(a, kS).ok()) granted.fetch_add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(mgr.stats().cycles_detected.load(), 0u);
  h1.ReleaseAll();
  t3.join();
  t2.join();
  EXPECT_EQ(granted.load(), 2);
  h2.ReleaseAll();
  h3.ReleaseAll();
}

TEST(DeadlockDetectorTest, UpgradeCycleDetected) {
  LockManager mgr(WfgOptions());
  LockId a = LockId::Store(1);
  TxnLockList h1 = mgr.Attach(1);
  TxnLockList h2 = mgr.Attach(2);
  ASSERT_TRUE(h1.Lock(a, kS).ok());
  ASSERT_TRUE(h2.Lock(a, kS).ok());

  std::atomic<bool> t1_done{false};
  std::thread t1([&] {
    Status st = h1.Lock(a, kX);  // Upgrade: waits on txn 2's S.
    t1_done.store(true);
    // Granted after txn 2 (the victim) releases.
    EXPECT_TRUE(st.ok()) << st.ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  Status st = h2.Lock(a, kX);  // Second upgrade closes the cycle.
  EXPECT_TRUE(st.IsDeadlock());
  h2.ReleaseAll();
  t1.join();
  EXPECT_TRUE(t1_done.load());
  h1.ReleaseAll();
}

TEST(DeadlockDetectorTest, StressNoHangsManyTxns) {
  LockManager mgr(WfgOptions());
  constexpr int kThreads = 4;
  constexpr int kRounds = 150;
  std::atomic<int> commits{0};
  std::atomic<int> victims{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(t + 1);
      for (int i = 0; i < kRounds; ++i) {
        TxnLockList h =
            mgr.Attach(static_cast<TxnId>(t * 10'000 + i + 1));
        LockId first = LockId::Store(1 + rng.Uniform(3));
        LockId second = LockId::Store(1 + rng.Uniform(3));
        Status s1 = h.Lock(first, kX);
        if (!s1.ok()) {
          victims.fetch_add(1);
          h.ReleaseAll();
          continue;
        }
        Status s2 = first == second ? Status::Ok() : h.Lock(second, kX);
        if (s2.ok()) {
          commits.fetch_add(1);
        } else {
          victims.fetch_add(1);
        }
        h.ReleaseAll();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_GT(commits.load(), 0);
  EXPECT_EQ(mgr.LockedObjectCount(), 0u);
}

TEST(DeadlockDetectorTest, TimeoutPolicyUnaffected) {
  LockOptions o;
  o.deadlock_policy = DeadlockPolicy::kTimeoutOnly;
  o.timeout_us = 30'000;
  LockManager mgr(o);
  LockId a = LockId::Store(1);
  TxnLockList h1 = mgr.Attach(1);
  TxnLockList h2 = mgr.Attach(2);
  ASSERT_TRUE(h1.Lock(a, kX).ok());
  Status st = h2.Lock(a, kX);
  EXPECT_TRUE(st.IsDeadlock());
  EXPECT_EQ(mgr.stats().cycles_detected.load(), 0u);
  h1.ReleaseAll();
}

}  // namespace
}  // namespace shoremt::lock
