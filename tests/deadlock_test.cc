#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "lock/lock_manager.h"

namespace shoremt::lock {
namespace {

using enum LockMode;

LockOptions WfgOptions() {
  LockOptions o;
  o.deadlock_policy = DeadlockPolicy::kWaitsForGraph;
  o.timeout_us = 2'000'000;  // Long timeout: detection must not rely on it.
  return o;
}

TEST(DeadlockDetectorTest, TwoTxnCycleDetectedImmediately) {
  LockManager mgr(WfgOptions());
  LockId a = LockId::Store(1);
  LockId b = LockId::Store(2);
  ASSERT_TRUE(mgr.Lock(1, a, kX).ok());
  ASSERT_TRUE(mgr.Lock(2, b, kX).ok());

  std::atomic<bool> t1_blocked{false};
  std::thread t1([&] {
    t1_blocked.store(true);
    // Txn 1 waits for b (held by 2).
    Status st = mgr.Lock(1, b, kX);
    // Eventually granted once txn 2 is aborted by the detector.
    EXPECT_TRUE(st.ok()) << st.ToString();
  });
  while (!t1_blocked.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  // Txn 2 requesting a closes the cycle: it must be chosen as victim
  // promptly (well under the 2s timeout).
  uint64_t t0 = NowNanos();
  Status st = mgr.Lock(2, a, kX);
  uint64_t elapsed_ms = (NowNanos() - t0) / 1'000'000;
  EXPECT_TRUE(st.IsDeadlock()) << st.ToString();
  EXPECT_LT(elapsed_ms, 500u) << "cycle must not wait out the timeout";
  EXPECT_GE(mgr.stats().cycles_detected.load(), 1u);

  // Victim releases its locks; the waiter drains.
  ASSERT_TRUE(mgr.Unlock(2, b).ok());
  t1.join();
  ASSERT_TRUE(mgr.Unlock(1, a).ok());
  ASSERT_TRUE(mgr.Unlock(1, b).ok());
}

TEST(DeadlockDetectorTest, ThreeTxnCycleDetected) {
  LockManager mgr(WfgOptions());
  LockId a = LockId::Store(1), b = LockId::Store(2), c = LockId::Store(3);
  ASSERT_TRUE(mgr.Lock(1, a, kX).ok());
  ASSERT_TRUE(mgr.Lock(2, b, kX).ok());
  ASSERT_TRUE(mgr.Lock(3, c, kX).ok());

  std::thread t1([&] { EXPECT_TRUE(mgr.Lock(1, b, kX).ok()); });   // 1→2
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  std::thread t2([&] { EXPECT_TRUE(mgr.Lock(2, c, kX).ok()); });   // 2→3
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  // 3→1 closes the 3-cycle.
  Status st = mgr.Lock(3, a, kX);
  EXPECT_TRUE(st.IsDeadlock());

  ASSERT_TRUE(mgr.Unlock(3, c).ok());  // Victim unwinds; 2 gets c...
  t2.join();
  ASSERT_TRUE(mgr.Unlock(2, b).ok());  // ...then 1 gets b.
  t1.join();
  ASSERT_TRUE(mgr.Unlock(1, a).ok());
  ASSERT_TRUE(mgr.Unlock(1, b).ok());
  ASSERT_TRUE(mgr.Unlock(2, c).ok());
}

TEST(DeadlockDetectorTest, WaitChainWithoutCycleIsNotAVictim) {
  LockManager mgr(WfgOptions());
  LockId a = LockId::Store(1), b = LockId::Store(2);
  ASSERT_TRUE(mgr.Lock(1, a, kX).ok());
  ASSERT_TRUE(mgr.Lock(2, b, kX).ok());

  // 3 waits on a, 2 waits on a: a chain, no cycle — nobody may be killed.
  std::atomic<int> granted{0};
  std::thread t3([&] {
    if (mgr.Lock(3, a, kS).ok()) {
      granted.fetch_add(1);
      EXPECT_TRUE(mgr.Unlock(3, a).ok());
    }
  });
  std::thread t2([&] {
    if (mgr.Lock(2, a, kS).ok()) {
      granted.fetch_add(1);
      EXPECT_TRUE(mgr.Unlock(2, a).ok());
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(mgr.stats().cycles_detected.load(), 0u);
  ASSERT_TRUE(mgr.Unlock(1, a).ok());
  t3.join();
  t2.join();
  EXPECT_EQ(granted.load(), 2);
  ASSERT_TRUE(mgr.Unlock(2, b).ok());
}

TEST(DeadlockDetectorTest, UpgradeCycleDetected) {
  LockManager mgr(WfgOptions());
  LockId a = LockId::Store(1);
  ASSERT_TRUE(mgr.Lock(1, a, kS).ok());
  ASSERT_TRUE(mgr.Lock(2, a, kS).ok());

  std::atomic<bool> t1_done{false};
  std::thread t1([&] {
    Status st = mgr.Lock(1, a, kX);  // Upgrade: waits on txn 2's S.
    t1_done.store(true);
    // Granted after txn 2 (the victim) releases.
    EXPECT_TRUE(st.ok()) << st.ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  Status st = mgr.Lock(2, a, kX);  // Second upgrade closes the cycle.
  EXPECT_TRUE(st.IsDeadlock());
  ASSERT_TRUE(mgr.Unlock(2, a).ok());
  t1.join();
  EXPECT_TRUE(t1_done.load());
  ASSERT_TRUE(mgr.Unlock(1, a).ok());
}

TEST(DeadlockDetectorTest, StressNoHangsManyTxns) {
  LockManager mgr(WfgOptions());
  constexpr int kThreads = 4;
  constexpr int kRounds = 150;
  std::atomic<int> commits{0};
  std::atomic<int> victims{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(t + 1);
      for (int i = 0; i < kRounds; ++i) {
        TxnId txn = static_cast<TxnId>(t * 10000 + i + 1);
        LockId first = LockId::Store(1 + rng.Uniform(3));
        LockId second = LockId::Store(1 + rng.Uniform(3));
        Status s1 = mgr.Lock(txn, first, kX);
        if (!s1.ok()) {
          victims.fetch_add(1);
          continue;
        }
        Status s2 = first == second ? Status::Ok()
                                    : mgr.Lock(txn, second, kX);
        if (s2.ok()) {
          commits.fetch_add(1);
          if (first != second) (void)mgr.Unlock(txn, second);
        } else {
          victims.fetch_add(1);
        }
        (void)mgr.Unlock(txn, first);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_GT(commits.load(), 0);
  EXPECT_EQ(mgr.LockedObjectCount(), 0u);
}

TEST(DeadlockDetectorTest, TimeoutPolicyUnaffected) {
  LockOptions o;
  o.deadlock_policy = DeadlockPolicy::kTimeoutOnly;
  o.timeout_us = 30'000;
  LockManager mgr(o);
  LockId a = LockId::Store(1);
  ASSERT_TRUE(mgr.Lock(1, a, kX).ok());
  Status st = mgr.Lock(2, a, kX);
  EXPECT_TRUE(st.IsDeadlock());
  EXPECT_EQ(mgr.stats().cycles_detected.load(), 0u);
  ASSERT_TRUE(mgr.Unlock(1, a).ok());
}

}  // namespace
}  // namespace shoremt::lock
