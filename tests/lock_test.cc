#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "lock/lock_id.h"
#include "lock/lock_manager.h"
#include "lock/lock_mode.h"
#include "lock/request_pool.h"

namespace shoremt::lock {
namespace {

using enum LockMode;

TEST(LockModeTest, CompatibilityMatrix) {
  // Spot-check the canonical multigranularity matrix.
  EXPECT_TRUE(Compatible(kIS, kIS));
  EXPECT_TRUE(Compatible(kIS, kIX));
  EXPECT_TRUE(Compatible(kIS, kS));
  EXPECT_TRUE(Compatible(kIS, kSIX));
  EXPECT_FALSE(Compatible(kIS, kX));
  EXPECT_TRUE(Compatible(kIX, kIX));
  EXPECT_FALSE(Compatible(kIX, kS));
  EXPECT_FALSE(Compatible(kIX, kSIX));
  EXPECT_TRUE(Compatible(kS, kS));
  EXPECT_FALSE(Compatible(kS, kIX));
  EXPECT_FALSE(Compatible(kSIX, kSIX));
  EXPECT_TRUE(Compatible(kSIX, kIS));
  EXPECT_FALSE(Compatible(kX, kIS));
  EXPECT_FALSE(Compatible(kX, kX));
}

TEST(LockModeTest, SupremumLattice) {
  EXPECT_EQ(Supremum(kS, kS), kS);
  EXPECT_EQ(Supremum(kIS, kIX), kIX);
  EXPECT_EQ(Supremum(kS, kIX), kSIX);
  EXPECT_EQ(Supremum(kIX, kS), kSIX);
  EXPECT_EQ(Supremum(kS, kX), kX);
  EXPECT_EQ(Supremum(kSIX, kIX), kSIX);
  EXPECT_EQ(Supremum(kIS, kX), kX);
}

TEST(LockModeTest, IntentionMapping) {
  EXPECT_EQ(IntentionFor(kS), kIS);
  EXPECT_EQ(IntentionFor(kX), kIX);
  EXPECT_EQ(IntentionFor(kSIX), kIX);
  EXPECT_EQ(IntentionFor(kIS), kIS);
}

TEST(LockIdTest, HierarchyAndEquality) {
  LockId rec = LockId::Record(4, RecordId{10, 2});
  EXPECT_EQ(rec.Parent(), LockId::Store(4));
  EXPECT_EQ(LockId::Store(4).Parent(), LockId::Volume());
  EXPECT_EQ(LockId::Volume().Parent(), LockId::Volume());
  EXPECT_NE(LockIdHash()(rec), LockIdHash()(LockId::Store(4)));
  EXPECT_EQ(rec, LockId::Record(4, RecordId{10, 2}));
  EXPECT_NE(rec, LockId::Record(4, RecordId{10, 3}));
}

TEST(RequestPoolTest, AcquireReleaseBothKinds) {
  for (auto kind :
       {RequestPoolKind::kMutexFreelist, RequestPoolKind::kLockFreeStack}) {
    RequestPool pool(kind, 4);
    std::vector<uint32_t> got;
    for (int i = 0; i < 4; ++i) {
      auto idx = pool.Acquire();
      ASSERT_TRUE(idx.has_value());
      got.push_back(*idx);
    }
    EXPECT_FALSE(pool.Acquire().has_value()) << "pool must exhaust";
    pool.Release(got[0]);
    auto again = pool.Acquire();
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, got[0]);
  }
}

LockOptions FastTimeout() {
  LockOptions o;
  o.timeout_us = 50'000;  // Keep deadlock tests quick.
  return o;
}

class LockManagerTest : public ::testing::TestWithParam<bool> {
 protected:
  LockManagerTest() : mgr_(MakeOptions()) {}
  LockOptions MakeOptions() {
    LockOptions o = FastTimeout();
    o.per_bucket_latch = GetParam();
    return o;
  }
  LockManager mgr_;
};

TEST_P(LockManagerTest, GrantAndRelease) {
  LockId id = LockId::Store(1);
  ASSERT_TRUE(mgr_.Lock(1, id, kX).ok());
  EXPECT_EQ(mgr_.HeldMode(1, id), kX);
  EXPECT_EQ(mgr_.LockedObjectCount(), 1u);
  ASSERT_TRUE(mgr_.Unlock(1, id).ok());
  EXPECT_EQ(mgr_.HeldMode(1, id), kNone);
  EXPECT_EQ(mgr_.LockedObjectCount(), 0u);
  EXPECT_TRUE(mgr_.Unlock(1, id).IsNotFound());
}

TEST_P(LockManagerTest, SharedLocksCoexist) {
  LockId id = LockId::Store(1);
  ASSERT_TRUE(mgr_.Lock(1, id, kS).ok());
  ASSERT_TRUE(mgr_.Lock(2, id, kS).ok());
  ASSERT_TRUE(mgr_.Lock(3, id, kIS).ok());
  EXPECT_EQ(mgr_.HeldMode(2, id), kS);
}

TEST_P(LockManagerTest, ConflictTimesOutAsDeadlock) {
  LockId id = LockId::Store(1);
  ASSERT_TRUE(mgr_.Lock(1, id, kX).ok());
  Status st = mgr_.Lock(2, id, kS);
  EXPECT_TRUE(st.IsDeadlock()) << st.ToString();
  EXPECT_EQ(mgr_.stats().timeouts.load(), 1u);
}

TEST_P(LockManagerTest, ReacquireIsNoop) {
  LockId id = LockId::Store(1);
  ASSERT_TRUE(mgr_.Lock(1, id, kX).ok());
  ASSERT_TRUE(mgr_.Lock(1, id, kS).ok());  // Weaker: already covered.
  EXPECT_EQ(mgr_.HeldMode(1, id), kX);
}

TEST_P(LockManagerTest, UpgradeWhenAlone) {
  LockId id = LockId::Store(1);
  ASSERT_TRUE(mgr_.Lock(1, id, kS).ok());
  ASSERT_TRUE(mgr_.Lock(1, id, kX).ok());
  EXPECT_EQ(mgr_.HeldMode(1, id), kX);
  EXPECT_GE(mgr_.stats().upgrades.load(), 1u);
}

TEST_P(LockManagerTest, SIXComposition) {
  LockId id = LockId::Store(1);
  ASSERT_TRUE(mgr_.Lock(1, id, kS).ok());
  ASSERT_TRUE(mgr_.Lock(1, id, kIX).ok());
  EXPECT_EQ(mgr_.HeldMode(1, id), kSIX);
}

TEST_P(LockManagerTest, WaiterGrantedAfterRelease) {
  LockId id = LockId::Store(1);
  ASSERT_TRUE(mgr_.Lock(1, id, kX).ok());
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    ASSERT_TRUE(mgr_.Lock(2, id, kX).ok());
    got.store(true);
    ASSERT_TRUE(mgr_.Unlock(2, id).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(got.load());
  ASSERT_TRUE(mgr_.Unlock(1, id).ok());
  waiter.join();
  EXPECT_TRUE(got.load());
  EXPECT_GE(mgr_.stats().waits.load(), 1u);
}

TEST_P(LockManagerTest, FifoPreventsWriterStarvationByNewReaders) {
  LockId id = LockId::Store(1);
  ASSERT_TRUE(mgr_.Lock(1, id, kS).ok());
  // Writer queues behind the reader.
  std::thread writer([&] {
    ASSERT_TRUE(mgr_.Lock(2, id, kX).ok());
    ASSERT_TRUE(mgr_.Unlock(2, id).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // A new reader must queue behind the waiting writer (FIFO), not barge.
  std::atomic<bool> reader_done{false};
  std::thread reader([&] {
    ASSERT_TRUE(mgr_.Lock(3, id, kS).ok());
    reader_done.store(true);
    ASSERT_TRUE(mgr_.Unlock(3, id).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(reader_done.load());
  ASSERT_TRUE(mgr_.Unlock(1, id).ok());  // Writer goes, then reader.
  writer.join();
  reader.join();
  EXPECT_TRUE(reader_done.load());
}

TEST_P(LockManagerTest, UpgradeDeadlockResolvedByTimeout) {
  // Two readers both try to upgrade: classic unresolvable conflict; the
  // timeout must break it.
  LockId id = LockId::Store(1);
  ASSERT_TRUE(mgr_.Lock(1, id, kS).ok());
  ASSERT_TRUE(mgr_.Lock(2, id, kS).ok());
  std::atomic<int> deadlocks{0};
  std::thread t1([&] {
    Status st = mgr_.Lock(1, id, kX);
    if (st.IsDeadlock()) deadlocks.fetch_add(1);
  });
  std::thread t2([&] {
    Status st = mgr_.Lock(2, id, kX);
    if (st.IsDeadlock()) deadlocks.fetch_add(1);
  });
  t1.join();
  t2.join();
  EXPECT_GE(deadlocks.load(), 1);
}

TEST_P(LockManagerTest, HierarchicalWorkflowIntentThenRow) {
  // Typical row update: IX on store, X on row; a full-table reader (S on
  // store) must conflict, a row reader of another row must not.
  LockId store = LockId::Store(7);
  LockId row1 = LockId::Record(7, RecordId{5, 1});
  LockId row2 = LockId::Record(7, RecordId{5, 2});
  ASSERT_TRUE(mgr_.Lock(1, store, kIX).ok());
  ASSERT_TRUE(mgr_.Lock(1, row1, kX).ok());
  // Row-level reader on a different row proceeds.
  ASSERT_TRUE(mgr_.Lock(2, store, kIS).ok());
  ASSERT_TRUE(mgr_.Lock(2, row2, kS).ok());
  // Table scanner blocks (S vs IX) until writer finishes.
  EXPECT_TRUE(mgr_.Lock(3, store, kS).IsDeadlock());  // Times out.
}

TEST_P(LockManagerTest, ConcurrentDisjointLocking) {
  constexpr int kThreads = 4;
  constexpr int kRows = 200;
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      TxnId txn = t + 1;
      for (int i = 0; i < kRows; ++i) {
        LockId row = LockId::Record(1, RecordId{static_cast<PageNum>(t + 1),
                                                static_cast<uint16_t>(i)});
        if (!mgr_.Lock(txn, row, kX).ok()) failures.fetch_add(1);
      }
      for (int i = 0; i < kRows; ++i) {
        LockId row = LockId::Record(1, RecordId{static_cast<PageNum>(t + 1),
                                                static_cast<uint16_t>(i)});
        if (!mgr_.Unlock(txn, row).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mgr_.LockedObjectCount(), 0u);
}

TEST_P(LockManagerTest, ContendedRowMutualExclusion) {
  // N threads take turns holding X on one row; a shared counter checks
  // mutual exclusion end to end.
  LockId row = LockId::Record(1, RecordId{1, 0});
  int64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 50;
  std::vector<std::thread> workers;
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      TxnId txn = t + 1;
      for (int i = 0; i < kIters; ++i) {
        // Retry on deadlock timeouts (heavy contention on 1 core).
        for (;;) {
          Status st = mgr_.Lock(txn, row, kX);
          if (st.ok()) break;
          if (!st.IsDeadlock()) {
            errors.fetch_add(1);
            return;
          }
        }
        ++counter;
        if (!mgr_.Unlock(txn, row).ok()) errors.fetch_add(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(counter, int64_t{kThreads} * kIters);
}

INSTANTIATE_TEST_SUITE_P(LatchStrategies, LockManagerTest,
                         ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "PerBucket" : "GlobalMutex";
                         });

TEST(LockManagerPoolTest, ExhaustedPoolReportsBusy) {
  LockOptions o = FastTimeout();
  o.pool_capacity = 2;
  LockManager mgr(o);
  ASSERT_TRUE(mgr.Lock(1, LockId::Store(1), kS).ok());
  ASSERT_TRUE(mgr.Lock(1, LockId::Store(2), kS).ok());
  EXPECT_TRUE(mgr.Lock(1, LockId::Store(3), kS).IsBusy());
}

TEST(LockManagerPoolTest, BothPoolKindsFunctionUnderLoad) {
  for (auto kind :
       {RequestPoolKind::kMutexFreelist, RequestPoolKind::kLockFreeStack}) {
    LockOptions o = FastTimeout();
    o.pool_kind = kind;
    LockManager mgr(o);
    std::vector<std::thread> workers;
    std::atomic<int> failures{0};
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&, t] {
        TxnId txn = t + 1;
        for (int i = 0; i < 300; ++i) {
          LockId id = LockId::Record(
              1, RecordId{static_cast<PageNum>(i % 7 + 1),
                          static_cast<uint16_t>(t)});
          if (!mgr.Lock(txn, id, kS).ok() ||
              !mgr.Unlock(txn, id).ok()) {
            failures.fetch_add(1);
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(mgr.LockedObjectCount(), 0u);
  }
}

}  // namespace
}  // namespace shoremt::lock
