#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "lock/lock_id.h"
#include "lock/lock_manager.h"
#include "lock/lock_mode.h"
#include "lock/request_pool.h"
#include "lock/txn_lock_list.h"

namespace shoremt::lock {
namespace {

using enum LockMode;

TEST(LockModeTest, CompatibilityMatrix) {
  // Spot-check the canonical multigranularity matrix.
  EXPECT_TRUE(Compatible(kIS, kIS));
  EXPECT_TRUE(Compatible(kIS, kIX));
  EXPECT_TRUE(Compatible(kIS, kS));
  EXPECT_TRUE(Compatible(kIS, kSIX));
  EXPECT_FALSE(Compatible(kIS, kX));
  EXPECT_TRUE(Compatible(kIX, kIX));
  EXPECT_FALSE(Compatible(kIX, kS));
  EXPECT_FALSE(Compatible(kIX, kSIX));
  EXPECT_TRUE(Compatible(kS, kS));
  EXPECT_FALSE(Compatible(kS, kIX));
  EXPECT_FALSE(Compatible(kSIX, kSIX));
  EXPECT_TRUE(Compatible(kSIX, kIS));
  EXPECT_FALSE(Compatible(kX, kIS));
  EXPECT_FALSE(Compatible(kX, kX));
}

TEST(LockModeTest, SupremumLattice) {
  EXPECT_EQ(Supremum(kS, kS), kS);
  EXPECT_EQ(Supremum(kIS, kIX), kIX);
  EXPECT_EQ(Supremum(kS, kIX), kSIX);
  EXPECT_EQ(Supremum(kIX, kS), kSIX);
  EXPECT_EQ(Supremum(kS, kX), kX);
  EXPECT_EQ(Supremum(kSIX, kIX), kSIX);
  EXPECT_EQ(Supremum(kIS, kX), kX);
}

TEST(LockModeTest, IntentionMapping) {
  EXPECT_EQ(IntentionFor(kS), kIS);
  EXPECT_EQ(IntentionFor(kX), kIX);
  EXPECT_EQ(IntentionFor(kSIX), kIX);
  EXPECT_EQ(IntentionFor(kIS), kIS);
}

TEST(LockIdTest, HierarchyAndEquality) {
  LockId rec = LockId::Record(4, RecordId{10, 2});
  EXPECT_EQ(rec.Parent(), LockId::Store(4));
  EXPECT_EQ(LockId::Store(4).Parent(), LockId::Volume());
  EXPECT_EQ(LockId::Volume().Parent(), LockId::Volume());
  EXPECT_NE(LockIdHash()(rec), LockIdHash()(LockId::Store(4)));
  EXPECT_EQ(rec, LockId::Record(4, RecordId{10, 2}));
  EXPECT_NE(rec, LockId::Record(4, RecordId{10, 3}));
}

TEST(RequestPoolTest, AcquireReleaseBothKinds) {
  for (auto kind :
       {RequestPoolKind::kMutexFreelist, RequestPoolKind::kLockFreeStack}) {
    RequestPool pool(kind, 4);
    std::vector<uint32_t> got;
    for (int i = 0; i < 4; ++i) {
      auto idx = pool.Acquire();
      ASSERT_TRUE(idx.has_value());
      got.push_back(*idx);
    }
    EXPECT_FALSE(pool.Acquire().has_value()) << "pool must exhaust";
    pool.Release(got[0]);
    auto again = pool.Acquire();
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, got[0]);
  }
}

TEST(TxnLockListTest, DetachedHandleRejectsRequests) {
  TxnLockList detached;
  EXPECT_FALSE(detached.attached());
  EXPECT_EQ(detached.Lock(LockId::Store(1), kS).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(detached.LockRecord(1, RecordId{1, 0}, kX).code(),
            StatusCode::kInvalidArgument);
  detached.ReleaseAll();  // No-op, must not crash.
}

TEST(TxnLockListTest, MoveDetachesTheSource) {
  LockOptions o;
  o.timeout_us = 50'000;
  LockManager mgr(o);
  TxnLockList a = mgr.Attach(1);
  ASSERT_TRUE(a.Lock(LockId::Store(1), kX).ok());
  TxnLockList b = std::move(a);
  EXPECT_FALSE(a.attached());
  EXPECT_EQ(a.Lock(LockId::Store(2), kS).code(),
            StatusCode::kInvalidArgument)
      << "a moved-from handle must reject requests, not corrupt state";
  EXPECT_TRUE(b.attached());
  EXPECT_EQ(b.HeldMode(LockId::Store(1)), kX);
  b.ReleaseAll();
  EXPECT_EQ(mgr.LockedObjectCount(), 0u);
}

LockOptions FastTimeout() {
  LockOptions o;
  o.timeout_us = 50'000;  // Keep deadlock tests quick.
  return o;
}

class LockManagerTest : public ::testing::TestWithParam<bool> {
 protected:
  LockManagerTest() : mgr_(MakeOptions()) {}
  LockOptions MakeOptions() {
    LockOptions o = FastTimeout();
    o.per_shard_latch = GetParam();
    o.shards = 4;
    return o;
  }
  LockManager mgr_;
};

TEST_P(LockManagerTest, GrantAndBulkRelease) {
  LockId id = LockId::Store(1);
  TxnLockList h = mgr_.Attach(1);
  ASSERT_TRUE(h.Lock(id, kX).ok());
  EXPECT_EQ(h.HeldMode(id), kX);
  EXPECT_EQ(mgr_.HeldMode(1, id), kX) << "cache and table must agree";
  EXPECT_EQ(mgr_.LockedObjectCount(), 1u);
  h.ReleaseAll();
  EXPECT_EQ(h.HeldMode(id), kNone);
  EXPECT_EQ(mgr_.HeldMode(1, id), kNone);
  EXPECT_EQ(mgr_.LockedObjectCount(), 0u);
  EXPECT_GE(mgr_.stats().bulk_releases.load(), 1u);
}

TEST_P(LockManagerTest, SharedLocksCoexist) {
  LockId id = LockId::Store(1);
  TxnLockList h1 = mgr_.Attach(1);
  TxnLockList h2 = mgr_.Attach(2);
  TxnLockList h3 = mgr_.Attach(3);
  ASSERT_TRUE(h1.Lock(id, kS).ok());
  ASSERT_TRUE(h2.Lock(id, kS).ok());
  ASSERT_TRUE(h3.Lock(id, kIS).ok());
  EXPECT_EQ(mgr_.HeldMode(2, id), kS);
  h1.ReleaseAll();
  h2.ReleaseAll();
  h3.ReleaseAll();
}

TEST_P(LockManagerTest, ConflictTimesOutAsDeadlock) {
  LockId id = LockId::Store(1);
  TxnLockList h1 = mgr_.Attach(1);
  TxnLockList h2 = mgr_.Attach(2);
  ASSERT_TRUE(h1.Lock(id, kX).ok());
  Status st = h2.Lock(id, kS);
  EXPECT_TRUE(st.IsDeadlock()) << st.ToString();
  EXPECT_EQ(mgr_.stats().timeouts.load(), 1u);
  h1.ReleaseAll();
}

TEST_P(LockManagerTest, ReacquireServedFromCache) {
  LockId id = LockId::Store(1);
  TxnLockList h = mgr_.Attach(1);
  ASSERT_TRUE(h.Lock(id, kX).ok());
  uint64_t acquired_before = mgr_.stats().acquired.load();
  ASSERT_TRUE(h.Lock(id, kS).ok());  // Weaker: already covered.
  ASSERT_TRUE(h.Lock(id, kX).ok());  // Equal: already covered.
  EXPECT_EQ(h.cache_hits(), 2u) << "re-grants must not touch the table";
  EXPECT_EQ(mgr_.stats().acquired.load(), acquired_before);
  EXPECT_EQ(mgr_.HeldMode(1, id), kX);
  h.ReleaseAll();
}

TEST_P(LockManagerTest, UpgradeAfterCachedWeakerMode) {
  // Cache re-grant correctness: the upgrade must go to the shared table
  // (it is NOT covered by the cached S), and afterwards both the cache
  // and the table must report the stronger mode.
  LockId id = LockId::Store(1);
  TxnLockList h = mgr_.Attach(1);
  ASSERT_TRUE(h.Lock(id, kS).ok());
  EXPECT_EQ(h.cache_hits(), 0u);
  ASSERT_TRUE(h.Lock(id, kX).ok());  // Genuine upgrade: cache miss.
  EXPECT_EQ(h.cache_hits(), 0u);
  EXPECT_GE(mgr_.stats().upgrades.load(), 1u);
  EXPECT_EQ(h.HeldMode(id), kX);
  EXPECT_EQ(mgr_.HeldMode(1, id), kX);
  // And the now-cached X absorbs further re-requests of anything weaker.
  ASSERT_TRUE(h.Lock(id, kS).ok());
  EXPECT_EQ(h.cache_hits(), 1u);
  h.ReleaseAll();
}

TEST_P(LockManagerTest, SIXComposition) {
  LockId id = LockId::Store(1);
  TxnLockList h = mgr_.Attach(1);
  ASSERT_TRUE(h.Lock(id, kS).ok());
  ASSERT_TRUE(h.Lock(id, kIX).ok());
  EXPECT_EQ(h.HeldMode(id), kSIX);
  EXPECT_EQ(mgr_.HeldMode(1, id), kSIX);
  h.ReleaseAll();
}

TEST_P(LockManagerTest, WaiterGrantedAfterBulkRelease) {
  LockId id = LockId::Store(1);
  TxnLockList h1 = mgr_.Attach(1);
  ASSERT_TRUE(h1.Lock(id, kX).ok());
  std::atomic<bool> got{false};
  std::thread waiter([&] {
    TxnLockList h2 = mgr_.Attach(2);
    ASSERT_TRUE(h2.Lock(id, kX).ok());
    got.store(true);
    h2.ReleaseAll();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(got.load());
  h1.ReleaseAll();
  waiter.join();
  EXPECT_TRUE(got.load());
  EXPECT_GE(mgr_.stats().waits.load(), 1u);
}

TEST_P(LockManagerTest, FifoPreventsWriterStarvationByNewReaders) {
  LockId id = LockId::Store(1);
  TxnLockList h1 = mgr_.Attach(1);
  ASSERT_TRUE(h1.Lock(id, kS).ok());
  // Writer queues behind the reader.
  std::thread writer([&] {
    TxnLockList h2 = mgr_.Attach(2);
    ASSERT_TRUE(h2.Lock(id, kX).ok());
    h2.ReleaseAll();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // A new reader must queue behind the waiting writer (FIFO), not barge.
  std::atomic<bool> reader_done{false};
  std::thread reader([&] {
    TxnLockList h3 = mgr_.Attach(3);
    ASSERT_TRUE(h3.Lock(id, kS).ok());
    reader_done.store(true);
    h3.ReleaseAll();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(reader_done.load());
  h1.ReleaseAll();  // Writer goes, then reader.
  writer.join();
  reader.join();
  EXPECT_TRUE(reader_done.load());
}

TEST_P(LockManagerTest, UpgradeDeadlockResolvedByTimeout) {
  // Two readers both try to upgrade: classic unresolvable conflict; the
  // timeout must break it.
  LockId id = LockId::Store(1);
  TxnLockList h1 = mgr_.Attach(1);
  TxnLockList h2 = mgr_.Attach(2);
  ASSERT_TRUE(h1.Lock(id, kS).ok());
  ASSERT_TRUE(h2.Lock(id, kS).ok());
  std::atomic<int> deadlocks{0};
  std::thread t1([&] {
    Status st = h1.Lock(id, kX);
    if (st.IsDeadlock()) deadlocks.fetch_add(1);
  });
  std::thread t2([&] {
    Status st = h2.Lock(id, kX);
    if (st.IsDeadlock()) deadlocks.fetch_add(1);
  });
  t1.join();
  t2.join();
  EXPECT_GE(deadlocks.load(), 1);
  h1.ReleaseAll();
  h2.ReleaseAll();
}

TEST_P(LockManagerTest, HierarchicalWorkflowIntentThenRow) {
  // Typical row update: IX on store, X on row; a full-table reader (S on
  // store) must conflict, a row reader of another row must not.
  LockId store = LockId::Store(7);
  LockId row1 = LockId::Record(7, RecordId{5, 1});
  LockId row2 = LockId::Record(7, RecordId{5, 2});
  TxnLockList h1 = mgr_.Attach(1);
  TxnLockList h2 = mgr_.Attach(2);
  TxnLockList h3 = mgr_.Attach(3);
  ASSERT_TRUE(h1.Lock(store, kIX).ok());
  ASSERT_TRUE(h1.Lock(row1, kX).ok());
  // Row-level reader on a different row proceeds.
  ASSERT_TRUE(h2.Lock(store, kIS).ok());
  ASSERT_TRUE(h2.Lock(row2, kS).ok());
  // Table scanner blocks (S vs IX) until writer finishes.
  EXPECT_TRUE(h3.Lock(store, kS).IsDeadlock());  // Times out.
  h1.ReleaseAll();
  h2.ReleaseAll();
}

TEST_P(LockManagerTest, ConcurrentDisjointLocking) {
  constexpr int kThreads = 4;
  constexpr int kRows = 200;
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      TxnLockList h = mgr_.Attach(t + 1);
      for (int i = 0; i < kRows; ++i) {
        LockId row = LockId::Record(1, RecordId{static_cast<PageNum>(t + 1),
                                                static_cast<uint16_t>(i)});
        if (!h.Lock(row, kX).ok()) failures.fetch_add(1);
      }
      if (h.held() != kRows) failures.fetch_add(1);
      h.ReleaseAll();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mgr_.LockedObjectCount(), 0u);
}

TEST_P(LockManagerTest, ContendedRowMutualExclusion) {
  // N threads take turns holding X on one row; a shared counter checks
  // mutual exclusion end to end.
  LockId row = LockId::Record(1, RecordId{1, 0});
  int64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIters = 50;
  std::vector<std::thread> workers;
  std::atomic<int> errors{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        // One short transaction per iteration; retry on deadlock
        // timeouts (heavy contention on 1 core).
        TxnLockList h =
            mgr_.Attach(static_cast<TxnId>(t * 10'000 + i + 1));
        for (;;) {
          Status st = h.Lock(row, kX);
          if (st.ok()) break;
          if (!st.IsDeadlock()) {
            errors.fetch_add(1);
            return;
          }
        }
        ++counter;
        h.ReleaseAll();
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(counter, int64_t{kThreads} * kIters);
}

TEST_P(LockManagerTest, BulkReleaseWakesWaitersAcrossShards) {
  // Bulk-release-vs-waiter-wakeup race: one transaction holds X rows
  // spread over every shard while a waiter blocks on each; a single
  // ReleaseAll must wake and grant all of them (no lost wakeup, no
  // waiter left parked on a shard whose cv never fired).
  constexpr int kRows = 8;
  std::vector<LockId> rows;
  for (int i = 0; i < kRows; ++i) {
    rows.push_back(LockId::Record(1, RecordId{static_cast<PageNum>(i + 1),
                                              static_cast<uint16_t>(i)}));
  }
  TxnLockList holder = mgr_.Attach(1);
  for (const LockId& r : rows) ASSERT_TRUE(holder.Lock(r, kX).ok());
  std::atomic<int> granted{0};
  std::atomic<int> started{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < kRows; ++i) {
    waiters.emplace_back([&, i] {
      TxnLockList h = mgr_.Attach(static_cast<TxnId>(100 + i));
      started.fetch_add(1);
      if (h.Lock(rows[static_cast<size_t>(i)], kX).ok()) {
        granted.fetch_add(1);
      }
      h.ReleaseAll();
    });
  }
  while (started.load() < kRows) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  holder.ReleaseAll();  // One latch per touched shard; must wake everyone.
  for (auto& w : waiters) w.join();
  EXPECT_EQ(granted.load(), kRows);
  EXPECT_EQ(mgr_.LockedObjectCount(), 0u);
}

INSTANTIATE_TEST_SUITE_P(LatchStrategies, LockManagerTest,
                         ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "PerShard" : "GlobalMutex";
                         });

// ------------------------------------------------------------ escalation --

TEST(LockEscalationTest, EscalatesThroughCacheAfterThreshold) {
  LockOptions o = FastTimeout();
  o.escalation_threshold = 10;
  LockManager mgr(o);
  TxnLockList h = mgr.Attach(1);
  for (uint16_t i = 0; i < 15; ++i) {
    ASSERT_TRUE(h.LockRecord(1, RecordId{1, i}, kX).ok());
  }
  EXPECT_EQ(h.escalations(), 1u);
  EXPECT_EQ(mgr.stats().escalations.load(), 1u);
  EXPECT_EQ(mgr.HeldMode(1, LockId::Store(1)), kX)
      << "store lock must be escalated in the shared table";
  // Escalation-through-cache semantics: every row lock after the store
  // escalation is served from the handle (no new table objects appear).
  size_t objects = mgr.LockedObjectCount();
  uint64_t hits = h.cache_hits();
  for (uint16_t i = 15; i < 40; ++i) {
    ASSERT_TRUE(h.LockRecord(1, RecordId{2, i}, kX).ok());
  }
  EXPECT_EQ(mgr.LockedObjectCount(), objects);
  EXPECT_EQ(h.cache_hits(), hits + 25);
  h.ReleaseAll();
  EXPECT_EQ(mgr.LockedObjectCount(), 0u);
}

TEST(LockEscalationTest, WriteAfterReadEscalationUpgradesStoreLock) {
  LockOptions o = FastTimeout();
  o.escalation_threshold = 5;
  LockManager mgr(o);
  TxnLockList h = mgr.Attach(1);
  for (uint16_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(h.LockRecord(1, RecordId{1, i}, kS).ok());
  }
  EXPECT_EQ(mgr.HeldMode(1, LockId::Store(1)), kS)
      << "read workload escalates to store-S";
  // A write after the read-escalation must strengthen the store lock —
  // returning Ok under only store-S would let a concurrent reader be
  // overwritten unseen.
  ASSERT_TRUE(h.LockRecord(1, RecordId{2, 0}, kX).ok());
  EXPECT_EQ(mgr.HeldMode(1, LockId::Store(1)), kX);
  TxnLockList h2 = mgr.Attach(2);
  EXPECT_TRUE(h2.LockRecord(1, RecordId{3, 0}, kS).IsDeadlock())
      << "store-X must now exclude readers";
  h.ReleaseAll();
  h2.ReleaseAll();
}

TEST(LockEscalationTest, DeniedEscalationFallsBackToRowLocks) {
  LockOptions o = FastTimeout();
  o.escalation_threshold = 5;
  LockManager mgr(o);
  // Txn 2 holds one row in the store: txn 1's escalation to store-X is
  // denied (IX vs X conflict) and it must keep taking row locks.
  TxnLockList h2 = mgr.Attach(2);
  ASSERT_TRUE(h2.LockRecord(1, RecordId{99, 0}, kX).ok());
  TxnLockList h1 = mgr.Attach(1);
  for (uint16_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(h1.LockRecord(1, RecordId{1, i}, kX).ok());
  }
  EXPECT_EQ(h1.escalations(), 0u);
  EXPECT_EQ(mgr.HeldMode(1, LockId::Store(1)), kIX);
  h1.ReleaseAll();
  h2.ReleaseAll();
}

TEST(LockEscalationTest, IntentLocksServedFromCache) {
  // The tentpole's common case: every row operation re-requests the
  // volume and store intention locks; after the first row they must all
  // be cache hits (2 per LockRecord).
  LockManager mgr(FastTimeout());
  TxnLockList h = mgr.Attach(1);
  constexpr uint16_t kRows = 50;
  for (uint16_t i = 0; i < kRows; ++i) {
    ASSERT_TRUE(h.LockRecord(1, RecordId{1, i}, kX).ok());
  }
  EXPECT_EQ(h.cache_hits(), uint64_t{2} * (kRows - 1));
  EXPECT_EQ(h.waits(), 0u);
  h.ReleaseAll();
}

// ------------------------------------------------------------- the pools --

TEST(LockManagerPoolTest, ExhaustedPoolIsRecoverableResourceExhausted) {
  LockOptions o = FastTimeout();
  o.pool_capacity = 2;
  o.shards = 1;
  LockManager mgr(o);
  TxnLockList h = mgr.Attach(1);
  ASSERT_TRUE(h.Lock(LockId::Store(1), kS).ok());
  ASSERT_TRUE(h.Lock(LockId::Store(2), kS).ok());
  Status st = h.Lock(LockId::Store(3), kS);
  EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
  EXPECT_EQ(mgr.LockedObjectCount(), 2u)
      << "a failed fresh request must not leak an empty lock head";
  // Recoverable: releasing (aborting) frees the slots and the same
  // request then succeeds.
  h.ReleaseAll();
  TxnLockList retry = mgr.Attach(2);
  EXPECT_TRUE(retry.Lock(LockId::Store(3), kS).ok());
  retry.ReleaseAll();
}

TEST(LockManagerPoolTest, PoolsAreSizedAndDrainedPerShard) {
  // Exhaustion is shard-local: draining one shard's pool must not affect
  // locks that hash to a different shard.
  LockOptions o = FastTimeout();
  o.pool_capacity = 2;
  o.shards = 4;
  LockManager mgr(o);
  // Find three store ids in one shard and one in a different shard.
  std::vector<StoreId> same;
  StoreId other = 0;
  size_t target = mgr.ShardIndex(LockId::Store(1));
  for (StoreId s = 1; s < 1000 && (same.size() < 3 || other == 0); ++s) {
    if (mgr.ShardIndex(LockId::Store(s)) == target) {
      if (same.size() < 3) same.push_back(s);
    } else if (other == 0) {
      other = s;
    }
  }
  ASSERT_EQ(same.size(), 3u);
  ASSERT_NE(other, 0u);
  TxnLockList h = mgr.Attach(1);
  ASSERT_TRUE(h.Lock(LockId::Store(same[0]), kS).ok());
  ASSERT_TRUE(h.Lock(LockId::Store(same[1]), kS).ok());
  EXPECT_TRUE(h.Lock(LockId::Store(same[2]), kS).IsResourceExhausted());
  EXPECT_TRUE(h.Lock(LockId::Store(other), kS).ok())
      << "a different shard's pool must be unaffected";
  h.ReleaseAll();
}

TEST(LockManagerPoolTest, BothPoolKindsFunctionUnderLoad) {
  for (auto kind :
       {RequestPoolKind::kMutexFreelist, RequestPoolKind::kLockFreeStack}) {
    LockOptions o = FastTimeout();
    o.pool_kind = kind;
    LockManager mgr(o);
    std::vector<std::thread> workers;
    std::atomic<int> failures{0};
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&, t] {
        for (int i = 0; i < 300; ++i) {
          TxnLockList h =
              mgr.Attach(static_cast<TxnId>(t * 10'000 + i + 1));
          LockId id = LockId::Record(
              1, RecordId{static_cast<PageNum>(i % 7 + 1),
                          static_cast<uint16_t>(t)});
          if (!h.Lock(id, kS).ok()) failures.fetch_add(1);
          h.ReleaseAll();
        }
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(mgr.LockedObjectCount(), 0u);
  }
}

}  // namespace
}  // namespace shoremt::lock
