#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "io/volume.h"
#include "log/flush_pipeline.h"
#include "log/log_manager.h"
#include "log/log_storage.h"
#include "sm/options.h"
#include "sm/session.h"
#include "sm/storage_manager.h"

namespace shoremt::sm {
namespace {

std::vector<uint8_t> Row(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

std::string AsString(std::span<const uint8_t> v) {
  return std::string(v.begin(), v.end());
}

struct Harness {
  io::MemVolume volume;
  log::LogStorage log;
  std::unique_ptr<StorageManager> sm;

  explicit Harness(StorageOptions options =
                       StorageOptions::ForStage(Stage::kFinal)) {
    auto opened = StorageManager::Open(options, &volume, &log);
    EXPECT_TRUE(opened.ok());
    sm = std::move(*opened);
  }
};

TEST(CommitPipelineTest, CommitAsyncReturnsTokenAndWaitAcknowledges) {
  Harness h;
  auto session = h.sm->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  auto table = session->CreateTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session->Insert(*table, 1, Row("v")).ok());
  auto token = session->CommitAsync();
  ASSERT_TRUE(token.ok());
  EXPECT_FALSE(session->InTransaction());
  EXPECT_FALSE(token->lsn.IsNull());
  EXPECT_GT(token->counters.log_bytes, 0u);
  ASSERT_TRUE(session->Wait(&*token).ok());
  EXPECT_TRUE(token->durable);
  EXPECT_GE(h.sm->log()->durable_lsn().value, token->lsn.value);
  EXPECT_EQ(session->stats().async_commits, 1u);
  EXPECT_EQ(session->stats().commits, 1u);
}

TEST(CommitPipelineTest, TryWaitAndPollAcksHarvestWithoutBlocking) {
  Harness h;
  auto session = h.sm->OpenSession();
  EXPECT_TRUE(session->PollAcks()) << "nothing outstanding: trivially true";
  ASSERT_TRUE(session->Begin().ok());
  auto table = session->CreateTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session->Insert(*table, 1, Row("v")).ok());
  auto token = session->CommitAsync();
  ASSERT_TRUE(token.ok());
  // Non-blocking ack harvest: poll until the group-commit daemon's flush
  // passes the commit LSN — the server-loop pattern (no parked thread).
  while (!token->TryWait()) std::this_thread::yield();
  EXPECT_TRUE(token->durable);
  EXPECT_TRUE(token->TryWait()) << "idempotent once durable";
  EXPECT_GE(h.sm->log()->durable_lsn().value, token->lsn.value);
  while (!session->PollAcks()) std::this_thread::yield();
  EXPECT_TRUE(session->PollAcks()) << "watermark cleared: stays true";
  EXPECT_TRUE(session->WaitAll().ok()) << "no-op after a successful poll";
}

TEST(CommitPipelineTest, ReadOnlyTokenTryWaitIsImmediatelyTrue) {
  Harness h;
  auto session = h.sm->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  auto token = session->CommitAsync();  // Read-only: nothing to flush.
  ASSERT_TRUE(token.ok());
  EXPECT_TRUE(token->TryWait());
  EXPECT_TRUE(token->durable);
  EXPECT_TRUE(session->PollAcks());
}

TEST(CommitPipelineTest, ReadOnlyCommitAsyncIsDurableImmediately) {
  Harness h;
  auto session = h.sm->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  auto token = session->CommitAsync();
  ASSERT_TRUE(token.ok());
  EXPECT_TRUE(token->lsn.IsNull());
  EXPECT_TRUE(token->durable);
  ASSERT_TRUE(session->Wait(&*token).ok());
  ASSERT_TRUE(session->WaitAll().ok());
}

TEST(CommitPipelineTest, MultiThreadedCommitAsyncDurableLsnMonotonic) {
  Harness h;
  TableInfo table;
  {
    auto setup = h.sm->OpenSession();
    ASSERT_TRUE(setup->Begin().ok());
    auto t = setup->CreateTable("t");
    ASSERT_TRUE(t.ok());
    table = *t;
    ASSERT_TRUE(setup->Commit().ok());
  }
  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 40;
  std::vector<std::vector<Lsn>> token_lsns(kThreads);
  std::atomic<bool> monotonic{true};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto session = h.sm->OpenSession();
      Lsn last_durable;
      for (int i = 0; i < kTxnsPerThread; ++i) {
        ASSERT_TRUE(session->Begin().ok());
        uint64_t key = (static_cast<uint64_t>(t) << 32) |
                       static_cast<uint64_t>(i);
        ASSERT_TRUE(session->Insert(table, key, Row("x")).ok());
        auto token = session->CommitAsync();
        ASSERT_TRUE(token.ok());
        token_lsns[t].push_back(token->lsn);
        // The durable horizon only ever advances.
        Lsn durable = h.sm->log()->durable_lsn();
        if (durable < last_durable) monotonic.store(false);
        last_durable = durable;
        if (i % 8 == 7) {
          ASSERT_TRUE(session->Wait(&*token).ok());
          EXPECT_GE(h.sm->log()->durable_lsn().value, token->lsn.value);
        }
      }
      ASSERT_TRUE(session->WaitAll().ok());
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_TRUE(monotonic.load());
  // Every commit LSN is distinct, and after WaitAll the durable horizon
  // covers all of them.
  std::set<uint64_t> all;
  Lsn max_lsn;
  for (const auto& v : token_lsns) {
    for (Lsn l : v) {
      EXPECT_TRUE(all.insert(l.value).second) << "duplicate commit LSN";
      max_lsn = std::max(max_lsn, l);
    }
  }
  EXPECT_GE(h.sm->log()->durable_lsn().value, max_lsn.value);
  // The group-commit daemon actually batched: it ran, and commits per
  // batch can only make the flush count smaller, never larger.
  const log::LogStats& ls = h.sm->log()->stats();
  EXPECT_GT(ls.group_batches.load(), 0u);
  EXPECT_GE(ls.group_batch_txns.load(), ls.group_batches.load());
}

TEST(CommitPipelineTest, EarlyLockReleaseMakesRowsVisibleBeforeDurability) {
  // A successor must be able to lock rows the moment the predecessor's
  // CommitAsync returns — well before the commit is acknowledged. Use a
  // very slow log device so the window between commit and durability is
  // wide open, and a lock timeout far below the flush latency so a
  // not-yet-released lock would fail the successor's update.
  StorageOptions opts = StorageOptions::ForStage(Stage::kFinal);
  opts.lock.timeout_us = 200'000;
  io::MemVolume volume;
  log::LogStorage wal(/*append_latency_ns=*/60'000'000);  // 60ms per flush.
  auto opened = StorageManager::Open(opts, &volume, &wal);
  ASSERT_TRUE(opened.ok());
  auto& db = *opened;

  auto s1 = db->OpenSession();
  ASSERT_TRUE(s1->Begin().ok());
  auto table = s1->CreateTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(s1->Insert(*table, 1, Row("t1")).ok());
  auto tok1 = s1->CommitAsync();
  ASSERT_TRUE(tok1.ok());
  EXPECT_FALSE(tok1->durable) << "flush should still be in flight";

  // Successor: X-locks the row T1 just wrote, before T1 is durable. With
  // strict 2PL (no early release) this would park until the 60ms flush
  // completes; with early lock release it succeeds immediately.
  auto s2 = db->OpenSession();
  ASSERT_TRUE(s2->Begin().ok());
  ASSERT_TRUE(s2->Update(*table, 1, Row("t2")).ok());
  auto tok2 = s2->CommitAsync();
  ASSERT_TRUE(tok2.ok());
  // Dependency order in the log: T2's commit LSN follows T1's.
  EXPECT_GT(tok2->lsn.value, tok1->lsn.value);

  // Acknowledge both, then crash and recover: both committed transactions
  // survive, in commit-LSN order (the row carries T2's value).
  ASSERT_TRUE(s1->Wait(&*tok1).ok());
  ASSERT_TRUE(s2->Wait(&*tok2).ok());
  s1.reset();
  s2.reset();
  db->SimulateCrash();
  db.reset();

  auto reopened = StorageManager::Open(opts, &volume, &wal);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto check = (*reopened)->OpenSession();
  ASSERT_TRUE(check->Begin().ok());
  auto t2 = check->OpenTable("t");
  ASSERT_TRUE(t2.ok());
  auto row = check->Read(*t2, 1);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(AsString(*row), "t2");
  ASSERT_TRUE(check->Commit().ok());
}

TEST(CommitPipelineTest, ReadOnlyDependentIsNotAcknowledgedBeforeWriter) {
  // A read-only transaction that observed rows from a committed-but-
  // unflushed writer must not be acknowledged first: its token waits on
  // the log horizon, which covers the writer's commit record.
  StorageOptions opts = StorageOptions::ForStage(Stage::kFinal);
  io::MemVolume volume;
  log::LogStorage wal(/*append_latency_ns=*/60'000'000);  // 60ms per flush.
  auto opened = StorageManager::Open(opts, &volume, &wal);
  ASSERT_TRUE(opened.ok());
  auto& db = *opened;

  auto writer = db->OpenSession();
  ASSERT_TRUE(writer->Begin().ok());
  auto table = writer->CreateTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(writer->Insert(*table, 1, Row("w")).ok());
  auto wtok = writer->CommitAsync();
  ASSERT_TRUE(wtok.ok());
  EXPECT_FALSE(wtok->durable);

  auto reader = db->OpenSession();
  ASSERT_TRUE(reader->Begin().ok());
  EXPECT_EQ(AsString(*reader->Read(*table, 1)), "w");  // Early-released row.
  auto rtok = reader->CommitAsync();
  ASSERT_TRUE(rtok.ok());
  // The read-only dependent carries a real flush target, not an instant
  // acknowledgment, and waiting on it implies the writer is durable too.
  EXPECT_FALSE(rtok->lsn.IsNull());
  ASSERT_TRUE(reader->Wait(&*rtok).ok());
  EXPECT_TRUE(db->log()->IsDurable(wtok->lsn));
  ASSERT_TRUE(writer->Wait(&*wtok).ok());
}

TEST(CommitPipelineTest, UnacknowledgedCommitMayDieButNeverHalfApplies) {
  // Crash with CommitAsync submitted but never acknowledged: the
  // transaction either fully survives (flush won the race) or vanishes
  // entirely — its heap insert must not outlive its commit record.
  io::MemVolume volume;
  log::LogStorage wal(/*append_latency_ns=*/60'000'000);
  {
    auto opened = StorageManager::Open(
        StorageOptions::ForStage(Stage::kFinal), &volume, &wal);
    ASSERT_TRUE(opened.ok());
    auto& db = *opened;
    auto session = db->OpenSession();
    ASSERT_TRUE(session->Begin().ok());
    auto table = session->CreateTable("t");
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(session->Insert(*table, 1, Row("durable")).ok());
    ASSERT_TRUE(session->Commit().ok());  // Acknowledged: must survive.

    ASSERT_TRUE(session->Begin().ok());
    ASSERT_TRUE(session->Insert(*table, 2, Row("maybe")).ok());
    auto token = session->CommitAsync();
    ASSERT_TRUE(token.ok());
    // Crash before the 60ms flush: skip Wait and destroy mid-flight. The
    // session would normally WaitAll in its destructor; crash first.
    db->SimulateCrash();
    session.release();  // Leak deliberately: a crashed process never waits.
  }
  auto reopened = StorageManager::Open(
      StorageOptions::ForStage(Stage::kFinal), &volume, &wal);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto check = (*reopened)->OpenSession();
  ASSERT_TRUE(check->Begin().ok());
  auto table = check->OpenTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(AsString(*check->Read(*table, 1)), "durable");
  auto row2 = check->Read(*table, 2);
  if (row2.ok()) {
    EXPECT_EQ(AsString(*row2), "maybe");  // Flush won: fully applied.
  } else {
    EXPECT_TRUE(row2.status().IsNotFound());  // Lost: fully gone.
  }
  ASSERT_TRUE(check->Commit().ok());
}

TEST(CommitPipelineTest, WaitAfterAbortIsCleanAndTokensOutliveAborts) {
  Harness h;
  auto session = h.sm->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  auto table = session->CreateTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session->Insert(*table, 1, Row("v")).ok());
  auto token = session->CommitAsync();
  ASSERT_TRUE(token.ok());

  // A later transaction aborts; the earlier commit's token still
  // acknowledges, and WaitAll after the abort has nothing stale pending.
  ASSERT_TRUE(session->Begin().ok());
  ASSERT_TRUE(session->Insert(*table, 2, Row("discard")).ok());
  ASSERT_TRUE(session->Abort().ok());
  ASSERT_TRUE(session->Wait(&*token).ok());
  EXPECT_TRUE(token->durable);
  ASSERT_TRUE(session->WaitAll().ok());

  // Waiting again on an already-durable token is a cheap no-op.
  ASSERT_TRUE(session->Wait(&*token).ok());
  EXPECT_GT(session->stats().commit_waits_avoided, 0u);

  ASSERT_TRUE(session->Begin().ok());
  EXPECT_EQ(AsString(*session->Read(*table, 1)), "v");
  EXPECT_TRUE(session->Read(*table, 2).status().IsNotFound());
  ASSERT_TRUE(session->Commit().ok());
}

TEST(CommitPipelineTest, DaemonFlushErrorIsStickyAndPropagates) {
  Harness h;
  auto session = h.sm->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  auto table = session->CreateTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session->Commit().ok());

  // Kill the log device, then commit: the daemon's flush fails, the error
  // sticks, and the durability wait reports it instead of hanging or
  // silently succeeding.
  h.log.set_fail_appends(true);
  ASSERT_TRUE(session->Begin().ok());
  ASSERT_TRUE(session->Insert(*table, 1, Row("doomed")).ok());
  auto token = session->CommitAsync();
  ASSERT_TRUE(token.ok()) << "append goes to the buffer, not the device";
  Status st = session->Wait(&*token);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_FALSE(token->durable);
  EXPECT_FALSE(h.sm->log()->pipeline_error().ok()) << "error must stick";

  // Every later wait sees the same sticky error.
  EXPECT_FALSE(session->Wait(&*token).ok());
  // The non-blocking polls must terminate their loops on the poisoned
  // pipeline rather than spin forever — TryWait returns true WITHOUT
  // marking the token durable, PollAcks returns true WITHOUT clearing
  // the watermark, and WaitAll (immediate here) reports the error.
  EXPECT_TRUE(token->TryWait());
  EXPECT_FALSE(token->durable);
  EXPECT_TRUE(session->PollAcks());  // Watermark still set from the commit.
  EXPECT_FALSE(session->WaitAll().ok()) << "error observable via WaitAll";
  // Restore the device so teardown's final drain can proceed; the sticky
  // error remains (durability promises stay revoked for this manager).
  h.log.set_fail_appends(false);
  EXPECT_FALSE(h.sm->log()->pipeline_error().ok());
  h.sm->SimulateCrash();  // Skip the shutdown flush of the poisoned log.
}

TEST(CommitPipelineTest, BlockingCommitStillRidesThePipeline) {
  // Session::Commit is CommitAsync + Wait: with several sessions
  // committing concurrently against a slow device, the daemon's batches
  // must cover multiple commits (fewer device flushes than commits).
  io::MemVolume volume;
  log::LogStorage wal(/*append_latency_ns=*/200'000);
  auto opened = StorageManager::Open(
      StorageOptions::ForStage(Stage::kFinal), &volume, &wal);
  ASSERT_TRUE(opened.ok());
  auto& db = *opened;
  TableInfo table;
  {
    auto setup = db->OpenSession();
    ASSERT_TRUE(setup->Begin().ok());
    auto t = setup->CreateTable("t");
    ASSERT_TRUE(t.ok());
    table = *t;
    ASSERT_TRUE(setup->Commit().ok());
  }
  uint64_t flushes_before = wal.flush_calls();
  constexpr int kThreads = 4;
  constexpr int kCommitsPerThread = 25;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto session = db->OpenSession();
      for (int i = 0; i < kCommitsPerThread; ++i) {
        ASSERT_TRUE(session->Begin().ok());
        uint64_t key = (static_cast<uint64_t>(t) << 32) |
                       static_cast<uint64_t>(i);
        ASSERT_TRUE(session->Insert(table, key, Row("x")).ok());
        ASSERT_TRUE(session->Commit().ok());
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_LT(wal.flush_calls() - flushes_before,
            uint64_t{kThreads} * kCommitsPerThread);
  EXPECT_GT(db->log()->stats().group_batches.load(), 0u);
}

TEST(CommitPipelineTest, OnDurableCallbackAcknowledgesAsyncCommit) {
  // The registered-callback third option next to Wait (park) and
  // TryWait/PollAcks (poll): the flush daemon invokes the closure as its
  // durable horizon passes the commit LSN.
  Harness h;
  auto session = h.sm->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  auto table = session->CreateTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session->Insert(*table, 1, Row("v")).ok());
  auto token = session->CommitAsync();
  ASSERT_TRUE(token.ok());
  std::atomic<int> fired{0};
  Status seen = Status::Internal("never invoked");
  session->OnDurable(token->lsn, [&](Status st) {
    seen = st;
    fired.fetch_add(1, std::memory_order_release);
  });
  for (int i = 0; i < 2000 && fired.load(std::memory_order_acquire) == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(fired.load(), 1);
  EXPECT_TRUE(seen.ok()) << seen.ToString();
  EXPECT_TRUE(h.sm->log()->IsDurable(token->lsn));
  // The callback did not consume the session's pending-ack watermark:
  // Wait/WaitAll semantics are unchanged.
  ASSERT_TRUE(session->WaitAll().ok());
  EXPECT_EQ(session->stats().durability_callbacks, 1u);
}

TEST(CommitPipelineTest, OnDurableCallbackSeesStickyPipelineError) {
  Harness h;
  auto session = h.sm->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  auto table = session->CreateTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session->Commit().ok());

  h.log.set_fail_appends(true);
  ASSERT_TRUE(session->Begin().ok());
  ASSERT_TRUE(session->Insert(*table, 1, Row("doomed")).ok());
  auto token = session->CommitAsync();
  ASSERT_TRUE(token.ok());
  std::atomic<int> fired{0};
  Status seen;
  session->OnDurable(token->lsn, [&](Status st) {
    seen = st;
    fired.fetch_add(1, std::memory_order_release);
  });
  for (int i = 0; i < 2000 && fired.load(std::memory_order_acquire) == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(fired.load(), 1);
  EXPECT_EQ(seen.code(), StatusCode::kIOError)
      << "pending closures learn the sticky error";
  h.log.set_fail_appends(false);
  h.sm->SimulateCrash();  // Skip the shutdown flush of the poisoned log.
}

}  // namespace
}  // namespace shoremt::sm
