#include <gtest/gtest.h>

#include <cmath>

#include "simcore/machine.h"
#include "simcore/simulation.h"
#include "simcore/step.h"

namespace shoremt::simcore {
namespace {

MachineConfig NiagaraLike() { return MachineConfig{}; }

/// A single-context machine for closed-form checks.
MachineConfig UniCore() {
  MachineConfig m;
  m.cores = 1;
  m.smt_per_core = 1;
  m.single_thread_throughput = 1.0;
  m.max_core_throughput = 1.0;
  return m;
}

TEST(MachineConfigTest, SmtThroughputModel) {
  MachineConfig m = NiagaraLike();
  EXPECT_EQ(m.total_contexts(), 32);
  EXPECT_DOUBLE_EQ(m.CoreThroughput(1), 0.42);
  EXPECT_DOUBLE_EQ(m.CoreThroughput(2), 0.84);
  EXPECT_DOUBLE_EQ(m.CoreThroughput(3), 1.0);  // Saturated.
  EXPECT_DOUBLE_EQ(m.CoreThroughput(4), 1.0);
  EXPECT_DOUBLE_EQ(m.PerThreadSpeed(1), 0.42);
  EXPECT_DOUBLE_EQ(m.PerThreadSpeed(4), 0.25);
  EXPECT_DOUBLE_EQ(m.PerThreadSpeed(0), 0.0);
}

TEST(StepProgramTest, BuilderEmitsSteps) {
  StepProgram p;
  p.Compute(100).Acquire(1).Compute(50).Release(1).Io(200).TxnEnd();
  ASSERT_EQ(p.steps().size(), 6u);
  EXPECT_EQ(p.steps()[0].kind, StepKind::kCompute);
  EXPECT_EQ(p.steps()[1].kind, StepKind::kAcquire);
  EXPECT_EQ(p.steps()[3].kind, StepKind::kRelease);
  EXPECT_EQ(p.steps()[4].kind, StepKind::kIo);
  EXPECT_EQ(p.steps()[5].kind, StepKind::kTxnEnd);
}

TEST(StepProgramTest, ZeroComputeIsDropped) {
  StepProgram p;
  p.Compute(0).TxnEnd();
  EXPECT_EQ(p.steps().size(), 1u);
}

TEST(StepProgramTest, CriticalSectionExpands) {
  StepProgram p;
  p.CriticalSection(2, 500);
  ASSERT_EQ(p.steps().size(), 3u);
  EXPECT_EQ(p.steps()[0].kind, StepKind::kAcquire);
  EXPECT_EQ(p.steps()[2].kind, StepKind::kRelease);
}

TEST(SimulationTest, SingleThreadComputeThroughput) {
  // 1000ns of work per txn at speed 1.0 => 1M tps over 10ms.
  Simulation sim(UniCore());
  sim.AddThread([](Rng&, StepProgram* p) { p->Compute(1000).TxnEnd(); });
  SimResult r = sim.Run(10'000'000);
  EXPECT_NEAR(r.tps, 1e6, 1e4);
}

TEST(SimulationTest, SmtSlowsCoResidentThreads) {
  // Two threads pinned to the same single core with IPC 0.5: each runs at
  // speed 0.5, so combined throughput equals twice a lone thread's at 0.5.
  MachineConfig m = UniCore();
  m.smt_per_core = 2;
  m.single_thread_throughput = 0.5;
  Simulation sim(m);
  for (int i = 0; i < 2; ++i) {
    sim.AddThread([](Rng&, StepProgram* p) { p->Compute(1000).TxnEnd(); });
  }
  SimResult r = sim.Run(10'000'000);
  // Each thread at 0.5 speed: 500k tps each, 1M total.
  EXPECT_NEAR(r.tps, 1e6, 2e4);
}

TEST(SimulationTest, IoDoesNotConsumeCpu) {
  // One thread computing, one thread doing pure IO on the same core: the
  // computing thread must run at full speed.
  MachineConfig m = UniCore();
  m.smt_per_core = 2;
  Simulation sim(m);
  sim.AddThread([](Rng&, StepProgram* p) { p->Compute(1000).TxnEnd(); });
  sim.AddThread([](Rng&, StepProgram* p) { p->Io(1000).TxnEnd(); });
  SimResult r = sim.Run(10'000'000);
  // Compute thread: 1M txns/s; IO thread: 1M txns/s; total ~2M.
  EXPECT_NEAR(r.tps, 2e6, 5e4);
}

TEST(SimulationTest, AmdahlCapFromSerialSection) {
  // Each txn: 900ns parallel + 100ns critical section. With many threads
  // the lock caps throughput at 1/100ns = 10M tps... but handoff overhead
  // makes it lower. Check we're within the right regime: well above the
  // single-thread rate and at most the serial cap.
  MachineConfig m;
  m.cores = 8;
  m.smt_per_core = 1;
  m.single_thread_throughput = 1.0;
  m.cacheline_transfer_ns = 20;
  Simulation sim(m);
  int lock = sim.AddLock({SimLockType::kMcs, 0}, "serial");
  for (int i = 0; i < 8; ++i) {
    sim.AddThread([lock](Rng&, StepProgram* p) {
      p->Compute(900).CriticalSection(lock, 100).TxnEnd();
    });
  }
  SimResult r = sim.Run(10'000'000, 1'000'000);
  double single_rate = 1e9 / 1000.0;  // 1M tps for one thread.
  EXPECT_GT(r.tps, 3.0 * single_rate);
  EXPECT_LE(r.tps, 1e9 / 100.0 * 1.05);
}

TEST(SimulationTest, McsBeatsTatasUnderContention) {
  auto run = [](SimLockType type) {
    MachineConfig m = NiagaraLike();
    Simulation sim(m);
    int lock = sim.AddLock({type, 50}, "hot");
    for (int i = 0; i < 32; ++i) {
      sim.AddThread([lock](Rng&, StepProgram* p) {
        p->Compute(2000).CriticalSection(lock, 400).TxnEnd();
      });
    }
    return sim.Run(20'000'000, 2'000'000).tps;
  };
  double tatas = run(SimLockType::kTatas);
  double mcs = run(SimLockType::kMcs);
  EXPECT_GT(mcs, tatas * 1.3) << "MCS should win under heavy contention";
}

TEST(SimulationTest, BlockingFreesPipelineForOthers) {
  // One core with 4 SMT contexts: three threads contend on a lock with a
  // long critical section while a fourth runs independent work. With a
  // blocking lock the waiters park, so the independent thread (and the
  // holder) keep more pipeline slots than with spinning waiters. Total
  // throughput is dominated by the independent thread.
  auto run = [](SimLockType type) {
    MachineConfig m;
    m.cores = 1;
    m.smt_per_core = 4;
    m.single_thread_throughput = 0.3;
    Simulation sim(m);
    int lock = sim.AddLock({type, 50}, "hot");
    for (int i = 0; i < 3; ++i) {
      sim.AddThread([lock](Rng&, StepProgram* p) {
        p->CriticalSection(lock, 20000).TxnEnd();
      });
    }
    sim.AddThread([](Rng&, StepProgram* p) { p->Compute(1000).TxnEnd(); });
    return sim.Run(40'000'000, 4'000'000).tps;
  };
  double blocking = run(SimLockType::kBlocking);
  double tatas = run(SimLockType::kTatas);
  EXPECT_GT(blocking, tatas * 1.1);
}

TEST(SimulationTest, RwLatchAllowsConcurrentReaders) {
  // Readers-only workload on a latch must scale far better than the same
  // workload with an exclusive lock.
  auto run = [](bool shared) {
    MachineConfig m;
    m.cores = 8;
    m.smt_per_core = 1;
    m.single_thread_throughput = 1.0;
    Simulation sim(m);
    int latch = sim.AddLock({SimLockType::kRwLatch, 30}, "root");
    for (int i = 0; i < 8; ++i) {
      sim.AddThread([latch, shared](Rng&, StepProgram* p) {
        if (shared) {
          p->AcquireShared(latch);
        } else {
          p->Acquire(latch);
        }
        p->Compute(1000).Release(latch).TxnEnd();
      });
    }
    return sim.Run(10'000'000, 1'000'000).tps;
  };
  double shared_tps = run(true);
  double exclusive_tps = run(false);
  EXPECT_GT(shared_tps, exclusive_tps * 3.0);
}

TEST(SimulationTest, DeterministicForSeed) {
  auto run = [] {
    Simulation sim(NiagaraLike(), /*seed=*/7);
    int lock = sim.AddLock({SimLockType::kMcs, 50}, "l");
    for (int i = 0; i < 8; ++i) {
      sim.AddThread([lock](Rng& rng, StepProgram* p) {
        p->Compute(500 + rng.Uniform(1000)).CriticalSection(lock, 200);
        p->TxnEnd();
      });
    }
    return sim.Run(5'000'000).txns;
  };
  EXPECT_EQ(run(), run());
}

TEST(SimulationTest, LockStatsTrackContention) {
  Simulation sim(NiagaraLike());
  int lock = sim.AddLock({SimLockType::kMcs, 50}, "tracked");
  for (int i = 0; i < 16; ++i) {
    sim.AddThread([lock](Rng&, StepProgram* p) {
      p->CriticalSection(lock, 1000).TxnEnd();
    });
  }
  SimResult r = sim.Run(5'000'000);
  auto stats = sim.LockStats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "tracked");
  EXPECT_GT(stats[0].acquires, 0u);
  EXPECT_GT(stats[0].contended, 0u);
  EXPECT_GT(r.lock_waits, 0u);
  EXPECT_GT(r.total_wait_ns, 0u);
}

TEST(SimulationTest, WarmupExcludedFromCounts) {
  Simulation with_warmup(UniCore());
  with_warmup.AddThread(
      [](Rng&, StepProgram* p) { p->Compute(1000).TxnEnd(); });
  SimResult r1 = with_warmup.Run(10'000'000, 5'000'000);

  Simulation no_warmup(UniCore());
  no_warmup.AddThread([](Rng&, StepProgram* p) { p->Compute(1000).TxnEnd(); });
  SimResult r2 = no_warmup.Run(10'000'000);

  // Same rate, roughly half the counted transactions.
  EXPECT_NEAR(r1.tps, r2.tps, r2.tps * 0.02);
  EXPECT_NEAR(static_cast<double>(r1.txns),
              static_cast<double>(r2.txns) / 2.0, r2.txns * 0.02);
}

TEST(SimulationTest, EmptyFactoryRetiresThread) {
  Simulation sim(UniCore());
  sim.AddThread([](Rng&, StepProgram*) { /* produces nothing */ });
  SimResult r = sim.Run(1'000'000);
  EXPECT_EQ(r.txns, 0u);
}

TEST(SimulationTest, ScalabilityCurveIsMonotonicForIndependentWork) {
  // With no shared locks, throughput should grow with thread count until
  // the machine saturates (32 contexts).
  double prev = 0.0;
  for (int n : {1, 4, 8, 16, 32}) {
    Simulation sim(NiagaraLike());
    for (int i = 0; i < n; ++i) {
      sim.AddThread([](Rng&, StepProgram* p) { p->Compute(5000).TxnEnd(); });
    }
    double tps = sim.Run(10'000'000).tps;
    EXPECT_GT(tps, prev * 1.05) << "threads=" << n;
    prev = tps;
  }
}

TEST(SimulationTest, FifoOrderForMcs) {
  // Three threads with staggered start competing for one MCS lock; FIFO
  // semantics mean no thread can complete two critical sections while
  // another waits for its first. Indirect check: wait time variance stays
  // bounded — every thread completes a similar txn count.
  Simulation sim(NiagaraLike());
  int lock = sim.AddLock({SimLockType::kMcs, 20}, "fifo");
  for (int i = 0; i < 3; ++i) {
    sim.AddThread([lock](Rng&, StepProgram* p) {
      p->CriticalSection(lock, 1000).TxnEnd();
    });
  }
  SimResult r = sim.Run(9'000'000, 1'000'000);
  // Serial cap: each handoff+CS is (1000+120+20)ns of work executed at
  // single-thread speed 0.42 => ~2714ns wall per txn => ~2947 txns in the
  // 8ms measured window. FIFO keeps utilization pinned at the cap.
  EXPECT_GT(r.txns, 2500u);
  EXPECT_LT(r.txns, 3200u);
}

}  // namespace
}  // namespace shoremt::simcore
