#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"
#include "common/types.h"

namespace shoremt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("page 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "page 42");
  EXPECT_EQ(s.ToString(), "NotFound: page 42");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, PredicateHelpers) {
  EXPECT_TRUE(Status::Deadlock("x").IsDeadlock());
  EXPECT_TRUE(Status::Timeout("x").IsTimeout());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
  EXPECT_FALSE(Status::Ok().IsDeadlock());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.ValueOr(0), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::IOError("disk gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, OkStatusIsRejected) {
  Result<int> r(Status::Ok());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status UsesReturnNotOk(int x) {
  SHOREMT_RETURN_NOT_OK(FailIfNegative(x));
  return Status::Ok();
}

TEST(ResultTest, ReturnNotOkMacro) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_FALSE(UsesReturnNotOk(-1).ok());
}

Result<int> Double(int x) {
  if (x > 100) return Status::InvalidArgument("too big");
  return 2 * x;
}

Result<int> UsesAssignOrReturn(int x) {
  SHOREMT_ASSIGN_OR_RETURN(int doubled, Double(x));
  return doubled + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = UsesAssignOrReturn(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  EXPECT_FALSE(UsesAssignOrReturn(1000).ok());
}

TEST(TypesTest, LsnOrdering) {
  EXPECT_LT(Lsn{1}, Lsn{2});
  EXPECT_EQ(Lsn{5}, Lsn{5});
  EXPECT_TRUE(Lsn::Null().IsNull());
  EXPECT_FALSE(Lsn{1}.IsNull());
  EXPECT_LT(Lsn{1}, Lsn::Max());
}

TEST(TypesTest, RecordIdComparesLexicographically) {
  RecordId a{1, 5};
  RecordId b{2, 0};
  RecordId c{1, 6};
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  EXPECT_FALSE(RecordId{}.IsValid());
  EXPECT_TRUE(a.IsValid());
}

TEST(TypesTest, ExtentMapping) {
  EXPECT_EQ(ExtentOf(0), 0u);
  EXPECT_EQ(ExtentOf(7), 0u);
  EXPECT_EQ(ExtentOf(8), 1u);
  EXPECT_EQ(ExtentOf(17), 2u);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    uint64_t v = rng.UniformRange(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(RngTest, NonUniformStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.NonUniform(255, 1, 3000);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 3000u);
  }
}

TEST(ZipfTest, SamplesInRange) {
  ZipfGenerator zipf(1000, 0.8);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Next(), 1000u);
}

TEST(ZipfTest, SkewFavorsSmallKeys) {
  ZipfGenerator zipf(10000, 0.9, 5);
  int in_top_100 = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Next() < 100) ++in_top_100;
  }
  // Under uniform sampling the top-100 share would be 1%; with theta=0.9
  // it must be dramatically larger.
  EXPECT_GT(in_top_100, kSamples / 5);
}

TEST(ZipfTest, ThetaZeroApproximatesUniform) {
  // Gray's construction degenerates to uniform at theta=0: each decile
  // of the range must carry ~10% of the mass.
  ZipfGenerator zipf(1000, 0.0, 9);
  const int kSamples = 50000;
  int deciles[10] = {};
  for (int i = 0; i < kSamples; ++i) ++deciles[zipf.Next() / 100];
  for (int d = 0; d < 10; ++d) {
    EXPECT_NEAR(deciles[d] / static_cast<double>(kSamples), 0.10, 0.02)
        << "decile " << d;
  }
}

TEST(ZipfTest, HighThetaConcentratesOnHotPrefix) {
  // At theta=0.99 the 10 hottest of 10k keys draw well over 15% of all
  // requests (uniform would give them 0.1%).
  ZipfGenerator zipf(10000, 0.99, 21);
  const int kSamples = 20000;
  int in_top_10 = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Next() < 10) ++in_top_10;
  }
  EXPECT_GT(in_top_10 / static_cast<double>(kSamples), 0.15);
}

TEST(ZipfTest, DeterministicForSeed) {
  ZipfGenerator a(5000, 0.9, 77), b(5000, 0.9, 77), c(5000, 0.9, 78);
  bool diverged = false;
  for (int i = 0; i < 200; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    diverged |= va != c.Next();
  }
  EXPECT_TRUE(diverged);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  h.Add(100);
  h.Add(200);
  h.Add(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 100u);
  EXPECT_EQ(h.max(), 300u);
  EXPECT_DOUBLE_EQ(h.Mean(), 200.0);
}

TEST(HistogramTest, PercentileMonotonic) {
  Histogram h;
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) h.Add(rng.Uniform(1000000));
  EXPECT_LE(h.Percentile(0.5), h.Percentile(0.9));
  EXPECT_LE(h.Percentile(0.9), h.Percentile(0.99));
  EXPECT_LE(h.Percentile(0.99), h.max());
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Add(10);
  a.Add(20);
  b.Add(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 30u);
  EXPECT_EQ(a.min(), 10u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(1000);
  EXPECT_NE(h.Summary().find("count=1"), std::string::npos);
}

TEST(HistogramTest, ValueAtQuantileAliasesPercentile) {
  Histogram h;
  Rng rng(23);
  for (int i = 0; i < 5000; ++i) h.Add(rng.Uniform(100000));
  EXPECT_EQ(h.ValueAtQuantile(0.5), h.Percentile(0.5));
  EXPECT_EQ(h.P50(), h.Percentile(0.5));
  EXPECT_EQ(h.P99(), h.Percentile(0.99));
  EXPECT_EQ(h.P999(), h.Percentile(0.999));
  EXPECT_LE(h.P50(), h.P99());
  EXPECT_LE(h.P99(), h.P999());
  EXPECT_LE(h.P999(), h.max());
}

TEST(HistogramTest, AddCountEquivalentToRepeatedAdd) {
  Histogram bulk, repeated;
  bulk.AddCount(500, 90);
  bulk.AddCount(1'000'000, 10);
  for (int i = 0; i < 90; ++i) repeated.Add(500);
  for (int i = 0; i < 10; ++i) repeated.Add(1'000'000);
  EXPECT_EQ(bulk.count(), repeated.count());
  EXPECT_EQ(bulk.min(), repeated.min());
  EXPECT_EQ(bulk.max(), repeated.max());
  EXPECT_DOUBLE_EQ(bulk.Mean(), repeated.Mean());
  EXPECT_EQ(bulk.P50(), repeated.P50());
  EXPECT_EQ(bulk.P99(), repeated.P99());
  bulk.AddCount(0, 0);  // Zero-count is a no-op.
  EXPECT_EQ(bulk.count(), repeated.count());
}

TEST(HistogramTest, MergeThenQuantileMatchesCombined) {
  // Per-worker histograms merged after the fact must report the same
  // quantiles as one histogram that saw every sample — the property the
  // cross-worker latency merge in the metrics registry relies on.
  Histogram a, b, combined;
  Rng rng(31);
  for (int i = 0; i < 4000; ++i) {
    uint64_t fast = 1000 + rng.Uniform(1000);
    a.Add(fast);
    combined.Add(fast);
  }
  for (int i = 0; i < 100; ++i) {
    uint64_t slow = 1'000'000 + rng.Uniform(1'000'000);
    b.Add(slow);
    combined.Add(slow);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.P50(), combined.P50());
  EXPECT_EQ(a.P99(), combined.P99());
  EXPECT_EQ(a.P999(), combined.P999());
  // The merged p99 lands in the slow band (100/4100 > 1%).
  EXPECT_GT(a.P99(), 100'000u);
  EXPECT_LT(a.P50(), 10'000u);
}

}  // namespace
}  // namespace shoremt
