#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "log/log_buffer.h"
#include "log/log_manager.h"
#include "log/log_record.h"
#include "log/log_storage.h"

namespace shoremt::log {
namespace {

LogRecord MakeUpdate(TxnId txn, PageNum page, uint16_t slot,
                     std::vector<uint8_t> before, std::vector<uint8_t> after) {
  LogRecord rec;
  rec.type = LogRecordType::kPageUpdate;
  rec.txn = txn;
  rec.page = page;
  rec.slot = slot;
  rec.before = std::move(before);
  rec.after = std::move(after);
  return rec;
}

TEST(LogRecordTest, SerializeRoundtrip) {
  LogRecord rec = MakeUpdate(42, 7, 3, {1, 2}, {3, 4, 5});
  rec.prev_lsn = Lsn{100};
  rec.undo_next = Lsn{50};
  rec.store = 9;
  std::vector<uint8_t> bytes;
  SerializeLogRecord(rec, &bytes);
  EXPECT_EQ(bytes.size(), rec.SerializedSize());

  LogRecord back;
  size_t consumed;
  ASSERT_TRUE(DeserializeLogRecord(bytes, &back, &consumed).ok());
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(back.type, LogRecordType::kPageUpdate);
  EXPECT_EQ(back.txn, 42u);
  EXPECT_EQ(back.page, 7u);
  EXPECT_EQ(back.slot, 3u);
  EXPECT_EQ(back.store, 9u);
  EXPECT_EQ(back.prev_lsn, Lsn{100});
  EXPECT_EQ(back.undo_next, Lsn{50});
  EXPECT_EQ(back.before, (std::vector<uint8_t>{1, 2}));
  EXPECT_EQ(back.after, (std::vector<uint8_t>{3, 4, 5}));
}

TEST(LogRecordTest, TruncatedDataIsCorruption) {
  LogRecord rec = MakeUpdate(1, 2, 0, {}, {9});
  std::vector<uint8_t> bytes;
  SerializeLogRecord(rec, &bytes);
  LogRecord back;
  size_t consumed;
  std::span<const uint8_t> half(bytes.data(), bytes.size() / 2);
  EXPECT_EQ(DeserializeLogRecord(half, &back, &consumed).code(),
            StatusCode::kCorruption);
}

TEST(LogRecordTest, CheckpointBodyRoundtrip) {
  CheckpointBody body;
  body.redo_lsn = Lsn{777};
  body.active_txns = {{1, Lsn{10}}, {5, Lsn{99}}};
  std::vector<uint8_t> bytes;
  SerializeCheckpoint(body, &bytes);
  CheckpointBody back;
  ASSERT_TRUE(DeserializeCheckpoint(bytes, &back).ok());
  EXPECT_EQ(back.redo_lsn, Lsn{777});
  ASSERT_EQ(back.active_txns.size(), 2u);
  EXPECT_EQ(back.active_txns[1].first, 5u);
  EXPECT_EQ(back.active_txns[1].second, Lsn{99});
}

TEST(LogStorageTest, AppendAndRead) {
  LogStorage storage;
  std::vector<uint8_t> data{1, 2, 3, 4};
  ASSERT_TRUE(storage.Append(data).ok());
  EXPECT_EQ(storage.size(), 4u);
  std::vector<uint8_t> out;
  ASSERT_TRUE(storage.Read(1, 2, &out).ok());
  EXPECT_EQ(out, (std::vector<uint8_t>{2, 3}));
  EXPECT_EQ(storage.Read(2, 10, &out).code(), StatusCode::kIOError);
  EXPECT_EQ(storage.flush_calls(), 1u);
}

class LogBufferTest : public ::testing::TestWithParam<LogBufferKind> {
 protected:
  std::unique_ptr<LogBuffer> Make(size_t cap = 1 << 16) {
    return MakeLogBuffer(GetParam(), &storage_, cap);
  }
  LogStorage storage_;
};

TEST_P(LogBufferTest, AppendAssignsMonotonicLsns) {
  auto buf = Make();
  std::vector<uint8_t> rec(64, 0xaa);
  uint64_t prev_end = 1;
  for (int i = 0; i < 10; ++i) {
    auto r = buf->Append(rec, false);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->lsn.value, prev_end);
    EXPECT_EQ(r->end.value, prev_end + 64);
    prev_end = r->end.value;
  }
  EXPECT_EQ(buf->next_lsn().value, prev_end);
}

TEST_P(LogBufferTest, FlushMakesBytesDurable) {
  auto buf = Make();
  std::vector<uint8_t> rec(100, 0x5a);
  auto r = buf->Append(rec, false);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(buf->durable_lsn().value, r->end.value);
  ASSERT_TRUE(buf->FlushTo(r->end).ok());
  EXPECT_GE(buf->durable_lsn().value, r->end.value);
  EXPECT_EQ(storage_.size(), 100u);
}

TEST_P(LogBufferTest, WrapAroundSmallRing) {
  // Ring of 1 KiB, 100-byte records, 64 appends: forces many wraps and
  // flushes; every byte must land in storage in order.
  auto buf = Make(1024);
  for (int i = 0; i < 64; ++i) {
    std::vector<uint8_t> rec(100, static_cast<uint8_t>(i));
    auto r = buf->Append(rec, false);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  ASSERT_TRUE(buf->FlushTo(buf->next_lsn()).ok());
  EXPECT_EQ(storage_.size(), 6400u);
  // Check content ordering: byte at offset i*100 equals i.
  std::vector<uint8_t> out;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(storage_.Read(static_cast<uint64_t>(i) * 100, 1, &out).ok());
    EXPECT_EQ(out[0], static_cast<uint8_t>(i));
  }
}

TEST_P(LogBufferTest, OversizeRecordRejected) {
  auto buf = Make(1024);
  std::vector<uint8_t> rec(2048, 0);
  EXPECT_EQ(buf->Append(rec, false).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_P(LogBufferTest, ConcurrentAppendersProduceDenseLog) {
  auto buf = Make(1 << 16);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> workers;
  std::vector<std::vector<uint64_t>> lsns(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<uint8_t> rec(32, static_cast<uint8_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        auto r = buf->Append(rec, false);
        ASSERT_TRUE(r.ok());
        lsns[t].push_back(r->lsn.value);
      }
    });
  }
  for (auto& w : workers) w.join();
  ASSERT_TRUE(buf->FlushTo(buf->next_lsn()).ok());
  EXPECT_EQ(storage_.size(),
            static_cast<uint64_t>(kThreads) * kPerThread * 32);
  // All LSNs distinct and 32-byte aligned in the claim space.
  std::set<uint64_t> all;
  for (const auto& v : lsns) {
    for (uint64_t l : v) {
      EXPECT_TRUE(all.insert(l).second) << "duplicate LSN " << l;
      EXPECT_EQ((l - 1) % 32, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, LogBufferTest,
                         ::testing::Values(LogBufferKind::kMutex,
                                           LogBufferKind::kDecoupled,
                                           LogBufferKind::kConsolidated),
                         [](const auto& info) {
                           switch (info.param) {
                             case LogBufferKind::kMutex:
                               return "Mutex";
                             case LogBufferKind::kDecoupled:
                               return "Decoupled";
                             case LogBufferKind::kConsolidated:
                               return "Consolidated";
                           }
                           return "Unknown";
                         });

TEST(LogManagerTest, AppendFlushReadback) {
  LogStorage storage;
  LogManager mgr(&storage, LogOptions{});
  LogRecord rec = MakeUpdate(1, 10, 0, {1}, {2});
  auto a = mgr.Append(rec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(mgr.FlushTo(a->end).ok());
  auto back = mgr.ReadRecord(a->lsn);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->txn, 1u);
  EXPECT_EQ(back->page, 10u);
  EXPECT_EQ(back->lsn, a->lsn);
  EXPECT_EQ(mgr.stats().records.load(), 1u);
}

TEST(LogManagerTest, ScanVisitsRecordsInOrder) {
  LogStorage storage;
  LogManager mgr(&storage, LogOptions{});
  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(mgr.Append(MakeUpdate(i, i * 2, 0, {}, {9})).ok());
  }
  ASSERT_TRUE(mgr.FlushAll().ok());
  std::vector<TxnId> seen;
  Lsn last_end{0};
  ASSERT_TRUE(mgr.Scan([&](const LogRecord& rec, Lsn end) {
                  seen.push_back(rec.txn);
                  EXPECT_GT(end.value, rec.lsn.value);
                  EXPECT_GE(rec.lsn.value, last_end.value);
                  last_end = end;
                  return Status::Ok();
                }).ok());
  ASSERT_EQ(seen.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(seen[i], static_cast<TxnId>(i + 1));
}

TEST(LogManagerTest, UnflushedTailIsLostOnCrash) {
  LogStorage storage;
  std::vector<TxnId> seen;
  {
    LogManager mgr(&storage, LogOptions{});
    auto a1 = mgr.Append(MakeUpdate(1, 1, 0, {}, {1}));
    ASSERT_TRUE(a1.ok());
    ASSERT_TRUE(mgr.FlushTo(a1->end).ok());
    // Appended but never flushed: a crash forgets it.
    ASSERT_TRUE(mgr.Append(MakeUpdate(2, 2, 0, {}, {2})).ok());
  }
  // "Restart": a fresh manager attached to the same storage.
  LogManager recovered(&storage, LogOptions{});
  ASSERT_TRUE(recovered.Scan([&](const LogRecord& rec, Lsn) {
                  seen.push_back(rec.txn);
                  return Status::Ok();
                }).ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 1u);
}

TEST(LogManagerTest, ClrCountsAsCompensation) {
  LogStorage storage;
  LogManager mgr(&storage, LogOptions{});
  LogRecord clr;
  clr.type = LogRecordType::kClr;
  clr.txn = 3;
  clr.undo_next = Lsn{1};
  ASSERT_TRUE(mgr.AppendClr(clr).ok());
  EXPECT_EQ(mgr.stats().compensations.load(), 1u);
}

TEST(LogManagerTest, ReadRecordValidatesLengthPrefix) {
  LogStorage storage;
  LogManager mgr(&storage, LogOptions{});
  // A record beyond the durable end is Corruption, not a bogus read.
  EXPECT_EQ(mgr.ReadRecord(Lsn{1}).status().code(), StatusCode::kCorruption);

  // Garbage bytes whose length prefix is absurdly large: the prefix must
  // be validated against the durable size before any read is attempted.
  std::vector<uint8_t> garbage(64, 0xFF);
  ASSERT_TRUE(storage.Append(garbage).ok());
  EXPECT_EQ(mgr.ReadRecord(Lsn{1}).status().code(), StatusCode::kCorruption);

  // A prefix smaller than any valid record (here: 2) is equally rejected.
  LogStorage tiny_storage;
  LogManager tiny_mgr(&tiny_storage, LogOptions{});
  std::vector<uint8_t> tiny(64, 0);
  tiny[0] = 2;
  ASSERT_TRUE(tiny_storage.Append(tiny).ok());
  EXPECT_EQ(tiny_mgr.ReadRecord(Lsn{1}).status().code(),
            StatusCode::kCorruption);

  // A truncated-but-plausible prefix (record extends past durable end).
  LogStorage torn_storage;
  LogManager torn_mgr(&torn_storage, LogOptions{});
  std::vector<uint8_t> torn(8, 0);
  uint32_t claims = 1 << 20;
  std::memcpy(torn.data(), &claims, 4);
  ASSERT_TRUE(torn_storage.Append(torn).ok());
  EXPECT_EQ(torn_mgr.ReadRecord(Lsn{1}).status().code(),
            StatusCode::kCorruption);
}

TEST(LogManagerTest, PipelineSubmitThenWaitBecomesDurable) {
  LogStorage storage;
  LogManager mgr(&storage, LogOptions{});
  auto a = mgr.Append(MakeUpdate(1, 1, 0, {}, {1}));
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(mgr.IsDurable(a->end));
  mgr.SubmitFlush(a->end);
  ASSERT_TRUE(mgr.WaitDurable(a->end).ok());
  EXPECT_TRUE(mgr.IsDurable(a->end));
  EXPECT_GE(mgr.stats().group_batches.load(), 1u);
}

TEST(LogManagerTest, PipelineWaitWithoutSubmitSelfSubmits) {
  LogStorage storage;
  LogManager mgr(&storage, LogOptions{});
  auto a = mgr.Append(MakeUpdate(1, 1, 0, {}, {2}));
  ASSERT_TRUE(a.ok());
  // Wait alone must not hang: it registers the target itself.
  ASSERT_TRUE(mgr.WaitDurable(a->end).ok());
  EXPECT_TRUE(mgr.IsDurable(a->end));
}

TEST(LogManagerTest, PipelineDrainsSubmittedTargetsOnDestruction) {
  LogStorage storage;
  {
    LogManager mgr(&storage, LogOptions{});
    auto a = mgr.Append(MakeUpdate(7, 1, 0, {}, {3}));
    ASSERT_TRUE(a.ok());
    mgr.SubmitFlush(a->end);
    // Destroyed without waiting: the final drain must cover the submit.
  }
  ASSERT_GT(storage.size(), 0u);
  std::vector<TxnId> seen;
  LogManager recovered(&storage, LogOptions{});
  ASSERT_TRUE(recovered.Scan([&](const LogRecord& rec, Lsn) {
                  seen.push_back(rec.txn);
                  return Status::Ok();
                }).ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 7u);
}

TEST(LogManagerTest, AbandonedPipelineLosesUnflushedSubmits) {
  LogStorage storage;
  {
    LogManager mgr(&storage, LogOptions{});
    auto a1 = mgr.Append(MakeUpdate(1, 1, 0, {}, {1}));
    ASSERT_TRUE(a1.ok());
    ASSERT_TRUE(mgr.FlushTo(a1->end).ok());
    // Abandon *before* submitting, so the daemon never has work: the
    // submitted-but-undrained record must be lost at destruction, exactly
    // like a power failure.
    mgr.Abandon();
    auto a2 = mgr.Append(MakeUpdate(2, 2, 0, {}, {2}));
    ASSERT_TRUE(a2.ok());
  }
  std::vector<TxnId> seen;
  LogManager recovered(&storage, LogOptions{});
  ASSERT_TRUE(recovered.Scan([&](const LogRecord& rec, Lsn) {
                  seen.push_back(rec.txn);
                  return Status::Ok();
                }).ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 1u);
}

TEST(LogManagerTest, FlushDaemonEventuallyFlushes) {
  LogStorage storage;
  LogOptions opts;
  opts.flush_daemon = true;
  opts.flush_interval_us = 200;
  LogManager mgr(&storage, opts);
  auto a = mgr.Append(MakeUpdate(1, 1, 0, {}, {1}));
  ASSERT_TRUE(a.ok());
  for (int i = 0; i < 500 && mgr.durable_lsn() < a->end; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(mgr.durable_lsn().value, a->end.value);
}

TEST(LogManagerTest, GroupCommitAmortizesFlushCalls) {
  // With 4 committers and a slow log device, the group-commit flush path
  // should need far fewer storage appends than commits.
  LogStorage storage(/*append_latency_ns=*/200'000);
  LogOptions opts;
  opts.buffer_kind = LogBufferKind::kConsolidated;
  LogManager mgr(&storage, opts);
  constexpr int kThreads = 4;
  constexpr int kCommits = 25;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kCommits; ++i) {
        auto a = mgr.Append(MakeUpdate(1, 1, 0, {}, {7}));
        ASSERT_TRUE(a.ok());
        ASSERT_TRUE(mgr.FlushTo(a->end).ok());
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_LT(storage.flush_calls(), kThreads * kCommits);
}

}  // namespace
}  // namespace shoremt::log
