#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "log/log_buffer.h"
#include "log/log_manager.h"
#include "log/log_record.h"
#include "log/log_storage.h"

namespace shoremt::log {
namespace {

LogRecord MakeUpdate(TxnId txn, PageNum page, uint16_t slot,
                     std::vector<uint8_t> before, std::vector<uint8_t> after) {
  LogRecord rec;
  rec.type = LogRecordType::kPageUpdate;
  rec.txn = txn;
  rec.page = page;
  rec.slot = slot;
  rec.before = std::move(before);
  rec.after = std::move(after);
  return rec;
}

TEST(LogRecordTest, SerializeRoundtrip) {
  LogRecord rec = MakeUpdate(42, 7, 3, {1, 2}, {3, 4, 5});
  rec.prev_lsn = Lsn{100};
  rec.undo_next = Lsn{50};
  rec.store = 9;
  std::vector<uint8_t> bytes;
  SerializeLogRecord(rec, &bytes);
  EXPECT_EQ(bytes.size(), rec.SerializedSize());

  LogRecord back;
  size_t consumed;
  ASSERT_TRUE(DeserializeLogRecord(bytes, &back, &consumed).ok());
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(back.type, LogRecordType::kPageUpdate);
  EXPECT_EQ(back.txn, 42u);
  EXPECT_EQ(back.page, 7u);
  EXPECT_EQ(back.slot, 3u);
  EXPECT_EQ(back.store, 9u);
  EXPECT_EQ(back.prev_lsn, Lsn{100});
  EXPECT_EQ(back.undo_next, Lsn{50});
  EXPECT_EQ(back.before, (std::vector<uint8_t>{1, 2}));
  EXPECT_EQ(back.after, (std::vector<uint8_t>{3, 4, 5}));
}

TEST(LogRecordTest, TruncatedDataIsCorruption) {
  LogRecord rec = MakeUpdate(1, 2, 0, {}, {9});
  std::vector<uint8_t> bytes;
  SerializeLogRecord(rec, &bytes);
  LogRecord back;
  size_t consumed;
  std::span<const uint8_t> half(bytes.data(), bytes.size() / 2);
  EXPECT_EQ(DeserializeLogRecord(half, &back, &consumed).code(),
            StatusCode::kCorruption);
}

TEST(LogRecordTest, CheckpointBodyRoundtrip) {
  CheckpointBody body;
  body.redo_lsn = Lsn{777};
  body.active_txns = {{1, Lsn{10}, Lsn{3}}, {5, Lsn{99}, Lsn{42}}};
  body.tables = {{0xaa, 0xbb}, {0xcc}};
  body.stores = {{7, {1, 2, 9}}, {8, {}}};
  std::vector<uint8_t> bytes;
  SerializeCheckpoint(body, &bytes);
  CheckpointBody back;
  ASSERT_TRUE(DeserializeCheckpoint(bytes, &back).ok());
  EXPECT_EQ(back.redo_lsn, Lsn{777});
  ASSERT_EQ(back.active_txns.size(), 2u);
  EXPECT_EQ(back.active_txns[1].id, 5u);
  EXPECT_EQ(back.active_txns[1].last_lsn, Lsn{99});
  EXPECT_EQ(back.active_txns[1].first_lsn, Lsn{42});
  ASSERT_EQ(back.tables.size(), 2u);
  EXPECT_EQ(back.tables[0], (std::vector<uint8_t>{0xaa, 0xbb}));
  ASSERT_EQ(back.stores.size(), 2u);
  EXPECT_EQ(back.stores[0].first, 7u);
  EXPECT_EQ(back.stores[0].second, (std::vector<PageNum>{1, 2, 9}));
  EXPECT_TRUE(back.stores[1].second.empty());
  // A truncated body must surface as corruption, not a bogus parse.
  std::span<const uint8_t> half(bytes.data(), bytes.size() / 2);
  EXPECT_EQ(DeserializeCheckpoint(half, &back).code(),
            StatusCode::kCorruption);
}

TEST(LogStorageTest, AppendAndRead) {
  LogStorage storage;
  std::vector<uint8_t> data{1, 2, 3, 4};
  ASSERT_TRUE(storage.Append(data).ok());
  EXPECT_EQ(storage.size(), 4u);
  std::vector<uint8_t> out;
  ASSERT_TRUE(storage.Read(1, 2, &out).ok());
  EXPECT_EQ(out, (std::vector<uint8_t>{2, 3}));
  EXPECT_EQ(storage.Read(2, 10, &out).code(), StatusCode::kIOError);
  EXPECT_EQ(storage.flush_calls(), 1u);
}

class LogBufferTest : public ::testing::TestWithParam<LogBufferKind> {
 protected:
  std::unique_ptr<LogBuffer> Make(size_t cap = 1 << 16) {
    return MakeLogBuffer(GetParam(), &storage_, cap);
  }
  LogStorage storage_;
};

TEST_P(LogBufferTest, AppendAssignsMonotonicLsns) {
  auto buf = Make();
  std::vector<uint8_t> rec(64, 0xaa);
  uint64_t prev_end = 1;
  for (int i = 0; i < 10; ++i) {
    auto r = buf->Append(rec, false);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->lsn.value, prev_end);
    EXPECT_EQ(r->end.value, prev_end + 64);
    prev_end = r->end.value;
  }
  EXPECT_EQ(buf->next_lsn().value, prev_end);
}

TEST_P(LogBufferTest, FlushMakesBytesDurable) {
  auto buf = Make();
  std::vector<uint8_t> rec(100, 0x5a);
  auto r = buf->Append(rec, false);
  ASSERT_TRUE(r.ok());
  EXPECT_LT(buf->durable_lsn().value, r->end.value);
  ASSERT_TRUE(buf->FlushTo(r->end).ok());
  EXPECT_GE(buf->durable_lsn().value, r->end.value);
  EXPECT_EQ(storage_.size(), 100u);
}

TEST_P(LogBufferTest, WrapAroundSmallRing) {
  // Ring of 1 KiB, 100-byte records, 64 appends: forces many wraps and
  // flushes; every byte must land in storage in order.
  auto buf = Make(1024);
  for (int i = 0; i < 64; ++i) {
    std::vector<uint8_t> rec(100, static_cast<uint8_t>(i));
    auto r = buf->Append(rec, false);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  ASSERT_TRUE(buf->FlushTo(buf->next_lsn()).ok());
  EXPECT_EQ(storage_.size(), 6400u);
  // Check content ordering: byte at offset i*100 equals i.
  std::vector<uint8_t> out;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(storage_.Read(static_cast<uint64_t>(i) * 100, 1, &out).ok());
    EXPECT_EQ(out[0], static_cast<uint8_t>(i));
  }
}

TEST_P(LogBufferTest, OversizeRecordRejected) {
  auto buf = Make(1024);
  std::vector<uint8_t> rec(2048, 0);
  EXPECT_EQ(buf->Append(rec, false).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_P(LogBufferTest, ConcurrentAppendersProduceDenseLog) {
  auto buf = Make(1 << 16);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> workers;
  std::vector<std::vector<uint64_t>> lsns(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<uint8_t> rec(32, static_cast<uint8_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        auto r = buf->Append(rec, false);
        ASSERT_TRUE(r.ok());
        lsns[t].push_back(r->lsn.value);
      }
    });
  }
  for (auto& w : workers) w.join();
  ASSERT_TRUE(buf->FlushTo(buf->next_lsn()).ok());
  EXPECT_EQ(storage_.size(),
            static_cast<uint64_t>(kThreads) * kPerThread * 32);
  // All LSNs distinct and 32-byte aligned in the claim space.
  std::set<uint64_t> all;
  for (const auto& v : lsns) {
    for (uint64_t l : v) {
      EXPECT_TRUE(all.insert(l).second) << "duplicate LSN " << l;
      EXPECT_EQ((l - 1) % 32, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, LogBufferTest,
                         ::testing::Values(LogBufferKind::kMutex,
                                           LogBufferKind::kDecoupled,
                                           LogBufferKind::kConsolidated,
                                           LogBufferKind::kCArray),
                         [](const auto& info) {
                           switch (info.param) {
                             case LogBufferKind::kMutex:
                               return "Mutex";
                             case LogBufferKind::kDecoupled:
                               return "Decoupled";
                             case LogBufferKind::kConsolidated:
                               return "Consolidated";
                             case LogBufferKind::kCArray:
                               return "CArray";
                           }
                           return "Unknown";
                         });

constexpr LogBufferKind kAllBufferKinds[] = {
    LogBufferKind::kMutex, LogBufferKind::kDecoupled,
    LogBufferKind::kConsolidated, LogBufferKind::kCArray};

// Deterministic per-record payload so readback can prove bytes are
// neither torn nor cross-wired between records.
std::vector<uint8_t> StressPayload(TxnId txn, PageNum seq) {
  size_t len = 20 + (static_cast<size_t>(txn) * 37 + seq * 11) % 180;
  std::vector<uint8_t> p(len);
  for (size_t i = 0; i < len; ++i) {
    p[i] = static_cast<uint8_t>(txn * 101 + seq * 31 + i);
  }
  return p;
}

/// Multi-producer stress over every buffer kind: after a full drain, a
/// ReadRecord walk over the durable stream must see every record intact
/// (no torn or reordered bytes) and each producer's records in its append
/// order. Small ring + varied record sizes force wraps, ring-full
/// self-flushes and — for kCArray — group claims with out-of-order
/// completion publication.
TEST(LogBufferStressTest, MultiProducerRecordsSurviveDrainIntact) {
  constexpr int kThreads = 4;
  const int kPerThread = 300;
  for (LogBufferKind kind : kAllBufferKinds) {
    SCOPED_TRACE(static_cast<int>(kind));
    LogStorage storage;
    LogOptions opts;
    opts.buffer_kind = kind;
    opts.buffer_capacity = 1 << 14;  // 16 KiB: plenty of wraps.
    LogManager mgr(&storage, opts);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          TxnId txn = static_cast<TxnId>(t + 1);
          LogRecord rec = MakeUpdate(txn, static_cast<PageNum>(i), 0, {},
                                     StressPayload(txn, i));
          ASSERT_TRUE(mgr.Append(rec).ok());
        }
      });
    }
    for (auto& w : workers) w.join();
    ASSERT_TRUE(mgr.FlushAll().ok());

    // ReadRecord walk: every record re-read from the durable stream by
    // LSN, advancing by its serialized size.
    std::vector<int> next_seq(kThreads, 0);
    uint64_t offset = 0;
    size_t records = 0;
    while (offset < storage.size()) {
      auto rec = mgr.ReadRecord(Lsn{offset + 1});
      ASSERT_TRUE(rec.ok()) << rec.status().ToString();
      int t = static_cast<int>(rec->txn) - 1;
      ASSERT_GE(t, 0);
      ASSERT_LT(t, kThreads);
      // In-order per producer, intact payload.
      EXPECT_EQ(rec->page, static_cast<PageNum>(next_seq[t]));
      EXPECT_EQ(rec->after, StressPayload(rec->txn, rec->page));
      ++next_seq[t];
      ++records;
      offset += rec->SerializedSize();
    }
    EXPECT_EQ(offset, storage.size());  // Dense: no gaps, no tail garbage.
    EXPECT_EQ(records, static_cast<size_t>(kThreads) * kPerThread);
    for (int t = 0; t < kThreads; ++t) EXPECT_EQ(next_seq[t], kPerThread);
  }
}

/// Crash simulation under out-of-order completion publication: producers
/// race appends and mid-stream flushes, then the manager is abandoned
/// (power failure — no final drain). Recovery must replay EXACTLY the
/// contiguous completed prefix: every record below the durable horizon
/// intact and dense, covering at least every explicitly flushed target,
/// with the unflushed tail gone.
TEST(LogBufferStressTest, CrashRecoversContiguousCompletedPrefix) {
  for (LogBufferKind kind :
       {LogBufferKind::kConsolidated, LogBufferKind::kCArray}) {
    SCOPED_TRACE(static_cast<int>(kind));
    constexpr int kThreads = 4;
    const int kPerThread = 200;
    LogStorage storage;
    std::atomic<uint64_t> max_flushed{0};
    {
      LogOptions opts;
      opts.buffer_kind = kind;
      opts.buffer_capacity = 1 << 13;
      LogManager mgr(&storage, opts);
      std::vector<std::thread> workers;
      for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
          for (int i = 0; i < kPerThread; ++i) {
            TxnId txn = static_cast<TxnId>(t + 1);
            LogRecord rec = MakeUpdate(txn, static_cast<PageNum>(i), 0, {},
                                       StressPayload(txn, i));
            auto a = mgr.Append(rec);
            ASSERT_TRUE(a.ok());
            if (i % 25 == 24) {
              ASSERT_TRUE(mgr.FlushTo(a->end).ok());
              uint64_t prev = max_flushed.load();
              while (prev < a->end.value &&
                     !max_flushed.compare_exchange_weak(prev, a->end.value)) {
              }
            }
          }
        });
      }
      for (auto& w : workers) w.join();
      mgr.Abandon();  // Crash: whatever was not flushed is lost.
    }
    ASSERT_GE(storage.size() + 1, max_flushed.load());

    LogManager recovered(&storage, LogOptions{});
    uint64_t offset = 0;
    Lsn last_end{0};
    ASSERT_TRUE(recovered
                    .Scan([&](const LogRecord& rec, Lsn end) {
                      // Contiguous prefix: each record starts exactly
                      // where its predecessor ended.
                      EXPECT_EQ(rec.lsn.value, offset + 1);
                      EXPECT_EQ(rec.after, StressPayload(rec.txn, rec.page));
                      offset = end.value - 1;
                      last_end = end;
                      return Status::Ok();
                    })
                    .ok());
    // The replayed prefix covers every acknowledged flush target and ends
    // at the durable horizon — nothing beyond it, no holes inside it.
    EXPECT_GE(last_end.value, max_flushed.load());
    EXPECT_EQ(offset, storage.size());
  }
}

/// Regression for the consolidated buffer's ring-full path: it used to
/// flush to `storage size + 2` — one byte past durable — so a full ring
/// could bounce through FlushTo re-flushing tiny prefixes, one device
/// call each. Flushing to the completed watermark drains everything
/// completed per call: with records near ring capacity and heavy
/// ring-full traffic, the device-call count stays in the order of the
/// record count.
TEST(LogBufferStressTest, ConsolidatedRingFullDrainsCompletedWatermark) {
  for (LogBufferKind kind :
       {LogBufferKind::kConsolidated, LogBufferKind::kCArray}) {
    SCOPED_TRACE(static_cast<int>(kind));
    constexpr int kThreads = 4;
    const int kPerThread = 200;
    constexpr size_t kRing = 1 << 12;
    constexpr size_t kRecord = 1800;  // Near the ring/2 record ceiling.
    LogStorage storage;
    auto buf = MakeLogBuffer(kind, &storage, kRing);
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        std::vector<uint8_t> rec(kRecord,
                                 static_cast<uint8_t>(1 + t));
        for (int i = 0; i < kPerThread; ++i) {
          ASSERT_TRUE(buf->Append(rec, false).ok());
        }
      });
    }
    for (auto& w : workers) w.join();
    ASSERT_TRUE(buf->FlushTo(buf->next_lsn()).ok());
    const uint64_t total = static_cast<uint64_t>(kThreads) * kPerThread;
    ASSERT_EQ(storage.size(), total * kRecord);
    // No torn records: the stream is a permutation of uniform blocks.
    std::vector<uint8_t> bytes = storage.Snapshot();
    std::vector<int> per_thread(kThreads + 1, 0);
    for (uint64_t r = 0; r < total; ++r) {
      uint8_t v = bytes[r * kRecord];
      ASSERT_GE(v, 1);
      ASSERT_LE(v, kThreads);
      ++per_thread[v];
      for (size_t i = 1; i < kRecord; ++i) {
        ASSERT_EQ(bytes[r * kRecord + i], v) << "torn record " << r;
      }
    }
    for (int t = 1; t <= kThreads; ++t) EXPECT_EQ(per_thread[t], kPerThread);
    // Tiny-prefix pathology bound: draining the watermark needs at most
    // ~one device call per ring-full record (plus slack for races).
    EXPECT_LE(storage.flush_calls(), 2 * total);
  }
}

/// Group-protocol coverage: with the force-consolidation hook every
/// append routes through the slots, so leaders and members run on any
/// host — on few-context machines the solo CAS essentially never fails
/// and the slot protocol would otherwise go unexercised. Verifies join
/// accounting, base hand-off, parallel member copies and out-of-order
/// publication end to end via a full readback.
TEST(LogBufferStressTest, ForcedConsolidationGroupsStayIntact) {
  constexpr int kThreads = 8;
  const int kPerThread = 200;
  LogStorage storage;
  LogOptions opts;
  opts.buffer_kind = LogBufferKind::kCArray;
  opts.buffer_capacity = 1 << 14;
  opts.carray_force_consolidation = true;
  LogManager mgr(&storage, opts);
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        TxnId txn = static_cast<TxnId>(t + 1);
        LogRecord rec = MakeUpdate(txn, static_cast<PageNum>(i), 0, {},
                                   StressPayload(txn, i));
        ASSERT_TRUE(mgr.Append(rec).ok());
      }
    });
  }
  for (auto& w : workers) w.join();
  ASSERT_TRUE(mgr.FlushAll().ok());

  const LogStats& s = mgr.stats();
  const uint64_t total = static_cast<uint64_t>(kThreads) * kPerThread;
  // Every append either led a group or joined one; the accounting closes.
  EXPECT_GT(s.carray_groups.load(), 0u);
  EXPECT_GT(s.carray_slot_joins.load(), 0u)
      << "no member ever joined a slot: the hand-off path went untested";
  EXPECT_EQ(s.carray_group_records.load() + s.carray_solo_claims.load(),
            total);
  EXPECT_EQ(s.carray_group_records.load(),
            s.carray_groups.load() + s.carray_slot_joins.load());
  uint64_t hist = 0;
  for (const auto& bucket : s.carray_group_size_hist) hist += bucket.load();
  EXPECT_EQ(hist, s.carray_groups.load());

  // Full readback: no torn, lost or reordered bytes.
  std::vector<int> next_seq(kThreads, 0);
  uint64_t offset = 0;
  while (offset < storage.size()) {
    auto rec = mgr.ReadRecord(Lsn{offset + 1});
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
    int t = static_cast<int>(rec->txn) - 1;
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    EXPECT_EQ(rec->page, static_cast<PageNum>(next_seq[t]));
    EXPECT_EQ(rec->after, StressPayload(rec->txn, rec->page));
    ++next_seq[t];
    offset += rec->SerializedSize();
  }
  EXPECT_EQ(offset, storage.size());
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(next_seq[t], kPerThread);
}

/// Adaptive gather window: a solo producer under forced consolidation
/// leads every group alone (members == 1), so each close signals that
/// spinning for joiners was pure latency and the leader must halve the
/// spin budget toward its floor. The narrow counter plus the gauge
/// sitting below the initial budget prove the adaptation actually
/// engaged rather than the window idling at its compile-time default.
TEST(LogBufferStressTest, ForcedConsolidationSoloNarrowsGatherWindow) {
  LogStorage storage;
  LogOptions opts;
  opts.buffer_kind = LogBufferKind::kCArray;
  opts.buffer_capacity = 1 << 14;
  opts.carray_force_consolidation = true;
  LogManager mgr(&storage, opts);
  for (int i = 0; i < 64; ++i) {
    LogRecord rec = MakeUpdate(1, static_cast<PageNum>(i), 0, {},
                               StressPayload(1, i));
    ASSERT_TRUE(mgr.Append(rec).ok());
  }
  ASSERT_TRUE(mgr.FlushAll().ok());
  const LogStats& s = mgr.stats();
  EXPECT_GT(s.carray_gather_narrows.load(), 0u)
      << "solo-led groups never narrowed the gather window";
  EXPECT_LT(s.carray_gather_spins.load(), 64u)
      << "gauge still at the initial spin budget: adaptation never engaged";
  EXPECT_GE(s.carray_gather_spins.load(), 8u)
      << "gauge fell through the floor";
}

/// Ring-full appends against a dead log device must surface the flush
/// error to every producer — nobody may hang waiting for space (or, in a
/// consolidation group, for a leader whose claim can never succeed).
TEST(LogBufferStressTest, ForcedConsolidationRingFullDeviceErrorSurfaces) {
  constexpr int kThreads = 4;
  LogStorage storage;
  LogOptions opts;
  opts.buffer_kind = LogBufferKind::kCArray;
  opts.buffer_capacity = 1 << 12;
  opts.carray_force_consolidation = true;
  {
    LogManager mgr(&storage, opts);
    // Fill the ring (completed but unflushed), then kill the device:
    // every further append needs a reclaim flush, which must fail.
    std::vector<uint8_t> filler(1900);
    for (int i = 0; i < 2; ++i) {
      LogRecord rec = MakeUpdate(99, 0, 0, {}, filler);
      ASSERT_TRUE(mgr.Append(rec).ok());
    }
    storage.set_fail_appends(true);
    std::atomic<int> io_errors{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        LogRecord rec = MakeUpdate(static_cast<TxnId>(t + 1), 0, 0, {},
                                   std::vector<uint8_t>(400, 0xee));
        auto a = mgr.Append(rec);
        ASSERT_FALSE(a.ok());
        EXPECT_EQ(a.status().code(), StatusCode::kIOError);
        io_errors.fetch_add(1);
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(io_errors.load(), kThreads);
    storage.set_fail_appends(false);
    mgr.Abandon();  // The unflushed tail is deliberately lost.
  }
  // Nothing ever reached the device.
  EXPECT_EQ(storage.size(), 0u);
}

TEST(LogManagerTest, OnDurableFiresWhenDaemonPassesTarget) {
  LogStorage storage;
  LogManager mgr(&storage, LogOptions{});
  auto a = mgr.Append(MakeUpdate(1, 1, 0, {}, {1}));
  ASSERT_TRUE(a.ok());
  std::atomic<int> fired{0};
  Status seen = Status::Internal("never invoked");
  // Registration doubles as the flush submission: no SubmitFlush needed.
  mgr.OnDurable(a->end, [&](Status st) {
    seen = st;
    fired.fetch_add(1, std::memory_order_release);
  });
  for (int i = 0; i < 2000 && fired.load(std::memory_order_acquire) == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(fired.load(), 1);
  EXPECT_TRUE(seen.ok()) << seen.ToString();
  EXPECT_TRUE(mgr.IsDurable(a->end));
}

TEST(LogManagerTest, OnDurableAlreadyDurableFiresInline) {
  LogStorage storage;
  LogManager mgr(&storage, LogOptions{});
  auto a = mgr.Append(MakeUpdate(1, 1, 0, {}, {1}));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(mgr.FlushTo(a->end).ok());
  bool fired = false;
  mgr.OnDurable(a->end, [&](Status st) {
    EXPECT_TRUE(st.ok());
    fired = true;
  });
  EXPECT_TRUE(fired);  // Inline: before OnDurable returned.
}

TEST(LogManagerTest, OnDurableFiresInLsnOrderAcrossBatches) {
  // A slow device keeps the daemon's first batch in flight until every
  // registration (deliberately out of order) has landed in the pending
  // map: none can take the already-durable inline path, so the dispatch
  // order observed is the daemon's — which must be ascending-LSN.
  LogStorage storage(/*append_latency_ns=*/20'000'000);
  LogManager mgr(&storage, LogOptions{});
  std::mutex mu;
  std::vector<int> order;
  std::vector<Lsn> ends;
  for (int i = 0; i < 5; ++i) {
    auto a = mgr.Append(MakeUpdate(1, 1, 0, {}, {static_cast<uint8_t>(i)}));
    ASSERT_TRUE(a.ok());
    ends.push_back(a->end);
  }
  // Register out of order; dispatch must follow LSN order.
  for (int i : {3, 0, 4, 2, 1}) {
    mgr.OnDurable(ends[i], [&, i](Status st) {
      EXPECT_TRUE(st.ok());
      std::lock_guard<std::mutex> guard(mu);
      order.push_back(i);
    });
  }
  ASSERT_TRUE(mgr.WaitDurable(ends[4]).ok());
  for (int i = 0; i < 2000; ++i) {
    {
      std::lock_guard<std::mutex> guard(mu);
      if (order.size() == 5) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::lock_guard<std::mutex> guard(mu);
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(LogManagerTest, OnDurableGetsStickyPipelineError) {
  LogStorage storage;
  LogManager mgr(&storage, LogOptions{});
  auto a = mgr.Append(MakeUpdate(1, 1, 0, {}, {1}));
  ASSERT_TRUE(a.ok());
  storage.set_fail_appends(true);
  std::atomic<int> fired{0};
  Status seen;
  mgr.OnDurable(a->end, [&](Status st) {
    seen = st;
    fired.fetch_add(1, std::memory_order_release);
  });
  for (int i = 0; i < 2000 && fired.load(std::memory_order_acquire) == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(fired.load(), 1);
  EXPECT_EQ(seen.code(), StatusCode::kIOError);
  // A closure registered AFTER the pipeline was poisoned fires inline
  // with the same sticky error.
  bool late_fired = false;
  mgr.OnDurable(Lsn{a->end.value + 100}, [&](Status st) {
    EXPECT_EQ(st.code(), StatusCode::kIOError);
    late_fired = true;
  });
  EXPECT_TRUE(late_fired);
  storage.set_fail_appends(false);  // Let the destructor's drain proceed.
}

TEST(LogManagerTest, OnDurableFiresFromFinalDrainOnShutdown) {
  LogStorage storage;
  std::atomic<int> fired{0};
  Status seen = Status::Internal("never invoked");
  {
    LogManager mgr(&storage, LogOptions{});
    auto a = mgr.Append(MakeUpdate(7, 1, 0, {}, {3}));
    ASSERT_TRUE(a.ok());
    mgr.OnDurable(a->end, [&](Status st) {
      seen = st;
      fired.fetch_add(1);
    });
    // Destroyed without waiting: the final drain covers the target and
    // the closure fires with Ok before the daemon joins.
  }
  EXPECT_EQ(fired.load(), 1);
  EXPECT_TRUE(seen.ok()) << seen.ToString();
  EXPECT_GT(storage.size(), 0u);
}

TEST(LogManagerTest, OnDurableSynchronousFlushDispatches) {
  // Durability advanced behind the daemon's back (synchronous FlushTo)
  // must also dispatch registered closures via NotifyDurableAdvanced.
  LogStorage storage;
  LogManager mgr(&storage, LogOptions{});
  auto a1 = mgr.Append(MakeUpdate(1, 1, 0, {}, {1}));
  ASSERT_TRUE(a1.ok());
  auto a2 = mgr.Append(MakeUpdate(2, 2, 0, {}, {2}));
  ASSERT_TRUE(a2.ok());
  std::atomic<int> fired{0};
  mgr.OnDurable(a1->end, [&](Status st) {
    EXPECT_TRUE(st.ok());
    fired.fetch_add(1, std::memory_order_release);
  });
  ASSERT_TRUE(mgr.FlushTo(a2->end).ok());
  // The synchronous flush path dispatches due callbacks itself (the
  // daemon may also have raced it; either way it fires exactly once).
  for (int i = 0; i < 2000 && fired.load(std::memory_order_acquire) == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(fired.load(), 1);
}

TEST(LogManagerTest, AppendFlushReadback) {
  LogStorage storage;
  LogManager mgr(&storage, LogOptions{});
  LogRecord rec = MakeUpdate(1, 10, 0, {1}, {2});
  auto a = mgr.Append(rec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(mgr.FlushTo(a->end).ok());
  auto back = mgr.ReadRecord(a->lsn);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->txn, 1u);
  EXPECT_EQ(back->page, 10u);
  EXPECT_EQ(back->lsn, a->lsn);
  EXPECT_EQ(mgr.stats().records.load(), 1u);
}

TEST(LogManagerTest, ScanVisitsRecordsInOrder) {
  LogStorage storage;
  LogManager mgr(&storage, LogOptions{});
  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(mgr.Append(MakeUpdate(i, i * 2, 0, {}, {9})).ok());
  }
  ASSERT_TRUE(mgr.FlushAll().ok());
  std::vector<TxnId> seen;
  Lsn last_end{0};
  ASSERT_TRUE(mgr.Scan([&](const LogRecord& rec, Lsn end) {
                  seen.push_back(rec.txn);
                  EXPECT_GT(end.value, rec.lsn.value);
                  EXPECT_GE(rec.lsn.value, last_end.value);
                  last_end = end;
                  return Status::Ok();
                }).ok());
  ASSERT_EQ(seen.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(seen[i], static_cast<TxnId>(i + 1));
}

TEST(LogManagerTest, UnflushedTailIsLostOnCrash) {
  LogStorage storage;
  std::vector<TxnId> seen;
  {
    LogManager mgr(&storage, LogOptions{});
    auto a1 = mgr.Append(MakeUpdate(1, 1, 0, {}, {1}));
    ASSERT_TRUE(a1.ok());
    ASSERT_TRUE(mgr.FlushTo(a1->end).ok());
    // Appended but never flushed: a crash forgets it.
    ASSERT_TRUE(mgr.Append(MakeUpdate(2, 2, 0, {}, {2})).ok());
  }
  // "Restart": a fresh manager attached to the same storage.
  LogManager recovered(&storage, LogOptions{});
  ASSERT_TRUE(recovered.Scan([&](const LogRecord& rec, Lsn) {
                  seen.push_back(rec.txn);
                  return Status::Ok();
                }).ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 1u);
}

TEST(LogManagerTest, ClrCountsAsCompensation) {
  LogStorage storage;
  LogManager mgr(&storage, LogOptions{});
  LogRecord clr;
  clr.type = LogRecordType::kClr;
  clr.txn = 3;
  clr.undo_next = Lsn{1};
  ASSERT_TRUE(mgr.AppendClr(clr).ok());
  EXPECT_EQ(mgr.stats().compensations.load(), 1u);
}

TEST(LogManagerTest, ReadRecordValidatesLengthPrefix) {
  LogStorage storage;
  LogManager mgr(&storage, LogOptions{});
  // A record beyond the durable end is Corruption, not a bogus read.
  EXPECT_EQ(mgr.ReadRecord(Lsn{1}).status().code(), StatusCode::kCorruption);

  // Garbage bytes whose length prefix is absurdly large: the prefix must
  // be validated against the durable size before any read is attempted.
  std::vector<uint8_t> garbage(64, 0xFF);
  ASSERT_TRUE(storage.Append(garbage).ok());
  EXPECT_EQ(mgr.ReadRecord(Lsn{1}).status().code(), StatusCode::kCorruption);

  // A prefix smaller than any valid record (here: 2) is equally rejected.
  LogStorage tiny_storage;
  LogManager tiny_mgr(&tiny_storage, LogOptions{});
  std::vector<uint8_t> tiny(64, 0);
  tiny[0] = 2;
  ASSERT_TRUE(tiny_storage.Append(tiny).ok());
  EXPECT_EQ(tiny_mgr.ReadRecord(Lsn{1}).status().code(),
            StatusCode::kCorruption);

  // A truncated-but-plausible prefix (record extends past durable end).
  LogStorage torn_storage;
  LogManager torn_mgr(&torn_storage, LogOptions{});
  std::vector<uint8_t> torn(8, 0);
  uint32_t claims = 1 << 20;
  std::memcpy(torn.data(), &claims, 4);
  ASSERT_TRUE(torn_storage.Append(torn).ok());
  EXPECT_EQ(torn_mgr.ReadRecord(Lsn{1}).status().code(),
            StatusCode::kCorruption);
}

TEST(LogManagerTest, PipelineSubmitThenWaitBecomesDurable) {
  LogStorage storage;
  LogManager mgr(&storage, LogOptions{});
  auto a = mgr.Append(MakeUpdate(1, 1, 0, {}, {1}));
  ASSERT_TRUE(a.ok());
  EXPECT_FALSE(mgr.IsDurable(a->end));
  mgr.SubmitFlush(a->end);
  ASSERT_TRUE(mgr.WaitDurable(a->end).ok());
  EXPECT_TRUE(mgr.IsDurable(a->end));
  EXPECT_GE(mgr.stats().group_batches.load(), 1u);
}

TEST(LogManagerTest, PipelineWaitWithoutSubmitSelfSubmits) {
  LogStorage storage;
  LogManager mgr(&storage, LogOptions{});
  auto a = mgr.Append(MakeUpdate(1, 1, 0, {}, {2}));
  ASSERT_TRUE(a.ok());
  // Wait alone must not hang: it registers the target itself.
  ASSERT_TRUE(mgr.WaitDurable(a->end).ok());
  EXPECT_TRUE(mgr.IsDurable(a->end));
}

TEST(LogManagerTest, PipelineDrainsSubmittedTargetsOnDestruction) {
  LogStorage storage;
  {
    LogManager mgr(&storage, LogOptions{});
    auto a = mgr.Append(MakeUpdate(7, 1, 0, {}, {3}));
    ASSERT_TRUE(a.ok());
    mgr.SubmitFlush(a->end);
    // Destroyed without waiting: the final drain must cover the submit.
  }
  ASSERT_GT(storage.size(), 0u);
  std::vector<TxnId> seen;
  LogManager recovered(&storage, LogOptions{});
  ASSERT_TRUE(recovered.Scan([&](const LogRecord& rec, Lsn) {
                  seen.push_back(rec.txn);
                  return Status::Ok();
                }).ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 7u);
}

TEST(LogManagerTest, AbandonedPipelineLosesUnflushedSubmits) {
  LogStorage storage;
  {
    LogManager mgr(&storage, LogOptions{});
    auto a1 = mgr.Append(MakeUpdate(1, 1, 0, {}, {1}));
    ASSERT_TRUE(a1.ok());
    ASSERT_TRUE(mgr.FlushTo(a1->end).ok());
    // Abandon *before* submitting, so the daemon never has work: the
    // submitted-but-undrained record must be lost at destruction, exactly
    // like a power failure.
    mgr.Abandon();
    auto a2 = mgr.Append(MakeUpdate(2, 2, 0, {}, {2}));
    ASSERT_TRUE(a2.ok());
  }
  std::vector<TxnId> seen;
  LogManager recovered(&storage, LogOptions{});
  ASSERT_TRUE(recovered.Scan([&](const LogRecord& rec, Lsn) {
                  seen.push_back(rec.txn);
                  return Status::Ok();
                }).ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 1u);
}

TEST(LogManagerTest, FlushDaemonEventuallyFlushes) {
  LogStorage storage;
  LogOptions opts;
  opts.flush_daemon = true;
  opts.flush_interval_us = 200;
  LogManager mgr(&storage, opts);
  auto a = mgr.Append(MakeUpdate(1, 1, 0, {}, {1}));
  ASSERT_TRUE(a.ok());
  for (int i = 0; i < 500 && mgr.durable_lsn() < a->end; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(mgr.durable_lsn().value, a->end.value);
}

TEST(LogManagerTest, GroupCommitAmortizesFlushCalls) {
  // With 4 committers and a slow log device, the group-commit flush path
  // should need far fewer storage appends than commits.
  LogStorage storage(/*append_latency_ns=*/200'000);
  LogOptions opts;
  opts.buffer_kind = LogBufferKind::kConsolidated;
  LogManager mgr(&storage, opts);
  constexpr int kThreads = 4;
  constexpr int kCommits = 25;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kCommits; ++i) {
        auto a = mgr.Append(MakeUpdate(1, 1, 0, {}, {7}));
        ASSERT_TRUE(a.ok());
        ASSERT_TRUE(mgr.FlushTo(a->end).ok());
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_LT(storage.flush_calls(), kThreads * kCommits);
}

}  // namespace
}  // namespace shoremt::log
