#include <gtest/gtest.h>

#include <cstring>

#include "io/volume.h"
#include "log/log_storage.h"
#include "simcore/simulation.h"
#include "sm/session.h"
#include "sm/storage_manager.h"
#include "workload/driver.h"
#include "workload/engine_profiles.h"
#include "workload/insert_workload.h"
#include "workload/tpcc.h"

namespace shoremt::workload {
namespace {

struct Harness {
  io::MemVolume volume;
  log::LogStorage log;
  std::unique_ptr<sm::StorageManager> sm;
  std::unique_ptr<sm::Session> session;

  explicit Harness(sm::Stage stage = sm::Stage::kFinal) {
    auto opened = sm::StorageManager::Open(
        sm::StorageOptions::ForStage(stage), &volume, &log);
    EXPECT_TRUE(opened.ok());
    sm = std::move(*opened);
    session = sm->OpenSession();
  }

  /// Counts rows in [0, UINT64_MAX] via a cursor on `session`.
  uint64_t CountRows(const sm::TableInfo& table) {
    uint64_t rows = 0;
    auto cur = session->OpenCursor(table);
    for (auto st = cur.Seek(0); cur.Valid(); st = cur.Next()) {
      EXPECT_TRUE(st.ok());
      ++rows;
    }
    return rows;
  }
};

TEST(DriverTest, CountsTransactionsAndLatency) {
  auto r = RunDriver(2, 10, 60, [](int, Rng& rng) {
    volatile uint64_t x = 0;
    for (int i = 0; i < 100; ++i) x += rng.Next();
    return true;
  });
  EXPECT_GT(r.txns, 0u);
  EXPECT_GT(r.tps, 0.0);
  EXPECT_EQ(r.latency.count(), r.txns);
  EXPECT_NEAR(r.tps_per_thread * 2, r.tps, r.tps * 0.01);
}

TEST(DriverTest, AbortsCountedSeparately) {
  auto r = RunDriver(1, 5, 40, [](int, Rng& rng) {
    return rng.Bernoulli(0.5);
  });
  EXPECT_GT(r.aborts, 0u);
  EXPECT_GT(r.txns, 0u);
}

TEST(InsertBenchTest, InsertsLandInPrivateTables) {
  Harness h;
  InsertBenchConfig cfg;
  cfg.clients = 2;
  cfg.records_per_commit = 50;
  cfg.warmup_ms = 20;
  cfg.duration_ms = 120;
  auto state = SetupInsertBench(h.sm.get(), cfg);
  ASSERT_TRUE(state.ok());
  auto r = RunInsertBench(cfg, &*state);
  EXPECT_GT(r.txns, 0u) << "at least one 50-record commit per run";
  // All inserted keys are readable through a cursor.
  ASSERT_TRUE(h.session->Begin().ok());
  for (int c = 0; c < cfg.clients; ++c) {
    EXPECT_GE(h.CountRows(state->tables[c]),
              static_cast<uint64_t>(r.txns) /
                  static_cast<uint64_t>(cfg.clients) *
                  cfg.records_per_commit / 2);
  }
  ASSERT_TRUE(h.session->Commit().ok());
}

TEST(InsertBenchTest, SessionStatsAccountForBatchedInserts) {
  Harness h;
  InsertBenchConfig cfg;
  cfg.clients = 2;
  cfg.records_per_commit = 25;
  cfg.warmup_ms = 10;
  cfg.duration_ms = 80;
  auto state = SetupInsertBench(h.sm.get(), cfg);
  ASSERT_TRUE(state.ok());
  auto r = RunInsertBench(cfg, &*state);
  ASSERT_GT(r.txns, 0u);
  // Harvest all bench sessions; the aggregate must cover every committed
  // batch (warmup batches also count — hence GE) and carry log bytes.
  for (auto& s : state->sessions) s->Harvest();
  sm::SessionStats agg = h.sm->harvested_session_stats();
  EXPECT_GE(agg.batches, r.txns);
  EXPECT_GE(agg.inserts, r.txns * cfg.records_per_commit);
  EXPECT_GT(agg.log_bytes, 0u);
}

class TpccTest : public ::testing::Test {
 protected:
  TpccTest() : h_() {
    TpccConfig cfg;
    cfg.warehouses = 2;
    cfg.districts_per_warehouse = 2;
    cfg.customers_per_district = 30;
    cfg.items = 100;
    auto db = LoadTpcc(h_.session.get(), cfg);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    db_ = *db;
  }

  template <typename T>
  T ReadAs(const sm::TableInfo& table, uint64_t key) {
    auto row = ReadTpccRow<T>(h_.session.get(), table, key);
    EXPECT_TRUE(row.ok()) << row.status().ToString();
    return row.ValueOr(T{});
  }

  Harness h_;
  TpccDatabase db_;
};

TEST_F(TpccTest, LoadPopulatesAllTables) {
  auto* session = h_.session.get();
  ASSERT_TRUE(session->Begin().ok());
  WarehouseRow wr = ReadAs<WarehouseRow>(db_.warehouse, WarehouseKey(1));
  EXPECT_DOUBLE_EQ(wr.ytd, 0.0);
  EXPECT_TRUE(session->Read(db_.district, DistrictKey(2, 2)).ok());
  EXPECT_TRUE(session->Read(db_.customer, CustomerKey(2, 2, 30)).ok());
  EXPECT_TRUE(session->Read(db_.item, ItemKey(100)).ok());
  EXPECT_TRUE(session->Read(db_.stock, StockKey(2, 100)).ok());
  EXPECT_TRUE(session->Read(db_.customer, CustomerKey(3, 1, 1))
                  .status()
                  .IsNotFound());
  ASSERT_TRUE(session->Commit().ok());
}

TEST_F(TpccTest, PaymentMovesMoney) {
  int committed = 0;
  for (int i = 0; i < 20; ++i) {
    committed += RunPayment(h_.session.get(), &db_, 1) ? 1 : 0;
  }
  EXPECT_GT(committed, 0);
  ASSERT_TRUE(h_.session->Begin().ok());
  WarehouseRow wr = ReadAs<WarehouseRow>(db_.warehouse, WarehouseKey(1));
  EXPECT_GT(wr.ytd, 0.0) << "warehouse YTD must reflect payments";
  // History rows were inserted (count via cursor).
  EXPECT_EQ(h_.CountRows(db_.history), static_cast<uint64_t>(committed));
  ASSERT_TRUE(h_.session->Commit().ok());
}

TEST_F(TpccTest, IntentLocksServedFromPrivateCache) {
  // TPC-C transactions touch several rows per table: every row after the
  // first re-requests the same volume/store intention locks, which the
  // transaction-private lock cache must absorb without touching the
  // shared table (the ISSUE-3 acceptance check).
  int committed = 0;
  for (int i = 0; i < 10; ++i) {
    committed += RunPayment(h_.session.get(), &db_, 1) ? 1 : 0;
    committed += RunNewOrder(h_.session.get(), &db_, 1) ? 1 : 0;
  }
  ASSERT_GT(committed, 0);
  h_.session->Harvest();
  sm::SessionStats agg = h_.sm->harvested_session_stats();
  EXPECT_GT(agg.lock_cache_hits, 0u)
      << "intention re-grants must be served from the private cache";
}

TEST_F(TpccTest, NewOrderCreatesOrderAndLines) {
  int committed = 0;
  for (int i = 0; i < 10; ++i) {
    committed += RunNewOrder(h_.session.get(), &db_, 1) ? 1 : 0;
  }
  ASSERT_GT(committed, 0);
  ASSERT_TRUE(h_.session->Begin().ok());
  uint64_t orders = h_.CountRows(db_.orders);
  uint64_t lines = h_.CountRows(db_.order_line);
  EXPECT_EQ(orders, static_cast<uint64_t>(committed));
  EXPECT_GE(lines, orders * 5);
  EXPECT_LE(lines, orders * 15);
  ASSERT_TRUE(h_.session->Commit().ok());
}

TEST_F(TpccTest, ConcurrentPaymentsStayConsistent) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 15;
  std::vector<std::thread> workers;
  std::atomic<int> committed{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // One session per worker thread — the API's intended shape.
      auto session = h_.sm->OpenSession();
      for (int i = 0; i < kPerThread; ++i) {
        if (RunPayment(session.get(), &db_, 1 + t % 2)) {
          committed.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_GT(committed.load(), 0);
  // Money conservation: sum of warehouse YTD equals committed payments'
  // total, which equals the history table's amounts.
  auto* session = h_.session.get();
  ASSERT_TRUE(session->Begin().ok());
  double wh_ytd = 0;
  for (uint32_t w = 1; w <= db_.config.warehouses; ++w) {
    wh_ytd += ReadAs<WarehouseRow>(db_.warehouse, WarehouseKey(w)).ytd;
  }
  double hist_total = 0;
  uint64_t hist_rows = 0;
  auto cur = session->OpenCursor(db_.history);
  for (auto st = cur.Seek(0); cur.Valid(); st = cur.Next()) {
    ASSERT_TRUE(st.ok());
    HistoryRow hr;
    ASSERT_EQ(cur.value().size(), sizeof(hr));
    std::memcpy(&hr, cur.value().data(), sizeof(hr));
    hist_total += hr.amount;
    ++hist_rows;
  }
  EXPECT_EQ(hist_rows, static_cast<uint64_t>(committed.load()));
  EXPECT_NEAR(wh_ytd, hist_total, 1e-6)
      << "aborted payments must not leak partial updates";
  ASSERT_TRUE(session->Commit().ok());
}

TEST_F(TpccTest, NewOrderIdsAreDense) {
  for (int i = 0; i < 8; ++i) (void)RunNewOrder(h_.session.get(), &db_, 1);
  // For each district, next_o_id - 1 == number of orders with that
  // district prefix.
  auto* session = h_.session.get();
  ASSERT_TRUE(session->Begin().ok());
  for (uint32_t d = 1; d <= db_.config.districts_per_warehouse; ++d) {
    DistrictRow dr = ReadAs<DistrictRow>(db_.district, DistrictKey(1, d));
    uint64_t orders = 0;
    auto cur = session->OpenCursor(db_.orders);
    for (auto st = cur.Seek(OrderKey(1, d, 0));
         cur.Valid() && cur.key() <= OrderKey(1, d, 9999999);
         st = cur.Next()) {
      ASSERT_TRUE(st.ok());
      ++orders;
    }
    EXPECT_EQ(orders, dr.next_o_id - 1) << "district " << d;
  }
  ASSERT_TRUE(session->Commit().ok());
}

// ------------------------------------------------------ engine profiles ---

simcore::SimResult RunProfile(const WorkloadModel& model, int threads,
                              uint64_t window_ns = 80'000'000) {
  simcore::Simulation sim(simcore::MachineConfig{});
  BuildModel(&sim, threads, model);
  return sim.Run(window_ns, window_ns / 5);
}

TEST(EngineProfileTest, AllEnginesProduceThroughput) {
  Calibration c;
  c.records_per_txn = 20;  // Keep test sims small.
  for (auto e : {EngineKind::kShore, EngineKind::kBdb, EngineKind::kMysql,
                 EngineKind::kPostgres, EngineKind::kDbmsX,
                 EngineKind::kShoreMt}) {
    auto model = InsertMicroModel(e, sm::Stage::kFinal, c);
    auto r = RunProfile(model, 4);
    EXPECT_GT(r.tps, 0.0) << EngineName(e);
  }
}

TEST(EngineProfileTest, ShoreIsFlatShoreMtScales) {
  Calibration c;
  c.records_per_txn = 20;
  auto run = [&](EngineKind e, int threads) {
    return RunProfile(InsertMicroModel(e, sm::Stage::kFinal, c), threads).tps;
  };
  double shore_1 = run(EngineKind::kShore, 1);
  double shore_16 = run(EngineKind::kShore, 16);
  EXPECT_LT(shore_16, shore_1 * 1.6) << "original Shore must not scale";
  double smt_1 = run(EngineKind::kShoreMt, 1);
  double smt_16 = run(EngineKind::kShoreMt, 16);
  EXPECT_GT(smt_16, smt_1 * 5.0) << "Shore-MT must scale with threads";
}

TEST(EngineProfileTest, BdbCollapsesUnderContention) {
  Calibration c;
  c.records_per_txn = 20;
  auto run = [&](int threads) {
    return RunProfile(InsertMicroModel(EngineKind::kBdb, sm::Stage::kFinal, c),
                      threads)
        .tps;
  };
  double t4 = run(4);
  double t32 = run(32);
  EXPECT_LT(t32, t4) << "BDB's TATAS storm must reduce throughput at scale";
}

TEST(EngineProfileTest, StagesImproveMonotonically) {
  Calibration c;
  c.records_per_txn = 20;
  double prev = 0.0;
  for (sm::Stage stage : sm::kAllStages) {
    auto model = InsertMicroModel(EngineKind::kShoreMt, stage, c);
    double tps = RunProfile(model, 32).tps;
    EXPECT_GT(tps, prev * 0.95) << "stage " << sm::StageName(stage)
                                << " must not regress at 32 threads";
    if (tps > prev) prev = tps;
  }
  // Final beats baseline by a large factor.
  double base =
      RunProfile(InsertMicroModel(EngineKind::kShoreMt, sm::Stage::kBaseline,
                                  c),
                 32)
          .tps;
  double final_tps =
      RunProfile(InsertMicroModel(EngineKind::kShoreMt, sm::Stage::kFinal, c),
                 32)
          .tps;
  EXPECT_GT(final_tps, base * 8.0);
}

TEST(EngineProfileTest, TpccNewOrderDipsPaymentScales) {
  Calibration c;
  auto run = [&](bool new_order, int threads) {
    auto model = TpccModel(EngineKind::kShoreMt, new_order,
                           /*warehouses=*/threads, c);
    return RunProfile(model, threads, 200'000'000).tps;
  };
  // Payment: per-client throughput declines only via SMT sharing (the
  // paper's log-scale Figure 5 right shows the same gentle slope).
  double pay_8 = run(false, 8) / 8;
  double pay_32 = run(false, 32) / 32;
  EXPECT_GT(pay_32, pay_8 * 0.33);
  // New Order: shared STOCK contention bites between 16 and 32.
  double no_8 = run(true, 8) / 8;
  double no_32 = run(true, 32) / 32;
  EXPECT_LT(no_32 / no_8, pay_32 / pay_8 * 1.1)
      << "New Order must lose more per-client throughput than Payment";
}

}  // namespace
}  // namespace shoremt::workload
