/// Tests for the log-shipping replication subsystem (src/repl): segment
/// archiving on Recycle, point-in-time restore from the archive,
/// streamed segments + tail deltas over loopback sockets, commit-gated
/// partitioned parallel redo with a published replayed-LSN horizon,
/// torn-shipment detection/re-request, replica promotion, and the
/// bounded-executor dispatch of OnDurable closures.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <functional>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "io/volume.h"
#include "log/log_manager.h"
#include "log/log_record.h"
#include "log/log_storage.h"
#include "obs/metrics.h"
#include "page/page.h"
#include "repl/archive.h"
#include "repl/framing.h"
#include "repl/replay_pool.h"
#include "repl/replica.h"
#include "repl/shipper.h"
#include "sm/options.h"
#include "sm/session.h"
#include "sm/storage_manager.h"

namespace shoremt {
namespace {

using log::LogManager;
using log::LogOptions;
using log::LogRecord;
using log::LogRecordType;
using log::LogStorage;

// ------------------------------------------------------------- helpers ----

/// Creates (and later removes) a throwaway archive directory under cwd.
class TempDir {
 public:
  TempDir() {
    char tmpl[] = "./repl_test.XXXXXX";
    char* d = ::mkdtemp(tmpl);
    EXPECT_NE(d, nullptr);
    if (d != nullptr) path_ = d;
  }
  ~TempDir() {
    if (!path_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);
    }
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

sm::StorageOptions EngineOptions(size_t segment_bytes) {
  sm::StorageOptions o = sm::StorageOptions::ForStage(sm::Stage::kFinal);
  o.log.segment_bytes = segment_bytes;
  o.buffer.enable_cleaner = false;
  o.checkpoint_daemon = false;
  return o;
}

std::vector<uint8_t> Row(uint64_t key) {
  std::vector<uint8_t> payload(64);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(key * 7 + i);
  }
  return payload;
}

/// Loopback pair: primary engine + shipper on one end, replica on the
/// other. The sockets are closed by the destructor (after both sides
/// stopped using them).
struct Loopback {
  int fds[2] = {-1, -1};
  Loopback() { EXPECT_TRUE(repl::MakeSocketPair(fds).ok()); }
  ~Loopback() {
    if (fds[0] >= 0) ::close(fds[0]);
    if (fds[1] >= 0) ::close(fds[1]);
  }
};

// ------------------------------------------------------------- archive ----

TEST(ArchiveTest, RecycleArchivesSegmentsAndManifestRoundTrips) {
  TempDir dir;
  LogStorage storage(0, /*segment_bytes=*/64);
  storage.set_archive_dir(dir.path());
  std::vector<uint8_t> all;
  for (uint8_t round = 0; round < 10; ++round) {
    std::vector<uint8_t> rec(40, round);
    ASSERT_TRUE(storage.Append(rec).ok());
    all.insert(all.end(), rec.begin(), rec.end());
  }
  // 400 bytes over 64-byte segments: 6 sealed + an open tail.
  ASSERT_EQ(storage.size(), 400u);
  // Recycle below offset 384 (Lsn 385): frees — and archives — exactly
  // the 6 sealed segments.
  EXPECT_EQ(storage.Recycle(Lsn{385}), 6u);
  EXPECT_EQ(storage.segments_archived(), 6u);

  auto archive = repl::LogArchive::Open(dir.path());
  ASSERT_TRUE(archive.ok()) << archive.status().ToString();
  ASSERT_EQ(archive->segments().size(), 6u);
  EXPECT_EQ(archive->base_offset(), 0u);
  EXPECT_EQ(archive->end_offset(), 384u);
  for (size_t i = 0; i < archive->segments().size(); ++i) {
    EXPECT_EQ(archive->segments()[i].base, i * 64);
    EXPECT_EQ(archive->segments()[i].length, 64u);
    EXPECT_EQ(archive->segments()[i].capacity, 64u);
  }
  // Archived bytes are exactly what was appended, including reads that
  // span archive files.
  std::vector<uint8_t> got;
  ASSERT_TRUE(archive->Read(0, 384, &got).ok());
  EXPECT_TRUE(std::equal(got.begin(), got.end(), all.begin()));
  ASSERT_TRUE(archive->Read(60, 10, &got).ok());
  EXPECT_EQ(got, std::vector<uint8_t>(all.begin() + 60, all.begin() + 70));
  // Below-archive range is an error, not garbage.
  EXPECT_FALSE(archive->Read(380, 10, &got).ok());
}

TEST(ArchiveTest, RestoreToLsnReconstructsMidRunState) {
  TempDir dir;
  io::MemVolume volume;
  LogStorage wal(0, 4096);
  sm::StorageOptions o = EngineOptions(4096);
  o.log.archive_dir = dir.path();

  std::map<uint64_t, std::vector<uint8_t>> at_target;
  Lsn target;
  {
    auto db = std::move(*sm::StorageManager::Open(o, &volume, &wal));
    auto session = db->OpenSession();
    ASSERT_TRUE(session->Begin().ok());
    auto table = session->CreateTable("t");
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(session->Commit().ok());
    for (int round = 0; round < 30; ++round) {
      ASSERT_TRUE(session->Begin().ok());
      for (int i = 0; i < 20; ++i) {
        uint64_t key = static_cast<uint64_t>(round) * 20 + i;
        ASSERT_TRUE(session->Insert(*table, key, Row(key)).ok());
      }
      ASSERT_TRUE(session->Commit().ok());
      if (round == 14) {
        // Mid-run restore point: everything committed so far.
        target = db->log()->durable_lsn();
        for (uint64_t k = 0; k < 15 * 20; ++k) at_target[k] = Row(k);
      }
      if (round % 5 == 4) {
        ASSERT_TRUE(db->pool()->CleanerPass(0).ok());
        ASSERT_TRUE(db->Checkpoint().ok());
      }
    }
    // The run recycled — and therefore archived — segments, including
    // some holding pre-target records.
    EXPECT_GT(wal.segments_archived(), 0u);
  }

  auto restored =
      repl::RestoreToLsn(dir.path(), &wal, target, EngineOptions(4096));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  auto session = (*restored)->sm->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  auto table = session->OpenTable("t");
  ASSERT_TRUE(table.ok());
  // Exactly the pre-target committed state: rows 0..299 present with
  // their payloads, everything written after the target absent.
  for (const auto& [key, payload] : at_target) {
    auto got = session->Read(*table, key);
    ASSERT_TRUE(got.ok()) << "key " << key << ": " << got.status().ToString();
    EXPECT_TRUE(std::equal(got->begin(), got->end(), payload.begin()));
  }
  auto missing = session->Read(*table, 15 * 20);
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(session->Commit().ok());
}

// ------------------------------------------------- streaming + horizon ----

TEST(ReplTest, ReplicaServesCommittedPrefixAtHorizon) {
  Loopback net;
  io::MemVolume volume;
  LogStorage wal(0, 4096);
  auto db =
      std::move(*sm::StorageManager::Open(EngineOptions(4096), &volume, &wal));
  repl::SegmentShipper shipper(db->log(), net.fds[0]);
  shipper.RegisterMetrics(db->metrics());
  shipper.Start();

  io::MemVolume rvolume;
  LogStorage rwal(0, 4096);
  repl::Replica::Options ro;
  ro.storage = EngineOptions(4096);
  ro.replay_workers = 4;
  repl::Replica replica(&rvolume, &rwal, ro);
  ASSERT_TRUE(replica.Start(net.fds[1]).ok());
  replica.RegisterMetrics();

  auto session = db->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  auto table = session->CreateTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session->Commit().ok());
  constexpr uint64_t kRows = 200;
  for (uint64_t base = 0; base < kRows; base += 25) {
    ASSERT_TRUE(session->Begin().ok());
    for (uint64_t k = base; k < base + 25; ++k) {
      ASSERT_TRUE(session->Insert(*table, k, Row(k)).ok());
    }
    ASSERT_TRUE(session->Commit().ok());
  }
  // An in-flight transaction: its records are durable (flushed) but it
  // never commits — the replica must not serve its row.
  ASSERT_TRUE(session->Begin().ok());
  ASSERT_TRUE(session->Insert(*table, 9999, Row(9999)).ok());
  ASSERT_TRUE(db->log()->FlushAll().ok());

  uint64_t horizon = wal.size() + 1;  // durable LSN
  ASSERT_TRUE(replica.WaitReplayed(horizon, 10000))
      << "replayed " << replica.replayed_lsn() << " of " << horizon << ": "
      << replica.error().ToString();

  auto rsession = replica.sm()->OpenSession();
  ASSERT_TRUE(rsession->Begin().ok());
  auto rtable = rsession->OpenTable("t");
  ASSERT_TRUE(rtable.ok());
  for (uint64_t k = 0; k < kRows; ++k) {
    auto got = rsession->Read(*rtable, k);
    ASSERT_TRUE(got.ok()) << "key " << k << ": " << got.status().ToString();
    auto want = Row(k);
    ASSERT_EQ(got->size(), want.size());
    EXPECT_TRUE(std::equal(got->begin(), got->end(), want.begin()));
  }
  // The uncommitted row is gated in the dispatcher, never applied.
  EXPECT_FALSE(rsession->Read(*rtable, 9999).ok());
  ASSERT_TRUE(rsession->Commit().ok());
  rsession.reset();

  // Replication metrics flow through both registries as engine sources.
  obs::MetricsSnapshot rs = replica.sm()->metrics()->Snapshot();
  EXPECT_GT(rs[obs::Metric::kReplSegmentsApplied], 0u);
  EXPECT_GE(rs[obs::Metric::kReplBytesStreamed], wal.size());
  EXPECT_GT(rs[obs::Metric::kReplReplayBatches], 0u);
  obs::MetricsSnapshot ps = db->metrics()->Snapshot();
  EXPECT_GT(ps[obs::Metric::kReplSegmentsShipped], 0u);
  EXPECT_GE(ps[obs::Metric::kReplBytesStreamed], wal.size());

  session.reset();  // aborts the in-flight transaction
  replica.Stop();
  shipper.Stop();
  EXPECT_TRUE(shipper.status().ok()) << shipper.status().ToString();
  EXPECT_TRUE(replica.error().ok()) << replica.error().ToString();
}

// ------------------------------------------------------------ failover ----

TEST(ReplTest, FailoverPromoteServesExactlyCommittedPrefix) {
  Loopback net;
  io::MemVolume volume;
  LogStorage wal(0, 4096);
  auto db =
      std::move(*sm::StorageManager::Open(EngineOptions(4096), &volume, &wal));
  repl::SegmentShipper shipper(db->log(), net.fds[0]);
  shipper.Start();

  io::MemVolume rvolume;
  LogStorage rwal(0, 4096);
  repl::Replica::Options ro;
  ro.storage = EngineOptions(4096);
  auto replica = std::make_unique<repl::Replica>(&rvolume, &rwal, ro);
  ASSERT_TRUE(replica->Start(net.fds[1]).ok());

  auto session = db->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  auto table = session->CreateTable("t");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(session->Commit().ok());
  for (uint64_t base = 0; base < 100; base += 20) {
    ASSERT_TRUE(session->Begin().ok());
    for (uint64_t k = base; k < base + 20; ++k) {
      ASSERT_TRUE(session->Insert(*table, k, Row(k)).ok());
    }
    ASSERT_TRUE(session->Commit().ok());
  }
  // In-flight at the crash: durable log records, no commit.
  ASSERT_TRUE(session->Begin().ok());
  for (uint64_t k = 500; k < 510; ++k) {
    ASSERT_TRUE(session->Insert(*table, k, Row(k)).ok());
  }
  ASSERT_TRUE(db->log()->FlushAll().ok());
  uint64_t durable = wal.size() + 1;
  ASSERT_TRUE(replica->WaitReplayed(durable, 10000))
      << replica->error().ToString();

  // Primary dies: the socket closes, the replica sees EOF and promotes.
  session.reset();
  db->SimulateCrash();
  shipper.Stop();
  ASSERT_TRUE(replica->WaitStreamEnd(5000));
  ASSERT_TRUE(replica->Promote().ok()) << replica->error().ToString();
  ASSERT_TRUE(replica->promoted());

  {
    auto p = replica->sm()->OpenSession();
    ASSERT_TRUE(p->Begin().ok());
    auto ptable = p->OpenTable("t");
    ASSERT_TRUE(ptable.ok());
    // Exactly the committed prefix: all 100 committed rows, none of the
    // loser's (its index entries were undone by promotion's
    // structure-only undo pass).
    for (uint64_t k = 0; k < 100; ++k) {
      auto got = p->Read(*ptable, k);
      ASSERT_TRUE(got.ok()) << "key " << k << ": " << got.status().ToString();
      auto want = Row(k);
      EXPECT_TRUE(std::equal(got->begin(), got->end(), want.begin()));
    }
    for (uint64_t k = 500; k < 510; ++k) {
      EXPECT_EQ(p->Read(*ptable, k).status().code(), StatusCode::kNotFound);
    }
    ASSERT_TRUE(p->Commit().ok());
    // The promoted replica is a real primary: writable.
    ASSERT_TRUE(p->Begin().ok());
    ASSERT_TRUE(p->Insert(*ptable, 1000, Row(1000)).ok());
    ASSERT_TRUE(p->Commit().ok());
  }

  // And its log is a valid restart log: crash the promoted instance and
  // recover it the normal way.
  replica->sm()->SimulateCrash();
  replica.reset();
  auto reopened =
      sm::StorageManager::Open(EngineOptions(4096), &rvolume, &rwal);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto rs = (*reopened)->OpenSession();
  ASSERT_TRUE(rs->Begin().ok());
  auto rtable = rs->OpenTable("t");
  ASSERT_TRUE(rtable.ok());
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(rs->Read(*rtable, k).ok()) << "key " << k;
  }
  ASSERT_TRUE(rs->Read(*rtable, 1000).ok());
  EXPECT_EQ(rs->Read(*rtable, 505).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(rs->Commit().ok());
}

// -------------------------------------------- parallel redo equivalence ----

/// Feeds every redo-able record of `stream` to `apply` in log order;
/// metadata goes straight to the manager.
void ForEachRecord(
    const std::vector<uint8_t>& stream, sm::StorageManager* sm,
    const std::function<void(LogRecord, Lsn)>& apply) {
  uint64_t pos = 0;
  while (pos + 4 <= stream.size()) {
    LogRecord rec;
    size_t consumed;
    std::span<const uint8_t> rest(stream.data() + pos, stream.size() - pos);
    ASSERT_TRUE(log::DeserializeLogRecord(rest, &rec, &consumed).ok());
    rec.lsn = Lsn{pos + 1};
    Lsn end{pos + consumed + 1};
    switch (rec.type) {
      case LogRecordType::kCheckpoint:
      case LogRecordType::kCreateStore:
      case LogRecordType::kAllocPage:
      case LogRecordType::kCatalog:
        ASSERT_TRUE(sm->ApplyMetadata(rec).ok());
        break;
      case LogRecordType::kCommit:
      case LogRecordType::kAbort:
      case LogRecordType::kNoop:
        break;
      default:
        apply(std::move(rec), end);
        break;
    }
    pos += consumed;
  }
}

TEST(ReplTest, ParallelStrictRedoByteIdenticalToSequentialRedo) {
  // A workload with page reuse, updates, deletes and aborted transactions
  // (CLRs), spread over enough pages to give 4 partitions real work.
  io::MemVolume volume;
  LogStorage wal(0, 1 << 20);
  {
    auto db = std::move(
        *sm::StorageManager::Open(EngineOptions(1 << 20), &volume, &wal));
    auto session = db->OpenSession();
    ASSERT_TRUE(session->Begin().ok());
    auto table = session->CreateTable("t");
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(session->Commit().ok());
    for (uint64_t base = 0; base < 300; base += 30) {
      ASSERT_TRUE(session->Begin().ok());
      for (uint64_t k = base; k < base + 30; ++k) {
        ASSERT_TRUE(session->Insert(*table, k, Row(k)).ok());
      }
      ASSERT_TRUE(session->Commit().ok());
    }
    ASSERT_TRUE(session->Begin().ok());
    for (uint64_t k = 0; k < 300; k += 3) {
      ASSERT_TRUE(session->Update(*table, k, Row(k + 1)).ok());
    }
    for (uint64_t k = 0; k < 300; k += 7) {
      ASSERT_TRUE(session->Delete(*table, k).ok());
    }
    ASSERT_TRUE(session->Commit().ok());
    // Aborts leave CLRs in the stream.
    ASSERT_TRUE(session->Begin().ok());
    for (uint64_t k = 400; k < 420; ++k) {
      ASSERT_TRUE(session->Insert(*table, k, Row(k)).ok());
    }
    ASSERT_TRUE(session->Abort().ok());
    ASSERT_TRUE(db->log()->FlushAll().ok());
    db->SimulateCrash();  // leave the volume out of it: redo does the work
  }
  std::vector<uint8_t> stream = wal.Snapshot();

  // Two fresh instances replay the identical stream: one sequentially,
  // one through a 4-way strict partitioned pool.
  auto replay = [&](bool parallel, io::MemVolume* v) {
    LogStorage w(0, 1 << 20);
    ASSERT_TRUE(w.Append(stream).ok());
    sm::StorageOptions o = EngineOptions(1 << 20);
    o.open_mode = sm::OpenMode::kReplicaAttach;
    auto sm = std::move(*sm::StorageManager::Open(o, v, &w));
    if (parallel) {
      repl::ReplayPool pool(sm.get(), 4, repl::ReplayPool::Mode::kStrict);
      ForEachRecord(stream, sm.get(), [&](LogRecord rec, Lsn end) {
        pool.Dispatch(std::move(rec), end);
      });
      ASSERT_TRUE(pool.Drain().ok()) << pool.error().ToString();
      EXPECT_GT(pool.batches(), 0u);
    } else {
      ForEachRecord(stream, sm.get(), [&](LogRecord rec, Lsn end) {
        ASSERT_TRUE(sm->ApplyRedo(rec, end, /*force=*/false).ok());
      });
    }
    ASSERT_TRUE(sm->Shutdown().ok());  // flush every page to the volume
  };
  io::MemVolume seq_vol, par_vol;
  replay(false, &seq_vol);
  replay(true, &par_vol);

  ASSERT_EQ(seq_vol.NumPages(), par_vol.NumPages());
  std::vector<uint8_t> a(kPageSize), b(kPageSize);
  for (PageNum p = 0; p < seq_vol.NumPages(); ++p) {
    ASSERT_TRUE(seq_vol.ReadPage(p, a.data()).ok());
    ASSERT_TRUE(par_vol.ReadPage(p, b.data()).ok());
    ASSERT_EQ(std::memcmp(a.data(), b.data(), kPageSize), 0)
        << "page " << p << " diverged";
  }
}

// ------------------------------------------------------- torn shipment ----

TEST(ReplTest, TornSegmentFrameDetectedAndReRequested) {
  // Build a primary log with at least one sealed segment.
  io::MemVolume volume;
  LogStorage wal(0, 2048);
  std::map<uint64_t, std::vector<uint8_t>> committed;
  {
    auto db = std::move(
        *sm::StorageManager::Open(EngineOptions(2048), &volume, &wal));
    auto session = db->OpenSession();
    ASSERT_TRUE(session->Begin().ok());
    auto table = session->CreateTable("t");
    ASSERT_TRUE(table.ok());
    for (uint64_t k = 0; k < 30; ++k) {
      ASSERT_TRUE(session->Insert(*table, k, Row(k)).ok());
      committed[k] = Row(k);
    }
    ASSERT_TRUE(session->Commit().ok());
    session.reset();
    db->SimulateCrash();  // keep the log; the replica will do the applying
  }
  ASSERT_GT(wal.size(), 2048u) << "need a sealed segment for this test";

  Loopback net;
  io::MemVolume rvolume;
  LogStorage rwal(0, 2048);
  repl::Replica::Options ro;
  ro.storage = EngineOptions(2048);
  repl::Replica replica(&rvolume, &rwal, ro);
  ASSERT_TRUE(replica.Start(net.fds[1]).ok());

  // Play a faulty shipper by hand on the primary side of the socket.
  int fd = net.fds[0];
  repl::Frame hello;
  ASSERT_TRUE(repl::ReadFrame(fd, &hello).ok());
  ASSERT_EQ(hello.type, repl::FrameType::kHello);
  size_t pos = 0;
  uint64_t next = 1;
  ASSERT_TRUE(repl::GetU64(hello.payload, &pos, &next));
  ASSERT_EQ(next, 0u);

  std::vector<uint8_t> seg;
  ASSERT_TRUE(wal.Read(0, 2048, &seg).ok());
  // Torn shipment: the frame itself is well-formed, but its payload stops
  // 1000 bytes short of the sealed-segment geometry it claims.
  {
    uint64_t head[3] = {0, 0, 2048};
    std::span<const uint8_t> torn(seg.data(), 2048 - 1000);
    ASSERT_TRUE(
        repl::WriteFrame(fd, repl::FrameType::kSegment, head, torn).ok());
  }
  // The replica detects the mismatch and re-requests from its true
  // position (nothing was appended, so offset 0).
  repl::Frame resend;
  ASSERT_TRUE(repl::ReadFrame(fd, &resend).ok());
  ASSERT_EQ(resend.type, repl::FrameType::kResend);
  pos = 0;
  uint64_t from = 99;
  ASSERT_TRUE(repl::GetU64(resend.payload, &pos, &from));
  EXPECT_EQ(from, 0u);

  // Re-ship correctly: the whole sealed segment, then the tail.
  {
    uint64_t head[3] = {0, 0, 2048};
    ASSERT_TRUE(
        repl::WriteFrame(fd, repl::FrameType::kSegment, head, seg).ok());
  }
  std::vector<uint8_t> tail;
  ASSERT_TRUE(wal.Read(2048, wal.size() - 2048, &tail).ok());
  {
    uint64_t head[1] = {2048};
    ASSERT_TRUE(
        repl::WriteFrame(fd, repl::FrameType::kTailDelta, head, tail).ok());
  }
  ASSERT_TRUE(replica.WaitReplayed(wal.size() + 1, 10000))
      << replica.error().ToString();
  EXPECT_EQ(replica.received_bytes(), wal.size());

  auto rsession = replica.sm()->OpenSession();
  ASSERT_TRUE(rsession->Begin().ok());
  auto rtable = rsession->OpenTable("t");
  ASSERT_TRUE(rtable.ok());
  for (const auto& [key, payload] : committed) {
    auto got = rsession->Read(*rtable, key);
    ASSERT_TRUE(got.ok()) << "key " << key;
    EXPECT_TRUE(std::equal(got->begin(), got->end(), payload.begin()));
  }
  ASSERT_TRUE(rsession->Commit().ok());
  rsession.reset();
  replica.Stop();
}

// ------------------------------------- OnDurable bounded executor pool ----

TEST(DurableCallbackExecutorTest, SlowCallbackDoesNotStallGroupCommit) {
  LogStorage storage;
  LogManager mgr(&storage, LogOptions{});

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<bool> slow_entered{false};
  std::atomic<bool> slow_done{false};

  LogRecord rec;
  rec.type = LogRecordType::kPageUpdate;
  rec.txn = 1;
  rec.page = 1;
  rec.after = {1, 2, 3};
  auto a1 = mgr.Append(rec);
  ASSERT_TRUE(a1.ok());
  mgr.OnDurable(a1->end, [&](Status st) {
    EXPECT_TRUE(st.ok());
    slow_entered.store(true, std::memory_order_release);
    std::unique_lock<std::mutex> lk(gate_mutex);
    gate_cv.wait(lk, [&] { return gate_open; });
    slow_done.store(true, std::memory_order_release);
  });
  for (int i = 0; i < 5000 && !slow_entered.load(std::memory_order_acquire);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(slow_entered.load());

  // While the callback is parked, the flush daemon keeps committing:
  // durability advances well inside the callback's block window.
  auto t0 = std::chrono::steady_clock::now();
  auto a2 = mgr.Append(rec);
  ASSERT_TRUE(a2.ok());
  ASSERT_TRUE(mgr.FlushTo(a2->end).ok());
  EXPECT_TRUE(mgr.IsDurable(a2->end));
  // An already-durable registration still fires inline (pinned
  // contract), even with the executor's worker occupied.
  bool inline_fired = false;
  mgr.OnDurable(a2->end, [&](Status st) {
    EXPECT_TRUE(st.ok());
    inline_fired = true;
  });
  EXPECT_TRUE(inline_fired);
  auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            1000);
  EXPECT_FALSE(slow_done.load(std::memory_order_acquire));

  {
    std::lock_guard<std::mutex> lk(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
  for (int i = 0; i < 5000 && !slow_done.load(std::memory_order_acquire);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(slow_done.load());
}

TEST(DurableCallbackExecutorTest, MultipleWorkersRunBatchesConcurrently) {
  LogStorage storage;
  LogOptions opts;
  opts.durable_callback_threads = 2;
  LogManager mgr(&storage, opts);

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<bool> first_entered{false};
  std::atomic<bool> second_fired{false};

  LogRecord rec;
  rec.type = LogRecordType::kPageUpdate;
  rec.txn = 1;
  rec.page = 1;
  rec.after = {1};
  auto a1 = mgr.Append(rec);
  ASSERT_TRUE(a1.ok());
  mgr.OnDurable(a1->end, [&](Status) {
    first_entered.store(true, std::memory_order_release);
    std::unique_lock<std::mutex> lk(gate_mutex);
    gate_cv.wait(lk, [&] { return gate_open; });
  });
  for (int i = 0; i < 5000 && !first_entered.load(std::memory_order_acquire);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(first_entered.load());

  // A later batch's callback lands on the second worker and completes
  // while the first is still parked.
  auto a2 = mgr.Append(rec);
  ASSERT_TRUE(a2.ok());
  mgr.OnDurable(a2->end, [&](Status st) {
    EXPECT_TRUE(st.ok());
    second_fired.store(true, std::memory_order_release);
  });
  for (int i = 0; i < 5000 && !second_fired.load(std::memory_order_acquire);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(second_fired.load());

  {
    std::lock_guard<std::mutex> lk(gate_mutex);
    gate_open = true;
  }
  gate_cv.notify_all();
}

}  // namespace
}  // namespace shoremt
