#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "btree/btree.h"
#include "btree/btree_node.h"
#include "buffer/buffer_pool.h"
#include "io/volume.h"
#include "lock/lock_manager.h"
#include "log/log_manager.h"
#include "obs/metrics.h"
#include "space/space_manager.h"
#include "sync/hybrid_latch.h"
#include "txn/txn_manager.h"

namespace shoremt {
namespace {

// ----------------------------------------------------------- HybridLatch --

TEST(HybridLatchTest, ExclusiveReleaseBumpsVersionMonotonically) {
  sync::HybridLatch l;
  uint64_t prev = l.version();
  for (int i = 0; i < 100; ++i) {
    l.AcquireExclusive();
    l.ReleaseExclusive();
    uint64_t v = l.version();
    EXPECT_GT(v, prev) << "version must advance on every exclusive release";
    prev = v;
  }
}

TEST(HybridLatchTest, StaleStampFailsAfterExclusive) {
  sync::HybridLatch l;
  uint64_t stamp = l.StampOptimistic();
  ASSERT_NE(stamp, sync::HybridLatch::kInvalidStamp);
  EXPECT_TRUE(l.Validate(stamp));
  l.AcquireExclusive();
  l.ReleaseExclusive();
  EXPECT_FALSE(l.Validate(stamp)) << "exclusive release invalidates stamps";
  uint64_t fresh = l.StampOptimistic();
  EXPECT_TRUE(l.Validate(fresh));
}

TEST(HybridLatchTest, SharedHoldersDoNotInvalidateStamps) {
  sync::HybridLatch l;
  uint64_t stamp = l.StampOptimistic();
  l.AcquireShared();
  EXPECT_EQ(l.ReaderCount(), 1u);
  // Readers don't modify: a stamp taken before (or during) a shared hold
  // stays valid.
  EXPECT_TRUE(l.Validate(stamp));
  uint64_t during = l.StampOptimistic();
  EXPECT_NE(during, sync::HybridLatch::kInvalidStamp);
  l.ReleaseShared();
  EXPECT_TRUE(l.Validate(stamp));
  EXPECT_TRUE(l.Validate(during));
}

TEST(HybridLatchTest, StampWhileExclusiveHeldIsInvalid) {
  sync::HybridLatch l;
  l.AcquireExclusive();
  EXPECT_EQ(l.StampOptimistic(), sync::HybridLatch::kInvalidStamp);
  EXPECT_FALSE(l.Validate(sync::HybridLatch::kInvalidStamp));
  l.ReleaseExclusive();
  EXPECT_NE(l.StampOptimistic(), sync::HybridLatch::kInvalidStamp);
}

TEST(HybridLatchTest, ExclusiveExcludesSharedAndViceVersa) {
  sync::HybridLatch l;
  l.AcquireExclusive();
  EXPECT_FALSE(l.TryAcquire(sync::LatchMode::kShared));
  EXPECT_FALSE(l.TryAcquire(sync::LatchMode::kExclusive));
  l.ReleaseExclusive();
  l.AcquireShared();
  EXPECT_FALSE(l.TryAcquire(sync::LatchMode::kExclusive));
  EXPECT_TRUE(l.TryAcquire(sync::LatchMode::kShared));
  l.ReleaseShared();
  l.ReleaseShared();
}

TEST(HybridLatchTest, TryUpgradeOnlyForSoleReader) {
  sync::HybridLatch l;
  l.AcquireShared();
  l.AcquireShared();
  EXPECT_FALSE(l.TryUpgrade()) << "two readers: upgrade must fail";
  l.ReleaseShared();
  uint64_t stamp = l.StampOptimistic();
  EXPECT_TRUE(l.TryUpgrade());
  EXPECT_TRUE(l.IsHeldExclusive());
  l.ReleaseExclusive();
  EXPECT_FALSE(l.Validate(stamp)) << "upgrade-then-release bumps version";
}

TEST(HybridLatchTest, DowngradeBumpsVersionAndKeepsSharedHold) {
  sync::HybridLatch l;
  uint64_t stamp = l.StampOptimistic();
  l.AcquireExclusive();
  l.Downgrade();
  EXPECT_EQ(l.ReaderCount(), 1u);
  EXPECT_FALSE(l.Validate(stamp))
      << "the exclusive holder may have written before downgrading";
  EXPECT_FALSE(l.TryAcquire(sync::LatchMode::kExclusive));
  l.ReleaseShared();
}

// The seqlock protocol itself: a writer keeps a two-word invariant under
// the exclusive latch while readers snapshot the words optimistically. A
// validated snapshot must NEVER observe the invariant broken — that is
// the exact property the B+Tree descent trusts. The racy loads are
// deliberate and uninstrumented (SHOREMT_NO_SANITIZE_THREAD).
struct GuardedPair {
  sync::HybridLatch latch;
  uint64_t a = 0;
  uint64_t b = 0;
};

SHOREMT_NO_SANITIZE_THREAD
void OptimisticReadPair(const GuardedPair& p, uint64_t* a, uint64_t* b) {
  *a = p.a;
  *b = p.b;
}

TEST(HybridLatchTest, ValidatedReadsNeverObserveTornPair) {
  GuardedPair p;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> validated{0};

  // The writer runs until the readers are done: the readers drive the
  // loop (each must land a quota of VALIDATED snapshots), so the test
  // cannot degenerate into zero overlap on a single-CPU host.
  std::thread writer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      p.latch.AcquireExclusive();
      // Break the invariant mid-critical-section on purpose.
      p.a += 1;
      p.b += 1;
      p.latch.ReleaseExclusive();
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      uint64_t local = 0;
      while (local < 2000) {
        uint64_t stamp = p.latch.StampOptimistic();
        if (stamp == sync::HybridLatch::kInvalidStamp) {
          std::this_thread::yield();  // Let the parked writer release.
          continue;
        }
        uint64_t a, b;
        OptimisticReadPair(p, &a, &b);
        if (p.latch.Validate(stamp)) {
          ASSERT_EQ(a, b) << "validated snapshot saw a torn write";
          ++local;
        }
      }
      validated.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& r : readers) r.join();
  stop.store(true, std::memory_order_release);
  writer.join();
  EXPECT_GE(validated.load(), 4000u);
}

// ----------------------------------------------- Optimistic page handles --

TEST(BufferOptimisticTest, ExclusiveWriteInvalidatesHandle) {
  io::MemVolume volume;
  ASSERT_TRUE(volume.Extend(kPagesPerExtent).ok());
  buffer::BufferPoolOptions opts;
  opts.frame_count = 16;
  buffer::BufferPool pool(&volume, opts);
  { auto h = pool.NewPage(3); ASSERT_TRUE(h.ok()); }

  auto oh = pool.FixOptimistic(3);
  ASSERT_TRUE(oh.ok());
  EXPECT_TRUE(oh->Validate());
  {
    auto h = pool.FixPage(3, sync::LatchMode::kExclusive);
    ASSERT_TRUE(h.ok());
    EXPECT_FALSE(oh->Validate()) << "live exclusive holder must fail it";
  }
  EXPECT_FALSE(oh->Validate())
      << "an exclusive fix-release must invalidate older stamps";
  auto fresh = pool.FixOptimistic(3);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh->Validate());
}

TEST(BufferOptimisticTest, FrameReuseInvalidatesHandle) {
  io::MemVolume volume;
  // Enough extents that every page the test touches is readable from the
  // volume (clean evictions never write back, so re-fixing past the
  // volume end would be an I/O error, not an eviction).
  ASSERT_TRUE(volume.Extend(5 * kPagesPerExtent).ok());
  buffer::BufferPoolOptions opts;
  opts.frame_count = 8;  // Tiny pool: touching 32 pages recycles every frame.
  buffer::BufferPool pool(&volume, opts);
  for (PageNum p = 1; p <= 32; ++p) {
    auto h = pool.NewPage(p);
    ASSERT_TRUE(h.ok());
  }
  auto oh = pool.FixOptimistic(2);
  ASSERT_TRUE(oh.ok());
  // Cycle the pool until page 2's frame has been reused for other pages.
  for (int lap = 0; lap < 2; ++lap) {
    for (PageNum p = 1; p <= 32; ++p) {
      auto h = pool.FixPage(p, sync::LatchMode::kShared);
      ASSERT_TRUE(h.ok()) << "lap " << lap << " page " << p << ": "
                          << h.status().ToString();
    }
  }
  EXPECT_FALSE(oh->Validate())
      << "frame recycling must bump the version a stale reader stamped";
}

// ------------------------------------------------------------ BTree OLC --

constexpr StoreId kStore = 7;

RecordId RidFor(uint64_t key) {
  return RecordId{key + 1, static_cast<uint16_t>(key & 0x7fff)};
}

/// Full component stack (final-stage options) for direct B+Tree testing.
class OlcHarness {
 public:
  explicit OlcHarness(btree::BTreeOptions tree_opts = {})
      : log_(&log_storage_, log::LogOptions{}),
        pool_(&volume_, MakePoolOptions(),
              [this](Lsn lsn) { return log_.FlushTo(lsn); }),
        space_(&volume_, space::SpaceOptions{}),
        locks_(lock::LockOptions{}),
        txns_(&log_, &locks_, txn::TxnOptions{}) {
    EXPECT_TRUE(volume_.Extend(kPagesPerExtent).ok());
    EXPECT_TRUE(space_.CreateStore(kStore).ok());
    auto* txn = txns_.Begin();
    auto root = btree::BTree::CreateRoot(&pool_, &space_, &log_, &txns_, txn,
                                         kStore);
    EXPECT_TRUE(root.ok());
    EXPECT_TRUE(txns_.Commit(txn).ok());
    tree_ = std::make_unique<btree::BTree>(&pool_, &space_, &log_, &txns_,
                                           kStore, *root, tree_opts);
  }

  static buffer::BufferPoolOptions MakePoolOptions() {
    buffer::BufferPoolOptions o;
    o.frame_count = 256;
    return o;
  }

  void Insert(uint64_t key) {
    auto* txn = txns_.Begin();
    ASSERT_TRUE(tree_->Insert(txn, key, RidFor(key)).ok());
    ASSERT_TRUE(txns_.Commit(txn).ok());
  }

  btree::BTree& tree() { return *tree_; }

  io::MemVolume volume_;
  log::LogStorage log_storage_;
  log::LogManager log_;
  buffer::BufferPool pool_;
  space::SpaceManager space_;
  lock::LockManager locks_;
  txn::TxnManager txns_;
  std::unique_ptr<btree::BTree> tree_;
};

// Readers hammer validated point lookups while writers drive leaf and
// root splits through the same keyspace. Every validated answer must be
// exact: the correct rid for present keys (a torn entry would break the
// key↔rid correspondence), never a phantom, never a miss of a key that
// was present before the hammer started.
TEST(BTreeOlcTest, ReadersVsSplittersHammer) {
  OlcHarness h;
  constexpr uint64_t kPre = 2000;     // Resident before the hammer.
  constexpr uint64_t kExtra = 3000;   // Inserted during it (splits!).
  for (uint64_t k = 0; k < kPre; ++k) h.Insert(k * 2);  // Even keys.

  std::atomic<bool> done{false};
  std::atomic<uint64_t> reads{0};
  obs::WorkerCounters reader_wc;

  std::thread writer([&] {
    for (uint64_t i = 0; i < kExtra; ++i) {
      uint64_t key = 2 * kPre + i;  // Disjoint from the readers' keyspace.
      auto* txn = h.txns_.Begin();
      ASSERT_TRUE(h.tree().Insert(txn, key, RidFor(key)).ok());
      ASSERT_TRUE(h.txns_.Commit(txn).ok());
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&, t] {
      if (t == 0) obs::TlsWorkerCounters() = &reader_wc;
      uint64_t iters = 0;
      uint64_t rng = 0x9e3779b97f4a7c15ull + t;
      while (!done.load(std::memory_order_acquire) || iters < 1000) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        uint64_t key = ((rng >> 33) % kPre) * 2;
        auto rid = h.tree().Find(nullptr, key);
        ASSERT_TRUE(rid.ok()) << "pre-inserted key vanished: " << key;
        ASSERT_EQ(rid->page, RidFor(key).page) << "torn value for " << key;
        ASSERT_EQ(rid->slot, RidFor(key).slot) << "torn value for " << key;
        // Odd keys are never inserted: a validated phantom is a bug.
        auto absent = h.tree().Find(nullptr, key + 1);
        ASSERT_FALSE(absent.ok());
        ++iters;
      }
      if (t == 0) obs::TlsWorkerCounters() = nullptr;
      reads.fetch_add(iters, std::memory_order_relaxed);
    });
  }
  writer.join();
  for (auto& r : readers) r.join();

  EXPECT_GE(reads.load(), 2000u);
  EXPECT_GT(reader_wc.Value(obs::Metric::kBtreeOptimisticDescents), 0u)
      << "the optimistic path never ran";
  // No lost/duplicate keys after the dust settles.
  auto n = h.tree().CountEntries();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, kPre + kExtra);
  for (uint64_t k = 0; k < kPre; ++k) {
    auto rid = h.tree().Find(nullptr, k * 2);
    ASSERT_TRUE(rid.ok());
  }
}

// An iterator scanning the whole keyspace while splits migrate entries
// rightward must observe strictly increasing keys (never a duplicate)
// and every key that existed for the whole scan (never a loss).
TEST(BTreeOlcTest, IteratorVsConcurrentSplits) {
  OlcHarness h;
  constexpr uint64_t kPre = 1500;
  for (uint64_t k = 0; k < kPre; ++k) h.Insert(k * 2);

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (uint64_t i = 0; i < 2000; ++i) {
      uint64_t key = 2 * i + 1;  // Odd keys interleave into every leaf.
      auto* txn = h.txns_.Begin();
      ASSERT_TRUE(h.tree().Insert(txn, key, RidFor(key)).ok());
      ASSERT_TRUE(h.txns_.Commit(txn).ok());
    }
    done.store(true, std::memory_order_release);
  });

  uint64_t scans = 0;
  do {
    btree::BTree::Iterator it(&h.tree());
    ASSERT_TRUE(it.Seek(0).ok());
    uint64_t prev_key = UINT64_MAX;  // Sentinel: no previous key yet.
    uint64_t evens_seen = 0;
    while (it.Valid()) {
      uint64_t key = it.key();
      if (prev_key != UINT64_MAX) {
        ASSERT_GT(key, prev_key) << "duplicate or out-of-order key";
      }
      RecordId rid = it.record();
      ASSERT_EQ(rid.page, RidFor(key).page) << "torn entry for " << key;
      ASSERT_EQ(rid.slot, RidFor(key).slot) << "torn entry for " << key;
      if ((key & 1) == 0 && key < 2 * kPre) ++evens_seen;
      prev_key = key;
      ASSERT_TRUE(it.Next().ok());
    }
    ASSERT_EQ(evens_seen, kPre) << "scan lost a pre-existing key";
    ++scans;
  } while (!done.load(std::memory_order_acquire));
  writer.join();
  EXPECT_GE(scans, 1u);
}

// With a zero restart budget and a writer camped on the root's exclusive
// latch, the descent must fall back to the latched path (and still return
// the right answer once the writer releases).
TEST(BTreeOlcTest, ForcedRestartFallsBackToLatches) {
  btree::BTreeOptions opts;
  opts.optimistic_reads = true;
  opts.optimistic_restart_limit = 0;
  OlcHarness h(opts);
  for (uint64_t k = 0; k < 100; ++k) h.Insert(k);

  // Camp on the root exclusively from another thread long enough that the
  // single optimistic attempt exhausts its stamp spin and returns Busy.
  std::atomic<bool> holding{false};
  std::thread camper([&] {
    auto ph = h.pool_.FixPage(h.tree().root(), sync::LatchMode::kExclusive);
    ASSERT_TRUE(ph.ok());
    holding.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  });
  while (!holding.load(std::memory_order_acquire)) std::this_thread::yield();

  obs::WorkerCounters wc;
  obs::TlsWorkerCounters() = &wc;
  auto rid = h.tree().Find(nullptr, 42);  // Blocks on the fallback latch.
  obs::TlsWorkerCounters() = nullptr;
  camper.join();

  ASSERT_TRUE(rid.ok());
  EXPECT_EQ(rid->page, RidFor(42).page);
  EXPECT_GE(wc.Value(obs::Metric::kBtreeLatchFallbacks), 1u)
      << "exhausted restart budget must fall back to latches";
}

// The knob off = the classic crab, end to end (the ablation baseline).
TEST(BTreeOlcTest, LatchedModeStillCorrect) {
  btree::BTreeOptions opts;
  opts.optimistic_reads = false;
  OlcHarness h(opts);
  for (uint64_t k = 0; k < 1200; ++k) h.Insert(k * 3);
  obs::WorkerCounters wc;
  obs::TlsWorkerCounters() = &wc;
  for (uint64_t k = 0; k < 1200; ++k) {
    auto rid = h.tree().Find(nullptr, k * 3);
    ASSERT_TRUE(rid.ok());
    EXPECT_EQ(rid->page, RidFor(k * 3).page);
    EXPECT_FALSE(h.tree().Find(nullptr, k * 3 + 1).ok());
  }
  obs::TlsWorkerCounters() = nullptr;
  EXPECT_EQ(wc.Value(obs::Metric::kBtreeOptimisticDescents), 0u);
  EXPECT_EQ(wc.Value(obs::Metric::kBtreeLatchFallbacks), 0u);
  EXPECT_EQ(wc.Value(obs::Metric::kBtreeFinds), 2400u);
}

}  // namespace
}  // namespace shoremt
