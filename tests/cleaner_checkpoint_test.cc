/// Tests for the persistence spine's log-lifecycle loop: segmented log
/// storage with recycling, the dirty-page table's incremental low-water
/// mark, the background page cleaner, and fuzzy checkpoints that bound
/// recovery's redo scan. The concurrency cases (cleaner/checkpoint racing
/// a live workload) run under ThreadSanitizer in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "buffer/buffer_pool.h"
#include "common/random.h"
#include "io/volume.h"
#include "log/log_manager.h"
#include "log/log_storage.h"
#include "page/page.h"
#include "sm/options.h"
#include "sm/session.h"
#include "sm/storage_manager.h"

namespace shoremt {
namespace {

using buffer::BufferPool;
using buffer::BufferPoolOptions;
using log::LogStorage;

// ------------------------------------------------------ segmented storage --

TEST(SegmentedLogTest, AppendsSpanSegments) {
  LogStorage storage(0, /*segment_bytes=*/64);
  std::vector<uint8_t> rec(40);
  for (uint8_t round = 0; round < 10; ++round) {
    for (auto& b : rec) b = round;
    ASSERT_TRUE(storage.Append(rec).ok());
  }
  EXPECT_EQ(storage.size(), 400u);
  EXPECT_EQ(storage.segments_allocated(), (400 + 63) / 64);
  EXPECT_EQ(storage.live_segments(), storage.segments_allocated());
  // Reads cross segment boundaries transparently.
  std::vector<uint8_t> out;
  ASSERT_TRUE(storage.Read(35, 10, &out).ok());
  EXPECT_EQ(out, (std::vector<uint8_t>{0, 0, 0, 0, 0, 1, 1, 1, 1, 1}));
  ASSERT_TRUE(storage.Read(0, 400, &out).ok());
  EXPECT_EQ(out.size(), 400u);
  EXPECT_EQ(storage.Read(395, 10, &out).code(), StatusCode::kIOError);
  // AppendV across a boundary is still one device call.
  uint64_t calls = storage.flush_calls();
  std::vector<uint8_t> a(50, 7), b(50, 8);
  std::span<const uint8_t> parts[2] = {a, b};
  ASSERT_TRUE(storage.AppendV(parts).ok());
  EXPECT_EQ(storage.flush_calls(), calls + 1);
  ASSERT_TRUE(storage.Read(400, 100, &out).ok());
  EXPECT_EQ(out[0], 7);
  EXPECT_EQ(out[99], 8);
}

TEST(SegmentedLogTest, RecycleFreesWholeSegmentsBelowHorizon) {
  LogStorage storage(0, 64);
  ASSERT_TRUE(storage.Append(std::vector<uint8_t>(256, 0xaa)).ok());
  EXPECT_EQ(storage.live_segments(), 4u);
  // Horizon mid-segment: only fully-covered segments go.
  EXPECT_EQ(storage.Recycle(Lsn{97}), 1u);  // offset 96: frees [0,64).
  EXPECT_EQ(storage.live_segments(), 3u);
  EXPECT_EQ(storage.segments_recycled(), 1u);
  EXPECT_EQ(storage.reclaim_horizon(), Lsn{97});
  // Bytes at/above the horizon stay readable, even in the straddling
  // segment; bytes in freed segments are gone.
  std::vector<uint8_t> out;
  ASSERT_TRUE(storage.Read(96, 32, &out).ok());
  ASSERT_TRUE(storage.Read(64, 32, &out).ok());  // Straddling segment kept.
  EXPECT_EQ(storage.Read(32, 16, &out).code(), StatusCode::kIOError);
  // Recycle is monotonic: a lower horizon is a no-op.
  EXPECT_EQ(storage.Recycle(Lsn{10}), 0u);
  EXPECT_EQ(storage.reclaim_horizon(), Lsn{97});
  // A partially-filled tail segment is never freed (it is still being
  // appended to); full segments below the horizon all go.
  ASSERT_TRUE(storage.Append(std::vector<uint8_t>(8, 0xcc)).ok());
  EXPECT_EQ(storage.Recycle(Lsn{storage.size() + 1}), 3u);
  EXPECT_EQ(storage.live_segments(), 1u);
  // Appends continue at the same absolute offsets.
  uint64_t before = storage.size();
  ASSERT_TRUE(storage.Append(std::vector<uint8_t>(8, 0xbb)).ok());
  ASSERT_TRUE(storage.Read(before, 8, &out).ok());
  EXPECT_EQ(out[0], 0xbb);
}

TEST(SegmentedLogTest, HorizonSurvivesManagerReattach) {
  LogStorage storage(0, 64);
  {
    log::LogManager mgr(&storage, log::LogOptions{});
    log::LogRecord rec;
    rec.type = log::LogRecordType::kPageInsert;
    rec.after.assign(100, 0xcd);
    Lsn cut;
    for (int i = 0; i < 10; ++i) {
      auto a = mgr.Append(rec);
      ASSERT_TRUE(a.ok());
      if (i == 4) cut = a->end;
    }
    ASSERT_TRUE(mgr.FlushAll().ok());
    EXPECT_GT(mgr.Recycle(cut), 0u);
    EXPECT_GT(mgr.stats().segments_recycled.load(), 0u);
  }
  // A fresh manager (post-crash attach) sees the persisted horizon and
  // scans only live records.
  log::LogManager mgr2(&storage, log::LogOptions{});
  EXPECT_EQ(mgr2.reclaim_horizon(), storage.reclaim_horizon());
  EXPECT_GT(mgr2.reclaim_horizon(), Lsn{1});
  size_t seen = 0;
  Lsn first_seen;
  ASSERT_TRUE(mgr2.Scan([&](const log::LogRecord& r, Lsn) {
                    if (seen++ == 0) first_seen = r.lsn;
                    return Status::Ok();
                  }).ok());
  EXPECT_EQ(seen, 5u);
  EXPECT_EQ(first_seen, mgr2.reclaim_horizon());
}

// ------------------------------------------------- dirty-page table / DPT --

BufferPoolOptions SmallPool(size_t frames) {
  BufferPoolOptions o;
  o.frame_count = frames;
  return o;
}

TEST(DirtyPageTableTest, IncrementalMinMatchesFullScan) {
  io::MemVolume vol;
  ASSERT_TRUE(vol.Extend(64).ok());
  BufferPool pool(&vol, SmallPool(16));
  EXPECT_TRUE(pool.DirtyMinRecLsn().IsNull());
  for (PageNum p = 1; p <= 5; ++p) {
    auto h = pool.NewPage(p);
    ASSERT_TRUE(h.ok());
    page::FormatPage(h->data(), p, 1, page::PageType::kData);
    h->MarkDirty(Lsn{100 - p * 10}, Lsn{100 - p * 10});  // 90, 80, 70, 60, 50.
  }
  EXPECT_EQ(pool.DirtyPageCount(), 5u);
  EXPECT_EQ(pool.DirtyMinRecLsn(), pool.ScanMinRecLsn());
  EXPECT_EQ(pool.DirtyMinRecLsn().value, 50u);
  // Writing back the oldest page advances the incremental min.
  ASSERT_TRUE(pool.FlushPage(5).ok());
  EXPECT_EQ(pool.DirtyMinRecLsn().value, 60u);
  EXPECT_EQ(pool.DirtyMinRecLsn(), pool.ScanMinRecLsn());
  // Re-dirtying keeps the FIRST dirty LSN while dirty.
  {
    auto h = pool.FixPage(4, sync::LatchMode::kExclusive);
    ASSERT_TRUE(h.ok());
    h->MarkDirty(Lsn{500}, Lsn{500});
  }
  EXPECT_EQ(pool.DirtyMinRecLsn().value, 60u);
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.DirtyPageCount(), 0u);
  EXPECT_TRUE(pool.DirtyMinRecLsn().IsNull());
}

TEST(DirtyPageTableTest, EvictionWritebackErasesEntry) {
  io::MemVolume vol;
  ASSERT_TRUE(vol.Extend(64).ok());
  BufferPool pool(&vol, SmallPool(4));
  // Dirty every frame, then fix enough new pages to force evictions.
  for (PageNum p = 1; p <= 4; ++p) {
    auto h = pool.NewPage(p);
    ASSERT_TRUE(h.ok());
    page::FormatPage(h->data(), p, 1, page::PageType::kData);
    h->MarkDirty(Lsn{p}, Lsn{p});
  }
  EXPECT_EQ(pool.DirtyPageCount(), 4u);
  for (PageNum p = 10; p < 14; ++p) {
    auto h = pool.NewPage(p);
    ASSERT_TRUE(h.ok());
    page::FormatPage(h->data(), p, 1, page::PageType::kData);
  }
  // The evicted dirty pages were written back and left the table.
  EXPECT_LT(pool.DirtyPageCount(), 4u);
  EXPECT_GT(pool.stats().dirty_writebacks.load(), 0u);
}

TEST(CleanerTest, IncrementalPassDrainsOldestFirst) {
  io::MemVolume vol;
  ASSERT_TRUE(vol.Extend(64).ok());
  BufferPool pool(&vol, SmallPool(16));
  for (PageNum p = 1; p <= 8; ++p) {
    auto h = pool.NewPage(p);
    ASSERT_TRUE(h.ok());
    page::FormatPage(h->data(), p, 1, page::PageType::kData);
    h->MarkDirty(Lsn{p * 10}, Lsn{p * 10});
  }
  // A batch of 3 writes back the three OLDEST rec_lsns (10, 20, 30).
  ASSERT_TRUE(pool.CleanerPass(3).ok());
  EXPECT_EQ(pool.stats().cleaner_writes.load(), 3u);
  EXPECT_EQ(pool.DirtyPageCount(), 5u);
  EXPECT_EQ(pool.DirtyMinRecLsn().value, 40u);
  // The published tracked LSN follows the DPT min while entries remain.
  EXPECT_EQ(pool.CleanerTrackedLsn().value, 40u);
  ASSERT_TRUE(pool.CleanerPass(0).ok());
  EXPECT_EQ(pool.DirtyPageCount(), 0u);
}

TEST(CleanerTest, WakeCleanerDrainsWithoutWaitingForInterval) {
  io::MemVolume vol;
  ASSERT_TRUE(vol.Extend(64).ok());
  BufferPoolOptions o = SmallPool(16);
  o.enable_cleaner = true;
  o.cleaner_interval_us = 60'000'000;  // Never ticks within the test.
  BufferPool pool(&vol, o);
  {
    auto h = pool.NewPage(1);
    ASSERT_TRUE(h.ok());
    page::FormatPage(h->data(), 1, 1, page::PageType::kData);
    h->MarkDirty(Lsn{7}, Lsn{7});
  }
  pool.WakeCleaner();
  for (int i = 0; i < 2000 && pool.DirtyPageCount() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(pool.DirtyPageCount(), 0u);
  EXPECT_GE(pool.stats().cleaner_writes.load(), 1u);
}

// --------------------------------------- checkpoint + recycle + recovery --

sm::StorageOptions BoundedLogOptions(bool cleaner_daemon,
                                     bool checkpoint_daemon) {
  sm::StorageOptions o = sm::StorageOptions::ForStage(sm::Stage::kFinal);
  o.log.segment_bytes = 4096;
  o.log.recycle_pressure_segments = 4;
  o.buffer.enable_cleaner = cleaner_daemon;
  o.buffer.cleaner_interval_us = 500;
  o.checkpoint_daemon = checkpoint_daemon;
  o.checkpoint_interval_ms = 5;
  return o;
}

std::vector<uint8_t> Row(uint64_t key) {
  std::vector<uint8_t> payload(64);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(key + i);
  }
  return payload;
}

/// The acceptance loop: a sustained insert workload with explicit
/// checkpoints holds live segments bounded while old segments recycle;
/// crash recovery replays only from the checkpoint low-water mark
/// (redo_scan_bytes ≪ total log bytes) and reproduces the exact state.
TEST(CheckpointRecycleTest, BoundedLogCrashRecoveryMatchesModel) {
  io::MemVolume volume;
  LogStorage wal(0, 4096);
  std::map<uint64_t, std::vector<uint8_t>> committed;
  {
    auto db = std::move(*sm::StorageManager::Open(
        BoundedLogOptions(/*cleaner=*/true, /*checkpoint=*/false), &volume,
        &wal));
    auto session = db->OpenSession();
    ASSERT_TRUE(session->Begin().ok());
    auto table = session->CreateTable("t");
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(session->Commit().ok());
    for (int round = 0; round < 40; ++round) {
      ASSERT_TRUE(session->Begin().ok());
      for (int i = 0; i < 25; ++i) {
        uint64_t key = static_cast<uint64_t>(round) * 25 + i;
        ASSERT_TRUE(session->Insert(*table, key, Row(key)).ok());
        committed[key] = Row(key);
      }
      ASSERT_TRUE(session->Commit().ok());
      if (round % 5 == 4) {
        // Deterministic loop: drain dirt, checkpoint, recycle.
        ASSERT_TRUE(db->pool()->CleanerPass(0).ok());
        ASSERT_TRUE(db->Checkpoint().ok());
      }
    }
    // The log was recycled while the workload ran and stayed bounded.
    EXPECT_GT(db->log()->stats().segments_recycled.load(), 5u);
    EXPECT_LT(db->log()->live_segments(),
              db->log()->stats().segments_allocated.load());
    EXPECT_GT(db->log()->reclaim_horizon(), Lsn{1});
    session.reset();
    db->SimulateCrash();
  }
  uint64_t total_bytes = wal.size();

  auto reopened = sm::StorageManager::Open(
      BoundedLogOptions(false, false), &volume, &wal);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& db = *reopened;

  // Redo started at the checkpoint low-water mark, not LSN 1: the scanned
  // window is a small fraction of everything ever logged.
  uint64_t redo_scanned = db->log()->stats().redo_scan_bytes.load();
  EXPECT_GT(redo_scanned, 0u);
  EXPECT_LT(redo_scanned, total_bytes / 4);
  // And it equals exactly the tail above the last checkpoint's redo LSN.
  Lsn last_redo;
  ASSERT_TRUE(db->log()
                  ->Scan([&](const log::LogRecord& rec, Lsn) {
                    if (rec.type == log::LogRecordType::kCheckpoint) {
                      log::CheckpointBody body;
                      SHOREMT_RETURN_NOT_OK(
                          DeserializeCheckpoint(rec.after, &body));
                      last_redo = body.redo_lsn;
                    }
                    return Status::Ok();
                  })
                  .ok());
  ASSERT_FALSE(last_redo.IsNull());
  EXPECT_EQ(redo_scanned, total_bytes - (last_redo.value - 1));

  // State equivalence: exactly the committed rows, byte for byte.
  auto session = db->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  auto table = session->OpenTable("t");
  ASSERT_TRUE(table.ok());
  size_t rows = 0;
  auto cur = session->OpenCursor(*table);
  for (auto st = cur.Seek(0); cur.Valid(); st = cur.Next()) {
    auto it = committed.find(cur.key());
    ASSERT_NE(it, committed.end()) << "leaked key " << cur.key();
    EXPECT_TRUE(std::equal(cur.value().begin(), cur.value().end(),
                           it->second.begin(), it->second.end()))
        << "corrupt key " << cur.key();
    ++rows;
  }
  EXPECT_EQ(rows, committed.size());
  ASSERT_TRUE(session->Commit().ok());
}

/// Randomized property: recycling mid-workload (checkpoints interleaved
/// with updates/deletes/aborts and an in-flight loser at the crash) never
/// loses committed state or leaks uncommitted state — recovery from the
/// truncated-scan log equals the full-scan reference model.
TEST(CheckpointRecycleTest, RecycledLogRecoveryProperty) {
  for (uint64_t seed : {11u, 12u, 13u, 14u}) {
    Rng rng(seed);
    io::MemVolume volume;
    LogStorage wal(0, 4096);
    std::map<uint64_t, std::vector<uint8_t>> committed;
    {
      auto db = std::move(*sm::StorageManager::Open(
          BoundedLogOptions(true, false), &volume, &wal));
      auto* ddl = db->Begin();
      auto table = db->CreateTable(ddl, "t");
      ASSERT_TRUE(table.ok());
      ASSERT_TRUE(db->Commit(ddl).ok());
      int txns = 40 + static_cast<int>(rng.Uniform(40));
      for (int i = 0; i < txns; ++i) {
        if (rng.Bernoulli(0.15)) {
          ASSERT_TRUE(db->pool()->CleanerPass(0).ok());
          ASSERT_TRUE(db->Checkpoint().ok());
        }
        auto* txn = db->Begin();
        std::map<uint64_t, std::vector<uint8_t>> delta = committed;
        bool ok = true;
        int ops = 1 + static_cast<int>(rng.Uniform(10));
        for (int j = 0; j < ops && ok; ++j) {
          uint64_t key = rng.Uniform(150);
          if (rng.Bernoulli(0.7)) {
            std::vector<uint8_t> payload(8 + rng.Uniform(80));
            for (auto& b : payload) b = static_cast<uint8_t>(rng.Next());
            ok = delta.contains(key)
                     ? db->Update(txn, *table, key, payload).ok()
                     : db->Insert(txn, *table, key, payload).ok();
            if (ok) delta[key] = payload;
          } else if (delta.contains(key)) {
            ok = db->Delete(txn, *table, key).ok();
            if (ok) delta.erase(key);
          }
        }
        if (!ok || rng.Bernoulli(0.2)) {
          ASSERT_TRUE(db->Abort(txn).ok());
        } else {
          ASSERT_TRUE(db->Commit(txn).ok());
          committed = std::move(delta);
        }
      }
      // Segments must actually have been recycled mid-workload.
      EXPECT_GT(db->log()->stats().segments_recycled.load(), 0u)
          << "seed " << seed;
      // Leave a loser in flight for restart undo.
      auto* loser = db->Begin();
      (void)db->Insert(loser, *table, 99999, Row(1));
      db->SimulateCrash();
    }
    auto reopened = sm::StorageManager::Open(
        BoundedLogOptions(false, false), &volume, &wal);
    ASSERT_TRUE(reopened.ok())
        << "seed " << seed << ": " << reopened.status().ToString();
    auto& db = *reopened;
    EXPECT_LT(db->log()->stats().redo_scan_bytes.load(), wal.size())
        << "seed " << seed;
    auto table = db->OpenTable("t");
    ASSERT_TRUE(table.ok());
    auto* check = db->Begin();
    for (const auto& [key, payload] : committed) {
      auto read = db->Read(check, *table, key);
      ASSERT_TRUE(read.ok()) << "lost key " << key << " (seed " << seed
                             << ")";
      EXPECT_TRUE(std::equal(read->begin(), read->end(), payload.begin(),
                             payload.end()))
          << "corrupt key " << key << " (seed " << seed << ")";
    }
    uint64_t rows = 0;
    ASSERT_TRUE(db->Scan(check, *table, 0, UINT64_MAX,
                         [&](uint64_t key, std::span<const uint8_t>) {
                           EXPECT_TRUE(committed.contains(key))
                               << "leaked key " << key << " (seed " << seed
                               << ")";
                           ++rows;
                           return true;
                         })
                    .ok());
    EXPECT_EQ(rows, committed.size()) << "seed " << seed;
    ASSERT_TRUE(db->Commit(check).ok());
  }
}

/// Cleaner + checkpoint daemons racing a live multi-session workload
/// (TSan coverage for the cv wiring, the dirty-page table, the pressure
/// hook and fuzzy snapshots), ending in a crash + recovery.
TEST(CheckpointRecycleTest, DaemonsRaceWorkloadAndCrashRecovery) {
  constexpr int kWorkers = 4;
  constexpr int kTxnsPerWorker = 60;
  io::MemVolume volume;
  LogStorage wal(0, 4096);
  std::atomic<uint64_t> committed_rows{0};
  {
    auto db = std::move(*sm::StorageManager::Open(
        BoundedLogOptions(/*cleaner=*/true, /*checkpoint=*/true), &volume,
        &wal));
    auto setup = db->OpenSession();
    ASSERT_TRUE(setup->Begin().ok());
    auto table = setup->CreateTable("t");
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(setup->Commit().ok());
    setup.reset();
    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        auto session = db->OpenSession();
        for (int i = 0; i < kTxnsPerWorker; ++i) {
          uint64_t key = static_cast<uint64_t>(w) * 1'000'000 + i;
          sm::Op op;
          op.type = sm::OpType::kInsert;
          op.key = key;
          std::vector<uint8_t> payload = Row(key);
          op.payload = payload;
          if (session->ApplyAsync(*table, {&op, 1}).ok()) {
            committed_rows.fetch_add(1, std::memory_order_relaxed);
          }
        }
        ASSERT_TRUE(session->WaitAll().ok());
      });
    }
    for (auto& t : workers) t.join();
    // Manual checkpoints may overlap the daemon's — both must be safe.
    ASSERT_TRUE(db->Checkpoint().ok());
    db->SimulateCrash();
  }
  auto reopened = sm::StorageManager::Open(
      BoundedLogOptions(false, false), &volume, &wal);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto& db = *reopened;
  auto session = db->OpenSession();
  ASSERT_TRUE(session->Begin().ok());
  auto table = session->OpenTable("t");
  ASSERT_TRUE(table.ok());
  uint64_t rows = 0;
  auto cur = session->OpenCursor(*table);
  for (auto st = cur.Seek(0); cur.Valid(); st = cur.Next()) ++rows;
  // Every acknowledged commit survived (WaitAll ran before the crash).
  // (This exact assertion caught a latent seed WAL bug: rec_lsn seeded
  // from a record's END LSN let the redo scan start one record too late
  // when the checkpoint low-water landed on a page's first dirtying
  // record — see PageHandle::MarkDirty.)
  EXPECT_EQ(rows, committed_rows.load());
  ASSERT_TRUE(session->Commit().ok());
}

}  // namespace
}  // namespace shoremt
