/// Figure 5: "Per-client throughput of Shore-MT, DBMS X and PostgreSQL for
/// the New Order (left) and Payment (right) microbenchmarks".
///
/// Paper shape: all three engines dip around 16 clients on New Order
/// (STOCK/ITEM contention); Payment has no application-level contention,
/// letting Shore-MT scale to 32 clients while PostgreSQL trails ~2-4x
/// lower throughout.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "io/volume.h"
#include "log/log_storage.h"
#include "obs/profiling_thread.h"
#include "sm/session.h"
#include "sm/storage_manager.h"
#include "workload/driver.h"
#include "workload/engine_profiles.h"
#include "workload/tpcc.h"

using namespace shoremt;
using namespace shoremt::workload;

namespace {

/// Companion panel: real-engine TPC-C on this machine through the session
/// API — one session per terminal, Payment and New Order straight from
/// workload/tpcc.h, per-session stats harvested at the end. Run twice per
/// terminal count: blocking commits vs CommitAsync (early lock release,
/// durability acknowledged through WaitAll at drain). The flushes/txn and
/// txns/batch columns make the group-commit batching visible: async
/// commit must issue measurably fewer device flushes than transactions
/// committed.
void RunRealEnginePanel() {
  std::printf("--- real engine (this machine), sync vs async commit ---\n");
  std::vector<int> terminals = bench::FullMode()
                                   ? std::vector<int>{1, 2, 4, 8}
                                   : std::vector<int>{1, 2, 4};
  std::printf("%-6s %-9s  %11s  %11s  %8s  %10s  %11s  %11s  %10s\n", "mode",
              "terminals", "payment/s", "neworder/s", "aborts",
              "lock waits", "cache hits", "flushes/txn", "txns/batch");
  for (int t : terminals) {
    for (CommitMode mode : {CommitMode::kSync, CommitMode::kAsync}) {
      io::MemVolume volume;
      // A 100us-per-flush log device: the regime where amortizing flushes
      // across committers pays (an instant device hides the batching).
      log::LogStorage wal(/*append_latency_ns=*/100'000);
      // Full log-lifecycle loop: small segments, background page cleaner
      // and checkpoint daemon — the run holds its live log bounded while
      // old segments recycle underneath the terminals.
      sm::StorageOptions sm_opts =
          sm::StorageOptions::ForStage(sm::Stage::kFinal);
      sm_opts.log.segment_bytes = 64 << 10;
      sm_opts.buffer.enable_cleaner = true;
      sm_opts.buffer.cleaner_interval_us = 2000;
      sm_opts.checkpoint_daemon = true;
      sm_opts.checkpoint_interval_ms = 50;
      auto opened = sm::StorageManager::Open(sm_opts, &volume, &wal);
      if (!opened.ok()) return;
      auto& db = *opened;
      TpccConfig cfg;
      cfg.warehouses = static_cast<uint32_t>(t);  // TPC-C scaling rule.
      cfg.districts_per_warehouse = 4;
      cfg.customers_per_district = 60;
      cfg.items = 200;
      auto loader = db->OpenSession();
      auto loaded = LoadTpcc(loader.get(), cfg);
      if (!loaded.ok()) return;
      TpccDatabase tpcc = *loaded;
      loader.reset();  // Harvest the loader so the baseline excludes it.

      std::vector<std::unique_ptr<sm::Session>> sessions;
      for (int i = 0; i < t; ++i) sessions.push_back(db->OpenSession());
      uint64_t window_ms = bench::FullMode() ? 800 : 250;
      // Async runs stream the live metrics feed (per-interval counter
      // deltas incl. log/cleaner/checkpoint lifecycle + tick latency
      // quantiles) instead of the old one-shot post-run stats dump.
      std::unique_ptr<obs::ProfilingThread> profiler;
      if (mode == CommitMode::kAsync) {
        obs::ProfilingOptions prof_opts;
        prof_opts.interval = std::chrono::microseconds(
            bench::FullMode() ? 1'000'000 : 200'000);
        prof_opts.prefix = "       live ";
        profiler = std::make_unique<obs::ProfilingThread>(db->metrics(),
                                                          prof_opts);
        profiler->Start();
      }
      // Counter baselines taken after load, before the drivers: numerator
      // and denominator below both cover the terminals' full activity
      // (warmup included), so flushes/txn windows match.
      sm::SessionStats base = db->harvested_session_stats();
      const log::LogStats& ls = db->log()->stats();
      uint64_t flushes_before = wal.flush_calls();
      uint64_t batches_before = ls.group_batches.load();
      uint64_t batch_txns_before = ls.group_batch_txns.load();
      auto drain = [&](int worker) {
        (void)sessions[worker]->WaitAll();
      };
      auto pay = RunDriver(t, 50, window_ms, [&](int worker, Rng&) {
        return RunPayment(sessions[worker].get(), &tpcc,
                          1 + worker % cfg.warehouses, mode);
      }, drain);
      auto norder = RunDriver(t, 50, window_ms, [&](int worker, Rng&) {
        return RunNewOrder(sessions[worker].get(), &tpcc,
                           1 + worker % cfg.warehouses, mode);
      }, drain);
      if (profiler) profiler->Stop();
      for (auto& s : sessions) s->Harvest();
      sm::SessionStats stats = db->harvested_session_stats();
      uint64_t commits = stats.commits - base.commits;
      double flushes_per_txn =
          commits == 0
              ? 0.0
              : static_cast<double>(wal.flush_calls() - flushes_before) /
                    static_cast<double>(commits);
      uint64_t batches = ls.group_batches.load() - batches_before;
      double txns_per_batch =
          batches == 0
              ? 0.0
              : static_cast<double>(ls.group_batch_txns.load() -
                                    batch_txns_before) /
                    static_cast<double>(batches);
      std::printf(
          "%-6s %-9d  %11.0f  %11.0f  %8llu  %10llu  %11llu  %11.3f  %10.2f\n",
          mode == CommitMode::kSync ? "sync" : "async", t, pay.tps,
          norder.tps, (unsigned long long)(pay.aborts + norder.aborts),
          (unsigned long long)(stats.lock_waits - base.lock_waits),
          (unsigned long long)(stats.lock_cache_hits - base.lock_cache_hits),
          flushes_per_txn, txns_per_batch);
      bench::PrintIoSpineStats(volume.stats(), db->pool()->stats(),
                               "       ");
    }
  }
  std::printf("expected: async commit amortizes device flushes across the "
              "group (flushes/txn < 1\nand falling with terminals); early "
              "lock release shortens lock hold times; cache\nhits > 0 "
              "confirm intention locks are served from the transaction-"
              "private cache.\n\n");
}

void RunPanel(bool new_order, const Calibration& calib) {
  std::printf("--- %s ---\n", new_order ? "New Order" : "Payment");
  std::vector<int> threads = bench::ThreadSweep();
  std::vector<EngineKind> engines = {EngineKind::kPostgres, EngineKind::kDbmsX,
                                     EngineKind::kShoreMt};
  std::vector<std::string> names;
  std::vector<std::vector<double>> series;
  for (EngineKind e : engines) {
    names.emplace_back(EngineName(e));
    std::vector<double> curve;
    for (int t : threads) {
      // Warehouses scale with terminals, per the TPC-C scaling rule.
      WorkloadModel model = TpccModel(e, new_order, /*warehouses=*/t, calib);
      curve.push_back(bench::ModelTxnTpsPerThread(model, t));
    }
    series.push_back(std::move(curve));
  }
  bench::PrintSeriesTable("transactions/second/client", threads, names,
                          series);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Figure 5: TPC-C per-client throughput "
              "(simulated T2000) ===\n\n");
  RunRealEnginePanel();
  Calibration calib;
  RunPanel(/*new_order=*/true, calib);
  RunPanel(/*new_order=*/false, calib);
  std::printf("expected shape: New Order dips for every engine around 16 "
              "clients (shared STOCK/ITEM);\nPayment scales to 32 for "
              "shore-mt & dbms-x; postgres sits 2-4x lower throughout.\n");
  return 0;
}
