/// Figure 5: "Per-client throughput of Shore-MT, DBMS X and PostgreSQL for
/// the New Order (left) and Payment (right) microbenchmarks".
///
/// Paper shape: all three engines dip around 16 clients on New Order
/// (STOCK/ITEM contention); Payment has no application-level contention,
/// letting Shore-MT scale to 32 clients while PostgreSQL trails ~2-4x
/// lower throughout.

#include <cstdio>

#include "bench/bench_util.h"
#include "workload/engine_profiles.h"

using namespace shoremt;
using namespace shoremt::workload;

namespace {

void RunPanel(bool new_order, const Calibration& calib) {
  std::printf("--- %s ---\n", new_order ? "New Order" : "Payment");
  std::vector<int> threads = bench::ThreadSweep();
  std::vector<EngineKind> engines = {EngineKind::kPostgres, EngineKind::kDbmsX,
                                     EngineKind::kShoreMt};
  std::vector<std::string> names;
  std::vector<std::vector<double>> series;
  for (EngineKind e : engines) {
    names.emplace_back(EngineName(e));
    std::vector<double> curve;
    for (int t : threads) {
      // Warehouses scale with terminals, per the TPC-C scaling rule.
      WorkloadModel model = TpccModel(e, new_order, /*warehouses=*/t, calib);
      curve.push_back(bench::ModelTxnTpsPerThread(model, t));
    }
    series.push_back(std::move(curve));
  }
  bench::PrintSeriesTable("transactions/second/client", threads, names,
                          series);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Figure 5: TPC-C per-client throughput "
              "(simulated T2000) ===\n\n");
  Calibration calib;
  RunPanel(/*new_order=*/true, calib);
  RunPanel(/*new_order=*/false, calib);
  std::printf("expected shape: New Order dips for every engine around 16 "
              "clients (shared STOCK/ITEM);\nPayment scales to 32 for "
              "shore-mt & dbms-x; postgres sits 2-4x lower throughout.\n");
  return 0;
}
