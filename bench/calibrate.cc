/// Calibration harness: measures the real engine's critical-section
/// profile, standing in for the paper's `collect` profiler runs.
///
/// Runs the insert microbenchmark single-threaded (pure service times, no
/// queueing) against the baseline and final stages, then prints the
/// instrumented critical-section statistics and component counters that
/// inform the simulator's Calibration constants.

#include <cstdio>

#include "bench/bench_util.h"
#include "io/volume.h"
#include "log/log_storage.h"
#include "sm/options.h"
#include "sm/storage_manager.h"
#include "sync/sync_stats.h"
#include "workload/insert_workload.h"

using namespace shoremt;
using namespace shoremt::workload;

namespace {

void Profile(sm::Stage stage) {
  std::printf("--- stage: %s ---\n",
              std::string(sm::StageName(stage)).c_str());
  io::MemVolume volume;
  log::LogStorage wal;
  auto opened = sm::StorageManager::Open(sm::StorageOptions::ForStage(stage),
                                         &volume, &wal);
  if (!opened.ok()) {
    std::printf("open failed: %s\n", opened.status().ToString().c_str());
    return;
  }
  auto& db = *opened;

  InsertBenchConfig cfg;
  cfg.clients = 1;
  cfg.records_per_commit = 500;
  cfg.warmup_ms = bench::FullMode() ? 200 : 50;
  cfg.duration_ms = bench::FullMode() ? 1000 : 300;
  auto state = SetupInsertBench(db.get(), cfg);
  if (!state.ok()) return;
  sync::SyncStatsRegistry::Instance().ResetAll();
  auto r = RunInsertBench(cfg, &*state);

  double inserts_per_sec = r.tps * cfg.records_per_commit;
  std::printf("single-thread: %.0f inserts/s  (%.0f ns per insert)\n",
              inserts_per_sec, 1e9 / inserts_per_sec);
  std::printf("\ncritical-section profile (the `collect` substitute):\n%s",
              sync::SyncStatsRegistry::Instance().Report().c_str());

  const auto& bp = db->pool()->stats();
  std::printf("\nbuffer pool: fixes=%llu hits=%llu optimistic=%llu "
              "misses=%llu evictions=%llu\n",
              (unsigned long long)bp.fixes.load(),
              (unsigned long long)bp.hits.load(),
              (unsigned long long)bp.optimistic_hits.load(),
              (unsigned long long)bp.misses.load(),
              (unsigned long long)bp.evictions.load());
  const auto& sp = db->space()->stats();
  std::printf("space: allocs=%llu ownership_checks=%llu cache_hits=%llu "
              "(%.1f%% hit)\n",
              (unsigned long long)sp.pages_allocated.load(),
              (unsigned long long)sp.ownership_checks.load(),
              (unsigned long long)sp.ownership_cache_hits.load(),
              sp.ownership_checks.load() > 0
                  ? 100.0 * sp.ownership_cache_hits.load() /
                        sp.ownership_checks.load()
                  : 0.0);
  const auto& lg = db->log()->stats();
  std::printf("log: records=%llu bytes=%llu flush_waits=%llu "
              "device_flushes=%llu\n\n",
              (unsigned long long)lg.records.load(),
              (unsigned long long)lg.bytes.load(),
              (unsigned long long)lg.flush_waits.load(),
              (unsigned long long)wal.flush_calls());
}

}  // namespace

int main() {
  std::printf("=== Calibration: real-engine critical-section profile ===\n\n");
  Profile(sm::Stage::kBaseline);
  Profile(sm::Stage::kFinal);
  std::printf("interpretation: per-insert service times feed "
              "workload::Calibration —\nmean-hold(ns) of space.mutex ≈ "
              "fsm_cs; the per-insert wall-clock delta between\nstages "
              "bounds the critical-section shortening. The defaults in "
              "engine_profiles.h\nwere derived from this output, rescaled "
              "to 1 GHz Niagara magnitudes.\n");
  return 0;
}
