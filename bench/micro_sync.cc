/// google-benchmark micro-suite over the synchronization primitives —
/// the raw numbers behind the paper's principle #1 ("efficient
/// synchronization primitives are critical").

#include <benchmark/benchmark.h>

#include <mutex>

#include "sync/clh_lock.h"
#include "sync/hybrid_mutex.h"
#include "sync/lockfree_stack.h"
#include "sync/mcs_lock.h"
#include "sync/rw_latch.h"
#include "sync/spinlock.h"
#include "sync/ticket_lock.h"

namespace shoremt::sync {
namespace {

// ------------------------------------------------------- uncontended -----

template <typename Lock>
void BM_Uncontended(benchmark::State& state) {
  Lock lock;
  for (auto _ : state) {
    lock.lock();
    benchmark::DoNotOptimize(&lock);
    lock.unlock();
  }
}
BENCHMARK_TEMPLATE(BM_Uncontended, TatasLock);
BENCHMARK_TEMPLATE(BM_Uncontended, TtasLock);
BENCHMARK_TEMPLATE(BM_Uncontended, TicketLock);
BENCHMARK_TEMPLATE(BM_Uncontended, ClhLock);
BENCHMARK_TEMPLATE(BM_Uncontended, HybridMutex);
BENCHMARK_TEMPLATE(BM_Uncontended, std::mutex);

void BM_UncontendedMcs(benchmark::State& state) {
  McsLock lock;
  for (auto _ : state) {
    McsLock::QNode node;
    lock.Acquire(&node);
    benchmark::DoNotOptimize(&lock);
    lock.Release(&node);
  }
}
BENCHMARK(BM_UncontendedMcs);

// --------------------------------------------------------- contended -----

template <typename Lock>
void BM_Contended(benchmark::State& state) {
  static Lock lock;
  static int64_t counter;
  for (auto _ : state) {
    lock.lock();
    ++counter;
    lock.unlock();
  }
}
BENCHMARK_TEMPLATE(BM_Contended, TatasLock)->Threads(4)->Iterations(50000);
BENCHMARK_TEMPLATE(BM_Contended, TtasLock)->Threads(4)->Iterations(50000);
// FIFO queue locks hand off in scheduler time on single-context hosts;
// bound iterations so the suite stays fast everywhere.
BENCHMARK_TEMPLATE(BM_Contended, ClhLock)->Threads(4)->Iterations(50000);
BENCHMARK_TEMPLATE(BM_Contended, HybridMutex)->Threads(4)->Iterations(50000);
BENCHMARK_TEMPLATE(BM_Contended, std::mutex)->Threads(4)->Iterations(50000);

void BM_ContendedMcs(benchmark::State& state) {
  static McsLock lock;
  static int64_t counter;
  for (auto _ : state) {
    McsLock::QNode node;
    lock.Acquire(&node);
    ++counter;
    lock.Release(&node);
  }
}
BENCHMARK(BM_ContendedMcs)->Threads(4)->Iterations(50000);

// ------------------------------------------------------------ latches ----

void BM_RwLatchShared(benchmark::State& state) {
  static RwLatch latch;
  for (auto _ : state) {
    latch.AcquireShared();
    benchmark::DoNotOptimize(&latch);
    latch.ReleaseShared();
  }
}
BENCHMARK(BM_RwLatchShared);
BENCHMARK(BM_RwLatchShared)->Threads(4)->Iterations(50000);

void BM_RwLatchExclusive(benchmark::State& state) {
  static RwLatch latch;
  for (auto _ : state) {
    latch.AcquireExclusive();
    benchmark::DoNotOptimize(&latch);
    latch.ReleaseExclusive();
  }
}
BENCHMARK(BM_RwLatchExclusive);

// ---------------------------------------------------- lock-free stack ----

void BM_LockFreeStackPushPop(benchmark::State& state) {
  static LockFreeIndexStack stack(1024);
  if (state.thread_index() == 0) {
    while (stack.Pop().has_value()) {
    }
    for (uint32_t i = 0; i < 1024; ++i) stack.Push(i);
  }
  for (auto _ : state) {
    auto idx = stack.Pop();
    if (idx.has_value()) stack.Push(*idx);
  }
}
BENCHMARK(BM_LockFreeStackPushPop);
BENCHMARK(BM_LockFreeStackPushPop)->Threads(4)->Iterations(50000);

}  // namespace
}  // namespace shoremt::sync

BENCHMARK_MAIN();
