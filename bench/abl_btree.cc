/// Ablation: B+Tree descent protocol (real engine, real threads).
///
/// Sweeps shared-latch crabbing vs optimistic lock coupling over
/// 1/2/4/8 reader threads at a 0% and a 5% writer mix, against one
/// pre-loaded tree per cell. Emits one JSON line per cell (probes/s,
/// restarts/probe, latch fallbacks) so the ISSUE-10 acceptance numbers —
/// optimistic >= 1.5x crab at 4 readers, flat 1→4 scaling, bounded
/// restarts under writers — are machine-checkable from the output.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "btree/btree.h"
#include "buffer/buffer_pool.h"
#include "common/clock.h"
#include "io/volume.h"
#include "lock/lock_manager.h"
#include "log/log_manager.h"
#include "obs/metrics.h"
#include "space/space_manager.h"
#include "txn/txn_manager.h"

using namespace shoremt;

namespace {

constexpr StoreId kStore = 3;
constexpr uint64_t kPreload = 20'000;  // Even keys 0..2*kPreload.

RecordId RidFor(uint64_t key) {
  return RecordId{key + 1, static_cast<uint16_t>(key & 0x7fff)};
}

/// Component stack for direct B+Tree probing (no session/lock overhead on
/// the measured path — the descent itself is the subject).
struct Stack {
  explicit Stack(btree::BTreeOptions tree_opts)
      : log(&wal, log::LogOptions{}),
        pool(&volume, PoolOptions(),
             [this](Lsn lsn) { return log.FlushTo(lsn); }),
        space(&volume, space::SpaceOptions{}),
        locks(lock::LockOptions{}),
        txns(&log, &locks, txn::TxnOptions{}) {
    (void)volume.Extend(kPagesPerExtent);
    (void)space.CreateStore(kStore);
    auto* txn = txns.Begin();
    auto root =
        btree::BTree::CreateRoot(&pool, &space, &log, &txns, txn, kStore);
    (void)txns.Commit(txn);
    tree = std::make_unique<btree::BTree>(&pool, &space, &log, &txns, kStore,
                                          *root, tree_opts);
    for (uint64_t k = 0; k < kPreload; ++k) {
      auto* t = txns.Begin();
      (void)tree->Insert(t, k * 2, RidFor(k * 2));
      (void)txns.Commit(t);
    }
  }

  static buffer::BufferPoolOptions PoolOptions() {
    buffer::BufferPoolOptions o;
    o.frame_count = 4096;  // Tree stays resident: probe cost, not I/O.
    return o;
  }

  io::MemVolume volume;
  log::LogStorage wal;
  log::LogManager log;
  buffer::BufferPool pool;
  space::SpaceManager space;
  lock::LockManager locks;
  txn::TxnManager txns;
  std::unique_ptr<btree::BTree> tree;
};

struct CellResult {
  double probes_per_s = 0;
  double restarts_per_probe = 0;
  uint64_t fallbacks = 0;
};

CellResult RunCell(bool optimistic, int readers, int writer_pct,
                   uint64_t duration_ms) {
  btree::BTreeOptions opts;
  opts.optimistic_reads = optimistic;
  Stack s(opts);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> probes{0};
  std::atomic<uint64_t> restarts{0};
  std::atomic<uint64_t> fallbacks{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < readers; ++t) {
    threads.emplace_back([&, t] {
      obs::WorkerCounters wc;
      obs::TlsWorkerCounters() = &wc;
      uint64_t rng = 0x2545f4914f6cdd1dull + static_cast<uint64_t>(t);
      // Disjoint per-thread insert keyspace above the preload.
      uint64_t next_insert = 2 * kPreload + 1 + static_cast<uint64_t>(t);
      uint64_t local = 0;
      while (!stop.load(std::memory_order_acquire)) {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        if (writer_pct > 0 &&
            static_cast<int>(rng % 100) < writer_pct) {
          auto* txn = s.txns.Begin();
          (void)s.tree->Insert(txn, next_insert, RidFor(next_insert));
          (void)s.txns.Commit(txn);
          next_insert += 2 * static_cast<uint64_t>(readers);
        } else {
          uint64_t key = (rng % kPreload) * 2;
          auto rid = s.tree->Find(nullptr, key);
          if (!rid.ok() || rid->page != RidFor(key).page) {
            std::fprintf(stderr, "FATAL: wrong answer for key %llu\n",
                         (unsigned long long)key);
            std::abort();
          }
          ++local;
        }
      }
      probes.fetch_add(local, std::memory_order_relaxed);
      restarts.fetch_add(wc.Value(obs::Metric::kBtreeRestarts),
                         std::memory_order_relaxed);
      fallbacks.fetch_add(wc.Value(obs::Metric::kBtreeLatchFallbacks),
                          std::memory_order_relaxed);
      obs::TlsWorkerCounters() = nullptr;
    });
  }

  uint64_t t0 = NowNanos();
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  stop.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  double secs = static_cast<double>(NowNanos() - t0) / 1e9;

  CellResult r;
  r.probes_per_s = static_cast<double>(probes.load()) / secs;
  r.restarts_per_probe =
      probes.load() ? static_cast<double>(restarts.load()) /
                          static_cast<double>(probes.load())
                    : 0.0;
  r.fallbacks = fallbacks.load();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const char* full_env = std::getenv("SHOREMT_FULL");
  bool full = full_env != nullptr && full_env[0] != '\0' && full_env[0] != '0';
  uint64_t duration_ms = smoke ? 150 : (full ? 2000 : 600);

  std::printf("# abl_btree: shared-crab vs optimistic descent "
              "(preload=%llu keys, %llums/cell)\n",
              (unsigned long long)kPreload,
              (unsigned long long)duration_ms);
  double crab4 = 0, opt4 = 0, opt1 = 0;
  for (int writer_pct : {0, 5}) {
    for (bool optimistic : {false, true}) {
      for (int readers : {1, 2, 4, 8}) {
        CellResult r = RunCell(optimistic, readers, writer_pct, duration_ms);
        std::printf("{\"bench\":\"abl_btree\",\"mode\":\"%s\","
                    "\"readers\":%d,\"writer_pct\":%d,"
                    "\"probes_per_s\":%.0f,\"restarts_per_probe\":%.4f,"
                    "\"latch_fallbacks\":%llu}\n",
                    optimistic ? "optimistic" : "shared-crab", readers,
                    writer_pct, r.probes_per_s, r.restarts_per_probe,
                    (unsigned long long)r.fallbacks);
        std::fflush(stdout);
        if (writer_pct == 0 && readers == 4) {
          (optimistic ? opt4 : crab4) = r.probes_per_s;
        }
        if (writer_pct == 0 && optimistic && readers == 1) {
          opt1 = r.probes_per_s;
        }
      }
    }
  }
  if (crab4 > 0 && opt1 > 0) {
    std::printf("# summary: optimistic/crab @4r,0%%w = %.2fx; "
                "optimistic per-thread 4r/1r = %.2f\n",
                opt4 / crab4, (opt4 / 4.0) / opt1);
  }
  return 0;
}
