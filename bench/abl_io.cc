/// Ablation D: the async I/O spine — what batching, coalescing and queue
/// depth buy once the device charges a real per-operation latency.
///
/// Panel 1 (cleaner write-back): D dirty pages, a volume with ~50 µs of
/// injected per-CALL write latency. The sync baseline is the pre-spine
/// shape — one FlushPage (one device call) per page. The ring variant is
/// the batched cleaner: one gather pass, page-id sort, adjacent runs
/// coalesced into vectored writes, qd workers keeping qd device calls in
/// flight. Sweeping qd x batch shows the two independent wins: batching
/// divides the CALL COUNT (latency charged once per vectored call),
/// queue depth overlaps the calls that remain.
///
/// Panel 2 (readahead): a cold range scan over the same table with
/// scan_readahead off vs on, under injected per-call READ latency. Off,
/// every heap-page miss stalls the scan for a full device round trip;
/// on, the cursor prefetches the next window of record pages through the
/// detached ring while the current leaf is consumed.
///
/// Every data point is a machine-readable JSON line. `--smoke` shrinks
/// both panels to a CI-sized second.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "buffer/buffer_pool.h"
#include "common/clock.h"
#include "io/volume.h"
#include "log/log_storage.h"
#include "page/slotted_page.h"
#include "sm/session.h"
#include "sm/storage_manager.h"

using namespace shoremt;

namespace {

// ------------------------------------------------- panel 1: cleaner ------

constexpr uint64_t kWriteLatencyNs = 50'000;  // ~one NVMe-ish write.

/// Fills pages [1, dirty_pages] of a fresh pool with dirty frames.
void DirtyPages(buffer::BufferPool* pool, PageNum dirty_pages) {
  for (PageNum p = 1; p <= dirty_pages; ++p) {
    auto h = pool->NewPage(p);
    if (!h.ok()) continue;
    page::SlottedPage sp(h->data());
    sp.Init(p, 1, page::PageType::kData);
    h->MarkDirty(Lsn{p}, Lsn{p});
  }
}

/// One cleaner data point; sync==true times the pre-spine per-page
/// FlushPage loop instead of the batched sweep.
double RunCleanerVariant(bool sync, uint32_t qd, uint32_t batch,
                         PageNum dirty_pages) {
  io::VolumeOptions vo;
  vo.write_latency_ns = kWriteLatencyNs;
  io::MemVolume vol(vo);
  if (!vol.Extend(dirty_pages + 8).ok()) return 0;

  buffer::BufferPoolOptions bo;
  bo.frame_count = dirty_pages + 16;
  bo.io.workers = qd;
  bo.io.max_run_pages = batch;
  bo.io.ring_window = qd * batch;
  bo.io.slots = std::max<uint32_t>(256, qd * batch);
  buffer::BufferPool pool(&vol, bo);
  DirtyPages(&pool, dirty_pages);

  uint64_t t0 = NowNanos();
  if (sync) {
    for (PageNum p = 1; p <= dirty_pages; ++p) (void)pool.FlushPage(p);
  } else {
    (void)pool.CleanerSweep();
  }
  double ms = static_cast<double>(NowNanos() - t0) / 1e6;
  double pages_per_s = static_cast<double>(dirty_pages) / (ms / 1e3);

  const io::IoStats& vs = vol.stats();
  uint64_t device_calls = vs.reads.load() + vs.writes.load();
  std::printf("  %-4s qd=%-2u batch=%-2u  %6.2f ms  %9.0f pages/s  "
              "device-calls=%llu  ring-batched=%llu  coalesced=%llu\n",
              sync ? "sync" : "ring", qd, batch, ms, pages_per_s,
              (unsigned long long)device_calls,
              (unsigned long long)pool.io()->stats().batched_calls.load(),
              (unsigned long long)pool.io()->stats().coalesced_pages.load());
  std::printf("JSON {\"bench\":\"abl_io\",\"panel\":\"cleaner\","
              "\"mode\":\"%s\",\"qd\":%u,\"batch\":%u,\"pages\":%llu,"
              "\"ms\":%.2f,\"pages_per_s\":%.0f,\"device_calls\":%llu,"
              "\"coalesced_pages\":%llu,\"write_latency_ns\":%llu}\n",
              sync ? "sync" : "ring", qd, batch,
              (unsigned long long)dirty_pages, ms, pages_per_s,
              (unsigned long long)device_calls,
              (unsigned long long)pool.io()->stats().coalesced_pages.load(),
              (unsigned long long)kWriteLatencyNs);
  return pages_per_s;
}

// ------------------------------------------------ panel 2: readahead -----

constexpr uint64_t kReadLatencyNs = 50'000;  // Sleep-injected: overlappable on 1 core.

/// Cold range scan over a prebuilt table; returns scan wall time in ms.
double RunScanVariant(io::MemVolume* vol, log::LogStorage* wal,
                      size_t readahead, uint64_t rows) {
  sm::StorageOptions opts = sm::StorageOptions::ForStage(sm::Stage::kFinal);
  opts.buffer.frame_count = 4096;
  opts.buffer.io.workers = 8;
  opts.buffer.prefetch_window = 64;
  opts.scan_readahead = readahead;
  auto opened = sm::StorageManager::Open(opts, vol, wal);
  if (!opened.ok()) {
    std::printf("  open failed: %s\n", opened.status().ToString().c_str());
    return 0;
  }
  auto& db = *opened;
  auto session = db->OpenSession();
  if (!session->Begin().ok()) return 0;

  auto table = session->OpenTable("scan_t");
  if (!table.ok()) {
    std::printf("  table lookup failed: %s\n",
                table.status().ToString().c_str());
    return 0;
  }
  uint64_t reads_before = vol->stats().reads.load();
  uint64_t t0 = NowNanos();
  auto cur = session->OpenCursor(*table);
  uint64_t seen = 0, checksum = 0;
  for (auto st = cur.Seek(0); cur.Valid(); st = cur.Next()) {
    if (!st.ok()) break;
    checksum += cur.key();
    ++seen;
  }
  double ms = static_cast<double>(NowNanos() - t0) / 1e6;
  (void)session->Commit();

  uint64_t reads = vol->stats().reads.load() - reads_before;
  uint64_t installed = db->pool()->stats().prefetch_installed.load();
  std::printf("  readahead=%-2zu  scan=%7.2f ms  rows=%llu  "
              "device-reads=%llu  prefetch-installed=%llu\n",
              readahead, ms, (unsigned long long)seen,
              (unsigned long long)reads, (unsigned long long)installed);
  std::printf("JSON {\"bench\":\"abl_io\",\"panel\":\"scan\","
              "\"readahead\":%zu,\"rows\":%llu,\"checksum\":%llu,"
              "\"scan_ms\":%.2f,\"device_reads\":%llu,"
              "\"prefetch_installed\":%llu,\"read_latency_ns\":%llu}\n",
              readahead, (unsigned long long)seen,
              (unsigned long long)checksum, ms, (unsigned long long)reads,
              (unsigned long long)installed,
              (unsigned long long)kReadLatencyNs);
  (void)seen;
  (void)rows;
  return ms;
}

void RunScanPanel(uint64_t rows) {
  io::VolumeOptions vo;
  vo.read_latency_ns = kReadLatencyNs;
  io::MemVolume vol(vo);
  log::LogStorage wal;
  {
    // Build phase: latency applies here too, but the pool is large enough
    // that the build is write-dominated and writes are free.
    sm::StorageOptions opts =
        sm::StorageOptions::ForStage(sm::Stage::kFinal);
    opts.buffer.frame_count = 4096;
    auto opened = sm::StorageManager::Open(opts, &vol, &wal);
    if (!opened.ok()) return;
    auto session = (*opened)->OpenSession();
    if (!session->Begin().ok()) return;
    auto table = session->CreateTable("scan_t");
    if (!table.ok()) return;
    std::vector<uint8_t> payload(100, 0x5a);
    for (uint64_t k = 0; k < rows; ++k) {
      if (!session->Insert(*table, k, payload).ok()) return;
    }
    if (!session->Commit().ok()) return;
    // Flush + checkpoint so the reopens below redo (and thus cache)
    // nothing — their pools start genuinely cold.
    if (!(*opened)->pool()->FlushAll().ok()) return;
    if (!(*opened)->Checkpoint().ok()) return;
  }  // Clean shutdown: the reopen below starts from a cold pool.

  double off_ms = RunScanVariant(&vol, &wal, /*readahead=*/0, rows);
  double on_ms = RunScanVariant(&vol, &wal, /*readahead=*/32, rows);
  if (off_ms > 0 && on_ms > 0) {
    std::printf("  cold-scan speedup from readahead: %.2fx\n",
                off_ms / on_ms);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  PageNum dirty = smoke ? 128 : 512;
  uint64_t rows = smoke ? 4'000 : (bench::FullMode() ? 60'000 : 20'000);
  std::vector<uint32_t> qds =
      smoke ? std::vector<uint32_t>{1, 8} : std::vector<uint32_t>{1, 2, 4, 8, 16};
  std::vector<uint32_t> batches =
      smoke ? std::vector<uint32_t>{1, 16} : std::vector<uint32_t>{1, 4, 16};

  std::printf("=== Ablation D: async I/O spine — batched cleaner + cursor "
              "readahead (this machine) ===\n\n");
  std::printf("--- panel 1: write-back of %llu dirty pages, %llu ns per "
              "device call ---\n",
              (unsigned long long)dirty, (unsigned long long)kWriteLatencyNs);
  double sync_rate = RunCleanerVariant(/*sync=*/true, 1, 1, dirty);
  double best_qd8 = 0;
  for (uint32_t qd : qds) {
    for (uint32_t batch : batches) {
      double r = RunCleanerVariant(/*sync=*/false, qd, batch, dirty);
      if (qd >= 8) best_qd8 = std::max(best_qd8, r);
    }
  }
  if (sync_rate > 0 && best_qd8 > 0) {
    std::printf("  batched-vs-sync at qd>=8: %.1fx  (acceptance floor 3x)\n",
                best_qd8 / sync_rate);
  }

  std::printf("\n--- panel 2: cold range scan of %llu rows, %llu ns per "
              "device read ---\n",
              (unsigned long long)rows, (unsigned long long)kReadLatencyNs);
  RunScanPanel(rows);

  std::printf("\nexpected: ring pages/s scales with both batch (fewer "
              "latency-charged calls)\nand qd (calls overlapped); the "
              "readahead scan overlaps heap-page reads with\nleaf "
              "consumption instead of paying one serial round trip per "
              "miss.\n");
  return 0;
}
