/// Log-shipping replication panel: a forked primary/replica pair over a
/// UNIX socketpair — a real two-process topology, not threads sharing an
/// address space. The parent runs the engine plus a SegmentShipper and
/// concurrent writer sessions; the child runs a Replica with partitioned
/// parallel redo. Both sides emit one JSON line per ~100ms sampling tick
/// ("side" distinguishes them): the primary reports durable/shipped/acked
/// offsets and the lag gauge, the replica its received bytes and
/// replayed-LSN horizon — the converging curves ARE the result.
///
/// Modes:
///   bench_repl            longer write phase (SHOREMT_FULL=1 widens it)
///   bench_repl --smoke    CI check: ships everything, replica catches up,
///                         full committed prefix readable post-EOF.

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "io/volume.h"
#include "log/log_storage.h"
#include "repl/framing.h"
#include "repl/replica.h"
#include "repl/shipper.h"
#include "sm/session.h"
#include "sm/storage_manager.h"

using namespace shoremt;

namespace {

constexpr size_t kSegmentBytes = 64 * 1024;
constexpr uint64_t kBatch = 20;

sm::StorageOptions EngineOptions() {
  sm::StorageOptions o = sm::StorageOptions::ForStage(sm::Stage::kFinal);
  o.log.segment_bytes = kSegmentBytes;
  // No recycling during the run: the shipper must be able to re-read any
  // live segment, and the bench wants deterministic shipped-bytes counts.
  o.buffer.enable_cleaner = false;
  o.checkpoint_daemon = false;
  return o;
}

std::vector<uint8_t> Row(uint64_t key) {
  std::vector<uint8_t> payload(64);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(key * 7 + i);
  }
  return payload;
}

uint64_t NowMs(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

// ------------------------------------------------------------- primary ----

int RunPrimary(int fd, uint64_t rows, int writer_threads) {
  auto t0 = std::chrono::steady_clock::now();
  io::MemVolume volume;
  log::LogStorage wal(0, kSegmentBytes);
  auto opened = sm::StorageManager::Open(EngineOptions(), &volume, &wal);
  if (!opened.ok()) {
    std::fprintf(stderr, "primary open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  auto& db = *opened;

  repl::SegmentShipper shipper(db->log(), fd);
  shipper.Start();

  {
    auto session = db->OpenSession();
    if (!session->Begin().ok() || !session->CreateTable("t").ok() ||
        !session->Commit().ok()) {
      std::fprintf(stderr, "primary: table creation failed\n");
      return 1;
    }
  }

  // Writers insert disjoint key ranges in small committed batches — a
  // steady committed-log stream for the shipper to chase.
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  std::atomic<int> writer_rc{0};
  uint64_t per_writer = rows / writer_threads;
  for (int w = 0; w < writer_threads; ++w) {
    writers.emplace_back([&, w] {
      auto session = db->OpenSession();
      auto table = session->OpenTable("t");
      if (!table.ok()) {
        writer_rc.store(1);
        return;
      }
      uint64_t lo = static_cast<uint64_t>(w) * per_writer;
      for (uint64_t k = lo; k < lo + per_writer; k += kBatch) {
        if (!session->Begin().ok()) {
          writer_rc.store(1);
          return;
        }
        for (uint64_t i = k; i < k + kBatch && i < lo + per_writer; ++i) {
          if (!session->Insert(*table, i, Row(i)).ok()) {
            writer_rc.store(1);
            return;
          }
        }
        if (!session->Commit().ok()) {
          writer_rc.store(1);
          return;
        }
      }
    });
  }

  // The sampling loop: primary-side view of the pipe while writers run.
  auto sample = [&] {
    std::printf("{\"side\":\"primary\",\"t_ms\":%llu,\"durable\":%llu,"
                "\"shipped\":%llu,\"segments\":%llu,\"acked_replayed\":%llu,"
                "\"lag_bytes\":%llu}\n",
                (unsigned long long)NowMs(t0),
                (unsigned long long)wal.size(),
                (unsigned long long)shipper.shipped_offset(),
                (unsigned long long)shipper.segments_shipped(),
                (unsigned long long)shipper.acked_replayed_lsn(),
                (unsigned long long)shipper.lag_bytes());
    std::fflush(stdout);
  };
  std::thread monitor([&] {
    while (!done.load(std::memory_order_acquire)) {
      sample();
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  });
  for (auto& w : writers) w.join();
  if (!db->log()->FlushAll().ok()) writer_rc.store(1);
  done.store(true, std::memory_order_release);
  monitor.join();

  // Catch-up: everything durable must go out before we hang up.
  uint64_t durable = wal.size();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (shipper.shipped_offset() < durable &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  sample();
  bool shipped_all = shipper.shipped_offset() >= durable;
  uint64_t catchup_ms = NowMs(t0);
  shipper.Stop();  // EOF: the replica drains and verifies

  std::printf("{\"side\":\"primary\",\"summary\":true,\"rows\":%llu,"
              "\"durable\":%llu,\"bytes_streamed\":%llu,\"shipped_all\":%s,"
              "\"catchup_ms\":%llu}\n",
              (unsigned long long)rows, (unsigned long long)durable,
              (unsigned long long)shipper.bytes_streamed(),
              shipped_all ? "true" : "false",
              (unsigned long long)catchup_ms);
  std::fflush(stdout);

  if (writer_rc.load() != 0) {
    std::fprintf(stderr, "primary: writer failed\n");
    return 1;
  }
  if (!shipper.status().ok()) {
    std::fprintf(stderr, "primary: shipper failed: %s\n",
                 shipper.status().ToString().c_str());
    return 1;
  }
  if (!shipped_all) {
    std::fprintf(stderr, "primary: replica never caught up (%llu < %llu)\n",
                 (unsigned long long)shipper.shipped_offset(),
                 (unsigned long long)durable);
    return 1;
  }
  return 0;
}

// ------------------------------------------------------------- replica ----

int RunReplica(int fd, uint64_t rows) {
  auto t0 = std::chrono::steady_clock::now();
  io::MemVolume volume;
  log::LogStorage wal(0, kSegmentBytes);
  repl::Replica::Options ro;
  ro.storage = EngineOptions();
  ro.replay_workers = 4;
  repl::Replica replica(&volume, &wal, ro);
  Status st = replica.Start(fd);
  if (!st.ok()) {
    std::fprintf(stderr, "replica start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  while (!replica.stream_ended()) {
    std::printf("{\"side\":\"replica\",\"t_ms\":%llu,\"received\":%llu,"
                "\"replayed_lsn\":%llu,\"frames\":%llu}\n",
                (unsigned long long)NowMs(t0),
                (unsigned long long)replica.received_bytes(),
                (unsigned long long)replica.replayed_lsn(),
                (unsigned long long)replica.frames_applied());
    std::fflush(stdout);
    replica.WaitStreamEnd(100);
  }

  // Primary hung up after shipping everything: drain the replay pool to
  // the received horizon, then the full committed prefix must be
  // readable at it.
  uint64_t horizon = replica.received_bytes() + 1;
  if (!replica.WaitReplayed(horizon, 20000)) {
    std::fprintf(stderr, "replica: replay never reached %llu (at %llu): %s\n",
                 (unsigned long long)horizon,
                 (unsigned long long)replica.replayed_lsn(),
                 replica.error().ToString().c_str());
    return 1;
  }
  if (!replica.error().ok()) {
    std::fprintf(stderr, "replica error: %s\n",
                 replica.error().ToString().c_str());
    return 1;
  }
  auto session = replica.sm()->OpenSession();
  if (!session->Begin().ok()) return 1;
  auto table = session->OpenTable("t");
  if (!table.ok()) {
    std::fprintf(stderr, "replica: table missing after replay\n");
    return 1;
  }
  for (uint64_t k : {uint64_t{0}, rows / 2, rows - 1}) {
    auto got = session->Read(*table, k);
    if (!got.ok() || got->size() != Row(k).size()) {
      std::fprintf(stderr, "replica: key %llu unreadable after catch-up\n",
                   (unsigned long long)k);
      return 1;
    }
  }
  if (!session->Commit().ok()) return 1;
  session.reset();

  std::printf("{\"side\":\"replica\",\"summary\":true,\"received\":%llu,"
              "\"replayed_lsn\":%llu,\"verified\":true}\n",
              (unsigned long long)replica.received_bytes(),
              (unsigned long long)replica.replayed_lsn());
  std::fflush(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  uint64_t rows = smoke ? 4'000 : (bench::FullMode() ? 200'000 : 40'000);
  int writer_threads = 2;

  std::printf("=== log-shipping replication: primary + forked replica "
              "(%llu rows, %d writers) ===\n",
              (unsigned long long)rows, writer_threads);
  std::fflush(stdout);  // the fork below duplicates any buffered bytes

  int fds[2];
  Status st = repl::MakeSocketPair(fds);
  if (!st.ok()) {
    std::fprintf(stderr, "socketpair failed: %s\n", st.ToString().c_str());
    return 1;
  }
  // Fork FIRST: the child must not inherit engine threads mid-flight.
  pid_t pid = ::fork();
  if (pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (pid == 0) {
    ::close(fds[0]);
    int rc = RunReplica(fds[1], rows);
    ::close(fds[1]);
    std::fflush(nullptr);  // _Exit skips stdio teardown
    std::_Exit(rc);
  }
  ::close(fds[1]);
  int rc = RunPrimary(fds[0], rows, writer_threads);
  ::close(fds[0]);

  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) < 0) {
    std::perror("waitpid");
    return 1;
  }
  int child_rc =
      WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : 128 + WTERMSIG(wstatus);
  if (child_rc != 0) {
    std::fprintf(stderr, "replica process exited with %d\n", child_rc);
  }
  if (rc == 0 && child_rc == 0) {
    std::printf("expected: the replica's received curve hugs the primary's "
                "durable curve (tail deltas\nbound lag by flush cadence, "
                "not segment size) and replayed_lsn converges to it; the\n"
                "post-EOF verification proves the committed prefix is "
                "readable on the other side.\n");
  }
  return rc != 0 ? rc : child_rc;
}
