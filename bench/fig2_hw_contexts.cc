/// Figure 2: "Number of HW contexts per chip as a function of time".
///
/// Background data, not an experiment: hardware thread contexts per chip
/// for the processor families the paper plots (public product data as of
/// the paper's writing, extended through its publication year).

#include <cstdio>

namespace {

struct ChipPoint {
  const char* family;
  int year;
  int contexts;  // cores × hardware threads per core.
};

// One row per (family, year) product introduction.
constexpr ChipPoint kPoints[] = {
    {"Pentium", 1993, 1},     {"Pentium", 2000, 1},
    {"Pentium", 2002, 2},  // Pentium 4 HT.
    {"Itanium", 2001, 1},     {"Itanium", 2006, 4},
    {"Intel Core2", 2006, 2}, {"Intel Core2", 2007, 4},
    {"Intel Core2", 2008, 8},  // Dual-die quad + HT era.
    {"UltraSparc", 1995, 1},  {"UltraSparc", 2004, 4},
    {"UltraSparc", 2005, 32},  // Niagara T1: 8 cores x 4 threads.
    {"UltraSparc", 2007, 64},  // Niagara 2: 8 cores x 8 threads.
    {"IBM Power", 1997, 1},   {"IBM Power", 2001, 2},
    {"IBM Power", 2004, 4},   {"IBM Power", 2007, 8},
    {"AMD", 2003, 1},         {"AMD", 2005, 2},
    {"AMD", 2007, 4},         {"AMD", 2008, 8},
};

}  // namespace

int main() {
  std::printf("=== Figure 2: hardware contexts per chip over time ===\n\n");
  std::printf("%-14s  %6s  %10s\n", "family", "year", "contexts");
  for (const ChipPoint& p : kPoints) {
    std::printf("%-14s  %6d  %10d\n", p.family, p.year, p.contexts);
  }
  std::printf("\nexpected shape: flat at 1 through the 1990s, then "
              "exponential growth after ~2003 —\nthe trend that motivates "
              "the whole paper (\"core counts doubling every two years\").\n");
  return 0;
}
