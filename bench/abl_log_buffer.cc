/// Ablation B: log buffer implementations (real engine).
///
/// Direct append throughput through the four log buffer designs
/// (mutex / decoupled / consolidated / carray) over a 1/2/4/8 producer
/// sweep, plus the group-commit effect: device flush calls per committed
/// transaction — measured through three commit disciplines against the
/// same buffer:
///   sync      each committer calls FlushTo itself (buffer-level batching
///             only),
///   pipeline  Submit + WaitDurable through the FlushPipeline daemon
///             (group commit with per-commit acknowledgment),
///   async     Submit per commit, one WaitDurable at the end (maximum
///             amortization — the CommitAsync regime).
///
/// Every data point is also emitted as a machine-readable JSON line
/// (kind, mode, producers, MB/s, ns/insert, flushes/commit) so sweeps can
/// be diffed: the §7.4 story continued — the consolidated buffer's
/// ordered completion hand-off regresses at 4 producers once the pipeline
/// amortizes flushes, and the consolidation-array buffer removes it.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "log/log_manager.h"
#include "log/log_storage.h"

using namespace shoremt;
using namespace shoremt::log;

namespace {

enum class FlushMode { kSync, kPipeline, kAsync };

const char* KindName(LogBufferKind k) {
  switch (k) {
    case LogBufferKind::kMutex: return "mutex";
    case LogBufferKind::kDecoupled: return "decoupled";
    case LogBufferKind::kConsolidated: return "consolidated";
    case LogBufferKind::kCArray: return "carray";
  }
  return "?";
}

const char* ModeName(FlushMode m) {
  switch (m) {
    case FlushMode::kSync: return "sync";
    case FlushMode::kPipeline: return "pipeline";
    case FlushMode::kAsync: return "async";
  }
  return "?";
}

void RunVariant(LogBufferKind kind, int threads, FlushMode mode) {
  // 100us device latency per flush call: the regime where group commit
  // pays (the paper's log lived on an in-memory filesystem, but commits
  // still serialized on flush completion).
  LogStorage storage(/*append_latency_ns=*/100'000);
  LogOptions opts;
  opts.buffer_kind = kind;
  LogManager mgr(&storage, opts);

  const int kAppendsPerThread = bench::FullMode() ? 200'000 : 40'000;
  LogRecord rec;
  rec.type = LogRecordType::kPageInsert;
  rec.txn = 1;
  rec.page = 1;
  rec.after.assign(80, 0xcd);
  const uint64_t record_bytes = rec.SerializedSize();

  uint64_t t0 = NowNanos();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      Lsn last_commit;
      for (int i = 0; i < kAppendsPerThread; ++i) {
        auto a = mgr.Append(rec);
        if (!a.ok()) return;
        // Commit every 100 records: the durability barrier.
        if (i % 100 == 99) {
          switch (mode) {
            case FlushMode::kSync:
              (void)mgr.FlushTo(a->end);
              break;
            case FlushMode::kPipeline:
              mgr.SubmitFlush(a->end);
              (void)mgr.WaitDurable(a->end);
              break;
            case FlushMode::kAsync:
              mgr.SubmitFlush(a->end);
              last_commit = a->end;
              break;
          }
        }
      }
      if (mode == FlushMode::kAsync) (void)mgr.WaitDurable(last_commit);
    });
  }
  for (auto& w : workers) w.join();
  uint64_t ns = NowNanos() - t0;
  uint64_t appends = static_cast<uint64_t>(threads) * kAppendsPerThread;
  double appends_per_sec = static_cast<double>(appends) * 1e9 / ns;
  double mb_per_s = appends_per_sec * record_bytes / 1e6;
  double ns_per_insert = static_cast<double>(ns) / appends;
  uint64_t commits = appends / 100;
  double flushes_per_commit =
      static_cast<double>(storage.flush_calls()) / commits;
  std::printf("%-14s %-9s producers=%d  appends/s=%11.0f  ns/insert=%7.1f  "
              "device-flushes/commit=%.3f\n",
              KindName(kind), ModeName(mode), threads, appends_per_sec,
              ns_per_insert, flushes_per_commit);
  std::printf("JSON {\"bench\":\"abl_log_buffer\",\"kind\":\"%s\","
              "\"mode\":\"%s\",\"producers\":%d,\"mb_per_s\":%.2f,"
              "\"ns_per_insert\":%.1f,\"flushes_per_commit\":%.3f}\n",
              KindName(kind), ModeName(mode), threads, mb_per_s,
              ns_per_insert, flushes_per_commit);
  if (kind == LogBufferKind::kCArray) {
    bench::PrintCArrayLogStats(mgr.stats(), "    carray: ");
  }
}

}  // namespace

int main() {
  std::printf("=== Ablation B: log buffer designs x commit discipline "
              "x producers (real engine, this machine) ===\n\n");
  std::printf("note: on a single-hardware-context host the consolidated "
              "buffer's ordered\ncompletion hand-off degrades when a "
              "predecessor is preempted mid-copy — the\nexact stall the "
              "carray buffer's out-of-order region publication removes.\n\n");
  for (auto kind : {LogBufferKind::kMutex, LogBufferKind::kDecoupled,
                    LogBufferKind::kConsolidated, LogBufferKind::kCArray}) {
    for (auto mode :
         {FlushMode::kSync, FlushMode::kPipeline, FlushMode::kAsync}) {
      for (int producers : {1, 2, 4, 8}) {
        RunVariant(kind, producers, mode);
      }
      std::printf("\n");
    }
  }
  std::printf("expected: the carray buffer tracks the consolidated one at 1 "
              "producer and beats\nit from 4 producers up (no completion "
              "hand-off chain); the pipeline amortizes\ndevice flushes "
              "across concurrent committers (group commit), and async\n"
              "submission amortizes them even within one producer.\n");
  return 0;
}
