/// Ablation B: log buffer implementations (real engine).
///
/// Direct append throughput through the three §7.4 log buffer designs
/// (mutex / decoupled / consolidated), 1 and 4 producer threads, plus the
/// group-commit effect: device flush calls per committed transaction —
/// measured through three commit disciplines against the same buffer:
///   sync      each committer calls FlushTo itself (buffer-level batching
///             only),
///   pipeline  Submit + WaitDurable through the FlushPipeline daemon
///             (group commit with per-commit acknowledgment),
///   async     Submit per commit, one WaitDurable at the end (maximum
///             amortization — the CommitAsync regime).

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "log/log_manager.h"
#include "log/log_storage.h"

using namespace shoremt;
using namespace shoremt::log;

namespace {

enum class FlushMode { kSync, kPipeline, kAsync };

const char* KindName(LogBufferKind k) {
  switch (k) {
    case LogBufferKind::kMutex: return "mutex";
    case LogBufferKind::kDecoupled: return "decoupled";
    case LogBufferKind::kConsolidated: return "consolidated";
  }
  return "?";
}

const char* ModeName(FlushMode m) {
  switch (m) {
    case FlushMode::kSync: return "sync";
    case FlushMode::kPipeline: return "pipeline";
    case FlushMode::kAsync: return "async";
  }
  return "?";
}

void RunVariant(LogBufferKind kind, int threads, FlushMode mode) {
  // 100us device latency per flush call: the regime where group commit
  // pays (the paper's log lived on an in-memory filesystem, but commits
  // still serialized on flush completion).
  LogStorage storage(/*append_latency_ns=*/100'000);
  LogOptions opts;
  opts.buffer_kind = kind;
  LogManager mgr(&storage, opts);

  const int kAppendsPerThread = bench::FullMode() ? 200'000 : 40'000;
  LogRecord rec;
  rec.type = LogRecordType::kPageInsert;
  rec.txn = 1;
  rec.page = 1;
  rec.after.assign(80, 0xcd);

  uint64_t t0 = NowNanos();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      Lsn last_commit;
      for (int i = 0; i < kAppendsPerThread; ++i) {
        auto a = mgr.Append(rec);
        if (!a.ok()) return;
        // Commit every 100 records: the durability barrier.
        if (i % 100 == 99) {
          switch (mode) {
            case FlushMode::kSync:
              (void)mgr.FlushTo(a->end);
              break;
            case FlushMode::kPipeline:
              mgr.SubmitFlush(a->end);
              (void)mgr.WaitDurable(a->end);
              break;
            case FlushMode::kAsync:
              mgr.SubmitFlush(a->end);
              last_commit = a->end;
              break;
          }
        }
      }
      if (mode == FlushMode::kAsync) (void)mgr.WaitDurable(last_commit);
    });
  }
  for (auto& w : workers) w.join();
  uint64_t ns = NowNanos() - t0;
  double appends_per_sec =
      static_cast<double>(threads) * kAppendsPerThread * 1e9 / ns;
  uint64_t commits = static_cast<uint64_t>(threads) * kAppendsPerThread / 100;
  std::printf("%-14s %-9s threads=%d  appends/s=%11.0f  "
              "device-flushes/commit=%.3f\n",
              KindName(kind), ModeName(mode), threads, appends_per_sec,
              static_cast<double>(storage.flush_calls()) / commits);
}

}  // namespace

int main() {
  std::printf("=== Ablation B: log buffer designs x commit discipline "
              "(real engine, this machine) ===\n\n");
  std::printf("note: on a single-hardware-context host the consolidated "
              "buffer's ordered\ncompletion hand-off degrades when a "
              "predecessor is preempted mid-copy; its\nscalability story "
              "is the simulated-Niagara Figure 7 (log -> final stages).\n\n");
  for (auto kind : {LogBufferKind::kMutex, LogBufferKind::kDecoupled,
                    LogBufferKind::kConsolidated}) {
    for (auto mode :
         {FlushMode::kSync, FlushMode::kPipeline, FlushMode::kAsync}) {
      RunVariant(kind, 1, mode);
      RunVariant(kind, 4, mode);
    }
  }
  std::printf("\nexpected: the consolidated buffer has the shortest insert "
              "critical section\n(§6.2.4); the pipeline amortizes device "
              "flushes across concurrent committers\n(group commit), and "
              "async submission amortizes them even within one producer.\n");
  return 0;
}
