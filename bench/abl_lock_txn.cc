/// Ablation C: lock-manager request pool + oldest-transaction cache
/// (real engine).
///
/// (1) Lock/unlock throughput through the mutex-freelist vs lock-free
/// request pool (§7.5); (2) OldestActiveTxn cost with the cached id vs
/// the list scan (§7.3), with many concurrent transactions alive.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "lock/lock_manager.h"
#include "log/log_manager.h"
#include "log/log_storage.h"
#include "txn/txn_manager.h"

using namespace shoremt;

namespace {

void RunPoolVariant(lock::RequestPoolKind kind, int threads) {
  lock::LockOptions opts;
  opts.pool_kind = kind;
  lock::LockManager mgr(opts);
  const int kOpsPerThread = bench::FullMode() ? 200'000 : 50'000;

  uint64_t t0 = NowNanos();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      TxnId txn = t + 1;
      for (int i = 0; i < kOpsPerThread; ++i) {
        lock::LockId id = lock::LockId::Record(
            1, RecordId{static_cast<PageNum>(t * 1000 + i % 64 + 1), 0});
        (void)mgr.Lock(txn, id, lock::LockMode::kS);
        (void)mgr.Unlock(txn, id);
      }
    });
  }
  for (auto& w : workers) w.join();
  uint64_t ns = NowNanos() - t0;
  std::printf("%-16s threads=%d  lock+unlock pairs/s=%11.0f\n",
              kind == lock::RequestPoolKind::kMutexFreelist ? "mutex-freelist"
                                                            : "lock-free",
              threads,
              static_cast<double>(threads) * kOpsPerThread * 1e9 / ns);
}

void RunOldestVariant(bool cached) {
  log::LogStorage storage;
  log::LogManager log(&storage, log::LogOptions{});
  lock::LockManager locks(lock::LockOptions{});
  txn::TxnOptions opts;
  opts.oldest_txn_cache = cached;
  txn::TxnManager txns(&log, &locks, opts);

  // A population of live transactions (the list the scan walks).
  std::vector<txn::Transaction*> live;
  for (int i = 0; i < 512; ++i) live.push_back(txns.Begin());

  const int kQueries = bench::FullMode() ? 5'000'000 : 1'000'000;
  uint64_t t0 = NowNanos();
  volatile TxnId sink = 0;
  for (int i = 0; i < kQueries; ++i) sink = txns.OldestActiveTxn();
  uint64_t ns = NowNanos() - t0;
  (void)sink;
  std::printf("oldest-txn %-9s  %6.1f ns/query  (512 live txns)\n",
              cached ? "cache" : "list-scan",
              static_cast<double>(ns) / kQueries);
  for (auto* t : live) (void)txns.Commit(t);
}

}  // namespace

int main() {
  std::printf("=== Ablation C: lock request pool + oldest-txn cache "
              "(real engine) ===\n\n");
  for (auto kind : {lock::RequestPoolKind::kMutexFreelist,
                    lock::RequestPoolKind::kLockFreeStack}) {
    RunPoolVariant(kind, 1);
    RunPoolVariant(kind, 4);
  }
  std::printf("\n");
  RunOldestVariant(/*cached=*/false);
  RunOldestVariant(/*cached=*/true);
  std::printf("\nexpected: the lock-free pool wins under concurrency; the "
              "cached oldest-txn id\nturns a mutex-protected list scan "
              "into one atomic load (§7.3).\n");
  return 0;
}
