/// Ablation C: lock-manager sharding + request pools + oldest-txn cache
/// (real engine).
///
/// (1) Lock/release throughput through the mutex-freelist vs lock-free
/// per-shard request pool (§7.5); (2) OldestActiveTxn cost with the
/// cached id vs the list scan (§7.3), with many concurrent transactions
/// alive; (3) shard-count sweep of the TxnLockList record-lock path:
/// the sharded table + transaction-private lock cache vs the PR 2-style
/// single-table configuration where every record lock walks the shared
/// hierarchy (volume → store → record) and releases with per-id probes.
/// Panel 3 also emits machine-readable JSON lines (one per data point).

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "lock/lock_manager.h"
#include "lock/txn_lock_list.h"
#include "log/log_manager.h"
#include "log/log_storage.h"
#include "txn/txn_manager.h"

using namespace shoremt;

namespace {

void RunPoolVariant(lock::RequestPoolKind kind, int threads) {
  lock::LockOptions opts;
  opts.pool_kind = kind;
  lock::LockManager mgr(opts);
  const int kOpsPerThread = bench::FullMode() ? 200'000 : 50'000;
  constexpr int kBatch = 64;  // Locks per transaction (bulk-released).

  uint64_t t0 = NowNanos();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; i += kBatch) {
        lock::TxnLockList h =
            mgr.Attach(static_cast<TxnId>(t) * 10'000'000 + i + 1);
        for (int j = 0; j < kBatch; ++j) {
          lock::LockId id = lock::LockId::Record(
              1, RecordId{static_cast<PageNum>(t * 1000 + (i + j) % 64 + 1),
                          0});
          (void)h.Lock(id, lock::LockMode::kS);
        }
        h.ReleaseAll();
      }
    });
  }
  for (auto& w : workers) w.join();
  uint64_t ns = NowNanos() - t0;
  std::printf("%-16s threads=%d  lock+release pairs/s=%11.0f\n",
              kind == lock::RequestPoolKind::kMutexFreelist ? "mutex-freelist"
                                                            : "lock-free",
              threads,
              static_cast<double>(threads) * kOpsPerThread * 1e9 / ns);
}

void RunOldestVariant(bool cached) {
  log::LogStorage storage;
  log::LogManager log(&storage, log::LogOptions{});
  lock::LockManager locks(lock::LockOptions{});
  txn::TxnOptions opts;
  opts.oldest_txn_cache = cached;
  txn::TxnManager txns(&log, &locks, opts);

  // A population of live transactions (the list the scan walks).
  std::vector<txn::Transaction*> live;
  for (int i = 0; i < 512; ++i) live.push_back(txns.Begin());

  const int kQueries = bench::FullMode() ? 5'000'000 : 1'000'000;
  uint64_t t0 = NowNanos();
  volatile TxnId sink = 0;
  for (int i = 0; i < kQueries; ++i) sink = txns.OldestActiveTxn();
  uint64_t ns = NowNanos() - t0;
  (void)sink;
  std::printf("oldest-txn %-9s  %6.1f ns/query  (512 live txns)\n",
              cached ? "cache" : "list-scan",
              static_cast<double>(ns) / kQueries);
  for (auto* t : live) (void)txns.Commit(t);
}

/// One shard-sweep data point: `threads` workers each run transactions of
/// `kRecords` record locks over 4 stores. `cached` = one handle per
/// transaction (intent re-grants served privately, one bulk release);
/// !cached = one handle per record (every lock walks the shared hierarchy
/// and releases alone — the PR 2 single-table behaviour, where LockRecord
/// probed three shared buckets per row and commit released per id).
void RunShardPoint(size_t shards, int threads, bool cached) {
  lock::LockOptions opts;
  opts.shards = shards;
  lock::LockManager mgr(opts);
  const int kTxnsPerThread = bench::FullMode() ? 4'000 : 1'200;
  constexpr int kRecords = 48;

  std::vector<uint64_t> hits(static_cast<size_t>(threads), 0);
  std::vector<uint64_t> acquires(static_cast<size_t>(threads), 0);
  uint64_t t0 = NowNanos();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      TxnId next = static_cast<TxnId>(t) * 100'000'000 + 1;
      for (int i = 0; i < kTxnsPerThread; ++i) {
        if (cached) {
          lock::TxnLockList h = mgr.Attach(next++);
          for (int j = 0; j < kRecords; ++j) {
            StoreId store = static_cast<StoreId>(1 + j % 4);
            RecordId rid{static_cast<PageNum>(t * 100'000 + i * 64 + j + 1),
                         0};
            (void)h.LockRecord(store, rid, lock::LockMode::kX);
          }
          hits[static_cast<size_t>(t)] += h.cache_hits();
          h.ReleaseAll();
        } else {
          for (int j = 0; j < kRecords; ++j) {
            lock::TxnLockList h = mgr.Attach(next++);
            StoreId store = static_cast<StoreId>(1 + j % 4);
            RecordId rid{static_cast<PageNum>(t * 100'000 + i * 64 + j + 1),
                         0};
            (void)h.LockRecord(store, rid, lock::LockMode::kX);
            h.ReleaseAll();
          }
        }
        acquires[static_cast<size_t>(t)] += kRecords;
      }
    });
  }
  for (auto& w : workers) w.join();
  uint64_t ns = NowNanos() - t0;
  uint64_t total_locks = 0, total_hits = 0;
  for (int t = 0; t < threads; ++t) {
    total_locks += acquires[static_cast<size_t>(t)];
    total_hits += hits[static_cast<size_t>(t)];
  }
  double locks_per_s = static_cast<double>(total_locks) * 1e9 /
                       static_cast<double>(ns);
  double hit_rate =
      cached ? static_cast<double>(total_hits) /
                   static_cast<double>(total_locks * 3)  // vol+store+rec.
             : 0.0;
  std::printf("%-22s shards=%-3zu threads=%d  record locks/s=%11.0f  "
              "cache-hit rate=%.2f\n",
              cached ? "sharded+cached" : "single-probe (PR2-ish)",
              mgr.shard_count(), threads, locks_per_s, hit_rate);
  std::printf("JSON {\"bench\":\"abl_lock_txn\",\"panel\":\"shard_sweep\","
              "\"variant\":\"%s\",\"shards\":%zu,\"threads\":%d,"
              "\"record_locks_per_sec\":%.0f,\"cache_hit_rate\":%.4f}\n",
              cached ? "cached" : "baseline", mgr.shard_count(), threads,
              locks_per_s, hit_rate);
}

void RunShardSweep() {
  std::printf("--- shard sweep: TxnLockList record locks "
              "(vol+store intents + row X, bulk release) ---\n");
  int max_threads = static_cast<int>(std::thread::hardware_concurrency());
  if (max_threads < 4) max_threads = 4;
  if (max_threads > 8 && !bench::FullMode()) max_threads = 8;
  // The PR 2 single-table baseline: one shard, every lock through the
  // shared table, per-id release.
  RunShardPoint(/*shards=*/1, max_threads, /*cached=*/false);
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    RunShardPoint(shards, max_threads, /*cached=*/true);
  }
  std::printf("expected: the cached configurations beat the single-probe "
              "baseline at every shard\ncount (intent re-grants never touch "
              "the table; release is one latch per shard), and\nthroughput "
              "rises with shards while record traffic contends on fewer "
              "latches.\n");
}

}  // namespace

int main() {
  std::printf("=== Ablation C: lock sharding + request pools + oldest-txn "
              "cache (real engine) ===\n\n");
  for (auto kind : {lock::RequestPoolKind::kMutexFreelist,
                    lock::RequestPoolKind::kLockFreeStack}) {
    RunPoolVariant(kind, 1);
    RunPoolVariant(kind, 4);
  }
  std::printf("\n");
  RunOldestVariant(/*cached=*/false);
  RunOldestVariant(/*cached=*/true);
  std::printf("\n");
  RunShardSweep();
  std::printf("\nexpected: the lock-free per-shard pool wins under "
              "concurrency; the cached oldest-txn id\nturns a "
              "mutex-protected list scan into one atomic load (§7.3).\n");
  return 0;
}
