/// Ablation A: buffer pool hash strategy (real engine).
///
/// Sweeps the three frame-table strategies (§6.2.3 / §7.2) plus the
/// pin-if-pinned toggle on this machine: hot-page fix cost and a short
/// multi-client insert run. (Scalability curves for these strategies are
/// what Figure 7's bpool stages show on the simulated 32-context box; this
/// binary measures the real data structures.)

#include <cstdio>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "io/volume.h"
#include "log/log_storage.h"
#include "sm/options.h"
#include "sm/session.h"
#include "sm/storage_manager.h"
#include "workload/insert_workload.h"

using namespace shoremt;
using namespace shoremt::workload;

namespace {

const char* KindName(buffer::TableKind k) {
  switch (k) {
    case buffer::TableKind::kGlobalChained: return "global-chained";
    case buffer::TableKind::kPerBucketChained: return "per-bucket";
    case buffer::TableKind::kCuckoo: return "cuckoo";
  }
  return "?";
}

void RunVariant(buffer::TableKind kind, bool pin_if_pinned) {
  io::MemVolume volume;
  log::LogStorage wal;
  sm::StorageOptions opts = sm::StorageOptions::ForStage(sm::Stage::kFinal);
  opts.buffer.table_kind = kind;
  opts.buffer.pin_if_pinned = pin_if_pinned;
  auto opened = sm::StorageManager::Open(opts, &volume, &wal);
  if (!opened.ok()) return;
  auto& db = *opened;

  // Hot-page fix latency: repeatedly fix one cached page.
  auto session = db->OpenSession();
  (void)session->Begin();
  auto table = session->CreateTable("hot");
  std::vector<uint8_t> row(64, 1);
  (void)session->Insert(*table, 1, row);
  (void)session->Commit();
  const int kFixes = bench::FullMode() ? 2'000'000 : 300'000;
  // Keep the page pinned so the optimistic path is eligible.
  auto keeper = db->pool()->FixPage(
      session->OpenTable("hot")->index_root, sync::LatchMode::kShared);
  uint64_t t0 = NowNanos();
  (void)session->Begin();
  for (int i = 0; i < kFixes / 100; ++i) {
    for (int j = 0; j < 100; ++j) {
      (void)session->Read(*table, 1);
    }
  }
  (void)session->Commit();
  uint64_t per_read = (NowNanos() - t0) / kFixes;

  // Short concurrent insert run.
  InsertBenchConfig cfg;
  cfg.clients = 4;
  cfg.records_per_commit = 100;
  cfg.warmup_ms = 100;
  cfg.duration_ms = bench::FullMode() ? 2000 : 600;
  auto state = SetupInsertBench(db.get(), cfg);
  if (!state.ok()) return;
  auto r = RunInsertBench(cfg, &*state);

  const auto& bp = db->pool()->stats();
  std::printf("%-16s pin_if_pinned=%d  hot-read=%6lluns  "
              "4-client inserts/s=%9.0f  optimistic-hit%%=%5.1f\n",
              KindName(kind), pin_if_pinned ? 1 : 0,
              (unsigned long long)per_read,
              r.tps * cfg.records_per_commit,
              bp.fixes.load() > 0
                  ? 100.0 * bp.optimistic_hits.load() / bp.fixes.load()
                  : 0.0);
}

}  // namespace

int main() {
  std::printf("=== Ablation A: buffer pool hash strategy (real engine, "
              "this machine) ===\n\n");
  std::printf("note: multi-client numbers on a single-hardware-context "
              "host carry scheduler\nnoise; the contended-scaling story is "
              "the simulated-Niagara Figure 7.\n\n");
  for (auto kind :
       {buffer::TableKind::kGlobalChained, buffer::TableKind::kPerBucketChained,
        buffer::TableKind::kCuckoo}) {
    RunVariant(kind, /*pin_if_pinned=*/false);
    RunVariant(kind, /*pin_if_pinned=*/true);
  }
  std::printf("\nexpected: cuckoo/per-bucket beat global-chained under "
              "concurrency; pin-if-pinned\nraises the optimistic hit rate "
              "on hot pages (§6.2.1).\n");
  return 0;
}
