/// YCSB contention-sweep panel: core workloads A-F over the Session API,
/// request skew swept from uniform to zipf 0.99 across thread counts.
/// Emits one JSON line per (workload, theta, threads) cell with
/// throughput and merged p50/p99/p999 transaction latency, while an
/// obs::ProfilingThread concurrently streams the live per-second metrics
/// feed (CSV, "live " prefix) — every run doubles as a dashboard.
///
/// Modes:
///   bench_fig_ycsb            quick sweep (SHOREMT_FULL=1 widens it)
///   bench_fig_ycsb --smoke    2-second YCSB-B check (uniform + zipf 0.9)
///                             used by CI so the workload cannot rot.

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "io/volume.h"
#include "log/log_storage.h"
#include "obs/metrics_registry.h"
#include "obs/profiling_thread.h"
#include "sm/session.h"
#include "sm/storage_manager.h"
#include "workload/driver.h"
#include "workload/ycsb.h"

using namespace shoremt;
using namespace shoremt::workload;

namespace {

struct SweepPoint {
  double theta;  ///< 0 = uniform.
};

/// One measured cell: fresh database (D/E mutate it), per-thread session
/// + YcsbWorker, async commits drained through WaitAll, latency merged
/// across the driver's per-thread histograms.
///
/// `optimistic_override`: -1 keeps the stage default (kFinal = optimistic
/// descents); 0/1 forces shared-latch crabbing / optimistic lock coupling
/// for the read-mostly ablation panel.
bool RunCell(YcsbWorkload w, double theta, int threads, uint64_t window_ms,
             const YcsbConfig& base_cfg, uint64_t profile_interval_us,
             int optimistic_override = -1) {
  io::MemVolume volume;
  log::LogStorage wal(/*append_latency_ns=*/20'000);
  sm::StorageOptions sm_opts = sm::StorageOptions::ForStage(sm::Stage::kFinal);
  sm_opts.buffer.frame_count = 8192;
  if (optimistic_override >= 0) {
    sm_opts.btree.optimistic_reads = optimistic_override != 0;
  }
  // F's read-modify-write upgrades S -> X on the row it just read; two
  // workers colliding on a hot key upgrade-deadlock. Resolve cycles
  // immediately (victim aborts, driver retries) instead of waiting out
  // the 500ms timeout, which would eat a whole measurement window.
  sm_opts.lock.deadlock_policy = lock::DeadlockPolicy::kWaitsForGraph;
  auto opened = sm::StorageManager::Open(sm_opts, &volume, &wal);
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return false;
  }
  auto& db = *opened;

  YcsbConfig cfg = base_cfg;
  cfg.zipf_theta = theta;
  YcsbDatabase ycsb;
  {
    auto loader = db->OpenSession();
    Status st = LoadYcsb(loader.get(), cfg, &ycsb);
    if (!st.ok()) {
      std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
      return false;
    }
  }

  std::vector<std::unique_ptr<sm::Session>> sessions;
  std::vector<std::unique_ptr<YcsbWorker>> workers;
  for (int i = 0; i < threads; ++i) {
    sessions.push_back(db->OpenSession());
    workers.push_back(std::make_unique<YcsbWorker>(
        &ycsb, 0x9c5bULL ^ (static_cast<uint64_t>(i + 1) *
                            0x9e3779b97f4a7c15ULL)));
  }

  sm::SessionStats base = db->harvested_session_stats();
  obs::MetricsSnapshot m0 = db->metrics()->Snapshot();

  // The live feed: per-interval counter deltas + tick latency quantiles,
  // streamed while the workload runs.
  obs::ProfilingOptions prof_opts;
  prof_opts.interval = std::chrono::microseconds(profile_interval_us);
  prof_opts.prefix = "live ";
  obs::ProfilingThread profiler(db->metrics(), prof_opts);
  profiler.Start();

  auto drain = [&](int worker) { (void)sessions[worker]->WaitAll(); };
  DriverResult res = RunDriver(
      threads, /*warmup_ms=*/window_ms / 5, window_ms,
      [&](int worker, Rng&) {
        return RunYcsbTxn(sessions[worker].get(), workers[worker].get(), w,
                          CommitMode::kAsync);
      },
      drain);

  profiler.Stop();
  for (auto& s : sessions) s->Harvest();
  sm::SessionStats stats = db->harvested_session_stats();
  obs::MetricsSnapshot m1 = db->metrics()->Snapshot();
  auto delta = [&](obs::Metric m) {
    return (unsigned long long)(m1[m] - m0[m]);
  };

  std::printf(
      "{\"workload\":\"%s\",\"dist\":\"%s\",\"theta\":%.2f,"
      "\"threads\":%d,\"optimistic\":%d,\"tps\":%.0f,\"p50_ns\":%llu,"
      "\"p99_ns\":%llu,\"p999_ns\":%llu,\"aborts\":%llu,"
      "\"lock_waits\":%llu,\"ops\":%llu,\"btree_finds\":%llu,"
      "\"btree_descents\":%llu,\"btree_restarts\":%llu,"
      "\"btree_fallbacks\":%llu}\n",
      std::string(YcsbName(w)).c_str(), theta > 0 ? "zipf" : "uniform",
      theta, threads, sm_opts.btree.optimistic_reads ? 1 : 0, res.tps,
      (unsigned long long)res.latency.P50(),
      (unsigned long long)res.latency.P99(),
      (unsigned long long)res.latency.P999(),
      (unsigned long long)res.aborts,
      (unsigned long long)(stats.lock_waits - base.lock_waits),
      (unsigned long long)(stats.ops() - base.ops()),
      delta(obs::Metric::kBtreeFinds),
      delta(obs::Metric::kBtreeOptimisticDescents),
      delta(obs::Metric::kBtreeRestarts),
      delta(obs::Metric::kBtreeLatchFallbacks));
  bench::PrintIoSpineStats(volume.stats(), db->pool()->stats(), "  ");
  std::fflush(stdout);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bool full = bench::FullMode();

  if (smoke) {
    // CI smoke: YCSB-B (95/5) for ~1s each under uniform and zipf 0.9 —
    // proves load, mix execution, async drain and the live feed end to
    // end in about two seconds of measurement.
    std::printf("=== YCSB-B smoke (uniform + zipf 0.9) ===\n");
    YcsbConfig cfg;
    cfg.record_count = 2'000;
    cfg.field_size = 64;
    for (double theta : {0.0, 0.9}) {
      if (!RunCell(YcsbWorkload::kB, theta, /*threads=*/2,
                   /*window_ms=*/800, cfg, /*profile_interval_us=*/250'000)) {
        return 1;
      }
    }
    return 0;
  }

  std::printf("=== YCSB A-F: Zipfian contention sweep "
              "(uniform -> zipf 0.99 x threads) ===\n");
  YcsbConfig cfg;
  cfg.record_count = full ? 50'000 : 4'000;
  cfg.field_size = 100;
  std::vector<SweepPoint> sweep = {{0.0}, {0.5}, {0.9}, {0.99}};
  std::vector<int> threads = full ? std::vector<int>{1, 2, 4, 8}
                                  : std::vector<int>{2, 4};
  uint64_t window_ms = full ? 800 : 250;
  uint64_t interval_us = full ? 1'000'000 : 200'000;
  for (YcsbWorkload w : {YcsbWorkload::kA, YcsbWorkload::kB, YcsbWorkload::kC,
                         YcsbWorkload::kD, YcsbWorkload::kE,
                         YcsbWorkload::kF}) {
    for (const SweepPoint& pt : sweep) {
      for (int t : threads) {
        if (!RunCell(w, pt.theta, t, window_ms, cfg, interval_us)) return 1;
      }
    }
  }
  // Read-mostly panel: YCSB-C (100% reads) at zipf 0.9 — the hot root
  // and upper levels make shared-latch crabbing bounce the latch cache
  // line between readers, while optimistic descents never write it. The
  // live feed streams the btree_finds / btree_optimistic_descents /
  // btree_restarts / btree_latch_fallbacks columns per tick; the JSON
  // line carries the cell totals.
  std::printf("=== YCSB-C read-mostly panel: shared-crab vs optimistic "
              "descent ===\n");
  for (int opt : {0, 1}) {
    for (int t : threads) {
      if (!RunCell(YcsbWorkload::kC, 0.9, t, window_ms, cfg, interval_us,
                   opt)) {
        return 1;
      }
    }
  }
  std::printf("expected: skew costs little on read-only C; A/F collapse "
              "p99 as theta grows (hot-row\nX-lock convoys); E pays "
              "scan-vs-insert lock waits; the live feed's per-tick lock_"
              "waits and\ntxn_commits columns show the same story while "
              "it happens.\n");
  return 0;
}
