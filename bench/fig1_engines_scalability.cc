/// Figure 1: "Scalability as a function of available hardware contexts".
///
/// Normalized throughput of the four open-source engines on the insert
/// microbenchmark, 1–32 concurrent threads on the simulated Niagara.
/// Paper shape: none scales — PostgreSQL and Shore plateau, BerkeleyDB and
/// MySQL peak early and then *drop*.

#include <cstdio>

#include "bench/bench_util.h"
#include "workload/engine_profiles.h"

using namespace shoremt;
using namespace shoremt::workload;

int main() {
  std::printf("=== Figure 1: normalized insert-microbenchmark throughput "
              "(simulated T2000) ===\n\n");
  Calibration calib;
  std::vector<int> threads = bench::ThreadSweep();
  std::vector<EngineKind> engines = {EngineKind::kPostgres, EngineKind::kMysql,
                                     EngineKind::kShore, EngineKind::kBdb};
  std::vector<std::string> names;
  std::vector<std::vector<double>> series;
  for (EngineKind e : engines) {
    names.emplace_back(EngineName(e));
    WorkloadModel model = InsertMicroModel(e, sm::Stage::kFinal, calib);
    std::vector<double> curve;
    double base = 0.0;
    for (int t : threads) {
      double tps = bench::ModelTxnTps(model, t);
      if (base == 0.0) base = tps;
      curve.push_back(tps / base);  // Normalized to 1 thread.
    }
    series.push_back(std::move(curve));
  }
  bench::PrintSeriesTable("throughput normalized to 1 thread", threads, names,
                          series);
  std::printf("\nexpected shape: postgres & shore plateau; bdb and mysql "
              "decline after their early peak.\n");
  return 0;
}
