/// Figure 6: "Examples of the kinds of impact optimizations can have on
/// performance and scalability" — the free space manager story (§6.1).
///
/// Starting from the "bpool 1" build: (1) replace the contended pthread
/// mutex with T&T&S — single-thread throughput jumps ~2x, 32-thread
/// throughput does not move; (2) replace with MCS — scalability improves,
/// the critical section stays contended; (3) refactor so the page latch
/// is acquired outside the critical section — costs ~30% single-thread,
/// nets ~3x at 32 threads.

#include <cstdio>

#include "bench/bench_util.h"
#include "workload/engine_profiles.h"

using namespace shoremt;
using namespace shoremt::workload;

namespace {

/// Replaces the free-space section of `model`.
void SetFsm(WorkloadModel* model, simcore::SimLockType type, uint64_t cs_ns,
            uint64_t acquire_overhead_ns) {
  for (ModelSection& s : model->sections) {
    if (s.name == "smt.fsm") {
      s.lock_type = type;
      s.cs_ns = cs_ns + acquire_overhead_ns;
      return;
    }
  }
}

}  // namespace

int main() {
  std::printf("=== Figure 6: free space manager mutex variants "
              "(simulated T2000) ===\n\n");
  Calibration calib;
  std::vector<int> threads = bench::ThreadSweep();

  // All variants start from the bpool-1 stage model.
  uint64_t cs = calib.fsm_cs_long + calib.fsm_latch_extra;
  // The pthread mutex's per-acquisition overhead is fitted so that the
  // T&T&S swap reproduces the paper's reported ~90% single-thread gain.
  uint64_t pthread_overhead = 14000;

  struct Variant {
    const char* name;
    simcore::SimLockType type;
    uint64_t cs_ns;
    uint64_t overhead_ns;
    bool refactored;
  };
  std::vector<Variant> variants = {
      {"bpool 1", simcore::SimLockType::kBlocking, cs, pthread_overhead,
       false},
      {"T&T&S mutex", simcore::SimLockType::kTtas, cs, 0, false},
      {"MCS mutex", simcore::SimLockType::kMcs, cs, 0, false},
      {"Refactor", simcore::SimLockType::kMcs, calib.fsm_cs_short, 0, true},
  };

  std::vector<std::string> names;
  std::vector<std::vector<double>> series;
  for (const Variant& v : variants) {
    names.emplace_back(v.name);
    WorkloadModel model =
        InsertMicroModel(EngineKind::kShoreMt, sm::Stage::kBufferPool1, calib);
    SetFsm(&model, v.type, v.cs_ns, v.overhead_ns);
    if (v.refactored) {
      // The latch acquisition moves out of the critical section and the
      // restructuring adds private path cost (§6.1: "the overhead we
      // introduced reduced single-thread performance by about 30%").
      model.compute_ns += calib.fsm_latch_extra + 2 * calib.fsm_refactor_overhead;
    }
    std::vector<double> curve;
    for (int t : threads) {
      curve.push_back(bench::ModelTxnTps(model, t) / 1000.0);
    }
    series.push_back(std::move(curve));
  }
  bench::PrintSeriesTable("throughput (ktps, 100-insert txns)", threads,
                          names, series);
  std::printf("\nexpected shape: T&T&S doubles 1-thread throughput vs "
              "bpool 1 with no 32-thread gain;\nMCS lifts the 32-thread "
              "point; Refactor costs ~30%% at 1 thread and wins big at "
              "32.\n");
  return 0;
}
