/// Figure 7: "Performance and scalability improvements due to
/// optimizations detailed in Section 7".
///
/// The insert microbenchmark across the seven development stages of
/// Shore-MT (baseline → bpool 1 → caching → log → lock mgr → bpool 2 →
/// final), throughput-per-client on the simulated 32-context Niagara.
/// Paper shape: baseline flat ~constant total (tps/client ~ 1/x); every
/// stage raises the 32-thread envelope; final is compute-bound.

#include <cstdio>

#include "bench/bench_util.h"
#include "workload/engine_profiles.h"

using namespace shoremt;
using namespace shoremt::workload;

int main() {
  std::printf("=== Figure 7: Shore to Shore-MT optimization stages "
              "(simulated T2000) ===\n\n");
  Calibration calib;
  std::vector<int> threads = bench::ThreadSweep();
  std::vector<std::string> names;
  std::vector<std::vector<double>> series;
  for (sm::Stage stage : sm::kAllStages) {
    names.emplace_back(sm::StageName(stage));
    WorkloadModel model = InsertMicroModel(EngineKind::kShoreMt, stage, calib);
    std::vector<double> curve;
    for (int t : threads) {
      curve.push_back(bench::ModelTxnTpsPerThread(model, t));
    }
    series.push_back(std::move(curve));
  }
  bench::PrintSeriesTable("transactions/second/client (100-insert txns)",
                          threads, names, series);

  // The paper's headline numbers: scalability (32-thread total throughput
  // over 1-thread) and the single-thread speedup from baseline to final.
  std::printf("\nsummary:\n");
  double base_1 = series.front().front();
  double final_1 = series.back().front();
  double base_32 = series.front().back() * threads.back();
  double final_32 = series.back().back() * threads.back();
  std::printf("  single-thread speedup baseline->final: %.1fx "
              "(paper: ~3x, §5)\n", final_1 / base_1);
  std::printf("  32-thread total speedup baseline->final: %.0fx\n",
              final_32 / base_32);
  std::printf("  final-stage scalability (32T total / 1T total): %.1fx on "
              "32 contexts\n",
              final_32 / final_1);
  return 0;
}
