/// Ablation C: bounded-log endurance — the page-cleaner / checkpoint /
/// log-recycling loop (real engine).
///
/// Sustained single-row insert transactions (async commit) over a log
/// with SMALL segments, a background checkpoint daemon, and the page
/// cleaner toggled on/off:
///
///   cleaner OFF  dirty pages pin the redo low-water mark, checkpoints
///                cannot recycle, live segments grow with the run;
///   cleaner ON   write-back advances the low-water mark, checkpoints
///                recycle behind the workload, live segments stay bounded
///                at the pressure threshold.
///
/// After each window the engine crashes (SimulateCrash) and reopens, so
/// the sweep also measures the recovery bound the loop buys: with the
/// cleaner on, redo scans only the tail above the last checkpoint's
/// low-water mark (redo_scan_bytes ≪ total log bytes).
///
/// Every data point is emitted as a machine-readable JSON line (cleaner,
/// producers, inserts/s, p99 insert ns, live/allocated/recycled segment
/// counts, recycle rate, redo-scan bytes) so endurance sweeps can be
/// diffed across revisions.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "io/volume.h"
#include "log/log_storage.h"
#include "sm/session.h"
#include "sm/storage_manager.h"
#include "workload/driver.h"

using namespace shoremt;

namespace {

constexpr size_t kSegmentBytes = 32 << 10;

void RunVariant(bool cleaner, int producers) {
  io::MemVolume volume;
  log::LogStorage wal(/*append_latency_ns=*/0, kSegmentBytes);
  sm::StorageOptions opts =
      sm::StorageOptions::ForStage(sm::Stage::kFinal);
  opts.log.segment_bytes = kSegmentBytes;
  opts.log.recycle_pressure_segments = 4;
  opts.buffer.enable_cleaner = cleaner;
  opts.buffer.cleaner_interval_us = 1000;
  opts.buffer.cleaner_batch = 64;
  opts.checkpoint_daemon = true;
  opts.checkpoint_interval_ms = 20;
  uint64_t window_ms = bench::FullMode() ? 2000 : 400;

  double inserts_per_s = 0;
  uint64_t p99_ns = 0;
  uint64_t live = 0, allocated = 0, recycled = 0, checkpoints = 0,
           cleaner_wb = 0;
  {
    auto opened = sm::StorageManager::Open(opts, &volume, &wal);
    if (!opened.ok()) return;
    auto& db = *opened;
    // One session + private table per producer (the paper's record-insert
    // shape: no logical contention, pure engine stress).
    std::vector<std::unique_ptr<sm::Session>> sessions;
    std::vector<sm::TableInfo> tables;
    std::vector<uint64_t> next_key(static_cast<size_t>(producers), 0);
    for (int i = 0; i < producers; ++i) {
      sessions.push_back(db->OpenSession());
      sm::Session* s = sessions.back().get();
      if (!s->Begin().ok()) return;
      auto table = s->CreateTable("t" + std::to_string(i));
      if (!table.ok() || !s->Commit().ok()) return;
      tables.push_back(*table);
    }
    std::vector<uint8_t> payload(100, 0xab);
    auto result = workload::RunDriver(
        producers, /*warmup_ms=*/window_ms / 5, window_ms,
        [&](int w, Rng&) {
          sm::Op op;
          op.type = sm::OpType::kInsert;
          op.key = ++next_key[static_cast<size_t>(w)];
          op.payload = payload;
          // One insert per transaction, async commit: the p99 txn latency
          // IS the p99 insert latency, with durability off the critical
          // path (the regime where cleaner interference would show).
          return sessions[w]->ApplyAsync(tables[static_cast<size_t>(w)],
                                         {&op, 1}).ok();
        },
        [&](int w) { (void)sessions[w]->WaitAll(); });
    inserts_per_s = result.tps;
    p99_ns = result.latency.Percentile(0.99);
    const log::LogStats& ls = db->log()->stats();
    live = db->log()->live_segments();
    allocated = ls.segments_allocated.load();
    recycled = ls.segments_recycled.load();
    checkpoints = ls.checkpoint_count.load();
    cleaner_wb = ls.cleaner_writebacks.load();
    bench::PrintLogLifecycleStats(db->log(), "    ");
    sessions.clear();
    db->SimulateCrash();
  }

  // Crash + reopen: how much log does recovery actually scan?
  uint64_t t0 = NowNanos();
  uint64_t redo_scan = 0;
  {
    auto reopened = sm::StorageManager::Open(opts, &volume, &wal);
    if (!reopened.ok()) {
      std::printf("    recovery FAILED: %s\n",
                  reopened.status().ToString().c_str());
      return;
    }
    redo_scan = (*reopened)->log()->stats().redo_scan_bytes.load();
    (*reopened)->SimulateCrash();  // Keep the artifact for nothing further.
  }
  double recover_ms = static_cast<double>(NowNanos() - t0) / 1e6;
  double seconds = static_cast<double>(window_ms) / 1000.0;

  std::printf("cleaner=%-3s producers=%d  inserts/s=%9.0f  p99-insert=%6llu ns"
              "  live-segs=%llu  recycled=%llu  redo-scan=%llu/%llu B  "
              "recover=%.1f ms\n",
              cleaner ? "on" : "off", producers, inserts_per_s,
              (unsigned long long)p99_ns, (unsigned long long)live,
              (unsigned long long)recycled, (unsigned long long)redo_scan,
              (unsigned long long)wal.size(), recover_ms);
  std::printf("JSON {\"bench\":\"abl_cleaner\",\"cleaner\":%d,"
              "\"producers\":%d,\"inserts_per_s\":%.0f,"
              "\"p99_insert_ns\":%llu,\"segments_live\":%llu,"
              "\"segments_allocated\":%llu,\"segments_recycled\":%llu,"
              "\"recycles_per_s\":%.1f,\"checkpoints\":%llu,"
              "\"cleaner_writebacks\":%llu,\"redo_scan_bytes\":%llu,"
              "\"log_bytes_total\":%llu,\"recover_ms\":%.1f}\n",
              cleaner ? 1 : 0, producers, inserts_per_s,
              (unsigned long long)p99_ns, (unsigned long long)live,
              (unsigned long long)allocated, (unsigned long long)recycled,
              static_cast<double>(recycled) / seconds,
              (unsigned long long)checkpoints,
              (unsigned long long)cleaner_wb, (unsigned long long)redo_scan,
              (unsigned long long)wal.size(), recover_ms);
}

}  // namespace

int main() {
  std::printf("=== Ablation C: bounded-log endurance — cleaner / checkpoint "
              "/ recycle loop (real engine, this machine) ===\n\n");
  std::printf("segments=%zu B, checkpoint daemon every 20 ms, pressure "
              "threshold 4 live segments.\n\n",
              kSegmentBytes);
  for (int producers : {1, 2, 4}) {
    for (bool cleaner : {false, true}) {
      RunVariant(cleaner, producers);
    }
    std::printf("\n");
  }
  std::printf("expected: with the cleaner ON the live segment count stays "
              "near the pressure\nthreshold while recycled grows with the "
              "run, and redo-scan bytes stay a small\nfraction of total log "
              "bytes; OFF, dirty pages pin the low-water mark, segments\n"
              "accumulate, and recovery scans (nearly) everything.\n");
  return 0;
}
