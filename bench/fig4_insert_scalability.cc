/// Figure 4: "Scalability and performance comparison of Shore-MT vs
/// several open-source engines and one commercial engine".
///
/// Insert microbenchmark, throughput-per-thread (the paper plots log-y:
/// equal scalability = equal slope). Paper shape: Shore-MT highest and
/// near-flat; DBMS "X" close behind; BDB fastest at 1–4 threads then
/// collapsing; MySQL declining past ~8; PostgreSQL plateauing; Shore flat
/// and lowest.

#include <cstdio>

#include "bench/bench_util.h"
#include "io/volume.h"
#include "log/log_storage.h"
#include "sm/session.h"
#include "sm/storage_manager.h"
#include "workload/engine_profiles.h"
#include "workload/insert_workload.h"

using namespace shoremt;
using namespace shoremt::workload;

namespace {

/// Companion panel: the same microbenchmark against the real engine on
/// this machine, driven entirely through sm::Session (one per client,
/// batched Apply per commit). Harvested session statistics replace global
/// counters — the per-op path is counter-free. Each client count runs
/// twice: blocking Apply (sync commit) vs ApplyAsync (group-commit
/// pipeline, WaitAll at drain); flushes/commit shows the batching.
void RunRealEnginePanel() {
  std::printf("--- real engine (this machine), sync vs async commit ---\n");
  std::vector<int> clients = bench::FullMode() ? std::vector<int>{1, 2, 4, 8}
                                               : std::vector<int>{1, 2, 4};
  std::printf("%-6s %-8s  %14s  %12s  %10s  %13s\n", "mode", "clients",
              "inserts/s", "tps/client", "wal MB", "flushes/commit");
  for (int c : clients) {
    for (bool async_commit : {false, true}) {
      io::MemVolume volume;
      // Modest per-flush device latency so flush amortization is visible.
      log::LogStorage wal(/*append_latency_ns=*/100'000);
      auto opened = sm::StorageManager::Open(
          sm::StorageOptions::ForStage(sm::Stage::kFinal), &volume, &wal);
      if (!opened.ok()) return;
      auto& db = *opened;
      InsertBenchConfig cfg;
      cfg.clients = c;
      cfg.records_per_commit = 100;
      cfg.warmup_ms = bench::FullMode() ? 200 : 50;
      cfg.duration_ms = bench::FullMode() ? 1000 : 300;
      cfg.async_commit = async_commit;
      auto state = SetupInsertBench(db.get(), cfg);
      if (!state.ok()) return;
      // Baseline after setup: the flush count and the commit count below
      // then cover the same window (the whole run, warmup included) — the
      // setup commits themselves are excluded via `setup_commits`.
      uint64_t flushes_before = wal.flush_calls();
      uint64_t setup_commits = 0;
      for (auto& s : state->sessions) setup_commits += s->stats().commits;
      auto r = RunInsertBench(cfg, &*state);
      for (auto& s : state->sessions) s->Harvest();
      sm::SessionStats stats = db->harvested_session_stats();
      uint64_t commits = stats.commits - setup_commits;
      double flushes_per_commit =
          commits == 0
              ? 0.0
              : static_cast<double>(wal.flush_calls() - flushes_before) /
                    static_cast<double>(commits);
      std::printf("%-6s %-8d  %14.0f  %12.2f  %10.2f  %13.3f\n",
                  async_commit ? "async" : "sync", c,
                  r.tps * cfg.records_per_commit, r.tps_per_thread,
                  stats.log_bytes / 1e6, flushes_per_commit);
      if (async_commit) {
        // Consolidation-array counters (final stage = kCArray buffer):
        // how the contended inserts consolidated and how often the
        // flusher stalled on the completion watermark.
        bench::PrintCArrayLogStats(db->log()->stats(), "       log: ");
      }
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Figure 4: insert microbenchmark, tps/thread "
              "(simulated T2000) ===\n\n");
  RunRealEnginePanel();
  Calibration calib;
  std::vector<int> threads = bench::ThreadSweep();
  struct Entry {
    EngineKind engine;
    sm::Stage stage;
  };
  std::vector<Entry> entries = {
      {EngineKind::kShore, sm::Stage::kFinal},
      {EngineKind::kBdb, sm::Stage::kFinal},
      {EngineKind::kMysql, sm::Stage::kFinal},
      {EngineKind::kPostgres, sm::Stage::kFinal},
      {EngineKind::kDbmsX, sm::Stage::kFinal},
      {EngineKind::kShoreMt, sm::Stage::kFinal},
  };
  std::vector<std::string> names;
  std::vector<std::vector<double>> series;
  for (const Entry& e : entries) {
    names.emplace_back(EngineName(e.engine));
    WorkloadModel model = InsertMicroModel(e.engine, e.stage, calib);
    std::vector<double> curve;
    for (int t : threads) {
      curve.push_back(bench::ModelTxnTpsPerThread(model, t));
    }
    series.push_back(std::move(curve));
  }
  bench::PrintSeriesTable("transactions/second/thread (100-insert txns)",
                          threads, names, series);
  std::printf("\nexpected shape (log-y): shore-mt flattest & highest at 32; "
              "dbms-x near it;\nbdb wins at 1-4 threads then collapses; "
              "mysql declines; postgres plateaus; shore ~1/x.\n");
  return 0;
}
