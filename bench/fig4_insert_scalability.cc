/// Figure 4: "Scalability and performance comparison of Shore-MT vs
/// several open-source engines and one commercial engine".
///
/// Insert microbenchmark, throughput-per-thread (the paper plots log-y:
/// equal scalability = equal slope). Paper shape: Shore-MT highest and
/// near-flat; DBMS "X" close behind; BDB fastest at 1–4 threads then
/// collapsing; MySQL declining past ~8; PostgreSQL plateauing; Shore flat
/// and lowest.

#include <cstdio>

#include "bench/bench_util.h"
#include "workload/engine_profiles.h"

using namespace shoremt;
using namespace shoremt::workload;

int main() {
  std::printf("=== Figure 4: insert microbenchmark, tps/thread "
              "(simulated T2000) ===\n\n");
  Calibration calib;
  std::vector<int> threads = bench::ThreadSweep();
  struct Entry {
    EngineKind engine;
    sm::Stage stage;
  };
  std::vector<Entry> entries = {
      {EngineKind::kShore, sm::Stage::kFinal},
      {EngineKind::kBdb, sm::Stage::kFinal},
      {EngineKind::kMysql, sm::Stage::kFinal},
      {EngineKind::kPostgres, sm::Stage::kFinal},
      {EngineKind::kDbmsX, sm::Stage::kFinal},
      {EngineKind::kShoreMt, sm::Stage::kFinal},
  };
  std::vector<std::string> names;
  std::vector<std::vector<double>> series;
  for (const Entry& e : entries) {
    names.emplace_back(EngineName(e.engine));
    WorkloadModel model = InsertMicroModel(e.engine, e.stage, calib);
    std::vector<double> curve;
    for (int t : threads) {
      curve.push_back(bench::ModelTxnTpsPerThread(model, t));
    }
    series.push_back(std::move(curve));
  }
  bench::PrintSeriesTable("transactions/second/thread (100-insert txns)",
                          threads, names, series);
  std::printf("\nexpected shape (log-y): shore-mt flattest & highest at 32; "
              "dbms-x near it;\nbdb wins at 1-4 threads then collapses; "
              "mysql declines; postgres plateaus; shore ~1/x.\n");
  return 0;
}
