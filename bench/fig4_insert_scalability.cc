/// Figure 4: "Scalability and performance comparison of Shore-MT vs
/// several open-source engines and one commercial engine".
///
/// Insert microbenchmark, throughput-per-thread (the paper plots log-y:
/// equal scalability = equal slope). Paper shape: Shore-MT highest and
/// near-flat; DBMS "X" close behind; BDB fastest at 1–4 threads then
/// collapsing; MySQL declining past ~8; PostgreSQL plateauing; Shore flat
/// and lowest.

#include <cstdio>

#include "bench/bench_util.h"
#include "io/volume.h"
#include "log/log_storage.h"
#include "sm/session.h"
#include "sm/storage_manager.h"
#include "workload/engine_profiles.h"
#include "workload/insert_workload.h"

using namespace shoremt;
using namespace shoremt::workload;

namespace {

/// Companion panel: the same microbenchmark against the real engine on
/// this machine, driven entirely through sm::Session (one per client,
/// batched Apply per commit). Harvested session statistics replace global
/// counters — the per-op path is counter-free.
void RunRealEnginePanel() {
  std::printf("--- real engine (this machine), session API ---\n");
  std::vector<int> clients = bench::FullMode() ? std::vector<int>{1, 2, 4, 8}
                                               : std::vector<int>{1, 2, 4};
  std::printf("%-8s  %14s  %14s  %12s\n", "clients", "inserts/s",
              "tps/client", "wal MB");
  for (int c : clients) {
    io::MemVolume volume;
    log::LogStorage wal;
    auto opened = sm::StorageManager::Open(
        sm::StorageOptions::ForStage(sm::Stage::kFinal), &volume, &wal);
    if (!opened.ok()) return;
    auto& db = *opened;
    InsertBenchConfig cfg;
    cfg.clients = c;
    cfg.records_per_commit = 100;
    cfg.warmup_ms = bench::FullMode() ? 200 : 50;
    cfg.duration_ms = bench::FullMode() ? 1000 : 300;
    auto state = SetupInsertBench(db.get(), cfg);
    if (!state.ok()) return;
    auto r = RunInsertBench(cfg, &*state);
    for (auto& s : state->sessions) s->Harvest();
    sm::SessionStats stats = db->harvested_session_stats();
    std::printf("%-8d  %14.0f  %14.2f  %12.2f\n", c,
                r.tps * cfg.records_per_commit, r.tps_per_thread,
                stats.log_bytes / 1e6);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Figure 4: insert microbenchmark, tps/thread "
              "(simulated T2000) ===\n\n");
  RunRealEnginePanel();
  Calibration calib;
  std::vector<int> threads = bench::ThreadSweep();
  struct Entry {
    EngineKind engine;
    sm::Stage stage;
  };
  std::vector<Entry> entries = {
      {EngineKind::kShore, sm::Stage::kFinal},
      {EngineKind::kBdb, sm::Stage::kFinal},
      {EngineKind::kMysql, sm::Stage::kFinal},
      {EngineKind::kPostgres, sm::Stage::kFinal},
      {EngineKind::kDbmsX, sm::Stage::kFinal},
      {EngineKind::kShoreMt, sm::Stage::kFinal},
  };
  std::vector<std::string> names;
  std::vector<std::vector<double>> series;
  for (const Entry& e : entries) {
    names.emplace_back(EngineName(e.engine));
    WorkloadModel model = InsertMicroModel(e.engine, e.stage, calib);
    std::vector<double> curve;
    for (int t : threads) {
      curve.push_back(bench::ModelTxnTpsPerThread(model, t));
    }
    series.push_back(std::move(curve));
  }
  bench::PrintSeriesTable("transactions/second/thread (100-insert txns)",
                          threads, names, series);
  std::printf("\nexpected shape (log-y): shore-mt flattest & highest at 32; "
              "dbms-x near it;\nbdb wins at 1-4 threads then collapses; "
              "mysql declines; postgres plateaus; shore ~1/x.\n");
  return 0;
}
