#ifndef SHOREMT_BENCH_BENCH_UTIL_H_
#define SHOREMT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "buffer/buffer_pool.h"
#include "io/volume.h"
#include "log/log_manager.h"
#include "simcore/simulation.h"
#include "workload/engine_profiles.h"

namespace shoremt::bench {

/// One-line dump of the kCArray consolidation counters — shared by every
/// bench that surfaces them (fig4/fig5 async panels, abl_log_buffer) so
/// the format and the avg-group math cannot drift between panels.
/// `indent` is the leading label/whitespace.
inline void PrintCArrayLogStats(const log::LogStats& s, const char* indent) {
  uint64_t groups = s.carray_groups.load();
  std::printf("%ssolo=%llu joins=%llu groups=%llu avg-group=%.2f "
              "group-MB=%.2f wm-stalls=%llu "
              "hist[1,2,3-4,5-8,9-16,>16]=",
              indent, (unsigned long long)s.carray_solo_claims.load(),
              (unsigned long long)s.carray_slot_joins.load(),
              (unsigned long long)groups,
              groups ? static_cast<double>(s.carray_group_records.load()) /
                           static_cast<double>(groups)
                     : 0.0,
              s.carray_group_bytes.load() / 1e6,
              (unsigned long long)s.carray_watermark_stalls.load());
  for (int i = 0; i < 6; ++i) {
    std::printf("%s%llu", i ? "/" : "",
                (unsigned long long)s.carray_group_size_hist[i].load());
  }
  std::printf("\n");
}

/// One-line dump of the log-lifecycle counters (segmented log + cleaner +
/// checkpoint loop): segment churn, live count, checkpoints, cleaner
/// write-backs and the redo window recovery actually scanned. Shared by
/// the fig5 async panel and the abl_cleaner endurance sweep.
inline void PrintLogLifecycleStats(log::LogManager* mgr, const char* indent) {
  const log::LogStats& s = mgr->stats();
  std::printf("%ssegments: alloc=%llu recycled=%llu live=%zu  ckpts=%llu  "
              "cleaner-wb=%llu  redo-scan-B=%llu\n",
              indent, (unsigned long long)s.segments_allocated.load(),
              (unsigned long long)s.segments_recycled.load(),
              mgr->live_segments(),
              (unsigned long long)s.checkpoint_count.load(),
              (unsigned long long)s.cleaner_writebacks.load(),
              (unsigned long long)s.redo_scan_bytes.load());
}

/// One-line dump of the async-I/O-spine counters: device calls vs pages
/// moved (the gap is what coalescing saved), vectored-call share, and the
/// prefetch + batched-cleaner activity behind them. Shared by the fig5
/// async panel and the YCSB sweep so the format cannot drift.
inline void PrintIoSpineStats(const io::IoStats& v,
                              const buffer::BufferPoolStats& b,
                              const char* indent) {
  uint64_t calls = v.reads.load() + v.writes.load();
  uint64_t pages = v.pages_read.load() + v.pages_written.load();
  std::printf("%sio: device-calls=%llu pages=%llu (%.2f pages/call) "
              "vectored=%llu prefetch[issued=%llu installed=%llu "
              "dropped=%llu] cleaner-batches=%llu\n",
              indent, (unsigned long long)calls, (unsigned long long)pages,
              calls ? static_cast<double>(pages) / static_cast<double>(calls)
                    : 0.0,
              (unsigned long long)(v.batched_reads.load() +
                                   v.batched_writes.load()),
              (unsigned long long)b.prefetch_issued.load(),
              (unsigned long long)b.prefetch_installed.load(),
              (unsigned long long)b.prefetch_dropped.load(),
              (unsigned long long)b.cleaner_batches.load());
}

/// SHOREMT_FULL=1 switches to full-resolution sweeps / longer windows.
inline bool FullMode() {
  const char* v = std::getenv("SHOREMT_FULL");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Client counts along the x-axis (the paper sweeps 1..32).
inline std::vector<int> ThreadSweep() {
  if (FullMode()) return {1, 2, 4, 8, 12, 16, 20, 24, 28, 32};
  return {1, 2, 4, 8, 16, 24, 32};
}

/// Simulated measurement window (virtual nanoseconds).
inline uint64_t SimWindowNs() { return FullMode() ? 240'000'000 : 80'000'000; }
inline uint64_t SimWarmupNs() { return SimWindowNs() / 5; }

/// Runs one workload model on the simulated Niagara with `threads` workers.
/// SimResult counts per-record progress; divide by records_per_txn for
/// transaction rates.
inline simcore::SimResult RunModel(const workload::WorkloadModel& model,
                                   int threads, uint64_t seed = 1) {
  simcore::Simulation sim(simcore::MachineConfig{}, seed);
  workload::BuildModel(&sim, threads, model);
  return sim.Run(SimWindowNs(), SimWarmupNs());
}

/// Transaction throughput (total and per-thread) for `model`.
inline double ModelTxnTps(const workload::WorkloadModel& model, int threads) {
  return RunModel(model, threads).tps /
         static_cast<double>(model.records_per_txn);
}
inline double ModelTxnTpsPerThread(const workload::WorkloadModel& model,
                                   int threads) {
  return ModelTxnTps(model, threads) / threads;
}

/// Prints an aligned series table: one row per thread count, one column
/// per named series.
inline void PrintSeriesTable(const std::string& y_label,
                             const std::vector<int>& threads,
                             const std::vector<std::string>& names,
                             const std::vector<std::vector<double>>& series) {
  std::printf("%-8s", "clients");
  for (const auto& n : names) std::printf("  %14s", n.c_str());
  std::printf("\n");
  for (size_t row = 0; row < threads.size(); ++row) {
    std::printf("%-8d", threads[row]);
    for (size_t s = 0; s < series.size(); ++s) {
      std::printf("  %14.2f", series[s][row]);
    }
    std::printf("\n");
  }
  std::printf("(y = %s)\n", y_label.c_str());
}

}  // namespace shoremt::bench

#endif  // SHOREMT_BENCH_BENCH_UTIL_H_
