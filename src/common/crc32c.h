#ifndef SHOREMT_COMMON_CRC32C_H_
#define SHOREMT_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace shoremt {

/// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) —
/// the checksum used for page images, log records, and archived
/// segments. Software slice-by-one implementation: integrity checks
/// here ride the I/O path, whose device latency dwarfs the table
/// lookup; no SSE4.2 dependency keeps the build portable.
///
/// Crc32c(data, n) is the common whole-buffer form. The Extend form
/// chains partial buffers: Extend(Extend(0, a, na), b, nb) ==
/// Crc32c(concat(a, b)) — the page checksum uses it to skip the
/// in-header checksum word itself.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace shoremt

#endif  // SHOREMT_COMMON_CRC32C_H_
