#ifndef SHOREMT_COMMON_STATUS_H_
#define SHOREMT_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace shoremt {

/// Error category carried by a Status. The set mirrors the failure modes a
/// storage manager can surface to callers.
enum class StatusCode {
  kOk = 0,
  kNotFound,         ///< Key / page / store does not exist.
  kAlreadyExists,    ///< Attempt to create an object that exists.
  kInvalidArgument,  ///< Caller passed an out-of-contract argument.
  kCorruption,       ///< On-disk or in-memory structure failed validation.
  kIOError,          ///< Underlying volume read/write failed.
  kOutOfSpace,       ///< Volume or structure capacity exhausted.
  kDeadlock,         ///< Lock request chosen as deadlock victim.
  kTimeout,          ///< Lock or latch wait exceeded its budget.
  kAborted,          ///< Transaction was rolled back.
  kBusy,             ///< Resource transiently unavailable; retry.
  kResourceExhausted,  ///< A fixed-size internal pool drained (recoverable:
                       ///< abort the requester and retry later).
  kNotSupported,     ///< Operation not implemented for this configuration.
  kInternal,         ///< Invariant violation inside the storage manager.
};

/// Returns a stable human-readable name for `code` (e.g. "NotFound").
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. Cheap to copy in the OK case (no
/// allocation); error statuses carry a message describing the failure.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfSpace(std::string msg) {
    return Status(StatusCode::kOutOfSpace, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Busy(std::string msg) {
    return Status(StatusCode::kBusy, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsDeadlock() const { return code_ == StatusCode::kDeadlock; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsBusy() const { return code_ == StatusCode::kBusy; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled after
/// arrow::Result: check ok() before dereferencing.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` in functions returning
  /// Result<T>.
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit from error status; must not be OK (an OK status without a
  /// value would be unusable).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value accessors; undefined behaviour unless ok().
  T& value() & { return value_; }
  const T& value() const& { return value_; }
  T&& value() && { return std::move(value_); }
  T& operator*() & { return value_; }
  const T& operator*() const& { return value_; }
  T&& operator*() && { return std::move(value_); }
  T* operator->() { return &value_; }
  const T* operator->() const { return &value_; }

  /// Returns the value or `fallback` if this holds an error.
  T ValueOr(T fallback) const& { return ok() ? value_ : std::move(fallback); }

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-OK Status to the caller.
#define SHOREMT_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::shoremt::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluates a Result<T> expression, propagating errors, else binds `lhs`.
#define SHOREMT_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                  \
  if (!var.ok()) return var.status();                  \
  lhs = std::move(var).value()
#define SHOREMT_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define SHOREMT_ASSIGN_OR_RETURN_NAME(x, y) SHOREMT_ASSIGN_OR_RETURN_CONCAT(x, y)
#define SHOREMT_ASSIGN_OR_RETURN(lhs, rexpr) \
  SHOREMT_ASSIGN_OR_RETURN_IMPL(             \
      SHOREMT_ASSIGN_OR_RETURN_NAME(_result_, __LINE__), lhs, rexpr)

}  // namespace shoremt

#endif  // SHOREMT_COMMON_STATUS_H_
