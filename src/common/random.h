#ifndef SHOREMT_COMMON_RANDOM_H_
#define SHOREMT_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace shoremt {

/// Fast xorshift64* pseudo-random generator. Deterministic for a given
/// seed; each worker thread owns one instance, so no synchronization.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed | 1) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dULL;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// TPC-C style non-uniform random (NURand) over [x, y].
  uint64_t NonUniform(uint64_t a, uint64_t x, uint64_t y) {
    return (((UniformRange(0, a) | UniformRange(x, y)) + 42) % (y - x + 1)) + x;
  }

 private:
  uint64_t state_;
};

/// Zipfian distribution over [0, n). Uses the Gray et al. rejection-free
/// construction; skew theta in (0, 1) typical for OLTP hot-key modeling.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42);

  /// Draws one sample in [0, n).
  uint64_t Next();

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  double Zeta(uint64_t n, double theta) const;

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Rng rng_;
};

}  // namespace shoremt

#endif  // SHOREMT_COMMON_RANDOM_H_
