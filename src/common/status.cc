#include "common/status.h"

namespace shoremt {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kOutOfSpace:
      return "OutOfSpace";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kBusy:
      return "Busy";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace shoremt
