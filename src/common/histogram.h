#ifndef SHOREMT_COMMON_HISTOGRAM_H_
#define SHOREMT_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace shoremt {

/// Log-bucketed latency histogram (nanosecond samples). Not thread safe;
/// merge per-thread instances with Merge().
class Histogram {
 public:
  Histogram();

  /// Records one sample.
  void Add(uint64_t value_ns);
  /// Records `count` samples of the same value in one step (bulk import —
  /// how live metric snapshots re-materialize their bucket counts).
  void AddCount(uint64_t value_ns, uint64_t count);
  /// Adds all samples from `other` into this histogram.
  void Merge(const Histogram& other);
  /// Forgets all samples.
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double Mean() const;
  /// Approximate p-quantile (e.g. 0.5, 0.99) from bucket interpolation.
  uint64_t Percentile(double p) const;
  /// Alias of Percentile under the conventional metrics name.
  uint64_t ValueAtQuantile(double q) const { return Percentile(q); }
  /// The tail quantiles every latency report leads with.
  uint64_t P50() const { return Percentile(0.5); }
  uint64_t P99() const { return Percentile(0.99); }
  uint64_t P999() const { return Percentile(0.999); }

  /// One-line summary: count/mean/p50/p99/max.
  std::string Summary() const;

 private:
  static constexpr int kNumBuckets = 64;
  static int BucketFor(uint64_t value);

  uint64_t count_;
  uint64_t sum_;
  uint64_t min_;
  uint64_t max_;
  std::vector<uint64_t> buckets_;
};

}  // namespace shoremt

#endif  // SHOREMT_COMMON_HISTOGRAM_H_
