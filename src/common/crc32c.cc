#include "common/crc32c.h"

#include <array>

namespace shoremt {
namespace {

// 256-entry table for the reflected Castagnoli polynomial, built once at
// static-init time (8-iteration shift per entry; ~1µs, no binary bloat).
struct Crc32cTable {
  std::array<uint32_t, 256> t;
  Crc32cTable() {
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
  }
};
const Crc32cTable kTable;

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = kTable.t[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace shoremt
