#ifndef SHOREMT_COMMON_TYPES_H_
#define SHOREMT_COMMON_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace shoremt {

/// Size of one database page. Shore used 8 KiB pages; we keep the same.
inline constexpr size_t kPageSize = 8192;

/// Pages per extent in the free space manager (Shore allocated 8-page
/// extents and tended to fill one before moving to the next, §6.2.2).
inline constexpr uint32_t kPagesPerExtent = 8;

/// One-based page number within a volume. Page 0 is the volume header.
using PageNum = uint64_t;
inline constexpr PageNum kInvalidPageNum = 0;

/// Identifier of a store (a table or an index) within a volume.
using StoreId = uint32_t;
inline constexpr StoreId kInvalidStoreId = 0;

/// Transaction identifier; monotonically increasing, never reused.
using TxnId = uint64_t;
inline constexpr TxnId kInvalidTxnId = 0;

/// Log sequence number: byte offset into the (conceptually infinite) log.
struct Lsn {
  uint64_t value = 0;

  static constexpr Lsn Null() { return Lsn{0}; }
  static constexpr Lsn Max() {
    return Lsn{std::numeric_limits<uint64_t>::max()};
  }
  bool IsNull() const { return value == 0; }
  friend auto operator<=>(const Lsn&, const Lsn&) = default;
};

/// Record identifier: a page plus a slot index within the page.
struct RecordId {
  PageNum page = kInvalidPageNum;
  uint16_t slot = 0;

  bool IsValid() const { return page != kInvalidPageNum; }
  friend auto operator<=>(const RecordId&, const RecordId&) = default;
};

/// Identifier of an extent (group of kPagesPerExtent consecutive pages).
using ExtentId = uint64_t;

/// Extent containing `page`.
inline ExtentId ExtentOf(PageNum page) { return page / kPagesPerExtent; }

}  // namespace shoremt

namespace std {
template <>
struct hash<shoremt::Lsn> {
  size_t operator()(const shoremt::Lsn& lsn) const noexcept {
    return std::hash<uint64_t>()(lsn.value);
  }
};
template <>
struct hash<shoremt::RecordId> {
  size_t operator()(const shoremt::RecordId& rid) const noexcept {
    return std::hash<uint64_t>()(rid.page * 8191 + rid.slot);
  }
};
}  // namespace std

#endif  // SHOREMT_COMMON_TYPES_H_
