#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <limits>

namespace shoremt {

Histogram::Histogram()
    : count_(0),
      sum_(0),
      min_(std::numeric_limits<uint64_t>::max()),
      max_(0),
      buckets_(kNumBuckets, 0) {}

int Histogram::BucketFor(uint64_t value) {
  if (value == 0) return 0;
  return std::min(kNumBuckets - 1, 64 - std::countl_zero(value));
}

void Histogram::Add(uint64_t value_ns) {
  ++count_;
  sum_ += value_ns;
  min_ = std::min(min_, value_ns);
  max_ = std::max(max_, value_ns);
  ++buckets_[BucketFor(value_ns)];
}

void Histogram::AddCount(uint64_t value_ns, uint64_t count) {
  if (count == 0) return;
  count_ += count;
  sum_ += value_ns * count;
  min_ = std::min(min_, value_ns);
  max_ = std::max(max_, value_ns);
  buckets_[BucketFor(value_ns)] += count;
}

void Histogram::Merge(const Histogram& other) {
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Reset() {
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<uint64_t>::max();
  max_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  auto target = static_cast<uint64_t>(p * static_cast<double>(count_));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen > target) {
      // Bucket i covers [2^(i-1), 2^i); report the midpoint, clamped to
      // the observed range.
      uint64_t lo = i == 0 ? 0 : (1ULL << (i - 1));
      uint64_t hi = i == 0 ? 1 : (1ULL << i);
      uint64_t mid = lo + (hi - lo) / 2;
      return std::clamp(mid, min(), max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.0fns p50=%lluns p99=%lluns max=%lluns",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<unsigned long long>(Percentile(0.5)),
                static_cast<unsigned long long>(Percentile(0.99)),
                static_cast<unsigned long long>(max_));
  return std::string(buf);
}

}  // namespace shoremt
