#ifndef SHOREMT_COMMON_CLOCK_H_
#define SHOREMT_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace shoremt {

/// Monotonic wall-clock time in nanoseconds.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Scoped stopwatch: accumulates elapsed nanoseconds into *sink.
class ScopedTimer {
 public:
  explicit ScopedTimer(uint64_t* sink) : sink_(sink), start_(NowNanos()) {}
  ~ScopedTimer() { *sink_ += NowNanos() - start_; }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  uint64_t* sink_;
  uint64_t start_;
};

}  // namespace shoremt

#endif  // SHOREMT_COMMON_CLOCK_H_
