#ifndef SHOREMT_OBS_METRICS_REGISTRY_H_
#define SHOREMT_OBS_METRICS_REGISTRY_H_

#include <array>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/metrics.h"

namespace shoremt::obs {

/// The engine's live metric hub, owned by the StorageManager. Two kinds of
/// producers feed it:
///
///  - Workers (sessions) register a WorkerCounters block and bump it with
///    relaxed single-writer stores; registration claims a slot from a
///    fixed pool with one CAS and release drops it the same way, so the
///    per-operation path and the register/unregister path are both
///    lock-free. Unregistering folds the block's values into a retired
///    accumulator first, so totals survive worker churn.
///
///  - Engine subsystems (buffer pool, log, lock table) register a source
///    callback that adds their existing atomic stats into a snapshot at
///    aggregation time. Sources are wired once at StorageManager
///    construction; the mutex around the list is never on a worker path.
///
/// Snapshot() is the only consumer-side operation — the profiling thread
/// calls it about once a second; it reads every live atomic relaxed, which
/// is exact for quiescent counters and at-most-one-increment stale for hot
/// ones. During a concurrent unregister a counter's value can transiently
/// be missed (it is in flight between the slot and the retired fold) and
/// reappear on the next snapshot; totals are never double-counted.
/// Consumers that difference snapshots must clamp at zero (the
/// ProfilingThread does).
class MetricsRegistry {
 public:
  /// Upper bound on concurrently registered workers. Registration past
  /// this returns nullptr and the caller runs unmetered (never fails).
  static constexpr size_t kMaxWorkers = 256;

  /// Adds totals into `*totals` (never overwrites) when invoked at
  /// snapshot time. Must be safe to call from any thread.
  using Source = std::function<void(std::array<uint64_t, kMetricCount>*)>;

  MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Claims a free worker block (zeroed); nullptr when all slots are in
  /// use. Lock-free: one acquire-CAS per probed slot.
  WorkerCounters* RegisterWorker();

  /// Releases `wc` (a pointer previously returned by RegisterWorker):
  /// folds its counters into the retired accumulator — totals keep every
  /// contribution ever made — and frees the slot for the next worker.
  /// The owning worker must have stopped writing.
  void UnregisterWorker(WorkerCounters* wc);

  /// Registers an engine-side aggregation source (construction-time
  /// wiring; not a hot path).
  void AddSource(Source source);

  /// Aggregates retired + every worker block + every source.
  MetricsSnapshot Snapshot() const;

  /// Currently claimed worker slots (diagnostics/tests).
  size_t active_workers() const;

 private:
  std::unique_ptr<WorkerCounters[]> slots_;
  /// Fold target for unregistered workers; multi-writer (fetch_add).
  std::array<std::atomic<uint64_t>, kMetricCount> retired_ = {};
  std::array<std::atomic<uint64_t>, kLatencyBuckets> retired_latency_ = {};
  std::atomic<uint64_t> retired_latency_count_{0};
  std::atomic<uint64_t> retired_latency_sum_{0};

  mutable std::mutex source_mutex_;
  std::vector<Source> sources_;
};

}  // namespace shoremt::obs

#endif  // SHOREMT_OBS_METRICS_REGISTRY_H_
