#include "obs/profiling_thread.h"

#include <cinttypes>
#include <cstdio>

#include "common/clock.h"

namespace shoremt::obs {

namespace {

/// Per-tick latency percentiles from bucket deltas.
struct TickLatency {
  uint64_t p50 = 0;
  uint64_t p99 = 0;
  uint64_t p999 = 0;
};

TickLatency LatencyOfTick(const LatencySnapshot& cur,
                          const LatencySnapshot& prev) {
  LatencySnapshot delta;
  for (int i = 0; i < kLatencyBuckets; ++i) {
    uint64_t c = cur.buckets[i];
    uint64_t p = prev.buckets[i];
    delta.buckets[i] = c > p ? c - p : 0;
    delta.count += delta.buckets[i];
  }
  TickLatency out;
  if (delta.count == 0) return out;
  Histogram h = delta.ToHistogram();
  out.p50 = h.P50();
  out.p99 = h.P99();
  out.p999 = h.P999();
  return out;
}

}  // namespace

ProfilingThread::ProfilingThread(MetricsRegistry* registry,
                                 ProfilingOptions options)
    : registry_(registry), options_(std::move(options)) {}

ProfilingThread::~ProfilingThread() { Stop(); }

void ProfilingThread::Emit(const std::string& line) {
  if (options_.sink) {
    options_.sink(line);
  } else {
    std::fprintf(stdout, "%s\n", line.c_str());
    std::fflush(stdout);
  }
}

void ProfilingThread::EmitHeader() {
  std::string header = options_.prefix + "tick,elapsed_s";
  for (size_t i = 0; i < kMetricCount; ++i) {
    header += ',';
    header += MetricName(static_cast<Metric>(i));
  }
  header += ",p50_ns,p99_ns,p999_ns";
  Emit(header);
}

void ProfilingThread::Start() {
  if (started_) return;
  {
    std::lock_guard<std::mutex> guard(tick_mutex_);
    // prev_ is deliberately NOT reset: the first tick's delta covers
    // everything since the registry (or the previous Stop) — a feed
    // attached late still reconciles with end-of-run totals.
    start_ns_ = NowNanos();
  }
  if (options_.format == ProfilingOptions::Format::kCsv) EmitHeader();
  daemon_.Start(options_.interval, [this] { Tick(); });
  started_ = true;
}

void ProfilingThread::Stop() {
  if (!started_) return;
  daemon_.Stop();
  // Final tick: whatever accumulated since the last daemon pass reaches
  // the feed, so cumulative deltas equal the end-of-run totals.
  Tick();
  started_ = false;
}

MetricsSnapshot ProfilingThread::emitted() const {
  std::lock_guard<std::mutex> guard(tick_mutex_);
  return prev_;
}

void ProfilingThread::Tick() {
  std::lock_guard<std::mutex> guard(tick_mutex_);
  MetricsSnapshot cur = registry_->Snapshot();
  uint64_t tick = ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
  double elapsed =
      static_cast<double>(NowNanos() - start_ns_) / 1e9;

  std::array<uint64_t, kMetricCount> delta;
  for (size_t i = 0; i < kMetricCount; ++i) {
    uint64_t c = cur.totals[i];
    uint64_t p = prev_.totals[i];
    if (MetricIsGauge(static_cast<Metric>(i))) {
      // Gauges (e.g. replication lag) are levels: emit the raw value and
      // track it without the high-water clamp, so a shrinking lag shows
      // up as shrinking instead of as a string of zeros.
      delta[i] = c;
      prev_.totals[i] = c;
      continue;
    }
    // Clamp: a transient churn dip must not underflow; the high-water
    // prev_ keeps the cumulative account exact once the dip resolves.
    delta[i] = c > p ? c - p : 0;
    prev_.totals[i] = std::max(p, c);
  }
  TickLatency lat = LatencyOfTick(cur.latency, prev_.latency);
  for (int i = 0; i < kLatencyBuckets; ++i) {
    prev_.latency.buckets[i] =
        std::max(prev_.latency.buckets[i], cur.latency.buckets[i]);
  }
  prev_.latency.count = std::max(prev_.latency.count, cur.latency.count);
  prev_.latency.sum = std::max(prev_.latency.sum, cur.latency.sum);

  char buf[64];
  std::string line = options_.prefix;
  if (options_.format == ProfilingOptions::Format::kCsv) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ",%.3f", tick, elapsed);
    line += buf;
    for (size_t i = 0; i < kMetricCount; ++i) {
      std::snprintf(buf, sizeof(buf), ",%" PRIu64, delta[i]);
      line += buf;
    }
    std::snprintf(buf, sizeof(buf), ",%" PRIu64 ",%" PRIu64 ",%" PRIu64,
                  lat.p50, lat.p99, lat.p999);
    line += buf;
  } else {
    std::snprintf(buf, sizeof(buf), "{\"tick\":%" PRIu64 ",\"elapsed_s\":%.3f",
                  tick, elapsed);
    line += buf;
    for (size_t i = 0; i < kMetricCount; ++i) {
      line += ",\"";
      line += MetricName(static_cast<Metric>(i));
      std::snprintf(buf, sizeof(buf), "\":%" PRIu64, delta[i]);
      line += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  ",\"p50_ns\":%" PRIu64 ",\"p99_ns\":%" PRIu64
                  ",\"p999_ns\":%" PRIu64 "}",
                  lat.p50, lat.p99, lat.p999);
    line += buf;
  }
  Emit(line);
}

}  // namespace shoremt::obs
