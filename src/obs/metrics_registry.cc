#include "obs/metrics_registry.h"

namespace shoremt::obs {

MetricsRegistry::MetricsRegistry()
    : slots_(new WorkerCounters[kMaxWorkers]) {}

WorkerCounters* MetricsRegistry::RegisterWorker() {
  for (size_t i = 0; i < kMaxWorkers; ++i) {
    WorkerCounters& slot = slots_[i];
    bool expected = false;
    // Acquire pairs with the release in UnregisterWorker: a re-claimed
    // slot's counters are observed zeroed.
    if (slot.used_.compare_exchange_strong(expected, true,
                                           std::memory_order_acquire)) {
      return &slot;
    }
  }
  return nullptr;
}

void MetricsRegistry::UnregisterWorker(WorkerCounters* wc) {
  if (wc == nullptr) return;
  // Move each counter from the slot into the retired accumulator. The
  // exchange empties the slot before the fold lands, so a concurrent
  // Snapshot sees the value in at most one place (never both): totals can
  // transiently dip by one worker's contribution, never double-count.
  for (size_t i = 0; i < kMetricCount; ++i) {
    uint64_t v = wc->counters_[i].exchange(0, std::memory_order_relaxed);
    if (v != 0) retired_[i].fetch_add(v, std::memory_order_relaxed);
  }
  for (int i = 0; i < kLatencyBuckets; ++i) {
    uint64_t v = wc->latency_buckets_[i].exchange(0, std::memory_order_relaxed);
    if (v != 0) retired_latency_[i].fetch_add(v, std::memory_order_relaxed);
  }
  uint64_t c = wc->latency_count_.exchange(0, std::memory_order_relaxed);
  if (c != 0) retired_latency_count_.fetch_add(c, std::memory_order_relaxed);
  uint64_t s = wc->latency_sum_.exchange(0, std::memory_order_relaxed);
  if (s != 0) retired_latency_sum_.fetch_add(s, std::memory_order_relaxed);
  // Release pairs with RegisterWorker's acquire-CAS.
  wc->used_.store(false, std::memory_order_release);
}

void MetricsRegistry::AddSource(Source source) {
  std::lock_guard<std::mutex> guard(source_mutex_);
  sources_.push_back(std::move(source));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  // Sum every slot regardless of its used flag: a block mid-unregister
  // contributes through whichever side (slot or retired) its values
  // currently sit on.
  for (size_t w = 0; w < kMaxWorkers; ++w) {
    const WorkerCounters& slot = slots_[w];
    for (size_t i = 0; i < kMetricCount; ++i) {
      snap.totals[i] += slot.counters_[i].load(std::memory_order_relaxed);
    }
    for (int i = 0; i < kLatencyBuckets; ++i) {
      snap.latency.buckets[i] +=
          slot.latency_buckets_[i].load(std::memory_order_relaxed);
    }
    snap.latency.count += slot.latency_count_.load(std::memory_order_relaxed);
    snap.latency.sum += slot.latency_sum_.load(std::memory_order_relaxed);
  }
  for (size_t i = 0; i < kMetricCount; ++i) {
    snap.totals[i] += retired_[i].load(std::memory_order_relaxed);
  }
  for (int i = 0; i < kLatencyBuckets; ++i) {
    snap.latency.buckets[i] +=
        retired_latency_[i].load(std::memory_order_relaxed);
  }
  snap.latency.count += retired_latency_count_.load(std::memory_order_relaxed);
  snap.latency.sum += retired_latency_sum_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> guard(source_mutex_);
    for (const Source& src : sources_) src(&snap.totals);
  }
  return snap;
}

size_t MetricsRegistry::active_workers() const {
  size_t n = 0;
  for (size_t i = 0; i < kMaxWorkers; ++i) {
    if (slots_[i].used_.load(std::memory_order_relaxed)) ++n;
  }
  return n;
}

}  // namespace shoremt::obs
