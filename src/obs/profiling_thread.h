#ifndef SHOREMT_OBS_PROFILING_THREAD_H_
#define SHOREMT_OBS_PROFILING_THREAD_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "obs/metrics_registry.h"
#include "sync/periodic_daemon.h"

namespace shoremt::obs {

/// Feed configuration. The default sink writes lines to stdout; benches
/// that embed the feed in their own output set a prefix, tests capture
/// lines through a custom sink.
struct ProfilingOptions {
  enum class Format : uint8_t { kCsv, kJsonLines };

  /// Aggregation period (a tick). One line per tick.
  std::chrono::microseconds interval{1'000'000};
  Format format = Format::kCsv;
  /// Receives each feed line (no trailing newline); called from the
  /// profiling thread (and once from Stop's caller for the final tick).
  /// Empty = write to stdout.
  std::function<void(const std::string&)> sink;
  /// Prepended to every emitted line (e.g. "live ").
  std::string prefix;
};

/// The live observability daemon: once per interval it snapshots the
/// MetricsRegistry, differences it against the previous tick, and emits
/// one CSV or JSON-lines row of per-tick deltas plus the tick's latency
/// percentiles — so every bench run doubles as a dashboard. Runs on the
/// shared sync::PeriodicDaemon scaffold (cv-driven, no busy wait).
///
/// Columns: a monotonic `tick` (1-based), wall-clock `elapsed_s` since
/// Start, one delta column per Metric (feed order = Metric order), then
/// p50/p99/p999 of transaction latency recorded during the tick. CSV mode
/// emits a header row at Start.
///
/// Deltas are clamped at zero against a high-water snapshot: a worker
/// unregistering mid-tick can make one snapshot transiently miss its
/// contribution (see MetricsRegistry), and clamping keeps the cumulative
/// sum of emitted deltas equal to the registry's final totals — Stop()
/// runs one last tick after the daemon has quiesced, so the feed always
/// reconciles with end-of-run statistics.
///
/// Start/Stop are not thread-safe against each other; drive the thread
/// from one controller (the bench main), like the other daemons.
class ProfilingThread {
 public:
  ProfilingThread(MetricsRegistry* registry, ProfilingOptions options);
  ~ProfilingThread();  ///< Stops (emitting the final tick) if running.

  ProfilingThread(const ProfilingThread&) = delete;
  ProfilingThread& operator=(const ProfilingThread&) = delete;

  /// Emits the header (CSV) and starts ticking. Call at most once between
  /// Stops.
  void Start();
  /// Stops the daemon, then emits one final tick covering everything
  /// since the last one (possibly all-zero). Idempotent.
  void Stop();

  bool running() const { return started_; }
  /// Ticks emitted so far (including Stop's final tick).
  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }

  /// Cumulative deltas emitted across all ticks — what the feed has told
  /// its consumer so far. After Stop() this equals the registry's worker +
  /// source totals at the final tick (the reconciliation invariant the
  /// tests pin down).
  MetricsSnapshot emitted() const;

 private:
  void Tick();
  void Emit(const std::string& line);
  void EmitHeader();

  MetricsRegistry* registry_;
  ProfilingOptions options_;
  sync::PeriodicDaemon daemon_;
  bool started_ = false;

  /// High-water marks of the last tick (monotone: never decreased by a
  /// transient churn dip). Written only by the ticking thread; read by
  /// emitted() under tick_mutex_.
  MetricsSnapshot prev_;
  /// Serializes Tick bodies (daemon pass vs Stop's final tick — they never
  /// actually overlap because Stop joins the daemon first, but the mutex
  /// also publishes prev_ to emitted() callers on other threads).
  mutable std::mutex tick_mutex_;
  std::atomic<uint64_t> ticks_{0};
  uint64_t start_ns_ = 0;
};

}  // namespace shoremt::obs

#endif  // SHOREMT_OBS_PROFILING_THREAD_H_
