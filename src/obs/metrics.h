#ifndef SHOREMT_OBS_METRICS_H_
#define SHOREMT_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string_view>

#include "common/histogram.h"

namespace shoremt::obs {

/// The engine-wide live counter set: every row of the profiling feed and
/// every column of the registry snapshot is one of these. Worker-written
/// metrics (transaction lifecycle, DML, lock waits, log bytes) live in
/// per-worker WorkerCounters blocks; engine-global metrics (buffer pool,
/// log lifecycle, lock table) are pulled from the existing stats structs
/// through registered sources at aggregation time — the subsystems keep
/// their structs, the registry is the union view.
enum class Metric : uint32_t {
  kTxnBegins = 0,
  kTxnCommits,
  kTxnAborts,
  kReads,
  kUpdates,
  kInserts,
  kDeletes,
  kScanRows,  ///< Rows returned through cursors (scan workloads).
  kRmws,      ///< Read-modify-write round trips (workload-level, YCSB F).
  kLockWaits,
  kLockAcquired,
  kLogBytes,
  kLogRecords,
  kGroupBatches,
  kBufferHits,
  kBufferMisses,
  kCleanerWritebacks,
  kCheckpoints,
  kSegmentsRecycled,
  // --- replication (src/repl) ---------------------------------------------
  kReplSegmentsShipped,  ///< Sealed-segment chunks the shipper sent.
  kReplSegmentsApplied,  ///< Segment/tail frames the replica accepted.
  kReplBytesStreamed,    ///< Log bytes that crossed the wire.
  kReplReplayBatches,    ///< Replay-worker dequeue batches.
  kReplLagBytes,         ///< GAUGE: shipped-but-not-replayed log bytes.
  // --- async I/O spine (src/io) ---------------------------------------------
  kIoReads,            ///< Volume read calls (a vectored call counts once).
  kIoWrites,           ///< Volume write calls (a vectored call counts once).
  kIoReadNs,           ///< Nanoseconds inside volume read calls.
  kIoWriteNs,          ///< Nanoseconds inside volume write calls.
  kIoBatchedOps,       ///< Device calls that carried more than one page.
  kIoCoalescedPages,   ///< Pages that rode a call beyond its first.
  kIoPrefetchIssued,   ///< Detached readahead reads submitted.
  kIoPrefetchDropped,  ///< Readahead hints shed (window/slots/frames).
  // --- integrity (checksums, retry, scrub) ----------------------------------
  kIoRetries,          ///< Transient-error retries across all I/O paths.
  kIoRetryBackoffNs,   ///< Nanoseconds slept in retry backoff.
  kChecksumFailures,   ///< Page/log images that failed CRC verification.
  kPagesRepaired,      ///< Checksum-failed pages rebuilt from archive+log.
  kScrubPages,         ///< Pages verified by the background scrubber.
  // --- B+Tree probes (src/btree) --------------------------------------------
  // Routed through per-worker blocks (not BTreeStats) so the latch-free
  // read path touches no shared cache line — the same §5 rule that moved
  // the transaction counters here.
  kBtreeFinds,              ///< Point lookups (Find calls).
  kBtreeProbeLockSearches,  ///< §7.7 redundant per-probe lock checks.
  kBtreeOptimisticDescents, ///< Descents completed without latching.
  kBtreeRestarts,           ///< Validation failures that restarted a descent.
  kBtreeLatchFallbacks,     ///< Descents that gave up and took latches.
};

inline constexpr size_t kMetricCount = 42;

/// Gauges report a level, not a monotone count: the profiling feed emits
/// their raw value each tick instead of a delta, and keeps no high-water
/// clamp (a lag that shrinks must be visible as shrinking).
constexpr bool MetricIsGauge(Metric m) {
  return m == Metric::kReplLagBytes;
}

constexpr std::string_view MetricName(Metric m) {
  switch (m) {
    case Metric::kTxnBegins: return "txn_begins";
    case Metric::kTxnCommits: return "txn_commits";
    case Metric::kTxnAborts: return "txn_aborts";
    case Metric::kReads: return "reads";
    case Metric::kUpdates: return "updates";
    case Metric::kInserts: return "inserts";
    case Metric::kDeletes: return "deletes";
    case Metric::kScanRows: return "scan_rows";
    case Metric::kRmws: return "rmws";
    case Metric::kLockWaits: return "lock_waits";
    case Metric::kLockAcquired: return "lock_acquired";
    case Metric::kLogBytes: return "log_bytes";
    case Metric::kLogRecords: return "log_records";
    case Metric::kGroupBatches: return "group_batches";
    case Metric::kBufferHits: return "buffer_hits";
    case Metric::kBufferMisses: return "buffer_misses";
    case Metric::kCleanerWritebacks: return "cleaner_writebacks";
    case Metric::kCheckpoints: return "checkpoints";
    case Metric::kSegmentsRecycled: return "segments_recycled";
    case Metric::kReplSegmentsShipped: return "repl_segments_shipped";
    case Metric::kReplSegmentsApplied: return "repl_segments_applied";
    case Metric::kReplBytesStreamed: return "repl_bytes_streamed";
    case Metric::kReplReplayBatches: return "repl_replay_batches";
    case Metric::kReplLagBytes: return "repl_lag_bytes";
    case Metric::kIoReads: return "io_reads";
    case Metric::kIoWrites: return "io_writes";
    case Metric::kIoReadNs: return "io_read_ns";
    case Metric::kIoWriteNs: return "io_write_ns";
    case Metric::kIoBatchedOps: return "io_batched_ops";
    case Metric::kIoCoalescedPages: return "io_coalesced_pages";
    case Metric::kIoPrefetchIssued: return "io_prefetch_issued";
    case Metric::kIoPrefetchDropped: return "io_prefetch_dropped";
    case Metric::kIoRetries: return "io_retries";
    case Metric::kIoRetryBackoffNs: return "io_retry_backoff_ns";
    case Metric::kChecksumFailures: return "checksum_failures";
    case Metric::kPagesRepaired: return "pages_repaired";
    case Metric::kScrubPages: return "scrub_pages";
    case Metric::kBtreeFinds: return "btree_finds";
    case Metric::kBtreeProbeLockSearches: return "btree_probe_lock_searches";
    case Metric::kBtreeOptimisticDescents:
      return "btree_optimistic_descents";
    case Metric::kBtreeRestarts: return "btree_restarts";
    case Metric::kBtreeLatchFallbacks: return "btree_latch_fallbacks";
  }
  return "?";
}

/// Log2-bucketed latency bucket index, matching common::Histogram's
/// bucketing so snapshots convert losslessly (bucket-for-bucket).
inline constexpr int kLatencyBuckets = 64;
inline int LatencyBucketFor(uint64_t value_ns) {
  if (value_ns == 0) return 0;
  return std::min(kLatencyBuckets - 1, 64 - std::countl_zero(value_ns));
}

/// One worker's counter block (§5's distributed-statistics design made
/// live): the owning worker bumps with plain relaxed stores — a counter
/// block has exactly one writer, so no RMW and no harvest latch ever
/// appears on the hot path — while the profiling thread reads the same
/// atomics relaxed from the side. The block is cache-line aligned so two
/// workers' blocks never share a line.
class alignas(64) WorkerCounters {
 public:
  /// Owner-only: adds `delta` (single-writer load+store, not fetch_add).
  void Inc(Metric m, uint64_t delta = 1) {
    std::atomic<uint64_t>& c = counters_[static_cast<size_t>(m)];
    c.store(c.load(std::memory_order_relaxed) + delta,
            std::memory_order_relaxed);
  }

  /// Owner-only: records one transaction latency sample (nanoseconds).
  void RecordLatency(uint64_t ns) {
    Bump(latency_buckets_[LatencyBucketFor(ns)], 1);
    Bump(latency_count_, 1);
    Bump(latency_sum_, ns);
  }

  /// Any thread: current value (relaxed read of a live counter).
  uint64_t Value(Metric m) const {
    return counters_[static_cast<size_t>(m)].load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;

  static void Bump(std::atomic<uint64_t>& c, uint64_t delta) {
    c.store(c.load(std::memory_order_relaxed) + delta,
            std::memory_order_relaxed);
  }

  std::array<std::atomic<uint64_t>, kMetricCount> counters_ = {};
  std::array<std::atomic<uint64_t>, kLatencyBuckets> latency_buckets_ = {};
  std::atomic<uint64_t> latency_count_{0};
  std::atomic<uint64_t> latency_sum_{0};
  /// Slot state, owned by the registry (false = free).
  std::atomic<bool> used_{false};
};

/// The calling thread's registered counter block, or nullptr when the
/// thread is not a session worker (daemons, tests without sessions).
/// Session's constructor points this at the block it registered and its
/// destructor clears it, so deep subsystems (the B+Tree probe path) can
/// bump per-worker counters without threading a pointer through every
/// call signature. Callers must null-check.
inline WorkerCounters*& TlsWorkerCounters() {
  static thread_local WorkerCounters* tls = nullptr;
  return tls;
}

/// Null-safe single bump of the calling worker's counter.
inline void TlsInc(Metric m, uint64_t delta = 1) {
  if (WorkerCounters* wc = TlsWorkerCounters()) wc->Inc(m, delta);
}

/// Cross-worker latency totals at one instant; converts to a
/// common::Histogram (same bucket boundaries) for quantile extraction.
struct LatencySnapshot {
  std::array<uint64_t, kLatencyBuckets> buckets = {};
  uint64_t count = 0;
  uint64_t sum = 0;

  /// Re-materializes the bucket counts as a Histogram (each bucket's
  /// samples land at its midpoint, the same representative Percentile
  /// reports), so p50/p99/p999 come from the one quantile implementation.
  Histogram ToHistogram() const {
    Histogram h;
    for (int i = 0; i < kLatencyBuckets; ++i) {
      if (buckets[i] == 0) continue;
      uint64_t lo = i == 0 ? 0 : (1ULL << (i - 1));
      uint64_t hi = i == 0 ? 1 : (1ULL << i);
      h.AddCount(lo + (hi - lo) / 2, buckets[i]);
    }
    return h;
  }
};

/// Point-in-time union of every metric across workers, retired workers
/// and engine sources.
struct MetricsSnapshot {
  std::array<uint64_t, kMetricCount> totals = {};
  LatencySnapshot latency;

  uint64_t operator[](Metric m) const {
    return totals[static_cast<size_t>(m)];
  }
};

}  // namespace shoremt::obs

#endif  // SHOREMT_OBS_METRICS_H_
