#ifndef SHOREMT_SIMCORE_STEP_H_
#define SHOREMT_SIMCORE_STEP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/random.h"

namespace shoremt::simcore {

/// Kinds of work a simulated thread can perform.
enum class StepKind : uint8_t {
  kCompute,         ///< Consume CPU for `duration_ns` (at speed 1.0).
  kAcquire,         ///< Acquire lock/latch `resource` (mode for latches).
  kRelease,         ///< Release lock/latch `resource`.
  kIo,              ///< Block without consuming CPU for `duration_ns`.
  kTxnEnd,          ///< Transaction boundary: counts toward throughput.
};

/// Lock/latch acquisition mode (latches only; plain locks use kExclusiveOp).
enum class SimMode : uint8_t { kSharedOp, kExclusiveOp };

/// One unit of simulated work.
struct Step {
  StepKind kind = StepKind::kCompute;
  uint64_t duration_ns = 0;
  int resource = -1;
  SimMode mode = SimMode::kExclusiveOp;
};

/// Convenience builder for transaction step sequences. Engine profiles and
/// calibrated workload models express one transaction as a program; the
/// simulator replays it, resolving contention in virtual time.
class StepProgram {
 public:
  StepProgram& Compute(uint64_t ns);
  StepProgram& Acquire(int resource);
  StepProgram& AcquireShared(int resource);
  StepProgram& Release(int resource);
  /// Compute `cs_ns` while holding `resource` (acquire/compute/release).
  StepProgram& CriticalSection(int resource, uint64_t cs_ns);
  StepProgram& Io(uint64_t ns);
  StepProgram& TxnEnd();

  const std::vector<Step>& steps() const { return steps_; }
  void Clear() { steps_.clear(); }
  bool Empty() const { return steps_.empty(); }

 private:
  std::vector<Step> steps_;
};

/// Generates the next transaction for a simulated thread. Called whenever
/// the thread's program drains; fills `program` (already cleared). The Rng
/// is the thread's private generator, so runs are deterministic per seed.
using TxnFactory = std::function<void(Rng& rng, StepProgram* program)>;

}  // namespace shoremt::simcore

#endif  // SHOREMT_SIMCORE_STEP_H_
