#include "simcore/step.h"

namespace shoremt::simcore {

StepProgram& StepProgram::Compute(uint64_t ns) {
  if (ns > 0) steps_.push_back({StepKind::kCompute, ns, -1, {}});
  return *this;
}

StepProgram& StepProgram::Acquire(int resource) {
  steps_.push_back({StepKind::kAcquire, 0, resource, SimMode::kExclusiveOp});
  return *this;
}

StepProgram& StepProgram::AcquireShared(int resource) {
  steps_.push_back({StepKind::kAcquire, 0, resource, SimMode::kSharedOp});
  return *this;
}

StepProgram& StepProgram::Release(int resource) {
  steps_.push_back({StepKind::kRelease, 0, resource, {}});
  return *this;
}

StepProgram& StepProgram::CriticalSection(int resource, uint64_t cs_ns) {
  Acquire(resource);
  Compute(cs_ns);
  Release(resource);
  return *this;
}

StepProgram& StepProgram::Io(uint64_t ns) {
  steps_.push_back({StepKind::kIo, ns, -1, {}});
  return *this;
}

StepProgram& StepProgram::TxnEnd() {
  steps_.push_back({StepKind::kTxnEnd, 0, -1, {}});
  return *this;
}

}  // namespace shoremt::simcore
