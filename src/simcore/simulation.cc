#include "simcore/simulation.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace shoremt::simcore {

namespace {
// Safety valve: a factory that emits only zero-duration steps would spin
// the event loop forever; after this many instantaneous steps in a row the
// thread is retired instead.
constexpr int kMaxInstantSteps = 1 << 20;
}  // namespace

Simulation::Simulation(const MachineConfig& machine, uint64_t seed)
    : machine_(machine), seed_(seed) {}

int Simulation::AddLock(const SimLockSpec& spec, std::string name) {
  LockState l;
  l.spec = spec;
  l.name = std::move(name);
  locks_.push_back(std::move(l));
  return static_cast<int>(locks_.size()) - 1;
}

int Simulation::AddThread(TxnFactory factory) {
  ThreadCtx t;
  t.id = static_cast<int>(threads_.size());
  t.core = t.id % machine_.cores;
  t.factory = std::move(factory);
  t.rng = Rng(seed_ * 0x9e3779b9ULL + 0x1234567ULL * (t.id + 1));
  threads_.push_back(std::move(t));
  return static_cast<int>(threads_.size()) - 1;
}

bool Simulation::NextStep(ThreadCtx& t, Step* out) {
  if (!t.pending.empty()) {
    *out = t.pending.front();
    t.pending.pop_front();
    return true;
  }
  if (t.program_pos >= t.program.steps().size()) {
    t.program.Clear();
    t.program_pos = 0;
    if (t.factory) t.factory(t.rng, &t.program);
    if (t.program.Empty()) return false;
  }
  *out = t.program.steps()[t.program_pos++];
  return true;
}

int Simulation::SpinnerCount(const LockState& l) const {
  int n = 0;
  for (const Waiter& w : l.waiters) {
    if (threads_[w.thread].state == ThreadState::kSpinning) ++n;
  }
  return n;
}

bool Simulation::TryGrant(LockState& l, ThreadCtx& t, SimMode mode,
                          uint64_t now, bool contended_path) {
  const bool is_latch = l.spec.type == SimLockType::kRwLatch;
  // Unfair locks let newcomers barge past queued waiters: raw spinlocks,
  // and adaptive OS mutexes (a releasing pthread mutex is simply marked
  // free; whoever reaches the word first wins).
  const bool unfair = l.spec.type == SimLockType::kTatas ||
                      l.spec.type == SimLockType::kTtas ||
                      l.spec.type == SimLockType::kBlocking;
  // FIFO locks make newcomers queue behind existing waiters.
  if (!contended_path && !l.waiters.empty() && !unfair) return false;

  if (mode == SimMode::kSharedOp && is_latch) {
    if (l.exclusive_holder != -1) return false;
    ++l.reader_count;
  } else {
    if (l.exclusive_holder != -1 || l.reader_count != 0) return false;
    l.exclusive_holder = t.id;
  }

  // Charge acquisition cost as a synthetic compute step executed before the
  // thread's next real work.
  uint64_t cost = l.spec.uncontended_ns;
  if (contended_path) {
    uint64_t line = machine_.cacheline_transfer_ns;
    int spinners = SpinnerCount(l);
    switch (l.spec.type) {
      case SimLockType::kBlocking:
        // Adaptive mutex granted to a *spinning* waiter: spin handoff.
        // (Parked waiters are never granted directly — GrantWaiters wakes
        // them to re-compete, so their context-switch latency overlaps
        // with other threads' use of the lock.)
        cost += line * (1 + spinners / 2);
        break;
      case SimLockType::kTatas:
        cost += line * (1 + spinners);  // Full invalidation storm.
        break;
      case SimLockType::kTtas:
        cost += line * (1 + spinners / 2);  // Storm only at release race.
        break;
      case SimLockType::kMcs:
        cost += line;  // Single line handoff to the successor.
        break;
      case SimLockType::kTicket:
        cost += line * (1 + spinners / 2);  // Shared grant line.
        break;
      case SimLockType::kRwLatch:
        cost += line;  // Latch word transfer.
        break;
    }
  }
  if (cost > 0) {
    t.pending.push_front({StepKind::kCompute, cost, -1, {}});
  }
  return true;
}

void Simulation::GrantWaiters(LockState& l, uint64_t now) {
  const bool unfair = l.spec.type == SimLockType::kTatas ||
                      l.spec.type == SimLockType::kTtas;
  const bool blocking = l.spec.type == SimLockType::kBlocking;
  for (;;) {
    if (l.waiters.empty()) return;
    // Winner selection: FIFO locks take the head; unfair spinlocks hand
    // the lock to a random spinner (whoever wins the storm); adaptive
    // mutexes grant to a spinning waiter if there is one, else wake the
    // front parked waiter to come back and re-compete.
    size_t pick = 0;
    if (unfair && l.waiters.size() > 1) {
      ThreadCtx& anyone = threads_[l.waiters.front().thread];
      pick = anyone.rng.Uniform(l.waiters.size());
    } else if (blocking) {
      bool found_spinner = false;
      for (size_t i = 0; i < l.waiters.size(); ++i) {
        if (threads_[l.waiters[i].thread].state == ThreadState::kSpinning) {
          pick = i;
          found_spinner = true;
          break;
        }
      }
      if (!found_spinner) {
        // Everyone is parked: wake the head. The wakeup latency runs on
        // the waiter's own time (the lock stays free meanwhile — barging
        // newcomers may take it first, exactly like a real adaptive
        // mutex).
        Waiter w = l.waiters.front();
        l.waiters.pop_front();
        ThreadCtx& t = threads_[w.thread];
        l.wait_ns += now - t.wait_started;
        t.waiting_on = -1;
        t.state = ThreadState::kRunning;
        t.remaining_ns = 0.0;
        t.pending.push_front(
            {StepKind::kAcquire, 0, /*resource=*/-1, w.mode});
        // Fix up the resource id (push_front built a template step).
        t.pending.front().resource = static_cast<int>(&l - locks_.data());
        t.pending.push_front({StepKind::kCompute,
                              machine_.context_switch_ns, -1, {}});
        AdvanceThread(t, now);
        return;  // Lock may have been claimed inside AdvanceThread.
      }
    }
    Waiter w = l.waiters[pick];
    ThreadCtx& t = threads_[w.thread];
    if (!TryGrant(l, t, w.mode, now, /*contended_path=*/true)) return;
    l.waiters.erase(l.waiters.begin() + static_cast<long>(pick));
    l.wait_ns += now - t.wait_started;
    t.waiting_on = -1;
    t.state = ThreadState::kRunning;
    t.remaining_ns = 0.0;
    AdvanceThread(t, now);
    // Shared grants cascade (all compatible readers drain); an exclusive
    // grant blocks further grants and the next TryGrant returns false.
  }
}

void Simulation::AdvanceThread(ThreadCtx& t, uint64_t now) {
  int instant_steps = 0;
  for (;;) {
    if (++instant_steps > kMaxInstantSteps) {
      t.state = ThreadState::kDone;
      return;
    }
    Step s;
    if (!NextStep(t, &s)) {
      t.state = ThreadState::kDone;
      return;
    }
    switch (s.kind) {
      case StepKind::kCompute:
        if (s.duration_ns == 0) continue;
        t.state = ThreadState::kRunning;
        t.remaining_ns = static_cast<double>(s.duration_ns);
        return;
      case StepKind::kIo:
        t.state = ThreadState::kIoWait;
        t.io_done_at = now + s.duration_ns;
        return;
      case StepKind::kTxnEnd:
        ++t.txns;
        continue;
      case StepKind::kAcquire: {
        LockState& l = locks_[s.resource];
        ++l.acquires;
        if (TryGrant(l, t, s.mode, now, /*contended_path=*/false)) continue;
        ++l.contended;
        l.waiters.push_back({t.id, s.mode});
        t.waiting_on = s.resource;
        t.waiting_mode = s.mode;
        t.wait_started = now;
        if (l.spec.type == SimLockType::kBlocking) {
          // Adaptive: the first couple of waiters spin; the rest park.
          t.state = SpinnerCount(l) < 1 ? ThreadState::kSpinning
                                         : ThreadState::kParked;
        } else {
          t.state = ThreadState::kSpinning;
        }
        return;
      }
      case StepKind::kRelease: {
        LockState& l = locks_[s.resource];
        if (l.exclusive_holder == t.id) {
          l.exclusive_holder = -1;
        } else if (l.reader_count > 0) {
          --l.reader_count;
        }
        GrantWaiters(l, now);
        continue;
      }
    }
  }
}

void Simulation::RefreshSpeeds() {
  core_load_.assign(machine_.cores, 0);
  for (const ThreadCtx& t : threads_) {
    if (Consuming(t.state)) ++core_load_[t.core];
  }
  speed_.assign(threads_.size(), 0.0);
  for (const ThreadCtx& t : threads_) {
    if (Consuming(t.state)) {
      speed_[t.id] = machine_.PerThreadSpeed(core_load_[t.core]);
    }
  }
}

SimResult Simulation::Run(uint64_t duration_ns, uint64_t warmup_ns) {
  assert(!ran_ && "Simulation::Run may only be called once");
  ran_ = true;

  uint64_t now = 0;
  for (ThreadCtx& t : threads_) AdvanceThread(t, now);
  RefreshSpeeds();

  bool warmup_done = warmup_ns == 0;
  uint64_t warmup_actual = 0;
  if (warmup_done) {
    for (ThreadCtx& t : threads_) t.txns_at_warmup = t.txns;
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  while (now < duration_ns) {
    // Find the earliest completion among running and IO-waiting threads.
    double dt = kInf;
    for (const ThreadCtx& t : threads_) {
      if (t.state == ThreadState::kRunning && speed_[t.id] > 0.0) {
        dt = std::min(dt, t.remaining_ns / speed_[t.id]);
      } else if (t.state == ThreadState::kIoWait) {
        dt = std::min(dt, static_cast<double>(t.io_done_at - now));
      }
    }
    if (dt == kInf) break;  // Everything parked/spinning/done: quiescent.
    dt = std::max(dt, 0.0);
    // Round up so the loop always makes progress; overshooting a completion
    // by <1ns is absorbed by the 0.5ns completion threshold below.
    auto step_ns = static_cast<uint64_t>(dt) + 1;
    if (now + step_ns > duration_ns) {
      step_ns = duration_ns - now;
      // Still settle partial progress before exiting.
    }

    for (ThreadCtx& t : threads_) {
      if (t.state == ThreadState::kRunning) {
        t.remaining_ns -= static_cast<double>(step_ns) * speed_[t.id];
      }
    }
    now += step_ns;

    if (!warmup_done && now >= warmup_ns) {
      warmup_done = true;
      warmup_actual = now;
      for (ThreadCtx& t : threads_) t.txns_at_warmup = t.txns;
    }

    for (ThreadCtx& t : threads_) {
      if (t.state == ThreadState::kRunning && t.remaining_ns <= 0.5) {
        t.remaining_ns = 0.0;
        AdvanceThread(t, now);
      } else if (t.state == ThreadState::kIoWait && t.io_done_at <= now) {
        AdvanceThread(t, now);
      }
    }
    RefreshSpeeds();
  }

  SimResult r;
  r.sim_ns = duration_ns - warmup_actual;
  for (const ThreadCtx& t : threads_) {
    r.txns += t.txns - t.txns_at_warmup;
  }
  for (const LockState& l : locks_) {
    r.lock_waits += l.contended;
    r.total_wait_ns += l.wait_ns;
  }
  if (r.sim_ns > 0) {
    r.tps = static_cast<double>(r.txns) * 1e9 / static_cast<double>(r.sim_ns);
  }
  if (!threads_.empty()) {
    r.tps_per_thread = r.tps / static_cast<double>(threads_.size());
  }
  return r;
}

std::vector<SimLockStats> Simulation::LockStats() const {
  std::vector<SimLockStats> out;
  out.reserve(locks_.size());
  for (const LockState& l : locks_) {
    out.push_back({l.name, l.acquires, l.contended, l.wait_ns});
  }
  return out;
}

}  // namespace shoremt::simcore
