#ifndef SHOREMT_SIMCORE_MACHINE_H_
#define SHOREMT_SIMCORE_MACHINE_H_

#include <algorithm>
#include <cstdint>

namespace shoremt::simcore {

/// Hardware model for the simulated multicore machine. Defaults describe
/// the paper's Sun T2000 (Niagara): 8 in-order cores, 4 hardware threads
/// per core sharing a single-issue pipeline, 1 GHz.
///
/// The SMT model: one software thread keeps a Niagara core only partially
/// busy (stalls on memory), so `single_thread_throughput` < 1. Adding
/// co-resident threads fills stall slots until the pipeline saturates at
/// `max_core_throughput`. Per-thread speed at occupancy k is
/// CoreThroughput(k) / k — this is what caps Shore-MT's measured speedup
/// below 32x on 32 contexts (§5: "threads contend for hardware resources
/// within the processor itself").
struct MachineConfig {
  int cores = 8;
  int smt_per_core = 4;

  /// Pipeline utilization of a single software thread on an otherwise idle
  /// core (instructions retired per cycle, normalized to peak = 1.0).
  double single_thread_throughput = 0.42;
  /// Saturation utilization with enough co-resident threads.
  double max_core_throughput = 1.0;

  /// Cost to park + wake a thread on an OS (pthread) mutex or condvar.
  uint64_t context_switch_ns = 6000;
  /// round trip). Drives spinlock handoff penalties.
  uint64_t cacheline_transfer_ns = 120;

  int total_contexts() const { return cores * smt_per_core; }

  /// Aggregate throughput of one core running k consuming threads.
  double CoreThroughput(int k) const {
    if (k <= 0) return 0.0;
    return std::min(max_core_throughput, k * single_thread_throughput);
  }

  /// Speed of each of k co-resident consuming threads (fraction of a
  /// dedicated 1.0-speed context).
  double PerThreadSpeed(int k) const {
    return k <= 0 ? 0.0 : CoreThroughput(k) / k;
  }
};

}  // namespace shoremt::simcore

#endif  // SHOREMT_SIMCORE_MACHINE_H_
