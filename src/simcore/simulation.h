#ifndef SHOREMT_SIMCORE_SIMULATION_H_
#define SHOREMT_SIMCORE_SIMULATION_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/random.h"
#include "simcore/machine.h"
#include "simcore/step.h"

namespace shoremt::simcore {

/// Synchronization primitive archetypes with distinct contention physics.
enum class SimLockType : uint8_t {
  /// OS (pthread) mutex: waiters park (free the pipeline); each wakeup
  /// costs a context switch. FIFO.
  kBlocking,
  /// Test-and-set spinlock: waiters burn pipeline slots; release triggers a
  /// coherence storm proportional to the number of spinners. Unfair.
  kTatas,
  /// Test-and-test-and-set: spinning reads are local until release, but the
  /// race at release still costs ~half a storm. Unfair.
  kTtas,
  /// MCS queue lock: waiters spin on a private line; handoff is one cache
  /// line transfer regardless of queue length. FIFO.
  kMcs,
  /// Ticket lock: FIFO, but all waiters share the grant line, so handoff
  /// cost grows (mildly) with the waiter count.
  kTicket,
  /// Reader-writer latch: shared holders proceed together, but every
  /// acquisition serializes on the latch word (one line transfer each) —
  /// hot read-mostly latches still bottleneck (§6.2 principle 3).
  kRwLatch,
};

/// Specification of one simulated lock instance.
struct SimLockSpec {
  SimLockType type = SimLockType::kMcs;
  /// Base cost of an uncontended acquisition (atomic op + bookkeeping).
  uint64_t uncontended_ns = 60;
};

/// Aggregate outcome of a simulation run.
struct SimResult {
  uint64_t txns = 0;          ///< Transactions completed after warmup.
  uint64_t sim_ns = 0;        ///< Measured virtual-time window.
  double tps = 0.0;           ///< txns / sim seconds.
  double tps_per_thread = 0.0;
  uint64_t lock_waits = 0;    ///< Contended acquisitions across all locks.
  uint64_t total_wait_ns = 0; ///< Summed virtual wait time.
};

/// Per-lock contention accounting exposed for reporting.
struct SimLockStats {
  std::string name;
  uint64_t acquires = 0;
  uint64_t contended = 0;
  uint64_t wait_ns = 0;
};

/// Discrete-event simulation of N software threads on a multicore machine.
///
/// Threads run transaction step-programs produced by their TxnFactory. The
/// engine uses processor-sharing within each core (see MachineConfig's SMT
/// model): spinning waiters *consume* pipeline slots while parked waiters do
/// not, which is exactly the mechanism that separates TATAS from MCS from
/// blocking mutexes on the paper's Niagara.
///
/// Usage:
///   Simulation sim(machine);
///   int log_mutex = sim.AddLock({SimLockType::kBlocking, 80}, "log");
///   sim.AddThread([&](Rng& rng, StepProgram* p) { ... });
///   SimResult r = sim.Run(50'000'000 /*50ms*/, 5'000'000 /*warmup*/);
class Simulation {
 public:
  explicit Simulation(const MachineConfig& machine, uint64_t seed = 1);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Registers a lock/latch; returns its resource id for step programs.
  int AddLock(const SimLockSpec& spec, std::string name);

  /// Adds a worker thread; threads are assigned to cores round-robin
  /// (thread i runs on core i % cores, matching the OS spreading threads).
  int AddThread(TxnFactory factory);

  /// Runs for `duration_ns` of virtual time; statistics cover only the
  /// portion after `warmup_ns`. Can be called once per Simulation.
  SimResult Run(uint64_t duration_ns, uint64_t warmup_ns = 0);

  /// Post-run per-lock statistics.
  std::vector<SimLockStats> LockStats() const;

  const MachineConfig& machine() const { return machine_; }

 private:
  enum class ThreadState : uint8_t {
    kRunning,   // Consuming CPU to finish current work.
    kSpinning,  // Waiting on a lock, consuming CPU.
    kParked,    // Waiting on a lock, not consuming CPU.
    kIoWait,    // Waiting on IO completion, not consuming CPU.
    kDone,      // No more work (factory returned empty program).
  };

  struct Waiter {
    int thread;
    SimMode mode;
  };

  struct LockState {
    SimLockSpec spec;
    std::string name;
    int exclusive_holder = -1;
    int reader_count = 0;
    std::deque<Waiter> waiters;
    uint64_t acquires = 0;
    uint64_t contended = 0;
    uint64_t wait_ns = 0;
  };

  struct ThreadCtx {
    int id = 0;
    int core = 0;
    ThreadState state = ThreadState::kRunning;
    double remaining_ns = 0.0;   // Work left in current consuming step.
    std::deque<Step> pending;    // Synthetic steps + current transaction.
    size_t program_pos = 0;      // Cursor into `program`.
    StepProgram program;
    TxnFactory factory;
    Rng rng;
    uint64_t io_done_at = 0;
    int waiting_on = -1;
    SimMode waiting_mode = SimMode::kExclusiveOp;
    uint64_t wait_started = 0;
    uint64_t txns = 0;
    uint64_t txns_at_warmup = 0;

    ThreadCtx() : rng(1) {}
  };

  /// True while `t` occupies pipeline issue slots.
  static bool Consuming(ThreadState s) {
    return s == ThreadState::kRunning || s == ThreadState::kSpinning;
  }

  /// Pops the next step for `t`, refilling from the factory at txn end.
  bool NextStep(ThreadCtx& t, Step* out);
  /// Executes instantaneous steps for `t` until it starts consuming work,
  /// parks, spins, or finishes.
  void AdvanceThread(ThreadCtx& t, uint64_t now);
  /// Attempts to grant `mode` on lock `l` to thread `t` at time `now`.
  /// Returns true and charges handoff/acquire costs if granted.
  bool TryGrant(LockState& l, ThreadCtx& t, SimMode mode, uint64_t now,
                bool contended_path);
  /// On release: hands the lock to the next compatible waiter(s).
  void GrantWaiters(LockState& l, uint64_t now);
  /// Recomputes the per-thread speeds from per-core consuming counts.
  void RefreshSpeeds();

  int SpinnerCount(const LockState& l) const;

  MachineConfig machine_;
  std::vector<LockState> locks_;
  std::vector<ThreadCtx> threads_;
  std::vector<double> speed_;       // Per-thread current speed factor.
  std::vector<int> core_load_;      // Consuming threads per core.
  uint64_t seed_;
  bool ran_ = false;
};

}  // namespace shoremt::simcore

#endif  // SHOREMT_SIMCORE_SIMULATION_H_
