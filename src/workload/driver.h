#ifndef SHOREMT_WORKLOAD_DRIVER_H_
#define SHOREMT_WORKLOAD_DRIVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"

namespace shoremt::workload {

/// Result of one multi-threaded measurement.
struct DriverResult {
  uint64_t txns = 0;
  uint64_t aborts = 0;
  double seconds = 0.0;
  double tps = 0.0;
  double tps_per_thread = 0.0;
  Histogram latency;  ///< Per-transaction latency (ns).
};

/// Runs `txn_fn` from `threads` worker threads for `duration_ms` after
/// `warmup_ms`. `txn_fn(thread_id, rng)` executes one transaction and
/// returns true on commit, false on abort/retry (still counted as work,
/// not throughput). This is the measurement loop used by the real-engine
/// benchmarks (the paper's client drivers linked directly against the
/// engine).
///
/// `drain_fn(thread_id)`, when provided, runs once per worker after its
/// measurement loop exits and before the driver returns — the hook
/// asynchronous-commit workloads use to acknowledge outstanding commits
/// (Session::WaitAll), so every transaction counted as committed is
/// durable by the time the result is read.
DriverResult RunDriver(int threads, uint64_t warmup_ms, uint64_t duration_ms,
                       const std::function<bool(int, Rng&)>& txn_fn,
                       const std::function<void(int)>& drain_fn = {});

}  // namespace shoremt::workload

#endif  // SHOREMT_WORKLOAD_DRIVER_H_
