#ifndef SHOREMT_WORKLOAD_ENGINE_PROFILES_H_
#define SHOREMT_WORKLOAD_ENGINE_PROFILES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/simulation.h"
#include "sm/options.h"

namespace shoremt::workload {

/// Per-operation service times (nanoseconds) for the simulator profiles.
/// The defaults approximate the real engine measured single-threaded on
/// the build machine, rescaled to the paper's 1 GHz Niagara magnitudes;
/// bench/calibrate regenerates them from live sync-stats measurements.
struct Calibration {
  // Insert-microbenchmark path pieces (per record insert).
  uint64_t insert_compute = 9000;     ///< Non-critical-section work.
  uint64_t bpool_cs = 700;            ///< Buffer pool table CS, per fix.
  int bpool_fixes = 3;                ///< Table fixes per insert.
  uint64_t fsm_cs_short = 500;        ///< Refactored free-space CS.
  uint64_t fsm_cs_long = 2600;        ///< Original CS incl. metadata scan.
  uint64_t fsm_latch_extra = 1800;    ///< Page latch held inside the CS.
  uint64_t fsm_refactor_overhead = 2500;  ///< +30%-ish single-thread cost.
  uint64_t log_cs_mutex = 2200;       ///< Mutex log buffer insert CS.
  uint64_t log_cs_decoupled = 400;    ///< Decoupled circular buffer CS.
  uint64_t log_cs_consolidated = 150; ///< Claim-only insert CS.
  /// Consolidation-array buffer: colliders share one claim CAS and
  /// completion publication leaves the serialized path entirely.
  uint64_t log_cs_carray = 100;
  uint64_t lock_cs = 450;             ///< Lock manager CS, per acquire.
  int lock_acquires = 2;              ///< Lock manager CSs per insert.
  uint64_t commit_flush_ns = 60000;   ///< Log flush (in-memory log fs).
  uint64_t records_per_txn = 100;     ///< Inserts per commit (scaled).

  // TPC-C path pieces (per row operation).
  uint64_t tpcc_row_compute = 6000;
  uint64_t tpcc_row_lock_hold = 2500;  ///< Row lock held across the op.
};

/// One serialized section of the modeled code path.
struct ModelSection {
  /// Lock protecting the section; nullopt-style: private (no shared lock,
  /// pure compute) when `shared` is false.
  bool shared = true;
  simcore::SimLockType lock_type = simcore::SimLockType::kBlocking;
  uint64_t cs_ns = 0;
  int repeat = 1;
  std::string name;
  /// Fraction of records that execute this section (thread-local caches
  /// let most operations bypass a critical section entirely, §6.2.2).
  double probability = 1.0;
};

/// A complete workload model for the simulator: per-record sections plus
/// commit behaviour.
struct WorkloadModel {
  std::vector<ModelSection> sections;
  uint64_t compute_ns = 0;        ///< Private work per record.
  uint64_t records_per_txn = 100;
  uint64_t commit_io_ns = 60000;  ///< Blocking log flush at commit.
  /// Sections executed once per txn under per-thread contention (e.g.
  /// TPC-C hot rows): pairs of (lock index into `hot_locks`, hold ns).
  std::vector<std::pair<int, uint64_t>> hot_row_ops;
  int hot_lock_count = 0;  ///< Number of distinct hot row locks.
  /// Picks which hot lock a txn uses (else uniform over hot_lock_count).
  bool hot_zipf = false;
};

/// Instantiates `model` on `sim` with `threads` workers. Returns the ids
/// of the created locks (diagnostics).
void BuildModel(simcore::Simulation* sim, int threads,
                const WorkloadModel& model);

/// The engines compared in Figures 1 and 4.
enum class EngineKind {
  kShore,     ///< Original Shore: effectively one big serial section.
  kBdb,       ///< BerkeleyDB: TATAS everywhere + page-level root locking.
  kMysql,     ///< MySQL/InnoDB: srv_conc_enter gate + log flush stalls.
  kPostgres,  ///< PostgreSQL: XLogInsert + malloc + index metadata locks.
  kDbmsX,     ///< Commercial engine: tuned, mild log-insert contention.
  kShoreMt,   ///< Shore-MT at a given optimization stage.
};

std::string_view EngineName(EngineKind e);

/// Insert-microbenchmark model for one engine (§4's profiling results
/// translated into serialization structure). For kShoreMt, `stage` picks
/// the §7 snapshot.
WorkloadModel InsertMicroModel(EngineKind engine, sm::Stage stage,
                               const Calibration& calib);

/// TPC-C Payment / New Order models for Figure 5. `warehouses` scales the
/// hot-row set; New Order adds the shared STOCK/ITEM contention that
/// causes the paper's dip around 16 clients.
WorkloadModel TpccModel(EngineKind engine, bool new_order, int warehouses,
                        const Calibration& calib);

}  // namespace shoremt::workload

#endif  // SHOREMT_WORKLOAD_ENGINE_PROFILES_H_
