#ifndef SHOREMT_WORKLOAD_INSERT_WORKLOAD_H_
#define SHOREMT_WORKLOAD_INSERT_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "sm/session.h"
#include "sm/storage_manager.h"
#include "workload/driver.h"

namespace shoremt::workload {

/// The paper's Record Insertion microbenchmark (§3.2): every client owns a
/// private table backed by a B-Tree index and repeatedly inserts records;
/// there is no logical contention and (with an in-memory log device) no
/// I/O on the critical path. Stresses the free space manager, buffer pool
/// and log manager.
struct InsertBenchConfig {
  int clients = 4;
  uint64_t records_per_commit = 1000;  ///< Paper: 1000 (10000 for MySQL).
  size_t record_bytes = 100;
  uint64_t warmup_ms = 100;
  uint64_t duration_ms = 500;
  /// Commit through Session::ApplyAsync (group-commit pipeline, durability
  /// acknowledged via WaitAll at drain) instead of the blocking Apply.
  bool async_commit = false;
};

/// One client's state: its session, private table and key counter. Each
/// worker thread drives exactly one session — the Shore-MT threading
/// model the sm::Session API encodes.
struct InsertBenchState {
  /// Pre-built Apply batch, rewritten in place every round so the
  /// measured loop performs no client-side allocation.
  struct Batch {
    std::vector<std::vector<uint8_t>> payloads;
    std::vector<sm::Op> ops;
  };

  std::vector<std::unique_ptr<sm::Session>> sessions;  // One per client.
  std::vector<sm::TableInfo> tables;                   // One per client.
  std::vector<uint64_t> next_key;                      // Per-client keys.
  std::vector<Batch> batches;                          // One per client.
};

/// Opens one session per client and creates the private tables.
Result<InsertBenchState> SetupInsertBench(sm::StorageManager* sm,
                                          const InsertBenchConfig& config);

/// Runs the microbenchmark; one "transaction" = records_per_commit inserts
/// batched through Session::Apply followed by a commit (matching the
/// paper's reporting unit). All engine access goes through the sessions
/// in `state`.
DriverResult RunInsertBench(const InsertBenchConfig& config,
                            InsertBenchState* state);

}  // namespace shoremt::workload

#endif  // SHOREMT_WORKLOAD_INSERT_WORKLOAD_H_
