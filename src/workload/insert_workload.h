#ifndef SHOREMT_WORKLOAD_INSERT_WORKLOAD_H_
#define SHOREMT_WORKLOAD_INSERT_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "sm/storage_manager.h"
#include "workload/driver.h"

namespace shoremt::workload {

/// The paper's Record Insertion microbenchmark (§3.2): every client owns a
/// private table backed by a B-Tree index and repeatedly inserts records;
/// there is no logical contention and (with an in-memory log device) no
/// I/O on the critical path. Stresses the free space manager, buffer pool
/// and log manager.
struct InsertBenchConfig {
  int clients = 4;
  uint64_t records_per_commit = 1000;  ///< Paper: 1000 (10000 for MySQL).
  size_t record_bytes = 100;
  uint64_t warmup_ms = 100;
  uint64_t duration_ms = 500;
};

/// One client's state: its private table and key counter.
struct InsertBenchState {
  std::vector<sm::TableInfo> tables;        // One per client.
  std::vector<uint64_t> next_key;           // Per-client key sequence.
};

/// Creates the per-client private tables.
Result<InsertBenchState> SetupInsertBench(sm::StorageManager* sm,
                                          const InsertBenchConfig& config);

/// Runs the microbenchmark; one "transaction" = records_per_commit inserts
/// followed by a commit (matching the paper's reporting unit).
DriverResult RunInsertBench(sm::StorageManager* sm,
                            const InsertBenchConfig& config,
                            InsertBenchState* state);

}  // namespace shoremt::workload

#endif  // SHOREMT_WORKLOAD_INSERT_WORKLOAD_H_
