#ifndef SHOREMT_WORKLOAD_YCSB_H_
#define SHOREMT_WORKLOAD_YCSB_H_

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "sm/session.h"
#include "sm/storage_manager.h"
#include "workload/tpcc.h"  // CommitMode

namespace shoremt::workload {

/// YCSB core workloads A–F over the Session API: the skew/tail scenario
/// the TPC-C mix does not exercise. One table ("usertable"), 64-bit keys,
/// fixed-size opaque payloads; request distribution is uniform or Zipfian
/// (common::ZipfGenerator) with the skew theta swept by the contention
/// panel in bench/fig_ycsb.cc.
struct YcsbConfig {
  uint64_t record_count = 10'000;  ///< Keys loaded as [0, record_count).
  uint32_t field_size = 100;       ///< Payload bytes per row (>= 8).
  /// Zipfian skew of the request distribution; 0 = uniform (drawn from
  /// the session RNG, not the Zipf generator).
  double zipf_theta = 0.0;
  uint32_t max_scan_len = 50;  ///< Scan length drawn from [1, max].
  uint32_t ops_per_txn = 1;    ///< YCSB's default: one op per transaction.
  uint64_t load_batch = 256;   ///< Rows per loader transaction.
};

/// The six core workloads and their operation mixes.
enum class YcsbWorkload : uint8_t { kA, kB, kC, kD, kE, kF };

constexpr std::string_view YcsbName(YcsbWorkload w) {
  switch (w) {
    case YcsbWorkload::kA: return "A";  // 50% read / 50% update
    case YcsbWorkload::kB: return "B";  // 95% read /  5% update
    case YcsbWorkload::kC: return "C";  // 100% read
    case YcsbWorkload::kD: return "D";  // 95% read-latest / 5% insert
    case YcsbWorkload::kE: return "E";  // 95% scan / 5% insert
    case YcsbWorkload::kF: return "F";  // 50% read / 50% read-modify-write
  }
  return "?";
}

/// Operation mix (fractions sum to 1).
struct YcsbMix {
  double read = 0, update = 0, insert = 0, scan = 0, rmw = 0;
};

constexpr YcsbMix YcsbMixFor(YcsbWorkload w) {
  switch (w) {
    case YcsbWorkload::kA: return {0.50, 0.50, 0, 0, 0};
    case YcsbWorkload::kB: return {0.95, 0.05, 0, 0, 0};
    case YcsbWorkload::kC: return {1.00, 0, 0, 0, 0};
    case YcsbWorkload::kD: return {0.95, 0, 0.05, 0, 0};
    case YcsbWorkload::kE: return {0, 0, 0.05, 0.95, 0};
    case YcsbWorkload::kF: return {0.50, 0, 0, 0, 0.50};
  }
  return {};
}

/// The loaded database. Not copyable: the insert frontier is shared
/// mutable state between workers (D and E insert concurrently).
struct YcsbDatabase {
  YcsbConfig config;
  sm::TableInfo usertable;
  /// Next key an inserter claims (starts at record_count).
  std::atomic<uint64_t> next_insert_key{0};
  /// Keys [0, visible_count) whose inserts have committed — readers and
  /// scanners draw only from these, so a chosen key always exists (YCSB
  /// never deletes). Advanced after commit with a max-CAS.
  std::atomic<uint64_t> visible_count{0};

  YcsbDatabase() = default;
  YcsbDatabase(const YcsbDatabase&) = delete;
  YcsbDatabase& operator=(const YcsbDatabase&) = delete;
};

/// Fills `out` (resized to field_size) with the deterministic payload for
/// `key`: the first 8 bytes hold a little-endian RMW counter starting at
/// `counter`, the rest is a key-seeded byte pattern. ReadYcsbCounter
/// extracts the counter; together they make F's read-modify-write
/// verifiable end to end.
void FillYcsbPayload(uint64_t key, uint32_t field_size, uint64_t counter,
                     std::vector<uint8_t>* out);
uint64_t ReadYcsbCounter(std::span<const uint8_t> payload);

/// Creates and loads "usertable" with keys [0, record_count) through
/// `session` (no open transaction; the loader batches its own commits).
Status LoadYcsb(sm::Session* session, const YcsbConfig& cfg,
                YcsbDatabase* db);

/// Per-worker request-generation state: the Zipf generator is seeded per
/// worker (deterministic for a fixed seed) and scrambled so the hot keys
/// are spread over the key space instead of clustering at 0, as YCSB's
/// ScrambledZipfian does.
class YcsbWorker {
 public:
  YcsbWorker(YcsbDatabase* db, uint64_t seed);

  /// Draws the key for a read/update/scan/rmw request: uniform or
  /// scrambled-Zipfian over the committed keys.
  uint64_t NextKey();
  /// Draws a key skewed toward the most recently inserted (workload D's
  /// read-latest distribution).
  uint64_t NextLatestKey();

  YcsbDatabase* db() { return db_; }
  Rng& rng() { return rng_; }

 private:
  YcsbDatabase* db_;
  Rng rng_;
  ZipfGenerator zipf_;   ///< Over [0, record_count); used when theta > 0.
  ZipfGenerator latest_; ///< Small-skew generator for read-latest offsets.
};

/// Runs one YCSB transaction (ops_per_txn operations of workload `w`'s
/// mix) on `session`. Returns false on abort (deadlock victim) — the
/// driver counts it as work, not throughput. Workload-level RMW round
/// trips are bumped into the session's live WorkerCounters
/// (obs::Metric::kRmws).
bool RunYcsbTxn(sm::Session* session, YcsbWorker* worker, YcsbWorkload w,
                CommitMode mode = CommitMode::kSync);

}  // namespace shoremt::workload

#endif  // SHOREMT_WORKLOAD_YCSB_H_
