#include "workload/insert_workload.h"

#include <string>

namespace shoremt::workload {

Result<InsertBenchState> SetupInsertBench(sm::StorageManager* sm,
                                          const InsertBenchConfig& config) {
  InsertBenchState state;
  state.tables.resize(config.clients);
  state.next_key.assign(config.clients, 0);
  state.batches.resize(config.clients);
  for (int c = 0; c < config.clients; ++c) {
    state.sessions.push_back(sm->OpenSession());
    sm::Session* session = state.sessions.back().get();
    SHOREMT_RETURN_NOT_OK(session->Begin());
    SHOREMT_ASSIGN_OR_RETURN(
        state.tables[c],
        session->CreateTable("insert_bench_" + std::to_string(c)));
    SHOREMT_RETURN_NOT_OK(session->Commit());
    // Build the client's reusable batch once; the run loop only rewrites
    // keys and a payload byte.
    InsertBenchState::Batch& batch = state.batches[c];
    batch.payloads.assign(config.records_per_commit,
                          std::vector<uint8_t>(config.record_bytes, 0xab));
    batch.ops.reserve(config.records_per_commit);
    for (uint64_t i = 0; i < config.records_per_commit; ++i) {
      batch.ops.push_back(sm::Op{sm::OpType::kInsert, 0,
                                 std::span<const uint8_t>(batch.payloads[i])});
    }
  }
  return state;
}

DriverResult RunInsertBench(const InsertBenchConfig& config,
                            InsertBenchState* state) {
  return RunDriver(
      config.clients, config.warmup_ms, config.duration_ms,
      [&](int client, Rng&) {
        sm::Session* session = state->sessions[client].get();
        InsertBenchState::Batch& batch = state->batches[client];
        uint64_t& key = state->next_key[client];
        for (uint64_t i = 0; i < config.records_per_commit; ++i) {
          // Vary a payload byte so records are not identical.
          batch.payloads[i][0] = static_cast<uint8_t>(key + i);
          batch.ops[i].key = key + i;
        }
        // One atomic batch == one commit. Sync mode waits for the group
        // flush before the next batch; async mode only submits, letting
        // one daemon flush acknowledge many batches (drained below).
        if (config.async_commit) {
          if (!session->ApplyAsync(state->tables[client], batch.ops).ok()) {
            return false;
          }
        } else if (!session->Apply(state->tables[client], batch.ops).ok()) {
          return false;
        }
        key += config.records_per_commit;
        return true;
      },
      [&](int client) { (void)state->sessions[client]->WaitAll(); });
}

}  // namespace shoremt::workload
