#include "workload/insert_workload.h"

#include <string>

namespace shoremt::workload {

Result<InsertBenchState> SetupInsertBench(sm::StorageManager* sm,
                                          const InsertBenchConfig& config) {
  InsertBenchState state;
  state.tables.resize(config.clients);
  state.next_key.assign(config.clients, 0);
  for (int c = 0; c < config.clients; ++c) {
    auto* txn = sm->Begin();
    SHOREMT_ASSIGN_OR_RETURN(
        state.tables[c],
        sm->CreateTable(txn, "insert_bench_" + std::to_string(c)));
    SHOREMT_RETURN_NOT_OK(sm->Commit(txn));
  }
  return state;
}

DriverResult RunInsertBench(sm::StorageManager* sm,
                            const InsertBenchConfig& config,
                            InsertBenchState* state) {
  return RunDriver(
      config.clients, config.warmup_ms, config.duration_ms,
      [&](int client, Rng& rng) {
        std::vector<uint8_t> payload(config.record_bytes, 0xab);
        auto* txn = sm->Begin();
        uint64_t& key = state->next_key[client];
        for (uint64_t i = 0; i < config.records_per_commit; ++i) {
          // Vary a few payload bytes so records are not identical.
          payload[0] = static_cast<uint8_t>(key);
          auto rid = sm->Insert(txn, state->tables[client], key, payload);
          if (!rid.ok()) {
            (void)sm->Abort(txn);
            return false;
          }
          ++key;
        }
        return sm->Commit(txn).ok();
      });
}

}  // namespace shoremt::workload
