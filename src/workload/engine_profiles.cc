#include "workload/engine_profiles.h"

namespace shoremt::workload {

using simcore::SimLockType;
using simcore::StepProgram;

std::string_view EngineName(EngineKind e) {
  switch (e) {
    case EngineKind::kShore: return "shore";
    case EngineKind::kBdb: return "bdb";
    case EngineKind::kMysql: return "mysql";
    case EngineKind::kPostgres: return "postgres";
    case EngineKind::kDbmsX: return "dbms-x";
    case EngineKind::kShoreMt: return "shore-mt";
  }
  return "?";
}

void BuildModel(simcore::Simulation* sim, int threads,
                const WorkloadModel& model) {
  // Shared locks, one per shared section. Uncontended acquisition cost
  // depends on the primitive: a pthread mutex pair costs over a
  // microsecond of function + atomic + bookkeeping overhead on the
  // paper's hardware, spinlocks cost one atomic.
  std::vector<int> section_locks(model.sections.size(), -1);
  for (size_t i = 0; i < model.sections.size(); ++i) {
    const ModelSection& s = model.sections[i];
    if (s.shared) {
      // Roughly half the pthread overhead lands inside the lock-word
      // critical path; the rest (function + bookkeeping) is private and
      // folded into compute by the model builders.
      uint64_t uncontended =
          s.lock_type == simcore::SimLockType::kBlocking ? 500 : 60;
      section_locks[i] = sim->AddLock({s.lock_type, uncontended}, s.name);
    }
  }
  std::vector<int> hot_locks;
  for (int i = 0; i < model.hot_lock_count; ++i) {
    hot_locks.push_back(sim->AddLock({SimLockType::kBlocking, 80},
                                     "hot_row_" + std::to_string(i)));
  }

  for (int t = 0; t < threads; ++t) {
    sim->AddThread([&model, section_locks, hot_locks](Rng& rng,
                                                      StepProgram* p) {
      // Hot per-txn row ops (TPC-C): pick the row, hold it across the op.
      if (!hot_locks.empty()) {
        for (const auto& [lock_sel, hold_ns] : model.hot_row_ops) {
          size_t pick =
              lock_sel >= 0
                  ? static_cast<size_t>(lock_sel) % hot_locks.size()
                  : rng.Uniform(hot_locks.size());
          p->CriticalSection(hot_locks[pick], hold_ns);
        }
      }
      for (uint64_t r = 0; r < model.records_per_txn; ++r) {
        p->Compute(model.compute_ns);
        for (size_t i = 0; i < model.sections.size(); ++i) {
          const ModelSection& s = model.sections[i];
          for (int k = 0; k < s.repeat; ++k) {
            if (s.probability < 1.0 && !rng.Bernoulli(s.probability)) {
              continue;  // Bypassed via a thread-local cache.
            }
            if (s.shared) {
              p->CriticalSection(section_locks[i], s.cs_ns);
            } else {
              // Distributed (per-bucket) structures: same work, but the
              // probability of colliding on a bucket is negligible.
              p->Compute(s.cs_ns);
            }
          }
        }
        // Progress is counted per record so slow configurations still
        // resolve within short measurement windows; callers divide by
        // records_per_txn to report transaction rates.
        p->TxnEnd();
      }
      if (model.commit_io_ns > 0) p->Io(model.commit_io_ns);
    });
  }
}

WorkloadModel InsertMicroModel(EngineKind engine, sm::Stage stage,
                               const Calibration& c) {
  WorkloadModel m;
  m.records_per_txn = c.records_per_txn;
  m.commit_io_ns = c.commit_flush_ns;

  switch (engine) {
    case EngineKind::kShore: {
      // User-level threads on one OS thread: the entire path is one big
      // serial section — more threads never help.
      m.compute_ns = 0;
      m.sections.push_back({true, SimLockType::kBlocking,
                            c.insert_compute + c.bpool_fixes * c.bpool_cs +
                                c.fsm_cs_long + c.fsm_latch_extra +
                                c.log_cs_mutex + c.lock_acquires * c.lock_cs,
                            1, "shore.global"});
      return m;
    }
    case EngineKind::kBdb: {
      // §4: 80% of time in test-and-set lock code; page-level locking
      // means the B-tree root lock covers most of the path. Very cheap
      // when uncontended, collapses under contention.
      m.compute_ns = c.insert_compute / 3;  // Lean embedded code path.
      m.sections.push_back({true, SimLockType::kTatas,
                            2 * c.insert_compute / 3, 1, "bdb.tree_page"});
      m.sections.push_back(
          {true, SimLockType::kTatas, c.log_cs_decoupled, 1, "bdb.log"});
      return m;
    }
    case EngineKind::kMysql: {
      // §4: srv_conc_enter_innodb blocks ~39% of execution; log flush
      // stalls ~20% even with long transactions; malloc contention.
      m.compute_ns = c.insert_compute;
      m.sections.push_back({true, SimLockType::kBlocking,
                            4 * c.insert_compute / 10, 1, "mysql.srv_conc"});
      m.sections.push_back({true, SimLockType::kBlocking,
                            2 * c.insert_compute / 10, 1,
                            "mysql.log_preflush"});
      // malloc hot path behind a test-and-set lock (§4 observes
      // take_deferred_signal / mutex_lock_internal): the piece that turns
      // MySQL's plateau into a decline at high thread counts.
      m.sections.push_back(
          {true, SimLockType::kTatas, 3 * c.lock_cs, 1, "mysql.malloc"});
      return m;
    }
    case EngineKind::kPostgres: {
      // §4: XLogInsert + malloc during executor setup/teardown + index
      // metadata locking — 10-15% of thread time, enough to flatten.
      m.compute_ns = c.insert_compute;
      m.sections.push_back({true, SimLockType::kBlocking,
                            c.insert_compute / 14, 1, "pg.xloginsert"});
      m.sections.push_back({true, SimLockType::kBlocking,
                            c.insert_compute / 33, 1, "pg.malloc"});
      m.sections.push_back({true, SimLockType::kBlocking,
                            c.insert_compute / 40, 1, "pg.index_meta"});
      return m;
    }
    case EngineKind::kDbmsX: {
      // Tuned commercial engine: scalable primitives but a heavier code
      // path (SQL front end, socket clients — §5 footnote 7 puts
      // Shore-MT at ~2x its absolute throughput); the looming log-insert
      // bottleneck §5 mentions.
      m.compute_ns = 2 * c.insert_compute;
      m.sections.push_back({true, SimLockType::kMcs, c.log_cs_decoupled / 2,
                            1, "x.log_insert"});
      m.sections.push_back(
          {false, SimLockType::kMcs, c.lock_cs, c.lock_acquires, "x.locks"});
      return m;
    }
    case EngineKind::kShoreMt:
      break;  // Stage-dependent, below.
  }

  // Shore-MT at a §7 stage. Sections mirror sm::StorageOptions::ForStage.
  sm::StorageOptions o = sm::StorageOptions::ForStage(stage);
  bool after_caching = static_cast<int>(stage) >= static_cast<int>(
                                                      sm::Stage::kCaching);
  bool after_log = static_cast<int>(stage) >= static_cast<int>(
                                                  sm::Stage::kLog);
  bool after_bpool2 = static_cast<int>(stage) >= static_cast<int>(
                                                     sm::Stage::kBufferPool2);

  // The optimizations both shorten the code path (the 3x single-thread
  // speedup of §5) and move work out of critical sections. Baseline Shore
  // funnels most of every insert through the buffer pool's single global
  // mutex — "a crippling bottleneck for more than about four threads"
  // (§6.2.3) — so its private compute is small and one giant critical
  // section dominates.
  m.compute_ns = stage == sm::Stage::kBaseline
                     ? 3000
                     : (stage == sm::Stage::kBufferPool1
                            ? c.insert_compute + 3000
                            : c.insert_compute);

  // Buffer pool table (3 fixes per insert).
  if (o.buffer.table_kind == buffer::TableKind::kGlobalChained) {
    m.sections.push_back({true, SimLockType::kBlocking,
                          2 * c.insert_compute + c.bpool_fixes * c.bpool_cs,
                          1, "smt.bpool_global"});
  } else {
    // Per-bucket / cuckoo: effectively private. Misses still serialize on
    // the clock hand + the (long) in-transit list scans until bpool2
    // (§7.6: misses grow with thread count; each walks the shared lists).
    m.sections.push_back({false, SimLockType::kMcs, c.bpool_cs,
                          c.bpool_fixes, "smt.bpool"});
    if (!after_bpool2) {
      m.sections.push_back({true, SimLockType::kTtas, 2 * c.bpool_cs, 1,
                            "smt.clock_transit", 0.3});
    }
  }

  // Global allocator: Shore leaned on malloc/free per operation until the
  // §7.4 switch to thread-local allocation.
  if (!after_log) {
    m.sections.push_back({true, SimLockType::kBlocking, 350, 2,
                          "smt.malloc"});
  }

  // Free space manager. The §6.2.2 thread-local extent cache lets >95%
  // of inserts skip the critical section entirely.
  {
    uint64_t cs = o.space.refactored_alloc ? c.fsm_cs_short : c.fsm_cs_long;
    if (!o.space.refactored_alloc) cs += c.fsm_latch_extra;
    if (!o.space.extent_cache) cs += c.fsm_cs_long / 2;  // Ownership scan.
    SimLockType t = o.space.mutex_kind == sync::MutexKind::kPthread
                        ? SimLockType::kBlocking
                        : (o.space.mutex_kind == sync::MutexKind::kTtas
                               ? SimLockType::kTtas
                               : SimLockType::kMcs);
    double probability = o.space.extent_cache ? 0.05 : 1.0;
    m.sections.push_back({true, t, cs, 1, "smt.fsm", probability});
    if (o.space.refactored_alloc) m.compute_ns += c.fsm_refactor_overhead / 4;
  }

  // Log manager.
  {
    uint64_t cs = c.log_cs_mutex;
    if (o.log.buffer_kind == log::LogBufferKind::kDecoupled) {
      cs = c.log_cs_decoupled;
    }
    if (o.log.buffer_kind == log::LogBufferKind::kConsolidated) {
      cs = c.log_cs_consolidated;
    }
    if (o.log.buffer_kind == log::LogBufferKind::kCArray) {
      cs = c.log_cs_carray;
    }
    SimLockType t = o.log.buffer_kind == log::LogBufferKind::kMutex
                        ? SimLockType::kBlocking
                        : SimLockType::kMcs;
    m.sections.push_back({true, t, cs, 1, "smt.log"});
  }

  // Lock manager.
  if (o.lock.per_shard_latch) {
    m.sections.push_back(
        {false, SimLockType::kMcs, c.lock_cs, c.lock_acquires, "smt.lock"});
  } else {
    m.sections.push_back({true, SimLockType::kBlocking, c.lock_cs,
                          c.lock_acquires, "smt.lock"});
  }

  // Transaction list (oldest-txn queries) — folded into lock traffic
  // before caching.
  if (!after_caching) {
    m.sections.push_back({true, SimLockType::kBlocking, c.lock_cs / 2, 1,
                          "smt.txn_list"});
  }

  // The private half of each pthread acquisition's overhead (see
  // BuildModel): keeps single-thread cost honest without inflating the
  // serialized portion.
  for (const ModelSection& s : m.sections) {
    if (s.shared && s.lock_type == SimLockType::kBlocking) {
      m.compute_ns += static_cast<uint64_t>(600.0 * s.repeat * s.probability);
    }
  }
  return m;
}

WorkloadModel TpccModel(EngineKind engine, bool new_order, int warehouses,
                        const Calibration& c) {
  // Start from the engine's internal-structure model, then add the
  // transaction's logical row traffic on top.
  WorkloadModel m = InsertMicroModel(
      engine, engine == EngineKind::kShoreMt ? sm::Stage::kFinal
                                             : sm::Stage::kBaseline,
      c);
  // Payment: ~8 row ops; New Order: ~40 (a dozen inserts + item/stock
  // reads and updates). One "record" models one row operation.
  m.records_per_txn = new_order ? 40 : 8;
  m.compute_ns = c.tpcc_row_compute;
  // Per-row path weights: PostgreSQL's full SQL executor keeps it 2-4x
  // below the storage-manager-API engines (Figure 5); DBMS "X" pays for
  // its SQL front end and socket clients (§5 footnote 7).
  if (engine == EngineKind::kPostgres) m.compute_ns = 5 * m.compute_ns / 2;
  if (engine == EngineKind::kDbmsX) m.compute_ns = 8 * m.compute_ns / 5;
  m.commit_io_ns = c.commit_flush_ns;

  // Hot rows: Payment updates its home WAREHOUSE row (distinct per
  // terminal when warehouses scale with clients — no logical contention);
  // New Order hits the shared STOCK/ITEM pool, which saturates around 16
  // clients in the paper.
  if (new_order) {
    m.hot_lock_count = 16;  // Hot stock rows (scaled-down ITEM table).
    for (int i = 0; i < 6; ++i) {
      m.hot_row_ops.push_back({-1, c.tpcc_row_lock_hold + 1000});
    }
  } else {
    m.hot_lock_count = warehouses;
    m.hot_row_ops.push_back({-1, c.tpcc_row_lock_hold});
  }
  return m;
}

}  // namespace shoremt::workload
