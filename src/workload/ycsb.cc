#include "workload/ycsb.h"

#include <algorithm>
#include <cstring>
#include <iterator>

namespace shoremt::workload {

namespace {

/// FNV-1a over the key's bytes: spreads the Zipf generator's hot low
/// ranks across the key space (YCSB's ScrambledZipfian), so "hot" does
/// not mean "physically adjacent in the B-tree".
uint64_t ScrambleKey(uint64_t v) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Publishes key `k` as committed: readers draw from [0, visible_count).
/// Monotonic max-CAS — inserts can commit out of claim order.
void PublishInsert(YcsbDatabase* db, uint64_t k) {
  uint64_t cur = db->visible_count.load(std::memory_order_relaxed);
  while (cur < k + 1 &&
         !db->visible_count.compare_exchange_weak(
             cur, k + 1, std::memory_order_release,
             std::memory_order_relaxed)) {
  }
}

}  // namespace

void FillYcsbPayload(uint64_t key, uint32_t field_size, uint64_t counter,
                     std::vector<uint8_t>* out) {
  out->resize(std::max<uint32_t>(field_size, 8));
  for (int i = 0; i < 8; ++i) {
    (*out)[i] = static_cast<uint8_t>(counter >> (i * 8));
  }
  // Key-seeded filler so every row's bytes are deterministic and distinct.
  Rng fill(key ^ 0x9e3779b97f4a7c15ULL);
  for (size_t i = 8; i < out->size(); ++i) {
    (*out)[i] = static_cast<uint8_t>(fill.Next());
  }
}

uint64_t ReadYcsbCounter(std::span<const uint8_t> payload) {
  if (payload.size() < 8) return 0;
  uint64_t c = 0;
  for (int i = 0; i < 8; ++i) {
    c |= static_cast<uint64_t>(payload[i]) << (i * 8);
  }
  return c;
}

Status LoadYcsb(sm::Session* session, const YcsbConfig& cfg,
                YcsbDatabase* db) {
  if (cfg.record_count == 0) {
    return Status::InvalidArgument("YCSB record_count must be > 0");
  }
  db->config = cfg;

  SHOREMT_RETURN_NOT_OK(session->Begin());
  SHOREMT_ASSIGN_OR_RETURN(db->usertable, session->CreateTable("usertable"));
  SHOREMT_RETURN_NOT_OK(session->Commit());

  // Batched load: each batch is one Apply (own transaction, one group-
  // commit flush acknowledges the whole batch).
  uint64_t batch = std::max<uint64_t>(1, cfg.load_batch);
  std::vector<std::vector<uint8_t>> payloads(batch);
  std::vector<sm::Op> ops;
  for (uint64_t base = 0; base < cfg.record_count; base += batch) {
    uint64_t n = std::min(batch, cfg.record_count - base);
    ops.clear();
    for (uint64_t i = 0; i < n; ++i) {
      FillYcsbPayload(base + i, cfg.field_size, /*counter=*/0, &payloads[i]);
      ops.push_back(sm::Op{sm::OpType::kInsert, base + i, payloads[i]});
    }
    SHOREMT_RETURN_NOT_OK(session->Apply(db->usertable, ops));
  }
  db->next_insert_key.store(cfg.record_count, std::memory_order_relaxed);
  db->visible_count.store(cfg.record_count, std::memory_order_relaxed);
  return Status::Ok();
}

YcsbWorker::YcsbWorker(YcsbDatabase* db, uint64_t seed)
    : db_(db),
      rng_(seed),
      zipf_(db->config.record_count, std::max(db->config.zipf_theta, 0.0),
            seed ^ 0x5ca1ab1eULL),
      // Read-latest offsets: a fixed moderate skew toward offset 0 (the
      // newest row), independent of the request distribution's theta.
      latest_(db->config.record_count, 0.9, seed ^ 0x1a7e57ULL) {}

uint64_t YcsbWorker::NextKey() {
  uint64_t visible = db_->visible_count.load(std::memory_order_acquire);
  if (db_->config.zipf_theta <= 0.0) return rng_.Uniform(visible);
  return ScrambleKey(zipf_.Next()) % visible;
}

uint64_t YcsbWorker::NextLatestKey() {
  uint64_t visible = db_->visible_count.load(std::memory_order_acquire);
  uint64_t off = latest_.Next() % visible;
  return visible - 1 - off;
}

bool RunYcsbTxn(sm::Session* session, YcsbWorker* worker, YcsbWorkload w,
                CommitMode mode) {
  YcsbDatabase* db = worker->db();
  const YcsbConfig& cfg = db->config;
  const YcsbMix mix = YcsbMixFor(w);
  Rng& rng = worker->rng();

  if (!session->Begin().ok()) return false;
  auto fail = [&] {
    (void)session->Abort();
    return false;
  };

  std::vector<uint8_t> payload;
  // Keys this transaction inserted; published to readers only when the
  // commit goes through (an aborted insert leaves an unpublished hole).
  uint64_t inserted[8];
  size_t inserted_n = 0;

  for (uint32_t i = 0; i < cfg.ops_per_txn; ++i) {
    double p = rng.NextDouble();
    if (p < mix.read) {
      // Point read. D draws read-latest; the rest draw the request
      // distribution. A key at the insert frontier can be a hole (its
      // insert aborted) — an empty read, not a failure.
      uint64_t key = w == YcsbWorkload::kD ? worker->NextLatestKey()
                                           : worker->NextKey();
      auto r = session->Read(db->usertable, key);
      if (!r.ok() && !r.status().IsNotFound()) return fail();
    } else if (p < mix.read + mix.update) {
      uint64_t key = worker->NextKey();
      FillYcsbPayload(key, cfg.field_size, /*counter=*/0, &payload);
      Status st = session->Update(db->usertable, key, payload);
      if (!st.ok() && !st.IsNotFound()) return fail();
    } else if (p < mix.read + mix.update + mix.insert) {
      uint64_t key =
          db->next_insert_key.fetch_add(1, std::memory_order_relaxed);
      FillYcsbPayload(key, cfg.field_size, /*counter=*/0, &payload);
      if (!session->Insert(db->usertable, key, payload).ok()) return fail();
      if (inserted_n < std::size(inserted)) inserted[inserted_n++] = key;
    } else if (p < mix.read + mix.update + mix.insert + mix.scan) {
      // Range scan: shared row locks over up to max_scan_len consecutive
      // existing rows, through the pull cursor.
      uint64_t start = worker->NextKey();
      uint32_t len = 1 + static_cast<uint32_t>(rng.Uniform(cfg.max_scan_len));
      sm::Cursor cur = session->OpenCursor(db->usertable);
      Status st = cur.Seek(start);
      if (!st.ok()) return fail();
      uint32_t rows = 0;
      while (cur.Valid() && ++rows < len) {
        st = cur.Next();
        if (!st.ok()) return fail();
      }
    } else {
      // Read-modify-write: read the row, bump its embedded counter,
      // write it back — one txn, so the increment is atomic under the
      // row's X lock.
      uint64_t key = worker->NextKey();
      auto r = session->Read(db->usertable, key);
      if (!r.ok()) {
        if (r.status().IsNotFound()) continue;
        return fail();
      }
      uint64_t c = ReadYcsbCounter(*r);
      FillYcsbPayload(key, cfg.field_size, c + 1, &payload);
      if (!session->Update(db->usertable, key, payload).ok()) return fail();
      if (session->counters() != nullptr) {
        session->counters()->Inc(obs::Metric::kRmws);
      }
    }
  }

  bool ok = mode == CommitMode::kAsync ? session->CommitAsync().ok()
                                       : session->Commit().ok();
  if (ok) {
    for (size_t i = 0; i < inserted_n; ++i) PublishInsert(db, inserted[i]);
  }
  return ok;
}

}  // namespace shoremt::workload
