#include "workload/tpcc.h"

#include <atomic>
#include <cstring>
#include <span>

namespace shoremt::workload {

namespace {

template <typename T>
std::span<const uint8_t> AsBytes(const T& row) {
  return {reinterpret_cast<const uint8_t*>(&row), sizeof(T)};
}

template <typename T>
Result<T> ReadRow(sm::StorageManager* sm, txn::Transaction* txn,
                  const sm::TableInfo& table, uint64_t key) {
  SHOREMT_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                           sm->Read(txn, table, key));
  if (bytes.size() != sizeof(T)) {
    return Status::Corruption("row size mismatch");
  }
  T row;
  std::memcpy(&row, bytes.data(), sizeof(T));
  return row;
}

std::atomic<uint64_t> g_history_seq{1};

}  // namespace

Result<TpccDatabase> LoadTpcc(sm::StorageManager* sm, const TpccConfig& cfg) {
  TpccDatabase db;
  db.config = cfg;

  auto* ddl = sm->Begin();
  SHOREMT_ASSIGN_OR_RETURN(db.warehouse, sm->CreateTable(ddl, "WAREHOUSE"));
  SHOREMT_ASSIGN_OR_RETURN(db.district, sm->CreateTable(ddl, "DISTRICT"));
  SHOREMT_ASSIGN_OR_RETURN(db.customer, sm->CreateTable(ddl, "CUSTOMER"));
  SHOREMT_ASSIGN_OR_RETURN(db.item, sm->CreateTable(ddl, "ITEM"));
  SHOREMT_ASSIGN_OR_RETURN(db.stock, sm->CreateTable(ddl, "STOCK"));
  SHOREMT_ASSIGN_OR_RETURN(db.orders, sm->CreateTable(ddl, "ORDERS"));
  SHOREMT_ASSIGN_OR_RETURN(db.order_line, sm->CreateTable(ddl, "ORDER_LINE"));
  SHOREMT_ASSIGN_OR_RETURN(db.new_order, sm->CreateTable(ddl, "NEW_ORDER"));
  SHOREMT_ASSIGN_OR_RETURN(db.history, sm->CreateTable(ddl, "HISTORY"));
  SHOREMT_RETURN_NOT_OK(sm->Commit(ddl));

  // Items are warehouse-independent.
  auto* load = sm->Begin();
  for (uint32_t i = 1; i <= cfg.items; ++i) {
    ItemRow row{1.0 + (i % 100) / 10.0, {}};
    std::snprintf(row.name, sizeof(row.name), "item-%u", i);
    SHOREMT_RETURN_NOT_OK(
        sm->Insert(load, db.item, ItemKey(i), AsBytes(row)).status());
    if (i % 500 == 0) {
      SHOREMT_RETURN_NOT_OK(sm->Commit(load));
      load = sm->Begin();
    }
  }
  SHOREMT_RETURN_NOT_OK(sm->Commit(load));

  for (uint32_t w = 1; w <= cfg.warehouses; ++w) {
    auto* txn = sm->Begin();
    WarehouseRow wr{0.0, 0.07, {}};
    std::snprintf(wr.name, sizeof(wr.name), "wh-%u", w);
    SHOREMT_RETURN_NOT_OK(
        sm->Insert(txn, db.warehouse, WarehouseKey(w), AsBytes(wr)).status());
    for (uint32_t d = 1; d <= cfg.districts_per_warehouse; ++d) {
      DistrictRow dr{0.0, 0.05, 1, {}};
      std::snprintf(dr.name, sizeof(dr.name), "d-%u-%u", w, d);
      SHOREMT_RETURN_NOT_OK(
          sm->Insert(txn, db.district, DistrictKey(w, d), AsBytes(dr))
              .status());
      for (uint32_t c = 1; c <= cfg.customers_per_district; ++c) {
        CustomerRow cr{-10.0, 10.0, 1, {}, {}};
        std::snprintf(cr.last, sizeof(cr.last), "cust%u", c);
        SHOREMT_RETURN_NOT_OK(
            sm->Insert(txn, db.customer, CustomerKey(w, d, c), AsBytes(cr))
                .status());
      }
    }
    SHOREMT_RETURN_NOT_OK(sm->Commit(txn));
    txn = sm->Begin();
    for (uint32_t i = 1; i <= cfg.items; ++i) {
      StockRow sr{50 + i % 50, 0, 0, 0};
      SHOREMT_RETURN_NOT_OK(
          sm->Insert(txn, db.stock, StockKey(w, i), AsBytes(sr)).status());
      if (i % 500 == 0) {
        SHOREMT_RETURN_NOT_OK(sm->Commit(txn));
        txn = sm->Begin();
      }
    }
    SHOREMT_RETURN_NOT_OK(sm->Commit(txn));
  }
  return db;
}

bool RunPayment(sm::StorageManager* sm, TpccDatabase* db, uint32_t home_w,
                Rng& rng) {
  const TpccConfig& cfg = db->config;
  uint32_t d = 1 + static_cast<uint32_t>(rng.Uniform(
                      cfg.districts_per_warehouse));
  uint32_t c = 1 + static_cast<uint32_t>(
                      rng.NonUniform(1023, 1, cfg.customers_per_district));
  double amount = 1.0 + rng.NextDouble() * 4999.0;

  auto* txn = sm->Begin();
  auto fail = [&] {
    (void)sm->Abort(txn);
    return false;
  };

  // Warehouse: read + bump YTD (the contended row, §3.2).
  auto wr = ReadRow<WarehouseRow>(sm, txn, db->warehouse, WarehouseKey(home_w));
  if (!wr.ok()) return fail();
  wr->ytd += amount;
  if (!sm->Update(txn, db->warehouse, WarehouseKey(home_w), AsBytes(*wr))
           .ok()) {
    return fail();
  }
  // District.
  auto dr = ReadRow<DistrictRow>(sm, txn, db->district, DistrictKey(home_w, d));
  if (!dr.ok()) return fail();
  dr->ytd += amount;
  if (!sm->Update(txn, db->district, DistrictKey(home_w, d), AsBytes(*dr))
           .ok()) {
    return fail();
  }
  // Customer balance.
  uint64_t ckey = CustomerKey(home_w, d, c);
  auto cr = ReadRow<CustomerRow>(sm, txn, db->customer, ckey);
  if (!cr.ok()) return fail();
  cr->balance -= amount;
  cr->ytd_payment += amount;
  cr->payment_cnt += 1;
  if (!sm->Update(txn, db->customer, ckey, AsBytes(*cr)).ok()) return fail();
  // History insert.
  HistoryRow hr{ckey, amount};
  uint64_t seq = g_history_seq.fetch_add(1, std::memory_order_relaxed);
  if (!sm->Insert(txn, db->history, HistoryKey(home_w, seq), AsBytes(hr))
           .ok()) {
    return fail();
  }
  return sm->Commit(txn).ok();
}

bool RunNewOrder(sm::StorageManager* sm, TpccDatabase* db, uint32_t home_w,
                 Rng& rng) {
  const TpccConfig& cfg = db->config;
  uint32_t d = 1 + static_cast<uint32_t>(rng.Uniform(
                      cfg.districts_per_warehouse));
  uint32_t c = 1 + static_cast<uint32_t>(
                      rng.NonUniform(1023, 1, cfg.customers_per_district));
  uint32_t ol_cnt = 5 + static_cast<uint32_t>(rng.Uniform(11));  // 5..15.

  auto* txn = sm->Begin();
  auto fail = [&] {
    (void)sm->Abort(txn);
    return false;
  };

  auto wr = ReadRow<WarehouseRow>(sm, txn, db->warehouse, WarehouseKey(home_w));
  if (!wr.ok()) return fail();

  // District: assign the order id (per-district serialization point).
  auto dr = ReadRow<DistrictRow>(sm, txn, db->district, DistrictKey(home_w, d));
  if (!dr.ok()) return fail();
  uint32_t o_id = dr->next_o_id;
  dr->next_o_id += 1;
  if (!sm->Update(txn, db->district, DistrictKey(home_w, d), AsBytes(*dr))
           .ok()) {
    return fail();
  }

  auto cr = ReadRow<CustomerRow>(sm, txn, db->customer,
                                 CustomerKey(home_w, d, c));
  if (!cr.ok()) return fail();

  // ORDER + NEW_ORDER rows.
  OrderRow orow{c, ol_cnt, 20260610};
  if (!sm->Insert(txn, db->orders, OrderKey(home_w, d, o_id), AsBytes(orow))
           .ok()) {
    return fail();
  }
  uint8_t no_marker = 1;
  if (!sm->Insert(txn, db->new_order, OrderKey(home_w, d, o_id),
                  {&no_marker, 1})
           .ok()) {
    return fail();
  }

  // Order lines: ITEM reads + STOCK updates (the shared hotspot that
  // causes the paper's dip around 16 clients, Figure 5 left).
  for (uint32_t l = 1; l <= ol_cnt; ++l) {
    uint32_t i_id = 1 + static_cast<uint32_t>(
                        rng.NonUniform(8191, 1, cfg.items));
    auto ir = ReadRow<ItemRow>(sm, txn, db->item, ItemKey(i_id));
    if (!ir.ok()) return fail();
    uint64_t skey = StockKey(home_w, i_id);
    auto sr = ReadRow<StockRow>(sm, txn, db->stock, skey);
    if (!sr.ok()) return fail();
    uint32_t qty = 1 + static_cast<uint32_t>(rng.Uniform(10));
    sr->quantity = sr->quantity > qty + 10 ? sr->quantity - qty
                                           : sr->quantity + 91 - qty;
    sr->ytd += qty;
    sr->order_cnt += 1;
    if (!sm->Update(txn, db->stock, skey, AsBytes(*sr)).ok()) return fail();
    OrderLineRow ol{i_id, home_w, qty, ir->price * qty};
    if (!sm->Insert(txn, db->order_line,
                    OrderLineKey(home_w, d, o_id, l), AsBytes(ol))
             .ok()) {
      return fail();
    }
  }
  return sm->Commit(txn).ok();
}

}  // namespace shoremt::workload
