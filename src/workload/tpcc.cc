#include "workload/tpcc.h"

#include <atomic>
#include <cstring>
#include <span>

namespace shoremt::workload {

namespace {

template <typename T>
std::span<const uint8_t> AsBytes(const T& row) {
  return {reinterpret_cast<const uint8_t*>(&row), sizeof(T)};
}

std::atomic<uint64_t> g_history_seq{1};

/// Transaction epilogue: blocking commit or async submission (early lock
/// release; the terminal acknowledges durability later via WaitAll).
bool Finish(sm::Session* session, CommitMode mode) {
  if (mode == CommitMode::kAsync) return session->CommitAsync().ok();
  return session->Commit().ok();
}

}  // namespace

Result<TpccDatabase> LoadTpcc(sm::Session* session, const TpccConfig& cfg) {
  TpccDatabase db;
  db.config = cfg;

  SHOREMT_RETURN_NOT_OK(session->Begin());
  SHOREMT_ASSIGN_OR_RETURN(db.warehouse, session->CreateTable("WAREHOUSE"));
  SHOREMT_ASSIGN_OR_RETURN(db.district, session->CreateTable("DISTRICT"));
  SHOREMT_ASSIGN_OR_RETURN(db.customer, session->CreateTable("CUSTOMER"));
  SHOREMT_ASSIGN_OR_RETURN(db.item, session->CreateTable("ITEM"));
  SHOREMT_ASSIGN_OR_RETURN(db.stock, session->CreateTable("STOCK"));
  SHOREMT_ASSIGN_OR_RETURN(db.orders, session->CreateTable("ORDERS"));
  SHOREMT_ASSIGN_OR_RETURN(db.order_line, session->CreateTable("ORDER_LINE"));
  SHOREMT_ASSIGN_OR_RETURN(db.new_order, session->CreateTable("NEW_ORDER"));
  SHOREMT_ASSIGN_OR_RETURN(db.history, session->CreateTable("HISTORY"));
  SHOREMT_RETURN_NOT_OK(session->Commit());

  // Items are warehouse-independent.
  SHOREMT_RETURN_NOT_OK(session->Begin());
  for (uint32_t i = 1; i <= cfg.items; ++i) {
    ItemRow row{1.0 + (i % 100) / 10.0, {}};
    std::snprintf(row.name, sizeof(row.name), "item-%u", i);
    SHOREMT_RETURN_NOT_OK(
        session->Insert(db.item, ItemKey(i), AsBytes(row)).status());
    if (i % 500 == 0) {
      SHOREMT_RETURN_NOT_OK(session->Commit());
      SHOREMT_RETURN_NOT_OK(session->Begin());
    }
  }
  SHOREMT_RETURN_NOT_OK(session->Commit());

  for (uint32_t w = 1; w <= cfg.warehouses; ++w) {
    SHOREMT_RETURN_NOT_OK(session->Begin());
    WarehouseRow wr{0.0, 0.07, {}};
    std::snprintf(wr.name, sizeof(wr.name), "wh-%u", w);
    SHOREMT_RETURN_NOT_OK(
        session->Insert(db.warehouse, WarehouseKey(w), AsBytes(wr)).status());
    for (uint32_t d = 1; d <= cfg.districts_per_warehouse; ++d) {
      DistrictRow dr{0.0, 0.05, 1, {}};
      std::snprintf(dr.name, sizeof(dr.name), "d-%u-%u", w, d);
      SHOREMT_RETURN_NOT_OK(
          session->Insert(db.district, DistrictKey(w, d), AsBytes(dr))
              .status());
      for (uint32_t c = 1; c <= cfg.customers_per_district; ++c) {
        CustomerRow cr{-10.0, 10.0, 1, {}, {}};
        std::snprintf(cr.last, sizeof(cr.last), "cust%u", c);
        SHOREMT_RETURN_NOT_OK(
            session->Insert(db.customer, CustomerKey(w, d, c), AsBytes(cr))
                .status());
      }
    }
    SHOREMT_RETURN_NOT_OK(session->Commit());
    SHOREMT_RETURN_NOT_OK(session->Begin());
    for (uint32_t i = 1; i <= cfg.items; ++i) {
      StockRow sr{50 + i % 50, 0, 0, 0};
      SHOREMT_RETURN_NOT_OK(
          session->Insert(db.stock, StockKey(w, i), AsBytes(sr)).status());
      if (i % 500 == 0) {
        SHOREMT_RETURN_NOT_OK(session->Commit());
        SHOREMT_RETURN_NOT_OK(session->Begin());
      }
    }
    SHOREMT_RETURN_NOT_OK(session->Commit());
  }
  return db;
}

bool RunPayment(sm::Session* session, TpccDatabase* db, uint32_t home_w,
                CommitMode mode) {
  const TpccConfig& cfg = db->config;
  Rng& rng = session->rng();
  uint32_t d = 1 + static_cast<uint32_t>(rng.Uniform(
                      cfg.districts_per_warehouse));
  uint32_t c = 1 + static_cast<uint32_t>(
                      rng.NonUniform(1023, 1, cfg.customers_per_district));
  double amount = 1.0 + rng.NextDouble() * 4999.0;

  if (!session->Begin().ok()) return false;
  auto fail = [&] {
    (void)session->Abort();
    return false;
  };

  // Warehouse: read + bump YTD (the contended row, §3.2).
  auto wr = ReadTpccRow<WarehouseRow>(session, db->warehouse, WarehouseKey(home_w));
  if (!wr.ok()) return fail();
  wr->ytd += amount;
  if (!session->Update(db->warehouse, WarehouseKey(home_w), AsBytes(*wr))
           .ok()) {
    return fail();
  }
  // District.
  auto dr = ReadTpccRow<DistrictRow>(session, db->district,
                                 DistrictKey(home_w, d));
  if (!dr.ok()) return fail();
  dr->ytd += amount;
  if (!session->Update(db->district, DistrictKey(home_w, d), AsBytes(*dr))
           .ok()) {
    return fail();
  }
  // Customer balance.
  uint64_t ckey = CustomerKey(home_w, d, c);
  auto cr = ReadTpccRow<CustomerRow>(session, db->customer, ckey);
  if (!cr.ok()) return fail();
  cr->balance -= amount;
  cr->ytd_payment += amount;
  cr->payment_cnt += 1;
  if (!session->Update(db->customer, ckey, AsBytes(*cr)).ok()) return fail();
  // History insert.
  HistoryRow hr{ckey, amount};
  uint64_t seq = g_history_seq.fetch_add(1, std::memory_order_relaxed);
  if (!session->Insert(db->history, HistoryKey(home_w, seq), AsBytes(hr))
           .ok()) {
    return fail();
  }
  return Finish(session, mode);
}

bool RunNewOrder(sm::Session* session, TpccDatabase* db, uint32_t home_w,
                 CommitMode mode) {
  const TpccConfig& cfg = db->config;
  Rng& rng = session->rng();
  uint32_t d = 1 + static_cast<uint32_t>(rng.Uniform(
                      cfg.districts_per_warehouse));
  uint32_t c = 1 + static_cast<uint32_t>(
                      rng.NonUniform(1023, 1, cfg.customers_per_district));
  uint32_t ol_cnt = 5 + static_cast<uint32_t>(rng.Uniform(11));  // 5..15.

  if (!session->Begin().ok()) return false;
  auto fail = [&] {
    (void)session->Abort();
    return false;
  };

  auto wr = ReadTpccRow<WarehouseRow>(session, db->warehouse, WarehouseKey(home_w));
  if (!wr.ok()) return fail();

  // District: assign the order id (per-district serialization point).
  auto dr = ReadTpccRow<DistrictRow>(session, db->district,
                                 DistrictKey(home_w, d));
  if (!dr.ok()) return fail();
  uint32_t o_id = dr->next_o_id;
  dr->next_o_id += 1;
  if (!session->Update(db->district, DistrictKey(home_w, d), AsBytes(*dr))
           .ok()) {
    return fail();
  }

  auto cr = ReadTpccRow<CustomerRow>(session, db->customer,
                                 CustomerKey(home_w, d, c));
  if (!cr.ok()) return fail();

  // ORDER + NEW_ORDER rows.
  OrderRow orow{c, ol_cnt, 20260610};
  if (!session->Insert(db->orders, OrderKey(home_w, d, o_id), AsBytes(orow))
           .ok()) {
    return fail();
  }
  uint8_t no_marker = 1;
  if (!session->Insert(db->new_order, OrderKey(home_w, d, o_id),
                       {&no_marker, 1})
           .ok()) {
    return fail();
  }

  // Order lines: ITEM reads + STOCK updates (the shared hotspot that
  // causes the paper's dip around 16 clients, Figure 5 left).
  for (uint32_t l = 1; l <= ol_cnt; ++l) {
    uint32_t i_id = 1 + static_cast<uint32_t>(
                        rng.NonUniform(8191, 1, cfg.items));
    auto ir = ReadTpccRow<ItemRow>(session, db->item, ItemKey(i_id));
    if (!ir.ok()) return fail();
    uint64_t skey = StockKey(home_w, i_id);
    auto sr = ReadTpccRow<StockRow>(session, db->stock, skey);
    if (!sr.ok()) return fail();
    uint32_t qty = 1 + static_cast<uint32_t>(rng.Uniform(10));
    sr->quantity = sr->quantity > qty + 10 ? sr->quantity - qty
                                           : sr->quantity + 91 - qty;
    sr->ytd += qty;
    sr->order_cnt += 1;
    if (!session->Update(db->stock, skey, AsBytes(*sr)).ok()) return fail();
    OrderLineRow ol{i_id, home_w, qty, ir->price * qty};
    if (!session->Insert(db->order_line,
                         OrderLineKey(home_w, d, o_id, l), AsBytes(ol))
             .ok()) {
      return fail();
    }
  }
  return Finish(session, mode);
}

}  // namespace shoremt::workload
