#ifndef SHOREMT_WORKLOAD_TPCC_H_
#define SHOREMT_WORKLOAD_TPCC_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "sm/session.h"
#include "sm/storage_manager.h"
#include "workload/driver.h"

namespace shoremt::workload {

/// Scaled-down TPC-C (§3.2): the Payment and New Order transactions that
/// together make up 88% of the TPC-C mix. Row formats are fixed-size
/// structs; composite primary keys are packed into 64-bit index keys.
/// Scale factors are reduced from spec size so tests and benches run in
/// seconds; the contention *structure* (hot WAREHOUSE rows, shared STOCK/
/// ITEM) is what matters for the paper's figures.
struct TpccConfig {
  uint32_t warehouses = 4;
  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 120;
  uint32_t items = 1000;
  /// Fraction of item accesses drawn from a hot zipfian subset.
  double stock_zipf_theta = 0.6;
};

/// Key packing: one 64-bit key per composite TPC-C primary key.
inline uint64_t WarehouseKey(uint32_t w) { return w; }
inline uint64_t DistrictKey(uint32_t w, uint32_t d) {
  return static_cast<uint64_t>(w) * 100 + d;
}
inline uint64_t CustomerKey(uint32_t w, uint32_t d, uint32_t c) {
  return (static_cast<uint64_t>(w) * 100 + d) * 100000 + c;
}
inline uint64_t ItemKey(uint32_t i) { return i; }
inline uint64_t StockKey(uint32_t w, uint32_t i) {
  return static_cast<uint64_t>(w) * 1000000 + i;
}
inline uint64_t OrderKey(uint32_t w, uint32_t d, uint32_t o) {
  return (static_cast<uint64_t>(w) * 100 + d) * 10000000 + o;
}
inline uint64_t OrderLineKey(uint32_t w, uint32_t d, uint32_t o, uint32_t l) {
  return OrderKey(w, d, o) * 16 + l;
}
inline uint64_t HistoryKey(uint32_t w, uint64_t seq) {
  return static_cast<uint64_t>(w) * (1ULL << 40) + seq;
}

/// Row payloads (fixed-size PODs, memcpy-serialized).
struct WarehouseRow {
  double ytd;
  double tax;
  char name[16];
};
struct DistrictRow {
  double ytd;
  double tax;
  uint32_t next_o_id;
  char name[16];
};
struct CustomerRow {
  double balance;
  double ytd_payment;
  uint32_t payment_cnt;
  char last[16];
  char data[64];
};
struct ItemRow {
  double price;
  char name[24];
};
struct StockRow {
  uint32_t quantity;
  uint32_t ytd;
  uint32_t order_cnt;
  uint32_t remote_cnt;
};
struct OrderRow {
  uint32_t c_id;
  uint32_t ol_cnt;
  uint64_t entry_ts;
};
struct OrderLineRow {
  uint32_t i_id;
  uint32_t supply_w;
  uint32_t quantity;
  double amount;
};
struct HistoryRow {
  uint64_t c_key;
  double amount;
};

/// Reads the fixed-size row struct `T` for `key` through `session`,
/// validating the stored size — the one row-decode helper shared by the
/// transactions, tests and examples.
template <typename T>
Result<T> ReadTpccRow(sm::Session* session, const sm::TableInfo& table,
                      uint64_t key) {
  SHOREMT_ASSIGN_OR_RETURN(std::span<const uint8_t> bytes,
                           session->Read(table, key));
  if (bytes.size() != sizeof(T)) {
    return Status::Corruption("row size mismatch");
  }
  T row;
  std::memcpy(&row, bytes.data(), sizeof(T));
  return row;
}

/// The loaded database: table handles + config.
struct TpccDatabase {
  TpccConfig config;
  sm::TableInfo warehouse;
  sm::TableInfo district;
  sm::TableInfo customer;
  sm::TableInfo item;
  sm::TableInfo stock;
  sm::TableInfo orders;
  sm::TableInfo order_line;
  sm::TableInfo new_order;
  sm::TableInfo history;
};

/// Creates and populates all nine tables through `session` (which must
/// have no open transaction; the loader batches its own commits).
Result<TpccDatabase> LoadTpcc(sm::Session* session, const TpccConfig& cfg);

/// How a TPC-C transaction ends: kSync commits and blocks until durable
/// (through the group-commit pipeline); kAsync commits via CommitAsync —
/// locks drop immediately and durability is acknowledged later by
/// Session::WaitAll (the driver's drain hook).
enum class CommitMode : uint8_t { kSync, kAsync };

/// One Payment transaction (§3.2): updates warehouse + district YTD and
/// the customer's balance, inserts a history row. `home_w` selects the
/// terminal's warehouse; randomness comes from the session's private RNG.
/// Returns false on abort (deadlock victim).
bool RunPayment(sm::Session* session, TpccDatabase* db, uint32_t home_w,
                CommitMode mode = CommitMode::kSync);

/// One New Order transaction (§3.2): reads warehouse/district/customer,
/// assigns the next order id, inserts ORDER + NEW-ORDER rows, and for
/// 5–15 items reads ITEM and updates STOCK, inserting an ORDER-LINE each.
bool RunNewOrder(sm::Session* session, TpccDatabase* db, uint32_t home_w,
                 CommitMode mode = CommitMode::kSync);

}  // namespace shoremt::workload

#endif  // SHOREMT_WORKLOAD_TPCC_H_
