#include "workload/driver.h"

#include <thread>

#include "common/clock.h"

namespace shoremt::workload {

DriverResult RunDriver(int threads, uint64_t warmup_ms, uint64_t duration_ms,
                       const std::function<bool(int, Rng&)>& txn_fn,
                       const std::function<void(int)>& drain_fn) {
  std::atomic<int> phase{0};  // 0 = warmup, 1 = measuring, 2 = stop.
  std::vector<uint64_t> txns(threads, 0);
  std::vector<uint64_t> aborts(threads, 0);
  std::vector<Histogram> latencies(threads);

  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(0x5eed + 1299721u * (t + 1));
      while (phase.load(std::memory_order_acquire) < 2) {
        uint64_t start = NowNanos();
        bool committed = txn_fn(t, rng);
        if (phase.load(std::memory_order_acquire) == 1) {
          if (committed) {
            ++txns[t];
            latencies[t].Add(NowNanos() - start);
          } else {
            ++aborts[t];
          }
        }
      }
      if (drain_fn) drain_fn(t);
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(warmup_ms));
  uint64_t t0 = NowNanos();
  phase.store(1, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
  phase.store(2, std::memory_order_release);
  uint64_t t1 = NowNanos();
  for (auto& w : workers) w.join();

  DriverResult r;
  r.seconds = static_cast<double>(t1 - t0) / 1e9;
  for (int t = 0; t < threads; ++t) {
    r.txns += txns[t];
    r.aborts += aborts[t];
    r.latency.Merge(latencies[t]);
  }
  r.tps = static_cast<double>(r.txns) / r.seconds;
  r.tps_per_thread = r.tps / threads;
  return r;
}

}  // namespace shoremt::workload
