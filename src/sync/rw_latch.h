#ifndef SHOREMT_SYNC_RW_LATCH_H_
#define SHOREMT_SYNC_RW_LATCH_H_

#include <atomic>
#include <cstdint>

#include "sync/sync_stats.h"

namespace shoremt::sync {

/// Access mode for a latch acquisition.
enum class LatchMode : uint8_t {
  kShared,     ///< Multiple readers may hold the latch together.
  kExclusive,  ///< Single writer; excludes all other holders.
};

/// Reader-writer latch used to protect page contents (§2.2.2). Writer-
/// preferring: a waiting writer blocks new readers so writers cannot
/// starve. Note that even shared acquisitions serialize on the latch word's
/// cache line — the "hotspots must be eliminated, even when the hot data is
/// read-mostly" effect the paper calls out.
class RwLatch {
 public:
  RwLatch() = default;
  explicit RwLatch(SyncStats* stats) : stats_(stats) {}
  RwLatch(const RwLatch&) = delete;
  RwLatch& operator=(const RwLatch&) = delete;

  /// Blocks until the latch is held in `mode`.
  void Acquire(LatchMode mode);
  /// Single attempt; returns false if the latch could not be taken now.
  bool TryAcquire(LatchMode mode);
  void Release(LatchMode mode);

  void AcquireShared() { Acquire(LatchMode::kShared); }
  void AcquireExclusive() { Acquire(LatchMode::kExclusive); }
  void ReleaseShared() { Release(LatchMode::kShared); }
  void ReleaseExclusive() { Release(LatchMode::kExclusive); }

  /// Attempts to convert a shared hold into exclusive; succeeds only when
  /// the caller is the sole reader. On failure the shared hold remains.
  bool TryUpgrade();
  /// Converts an exclusive hold into shared without releasing.
  void Downgrade();

  bool IsHeldExclusive() const {
    return (word_.load(std::memory_order_relaxed) & kWriterBit) != 0;
  }
  uint32_t ReaderCount() const {
    return word_.load(std::memory_order_relaxed) & kReaderMask;
  }

 private:
  static constexpr uint32_t kWriterBit = 0x80000000u;
  static constexpr uint32_t kWriterWaitBit = 0x40000000u;
  static constexpr uint32_t kReaderMask = 0x3fffffffu;

  std::atomic<uint32_t> word_{0};
  SyncStats* stats_ = nullptr;
};

/// RAII guard holding an RwLatch in the given mode.
class LatchGuard {
 public:
  LatchGuard(RwLatch& latch, LatchMode mode) : latch_(&latch), mode_(mode) {
    latch_->Acquire(mode_);
  }
  ~LatchGuard() {
    if (latch_ != nullptr) latch_->Release(mode_);
  }

  LatchGuard(const LatchGuard&) = delete;
  LatchGuard& operator=(const LatchGuard&) = delete;

  /// Releases early (destructor becomes a no-op).
  void Release() {
    latch_->Release(mode_);
    latch_ = nullptr;
  }

 private:
  RwLatch* latch_;
  LatchMode mode_;
};

}  // namespace shoremt::sync

#endif  // SHOREMT_SYNC_RW_LATCH_H_
