#ifndef SHOREMT_SYNC_TICKET_LOCK_H_
#define SHOREMT_SYNC_TICKET_LOCK_H_

#include <atomic>
#include <cstdint>

#include "sync/backoff.h"

namespace shoremt::sync {

/// FIFO ticket spinlock: one fetch-add to take a ticket, spin until the
/// grant counter reaches it. Fair like MCS but all waiters share the grant
/// cache line, so handoff cost grows with waiter count — between TATAS and
/// MCS in scalability. Satisfies the C++ Lockable concept.
class TicketLock {
 public:
  TicketLock() = default;
  TicketLock(const TicketLock&) = delete;
  TicketLock& operator=(const TicketLock&) = delete;

  void lock() {
    uint32_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
    Backoff backoff;
    while (grant_.load(std::memory_order_acquire) != ticket) backoff.Pause();
  }

  bool try_lock() {
    uint32_t g = grant_.load(std::memory_order_acquire);
    uint32_t expected = g;
    return next_.compare_exchange_strong(expected, g + 1,
                                         std::memory_order_acq_rel);
  }

  void unlock() { grant_.fetch_add(1, std::memory_order_release); }

 private:
  std::atomic<uint32_t> next_{0};
  std::atomic<uint32_t> grant_{0};
};

}  // namespace shoremt::sync

#endif  // SHOREMT_SYNC_TICKET_LOCK_H_
