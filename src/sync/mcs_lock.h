#ifndef SHOREMT_SYNC_MCS_LOCK_H_
#define SHOREMT_SYNC_MCS_LOCK_H_

#include <atomic>

#include "common/clock.h"
#include "sync/backoff.h"
#include "sync/sync_stats.h"

namespace shoremt::sync {

/// MCS queuing spinlock (Mellor-Crummey & Scott). Waiters enqueue a local
/// node and spin on their *own* cache line; release hands the lock to the
/// successor with a single store. FIFO-fair, O(1) handoff regardless of the
/// number of waiters — the scalable primitive Shore-MT adopts for contended
/// critical sections (§6.1).
class McsLock {
 public:
  /// Queue node. Typically stack-allocated in the acquiring scope; must
  /// stay alive until unlock() returns.
  struct QNode {
    std::atomic<QNode*> next{nullptr};
    std::atomic<bool> ready{false};
  };

  McsLock() = default;
  explicit McsLock(SyncStats* stats) : stats_(stats) {}
  McsLock(const McsLock&) = delete;
  McsLock& operator=(const McsLock&) = delete;

  void Acquire(QNode* node) {
    node->next.store(nullptr, std::memory_order_relaxed);
    node->ready.store(false, std::memory_order_relaxed);
    QNode* prev = tail_.exchange(node, std::memory_order_acq_rel);
    if (prev == nullptr) {
      if (stats_ != nullptr) stats_->RecordAcquire(false, 0);
      return;  // Lock was free.
    }
    uint64_t start = stats_ != nullptr ? NowNanos() : 0;
    prev->next.store(node, std::memory_order_release);
    Backoff backoff;
    while (!node->ready.load(std::memory_order_acquire)) backoff.Pause();
    if (stats_ != nullptr) stats_->RecordAcquire(true, NowNanos() - start);
  }

  /// Acquires only if the lock is free (no queue join on failure).
  bool TryAcquire(QNode* node) {
    node->next.store(nullptr, std::memory_order_relaxed);
    node->ready.store(false, std::memory_order_relaxed);
    QNode* expected = nullptr;
    bool ok = tail_.compare_exchange_strong(expected, node,
                                            std::memory_order_acq_rel);
    if (ok && stats_ != nullptr) stats_->RecordAcquire(false, 0);
    return ok;
  }

  void Release(QNode* node) {
    QNode* succ = node->next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      QNode* expected = node;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel)) {
        return;  // No waiter.
      }
      // A waiter is linking itself in; wait for the pointer to appear.
      Backoff backoff;
      while ((succ = node->next.load(std::memory_order_acquire)) == nullptr) {
        backoff.Pause();
      }
    }
    succ->ready.store(true, std::memory_order_release);
  }

  bool IsLocked() const {
    return tail_.load(std::memory_order_relaxed) != nullptr;
  }

 private:
  std::atomic<QNode*> tail_{nullptr};
  SyncStats* stats_ = nullptr;
};

/// RAII guard for McsLock; owns the queue node on the stack.
class McsGuard {
 public:
  explicit McsGuard(McsLock& lock) : lock_(lock) { lock_.Acquire(&node_); }
  ~McsGuard() { lock_.Release(&node_); }

  McsGuard(const McsGuard&) = delete;
  McsGuard& operator=(const McsGuard&) = delete;

 private:
  McsLock& lock_;
  McsLock::QNode node_;
};

}  // namespace shoremt::sync

#endif  // SHOREMT_SYNC_MCS_LOCK_H_
