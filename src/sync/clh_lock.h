#ifndef SHOREMT_SYNC_CLH_LOCK_H_
#define SHOREMT_SYNC_CLH_LOCK_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sync/backoff.h"

namespace shoremt::sync {

/// CLH queue lock (Craig; Magnussen, Landin & Hagersten — the paper's
/// references [9] and [23]). FIFO with O(1) handoff like MCS, but waiters
/// spin on their *predecessor's* node, which removes the successor link at
/// the cost of nodes migrating between threads: each release donates the
/// holder's node to its successor and adopts the predecessor's node for
/// the next acquisition.
///
/// Because donated nodes outlive the acquiring scope, nodes are heap
/// objects owned by the lock (freed in the destructor), and each thread's
/// current node is tracked in a thread-local map. Satisfies the C++
/// Lockable concept.
class ClhLock {
 public:
  ClhLock() {
    // Initialized in the body: NewNode() uses nodes_mutex_ / all_nodes_,
    // which are declared (and therefore constructed) after the pointers.
    stub_ = NewNode();
    stub_->locked.store(false, std::memory_order_relaxed);
    tail_.store(stub_, std::memory_order_relaxed);
  }
  ~ClhLock() {
    for (QNode* n : all_nodes_) delete n;
  }

  ClhLock(const ClhLock&) = delete;
  ClhLock& operator=(const ClhLock&) = delete;

  void lock() {
    ThreadSlot& slot = MySlot();
    slot.node->locked.store(true, std::memory_order_relaxed);
    QNode* prev = tail_.exchange(slot.node, std::memory_order_acq_rel);
    Backoff backoff;
    while (prev->locked.load(std::memory_order_acquire)) backoff.Pause();
    slot.prev = prev;
  }

  bool try_lock() {
    ThreadSlot& slot = MySlot();
    QNode* expected = tail_.load(std::memory_order_acquire);
    if (expected->locked.load(std::memory_order_acquire)) return false;
    slot.node->locked.store(true, std::memory_order_relaxed);
    if (!tail_.compare_exchange_strong(expected, slot.node,
                                       std::memory_order_acq_rel)) {
      return false;
    }
    // `expected` is the unlocked predecessor we verified above; but it may
    // have been re-locked between the check and the swap — spin briefly.
    Backoff backoff;
    while (expected->locked.load(std::memory_order_acquire)) backoff.Pause();
    slot.prev = expected;
    return true;
  }

  void unlock() {
    ThreadSlot& slot = MySlot();
    QNode* mine = slot.node;
    slot.node = slot.prev;  // Adopt the predecessor's node.
    slot.prev = nullptr;
    mine->locked.store(false, std::memory_order_release);
  }

  bool IsLocked() const {
    return tail_.load(std::memory_order_acquire)
        ->locked.load(std::memory_order_acquire);
  }

 private:
  struct QNode {
    std::atomic<bool> locked{false};
  };
  struct ThreadSlot {
    QNode* node = nullptr;
    QNode* prev = nullptr;
  };

  QNode* NewNode() {
    QNode* n = new QNode();
    std::lock_guard<std::mutex> guard(nodes_mutex_);
    all_nodes_.push_back(n);
    return n;
  }

  /// Per-(thread, lock-instance) slot; nodes live until the lock is
  /// destroyed. Keyed by a unique instance id, not the address, so a new
  /// lock reusing a freed address cannot inherit stale node pointers.
  ThreadSlot& MySlot() {
    thread_local std::unordered_map<uint64_t, ThreadSlot> slots;
    ThreadSlot& slot = slots[instance_id_];
    if (slot.node == nullptr) slot.node = NewNode();
    return slot;
  }

  static uint64_t NextInstanceId() {
    static std::atomic<uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  const uint64_t instance_id_ = NextInstanceId();
  std::mutex nodes_mutex_;
  std::vector<QNode*> all_nodes_;
  QNode* stub_ = nullptr;
  std::atomic<QNode*> tail_{nullptr};
};

}  // namespace shoremt::sync

#endif  // SHOREMT_SYNC_CLH_LOCK_H_
