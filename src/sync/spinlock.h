#ifndef SHOREMT_SYNC_SPINLOCK_H_
#define SHOREMT_SYNC_SPINLOCK_H_

#include <atomic>

#include "common/clock.h"
#include "sync/backoff.h"
#include "sync/sync_stats.h"

namespace shoremt::sync {

/// Plain test-and-set spinlock. Every spin iteration performs a store-intent
/// atomic exchange, so waiters keep invalidating the lock cache line — the
/// primitive the paper blames for BerkeleyDB's collapse under contention.
/// Kept in the tree as a baseline; satisfies the C++ Lockable concept so it
/// works with std::lock_guard.
class TatasLock {
 public:
  TatasLock() = default;
  explicit TatasLock(SyncStats* stats) : stats_(stats) {}
  TatasLock(const TatasLock&) = delete;
  TatasLock& operator=(const TatasLock&) = delete;

  void lock() {
    if (try_lock()) {
      if (stats_ != nullptr) stats_->RecordAcquire(false, 0);
      return;
    }
    uint64_t start = stats_ != nullptr ? NowNanos() : 0;
    Backoff backoff;
    while (!try_lock()) backoff.Pause();
    if (stats_ != nullptr) stats_->RecordAcquire(true, NowNanos() - start);
  }

  bool try_lock() {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

  bool IsLocked() const { return flag_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
  SyncStats* stats_ = nullptr;
};

/// Test-and-test-and-set spinlock: waiters spin on a read-only load and only
/// attempt the exchange when the lock looks free. Cheap when uncontended
/// (§6.1's first optimization attempt: +90% single-thread throughput) but
/// still storms the cache line at each release under high contention.
class TtasLock {
 public:
  TtasLock() = default;
  explicit TtasLock(SyncStats* stats) : stats_(stats) {}
  TtasLock(const TtasLock&) = delete;
  TtasLock& operator=(const TtasLock&) = delete;

  void lock() {
    if (try_lock()) {
      if (stats_ != nullptr) stats_->RecordAcquire(false, 0);
      return;
    }
    uint64_t start = stats_ != nullptr ? NowNanos() : 0;
    Backoff backoff;
    for (;;) {
      while (flag_.load(std::memory_order_relaxed)) backoff.Pause();
      if (try_lock()) break;
    }
    if (stats_ != nullptr) stats_->RecordAcquire(true, NowNanos() - start);
  }

  bool try_lock() {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

  bool IsLocked() const { return flag_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
  SyncStats* stats_ = nullptr;
};

}  // namespace shoremt::sync

#endif  // SHOREMT_SYNC_SPINLOCK_H_
