#include "sync/hybrid_mutex.h"

#include "common/clock.h"
#include "sync/backoff.h"

namespace shoremt::sync {

void HybridMutex::lock() {
  if (try_lock()) {
    if (stats_ != nullptr) stats_->RecordAcquire(false, 0);
    return;
  }
  uint64_t start = stats_ != nullptr ? NowNanos() : 0;
  // Bounded spin: worth it when critical sections are short.
  for (int i = 0; i < kSpinBudget; ++i) {
    CpuRelax();
    if (try_lock()) {
      if (stats_ != nullptr) stats_->RecordAcquire(true, NowNanos() - start);
      return;
    }
  }
  // Slow path: mark the lock as having sleepers and park.
  std::unique_lock<std::mutex> guard(os_mutex_);
  for (;;) {
    int prev = state_.exchange(2, std::memory_order_acquire);
    if (prev == 0) break;  // We now hold it (in state 2).
    cv_.wait(guard, [this] {
      return state_.load(std::memory_order_relaxed) == 0;
    });
  }
  if (stats_ != nullptr) stats_->RecordAcquire(true, NowNanos() - start);
}

bool HybridMutex::try_lock() {
  int expected = 0;
  return state_.compare_exchange_strong(expected, 1,
                                        std::memory_order_acquire);
}

void HybridMutex::unlock() {
  int prev = state_.exchange(0, std::memory_order_release);
  if (prev == 2) {
    // Someone may be parked; wake one under the OS mutex so the wakeup
    // cannot race with the waiter re-checking state.
    std::lock_guard<std::mutex> guard(os_mutex_);
    cv_.notify_one();
  }
}

}  // namespace shoremt::sync
