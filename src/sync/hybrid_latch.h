#ifndef SHOREMT_SYNC_HYBRID_LATCH_H_
#define SHOREMT_SYNC_HYBRID_LATCH_H_

#include <atomic>
#include <cstdint>

#include "sync/backoff.h"
#include "sync/rw_latch.h"  // LatchMode

namespace shoremt::sync {

/// Annotates functions that deliberately read shared memory without
/// synchronization under the optimistic-validation protocol: the reader
/// copies bytes that a concurrent exclusive holder may be rewriting, then
/// discards the copy unless HybridLatch::Validate proves no writer
/// overlapped. ThreadSanitizer cannot see the validation step, so the
/// racy-by-design loads are compiled uninstrumented. Such functions must
/// (a) only LOAD from the shared image — never store, (b) tolerate
/// arbitrary torn values (clamp every index before use), and (c) avoid
/// intercepted libcalls (memcpy/memmove) on the shared bytes.
#if defined(__clang__) || defined(__GNUC__)
#define SHOREMT_NO_SANITIZE_THREAD __attribute__((no_sanitize_thread))
#else
#define SHOREMT_NO_SANITIZE_THREAD
#endif

/// Version-stamped reader-writer latch supporting a third, latch-free
/// guard state (the ScaleStore/LeanStore "hybrid latch" pattern named in
/// ROADMAP). One atomic word packs everything:
///
///   | exclusive:1 | shared count:15 | version:48 |
///
/// Guard states:
///   optimistic — StampOptimistic() records the version WITHOUT writing
///                the word; the reader runs against live data and calls
///                Validate(stamp) afterwards. True = no exclusive holder
///                overlapped, every read was consistent. False = the data
///                may be torn; the reader must discard and restart.
///   shared     — classic reader lock (CAS increments the count). Shared
///                holders exclude writers but do NOT invalidate optimistic
///                stamps: readers don't modify, so versions only move on
///                exclusive release / downgrade.
///   exclusive  — single writer. Releasing (or downgrading) bumps the
///                version, which is what makes stale optimistic stamps
///                fail validation.
///
/// The optimistic probe never writes the latch word, so the common-case
/// read path of a hot structure touches no shared cache line in modified
/// state — the Shore-MT §7 lesson applied to the page-latch tier itself.
class HybridLatch {
 public:
  static constexpr uint64_t kInvalidStamp = ~0ull;

  HybridLatch() = default;
  HybridLatch(const HybridLatch&) = delete;
  HybridLatch& operator=(const HybridLatch&) = delete;

  // --- optimistic guard ----------------------------------------------------

  /// Records the current version, or kInvalidStamp while an exclusive
  /// holder is active (the caller should back off / restart — data is
  /// being rewritten right now).
  uint64_t StampOptimistic() const {
    uint64_t w = word_.load(std::memory_order_acquire);
    if ((w & kExclusiveBit) != 0) return kInvalidStamp;
    return w & kVersionMask;
  }

  /// True iff no exclusive holder is active and the version still equals
  /// `stamp` — i.e. every load the caller performed since StampOptimistic
  /// observed a consistent image. The acquire fence orders those data
  /// loads before the re-read of the word (LoadLoad), completing the
  /// seqlock protocol against the release store in ReleaseExclusive.
  bool Validate(uint64_t stamp) const {
    if (stamp == kInvalidStamp) return false;
    std::atomic_thread_fence(std::memory_order_acquire);
    uint64_t w = word_.load(std::memory_order_acquire);
    return (w & (kExclusiveBit | kVersionMask)) == stamp;
  }

  /// Current version (diagnostics/tests).
  uint64_t version() const {
    return word_.load(std::memory_order_acquire) & kVersionMask;
  }

  // --- blocking guards (RwLatch-compatible surface) ------------------------

  void Acquire(LatchMode mode) {
    Backoff backoff;
    while (!TryAcquire(mode)) backoff.Pause();
  }

  bool TryAcquire(LatchMode mode) {
    uint64_t w = word_.load(std::memory_order_relaxed);
    if (mode == LatchMode::kExclusive) {
      if ((w & (kExclusiveBit | kSharedMask)) != 0) return false;
      return word_.compare_exchange_weak(w, w | kExclusiveBit,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
    }
    if ((w & kExclusiveBit) != 0) return false;
    return word_.compare_exchange_weak(w, w + kSharedUnit,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed);
  }

  void Release(LatchMode mode) {
    if (mode == LatchMode::kExclusive) {
      ReleaseExclusive();
    } else {
      ReleaseShared();
    }
  }

  void AcquireShared() { Acquire(LatchMode::kShared); }
  void AcquireExclusive() { Acquire(LatchMode::kExclusive); }
  void ReleaseShared() {
    word_.fetch_sub(kSharedUnit, std::memory_order_release);
  }

  /// Bumps the version and clears the exclusive bit in one release store
  /// (no CAS needed: while exclusive is held the word cannot change —
  /// shared CASes fail on the set bit and optimistic probes never write).
  void ReleaseExclusive() {
    uint64_t w = word_.load(std::memory_order_relaxed);
    word_.store((w + 1) & kVersionMask, std::memory_order_release);
  }

  /// Converts a shared hold into exclusive iff the caller is the sole
  /// reader; on failure the shared hold remains.
  bool TryUpgrade() {
    uint64_t w = word_.load(std::memory_order_relaxed);
    if ((w & kSharedMask) != kSharedUnit || (w & kExclusiveBit) != 0) {
      return false;
    }
    return word_.compare_exchange_strong(w, (w - kSharedUnit) | kExclusiveBit,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  /// Converts an exclusive hold into shared. Bumps the version: the holder
  /// may have modified the data, so stamps taken before the exclusive
  /// acquisition must fail validation.
  void Downgrade() {
    uint64_t w = word_.load(std::memory_order_relaxed);
    word_.store(((w + 1) & kVersionMask) | kSharedUnit,
                std::memory_order_release);
  }

  bool IsHeldExclusive() const {
    return (word_.load(std::memory_order_relaxed) & kExclusiveBit) != 0;
  }
  uint32_t ReaderCount() const {
    return static_cast<uint32_t>(
        (word_.load(std::memory_order_relaxed) & kSharedMask) >> kSharedShift);
  }

 private:
  static constexpr int kSharedShift = 48;
  static constexpr uint64_t kExclusiveBit = 1ull << 63;
  static constexpr uint64_t kSharedUnit = 1ull << kSharedShift;
  static constexpr uint64_t kSharedMask = ((1ull << 15) - 1) << kSharedShift;
  static constexpr uint64_t kVersionMask = kSharedUnit - 1;

  std::atomic<uint64_t> word_{0};
};

}  // namespace shoremt::sync

#endif  // SHOREMT_SYNC_HYBRID_LATCH_H_
