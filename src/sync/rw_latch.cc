#include "sync/rw_latch.h"

#include "common/clock.h"
#include "sync/backoff.h"

namespace shoremt::sync {

void RwLatch::Acquire(LatchMode mode) {
  if (TryAcquire(mode)) {
    if (stats_ != nullptr) stats_->RecordAcquire(false, 0);
    return;
  }
  uint64_t start = stats_ != nullptr ? NowNanos() : 0;
  Backoff backoff;
  if (mode == LatchMode::kExclusive) {
    // Announce the waiting writer so new readers hold off.
    word_.fetch_or(kWriterWaitBit, std::memory_order_relaxed);
    for (;;) {
      uint32_t cur = word_.load(std::memory_order_relaxed);
      if ((cur & (kWriterBit | kReaderMask)) == 0) {
        if (word_.compare_exchange_weak(cur, kWriterBit,
                                        std::memory_order_acquire)) {
          break;
        }
      } else {
        backoff.Pause();
        // Keep the wait bit asserted (another writer may have cleared it
        // when it acquired and released).
        word_.fetch_or(kWriterWaitBit, std::memory_order_relaxed);
      }
    }
  } else {
    while (!TryAcquire(LatchMode::kShared)) backoff.Pause();
  }
  if (stats_ != nullptr) stats_->RecordAcquire(true, NowNanos() - start);
}

bool RwLatch::TryAcquire(LatchMode mode) {
  uint32_t cur = word_.load(std::memory_order_relaxed);
  if (mode == LatchMode::kShared) {
    // Readers defer to an active or waiting writer.
    if ((cur & (kWriterBit | kWriterWaitBit)) != 0) return false;
    return word_.compare_exchange_strong(cur, cur + 1,
                                         std::memory_order_acquire);
  }
  if ((cur & (kWriterBit | kReaderMask)) != 0) return false;
  // Clears any wait bit: the acquiring writer is no longer waiting.
  return word_.compare_exchange_strong(cur, kWriterBit,
                                       std::memory_order_acquire);
}

void RwLatch::Release(LatchMode mode) {
  if (mode == LatchMode::kShared) {
    word_.fetch_sub(1, std::memory_order_release);
  } else {
    // Preserve the writer-wait bit for queued writers.
    word_.fetch_and(~kWriterBit, std::memory_order_release);
  }
}

bool RwLatch::TryUpgrade() {
  uint32_t expected = 1;  // Sole reader, no writer, no waiter.
  return word_.compare_exchange_strong(expected, kWriterBit,
                                       std::memory_order_acq_rel);
}

void RwLatch::Downgrade() {
  // From writer (possibly with wait bit) to one reader; keep the wait bit
  // cleared — the downgrading holder outranks queued writers by design.
  word_.store(1, std::memory_order_release);
}

}  // namespace shoremt::sync
