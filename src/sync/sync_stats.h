#ifndef SHOREMT_SYNC_SYNC_STATS_H_
#define SHOREMT_SYNC_SYNC_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace shoremt::sync {

/// Contention counters for one synchronization primitive instance. This is
/// the reproduction's stand-in for the paper's `collect` profiler: benches
/// read these to find which critical sections dominate, and the simulator
/// calibration uses the hold-time means as service times.
///
/// All counters are relaxed atomics: they tolerate small races in exchange
/// for not perturbing the critical sections they observe.
class SyncStats {
 public:
  explicit SyncStats(std::string name) : name_(std::move(name)) {}

  void RecordAcquire(bool contended, uint64_t wait_ns) {
    acquires_.fetch_add(1, std::memory_order_relaxed);
    if (contended) {
      contended_.fetch_add(1, std::memory_order_relaxed);
      wait_ns_.fetch_add(wait_ns, std::memory_order_relaxed);
    }
  }
  void RecordHold(uint64_t hold_ns) {
    hold_ns_.fetch_add(hold_ns, std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }
  uint64_t acquires() const { return acquires_.load(std::memory_order_relaxed); }
  uint64_t contended() const {
    return contended_.load(std::memory_order_relaxed);
  }
  uint64_t total_wait_ns() const {
    return wait_ns_.load(std::memory_order_relaxed);
  }
  uint64_t total_hold_ns() const {
    return hold_ns_.load(std::memory_order_relaxed);
  }

  /// Mean critical-section length, nanoseconds (0 if never held).
  double MeanHoldNs() const {
    uint64_t n = acquires();
    return n == 0 ? 0.0 : static_cast<double>(total_hold_ns()) /
                              static_cast<double>(n);
  }
  /// Fraction of acquisitions that found the primitive held.
  double ContentionRate() const {
    uint64_t n = acquires();
    return n == 0 ? 0.0 : static_cast<double>(contended()) /
                              static_cast<double>(n);
  }

  void Reset() {
    acquires_.store(0, std::memory_order_relaxed);
    contended_.store(0, std::memory_order_relaxed);
    wait_ns_.store(0, std::memory_order_relaxed);
    hold_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::atomic<uint64_t> acquires_{0};
  std::atomic<uint64_t> contended_{0};
  std::atomic<uint64_t> wait_ns_{0};
  std::atomic<uint64_t> hold_ns_{0};
};

/// Process-wide registry so benches can dump every instrumented critical
/// section. Registration is optional and happens at component construction.
class SyncStatsRegistry {
 public:
  static SyncStatsRegistry& Instance();

  /// Registers `stats`; the caller retains ownership and must keep it alive
  /// for the registry's lifetime (components own their stats objects).
  void Register(SyncStats* stats);
  void Unregister(SyncStats* stats);

  /// Snapshot of all registered stats pointers.
  std::vector<SyncStats*> All() const;

  /// Resets every registered counter (used between bench phases).
  void ResetAll();

  /// Formats a profiler-style report sorted by total hold time.
  std::string Report() const;

 private:
  mutable std::atomic<bool> lock_{false};
  std::vector<SyncStats*> entries_;

  void Lock() const;
  void Unlock() const;
};

}  // namespace shoremt::sync

#endif  // SHOREMT_SYNC_SYNC_STATS_H_
