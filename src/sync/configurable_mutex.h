#ifndef SHOREMT_SYNC_CONFIGURABLE_MUTEX_H_
#define SHOREMT_SYNC_CONFIGURABLE_MUTEX_H_

#include <mutex>

#include "sync/mcs_lock.h"
#include "sync/spinlock.h"
#include "sync/sync_stats.h"

namespace shoremt::sync {

/// Which mutex implementation a component should use. The Figure 6
/// experiment sweeps exactly this knob on the free space manager: pthread
/// (blocking) → T&T&S → MCS.
enum class MutexKind : uint8_t {
  kPthread,  ///< OS blocking mutex (std::mutex).
  kTtas,     ///< Test-and-test-and-set spinlock.
  kMcs,      ///< MCS queue lock.
};

/// Mutex whose implementation is chosen at construction. Acquire through
/// ConfigurableMutex::Guard (MCS needs a per-acquisition queue node, so a
/// plain lock()/unlock() interface cannot cover all kinds).
class ConfigurableMutex {
 public:
  explicit ConfigurableMutex(MutexKind kind, SyncStats* stats = nullptr)
      : kind_(kind), ttas_(stats), mcs_(stats), stats_(stats) {}

  ConfigurableMutex(const ConfigurableMutex&) = delete;
  ConfigurableMutex& operator=(const ConfigurableMutex&) = delete;

  MutexKind kind() const { return kind_; }

  /// RAII guard; holds the mutex for its lifetime.
  class Guard {
   public:
    explicit Guard(ConfigurableMutex& m) : m_(m) {
      switch (m_.kind_) {
        case MutexKind::kPthread:
          m_.os_.lock();
          if (m_.stats_ != nullptr) m_.stats_->RecordAcquire(false, 0);
          break;
        case MutexKind::kTtas:
          m_.ttas_.lock();
          break;
        case MutexKind::kMcs:
          m_.mcs_.Acquire(&node_);
          break;
      }
    }
    ~Guard() {
      switch (m_.kind_) {
        case MutexKind::kPthread:
          m_.os_.unlock();
          break;
        case MutexKind::kTtas:
          m_.ttas_.unlock();
          break;
        case MutexKind::kMcs:
          m_.mcs_.Release(&node_);
          break;
      }
    }

    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    ConfigurableMutex& m_;
    McsLock::QNode node_;
  };

 private:
  friend class Guard;

  MutexKind kind_;
  std::mutex os_;
  TtasLock ttas_;
  McsLock mcs_;
  SyncStats* stats_;
};

}  // namespace shoremt::sync

#endif  // SHOREMT_SYNC_CONFIGURABLE_MUTEX_H_
