#ifndef SHOREMT_SYNC_BOUNDED_EXECUTOR_H_
#define SHOREMT_SYNC_BOUNDED_EXECUTOR_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace shoremt::sync {

/// A small fixed-size worker pool with a BOUNDED task queue: Submit blocks
/// the producer while the queue is full, so a slow consumer exerts
/// backpressure instead of growing an unbounded backlog. Built for the
/// flush pipeline's durability-callback dispatch — the group-commit daemon
/// hands each batch of due OnDurable closures to this pool and returns to
/// flushing, so a slow user callback can no longer stall commit
/// acknowledgement — but it is a general primitive.
///
/// Ordering: with one worker thread (the pipeline's default) tasks run in
/// exact submission order; with more, tasks start in submission order but
/// may complete out of order.
class BoundedExecutor {
 public:
  BoundedExecutor(size_t threads, size_t queue_capacity);
  /// Drains every queued task, then stops and joins the workers.
  ~BoundedExecutor();

  BoundedExecutor(const BoundedExecutor&) = delete;
  BoundedExecutor& operator=(const BoundedExecutor&) = delete;

  /// Enqueues `task`; blocks while the queue is at capacity. Tasks
  /// submitted after shutdown began run inline on the caller (nothing is
  /// silently dropped).
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and every worker is idle. Tasks
  /// submitted concurrently with Drain may or may not be covered.
  void Drain();

  size_t queue_capacity() const { return capacity_; }

 private:
  void WorkerLoop();

  const size_t capacity_;
  std::mutex mutex_;
  std::condition_variable work_cv_;   ///< Workers sleep here.
  std::condition_variable space_cv_;  ///< Full-queue producers sleep here.
  std::condition_variable idle_cv_;   ///< Drain sleeps here.
  std::deque<std::function<void()>> queue_;
  size_t running_ = 0;  ///< Tasks currently executing on workers.
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace shoremt::sync

#endif  // SHOREMT_SYNC_BOUNDED_EXECUTOR_H_
