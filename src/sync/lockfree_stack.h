#ifndef SHOREMT_SYNC_LOCKFREE_STACK_H_
#define SHOREMT_SYNC_LOCKFREE_STACK_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

namespace shoremt::sync {

/// Lock-free Treiber stack over a fixed pool of slots, addressed by index.
/// The head packs {32-bit ABA tag, 32-bit slot index} into one 64-bit word
/// so push/pop are single compare-and-swap operations — the structure the
/// paper uses for the lock manager's request pool (§7.5: "we reimplemented
/// it as a lock-free stack where threads can push or pop requests using a
/// single compare-and-swap operation").
///
/// The stack stores indices only; the caller owns the actual objects (e.g.
/// a vector of lock-request structs indexed the same way).
class LockFreeIndexStack {
 public:
  static constexpr uint32_t kNull = 0xffffffffu;

  /// Creates a stack able to hold indices in [0, capacity). Initially empty.
  explicit LockFreeIndexStack(uint32_t capacity)
      : next_(capacity), head_(Pack(0, kNull)) {
    for (auto& n : next_) n.store(kNull, std::memory_order_relaxed);
  }

  LockFreeIndexStack(const LockFreeIndexStack&) = delete;
  LockFreeIndexStack& operator=(const LockFreeIndexStack&) = delete;

  /// Pushes slot `index`; the slot must not currently be on the stack.
  void Push(uint32_t index) {
    uint64_t head = head_.load(std::memory_order_relaxed);
    for (;;) {
      next_[index].store(IndexOf(head), std::memory_order_relaxed);
      uint64_t desired = Pack(TagOf(head) + 1, index);
      if (head_.compare_exchange_weak(head, desired,
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

  /// Pops the most recently pushed index, or nullopt when empty.
  std::optional<uint32_t> Pop() {
    uint64_t head = head_.load(std::memory_order_acquire);
    for (;;) {
      uint32_t index = IndexOf(head);
      if (index == kNull) return std::nullopt;
      uint32_t next = next_[index].load(std::memory_order_relaxed);
      uint64_t desired = Pack(TagOf(head) + 1, next);
      if (head_.compare_exchange_weak(head, desired,
                                      std::memory_order_acquire,
                                      std::memory_order_acquire)) {
        return index;
      }
    }
  }

  bool Empty() const {
    return IndexOf(head_.load(std::memory_order_acquire)) == kNull;
  }

 private:
  static uint64_t Pack(uint32_t tag, uint32_t index) {
    return (static_cast<uint64_t>(tag) << 32) | index;
  }
  static uint32_t TagOf(uint64_t word) {
    return static_cast<uint32_t>(word >> 32);
  }
  static uint32_t IndexOf(uint64_t word) {
    return static_cast<uint32_t>(word);
  }

  std::vector<std::atomic<uint32_t>> next_;
  std::atomic<uint64_t> head_;
};

}  // namespace shoremt::sync

#endif  // SHOREMT_SYNC_LOCKFREE_STACK_H_
