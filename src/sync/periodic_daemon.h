#ifndef SHOREMT_SYNC_PERIODIC_DAEMON_H_
#define SHOREMT_SYNC_PERIODIC_DAEMON_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

namespace shoremt::sync {

/// The cv-driven background-service scaffold shared by the page cleaner
/// and the checkpoint daemon: one thread runs `pass` on every interval
/// tick and on every Wake() kick, sleeps on a condition variable in
/// between (never a busy-wait), and tears down with the stop-under-lock →
/// notify → join sequence exactly once, here. `min_gap` (optional)
/// rate-limits kick storms: after a pass, kicks are absorbed until the
/// gap has elapsed — for services whose pass cannot make progress twice
/// in quick succession (a checkpoint cannot advance the low-water mark
/// until the cleaner has moved it, and each one appends its own record).
///
/// The flush pipeline keeps its bespoke loop: its daemon multiplexes
/// submission batching, error parking, callback dispatch and a final
/// drain — a different shape, not a periodic pass.
class PeriodicDaemon {
 public:
  PeriodicDaemon() = default;
  ~PeriodicDaemon() { Stop(); }

  PeriodicDaemon(const PeriodicDaemon&) = delete;
  PeriodicDaemon& operator=(const PeriodicDaemon&) = delete;

  /// Starts the thread. Call at most once; `pass` runs on the daemon
  /// thread and must not call back into Start/Stop.
  void Start(std::chrono::microseconds interval,
             std::function<void()> pass,
             std::chrono::microseconds min_gap = {}) {
    pass_ = std::move(pass);
    interval_ = interval;
    min_gap_ = min_gap;
    thread_ = std::thread([this] { Loop(); });
  }

  /// Wakes the daemon for an immediate pass (no-op if not started —
  /// safe for hooks wired before/after the daemon's lifetime).
  void Wake() {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      kick_ = true;
    }
    cv_.notify_one();
  }

  /// Stops and joins; idempotent, safe when never started.
  void Stop() {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  bool running() const { return thread_.joinable(); }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lk(mutex_);
    auto last = std::chrono::steady_clock::now() - interval_;
    while (!stop_) {
      cv_.wait_for(lk, interval_, [&] { return stop_ || kick_; });
      if (stop_) break;
      if (min_gap_.count() > 0) {
        auto now = std::chrono::steady_clock::now();
        if (now - last < min_gap_) {
          // Absorb kicks until the gap elapses (stop still interrupts).
          cv_.wait_for(lk, min_gap_ - (now - last), [&] { return stop_; });
          if (stop_) break;
        }
      }
      kick_ = false;
      lk.unlock();
      pass_();
      lk.lock();
      last = std::chrono::steady_clock::now();
    }
  }

  std::function<void()> pass_;
  std::chrono::microseconds interval_{0};
  std::chrono::microseconds min_gap_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
  bool kick_ = false;  ///< Guarded by mutex_.
  bool stop_ = false;  ///< Guarded by mutex_.
  std::thread thread_;
};

}  // namespace shoremt::sync

#endif  // SHOREMT_SYNC_PERIODIC_DAEMON_H_
