#include "sync/bounded_executor.h"

#include <algorithm>
#include <utility>

namespace shoremt::sync {

BoundedExecutor::BoundedExecutor(size_t threads, size_t queue_capacity)
    : capacity_(std::max<size_t>(1, queue_capacity)) {
  size_t n = std::max<size_t>(1, threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

BoundedExecutor::~BoundedExecutor() {
  Drain();
  {
    std::lock_guard<std::mutex> guard(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void BoundedExecutor::Submit(std::function<void()> task) {
  if (!task) return;
  {
    std::unique_lock<std::mutex> lk(mutex_);
    space_cv_.wait(lk, [&] { return stop_ || queue_.size() < capacity_; });
    if (!stop_) {
      queue_.push_back(std::move(task));
      lk.unlock();
      work_cv_.notify_one();
      return;
    }
  }
  // Shutting down: run inline rather than drop (durability callbacks must
  // fire exactly once, never zero times).
  task();
}

void BoundedExecutor::Drain() {
  std::unique_lock<std::mutex> lk(mutex_);
  idle_cv_.wait(lk, [&] { return queue_.empty() && running_ == 0; });
}

void BoundedExecutor::WorkerLoop() {
  std::unique_lock<std::mutex> lk(mutex_);
  while (true) {
    work_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) break;  // stop_ with an empty queue.
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++running_;
    lk.unlock();
    space_cv_.notify_one();
    task();
    lk.lock();
    --running_;
    if (queue_.empty() && running_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace shoremt::sync
