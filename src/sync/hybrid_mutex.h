#ifndef SHOREMT_SYNC_HYBRID_MUTEX_H_
#define SHOREMT_SYNC_HYBRID_MUTEX_H_

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "sync/sync_stats.h"

namespace shoremt::sync {

/// Spin-then-block mutex: a test-and-set fast path that falls back to an OS
/// mutex + condition variable only under contention. This is the §7.2
/// optimization ("we replaced several key pthread mutex instances with
/// test-and-set spinlocks that acquire a pthread mutex and cond var only
/// under contention") — uncontended cost is one atomic exchange instead of
/// a syscall-prone pthread lock. Satisfies the C++ Lockable concept.
class HybridMutex {
 public:
  HybridMutex() = default;
  explicit HybridMutex(SyncStats* stats) : stats_(stats) {}
  HybridMutex(const HybridMutex&) = delete;
  HybridMutex& operator=(const HybridMutex&) = delete;

  void lock();
  bool try_lock();
  void unlock();

 private:
  static constexpr int kSpinBudget = 64;
  // 0 = free, 1 = held, 2 = held with (possible) sleepers.
  std::atomic<int> state_{0};
  std::mutex os_mutex_;
  std::condition_variable cv_;
  SyncStats* stats_ = nullptr;
};

}  // namespace shoremt::sync

#endif  // SHOREMT_SYNC_HYBRID_MUTEX_H_
