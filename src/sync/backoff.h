#ifndef SHOREMT_SYNC_BACKOFF_H_
#define SHOREMT_SYNC_BACKOFF_H_

#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace shoremt::sync {

/// One CPU relax hint (PAUSE on x86, YIELD elsewhere when available).
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// Exponential backoff for spin loops: spins with PAUSE, doubling the spin
/// budget each round, then falls back to yielding the OS thread. This keeps
/// single-core test machines live (a pure spin would starve the holder).
class Backoff {
 public:
  void Pause() {
    if (spins_ < kMaxSpins) {
      for (int i = 0; i < spins_; ++i) CpuRelax();
      spins_ *= 2;
    } else {
      std::this_thread::yield();
    }
  }

  void Reset() { spins_ = 1; }

 private:
  static constexpr int kMaxSpins = 1024;
  int spins_ = 1;
};

}  // namespace shoremt::sync

#endif  // SHOREMT_SYNC_BACKOFF_H_
