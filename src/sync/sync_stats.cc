#include "sync/sync_stats.h"

#include <algorithm>
#include <cstdio>

namespace shoremt::sync {

SyncStatsRegistry& SyncStatsRegistry::Instance() {
  static SyncStatsRegistry* instance = new SyncStatsRegistry();
  return *instance;
}

void SyncStatsRegistry::Lock() const {
  bool expected = false;
  while (!lock_.compare_exchange_weak(expected, true,
                                      std::memory_order_acquire)) {
    expected = false;
  }
}

void SyncStatsRegistry::Unlock() const {
  lock_.store(false, std::memory_order_release);
}

void SyncStatsRegistry::Register(SyncStats* stats) {
  Lock();
  entries_.push_back(stats);
  Unlock();
}

void SyncStatsRegistry::Unregister(SyncStats* stats) {
  Lock();
  entries_.erase(std::remove(entries_.begin(), entries_.end(), stats),
                 entries_.end());
  Unlock();
}

std::vector<SyncStats*> SyncStatsRegistry::All() const {
  Lock();
  std::vector<SyncStats*> out = entries_;
  Unlock();
  return out;
}

void SyncStatsRegistry::ResetAll() {
  for (SyncStats* s : All()) s->Reset();
}

std::string SyncStatsRegistry::Report() const {
  std::vector<SyncStats*> all = All();
  std::sort(all.begin(), all.end(), [](const SyncStats* a, const SyncStats* b) {
    return a->total_hold_ns() > b->total_hold_ns();
  });
  std::string out =
      "critical section            acquires   contended  mean-hold(ns)  "
      "contention\n";
  char line[160];
  for (const SyncStats* s : all) {
    if (s->acquires() == 0) continue;
    std::snprintf(line, sizeof(line), "%-28s %9llu  %10llu  %13.0f  %9.1f%%\n",
                  s->name().c_str(),
                  static_cast<unsigned long long>(s->acquires()),
                  static_cast<unsigned long long>(s->contended()),
                  s->MeanHoldNs(), 100.0 * s->ContentionRate());
    out += line;
  }
  return out;
}

}  // namespace shoremt::sync
