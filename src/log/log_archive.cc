#include "log/log_archive.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/crc32c.h"

namespace shoremt::log {

Result<LogArchive> LogArchive::Open(const std::string& dir) {
  LogArchive archive;
  archive.dir_ = dir;
  std::string manifest = dir + "/MANIFEST";
  FILE* f = std::fopen(manifest.c_str(), "r");
  if (f == nullptr) return archive;  // no archive yet — empty, not an error
  char line[4096];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (line[0] == '\n' || line[0] == '\0') continue;
    unsigned long long base, length, capacity;
    unsigned long crc;
    char file[1024];
    ArchivedSegment seg;
    if (std::sscanf(line, "v2 %llu %llu %llu %lu %1023s", &base, &length,
                    &capacity, &crc, file) == 5) {
      seg.crc = static_cast<uint32_t>(crc);
      seg.has_crc = true;
    } else if (std::sscanf(line, "v1 %llu %llu %llu %1023s", &base, &length,
                           &capacity, file) == 4) {
      seg.has_crc = false;
    } else {
      std::fclose(f);
      return Status::Corruption("malformed archive MANIFEST line: " +
                                std::string(line));
    }
    seg.base = base;
    seg.length = length;
    seg.capacity = capacity;
    seg.file = file;
    archive.segments_.push_back(std::move(seg));
  }
  std::fclose(f);
  std::sort(archive.segments_.begin(), archive.segments_.end(),
            [](const ArchivedSegment& a, const ArchivedSegment& b) {
              return a.base < b.base;
            });
  for (size_t i = 1; i < archive.segments_.size(); ++i) {
    const auto& prev = archive.segments_[i - 1];
    if (archive.segments_[i].base != prev.base + prev.length) {
      return Status::Corruption("archive MANIFEST has a gap at offset " +
                                std::to_string(prev.base + prev.length));
    }
  }
  return archive;
}

const ArchivedSegment* LogArchive::SegmentAt(uint64_t offset) const {
  // First segment with base > offset, then step back.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), offset,
      [](uint64_t off, const ArchivedSegment& s) { return off < s.base; });
  if (it == segments_.begin()) return nullptr;
  --it;
  if (offset >= it->base + it->length) return nullptr;
  return &*it;
}

Status LogArchive::Read(uint64_t offset, size_t len,
                        std::vector<uint8_t>* out) const {
  out->clear();
  out->reserve(len);
  uint64_t pos = offset;
  std::vector<uint8_t> whole;  // Scratch for CRC-verified segments.
  while (out->size() < len) {
    const ArchivedSegment* seg = SegmentAt(pos);
    if (seg == nullptr) {
      return Status::IOError("archive does not cover log offset " +
                             std::to_string(pos));
    }
    uint64_t in_seg = pos - seg->base;
    size_t want = std::min<uint64_t>(len - out->size(), seg->length - in_seg);
    std::string path = dir_ + "/" + seg->file;
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      return Status::IOError("cannot open archived segment " + path);
    }
    bool ok;
    size_t old = out->size();
    if (seg->has_crc) {
      // Verify the WHOLE file against the manifest CRC before serving any
      // byte of it: archives are cold restore/repair sources, so the full
      // read is cheap insurance against rot in the untouched remainder.
      whole.resize(seg->length);
      ok = std::fread(whole.data(), 1, seg->length, f) == seg->length;
      std::fclose(f);
      if (!ok) {
        return Status::IOError("short read from archived segment " + path);
      }
      uint32_t computed = Crc32c(whole.data(), whole.size());
      if (computed != seg->crc) {
        return Status::Corruption(
            "archived segment " + seg->file + " CRC mismatch (stored " +
            std::to_string(seg->crc) + ", computed " +
            std::to_string(computed) + ")");
      }
      out->insert(out->end(), whole.begin() + in_seg,
                  whole.begin() + in_seg + want);
    } else {
      out->resize(old + want);
      ok = std::fseek(f, static_cast<long>(in_seg), SEEK_SET) == 0 &&
           std::fread(out->data() + old, 1, want, f) == want;
      std::fclose(f);
      if (!ok) {
        return Status::IOError("short read from archived segment " + path);
      }
    }
    pos += want;
  }
  return Status::Ok();
}

}  // namespace shoremt::log
