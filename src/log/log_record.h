#ifndef SHOREMT_LOG_LOG_RECORD_H_
#define SHOREMT_LOG_LOG_RECORD_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace shoremt::log {

/// Write-ahead log record kinds. Page-level physical records carry before/
/// after images for idempotent redo (guarded by page LSN) and logical undo.
enum class LogRecordType : uint8_t {
  kNoop = 0,
  kPageFormat,   ///< Page formatted/initialized for a store.
  kPageInsert,   ///< Record inserted: after = payload.
  kPageUpdate,   ///< Record updated: before/after = old/new payload.
  kPageDelete,   ///< Record deleted: before = old payload.
  kAllocPage,    ///< Free-space map: page allocated to store.
  kCreateStore,  ///< Store directory: store created.
  kCommit,       ///< Transaction committed (forces a flush).
  kAbort,        ///< Transaction rollback completed.
  kClr,          ///< Compensation record: an undo step was applied.
  kCheckpoint,   ///< Fuzzy checkpoint: payload = CheckpointBody.
  // B+Tree physiological records (§ARIES-style: page-oriented redo,
  // logical undo within the page).
  kBtreeInsert,      ///< after = packed {key,value} entry added to a node.
  kBtreeDelete,      ///< before = packed {key,value} entry removed.
  kBtreeSetContent,  ///< after = full node content (splits; redo-only,
                     ///< structure changes are never undone).
  kCatalog,          ///< after = serialized catalog entry (table created).
};

/// Size of the fixed serialized header:
///   u32 total_len | u8 type | u8 page_type | u16 slot
///   u64 txn | u64 prev_lsn | u64 undo_next | u64 page
///   u32 store | u32 before_len | u32 after_len
/// No valid record is smaller, which makes it the lower bound readers use
/// to validate a length prefix before trusting it.
inline constexpr size_t kLogRecordHeaderSize =
    4 + 1 + 1 + 2 + 8 + 8 + 8 + 8 + 4 + 4 + 4;

/// Trailing u32 CRC32C over the record's first total_len - 4 bytes
/// (header + payloads, length prefix included), inside total_len. The
/// length prefix says where a record ends; the CRC says whether what is
/// there is the record that was appended — together they distinguish a
/// torn tail from silent media corruption.
inline constexpr size_t kLogRecordCrcSize = 4;

/// In-memory form of a WAL record.
struct LogRecord {
  LogRecordType type = LogRecordType::kNoop;
  TxnId txn = kInvalidTxnId;
  Lsn prev_lsn;       ///< Previous record of the same transaction (undo chain).
  Lsn undo_next;      ///< CLR only: next record to undo.
  PageNum page = kInvalidPageNum;
  StoreId store = kInvalidStoreId;
  uint16_t slot = 0;
  uint8_t page_type = 0;  ///< kPageFormat only: page::PageType value.
  std::vector<uint8_t> before;
  std::vector<uint8_t> after;

  /// Set when read back from the log.
  Lsn lsn;

  /// Serialized size in bytes.
  size_t SerializedSize() const;
};

/// Serializes `rec` to `out` (resized to fit). Format is length-prefixed so
/// the log can be scanned forward.
void SerializeLogRecord(const LogRecord& rec, std::vector<uint8_t>* out);

/// Parses one record starting at `data`. On success fills `rec` (except
/// lsn) and sets `consumed` to the record's total length.
Status DeserializeLogRecord(std::span<const uint8_t> data, LogRecord* rec,
                            size_t* consumed);

/// One active transaction captured by a fuzzy checkpoint.
struct CheckpointTxn {
  TxnId id = kInvalidTxnId;
  Lsn last_lsn;   ///< Undo-chain tail at snapshot time (restart undo cursor).
  Lsn first_lsn;  ///< Begin LSN: the log append horizon when the
                  ///< transaction started — no record of it can sit below
                  ///< this, so it floors the log-recycling horizon.
};

/// Payload of a kCheckpoint record. Besides the classic redo low-water
/// mark and active-transaction table, it carries a catalog + space-map
/// snapshot: once segments below the horizon are recycled, the metadata
/// records that built those maps are gone, so analysis bootstraps from
/// the snapshot and replays only post-snapshot metadata records (all
/// apply hooks are idempotent — the snapshot is fuzzy).
struct CheckpointBody {
  /// Redo scan start: min(dirty-page-table min rec_lsn, oldest active
  /// transaction's begin LSN). Also the log-recycling horizon.
  Lsn redo_lsn;
  std::vector<CheckpointTxn> active_txns;
  /// Catalog snapshot: serialized sm-layer TableInfo entries (opaque to
  /// the log layer).
  std::vector<std::vector<uint8_t>> tables;
  /// Space snapshot: store → pages in allocation order.
  std::vector<std::pair<StoreId, std::vector<PageNum>>> stores;
};

void SerializeCheckpoint(const CheckpointBody& body, std::vector<uint8_t>* out);
Status DeserializeCheckpoint(std::span<const uint8_t> data,
                             CheckpointBody* body);

}  // namespace shoremt::log

#endif  // SHOREMT_LOG_LOG_RECORD_H_
