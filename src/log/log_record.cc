#include "log/log_record.h"

#include <cstring>

#include "common/crc32c.h"

namespace shoremt::log {

namespace {

// Fixed header layout (little-endian / host order; the log is not a
// portable artifact, matching the original system). Layout documented at
// kLogRecordHeaderSize in the header.
constexpr size_t kHeaderSize = kLogRecordHeaderSize;

template <typename T>
void Put(std::vector<uint8_t>* out, T value) {
  const auto* p = reinterpret_cast<const uint8_t*>(&value);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
bool Get(std::span<const uint8_t> data, size_t* off, T* value) {
  if (*off + sizeof(T) > data.size()) return false;
  std::memcpy(value, data.data() + *off, sizeof(T));
  *off += sizeof(T);
  return true;
}

}  // namespace

size_t LogRecord::SerializedSize() const {
  return kHeaderSize + before.size() + after.size() + kLogRecordCrcSize;
}

void SerializeLogRecord(const LogRecord& rec, std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(rec.SerializedSize());
  Put<uint32_t>(out, static_cast<uint32_t>(rec.SerializedSize()));
  Put<uint8_t>(out, static_cast<uint8_t>(rec.type));
  Put<uint8_t>(out, rec.page_type);
  Put<uint16_t>(out, rec.slot);
  Put<uint64_t>(out, rec.txn);
  Put<uint64_t>(out, rec.prev_lsn.value);
  Put<uint64_t>(out, rec.undo_next.value);
  Put<uint64_t>(out, rec.page);
  Put<uint32_t>(out, rec.store);
  Put<uint32_t>(out, static_cast<uint32_t>(rec.before.size()));
  Put<uint32_t>(out, static_cast<uint32_t>(rec.after.size()));
  out->insert(out->end(), rec.before.begin(), rec.before.end());
  out->insert(out->end(), rec.after.begin(), rec.after.end());
  Put<uint32_t>(out, Crc32c(out->data(), out->size()));
}

Status DeserializeLogRecord(std::span<const uint8_t> data, LogRecord* rec,
                            size_t* consumed) {
  size_t off = 0;
  uint32_t total_len;
  uint8_t type;
  uint32_t before_len;
  uint32_t after_len;
  uint64_t txn, prev, undo, page;
  uint32_t store;
  if (!Get(data, &off, &total_len) || !Get(data, &off, &type) ||
      !Get(data, &off, &rec->page_type) || !Get(data, &off, &rec->slot) ||
      !Get(data, &off, &txn) || !Get(data, &off, &prev) ||
      !Get(data, &off, &undo) || !Get(data, &off, &page) ||
      !Get(data, &off, &store) || !Get(data, &off, &before_len) ||
      !Get(data, &off, &after_len)) {
    return Status::Corruption("truncated log record header");
  }
  if (total_len !=
          kHeaderSize + before_len + after_len + kLogRecordCrcSize ||
      total_len > data.size()) {
    return Status::Corruption("log record length mismatch");
  }
  uint32_t stored_crc;
  std::memcpy(&stored_crc, data.data() + total_len - kLogRecordCrcSize, 4);
  uint32_t computed = Crc32c(data.data(), total_len - kLogRecordCrcSize);
  if (stored_crc != computed) {
    return Status::Corruption("log record CRC mismatch");
  }
  rec->type = static_cast<LogRecordType>(type);
  rec->txn = txn;
  rec->prev_lsn = Lsn{prev};
  rec->undo_next = Lsn{undo};
  rec->page = page;
  rec->store = store;
  rec->before.assign(data.begin() + off, data.begin() + off + before_len);
  off += before_len;
  rec->after.assign(data.begin() + off, data.begin() + off + after_len);
  *consumed = total_len;
  return Status::Ok();
}

void SerializeCheckpoint(const CheckpointBody& body,
                         std::vector<uint8_t>* out) {
  out->clear();
  Put<uint64_t>(out, body.redo_lsn.value);
  Put<uint32_t>(out, static_cast<uint32_t>(body.active_txns.size()));
  for (const CheckpointTxn& t : body.active_txns) {
    Put<uint64_t>(out, t.id);
    Put<uint64_t>(out, t.last_lsn.value);
    Put<uint64_t>(out, t.first_lsn.value);
  }
  Put<uint32_t>(out, static_cast<uint32_t>(body.tables.size()));
  for (const std::vector<uint8_t>& t : body.tables) {
    Put<uint32_t>(out, static_cast<uint32_t>(t.size()));
    out->insert(out->end(), t.begin(), t.end());
  }
  Put<uint32_t>(out, static_cast<uint32_t>(body.stores.size()));
  for (const auto& [store, pages] : body.stores) {
    Put<uint32_t>(out, store);
    Put<uint32_t>(out, static_cast<uint32_t>(pages.size()));
    for (PageNum p : pages) Put<uint64_t>(out, p);
  }
}

Status DeserializeCheckpoint(std::span<const uint8_t> data,
                             CheckpointBody* body) {
  size_t off = 0;
  uint64_t redo;
  uint32_t count;
  if (!Get(data, &off, &redo) || !Get(data, &off, &count)) {
    return Status::Corruption("truncated checkpoint body");
  }
  body->redo_lsn = Lsn{redo};
  body->active_txns.clear();
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t txn, last, first;
    if (!Get(data, &off, &txn) || !Get(data, &off, &last) ||
        !Get(data, &off, &first)) {
      return Status::Corruption("truncated checkpoint txn table");
    }
    body->active_txns.push_back({txn, Lsn{last}, Lsn{first}});
  }
  uint32_t tables;
  if (!Get(data, &off, &tables)) {
    return Status::Corruption("truncated checkpoint catalog");
  }
  body->tables.clear();
  for (uint32_t i = 0; i < tables; ++i) {
    uint32_t len;
    if (!Get(data, &off, &len) || off + len > data.size()) {
      return Status::Corruption("truncated checkpoint catalog entry");
    }
    body->tables.emplace_back(data.begin() + off, data.begin() + off + len);
    off += len;
  }
  uint32_t stores;
  if (!Get(data, &off, &stores)) {
    return Status::Corruption("truncated checkpoint space map");
  }
  body->stores.clear();
  for (uint32_t i = 0; i < stores; ++i) {
    uint32_t store, pages;
    if (!Get(data, &off, &store) || !Get(data, &off, &pages)) {
      return Status::Corruption("truncated checkpoint store entry");
    }
    std::vector<PageNum> list(pages);
    for (uint32_t p = 0; p < pages; ++p) {
      uint64_t page;
      if (!Get(data, &off, &page)) {
        return Status::Corruption("truncated checkpoint page list");
      }
      list[p] = page;
    }
    body->stores.emplace_back(store, std::move(list));
  }
  return Status::Ok();
}

}  // namespace shoremt::log
