#include "log/log_record.h"

#include <cstring>

namespace shoremt::log {

namespace {

// Fixed header layout (little-endian / host order; the log is not a
// portable artifact, matching the original system). Layout documented at
// kLogRecordHeaderSize in the header.
constexpr size_t kHeaderSize = kLogRecordHeaderSize;

template <typename T>
void Put(std::vector<uint8_t>* out, T value) {
  const auto* p = reinterpret_cast<const uint8_t*>(&value);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
bool Get(std::span<const uint8_t> data, size_t* off, T* value) {
  if (*off + sizeof(T) > data.size()) return false;
  std::memcpy(value, data.data() + *off, sizeof(T));
  *off += sizeof(T);
  return true;
}

}  // namespace

size_t LogRecord::SerializedSize() const {
  return kHeaderSize + before.size() + after.size();
}

void SerializeLogRecord(const LogRecord& rec, std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(rec.SerializedSize());
  Put<uint32_t>(out, static_cast<uint32_t>(rec.SerializedSize()));
  Put<uint8_t>(out, static_cast<uint8_t>(rec.type));
  Put<uint8_t>(out, rec.page_type);
  Put<uint16_t>(out, rec.slot);
  Put<uint64_t>(out, rec.txn);
  Put<uint64_t>(out, rec.prev_lsn.value);
  Put<uint64_t>(out, rec.undo_next.value);
  Put<uint64_t>(out, rec.page);
  Put<uint32_t>(out, rec.store);
  Put<uint32_t>(out, static_cast<uint32_t>(rec.before.size()));
  Put<uint32_t>(out, static_cast<uint32_t>(rec.after.size()));
  out->insert(out->end(), rec.before.begin(), rec.before.end());
  out->insert(out->end(), rec.after.begin(), rec.after.end());
}

Status DeserializeLogRecord(std::span<const uint8_t> data, LogRecord* rec,
                            size_t* consumed) {
  size_t off = 0;
  uint32_t total_len;
  uint8_t type;
  uint32_t before_len;
  uint32_t after_len;
  uint64_t txn, prev, undo, page;
  uint32_t store;
  if (!Get(data, &off, &total_len) || !Get(data, &off, &type) ||
      !Get(data, &off, &rec->page_type) || !Get(data, &off, &rec->slot) ||
      !Get(data, &off, &txn) || !Get(data, &off, &prev) ||
      !Get(data, &off, &undo) || !Get(data, &off, &page) ||
      !Get(data, &off, &store) || !Get(data, &off, &before_len) ||
      !Get(data, &off, &after_len)) {
    return Status::Corruption("truncated log record header");
  }
  if (total_len != kHeaderSize + before_len + after_len ||
      total_len > data.size()) {
    return Status::Corruption("log record length mismatch");
  }
  rec->type = static_cast<LogRecordType>(type);
  rec->txn = txn;
  rec->prev_lsn = Lsn{prev};
  rec->undo_next = Lsn{undo};
  rec->page = page;
  rec->store = store;
  rec->before.assign(data.begin() + off, data.begin() + off + before_len);
  off += before_len;
  rec->after.assign(data.begin() + off, data.begin() + off + after_len);
  *consumed = total_len;
  return Status::Ok();
}

void SerializeCheckpoint(const CheckpointBody& body,
                         std::vector<uint8_t>* out) {
  out->clear();
  Put<uint64_t>(out, body.redo_lsn.value);
  Put<uint32_t>(out, static_cast<uint32_t>(body.active_txns.size()));
  for (const auto& [txn, last] : body.active_txns) {
    Put<uint64_t>(out, txn);
    Put<uint64_t>(out, last.value);
  }
}

Status DeserializeCheckpoint(std::span<const uint8_t> data,
                             CheckpointBody* body) {
  size_t off = 0;
  uint64_t redo;
  uint32_t count;
  if (!Get(data, &off, &redo) || !Get(data, &off, &count)) {
    return Status::Corruption("truncated checkpoint body");
  }
  body->redo_lsn = Lsn{redo};
  body->active_txns.clear();
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t txn, last;
    if (!Get(data, &off, &txn) || !Get(data, &off, &last)) {
      return Status::Corruption("truncated checkpoint txn table");
    }
    body->active_txns.emplace_back(txn, Lsn{last});
  }
  return Status::Ok();
}

}  // namespace shoremt::log
