#ifndef SHOREMT_LOG_LOG_STATS_H_
#define SHOREMT_LOG_LOG_STATS_H_

#include <atomic>
#include <cstdint>

namespace shoremt::log {

/// Per-manager counters.
struct LogStats {
  std::atomic<uint64_t> records{0};
  std::atomic<uint64_t> bytes{0};
  std::atomic<uint64_t> compensations{0};
  /// Durability requests that had to block (synchronous FlushTo calls that
  /// found their target not yet durable, plus pipeline Waits that parked).
  std::atomic<uint64_t> flush_waits{0};
  /// Pipeline Waits that found their LSN already durable — the flush
  /// waits group commit made unnecessary.
  std::atomic<uint64_t> waits_avoided{0};
  /// Device flushes issued by the group-commit daemon (batches).
  std::atomic<uint64_t> group_batches{0};
  /// Commit requests amortized into those batches; group_batch_txns /
  /// group_batches = transactions per flush.
  std::atomic<uint64_t> group_batch_txns{0};

  // --- log lifecycle counters (segmented log + cleaner + checkpoint) ------

  /// Segments allocated by the attached storage since this manager
  /// attached (new LSN space opened).
  std::atomic<uint64_t> segments_allocated{0};
  /// Segments freed below the reclamation horizon since attach.
  std::atomic<uint64_t> segments_recycled{0};
  /// Of those, segments written into the archive (PITR) before being
  /// freed — equal to segments_recycled when an archive dir is set.
  std::atomic<uint64_t> segments_archived{0};
  /// Dirty pages the background cleaner wrote back (mirrored from the
  /// buffer pool through the storage manager's writeback hook — the
  /// cleaner is what advances the redo low-water mark that lets Recycle
  /// free segments).
  std::atomic<uint64_t> cleaner_writebacks{0};
  /// Fuzzy checkpoints taken.
  std::atomic<uint64_t> checkpoint_count{0};
  /// Bytes the redo pass actually scanned during recovery — with a
  /// checkpoint low-water mark this is ≪ `bytes` (the whole log).
  std::atomic<uint64_t> redo_scan_bytes{0};

  // --- consolidation-array counters (kCArray buffer only) -----------------
  // The hot two (solo claims / slot joins) sit on their own cache lines:
  // every append bumps exactly one of them, and sharing a line with the
  // flush-side counters would re-introduce the shared-counter serialization
  // these buffers exist to remove (§5).

  /// Combined-extent claims performed by group leaders.
  std::atomic<uint64_t> carray_groups{0};
  /// Records carried by those groups (leader + members); divide by
  /// carray_groups for the mean group size.
  std::atomic<uint64_t> carray_group_records{0};
  /// Bytes claimed through group extents.
  std::atomic<uint64_t> carray_group_bytes{0};
  /// Group-size histogram: buckets 1, 2, 3-4, 5-8, 9-16, >16 members.
  std::atomic<uint64_t> carray_group_size_hist[6] = {};
  /// Appends that joined an open consolidation slot as a member.
  alignas(64) std::atomic<uint64_t> carray_slot_joins{0};
  /// Appends that claimed buffer space alone (fast path or solo retry).
  alignas(64) std::atomic<uint64_t> carray_solo_claims{0};
  /// Times the flusher (or a ring-full appender) found every completed
  /// byte already durable and had to wait for in-flight copiers to
  /// publish more regions before the watermark could advance.
  alignas(64) std::atomic<uint64_t> carray_watermark_stalls{0};

  // --- adaptive gather window (leader-only, cold relative to appends) -----

  /// Times a leader widened the gather-spin budget (a well-subscribed
  /// group closed: collision pressure is high, waiting longer pays).
  std::atomic<uint64_t> carray_gather_widens{0};
  /// Times a leader narrowed it (the window closed with no joiners:
  /// spinning was pure latency).
  std::atomic<uint64_t> carray_gather_narrows{0};
  /// GAUGE: the current gather-spin budget.
  std::atomic<uint64_t> carray_gather_spins{0};
};

}  // namespace shoremt::log

#endif  // SHOREMT_LOG_LOG_STATS_H_
