#ifndef SHOREMT_LOG_LOG_MANAGER_H_
#define SHOREMT_LOG_LOG_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>

#include "common/status.h"
#include "common/types.h"
#include "log/log_buffer.h"
#include "log/log_record.h"
#include "log/log_storage.h"

namespace shoremt::log {

/// Log manager configuration; defaults = Shore-MT "final".
struct LogOptions {
  LogBufferKind buffer_kind = LogBufferKind::kConsolidated;
  size_t buffer_capacity = 1 << 22;  // 4 MiB ring.
  /// Background flush daemon (group commit helper). Off by default: tests
  /// drive flushes explicitly; the storage manager turns it on.
  bool flush_daemon = false;
  uint64_t flush_interval_us = 1000;
};

/// Per-manager counters.
struct LogStats {
  std::atomic<uint64_t> records{0};
  std::atomic<uint64_t> bytes{0};
  std::atomic<uint64_t> compensations{0};
  std::atomic<uint64_t> flush_waits{0};
};

/// The log manager (§2.2.4): serializes WAL records into the staging
/// buffer, enforces durability on commit, and replays the durable stream
/// for recovery. The buffer implementation is the §7.4 staging knob.
class LogManager {
 public:
  /// `storage` must outlive the manager (it is the durable artifact that
  /// survives simulated crashes/restarts).
  LogManager(LogStorage* storage, LogOptions options);
  ~LogManager();

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Appends `rec`; returns its start/end LSNs.
  Result<Appended> Append(const LogRecord& rec);
  /// Appends a compensation (CLR) record.
  Result<Appended> AppendClr(const LogRecord& rec);

  /// Makes everything below `upto` durable (commit / WAL barrier).
  Status FlushTo(Lsn upto);
  /// Flushes everything appended so far.
  Status FlushAll();

  Lsn durable_lsn() const { return buffer_->durable_lsn(); }
  Lsn next_lsn() const { return buffer_->next_lsn(); }

  /// Reads the record starting at `lsn` from the durable log (undo path).
  Result<LogRecord> ReadRecord(Lsn lsn) const;

  /// Iterates every durable record in LSN order; the callback receives
  /// each record with `lsn` and computed end LSN filled in. Stops early on
  /// callback error.
  Status Scan(const std::function<Status(const LogRecord&, Lsn end)>& fn,
              Lsn from = Lsn{1}) const;

  const LogStats& stats() const { return stats_; }
  LogStorage* storage() { return storage_; }

 private:
  LogStorage* storage_;
  LogOptions options_;
  std::unique_ptr<LogBuffer> buffer_;
  LogStats stats_;
  std::atomic<bool> stop_daemon_{false};
  std::thread daemon_;
};

}  // namespace shoremt::log

#endif  // SHOREMT_LOG_LOG_MANAGER_H_
