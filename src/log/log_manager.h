#ifndef SHOREMT_LOG_LOG_MANAGER_H_
#define SHOREMT_LOG_LOG_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/status.h"
#include "common/types.h"
#include "log/log_buffer.h"
#include "log/log_record.h"
#include "log/log_storage.h"

namespace shoremt::log {

class FlushPipeline;

/// Log manager configuration; defaults = Shore-MT "final".
struct LogOptions {
  LogBufferKind buffer_kind = LogBufferKind::kCArray;
  size_t buffer_capacity = 1 << 22;  // 4 MiB ring.
  /// Periodic background flushing of *everything* appended so far, on top
  /// of the always-on submission-driven group-commit pipeline. Off by
  /// default: tests that rely on an unflushed tail being lost on crash
  /// drive durability explicitly through Submit/Wait/FlushTo.
  bool flush_daemon = false;
  uint64_t flush_interval_us = 1000;
  /// TEST HOOK (kCArray only): route every append through the
  /// consolidation slots instead of the solo fast path. On hosts with few
  /// hardware contexts the solo claim CAS almost never fails, so group
  /// formation would otherwise go unexercised; forcing it makes the
  /// leader/member protocol (join accounting, base hand-off, group-claim
  /// flush, error propagation) deterministic to test.
  bool carray_force_consolidation = false;
};

/// Per-manager counters.
struct LogStats {
  std::atomic<uint64_t> records{0};
  std::atomic<uint64_t> bytes{0};
  std::atomic<uint64_t> compensations{0};
  /// Durability requests that had to block (synchronous FlushTo calls that
  /// found their target not yet durable, plus pipeline Waits that parked).
  std::atomic<uint64_t> flush_waits{0};
  /// Pipeline Waits that found their LSN already durable — the flush
  /// waits group commit made unnecessary.
  std::atomic<uint64_t> waits_avoided{0};
  /// Device flushes issued by the group-commit daemon (batches).
  std::atomic<uint64_t> group_batches{0};
  /// Commit requests amortized into those batches; group_batch_txns /
  /// group_batches = transactions per flush.
  std::atomic<uint64_t> group_batch_txns{0};

  // --- consolidation-array counters (kCArray buffer only) -----------------
  // The hot two (solo claims / slot joins) sit on their own cache lines:
  // every append bumps exactly one of them, and sharing a line with the
  // flush-side counters would re-introduce the shared-counter serialization
  // these buffers exist to remove (§5).

  /// Combined-extent claims performed by group leaders.
  std::atomic<uint64_t> carray_groups{0};
  /// Records carried by those groups (leader + members); divide by
  /// carray_groups for the mean group size.
  std::atomic<uint64_t> carray_group_records{0};
  /// Bytes claimed through group extents.
  std::atomic<uint64_t> carray_group_bytes{0};
  /// Group-size histogram: buckets 1, 2, 3-4, 5-8, 9-16, >16 members.
  std::atomic<uint64_t> carray_group_size_hist[6] = {};
  /// Appends that joined an open consolidation slot as a member.
  alignas(64) std::atomic<uint64_t> carray_slot_joins{0};
  /// Appends that claimed buffer space alone (fast path or solo retry).
  alignas(64) std::atomic<uint64_t> carray_solo_claims{0};
  /// Times the flusher (or a ring-full appender) found every completed
  /// byte already durable and had to wait for in-flight copiers to
  /// publish more regions before the watermark could advance.
  alignas(64) std::atomic<uint64_t> carray_watermark_stalls{0};
};

/// The log manager (§2.2.4): serializes WAL records into the staging
/// buffer, enforces durability on commit, and replays the durable stream
/// for recovery. The buffer implementation is the §7.4 staging knob; the
/// always-on FlushPipeline is the group-commit seam the asynchronous
/// commit path (txn::TxnManager::CommitAsync) rides.
class LogManager {
 public:
  /// `storage` must outlive the manager (it is the durable artifact that
  /// survives simulated crashes/restarts).
  LogManager(LogStorage* storage, LogOptions options);
  ~LogManager();  ///< Drains submitted flush targets unless Abandon()ed.

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Appends `rec`; returns its start/end LSNs.
  Result<Appended> Append(const LogRecord& rec);
  /// Appends a compensation (CLR) record.
  Result<Appended> AppendClr(const LogRecord& rec);

  /// Makes everything below `upto` durable (commit / WAL barrier). This is
  /// the synchronous path: the caller's thread may perform the device
  /// flush itself.
  Status FlushTo(Lsn upto);
  /// Flushes everything appended so far.
  Status FlushAll();

  // --- asynchronous durability (group-commit pipeline) ---------------------

  /// Registers `upto` with the flush daemon and returns immediately; one
  /// daemon flush covers every target submitted before it runs.
  void SubmitFlush(Lsn upto);
  /// Blocks until everything below `upto` is durable or the pipeline
  /// carries a sticky error.
  Status WaitDurable(Lsn upto);
  /// Registers a closure invoked once when the durable LSN passes `upto`
  /// — from the flush daemon's thread as its batches advance durability,
  /// or inline (before returning) if `upto` is already durable. The
  /// target is submitted to the daemon like SubmitFlush. A sticky
  /// pipeline error fires every pending closure with that error; closures
  /// still pending at shutdown fire after the final drain (Ok if it made
  /// them durable, the drain/stop error otherwise).
  void OnDurable(Lsn upto, std::function<void(Status)> fn);
  /// True once every byte below `upto` has reached the log device.
  bool IsDurable(Lsn upto) const;
  /// The pipeline's sticky flush error (Ok while healthy). A failed
  /// device flush poisons the pipeline: durability can no longer be
  /// acknowledged, and every Wait reports this status.
  Status pipeline_error() const;
  /// Crash simulation: the destructor skips the final drain flush, losing
  /// submitted-but-unflushed commit records like a power failure would.
  void Abandon();

  Lsn durable_lsn() const { return buffer_->durable_lsn(); }
  Lsn next_lsn() const { return buffer_->next_lsn(); }

  /// Reads the record starting at `lsn` from the durable log (undo path).
  /// A torn or garbage length prefix yields Corruption, never a bogus
  /// read.
  Result<LogRecord> ReadRecord(Lsn lsn) const;

  /// Iterates every durable record in LSN order; the callback receives
  /// each record with `lsn` and computed end LSN filled in. Stops early on
  /// callback error.
  Status Scan(const std::function<Status(const LogRecord&, Lsn end)>& fn,
              Lsn from = Lsn{1}) const;

  const LogStats& stats() const { return stats_; }
  LogStorage* storage() { return storage_; }
  FlushPipeline* pipeline() { return pipeline_.get(); }

 private:
  LogStorage* storage_;
  LogOptions options_;
  std::unique_ptr<LogBuffer> buffer_;
  LogStats stats_;
  std::unique_ptr<FlushPipeline> pipeline_;
};

}  // namespace shoremt::log

#endif  // SHOREMT_LOG_LOG_MANAGER_H_
