#ifndef SHOREMT_LOG_LOG_MANAGER_H_
#define SHOREMT_LOG_LOG_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "common/types.h"
#include "log/log_buffer.h"
#include "log/log_record.h"
#include "log/log_stats.h"
#include "log/log_storage.h"

namespace shoremt::log {

class FlushPipeline;

/// Log manager configuration; defaults = Shore-MT "final".
struct LogOptions {
  LogBufferKind buffer_kind = LogBufferKind::kCArray;
  size_t buffer_capacity = 1 << 22;  // 4 MiB ring.
  /// Periodic background flushing of *everything* appended so far, on top
  /// of the always-on submission-driven group-commit pipeline. Off by
  /// default: tests that rely on an unflushed tail being lost on crash
  /// drive durability explicitly through Submit/Wait/FlushTo.
  bool flush_daemon = false;
  uint64_t flush_interval_us = 1000;
  /// TEST HOOK (kCArray only): route every append through the
  /// consolidation slots instead of the solo fast path. On hosts with few
  /// hardware contexts the solo claim CAS almost never fails, so group
  /// formation would otherwise go unexercised; forcing it makes the
  /// leader/member protocol (join accounting, base hand-off, group-claim
  /// flush, error propagation) deterministic to test.
  bool carray_force_consolidation = false;
  /// Segment size applied to the attached LogStorage (0 keeps whatever the
  /// storage was constructed with). Whole segments below the checkpoint's
  /// redo low-water mark are freed by Recycle — small segments recycle
  /// promptly, large ones amortize allocation.
  uint64_t segment_bytes = 0;
  /// Live-segment count at which the flush pipeline reports log pressure
  /// through the pressure hook (waking the page cleaner / checkpoint
  /// daemon so the low-water mark advances and segments can be freed).
  size_t recycle_pressure_segments = 8;
  /// Non-empty: Recycle archives each sealed segment into this directory
  /// (file + MANIFEST line) instead of freeing it outright — the archive
  /// plus the live log stays a complete byte stream from LSN 1, enabling
  /// point-in-time restore (repl::RestoreToLsn) and lets a log shipper
  /// serve ranges the primary already recycled. Empty (default) = off.
  std::string archive_dir;
  /// With an archive_dir: write archived segment files with O_DIRECT
  /// (write-once cold data that should not churn the page cache), with a
  /// graceful per-file fallback to buffered I/O where the filesystem
  /// rejects O_DIRECT. Mirrors io::VolumeOptions::direct_io for data.
  bool direct_io = false;
  /// Worker threads in the flush pipeline's OnDurable callback executor
  /// (1 preserves ascending-LSN dispatch order; more trades order for
  /// callback parallelism).
  size_t durable_callback_threads = 1;
  /// Bounded depth of that executor's queue (batches, not closures); a
  /// backlog past this exerts backpressure on the flush daemon.
  size_t durable_callback_queue = 64;
};

// LogStats lives in log/log_stats.h so the storage layer can mirror
// segment counters into it without depending on this (higher) header.

/// The log manager (§2.2.4): serializes WAL records into the staging
/// buffer, enforces durability on commit, and replays the durable stream
/// for recovery. The buffer implementation is the §7.4 staging knob; the
/// always-on FlushPipeline is the group-commit seam the asynchronous
/// commit path (txn::TxnManager::CommitAsync) rides.
class LogManager {
 public:
  /// `storage` must outlive the manager (it is the durable artifact that
  /// survives simulated crashes/restarts).
  LogManager(LogStorage* storage, LogOptions options);
  ~LogManager();  ///< Drains submitted flush targets unless Abandon()ed.

  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  /// Appends `rec`; returns its start/end LSNs.
  Result<Appended> Append(const LogRecord& rec);
  /// Appends a compensation (CLR) record.
  Result<Appended> AppendClr(const LogRecord& rec);

  /// Makes everything below `upto` durable (commit / WAL barrier). This is
  /// the synchronous path: the caller's thread may perform the device
  /// flush itself.
  Status FlushTo(Lsn upto);
  /// Flushes everything appended so far.
  Status FlushAll();

  // --- asynchronous durability (group-commit pipeline) ---------------------

  /// Registers `upto` with the flush daemon and returns immediately; one
  /// daemon flush covers every target submitted before it runs.
  void SubmitFlush(Lsn upto);
  /// Blocks until everything below `upto` is durable or the pipeline
  /// carries a sticky error.
  Status WaitDurable(Lsn upto);
  /// Registers a closure invoked once when the durable LSN passes `upto`
  /// — from the flush daemon's thread as its batches advance durability,
  /// or inline (before returning) if `upto` is already durable. The
  /// target is submitted to the daemon like SubmitFlush. A sticky
  /// pipeline error fires every pending closure with that error; closures
  /// still pending at shutdown fire after the final drain (Ok if it made
  /// them durable, the drain/stop error otherwise).
  void OnDurable(Lsn upto, std::function<void(Status)> fn);
  /// True once every byte below `upto` has reached the log device.
  bool IsDurable(Lsn upto) const;
  /// The pipeline's sticky flush error (Ok while healthy). A failed
  /// device flush poisons the pipeline: durability can no longer be
  /// acknowledged, and every Wait reports this status.
  Status pipeline_error() const;
  /// Crash simulation: the destructor skips the final drain flush, losing
  /// submitted-but-unflushed commit records like a power failure would.
  void Abandon();

  Lsn durable_lsn() const { return buffer_->durable_lsn(); }
  Lsn next_lsn() const { return buffer_->next_lsn(); }

  // --- log lifecycle (segmented storage + recycling) -----------------------

  /// Frees whole log segments below `below` (clamped to the durable LSN:
  /// undo and recovery read only durable bytes, and a checkpoint flushes
  /// its record before recycling). `below` is the reclamation horizon —
  /// min(checkpoint redo low-water, oldest active transaction's begin
  /// LSN), computed by the storage manager's fuzzy checkpoint. Returns
  /// the number of segments freed.
  size_t Recycle(Lsn below);

  /// First LSN a log scan may start at (everything below it may have been
  /// recycled). Forwarded from the storage, so it survives restarts.
  Lsn reclaim_horizon() const { return storage_->reclaim_horizon(); }

  /// Live segments held by the storage right now.
  size_t live_segments() const { return storage_->live_segments(); }

  /// True when the storage holds at least `recycle_pressure_segments`
  /// live segments — the signal that background reclamation (cleaner +
  /// checkpoint) is falling behind the append rate.
  bool SegmentPressure() const {
    return storage_->live_segments() >= options_.recycle_pressure_segments;
  }

  /// Registers `hook`, invoked from the flush daemon UNDER the pipeline's
  /// lock after a flush batch whenever SegmentPressure() holds — the
  /// no-busy-wait nudge that wakes the page cleaner and the checkpoint
  /// daemon so the low-water mark advances and Recycle can free segments.
  /// The hook must be short, must not block, and must not re-enter the
  /// pipeline (Submit/Wait/OnDurable would self-deadlock); cv notifies
  /// are fine. See FlushPipeline::SetPostBatchHook.
  void SetPressureHook(std::function<void()> hook);

  /// Stat entry points for the services the log cannot see directly.
  void NoteCheckpoint() {
    stats_.checkpoint_count.fetch_add(1, std::memory_order_relaxed);
  }
  void NoteCleanerWriteback() {
    stats_.cleaner_writebacks.fetch_add(1, std::memory_order_relaxed);
  }
  void NoteRedoScanBytes(uint64_t bytes) {
    stats_.redo_scan_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }

  /// Reads the record starting at `lsn` from the durable log (undo path).
  /// A torn or garbage length prefix yields Corruption, never a bogus
  /// read.
  Result<LogRecord> ReadRecord(Lsn lsn) const;

  /// Iterates every durable record in LSN order starting at `from`
  /// (clamped up to the reclamation horizon — recycled bytes are gone);
  /// the callback receives each record with `lsn` and computed end LSN
  /// filled in. Stops early on callback error.
  Status Scan(const std::function<Status(const LogRecord&, Lsn end)>& fn,
              Lsn from = Lsn{1}) const;

  const LogStats& stats() const { return stats_; }
  LogStorage* storage() { return storage_; }
  FlushPipeline* pipeline() { return pipeline_.get(); }

 private:
  LogStorage* storage_;
  LogOptions options_;
  std::unique_ptr<LogBuffer> buffer_;
  LogStats stats_;
  std::unique_ptr<FlushPipeline> pipeline_;
};

}  // namespace shoremt::log

#endif  // SHOREMT_LOG_LOG_MANAGER_H_
