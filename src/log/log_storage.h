#ifndef SHOREMT_LOG_LOG_STORAGE_H_
#define SHOREMT_LOG_LOG_STORAGE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace shoremt::log {

/// The durable log device: an append-only byte stream. LSNs are byte
/// offsets + 1 (so LSN 0 stays "null"). The paper's testbed kept the log
/// on an in-memory filesystem; `append_latency_ns` models a slower device
/// per flush *call* (not per byte), which is what makes group commit pay.
///
/// A LogStorage outlives the LogManager attached to it — restart/recovery
/// tests attach a fresh LogManager to the old storage, and anything that
/// was never flushed here is what a crash loses.
class LogStorage {
 public:
  explicit LogStorage(uint64_t append_latency_ns = 0)
      : append_latency_ns_(append_latency_ns) {}

  LogStorage(const LogStorage&) = delete;
  LogStorage& operator=(const LogStorage&) = delete;

  /// Appends `data` durably. Must be called in LSN order (the log buffer's
  /// flusher guarantees this).
  Status Append(std::span<const uint8_t> data);

  /// Gather append: writes `parts` back to back as ONE device call (one
  /// latency charge, one flush_calls tick). This is the zero-copy drain
  /// path — ring buffers hand their (up to two, on wrap) live segments
  /// straight to the device instead of staging them through a scratch
  /// copy. Same LSN-order contract as Append.
  Status AppendV(std::span<const std::span<const uint8_t>> parts);

  /// Bytes durably stored; durable LSN = size() + 1.
  uint64_t size() const { return size_.load(std::memory_order_acquire); }

  /// Copies out the byte range [offset, offset+len) of the durable log.
  Status Read(uint64_t offset, size_t len, std::vector<uint8_t>* out) const;

  /// Snapshot of the entire durable log (recovery scan).
  std::vector<uint8_t> Snapshot() const;

  uint64_t flush_calls() const {
    return flush_calls_.load(std::memory_order_relaxed);
  }

  /// Test hook: while set, Append fails with IOError without storing
  /// anything — simulates a dying log device so callers can exercise the
  /// flush pipeline's sticky-error propagation.
  void set_fail_appends(bool fail) {
    fail_appends_.store(fail, std::memory_order_release);
  }

 private:
  uint64_t append_latency_ns_;
  mutable std::mutex mutex_;
  std::vector<uint8_t> bytes_;
  std::atomic<uint64_t> size_{0};
  std::atomic<uint64_t> flush_calls_{0};
  std::atomic<bool> fail_appends_{false};
};

}  // namespace shoremt::log

#endif  // SHOREMT_LOG_LOG_STORAGE_H_
