#ifndef SHOREMT_LOG_LOG_STORAGE_H_
#define SHOREMT_LOG_LOG_STORAGE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace shoremt::io {
class FaultInjector;
}

namespace shoremt::log {

struct LogStats;

/// The durable log device: an append-only byte stream stored as a chain of
/// fixed-size SEGMENTS. LSNs are byte offsets + 1 (so LSN 0 stays "null")
/// and stay absolute forever — recycling frees whole segments below the
/// reclamation horizon without renumbering anything, so the same LSN keys
/// the same record for the life of the database. The paper's testbed kept
/// the log on an in-memory filesystem; `append_latency_ns` models a slower
/// device per flush *call* (not per byte), which is what makes group
/// commit pay.
///
/// A LogStorage outlives the LogManager attached to it — restart/recovery
/// tests attach a fresh LogManager to the old storage, and anything that
/// was never flushed here is what a crash loses. The reclamation horizon
/// survives re-attachment the same way: recovery must start its analysis
/// scan at `reclaim_horizon()`, never below it.
class LogStorage {
 public:
  /// Default segment size; `segment_bytes` 0 keeps it. Callers that want a
  /// tightly bounded log (benches, recycling tests) pass something small.
  static constexpr size_t kDefaultSegmentBytes = 1 << 20;

  explicit LogStorage(uint64_t append_latency_ns = 0,
                      size_t segment_bytes = kDefaultSegmentBytes)
      : append_latency_ns_(append_latency_ns),
        segment_bytes_(segment_bytes == 0 ? kDefaultSegmentBytes
                                          : segment_bytes) {}

  LogStorage(const LogStorage&) = delete;
  LogStorage& operator=(const LogStorage&) = delete;

  /// Appends `data` durably. Must be called in LSN order (the log buffer's
  /// flusher guarantees this).
  Status Append(std::span<const uint8_t> data);

  /// Gather append: writes `parts` back to back as ONE device call (one
  /// latency charge, one flush_calls tick). This is the zero-copy drain
  /// path — ring buffers hand their (up to two, on wrap) live segments
  /// straight to the device instead of staging them through a scratch
  /// copy. Same LSN-order contract as Append.
  Status AppendV(std::span<const std::span<const uint8_t>> parts);

  /// Bytes durably stored since the beginning of time (recycled bytes
  /// included); durable LSN = size() + 1.
  uint64_t size() const { return size_.load(std::memory_order_acquire); }

  /// Copies out the byte range [offset, offset+len) of the durable log.
  /// Reading below the reclamation horizon's segment chain (bytes whose
  /// segment was recycled) fails with IOError.
  Status Read(uint64_t offset, size_t len, std::vector<uint8_t>* out) const;

  /// Copies every durable byte in [offset, size()) into `out` (recovery
  /// scans). `offset` below the first live segment is an IOError, like
  /// Read.
  Status ReadFrom(uint64_t offset, std::vector<uint8_t>* out) const;

  /// Snapshot of the live durable log. With no recycling this is the
  /// entire byte stream from offset 0; after recycling it starts at the
  /// first live segment (callers that index it by absolute offset must
  /// not have recycled).
  std::vector<uint8_t> Snapshot() const;

  // --- segment lifecycle ----------------------------------------------------

  /// Frees every segment that lies entirely below `below` (an LSN, i.e. a
  /// record boundary — typically the checkpoint's redo low-water mark) and
  /// advances the reclamation horizon to it. Bytes at or above the horizon
  /// stay readable; a partially-covered segment is kept whole. Returns the
  /// number of segments freed. Monotonic: a lower `below` than the current
  /// horizon is a no-op.
  size_t Recycle(Lsn below);

  /// First LSN recovery may scan from: everything below it has been
  /// declared reclaimable by a checkpoint (its segments may be gone).
  /// Lsn{1} until the first Recycle. Persists across LogManager
  /// re-attachment — it lives with the durable artifact.
  Lsn reclaim_horizon() const {
    return Lsn{horizon_offset_.load(std::memory_order_acquire) + 1};
  }

  /// While set, Recycle writes each sealed segment into `dir` as
  /// `seg-<base>.log` and appends a line to `dir`/MANIFEST
  /// (`v1 <base> <length> <capacity> <file>`, offsets in absolute log
  /// bytes) BEFORE freeing it — the archive plus the live log is the
  /// complete byte stream from offset 0, which is what point-in-time
  /// restore replays. Empty (the default) keeps the PR 5 free-on-recycle
  /// behavior. An archive write failure stops recycling at that segment
  /// (bytes are never dropped unarchived).
  void set_archive_dir(std::string dir);
  std::string archive_dir() const;

  /// While true (and an archive dir is set), Recycle writes segment files
  /// with O_DIRECT — the archive traffic is write-once cold data that
  /// should not evict warm page-cache entries. Falls back to buffered
  /// stdio per file where the filesystem rejects O_DIRECT (tmpfs).
  void set_archive_direct_io(bool on);

  /// Geometry of the live segment covering absolute byte `offset`:
  /// shipping needs to know where the covering segment starts, how big it
  /// is, and whether it is sealed (filled == capacity). `found` is false
  /// when the offset is below the first live segment (recycled — serve
  /// from the archive) or at/after the durable end.
  struct SegmentInfo {
    uint64_t base = 0;
    size_t capacity = 0;
    size_t filled = 0;
    bool found = false;
  };
  SegmentInfo SegmentInfoAt(uint64_t offset) const;

  /// Drops every durable byte at/above absolute offset `offset` (replica
  /// promotion cuts the unparsed partial tail; restore cuts past-target
  /// records). Truncating into recycled space is an IOError; offset at or
  /// past the durable end is a no-op.
  Status TruncateTo(uint64_t offset);

  size_t segment_bytes() const { return segment_bytes_; }
  /// Reconfigures the size used for segments allocated from now on
  /// (existing segments keep their geometry — segments are self-
  /// describing, so mixed sizes are fine).
  void set_segment_bytes(size_t bytes) {
    std::lock_guard<std::mutex> guard(mutex_);
    if (bytes > 0) segment_bytes_ = bytes;
  }

  /// Segments currently held in memory.
  size_t live_segments() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return segments_.size();
  }
  uint64_t segments_allocated() const {
    return segments_allocated_.load(std::memory_order_relaxed);
  }
  uint64_t segments_recycled() const {
    return segments_recycled_.load(std::memory_order_relaxed);
  }
  uint64_t segments_archived() const {
    return segments_archived_.load(std::memory_order_relaxed);
  }

  /// Attaches a LogStats block (the owning LogManager's): segment
  /// allocations/recycles from now on are mirrored into its
  /// segments_allocated / segments_recycled counters. Pass nullptr to
  /// detach. A re-attached manager (restart) starts its mirror from zero.
  void AttachStats(LogStats* stats);

  uint64_t flush_calls() const {
    return flush_calls_.load(std::memory_order_relaxed);
  }

  /// Test hook: while set, Append fails with IOError without storing
  /// anything — simulates a dying log device so callers can exercise the
  /// flush pipeline's sticky-error propagation.
  void set_fail_appends(bool fail) {
    fail_appends_.store(fail, std::memory_order_release);
  }

  /// Installs (or clears) a fault injector consulted by AppendV: its
  /// PreAppend hook can fail an append outright, tear it (store only a
  /// byte prefix — the torn-log-tail crash signature recovery's scan must
  /// stop at), or model a crashed device. Must outlive the installation.
  void set_fault_injector(io::FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }

 private:
  /// One fixed-capacity chunk of the byte stream. `base` is the absolute
  /// offset of bytes[0]; capacity is frozen at allocation time.
  struct Segment {
    uint64_t base = 0;
    size_t capacity = 0;
    std::vector<uint8_t> bytes;
  };

  /// Writes `seg` into the archive (file + manifest line). Caller holds
  /// mutex_. Returns false on any I/O failure (caller must keep the
  /// segment live).
  bool ArchiveSegmentLocked(const Segment& seg);
  /// O_DIRECT segment-file write; returns false when the direct path is
  /// unusable (caller falls back to buffered), else `*ok` = outcome.
  bool WriteSegmentDirect(const std::string& path, const Segment& seg,
                          bool* ok);
  /// Copies [offset, offset+len) out of the segment chain. Caller holds
  /// mutex_ and has validated the range.
  void CopyOutLocked(uint64_t offset, size_t len, uint8_t* out) const;
  /// Validates [offset, offset+len) against the live window. Caller holds
  /// mutex_.
  Status CheckRangeLocked(uint64_t offset, size_t len) const;

  uint64_t append_latency_ns_;
  mutable std::mutex mutex_;
  size_t segment_bytes_;
  std::deque<Segment> segments_;
  LogStats* attached_stats_ = nullptr;  ///< Guarded by mutex_.
  std::string archive_dir_;             ///< Guarded by mutex_; "" = off.
  bool archive_direct_ = false;         ///< Guarded by mutex_.
  std::atomic<uint64_t> size_{0};
  /// Absolute offset below which bytes are reclaimable (recycled segments
  /// are gone; a straddling segment keeps its sub-horizon bytes readable).
  std::atomic<uint64_t> horizon_offset_{0};
  std::atomic<uint64_t> segments_allocated_{0};
  std::atomic<uint64_t> segments_recycled_{0};
  std::atomic<uint64_t> segments_archived_{0};
  std::atomic<uint64_t> flush_calls_{0};
  std::atomic<bool> fail_appends_{false};
  std::atomic<io::FaultInjector*> injector_{nullptr};
};

}  // namespace shoremt::log

#endif  // SHOREMT_LOG_LOG_STORAGE_H_
