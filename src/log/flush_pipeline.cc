#include "log/flush_pipeline.h"

#include <algorithm>
#include <chrono>

#include "log/log_buffer.h"
#include "log/log_manager.h"

namespace shoremt::log {

FlushPipeline::FlushPipeline(LogBuffer* buffer, LogStats* stats,
                             uint64_t idle_flush_interval_us,
                             size_t callback_threads, size_t callback_queue)
    : buffer_(buffer),
      stats_(stats),
      idle_flush_interval_us_(idle_flush_interval_us),
      callback_executor_(std::make_unique<sync::BoundedExecutor>(
          callback_threads, callback_queue)),
      daemon_([this] { DaemonLoop(); }) {}

FlushPipeline::~FlushPipeline() {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (daemon_.joinable()) daemon_.join();
  // The daemon's final pass submitted whatever remained; draining the
  // executor here guarantees every registered closure has fired before the
  // pipeline is gone.
  callback_executor_.reset();
}

bool FlushPipeline::IsDurable(Lsn upto) const {
  return buffer_->durable_lsn() >= upto;
}

Status FlushPipeline::error() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return error_;
}

void FlushPipeline::Abandon() {
  std::lock_guard<std::mutex> guard(mutex_);
  abandoned_ = true;
}

void FlushPipeline::SetPostBatchHook(std::function<void()> hook) {
  std::lock_guard<std::mutex> guard(mutex_);
  post_batch_hook_ = std::move(hook);
}

void FlushPipeline::Submit(Lsn upto) {
  if (upto.IsNull() || IsDurable(upto)) return;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    ++pending_submits_;
    requested_ = std::max(requested_, upto.value);
  }
  work_cv_.notify_one();
}

void FlushPipeline::OnDurable(Lsn upto, std::function<void(Status)> fn) {
  if (!fn) return;
  if (upto.IsNull() || IsDurable(upto)) {
    fn(Status::Ok());
    return;
  }
  bool fire_now = false;
  Status fire_status;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (!error_.ok()) {
      // The pipeline is poisoned: this target can never become durable.
      fire_now = true;
      fire_status = error_;
    } else if (IsDurable(upto)) {
      // Became durable between the unlocked check and the lock.
      fire_now = true;
      fire_status = Status::Ok();
    } else if (daemon_exited_) {
      fire_now = true;
      fire_status =
          Status::Internal("flush pipeline stopped before LSN became durable");
    } else {
      callbacks_.emplace(upto.value, std::move(fn));
      // The registration doubles as a flush submission: the daemon owes
      // this target a batch even if nobody ever Waits on it. It is not a
      // commit request though — pending_submits_ stays untouched so the
      // transactions-per-flush stat is not double-counted when a commit
      // is both submitted and callback-acknowledged.
      requested_ = std::max(requested_, upto.value);
    }
  }
  if (fire_now) {
    fn(fire_status);
    return;
  }
  work_cv_.notify_one();
}

std::vector<std::pair<FlushPipeline::Callback, Status>>
FlushPipeline::CollectDueCallbacksLocked(bool final_pass,
                                         const Status& fallback) {
  std::vector<std::pair<Callback, Status>> due;
  uint64_t durable = buffer_->durable_lsn().value;
  auto it = callbacks_.begin();
  while (it != callbacks_.end()) {
    if (it->first <= durable) {
      due.emplace_back(std::move(it->second), Status::Ok());
    } else if (!error_.ok()) {
      // Sticky error: durability can never be promised again — every
      // pending closure learns it now.
      due.emplace_back(std::move(it->second), error_);
    } else if (final_pass) {
      due.emplace_back(std::move(it->second), fallback);
    } else {
      break;  // Keys ascend; nothing further is due.
    }
    it = callbacks_.erase(it);
  }
  return due;
}

void FlushPipeline::DispatchDue(std::unique_lock<std::mutex>& lk,
                                bool final_pass, const Status& fallback) {
  auto due = CollectDueCallbacksLocked(final_pass, fallback);
  if (due.empty()) return;
  lk.unlock();
  // The whole batch is one executor task: with the default single worker
  // the FIFO queue preserves ascending-LSN dispatch order within AND
  // across batches, while the daemon goes straight back to flushing — a
  // slow closure can no longer stall group-commit acknowledgement.
  callback_executor_->Submit([batch = std::move(due)]() mutable {
    for (auto& [fn, st] : batch) fn(st);
  });
  lk.lock();
}

void FlushPipeline::NotifyDurableAdvanced() {
  durable_cv_.notify_all();
  // Callbacks satisfied by the synchronous flush are dispatched by the
  // daemon (woken here), never on this caller's thread: the documented
  // contract is one dispatching thread and ascending-LSN order, which
  // concurrent Invoke loops would both break.
  work_cv_.notify_one();
}

bool FlushPipeline::HasDueCallbacksLocked() const {
  return !callbacks_.empty() &&
         callbacks_.begin()->first <= buffer_->durable_lsn().value;
}

Status FlushPipeline::Wait(Lsn upto) {
  if (upto.IsNull()) return Status::Ok();
  if (IsDurable(upto)) {
    stats_->waits_avoided.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  std::unique_lock<std::mutex> lk(mutex_);
  if (upto.value > requested_) {
    // Nobody submitted this target yet (Wait without a prior Submit):
    // register it ourselves so the daemon has a reason to run.
    ++pending_submits_;
    requested_ = upto.value;
    work_cv_.notify_one();
  }
  stats_->flush_waits.fetch_add(1, std::memory_order_relaxed);
  // Bounded wait, re-checking the predicate: the durable horizon can also
  // advance through paths that do not notify this cv (a synchronous
  // FlushTo on another thread, an appender's ring-full self-drain), and
  // the daemon goes back to sleep without notifying when it wakes to find
  // its work already done. NotifyDurableAdvanced() keeps the common case
  // prompt; the timeout guarantees liveness against every missed-notify
  // interleaving.
  while (!IsDurable(upto) && error_.ok() && !daemon_exited_) {
    durable_cv_.wait_for(lk, std::chrono::milliseconds(1));
  }
  if (IsDurable(upto)) return Status::Ok();
  if (!error_.ok()) return error_;
  return Status::Internal("flush pipeline stopped before LSN became durable");
}

bool FlushPipeline::HasWorkLocked() const {
  return requested_ > buffer_->durable_lsn().value;
}

void FlushPipeline::DaemonLoop() {
  std::unique_lock<std::mutex> lk(mutex_);
  while (!stop_) {
    if (idle_flush_interval_us_ > 0) {
      work_cv_.wait_for(lk, std::chrono::microseconds(idle_flush_interval_us_),
                        [&] {
                          return stop_ || HasWorkLocked() ||
                                 HasDueCallbacksLocked();
                        });
    } else {
      work_cv_.wait(lk, [&] {
        return stop_ || HasWorkLocked() || HasDueCallbacksLocked();
      });
    }
    if (stop_) break;
    // Dispatch anything a synchronous flush already made durable before
    // (and regardless of) running a batch of our own.
    if (HasDueCallbacksLocked()) {
      DispatchDue(lk, /*final_pass=*/false, Status::Ok());
      if (stop_) break;
    }
    if (!error_.ok()) {
      // The device already failed once; durability promises are off. Park
      // until shutdown instead of hammering a broken device — but tell
      // every registered durability closure first.
      DispatchDue(lk, /*final_pass=*/false, error_);
      work_cv_.wait(lk, [&] { return stop_; });
      break;
    }
    uint64_t target = requested_;
    if (idle_flush_interval_us_ > 0) {
      // Periodic mode also drains unsubmitted appends (background flush).
      // The target is the buffer's completion watermark, not its claim
      // frontier: flushing to head would park the daemon behind in-flight
      // copiers in an out-of-order-completion buffer.
      target = std::max(target, buffer_->completed_lsn().value);
    }
    if (buffer_->durable_lsn().value >= target) continue;
    uint64_t batched = pending_submits_;
    pending_submits_ = 0;
    lk.unlock();
    // One device flush covers every target submitted so far — the group
    // commit: `batched` commit requests amortize this single call.
    Status st = buffer_->FlushTo(Lsn{target});
    lk.lock();
    // Pressure nudge: this flush may have filled the log past the recycle
    // threshold — wake the cleaner/checkpoint services (cv notifies, no
    // busy-wait) so the low-water mark advances and segments can be freed.
    // Invoked UNDER the lock so SetPostBatchHook(nullptr) synchronizes
    // with any in-flight invocation (the owner clears it at teardown,
    // before the structures the hook pokes are destroyed).
    if (st.ok() && post_batch_hook_) post_batch_hook_();
    if (st.ok()) {
      stats_->group_batches.fetch_add(1, std::memory_order_relaxed);
      stats_->group_batch_txns.fetch_add(batched, std::memory_order_relaxed);
    } else if (error_.ok()) {
      error_ = st;  // A failed batch acknowledged nothing: only the error.
    }
    durable_cv_.notify_all();
    // Dispatch the durability callbacks this batch satisfied (or, on a
    // failed batch, poison every pending one) without holding the lock.
    DispatchDue(lk, /*final_pass=*/false, Status::Ok());
  }
  // Final drain: a clean shutdown must not lose submitted commits. An
  // abandoned pipeline (simulated crash) skips this on purpose.
  if (!abandoned_ && error_.ok() &&
      requested_ > buffer_->durable_lsn().value) {
    uint64_t target = requested_;
    lk.unlock();
    Status st = buffer_->FlushTo(Lsn{target});
    lk.lock();
    if (!st.ok() && error_.ok()) error_ = st;
  }
  daemon_exited_ = true;
  durable_cv_.notify_all();
  // Whatever remains fires now: Ok if the final drain covered it, the
  // sticky/stop error otherwise — a registered closure never silently
  // vanishes.
  DispatchDue(lk, /*final_pass=*/true,
              !error_.ok()
                  ? error_
                  : Status::Internal(
                        "flush pipeline stopped before LSN became durable"));
}

}  // namespace shoremt::log
