#include "log/flush_pipeline.h"

#include <algorithm>
#include <chrono>

#include "log/log_buffer.h"
#include "log/log_manager.h"

namespace shoremt::log {

FlushPipeline::FlushPipeline(LogBuffer* buffer, LogStats* stats,
                             uint64_t idle_flush_interval_us)
    : buffer_(buffer),
      stats_(stats),
      idle_flush_interval_us_(idle_flush_interval_us),
      daemon_([this] { DaemonLoop(); }) {}

FlushPipeline::~FlushPipeline() {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (daemon_.joinable()) daemon_.join();
}

bool FlushPipeline::IsDurable(Lsn upto) const {
  return buffer_->durable_lsn() >= upto;
}

Status FlushPipeline::error() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return error_;
}

void FlushPipeline::Abandon() {
  std::lock_guard<std::mutex> guard(mutex_);
  abandoned_ = true;
}

void FlushPipeline::Submit(Lsn upto) {
  if (upto.IsNull() || IsDurable(upto)) return;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    ++pending_submits_;
    requested_ = std::max(requested_, upto.value);
  }
  work_cv_.notify_one();
}

Status FlushPipeline::Wait(Lsn upto) {
  if (upto.IsNull()) return Status::Ok();
  if (IsDurable(upto)) {
    stats_->waits_avoided.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  std::unique_lock<std::mutex> lk(mutex_);
  if (upto.value > requested_) {
    // Nobody submitted this target yet (Wait without a prior Submit):
    // register it ourselves so the daemon has a reason to run.
    ++pending_submits_;
    requested_ = upto.value;
    work_cv_.notify_one();
  }
  stats_->flush_waits.fetch_add(1, std::memory_order_relaxed);
  // Bounded wait, re-checking the predicate: the durable horizon can also
  // advance through paths that do not notify this cv (a synchronous
  // FlushTo on another thread, an appender's ring-full self-drain), and
  // the daemon goes back to sleep without notifying when it wakes to find
  // its work already done. NotifyDurableAdvanced() keeps the common case
  // prompt; the timeout guarantees liveness against every missed-notify
  // interleaving.
  while (!IsDurable(upto) && error_.ok() && !daemon_exited_) {
    durable_cv_.wait_for(lk, std::chrono::milliseconds(1));
  }
  if (IsDurable(upto)) return Status::Ok();
  if (!error_.ok()) return error_;
  return Status::Internal("flush pipeline stopped before LSN became durable");
}

bool FlushPipeline::HasWorkLocked() const {
  return requested_ > buffer_->durable_lsn().value;
}

void FlushPipeline::DaemonLoop() {
  std::unique_lock<std::mutex> lk(mutex_);
  while (!stop_) {
    if (idle_flush_interval_us_ > 0) {
      work_cv_.wait_for(lk, std::chrono::microseconds(idle_flush_interval_us_),
                        [&] { return stop_ || HasWorkLocked(); });
    } else {
      work_cv_.wait(lk, [&] { return stop_ || HasWorkLocked(); });
    }
    if (stop_) break;
    if (!error_.ok()) {
      // The device already failed once; durability promises are off. Park
      // until shutdown instead of hammering a broken device.
      work_cv_.wait(lk, [&] { return stop_; });
      break;
    }
    uint64_t target = requested_;
    if (idle_flush_interval_us_ > 0) {
      // Periodic mode also drains unsubmitted appends (background flush).
      target = std::max(target, buffer_->next_lsn().value);
    }
    if (buffer_->durable_lsn().value >= target) continue;
    uint64_t batched = pending_submits_;
    pending_submits_ = 0;
    lk.unlock();
    // One device flush covers every target submitted so far — the group
    // commit: `batched` commit requests amortize this single call.
    Status st = buffer_->FlushTo(Lsn{target});
    lk.lock();
    if (st.ok()) {
      stats_->group_batches.fetch_add(1, std::memory_order_relaxed);
      stats_->group_batch_txns.fetch_add(batched, std::memory_order_relaxed);
    } else if (error_.ok()) {
      error_ = st;  // A failed batch acknowledged nothing: only the error.
    }
    durable_cv_.notify_all();
  }
  // Final drain: a clean shutdown must not lose submitted commits. An
  // abandoned pipeline (simulated crash) skips this on purpose.
  if (!abandoned_ && error_.ok() &&
      requested_ > buffer_->durable_lsn().value) {
    uint64_t target = requested_;
    lk.unlock();
    Status st = buffer_->FlushTo(Lsn{target});
    lk.lock();
    if (!st.ok() && error_.ok()) error_ = st;
  }
  daemon_exited_ = true;
  durable_cv_.notify_all();
}

}  // namespace shoremt::log
