#include "log/log_storage.h"

#include <chrono>
#include <thread>

#include "common/clock.h"

namespace shoremt::log {

Status LogStorage::Append(std::span<const uint8_t> data) {
  std::span<const uint8_t> parts[1] = {data};
  return AppendV(parts);
}

Status LogStorage::AppendV(std::span<const std::span<const uint8_t>> parts) {
  if (fail_appends_.load(std::memory_order_acquire)) {
    return Status::IOError("log device failure (injected)");
  }
  flush_calls_.fetch_add(1, std::memory_order_relaxed);
  if (append_latency_ns_ > 0) {
    if (append_latency_ns_ < 50'000) {
      uint64_t until = NowNanos() + append_latency_ns_;
      while (NowNanos() < until) {
      }
    } else {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(append_latency_ns_));
    }
  }
  std::lock_guard<std::mutex> guard(mutex_);
  for (std::span<const uint8_t> part : parts) {
    bytes_.insert(bytes_.end(), part.begin(), part.end());
  }
  size_.store(bytes_.size(), std::memory_order_release);
  return Status::Ok();
}

Status LogStorage::Read(uint64_t offset, size_t len,
                        std::vector<uint8_t>* out) const {
  std::lock_guard<std::mutex> guard(mutex_);
  if (offset + len > bytes_.size()) {
    return Status::IOError("log read past durable end");
  }
  out->assign(bytes_.begin() + static_cast<long>(offset),
              bytes_.begin() + static_cast<long>(offset + len));
  return Status::Ok();
}

std::vector<uint8_t> LogStorage::Snapshot() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return bytes_;
}

}  // namespace shoremt::log
