#include "log/log_storage.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/clock.h"
#include "log/log_stats.h"

namespace shoremt::log {

Status LogStorage::Append(std::span<const uint8_t> data) {
  std::span<const uint8_t> parts[1] = {data};
  return AppendV(parts);
}

Status LogStorage::AppendV(std::span<const std::span<const uint8_t>> parts) {
  if (fail_appends_.load(std::memory_order_acquire)) {
    return Status::IOError("log device failure (injected)");
  }
  flush_calls_.fetch_add(1, std::memory_order_relaxed);
  if (append_latency_ns_ > 0) {
    if (append_latency_ns_ < 50'000) {
      uint64_t until = NowNanos() + append_latency_ns_;
      while (NowNanos() < until) {
      }
    } else {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(append_latency_ns_));
    }
  }
  std::lock_guard<std::mutex> guard(mutex_);
  uint64_t total = size_.load(std::memory_order_relaxed);
  for (std::span<const uint8_t> part : parts) {
    const uint8_t* src = part.data();
    size_t remaining = part.size();
    while (remaining > 0) {
      if (segments_.empty() ||
          segments_.back().bytes.size() == segments_.back().capacity) {
        Segment seg;
        seg.base = total;
        seg.capacity = segment_bytes_;
        seg.bytes.reserve(seg.capacity);
        segments_.push_back(std::move(seg));
        segments_allocated_.fetch_add(1, std::memory_order_relaxed);
        if (attached_stats_ != nullptr) {
          attached_stats_->segments_allocated.fetch_add(
              1, std::memory_order_relaxed);
        }
      }
      Segment& tail = segments_.back();
      size_t room = tail.capacity - tail.bytes.size();
      size_t n = std::min(room, remaining);
      tail.bytes.insert(tail.bytes.end(), src, src + n);
      src += n;
      remaining -= n;
      total += n;
    }
  }
  size_.store(total, std::memory_order_release);
  return Status::Ok();
}

Status LogStorage::CheckRangeLocked(uint64_t offset, size_t len) const {
  if (offset + len > size_.load(std::memory_order_relaxed)) {
    return Status::IOError("log read past durable end");
  }
  uint64_t first_live = segments_.empty()
                            ? size_.load(std::memory_order_relaxed)
                            : segments_.front().base;
  if (len > 0 && offset < first_live) {
    return Status::IOError("log read below recycled horizon");
  }
  return Status::Ok();
}

void LogStorage::CopyOutLocked(uint64_t offset, size_t len,
                               uint8_t* out) const {
  // Locate the first overlapped segment (segments ascend by base).
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), offset,
      [](uint64_t off, const Segment& s) { return off < s.base; });
  if (it != segments_.begin()) --it;
  while (len > 0) {
    uint64_t in_seg = offset - it->base;
    size_t n = std::min<uint64_t>(len, it->bytes.size() - in_seg);
    std::memcpy(out, it->bytes.data() + in_seg, n);
    out += n;
    offset += n;
    len -= n;
    ++it;
  }
}

Status LogStorage::Read(uint64_t offset, size_t len,
                        std::vector<uint8_t>* out) const {
  std::lock_guard<std::mutex> guard(mutex_);
  SHOREMT_RETURN_NOT_OK(CheckRangeLocked(offset, len));
  out->resize(len);
  CopyOutLocked(offset, len, out->data());
  return Status::Ok();
}

Status LogStorage::ReadFrom(uint64_t offset, std::vector<uint8_t>* out) const {
  std::lock_guard<std::mutex> guard(mutex_);
  uint64_t total = size_.load(std::memory_order_relaxed);
  size_t len = offset < total ? static_cast<size_t>(total - offset) : 0;
  SHOREMT_RETURN_NOT_OK(CheckRangeLocked(offset, len));
  out->resize(len);
  CopyOutLocked(offset, len, out->data());
  return Status::Ok();
}

std::vector<uint8_t> LogStorage::Snapshot() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<uint8_t> out;
  for (const Segment& seg : segments_) {
    out.insert(out.end(), seg.bytes.begin(), seg.bytes.end());
  }
  return out;
}

size_t LogStorage::Recycle(Lsn below) {
  if (below.IsNull()) return 0;
  std::lock_guard<std::mutex> guard(mutex_);
  uint64_t horizon = below.value - 1;
  horizon = std::min(horizon, size_.load(std::memory_order_relaxed));
  if (horizon > horizon_offset_.load(std::memory_order_relaxed)) {
    horizon_offset_.store(horizon, std::memory_order_release);
  } else {
    horizon = horizon_offset_.load(std::memory_order_relaxed);
  }
  size_t freed = 0;
  while (!segments_.empty() &&
         segments_.front().base + segments_.front().bytes.size() <= horizon &&
         segments_.front().bytes.size() == segments_.front().capacity) {
    segments_.pop_front();
    ++freed;
  }
  if (freed > 0) {
    segments_recycled_.fetch_add(freed, std::memory_order_relaxed);
    if (attached_stats_ != nullptr) {
      attached_stats_->segments_recycled.fetch_add(freed,
                                                   std::memory_order_relaxed);
    }
  }
  return freed;
}

void LogStorage::AttachStats(LogStats* stats) {
  std::lock_guard<std::mutex> guard(mutex_);
  attached_stats_ = stats;
}

}  // namespace shoremt::log
