#include "log/log_storage.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/clock.h"
#include "common/crc32c.h"
#include "io/fault_injector.h"
#include "log/log_stats.h"

namespace shoremt::log {

namespace {
/// O_DIRECT alignment for archive segment files (logical-block bound).
constexpr size_t kArchiveAlign = 4096;
}  // namespace

/// Direct-I/O segment write: O_DIRECT file, one aligned bounce buffer
/// padded to the block size, then ftruncate down to the exact byte
/// length (the manifest records it; restore reads by length). Returns
/// false when the path is unusable (open rejected O_DIRECT, allocation
/// failed) so the caller falls back to buffered stdio; `*ok` is the
/// write outcome when the path WAS usable.
bool LogStorage::WriteSegmentDirect(const std::string& path,
                                    const Segment& seg, bool* ok) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_DIRECT,
                  0644);
  if (fd < 0) return false;  // EINVAL on tmpfs etc.: buffered fallback.
  *ok = true;
  if (!seg.bytes.empty()) {
    size_t padded =
        (seg.bytes.size() + kArchiveAlign - 1) / kArchiveAlign * kArchiveAlign;
    uint8_t* buf = static_cast<uint8_t*>(
        std::aligned_alloc(kArchiveAlign, padded));
    if (buf == nullptr) {
      ::close(fd);
      ::unlink(path.c_str());
      return false;
    }
    std::memcpy(buf, seg.bytes.data(), seg.bytes.size());
    std::memset(buf + seg.bytes.size(), 0, padded - seg.bytes.size());
    size_t done = 0;
    while (done < padded) {
      ssize_t put = ::pwrite(fd, buf + done, padded - done,
                             static_cast<off_t>(done));
      if (put <= 0) {
        *ok = false;
        break;
      }
      done += static_cast<size_t>(put);
    }
    std::free(buf);
    // Trim the alignment padding so the file length equals the segment's
    // byte length (what the manifest line promises).
    if (*ok && ::ftruncate(fd, static_cast<off_t>(seg.bytes.size())) != 0) {
      *ok = false;
    }
  }
  if (::close(fd) != 0) *ok = false;
  return true;
}

Status LogStorage::Append(std::span<const uint8_t> data) {
  std::span<const uint8_t> parts[1] = {data};
  return AppendV(parts);
}

Status LogStorage::AppendV(std::span<const std::span<const uint8_t>> parts) {
  if (fail_appends_.load(std::memory_order_acquire)) {
    return Status::IOError("log device failure (injected)");
  }
  // Fault injection: the append may fail outright, or be TORN — only a
  // byte prefix of the batch reaches the device before the error, the
  // signature a power cut leaves in a real log file. The prefix is still
  // stored below (limit bytes) so recovery sees the torn tail.
  size_t limit = SIZE_MAX;
  Status injected = Status::Ok();
  if (io::FaultInjector* fi = injector_.load(std::memory_order_acquire)) {
    size_t full = 0;
    for (std::span<const uint8_t> part : parts) full += part.size();
    size_t torn = 0;
    injected = fi->PreAppend(full, &torn);
    if (!injected.ok()) {
      if (torn == 0) return injected;
      limit = torn;
    }
  }
  flush_calls_.fetch_add(1, std::memory_order_relaxed);
  if (append_latency_ns_ > 0) {
    if (append_latency_ns_ < 50'000) {
      uint64_t until = NowNanos() + append_latency_ns_;
      while (NowNanos() < until) {
      }
    } else {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(append_latency_ns_));
    }
  }
  std::lock_guard<std::mutex> guard(mutex_);
  uint64_t total = size_.load(std::memory_order_relaxed);
  size_t copied = 0;
  for (std::span<const uint8_t> part : parts) {
    const uint8_t* src = part.data();
    size_t remaining = part.size();
    if (copied + remaining > limit) remaining = limit - copied;
    while (remaining > 0) {
      if (segments_.empty() ||
          segments_.back().bytes.size() == segments_.back().capacity) {
        Segment seg;
        seg.base = total;
        seg.capacity = segment_bytes_;
        seg.bytes.reserve(seg.capacity);
        segments_.push_back(std::move(seg));
        segments_allocated_.fetch_add(1, std::memory_order_relaxed);
        if (attached_stats_ != nullptr) {
          attached_stats_->segments_allocated.fetch_add(
              1, std::memory_order_relaxed);
        }
      }
      Segment& tail = segments_.back();
      size_t room = tail.capacity - tail.bytes.size();
      size_t n = std::min(room, remaining);
      tail.bytes.insert(tail.bytes.end(), src, src + n);
      src += n;
      remaining -= n;
      total += n;
      copied += n;
    }
    if (copied >= limit) break;
  }
  size_.store(total, std::memory_order_release);
  return injected;
}

Status LogStorage::CheckRangeLocked(uint64_t offset, size_t len) const {
  if (offset + len > size_.load(std::memory_order_relaxed)) {
    return Status::IOError("log read past durable end");
  }
  uint64_t first_live = segments_.empty()
                            ? size_.load(std::memory_order_relaxed)
                            : segments_.front().base;
  if (len > 0 && offset < first_live) {
    return Status::IOError("log read below recycled horizon");
  }
  return Status::Ok();
}

void LogStorage::CopyOutLocked(uint64_t offset, size_t len,
                               uint8_t* out) const {
  // Locate the first overlapped segment (segments ascend by base).
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), offset,
      [](uint64_t off, const Segment& s) { return off < s.base; });
  if (it != segments_.begin()) --it;
  while (len > 0) {
    uint64_t in_seg = offset - it->base;
    size_t n = std::min<uint64_t>(len, it->bytes.size() - in_seg);
    std::memcpy(out, it->bytes.data() + in_seg, n);
    out += n;
    offset += n;
    len -= n;
    ++it;
  }
}

Status LogStorage::Read(uint64_t offset, size_t len,
                        std::vector<uint8_t>* out) const {
  std::lock_guard<std::mutex> guard(mutex_);
  SHOREMT_RETURN_NOT_OK(CheckRangeLocked(offset, len));
  out->resize(len);
  CopyOutLocked(offset, len, out->data());
  return Status::Ok();
}

Status LogStorage::ReadFrom(uint64_t offset, std::vector<uint8_t>* out) const {
  std::lock_guard<std::mutex> guard(mutex_);
  uint64_t total = size_.load(std::memory_order_relaxed);
  size_t len = offset < total ? static_cast<size_t>(total - offset) : 0;
  SHOREMT_RETURN_NOT_OK(CheckRangeLocked(offset, len));
  out->resize(len);
  CopyOutLocked(offset, len, out->data());
  return Status::Ok();
}

std::vector<uint8_t> LogStorage::Snapshot() const {
  std::lock_guard<std::mutex> guard(mutex_);
  std::vector<uint8_t> out;
  for (const Segment& seg : segments_) {
    out.insert(out.end(), seg.bytes.begin(), seg.bytes.end());
  }
  return out;
}

size_t LogStorage::Recycle(Lsn below) {
  if (below.IsNull()) return 0;
  std::lock_guard<std::mutex> guard(mutex_);
  uint64_t horizon = below.value - 1;
  horizon = std::min(horizon, size_.load(std::memory_order_relaxed));
  if (horizon > horizon_offset_.load(std::memory_order_relaxed)) {
    horizon_offset_.store(horizon, std::memory_order_release);
  } else {
    horizon = horizon_offset_.load(std::memory_order_relaxed);
  }
  size_t freed = 0;
  size_t archived = 0;
  while (!segments_.empty() &&
         segments_.front().base + segments_.front().bytes.size() <= horizon &&
         segments_.front().bytes.size() == segments_.front().capacity) {
    if (!archive_dir_.empty()) {
      // Archive BEFORE freeing: an archive write failure keeps the
      // segment live (the log grows but no byte is ever dropped
      // unarchived), so archive + live log always covers offset 0 on.
      if (!ArchiveSegmentLocked(segments_.front())) break;
      ++archived;
    }
    segments_.pop_front();
    ++freed;
  }
  if (freed > 0) {
    segments_recycled_.fetch_add(freed, std::memory_order_relaxed);
    segments_archived_.fetch_add(archived, std::memory_order_relaxed);
    if (attached_stats_ != nullptr) {
      attached_stats_->segments_recycled.fetch_add(freed,
                                                   std::memory_order_relaxed);
      attached_stats_->segments_archived.fetch_add(archived,
                                                   std::memory_order_relaxed);
    }
  }
  return freed;
}

bool LogStorage::ArchiveSegmentLocked(const Segment& seg) {
  char name[64];
  std::snprintf(name, sizeof(name), "seg-%020llu.log",
                static_cast<unsigned long long>(seg.base));
  std::string path = archive_dir_ + "/" + name;
  bool ok = false;
  if (archive_direct_ && WriteSegmentDirect(path, seg, &ok)) {
    // Direct path handled it (ok carries the outcome); on filesystems
    // that reject O_DIRECT, WriteSegmentDirect returns false and the
    // buffered path below runs instead.
  } else {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return false;
    ok = seg.bytes.empty() ||
         std::fwrite(seg.bytes.data(), 1, seg.bytes.size(), f) ==
             seg.bytes.size();
    ok = std::fclose(f) == 0 && ok;
  }
  if (!ok) return false;
  std::string manifest = archive_dir_ + "/MANIFEST";
  std::FILE* m = std::fopen(manifest.c_str(), "ab");
  if (m == nullptr) return false;
  // v2: the line carries the CRC32C of the segment's bytes, so a restore
  // can prove an archived file still holds what was recycled out of the
  // live log (v1 lines from older archives remain readable, unverified).
  uint32_t crc = Crc32c(seg.bytes.data(), seg.bytes.size());
  ok = std::fprintf(m, "v2 %llu %llu %llu %lu %s\n",
                    static_cast<unsigned long long>(seg.base),
                    static_cast<unsigned long long>(seg.bytes.size()),
                    static_cast<unsigned long long>(seg.capacity),
                    static_cast<unsigned long>(crc), name) > 0;
  ok = std::fclose(m) == 0 && ok;
  return ok;
}

void LogStorage::set_archive_dir(std::string dir) {
  std::lock_guard<std::mutex> guard(mutex_);
  archive_dir_ = std::move(dir);
}

std::string LogStorage::archive_dir() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return archive_dir_;
}

void LogStorage::set_archive_direct_io(bool on) {
  std::lock_guard<std::mutex> guard(mutex_);
  archive_direct_ = on;
}

LogStorage::SegmentInfo LogStorage::SegmentInfoAt(uint64_t offset) const {
  std::lock_guard<std::mutex> guard(mutex_);
  SegmentInfo info;
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), offset,
      [](uint64_t off, const Segment& s) { return off < s.base; });
  if (it == segments_.begin()) return info;  // Recycled (or empty log).
  --it;
  if (offset >= it->base + it->bytes.size()) return info;  // Past the tail.
  info.base = it->base;
  info.capacity = it->capacity;
  info.filled = it->bytes.size();
  info.found = true;
  return info;
}

Status LogStorage::TruncateTo(uint64_t offset) {
  std::lock_guard<std::mutex> guard(mutex_);
  uint64_t total = size_.load(std::memory_order_relaxed);
  if (offset >= total) return Status::Ok();
  uint64_t first_live =
      segments_.empty() ? total : segments_.front().base;
  if (offset < first_live) {
    return Status::IOError("log truncate below recycled horizon");
  }
  while (!segments_.empty() && segments_.back().base >= offset) {
    segments_.pop_back();
  }
  if (!segments_.empty()) {
    Segment& tail = segments_.back();
    tail.bytes.resize(static_cast<size_t>(offset - tail.base));
  }
  size_.store(offset, std::memory_order_release);
  return Status::Ok();
}

void LogStorage::AttachStats(LogStats* stats) {
  std::lock_guard<std::mutex> guard(mutex_);
  attached_stats_ = stats;
}

}  // namespace shoremt::log
