#ifndef SHOREMT_LOG_FLUSH_PIPELINE_H_
#define SHOREMT_LOG_FLUSH_PIPELINE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sync/bounded_executor.h"

namespace shoremt::log {

class LogBuffer;
struct LogStats;

/// The group-commit flush daemon behind asynchronous durability: commit
/// paths *submit* a target LSN and return immediately; one daemon thread
/// batches all outstanding targets into a single device flush and wakes
/// every waiter whose LSN the advancing durable horizon has passed. This
/// replaces the old sleep-polling flush daemon — the daemon sleeps on a
/// condition variable and runs only when there is submitted work (plus an
/// optional idle interval for background flushing of unsubmitted bytes).
///
/// Error handling: a failed device flush is recorded as a *sticky* error;
/// every current and future Wait() reports it (durability can no longer be
/// promised once the device misbehaved), and the daemon parks rather than
/// grind a dead device. On destruction the pipeline drains every submitted
/// target with a final flush before joining — unless Abandon() was called
/// (crash simulation), in which case submitted-but-unflushed commits are
/// deliberately lost, exactly like a power failure.
class FlushPipeline {
 public:
  /// `idle_flush_interval_us` > 0 additionally wakes the daemon on that
  /// period to flush *everything* appended so far (the old flush_daemon
  /// behavior); 0 means purely submission-driven. Due OnDurable closures
  /// are dispatched through a BoundedExecutor of `callback_threads`
  /// workers with a `callback_queue`-deep queue, so a slow closure delays
  /// other closures, never the flush daemon's next group-commit batch.
  /// With the default single worker, closures keep firing in ascending-LSN
  /// order; more workers trade that order away for callback parallelism.
  FlushPipeline(LogBuffer* buffer, LogStats* stats,
                uint64_t idle_flush_interval_us, size_t callback_threads = 1,
                size_t callback_queue = 64);
  ~FlushPipeline();  ///< Final drain of submitted targets, then join.

  FlushPipeline(const FlushPipeline&) = delete;
  FlushPipeline& operator=(const FlushPipeline&) = delete;

  /// Registers `upto` as a durability target and wakes the daemon; returns
  /// immediately. Null / already-durable targets are no-ops.
  void Submit(Lsn upto);

  /// Blocks until everything below `upto` is durable, the pipeline hits a
  /// sticky error, or it shuts down. Submits `upto` itself if nobody has.
  Status Wait(Lsn upto);

  /// Registers a closure the daemon invokes (exactly once, from its own
  /// thread) when the durable LSN passes `upto`; fires inline — before
  /// returning — if `upto` is already durable. Registration submits the
  /// target like Submit(), so no companion flush request is needed. A
  /// sticky pipeline error fires every pending closure with that error;
  /// closures still pending at shutdown fire after the final drain (Ok if
  /// the drain made them durable, the stop/drain error otherwise).
  /// Closures must not block; they may re-enter the pipeline (e.g.
  /// register another callback).
  void OnDurable(Lsn upto, std::function<void(Status)> fn);

  /// True once every byte below `upto` has reached the log device.
  bool IsDurable(Lsn upto) const;

  /// The sticky error (Ok while the pipeline is healthy).
  Status error() const;

  /// Wakes parked waiters to re-check the durable horizon and dispatches
  /// any durability callbacks the new horizon satisfies. Called by the
  /// synchronous flush paths (LogManager::FlushTo/FlushAll), which advance
  /// durability without going through the daemon.
  void NotifyDurableAdvanced();

  /// Crash simulation: the destructor skips the final drain flush, so
  /// submitted-but-unflushed commit records are lost like on power-down.
  void Abandon();

  /// Registers a hook the daemon invokes after every flush it performs
  /// (submission batches AND idle periodic flushes). The log manager
  /// wires a segment-pressure check through it: when the flush just
  /// filled the log past the recycle threshold, the hook wakes the page
  /// cleaner / checkpoint daemon instead of anyone busy-waiting on
  /// segment counts. Invoked under the pipeline's mutex so that
  /// SetPostBatchHook(nullptr) at teardown synchronizes with in-flight
  /// invocations; the hook must therefore be short, must not block, and
  /// must not re-enter the pipeline (cv notifies are fine).
  void SetPostBatchHook(std::function<void()> hook);

 private:
  using Callback = std::function<void(Status)>;

  void DaemonLoop();
  bool HasWorkLocked() const;
  /// True when the durable horizon has passed the lowest registered
  /// callback target (the daemon has dispatch work even with no flush
  /// work — a synchronous FlushTo advanced durability behind its back).
  bool HasDueCallbacksLocked() const;
  /// Moves every callback the durable horizon (or a sticky error) has
  /// satisfied out of callbacks_; the caller invokes them without the
  /// lock. `final_pass` drains everything (shutdown), mapping still-
  /// undurable targets to `fallback`.
  std::vector<std::pair<Callback, Status>> CollectDueCallbacksLocked(
      bool final_pass, const Status& fallback);
  /// Collects due callbacks, drops the lock to hand the whole batch to the
  /// callback executor as one task, re-acquires. The only dispatch entry
  /// point the daemon uses, so every path (batch, error park, shutdown)
  /// shares one unlock discipline. Submitting can block on executor
  /// backpressure (queue full) but never on a callback body.
  void DispatchDue(std::unique_lock<std::mutex>& lk, bool final_pass,
                   const Status& fallback);

  LogBuffer* buffer_;
  LogStats* stats_;
  const uint64_t idle_flush_interval_us_;
  /// Runs OnDurable closure batches off the daemon thread. Destroyed
  /// (drained) in the destructor after the daemon joins, so the final-pass
  /// batch still runs.
  std::unique_ptr<sync::BoundedExecutor> callback_executor_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;     ///< Daemon sleeps here.
  std::condition_variable durable_cv_;  ///< Waiters sleep here.
  uint64_t requested_ = 0;       ///< Highest submitted target LSN value.
  uint64_t pending_submits_ = 0; ///< Submits not yet covered by a batch.
  /// Durability callbacks keyed by target LSN, fired as the durable
  /// horizon passes them (ascending-LSN dispatch order).
  std::multimap<uint64_t, Callback> callbacks_;
  /// Invoked under mutex_ after each daemon flush; see SetPostBatchHook.
  std::function<void()> post_batch_hook_;
  Status error_;                 ///< Sticky; set by the first failed flush.
  bool stop_ = false;
  bool abandoned_ = false;
  bool daemon_exited_ = false;
  std::thread daemon_;
};

}  // namespace shoremt::log

#endif  // SHOREMT_LOG_FLUSH_PIPELINE_H_
