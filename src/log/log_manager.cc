#include "log/log_manager.h"

#include <chrono>
#include <cstring>

namespace shoremt::log {

LogManager::LogManager(LogStorage* storage, LogOptions options)
    : storage_(storage),
      options_(options),
      buffer_(MakeLogBuffer(options.buffer_kind, storage,
                            options.buffer_capacity)) {
  if (options_.flush_daemon) {
    daemon_ = std::thread([this] {
      while (!stop_daemon_.load(std::memory_order_acquire)) {
        (void)buffer_->FlushTo(buffer_->next_lsn());
        std::this_thread::sleep_for(
            std::chrono::microseconds(options_.flush_interval_us));
      }
    });
  }
}

LogManager::~LogManager() {
  stop_daemon_.store(true, std::memory_order_release);
  if (daemon_.joinable()) daemon_.join();
}

Result<Appended> LogManager::Append(const LogRecord& rec) {
  thread_local std::vector<uint8_t> scratch;
  SerializeLogRecord(rec, &scratch);
  stats_.records.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes.fetch_add(scratch.size(), std::memory_order_relaxed);
  return buffer_->Append(scratch, /*compensation=*/false);
}

Result<Appended> LogManager::AppendClr(const LogRecord& rec) {
  thread_local std::vector<uint8_t> scratch;
  SerializeLogRecord(rec, &scratch);
  stats_.records.fetch_add(1, std::memory_order_relaxed);
  stats_.compensations.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes.fetch_add(scratch.size(), std::memory_order_relaxed);
  return buffer_->Append(scratch, /*compensation=*/true);
}

Status LogManager::FlushTo(Lsn upto) {
  if (buffer_->durable_lsn() >= upto) return Status::Ok();
  stats_.flush_waits.fetch_add(1, std::memory_order_relaxed);
  return buffer_->FlushTo(upto);
}

Status LogManager::FlushAll() { return buffer_->FlushTo(buffer_->next_lsn()); }

Result<LogRecord> LogManager::ReadRecord(Lsn lsn) const {
  if (lsn.IsNull()) return Status::InvalidArgument("null LSN");
  uint64_t offset = lsn.value - 1;
  // Read the length prefix, then the full record.
  std::vector<uint8_t> len_bytes;
  SHOREMT_RETURN_NOT_OK(storage_->Read(offset, 4, &len_bytes));
  uint32_t total_len;
  std::memcpy(&total_len, len_bytes.data(), 4);
  std::vector<uint8_t> bytes;
  SHOREMT_RETURN_NOT_OK(storage_->Read(offset, total_len, &bytes));
  LogRecord rec;
  size_t consumed;
  SHOREMT_RETURN_NOT_OK(DeserializeLogRecord(bytes, &rec, &consumed));
  rec.lsn = lsn;
  return rec;
}

Status LogManager::Scan(
    const std::function<Status(const LogRecord&, Lsn end)>& fn,
    Lsn from) const {
  std::vector<uint8_t> snapshot = storage_->Snapshot();
  uint64_t offset = from.IsNull() ? 0 : from.value - 1;
  while (offset + 4 <= snapshot.size()) {
    LogRecord rec;
    size_t consumed;
    std::span<const uint8_t> rest(snapshot.data() + offset,
                                  snapshot.size() - offset);
    Status st = DeserializeLogRecord(rest, &rec, &consumed);
    if (!st.ok()) {
      // A torn tail (record length beyond durable bytes) ends the scan;
      // anything unreadable here was not durably written.
      return Status::Ok();
    }
    rec.lsn = Lsn{offset + 1};
    SHOREMT_RETURN_NOT_OK(fn(rec, Lsn{offset + consumed + 1}));
    offset += consumed;
  }
  return Status::Ok();
}

}  // namespace shoremt::log
