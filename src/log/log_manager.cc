#include "log/log_manager.h"

#include <algorithm>
#include <cstring>

#include "log/flush_pipeline.h"

namespace shoremt::log {

LogManager::LogManager(LogStorage* storage, LogOptions options)
    : storage_(storage), options_(options) {
  // Assigned in the body so stats_ is fully constructed before the buffer
  // (which publishes consolidation counters into it) exists.
  buffer_ = MakeLogBuffer(options_.buffer_kind, storage_,
                          options_.buffer_capacity, &stats_,
                          options_.carray_force_consolidation);
  pipeline_ = std::make_unique<FlushPipeline>(
      buffer_.get(), &stats_,
      options_.flush_daemon ? options_.flush_interval_us : 0);
}

LogManager::~LogManager() = default;

Result<Appended> LogManager::Append(const LogRecord& rec) {
  thread_local std::vector<uint8_t> scratch;
  SerializeLogRecord(rec, &scratch);
  stats_.records.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes.fetch_add(scratch.size(), std::memory_order_relaxed);
  return buffer_->Append(scratch, /*compensation=*/false);
}

Result<Appended> LogManager::AppendClr(const LogRecord& rec) {
  thread_local std::vector<uint8_t> scratch;
  SerializeLogRecord(rec, &scratch);
  stats_.records.fetch_add(1, std::memory_order_relaxed);
  stats_.compensations.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes.fetch_add(scratch.size(), std::memory_order_relaxed);
  return buffer_->Append(scratch, /*compensation=*/true);
}

Status LogManager::FlushTo(Lsn upto) {
  if (buffer_->durable_lsn() >= upto) return Status::Ok();
  stats_.flush_waits.fetch_add(1, std::memory_order_relaxed);
  Status st = buffer_->FlushTo(upto);
  // This thread advanced durability behind the daemon's back: waiters
  // parked in the pipeline may now be satisfied.
  if (st.ok()) pipeline_->NotifyDurableAdvanced();
  return st;
}

Status LogManager::FlushAll() {
  Status st = buffer_->FlushTo(buffer_->next_lsn());
  if (st.ok()) pipeline_->NotifyDurableAdvanced();
  return st;
}

void LogManager::SubmitFlush(Lsn upto) { pipeline_->Submit(upto); }

Status LogManager::WaitDurable(Lsn upto) { return pipeline_->Wait(upto); }

void LogManager::OnDurable(Lsn upto, std::function<void(Status)> fn) {
  pipeline_->OnDurable(upto, std::move(fn));
}

bool LogManager::IsDurable(Lsn upto) const {
  return buffer_->durable_lsn() >= upto;
}

Status LogManager::pipeline_error() const { return pipeline_->error(); }

void LogManager::Abandon() { pipeline_->Abandon(); }

Result<LogRecord> LogManager::ReadRecord(Lsn lsn) const {
  if (lsn.IsNull()) return Status::InvalidArgument("null LSN");
  uint64_t offset = lsn.value - 1;
  uint64_t durable = storage_->size();
  if (offset + 4 > durable) {
    return Status::Corruption("log read beyond durable end");
  }
  // One storage read covers the whole record in the common case; the
  // length prefix is validated against the record format and the durable
  // size before it is trusted, so a torn or garbage prefix surfaces as
  // Corruption instead of a bogus (or gigantic) read.
  constexpr size_t kReadAhead = 4096;
  std::vector<uint8_t> bytes;
  SHOREMT_RETURN_NOT_OK(storage_->Read(
      offset, static_cast<size_t>(std::min<uint64_t>(durable - offset,
                                                     kReadAhead)),
      &bytes));
  uint32_t total_len;
  std::memcpy(&total_len, bytes.data(), 4);
  if (total_len < kLogRecordHeaderSize || offset + total_len > durable) {
    return Status::Corruption("bad log record length prefix");
  }
  if (total_len > bytes.size()) {
    // Rare oversized record: one more exact read.
    SHOREMT_RETURN_NOT_OK(storage_->Read(offset, total_len, &bytes));
  }
  LogRecord rec;
  size_t consumed;
  SHOREMT_RETURN_NOT_OK(DeserializeLogRecord(bytes, &rec, &consumed));
  rec.lsn = lsn;
  return rec;
}

Status LogManager::Scan(
    const std::function<Status(const LogRecord&, Lsn end)>& fn,
    Lsn from) const {
  std::vector<uint8_t> snapshot = storage_->Snapshot();
  uint64_t offset = from.IsNull() ? 0 : from.value - 1;
  while (offset + 4 <= snapshot.size()) {
    LogRecord rec;
    size_t consumed;
    std::span<const uint8_t> rest(snapshot.data() + offset,
                                  snapshot.size() - offset);
    Status st = DeserializeLogRecord(rest, &rec, &consumed);
    if (!st.ok()) {
      // A torn tail (record length beyond durable bytes) ends the scan;
      // anything unreadable here was not durably written.
      return Status::Ok();
    }
    rec.lsn = Lsn{offset + 1};
    SHOREMT_RETURN_NOT_OK(fn(rec, Lsn{offset + consumed + 1}));
    offset += consumed;
  }
  return Status::Ok();
}

}  // namespace shoremt::log
