#include "log/log_manager.h"

#include <algorithm>
#include <cstring>

#include "log/flush_pipeline.h"

namespace shoremt::log {

LogManager::LogManager(LogStorage* storage, LogOptions options)
    : storage_(storage), options_(options) {
  if (options_.segment_bytes > 0) {
    storage_->set_segment_bytes(options_.segment_bytes);
  }
  if (!options_.archive_dir.empty()) {
    storage_->set_archive_dir(options_.archive_dir);
    storage_->set_archive_direct_io(options_.direct_io);
  }
  // Assigned in the body so stats_ is fully constructed before the buffer
  // (which publishes consolidation counters into it) exists; same for the
  // storage's segment-counter mirror.
  storage_->AttachStats(&stats_);
  buffer_ = MakeLogBuffer(options_.buffer_kind, storage_,
                          options_.buffer_capacity, &stats_,
                          options_.carray_force_consolidation);
  pipeline_ = std::make_unique<FlushPipeline>(
      buffer_.get(), &stats_,
      options_.flush_daemon ? options_.flush_interval_us : 0,
      options_.durable_callback_threads, options_.durable_callback_queue);
}

LogManager::~LogManager() {
  // The pipeline (whose drain can allocate segments) must stop before the
  // stats mirror detaches; the storage outlives this manager.
  pipeline_.reset();
  storage_->AttachStats(nullptr);
}

size_t LogManager::Recycle(Lsn below) {
  if (below.IsNull()) return 0;
  Lsn durable = buffer_->durable_lsn();
  if (below > durable) below = durable;
  return storage_->Recycle(below);
}

void LogManager::SetPressureHook(std::function<void()> hook) {
  if (!hook) {
    pipeline_->SetPostBatchHook(nullptr);
    return;
  }
  pipeline_->SetPostBatchHook([this, hook = std::move(hook)] {
    if (SegmentPressure()) hook();
  });
}

Result<Appended> LogManager::Append(const LogRecord& rec) {
  thread_local std::vector<uint8_t> scratch;
  SerializeLogRecord(rec, &scratch);
  stats_.records.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes.fetch_add(scratch.size(), std::memory_order_relaxed);
  return buffer_->Append(scratch, /*compensation=*/false);
}

Result<Appended> LogManager::AppendClr(const LogRecord& rec) {
  thread_local std::vector<uint8_t> scratch;
  SerializeLogRecord(rec, &scratch);
  stats_.records.fetch_add(1, std::memory_order_relaxed);
  stats_.compensations.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes.fetch_add(scratch.size(), std::memory_order_relaxed);
  return buffer_->Append(scratch, /*compensation=*/true);
}

Status LogManager::FlushTo(Lsn upto) {
  if (buffer_->durable_lsn() >= upto) return Status::Ok();
  stats_.flush_waits.fetch_add(1, std::memory_order_relaxed);
  Status st = buffer_->FlushTo(upto);
  // This thread advanced durability behind the daemon's back: waiters
  // parked in the pipeline may now be satisfied.
  if (st.ok()) pipeline_->NotifyDurableAdvanced();
  return st;
}

Status LogManager::FlushAll() {
  Status st = buffer_->FlushTo(buffer_->next_lsn());
  if (st.ok()) pipeline_->NotifyDurableAdvanced();
  return st;
}

void LogManager::SubmitFlush(Lsn upto) { pipeline_->Submit(upto); }

Status LogManager::WaitDurable(Lsn upto) { return pipeline_->Wait(upto); }

void LogManager::OnDurable(Lsn upto, std::function<void(Status)> fn) {
  pipeline_->OnDurable(upto, std::move(fn));
}

bool LogManager::IsDurable(Lsn upto) const {
  return buffer_->durable_lsn() >= upto;
}

Status LogManager::pipeline_error() const { return pipeline_->error(); }

void LogManager::Abandon() { pipeline_->Abandon(); }

Result<LogRecord> LogManager::ReadRecord(Lsn lsn) const {
  if (lsn.IsNull()) return Status::InvalidArgument("null LSN");
  uint64_t offset = lsn.value - 1;
  uint64_t durable = storage_->size();
  if (offset + 4 > durable) {
    return Status::Corruption("log read beyond durable end");
  }
  // One storage read covers the whole record in the common case; the
  // length prefix is validated against the record format and the durable
  // size before it is trusted, so a torn or garbage prefix surfaces as
  // Corruption instead of a bogus (or gigantic) read.
  constexpr size_t kReadAhead = 4096;
  std::vector<uint8_t> bytes;
  SHOREMT_RETURN_NOT_OK(storage_->Read(
      offset, static_cast<size_t>(std::min<uint64_t>(durable - offset,
                                                     kReadAhead)),
      &bytes));
  uint32_t total_len;
  std::memcpy(&total_len, bytes.data(), 4);
  if (total_len < kLogRecordHeaderSize + kLogRecordCrcSize ||
      offset + total_len > durable) {
    return Status::Corruption("bad log record length prefix");
  }
  if (total_len > bytes.size()) {
    // Rare oversized record: one more exact read.
    SHOREMT_RETURN_NOT_OK(storage_->Read(offset, total_len, &bytes));
  }
  LogRecord rec;
  size_t consumed;
  Status st = DeserializeLogRecord(bytes, &rec, &consumed);
  if (!st.ok()) {
    return Status::Corruption(st.message() + " at LSN " +
                              std::to_string(lsn.value));
  }
  rec.lsn = lsn;
  return rec;
}

Status LogManager::Scan(
    const std::function<Status(const LogRecord&, Lsn end)>& fn,
    Lsn from) const {
  // Clamp to the reclamation horizon: bytes below it may be recycled, and
  // the horizon is always a record boundary (it is an LSN a checkpoint
  // computed), so the scan stays aligned.
  uint64_t offset = from.IsNull() ? 0 : from.value - 1;
  offset = std::max(offset, storage_->reclaim_horizon().value - 1);
  std::vector<uint8_t> live;
  SHOREMT_RETURN_NOT_OK(storage_->ReadFrom(offset, &live));
  size_t pos = 0;
  while (pos + 4 <= live.size()) {
    uint32_t total_len;
    std::memcpy(&total_len, live.data() + pos, 4);
    if (total_len < kLogRecordHeaderSize + kLogRecordCrcSize) {
      // A durable length prefix can never be this small: bytes below the
      // durable end were written whole, so this is media damage, not a
      // torn tail.
      return Status::Corruption("bad log record length prefix at LSN " +
                                std::to_string(offset + pos + 1));
    }
    if (pos + total_len > live.size()) {
      // Torn tail: the record extends past the durable bytes — its append
      // never completed, so the scan (and the log) ends here.
      return Status::Ok();
    }
    LogRecord rec;
    size_t consumed;
    std::span<const uint8_t> rest(live.data() + pos, live.size() - pos);
    Status st = DeserializeLogRecord(rest, &rec, &consumed);
    if (!st.ok()) {
      // Fully contained but failing its CRC / format check: surface it.
      // Unlike a torn tail, these bytes WERE durably written and are now
      // wrong — ending the scan silently would drop committed work.
      return Status::Corruption(st.message() + " at LSN " +
                                std::to_string(offset + pos + 1));
    }
    rec.lsn = Lsn{offset + pos + 1};
    SHOREMT_RETURN_NOT_OK(fn(rec, Lsn{offset + pos + consumed + 1}));
    pos += consumed;
  }
  return Status::Ok();
}

}  // namespace shoremt::log
