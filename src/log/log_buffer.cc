#include "log/log_buffer.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <thread>

#include "log/log_manager.h"
#include "sync/backoff.h"

namespace shoremt::log {

namespace {

/// Sink for buffers constructed without a LogStats (direct MakeLogBuffer
/// callers in tests/benches); keeps the hot path branch-free.
LogStats* EnsureStats(LogStats* stats) {
  static LogStats sink;
  return stats != nullptr ? stats : &sink;
}

/// Zero-copy drain shared by the ring buffers: hands the live ring
/// segment(s) covering [storage->size(), target) straight to the device
/// as one gather append — no scratch staging copy. Safe because claims
/// are bounded by durable + ring_size: no appender can overwrite a ring
/// position whose byte is not yet durable, and durability only advances
/// when this very call returns.
Status GatherDrain(LogStorage* storage, const uint8_t* ring, size_t ring_size,
                   uint64_t target) {
  uint64_t from = storage->size();
  if (target <= from) return Status::Ok();
  size_t len = target - from;
  size_t pos = from % ring_size;
  size_t first = std::min(len, ring_size - pos);
  std::array<std::span<const uint8_t>, 2> parts = {
      std::span<const uint8_t>(ring + pos, first),
      std::span<const uint8_t>(ring, len - first)};
  return storage->AppendV(
      {parts.data(), len > first ? size_t{2} : size_t{1}});
}

// -------------------------------------------------------------- kMutex ----

/// Original Shore's log buffer: one mutex over everything, non-circular
/// buffer, synchronous flush when full, and a daemon-wakeup mutex poked on
/// every insert (§6.2.4: "log inserts occasionally acquire a blocking
/// mutex in order to wake checkpoint and flush threads").
class MutexLogBuffer : public LogBuffer {
 public:
  MutexLogBuffer(LogStorage* storage, size_t capacity)
      : LogBuffer(storage), buffer_(capacity) {
    base_ = storage->size();
  }

  Result<Appended> Append(std::span<const uint8_t> rec,
                          bool compensation) override {
    std::lock_guard<std::mutex> guard(mutex_);
    if (rec.size() > buffer_.size()) {
      return Status::InvalidArgument("record larger than log buffer");
    }
    if (head_ + rec.size() > buffer_.size()) {
      SHOREMT_RETURN_NOT_OK(FlushLocked());  // Stalls this and all inserters.
    }
    std::memcpy(buffer_.data() + head_, rec.data(), rec.size());
    uint64_t start = base_ + head_;
    head_ += rec.size();
    {
      // Daemon wakeup on the insert critical path (baseline bottleneck).
      std::lock_guard<std::mutex> wake(daemon_mutex_);
      ++daemon_pokes_;
    }
    return Appended{Lsn{start + 1}, Lsn{start + rec.size() + 1}};
  }

  Status FlushTo(Lsn upto) override {
    std::lock_guard<std::mutex> guard(mutex_);
    if (durable_lsn() >= upto) return Status::Ok();
    return FlushLocked();
  }

  Lsn next_lsn() const override {
    std::lock_guard<std::mutex> guard(mutex_);
    return Lsn{base_ + head_ + 1};
  }

 private:
  Status FlushLocked() {
    if (head_ == 0) return Status::Ok();
    SHOREMT_RETURN_NOT_OK(
        storage_->Append({buffer_.data(), head_}));
    base_ += head_;
    head_ = 0;
    return Status::Ok();
  }

  mutable std::mutex mutex_;
  std::mutex daemon_mutex_;
  uint64_t daemon_pokes_ = 0;
  std::vector<uint8_t> buffer_;
  uint64_t base_ = 0;  ///< Log-space offset of buffer_[0].
  size_t head_ = 0;    ///< Bytes used in buffer_.
};

// ---------------------------------------------------------- kDecoupled ----

/// Circular buffer with insert and flush decoupled (§6.2.2 problem 2).
/// Inserts claim + copy under a light-weight queueing mutex; flushing
/// drains [durable, head) under its own blocking mutex so a slow flush no
/// longer stalls inserts (unless the ring truly fills).
class DecoupledLogBuffer : public LogBuffer {
 public:
  DecoupledLogBuffer(LogStorage* storage, size_t capacity)
      : LogBuffer(storage), ring_(capacity) {
    head_.store(storage->size(), std::memory_order_relaxed);
  }

  Result<Appended> Append(std::span<const uint8_t> rec,
                          bool compensation) override {
    if (rec.size() > ring_.size() / 2) {
      return Status::InvalidArgument("record larger than log buffer");
    }
    std::lock_guard<sync::HybridMutex> guard(insert_mutex_);
    uint64_t start = head_.load(std::memory_order_relaxed);
    // Cached-tail space check: only consult the (shared) durable counter
    // when the cheap check fails, then flush ourselves if truly full.
    while (start + rec.size() - storage_->size() > ring_.size()) {
      SHOREMT_RETURN_NOT_OK(FlushTo(Lsn{start + 1}));
    }
    CopyIn(start, rec);
    head_.store(start + rec.size(), std::memory_order_release);
    return Appended{Lsn{start + 1}, Lsn{start + rec.size() + 1}};
  }

  Status FlushTo(Lsn upto) override {
    std::unique_lock<std::mutex> lk(flush_mutex_);
    while (durable_lsn() < upto) {
      if (!flushing_) {
        flushing_ = true;
        uint64_t target = head_.load(std::memory_order_acquire);
        lk.unlock();
        // Group commit: flush all complete bytes straight from the ring.
        Status st = GatherDrain(storage_, ring_.data(), ring_.size(), target);
        lk.lock();
        flushing_ = false;
        flush_cv_.notify_all();
        SHOREMT_RETURN_NOT_OK(st);
      } else {
        flush_cv_.wait(lk);
      }
    }
    return Status::Ok();
  }

  Lsn next_lsn() const override {
    return Lsn{head_.load(std::memory_order_acquire) + 1};
  }

 private:
  void CopyIn(uint64_t offset, std::span<const uint8_t> rec) {
    size_t pos = offset % ring_.size();
    size_t first = std::min(rec.size(), ring_.size() - pos);
    std::memcpy(ring_.data() + pos, rec.data(), first);
    if (first < rec.size()) {
      std::memcpy(ring_.data(), rec.data() + first, rec.size() - first);
    }
  }

  std::vector<uint8_t> ring_;
  sync::HybridMutex insert_mutex_;
  std::atomic<uint64_t> head_{0};
  std::mutex flush_mutex_;
  std::condition_variable flush_cv_;
  bool flushing_ = false;
};

// ------------------------------------------------------- kConsolidated ----

/// Shore-MT's final design (§6.2.4): the insert critical section shrinks
/// to claiming buffer space — one atomic compare-and-swap, the moral
/// equivalent of the extended MCS queue handing the insert offset from
/// thread to thread. Threads then copy their records into the ring in
/// parallel and publish completion in LSN order so the flusher never
/// writes a hole.
class ConsolidatedLogBuffer : public LogBuffer {
 public:
  ConsolidatedLogBuffer(LogStorage* storage, size_t capacity)
      : LogBuffer(storage), ring_(capacity) {
    uint64_t base = storage->size();
    head_.store(base, std::memory_order_relaxed);
    completed_.store(base, std::memory_order_relaxed);
  }

  Result<Appended> Append(std::span<const uint8_t> rec,
                          bool compensation) override {
    if (rec.size() > ring_.size() / 2) {
      return Status::InvalidArgument("record larger than log buffer");
    }
    // Claim: the only serialized step.
    uint64_t start = head_.load(std::memory_order_relaxed);
    for (;;) {
      if (start + rec.size() - storage_->size() > ring_.size()) {
        // Ring full: drain everything already completed (the watermark) —
        // flushing to a 1-byte target would return after any concurrent
        // drain of a tiny prefix and loop back here, re-flushing small
        // prefixes one device call at a time.
        uint64_t watermark = completed_.load(std::memory_order_acquire);
        if (watermark > storage_->size()) {
          SHOREMT_RETURN_NOT_OK(FlushTo(Lsn{watermark + 1}));
        } else {
          // Every completed byte is durable; the ring is full of claimed
          // bytes whose copiers are still in flight. Let them run.
          std::this_thread::yield();
        }
        start = head_.load(std::memory_order_relaxed);
        continue;
      }
      if (head_.compare_exchange_weak(start, start + rec.size(),
                                      std::memory_order_acq_rel)) {
        break;
      }
    }
    // Parallel copy outside any critical section.
    size_t pos = start % ring_.size();
    size_t first = std::min(rec.size(), ring_.size() - pos);
    std::memcpy(ring_.data() + pos, rec.data(), first);
    if (first < rec.size()) {
      std::memcpy(ring_.data(), rec.data() + first, rec.size() - first);
    }
    // Ordered completion hand-off (our queue node equivalent): wait for
    // the predecessor to publish, then publish our end offset. Yield
    // aggressively: the predecessor may need this CPU to finish its copy
    // (matters on hosts with few hardware contexts).
    int spins = 0;
    while (completed_.load(std::memory_order_acquire) != start) {
      if (++spins < 16) {
        sync::CpuRelax();
      } else {
        std::this_thread::yield();
      }
    }
    completed_.store(start + rec.size(), std::memory_order_release);
    return Appended{Lsn{start + 1}, Lsn{start + rec.size() + 1}};
  }

  Status FlushTo(Lsn upto) override {
    std::unique_lock<std::mutex> lk(flush_mutex_);
    while (durable_lsn() < upto) {
      if (!flushing_) {
        flushing_ = true;
        uint64_t target = completed_.load(std::memory_order_acquire);
        lk.unlock();
        Status st = GatherDrain(storage_, ring_.data(), ring_.size(), target);
        lk.lock();
        flushing_ = false;
        flush_cv_.notify_all();
        SHOREMT_RETURN_NOT_OK(st);
        // If `upto` is still not durable the bytes were not completed yet;
        // yield so the in-flight copiers can finish, then flush again.
        if (durable_lsn() < upto) {
          lk.unlock();
          std::this_thread::yield();
          lk.lock();
        }
      } else {
        flush_cv_.wait(lk);
      }
    }
    return Status::Ok();
  }

  Lsn next_lsn() const override {
    return Lsn{head_.load(std::memory_order_acquire) + 1};
  }

  Lsn completed_lsn() override {
    return Lsn{completed_.load(std::memory_order_acquire) + 1};
  }

 private:
  std::vector<uint8_t> ring_;
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> completed_{0};
  std::mutex flush_mutex_;
  std::condition_variable flush_cv_;
  bool flushing_ = false;
};

// ------------------------------------------------------------ kCArray ----

/// Consolidation-array buffer: the claim stays a single CAS, but the two
/// remaining scalability holes of kConsolidated are closed.
///
/// 1. Contended claims CONSOLIDATE. A thread that loses the head CAS
///    joins an open group slot by CASing its size (and a member count)
///    into the slot's packed state word. The slot's leader — whoever
///    found it free — closes the group with one exchange, claims the
///    combined extent with a single head CAS, and publishes the group's
///    base offset; members compute their sub-ranges from the running size
///    they joined at and copy in parallel. N colliders now cost one CAS
///    on the shared head instead of N.
///
/// 2. Completion publishes OUT OF ORDER. The LSN space is divided into
///    fixed power-of-two regions; finishing a copy adds the byte counts
///    to the overlapped regions' monotonic completed-byte counters
///    (fetch_add, release). The flusher advances a contiguous watermark
///    region by region: a region is crossed when its counter reaches the
///    region's cumulative expected total, and a partial tail region is
///    crossed exactly when its counter equals the claimed bytes with the
///    claim frontier quiescent. A slow copier delays only the regions it
///    actually overlaps — successors never spin on a predecessor.
///
/// Counter soundness: there are 2x as many counters as ring regions, so
/// consecutive occupancies ("laps") of a ring region use different
/// counters, and a region can only be re-claimed once the durable LSN —
/// which never passes the watermark — has crossed its previous lap. The
/// counter the watermark is testing therefore never contains bytes from
/// any other lap, making both tests exact.
class CArrayLogBuffer : public LogBuffer {
 public:
  CArrayLogBuffer(LogStorage* storage, size_t capacity, LogStats* stats,
                  bool force_consolidation)
      : LogBuffer(storage),
        stats_(stats),
        force_consolidation_(force_consolidation) {
    // Power-of-two geometry: region math is mask-and-shift, and the
    // 2x-counters lap argument needs at least two regions.
    capacity_ = std::bit_ceil(std::max<size_t>(capacity, 512));
    ring_.resize(capacity_);
    region_size_ = std::max<size_t>(256, capacity_ / 64);
    region_shift_ = static_cast<unsigned>(std::countr_zero(region_size_));
    counter_count_ = 2 * (capacity_ / region_size_);
    counters_ = std::make_unique<Region[]>(counter_count_);
    region_base_.assign(counter_count_, 0);
    base_ = storage->size();
    head_.store(base_, std::memory_order_relaxed);
    watermark_.store(base_, std::memory_order_relaxed);
  }

  Result<Appended> Append(std::span<const uint8_t> rec,
                          bool compensation) override {
    if (rec.size() > capacity_ / 2) {
      return Status::InvalidArgument("record larger than log buffer");
    }
    // Fast path: uncontended solo claim, one CAS. (The force-consolidation
    // test hook skips it so the group protocol runs even on hosts where
    // this CAS never fails.)
    if (!force_consolidation_ || rec.size() > capacity_ / 8) {
      uint64_t start = head_.load(std::memory_order_relaxed);
      if (HasSpace(start, rec.size()) &&
          head_.compare_exchange_strong(start, start + rec.size(),
                                        std::memory_order_acq_rel)) {
        stats_->carray_solo_claims.fetch_add(1, std::memory_order_relaxed);
        CopyAndPublish(start, rec);
        return Appended{Lsn{start + 1}, Lsn{start + rec.size() + 1}};
      }
    }
    return AppendSlow(rec);
  }

  Status FlushTo(Lsn upto) override {
    std::unique_lock<std::mutex> lk(flush_mutex_);
    while (durable_lsn() < upto) {
      if (!flushing_) {
        flushing_ = true;
        lk.unlock();
        uint64_t target = AdvanceWatermark();
        Status st = GatherDrain(storage_, ring_.data(), capacity_, target);
        lk.lock();
        flushing_ = false;
        flush_cv_.notify_all();
        SHOREMT_RETURN_NOT_OK(st);
        if (durable_lsn() < upto) {
          // The watermark is stuck behind an in-flight copier; give it
          // the CPU, then re-advance.
          stats_->carray_watermark_stalls.fetch_add(
              1, std::memory_order_relaxed);
          lk.unlock();
          std::this_thread::yield();
          lk.lock();
        }
      } else {
        flush_cv_.wait(lk);
      }
    }
    return Status::Ok();
  }

  Lsn next_lsn() const override {
    return Lsn{head_.load(std::memory_order_acquire) + 1};
  }

  Lsn completed_lsn() override { return Lsn{AdvanceWatermark() + 1}; }

 private:
  // Slot state word: | open:1 | busy:1 | members:14 | bytes:48 |.
  static constexpr uint64_t kOpen = 1ull << 63;
  static constexpr uint64_t kBusy = 1ull << 62;  ///< Closed, claim running.
  static constexpr uint64_t kMemberUnit = 1ull << 48;
  static constexpr uint64_t kSizeMask = kMemberUnit - 1;
  static constexpr uint64_t kMaxMembers = 63;
  static constexpr uint64_t kBaseError = ~0ull;
  static constexpr int kSlots = 4;
  /// Adaptive gather-window bounds (spins a leader waits for joiners).
  static constexpr int kGatherSpinsMin = 8;
  static constexpr int kGatherSpinsInit = 64;
  static constexpr int kGatherSpinsMax = 512;

  struct alignas(64) Slot {
    std::atomic<uint64_t> state{0};  ///< 0 = free.
    std::atomic<uint64_t> base{0};   ///< 0 = pending; start+1; kBaseError.
    std::atomic<uint32_t> readers{0};
    Status error;  ///< Written by the leader before publishing kBaseError.
  };

  struct alignas(64) Region {
    std::atomic<uint64_t> completed{0};  ///< Monotonic completed bytes.
  };

  static uint64_t MembersOf(uint64_t state) {
    return (state >> 48) & 0x3fff;
  }

  bool HasSpace(uint64_t start, size_t size) const {
    return start + size - storage_->size() <= capacity_;
  }

  Result<Appended> AppendSlow(std::span<const uint8_t> rec) {
    thread_local uint64_t slot_hint =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    const uint64_t max_join = capacity_ / 8;
    const uint64_t max_group = capacity_ / 4;
    for (;;) {
      uint64_t start = head_.load(std::memory_order_relaxed);
      if (!HasSpace(start, rec.size())) {
        SHOREMT_RETURN_NOT_OK(ReclaimSpace());
        continue;
      }
      // We lost a claim CAS with space available: real contention — try
      // to consolidate with the other colliders through a slot.
      if (rec.size() <= max_join) {
        Slot& s = slots_[slot_hint++ & (kSlots - 1)];
        uint64_t st = s.state.load(std::memory_order_acquire);
        if (st == 0) {
          uint64_t open = kOpen | kMemberUnit | rec.size();
          if (s.state.compare_exchange_strong(st, open,
                                              std::memory_order_acq_rel)) {
            return LeadGroup(s, rec);
          }
        } else if ((st & kOpen) != 0 && MembersOf(st) < kMaxMembers &&
                   (st & kSizeMask) + rec.size() <= max_group) {
          if (s.state.compare_exchange_strong(
                  st, st + kMemberUnit + rec.size(),
                  std::memory_order_acq_rel)) {
            return JoinGroup(s, st & kSizeMask, rec);
          }
        }
      }
      // Solo retry between slot attempts (suppressed under the
      // force-consolidation hook so joinable records go through slots).
      if (force_consolidation_ && rec.size() <= max_join) continue;
      start = head_.load(std::memory_order_relaxed);
      if (HasSpace(start, rec.size()) &&
          head_.compare_exchange_weak(start, start + rec.size(),
                                      std::memory_order_acq_rel)) {
        stats_->carray_solo_claims.fetch_add(1, std::memory_order_relaxed);
        CopyAndPublish(start, rec);
        return Appended{Lsn{start + 1}, Lsn{start + rec.size() + 1}};
      }
    }
  }

  Result<Appended> LeadGroup(Slot& s, std::span<const uint8_t> rec) {
    // Gather window: colliders join while we spin briefly; close early
    // once the group is comfortably sized. Under the force-consolidation
    // hook the window yields instead, so joiners arrive even on a
    // single-context host (where a pure spin gathers nobody). The budget
    // is adaptive (see below).
    const int window = gather_spins_.load(std::memory_order_relaxed);
    for (int i = 0; i < window; ++i) {
      uint64_t st = s.state.load(std::memory_order_relaxed);
      if (MembersOf(st) >= 8 || (st & kSizeMask) >= capacity_ / 8) break;
      if (force_consolidation_) {
        std::this_thread::yield();
      } else {
        sync::CpuRelax();
      }
    }
    uint64_t st = s.state.exchange(kBusy, std::memory_order_acq_rel);
    uint64_t total = st & kSizeMask;
    uint64_t members = MembersOf(st);
    // Adapt the window to observed collision pressure: a well-subscribed
    // group means colliders arrive faster than the spin burns — widen so
    // the next leader amortizes more of them into one claim CAS. A group
    // nobody joined means the spin was pure added latency — narrow.
    // Leaders are rare relative to appends (one per group), so these
    // relaxed ops stay off the append fast path.
    if (members >= 4) {
      int widened = std::min(kGatherSpinsMax, window * 2);
      if (widened != window) {
        gather_spins_.store(widened, std::memory_order_relaxed);
        stats_->carray_gather_widens.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (members == 1) {
      int narrowed = std::max(kGatherSpinsMin, window / 2);
      if (narrowed != window) {
        gather_spins_.store(narrowed, std::memory_order_relaxed);
        stats_->carray_gather_narrows.fetch_add(1,
                                                std::memory_order_relaxed);
      }
    }
    stats_->carray_gather_spins.store(
        static_cast<uint64_t>(gather_spins_.load(std::memory_order_relaxed)),
        std::memory_order_relaxed);
    // One CAS claims the whole group's extent.
    uint64_t start = head_.load(std::memory_order_relaxed);
    for (;;) {
      if (!HasSpace(start, total)) {
        Status fs = ReclaimSpace();
        if (!fs.ok()) {
          PublishGroupError(s, members, fs);
          return fs;
        }
        start = head_.load(std::memory_order_relaxed);
        continue;
      }
      if (head_.compare_exchange_weak(start, start + total,
                                      std::memory_order_acq_rel)) {
        break;
      }
    }
    stats_->carray_groups.fetch_add(1, std::memory_order_relaxed);
    stats_->carray_group_records.fetch_add(members,
                                           std::memory_order_relaxed);
    stats_->carray_group_bytes.fetch_add(total, std::memory_order_relaxed);
    stats_->carray_group_size_hist[HistBucket(members)].fetch_add(
        1, std::memory_order_relaxed);
    if (members == 1) {
      s.state.store(0, std::memory_order_release);  // Nobody joined.
    } else {
      s.readers.store(static_cast<uint32_t>(members - 1),
                      std::memory_order_relaxed);
      s.base.store(start + 1, std::memory_order_release);
    }
    CopyAndPublish(start, rec);  // The leader's record sits at offset 0.
    return Appended{Lsn{start + 1}, Lsn{start + rec.size() + 1}};
  }

  Result<Appended> JoinGroup(Slot& s, uint64_t intra_offset,
                             std::span<const uint8_t> rec) {
    stats_->carray_slot_joins.fetch_add(1, std::memory_order_relaxed);
    sync::Backoff backoff;
    uint64_t base;
    while ((base = s.base.load(std::memory_order_acquire)) == 0) {
      backoff.Pause();
    }
    if (base == kBaseError) {
      Status err = s.error;
      ReleaseReader(s);
      return err;
    }
    uint64_t start = (base - 1) + intra_offset;
    ReleaseReader(s);  // The slot can recycle while we copy.
    CopyAndPublish(start, rec);
    return Appended{Lsn{start + 1}, Lsn{start + rec.size() + 1}};
  }

  void PublishGroupError(Slot& s, uint64_t members, const Status& err) {
    if (members == 1) {
      s.state.store(0, std::memory_order_release);
      return;
    }
    s.error = err;
    s.readers.store(static_cast<uint32_t>(members - 1),
                    std::memory_order_relaxed);
    s.base.store(kBaseError, std::memory_order_release);
  }

  void ReleaseReader(Slot& s) {
    if (s.readers.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last member out resets the slot: base must clear before the state
      // release so the next group's members can never observe stale base.
      s.base.store(0, std::memory_order_relaxed);
      s.state.store(0, std::memory_order_release);
    }
  }

  static size_t HistBucket(uint64_t members) {
    if (members <= 2) return members - 1;       // 1, 2
    if (members <= 4) return 2;                 // 3-4
    if (members <= 8) return 3;                 // 5-8
    if (members <= 16) return 4;                // 9-16
    return 5;                                   // >16
  }

  /// Copies [start, start+rec.size()) into the ring and publishes the
  /// bytes to every overlapped region counter (release, so the flusher's
  /// acquire read of a counter sees the copied bytes).
  void CopyAndPublish(uint64_t start, std::span<const uint8_t> rec) {
    size_t pos = start & (capacity_ - 1);
    size_t first = std::min(rec.size(), capacity_ - pos);
    std::memcpy(ring_.data() + pos, rec.data(), first);
    if (first < rec.size()) {
      std::memcpy(ring_.data(), rec.data() + first, rec.size() - first);
    }
    uint64_t off = start;
    uint64_t end = start + rec.size();
    while (off < end) {
      uint64_t region = off >> region_shift_;
      uint64_t region_end = (region + 1) << region_shift_;
      uint64_t n = std::min(end, region_end) - off;
      counters_[region & (counter_count_ - 1)].completed.fetch_add(
          n, std::memory_order_release);
      off += n;
    }
  }

  /// Advances the contiguous completion watermark over fully-completed
  /// regions (plus an exactly-complete partial tail region) and returns
  /// it. Serialized by its own mutex; the critical section is a handful
  /// of atomic loads.
  uint64_t AdvanceWatermark() {
    std::lock_guard<std::mutex> guard(watermark_mutex_);
    uint64_t w = watermark_.load(std::memory_order_relaxed);
    for (;;) {
      uint64_t region = w >> region_shift_;
      size_t idx = region & (counter_count_ - 1);
      uint64_t region_start = region << region_shift_;
      uint64_t region_end = region_start + region_size_;
      // Bytes below the construction base never complete (they predate
      // this buffer); only the first region can straddle it.
      uint64_t live_start = std::max(base_, region_start);
      uint64_t full_need = region_base_[idx] + (region_end - live_start);
      uint64_t c = counters_[idx].completed.load(std::memory_order_acquire);
      if (c >= full_need) {
        region_base_[idx] = full_need;
        w = region_end;
        continue;
      }
      // Partial tail: the claim frontier sits inside this region. If the
      // counter accounts for every claimed byte while the frontier is
      // quiescent, there is no hole below it.
      uint64_t h1 = head_.load(std::memory_order_acquire);
      if (h1 > w && h1 < region_end) {
        c = counters_[idx].completed.load(std::memory_order_acquire);
        if (c == region_base_[idx] + (h1 - live_start) &&
            head_.load(std::memory_order_acquire) == h1) {
          w = h1;
        }
      }
      break;
    }
    watermark_.store(w, std::memory_order_release);
    return w;
  }

  /// Ring-full path: drain the completed watermark, or yield to in-flight
  /// copiers when everything completed is already durable.
  Status ReclaimSpace() {
    uint64_t watermark = AdvanceWatermark();
    if (watermark > storage_->size()) {
      return FlushTo(Lsn{watermark + 1});
    }
    stats_->carray_watermark_stalls.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
    return Status::Ok();
  }

  LogStats* stats_;
  const bool force_consolidation_;  ///< Test hook; see LogOptions.
  /// Adaptive gather-window spin budget, [kGatherSpinsMin, kGatherSpinsMax].
  std::atomic<int> gather_spins_{kGatherSpinsInit};
  size_t capacity_ = 0;         ///< Power of two.
  std::vector<uint8_t> ring_;
  size_t region_size_ = 0;      ///< Power of two, divides capacity_.
  unsigned region_shift_ = 0;
  size_t counter_count_ = 0;    ///< 2 * (capacity_ / region_size_).
  std::unique_ptr<Region[]> counters_;
  /// Counter value at which each counter's CURRENT region occupancy
  /// starts (contributions of all previous occupancies). Only touched
  /// under watermark_mutex_.
  std::vector<uint64_t> region_base_;
  uint64_t base_ = 0;           ///< storage size at construction.
  alignas(64) std::atomic<uint64_t> head_{0};
  alignas(64) std::atomic<uint64_t> watermark_{0};
  std::mutex watermark_mutex_;
  Slot slots_[kSlots];
  std::mutex flush_mutex_;
  std::condition_variable flush_cv_;
  bool flushing_ = false;
};

}  // namespace

std::unique_ptr<LogBuffer> MakeLogBuffer(LogBufferKind kind,
                                         LogStorage* storage,
                                         size_t capacity, LogStats* stats,
                                         bool force_consolidation) {
  switch (kind) {
    case LogBufferKind::kMutex:
      return std::make_unique<MutexLogBuffer>(storage, capacity);
    case LogBufferKind::kDecoupled:
      return std::make_unique<DecoupledLogBuffer>(storage, capacity);
    case LogBufferKind::kConsolidated:
      return std::make_unique<ConsolidatedLogBuffer>(storage, capacity);
    case LogBufferKind::kCArray:
      return std::make_unique<CArrayLogBuffer>(storage, capacity,
                                               EnsureStats(stats),
                                               force_consolidation);
  }
  return nullptr;
}

}  // namespace shoremt::log
