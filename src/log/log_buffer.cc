#include "log/log_buffer.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "sync/backoff.h"

namespace shoremt::log {

namespace {

// -------------------------------------------------------------- kMutex ----

/// Original Shore's log buffer: one mutex over everything, non-circular
/// buffer, synchronous flush when full, and a daemon-wakeup mutex poked on
/// every insert (§6.2.4: "log inserts occasionally acquire a blocking
/// mutex in order to wake checkpoint and flush threads").
class MutexLogBuffer : public LogBuffer {
 public:
  MutexLogBuffer(LogStorage* storage, size_t capacity)
      : LogBuffer(storage), buffer_(capacity) {
    base_ = storage->size();
  }

  Result<Appended> Append(std::span<const uint8_t> rec,
                          bool compensation) override {
    std::lock_guard<std::mutex> guard(mutex_);
    if (rec.size() > buffer_.size()) {
      return Status::InvalidArgument("record larger than log buffer");
    }
    if (head_ + rec.size() > buffer_.size()) {
      SHOREMT_RETURN_NOT_OK(FlushLocked());  // Stalls this and all inserters.
    }
    std::memcpy(buffer_.data() + head_, rec.data(), rec.size());
    uint64_t start = base_ + head_;
    head_ += rec.size();
    {
      // Daemon wakeup on the insert critical path (baseline bottleneck).
      std::lock_guard<std::mutex> wake(daemon_mutex_);
      ++daemon_pokes_;
    }
    return Appended{Lsn{start + 1}, Lsn{start + rec.size() + 1}};
  }

  Status FlushTo(Lsn upto) override {
    std::lock_guard<std::mutex> guard(mutex_);
    if (durable_lsn() >= upto) return Status::Ok();
    return FlushLocked();
  }

  Lsn next_lsn() const override {
    std::lock_guard<std::mutex> guard(mutex_);
    return Lsn{base_ + head_ + 1};
  }

 private:
  Status FlushLocked() {
    if (head_ == 0) return Status::Ok();
    SHOREMT_RETURN_NOT_OK(
        storage_->Append({buffer_.data(), head_}));
    base_ += head_;
    head_ = 0;
    return Status::Ok();
  }

  mutable std::mutex mutex_;
  std::mutex daemon_mutex_;
  uint64_t daemon_pokes_ = 0;
  std::vector<uint8_t> buffer_;
  uint64_t base_ = 0;  ///< Log-space offset of buffer_[0].
  size_t head_ = 0;    ///< Bytes used in buffer_.
};

// ---------------------------------------------------------- kDecoupled ----

/// Circular buffer with insert and flush decoupled (§6.2.2 problem 2).
/// Inserts claim + copy under a light-weight queueing mutex; flushing
/// drains [durable, head) under its own blocking mutex so a slow flush no
/// longer stalls inserts (unless the ring truly fills).
class DecoupledLogBuffer : public LogBuffer {
 public:
  DecoupledLogBuffer(LogStorage* storage, size_t capacity)
      : LogBuffer(storage), ring_(capacity) {
    head_.store(storage->size(), std::memory_order_relaxed);
  }

  Result<Appended> Append(std::span<const uint8_t> rec,
                          bool compensation) override {
    if (rec.size() > ring_.size() / 2) {
      return Status::InvalidArgument("record larger than log buffer");
    }
    std::lock_guard<sync::HybridMutex> guard(insert_mutex_);
    uint64_t start = head_.load(std::memory_order_relaxed);
    // Cached-tail space check: only consult the (shared) durable counter
    // when the cheap check fails, then flush ourselves if truly full.
    while (start + rec.size() - storage_->size() > ring_.size()) {
      SHOREMT_RETURN_NOT_OK(FlushTo(Lsn{start + 1}));
    }
    CopyIn(start, rec);
    head_.store(start + rec.size(), std::memory_order_release);
    return Appended{Lsn{start + 1}, Lsn{start + rec.size() + 1}};
  }

  Status FlushTo(Lsn upto) override {
    std::unique_lock<std::mutex> lk(flush_mutex_);
    while (durable_lsn() < upto) {
      if (!flushing_) {
        flushing_ = true;
        uint64_t target = head_.load(std::memory_order_acquire);
        lk.unlock();
        Status st = DrainTo(target);  // Group commit: flush all complete.
        lk.lock();
        flushing_ = false;
        flush_cv_.notify_all();
        SHOREMT_RETURN_NOT_OK(st);
      } else {
        flush_cv_.wait(lk);
      }
    }
    return Status::Ok();
  }

  Lsn next_lsn() const override {
    return Lsn{head_.load(std::memory_order_acquire) + 1};
  }

 private:
  void CopyIn(uint64_t offset, std::span<const uint8_t> rec) {
    size_t pos = offset % ring_.size();
    size_t first = std::min(rec.size(), ring_.size() - pos);
    std::memcpy(ring_.data() + pos, rec.data(), first);
    if (first < rec.size()) {
      std::memcpy(ring_.data(), rec.data() + first, rec.size() - first);
    }
  }

  Status DrainTo(uint64_t target) {
    uint64_t from = storage_->size();
    if (target <= from) return Status::Ok();
    size_t len = target - from;
    scratch_.resize(len);
    size_t pos = from % ring_.size();
    size_t first = std::min(len, ring_.size() - pos);
    std::memcpy(scratch_.data(), ring_.data() + pos, first);
    if (first < len) {
      std::memcpy(scratch_.data() + first, ring_.data(), len - first);
    }
    return storage_->Append(scratch_);
  }

  std::vector<uint8_t> ring_;
  sync::HybridMutex insert_mutex_;
  std::atomic<uint64_t> head_{0};
  std::mutex flush_mutex_;
  std::condition_variable flush_cv_;
  bool flushing_ = false;
  std::vector<uint8_t> scratch_;  // Guarded by the flushing_ token.
};

// ------------------------------------------------------- kConsolidated ----

/// Shore-MT's final design (§6.2.4): the insert critical section shrinks
/// to claiming buffer space — one atomic compare-and-swap, the moral
/// equivalent of the extended MCS queue handing the insert offset from
/// thread to thread. Threads then copy their records into the ring in
/// parallel and publish completion in LSN order so the flusher never
/// writes a hole.
class ConsolidatedLogBuffer : public LogBuffer {
 public:
  ConsolidatedLogBuffer(LogStorage* storage, size_t capacity)
      : LogBuffer(storage), ring_(capacity) {
    uint64_t base = storage->size();
    head_.store(base, std::memory_order_relaxed);
    completed_.store(base, std::memory_order_relaxed);
  }

  Result<Appended> Append(std::span<const uint8_t> rec,
                          bool compensation) override {
    if (rec.size() > ring_.size() / 2) {
      return Status::InvalidArgument("record larger than log buffer");
    }
    // Claim: the only serialized step.
    uint64_t start = head_.load(std::memory_order_relaxed);
    for (;;) {
      if (start + rec.size() - storage_->size() > ring_.size()) {
        // Ring full: help drain (completed prefix only), then retry.
        SHOREMT_RETURN_NOT_OK(FlushTo(Lsn{storage_->size() + 2}));
        start = head_.load(std::memory_order_relaxed);
        continue;
      }
      if (head_.compare_exchange_weak(start, start + rec.size(),
                                      std::memory_order_acq_rel)) {
        break;
      }
    }
    // Parallel copy outside any critical section.
    size_t pos = start % ring_.size();
    size_t first = std::min(rec.size(), ring_.size() - pos);
    std::memcpy(ring_.data() + pos, rec.data(), first);
    if (first < rec.size()) {
      std::memcpy(ring_.data(), rec.data() + first, rec.size() - first);
    }
    // Ordered completion hand-off (our queue node equivalent): wait for
    // the predecessor to publish, then publish our end offset. Yield
    // aggressively: the predecessor may need this CPU to finish its copy
    // (matters on hosts with few hardware contexts).
    int spins = 0;
    while (completed_.load(std::memory_order_acquire) != start) {
      if (++spins < 16) {
        sync::CpuRelax();
      } else {
        std::this_thread::yield();
      }
    }
    completed_.store(start + rec.size(), std::memory_order_release);
    return Appended{Lsn{start + 1}, Lsn{start + rec.size() + 1}};
  }

  Status FlushTo(Lsn upto) override {
    std::unique_lock<std::mutex> lk(flush_mutex_);
    while (durable_lsn() < upto) {
      if (!flushing_) {
        flushing_ = true;
        uint64_t target = completed_.load(std::memory_order_acquire);
        lk.unlock();
        Status st = DrainTo(target);
        lk.lock();
        flushing_ = false;
        flush_cv_.notify_all();
        SHOREMT_RETURN_NOT_OK(st);
        // If `upto` is still not durable the bytes were not completed yet;
        // yield so the in-flight copiers can finish, then flush again.
        if (durable_lsn() < upto) {
          lk.unlock();
          std::this_thread::yield();
          lk.lock();
        }
      } else {
        flush_cv_.wait(lk);
      }
    }
    return Status::Ok();
  }

  Lsn next_lsn() const override {
    return Lsn{head_.load(std::memory_order_acquire) + 1};
  }

 private:
  Status DrainTo(uint64_t target) {
    uint64_t from = storage_->size();
    if (target <= from) return Status::Ok();
    size_t len = target - from;
    scratch_.resize(len);
    size_t pos = from % ring_.size();
    size_t first = std::min(len, ring_.size() - pos);
    std::memcpy(scratch_.data(), ring_.data() + pos, first);
    if (first < len) {
      std::memcpy(scratch_.data() + first, ring_.data(), len - first);
    }
    return storage_->Append(scratch_);
  }

  std::vector<uint8_t> ring_;
  std::atomic<uint64_t> head_{0};
  std::atomic<uint64_t> completed_{0};
  std::mutex flush_mutex_;
  std::condition_variable flush_cv_;
  bool flushing_ = false;
  std::vector<uint8_t> scratch_;
};

}  // namespace

std::unique_ptr<LogBuffer> MakeLogBuffer(LogBufferKind kind,
                                         LogStorage* storage,
                                         size_t capacity) {
  switch (kind) {
    case LogBufferKind::kMutex:
      return std::make_unique<MutexLogBuffer>(storage, capacity);
    case LogBufferKind::kDecoupled:
      return std::make_unique<DecoupledLogBuffer>(storage, capacity);
    case LogBufferKind::kConsolidated:
      return std::make_unique<ConsolidatedLogBuffer>(storage, capacity);
  }
  return nullptr;
}

}  // namespace shoremt::log
