#ifndef SHOREMT_LOG_LOG_BUFFER_H_
#define SHOREMT_LOG_LOG_BUFFER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "log/log_storage.h"
#include "sync/hybrid_mutex.h"
#include "sync/sync_stats.h"

namespace shoremt::log {

/// Which log buffer implementation to use — the §6.2.2/§6.2.4/§7.4 story:
enum class LogBufferKind : uint8_t {
  /// Original Shore: one mutex over a non-circular buffer; a full buffer
  /// triggers a synchronous flush that stalls every inserter; each insert
  /// also pokes the daemon wakeup mutex.
  kMutex,
  /// Circular buffer with separate insert/compensation/flush critical
  /// sections; flushes no longer stall inserts unless the ring is full.
  kDecoupled,
  /// Insert serialization reduced to claiming buffer space (an atomic
  /// hand-off, the moral equivalent of the extended MCS queue of §6.2.4);
  /// threads copy their records in parallel after the claim.
  kConsolidated,
};

/// Outcome of appending one record.
struct Appended {
  Lsn lsn;  ///< Start LSN (locates the record for undo chains).
  Lsn end;  ///< End LSN (what page LSNs store; flush targets).
};

/// In-memory staging buffer between log producers and the durable
/// LogStorage. LSNs are byte offsets + 1 in the storage stream.
class LogBuffer {
 public:
  virtual ~LogBuffer() = default;

  /// Appends a serialized record; `compensation` marks CLR traffic (kept
  /// as a separate logical operation per §6.2.2, although this
  /// implementation routes both through the insert path).
  virtual Result<Appended> Append(std::span<const uint8_t> rec,
                                  bool compensation) = 0;

  /// Blocks until every byte below `upto` is durable.
  virtual Status FlushTo(Lsn upto) = 0;

  /// All records with end ≤ durable_lsn() survive a crash.
  Lsn durable_lsn() const { return Lsn{storage_->size() + 1}; }
  /// LSN the next append will receive.
  virtual Lsn next_lsn() const = 0;

  LogStorage* storage() { return storage_; }

 protected:
  explicit LogBuffer(LogStorage* storage) : storage_(storage) {}
  LogStorage* storage_;
};

std::unique_ptr<LogBuffer> MakeLogBuffer(LogBufferKind kind,
                                         LogStorage* storage,
                                         size_t capacity);

}  // namespace shoremt::log

#endif  // SHOREMT_LOG_LOG_BUFFER_H_
