#ifndef SHOREMT_LOG_LOG_BUFFER_H_
#define SHOREMT_LOG_LOG_BUFFER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "log/log_storage.h"
#include "sync/hybrid_mutex.h"
#include "sync/sync_stats.h"

namespace shoremt::log {

struct LogStats;

/// Which log buffer implementation to use — the §6.2.2/§6.2.4/§7.4 story:
enum class LogBufferKind : uint8_t {
  /// Original Shore: one mutex over a non-circular buffer; a full buffer
  /// triggers a synchronous flush that stalls every inserter; each insert
  /// also pokes the daemon wakeup mutex.
  kMutex,
  /// Circular buffer with separate insert/compensation/flush critical
  /// sections; flushes no longer stall inserts unless the ring is full.
  kDecoupled,
  /// Insert serialization reduced to claiming buffer space (an atomic
  /// hand-off, the moral equivalent of the extended MCS queue of §6.2.4);
  /// threads copy their records in parallel after the claim, but publish
  /// completion in LSN order — one slow copier stalls every successor.
  kConsolidated,
  /// Consolidation-array buffer: threads that collide on the claim CAS
  /// join an open group slot (atomically adding their sizes), one leader
  /// claims the combined extent with a single CAS, and members copy their
  /// sub-ranges in parallel. Completion is published OUT OF ORDER through
  /// per-region completed-byte counters; the flusher advances a
  /// contiguous watermark over fully-completed regions. No predecessor
  /// spin, no global ordering point.
  kCArray,
};

/// Outcome of appending one record.
struct Appended {
  Lsn lsn;  ///< Start LSN (locates the record for undo chains).
  Lsn end;  ///< End LSN (what page LSNs store; flush targets).
};

/// In-memory staging buffer between log producers and the durable
/// LogStorage. LSNs are byte offsets + 1 in the storage stream.
class LogBuffer {
 public:
  virtual ~LogBuffer() = default;

  /// Appends a serialized record; `compensation` marks CLR traffic (kept
  /// as a separate logical operation per §6.2.2, although this
  /// implementation routes both through the insert path).
  virtual Result<Appended> Append(std::span<const uint8_t> rec,
                                  bool compensation) = 0;

  /// Blocks until every byte below `upto` is durable.
  virtual Status FlushTo(Lsn upto) = 0;

  /// All records with end ≤ durable_lsn() survive a crash.
  Lsn durable_lsn() const { return Lsn{storage_->size() + 1}; }
  /// LSN the next append will receive.
  virtual Lsn next_lsn() const = 0;
  /// Everything below this LSN has finished copying into the buffer and
  /// can be flushed without waiting on in-flight appenders — the natural
  /// background-flush target. Buffers whose copies complete in claim
  /// order report next_lsn(); the consolidation-array buffer advances and
  /// reports its completion watermark.
  virtual Lsn completed_lsn() { return next_lsn(); }

  LogStorage* storage() { return storage_; }

 protected:
  explicit LogBuffer(LogStorage* storage) : storage_(storage) {}
  LogStorage* storage_;
};

/// `stats` (optional) receives the consolidation counters of the kCArray
/// buffer (group sizes, slot joins vs solo claims, watermark stalls); the
/// other kinds ignore it. `force_consolidation` is the
/// LogOptions::carray_force_consolidation test hook.
std::unique_ptr<LogBuffer> MakeLogBuffer(LogBufferKind kind,
                                         LogStorage* storage,
                                         size_t capacity,
                                         LogStats* stats = nullptr,
                                         bool force_consolidation = false);

}  // namespace shoremt::log

#endif  // SHOREMT_LOG_LOG_BUFFER_H_
