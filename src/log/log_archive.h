#ifndef SHOREMT_LOG_LOG_ARCHIVE_H_
#define SHOREMT_LOG_LOG_ARCHIVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace shoremt::log {

/// One archived log segment, as recorded by a MANIFEST line written by
/// LogStorage::Recycle when LogOptions::archive_dir is set:
///   v2 <base> <length> <capacity> <crc32c> <file>   (current)
///   v1 <base> <length> <capacity> <file>            (older archives)
struct ArchivedSegment {
  uint64_t base = 0;      ///< Absolute log byte offset of the first byte.
  uint64_t length = 0;    ///< Bytes in the archive file.
  uint64_t capacity = 0;  ///< The segment's configured capacity.
  uint32_t crc = 0;       ///< CRC32C of the file's bytes (v2 lines).
  bool has_crc = false;   ///< False for v1 lines — read unverified.
  std::string file;       ///< File name, relative to the archive dir.
};

/// Read-side view of a segment archive directory: parses the MANIFEST
/// and serves byte ranges out of the per-segment files, verifying each
/// touched v2 segment against its manifest CRC. Consumers: the shipper's
/// below-horizon fallback, point-in-time restore (repl::RestoreToLsn),
/// and the storage manager's media auto-repair — which is why this lives
/// in the log layer, below sm and repl.
class LogArchive {
 public:
  /// Opens `dir`. A missing directory or MANIFEST yields an EMPTY archive
  /// (archiving may simply not have recycled anything yet); a malformed
  /// MANIFEST line is Corruption.
  static Result<LogArchive> Open(const std::string& dir);

  const std::vector<ArchivedSegment>& segments() const { return segments_; }
  bool empty() const { return segments_.empty(); }
  /// First archived byte (0 when empty).
  uint64_t base_offset() const {
    return segments_.empty() ? 0 : segments_.front().base;
  }
  /// One past the last archived byte (0 when empty).
  uint64_t end_offset() const {
    return segments_.empty() ? 0
                             : segments_.back().base + segments_.back().length;
  }

  /// Finds the archived segment containing absolute offset; null if the
  /// offset is not covered.
  const ArchivedSegment* SegmentAt(uint64_t offset) const;

  /// Reads [offset, offset + len) — which may span archive files — into
  /// `out` (cleared first). IOError when the range is not fully covered;
  /// Corruption when a touched v2 segment file fails its manifest CRC
  /// (named precisely, with stored vs computed values).
  Status Read(uint64_t offset, size_t len, std::vector<uint8_t>* out) const;

 private:
  std::string dir_;
  std::vector<ArchivedSegment> segments_;  ///< Sorted by base, contiguous.
};

}  // namespace shoremt::log

#endif  // SHOREMT_LOG_LOG_ARCHIVE_H_
