#ifndef SHOREMT_SM_SESSION_STATS_H_
#define SHOREMT_SM_SESSION_STATS_H_

#include <atomic>
#include <cstdint>

namespace shoremt::sm {

/// Per-session operation counters. Plain integers on purpose: a session is
/// owned by exactly one worker thread, so bumping these costs a register
/// increment — the Shore-MT lesson that even "innocent" shared statistics
/// counters serialize the multicore hot path (§5). Totals reach the
/// manager only through Session::Harvest / session close, which add into
/// the SessionStatsAggregate below.
struct SessionStats {
  uint64_t begins = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;

  uint64_t inserts = 0;
  uint64_t reads = 0;
  uint64_t updates = 0;
  uint64_t deletes = 0;
  uint64_t cursor_rows = 0;  ///< Rows returned through cursors.

  uint64_t batches = 0;    ///< Apply() calls.
  uint64_t batch_ops = 0;  ///< Ops submitted through Apply().

  uint64_t lock_waits = 0;  ///< Lock requests that had to park.
  /// Lock requests served from the transaction-private lock cache
  /// (volume/store intention re-grants and escalated-store row locks)
  /// without touching the shared lock table.
  uint64_t lock_cache_hits = 0;
  uint64_t log_bytes = 0;   ///< WAL bytes appended by this session's txns.

  // Group-commit pipeline counters (commits counts these too; a commit is
  // either acknowledged inline or asynchronously).
  uint64_t async_commits = 0;  ///< Commits submitted via CommitAsync.
  uint64_t commit_waits = 0;   ///< Durability waits that had to block.
  /// Durability checks that found the group flush already past the commit
  /// LSN — the per-transaction flush waits the pipeline eliminated.
  uint64_t commit_waits_avoided = 0;
  /// Durability closures registered through Session::OnDurable.
  uint64_t durability_callbacks = 0;

  /// Total row operations (the "ops" a workload reports).
  uint64_t ops() const {
    return inserts + reads + updates + deletes + cursor_rows;
  }

  void Add(const SessionStats& o) {
    begins += o.begins;
    commits += o.commits;
    aborts += o.aborts;
    inserts += o.inserts;
    reads += o.reads;
    updates += o.updates;
    deletes += o.deletes;
    cursor_rows += o.cursor_rows;
    batches += o.batches;
    batch_ops += o.batch_ops;
    lock_waits += o.lock_waits;
    lock_cache_hits += o.lock_cache_hits;
    log_bytes += o.log_bytes;
    async_commits += o.async_commits;
    commit_waits += o.commit_waits;
    commit_waits_avoided += o.commit_waits_avoided;
    durability_callbacks += o.durability_callbacks;
  }
};

/// The manager-side aggregation target. Harvests are rare (session close
/// or explicit Harvest), so relaxed fetch_adds are plenty — the point is
/// that nothing on a per-operation path ever touches these cache lines.
class SessionStatsAggregate {
 public:
  void Add(const SessionStats& s) {
    begins_.fetch_add(s.begins, std::memory_order_relaxed);
    commits_.fetch_add(s.commits, std::memory_order_relaxed);
    aborts_.fetch_add(s.aborts, std::memory_order_relaxed);
    inserts_.fetch_add(s.inserts, std::memory_order_relaxed);
    reads_.fetch_add(s.reads, std::memory_order_relaxed);
    updates_.fetch_add(s.updates, std::memory_order_relaxed);
    deletes_.fetch_add(s.deletes, std::memory_order_relaxed);
    cursor_rows_.fetch_add(s.cursor_rows, std::memory_order_relaxed);
    batches_.fetch_add(s.batches, std::memory_order_relaxed);
    batch_ops_.fetch_add(s.batch_ops, std::memory_order_relaxed);
    lock_waits_.fetch_add(s.lock_waits, std::memory_order_relaxed);
    lock_cache_hits_.fetch_add(s.lock_cache_hits, std::memory_order_relaxed);
    log_bytes_.fetch_add(s.log_bytes, std::memory_order_relaxed);
    async_commits_.fetch_add(s.async_commits, std::memory_order_relaxed);
    commit_waits_.fetch_add(s.commit_waits, std::memory_order_relaxed);
    commit_waits_avoided_.fetch_add(s.commit_waits_avoided,
                                    std::memory_order_relaxed);
    durability_callbacks_.fetch_add(s.durability_callbacks,
                                    std::memory_order_relaxed);
  }

  SessionStats Snapshot() const {
    SessionStats s;
    s.begins = begins_.load(std::memory_order_relaxed);
    s.commits = commits_.load(std::memory_order_relaxed);
    s.aborts = aborts_.load(std::memory_order_relaxed);
    s.inserts = inserts_.load(std::memory_order_relaxed);
    s.reads = reads_.load(std::memory_order_relaxed);
    s.updates = updates_.load(std::memory_order_relaxed);
    s.deletes = deletes_.load(std::memory_order_relaxed);
    s.cursor_rows = cursor_rows_.load(std::memory_order_relaxed);
    s.batches = batches_.load(std::memory_order_relaxed);
    s.batch_ops = batch_ops_.load(std::memory_order_relaxed);
    s.lock_waits = lock_waits_.load(std::memory_order_relaxed);
    s.lock_cache_hits = lock_cache_hits_.load(std::memory_order_relaxed);
    s.log_bytes = log_bytes_.load(std::memory_order_relaxed);
    s.async_commits = async_commits_.load(std::memory_order_relaxed);
    s.commit_waits = commit_waits_.load(std::memory_order_relaxed);
    s.commit_waits_avoided =
        commit_waits_avoided_.load(std::memory_order_relaxed);
    s.durability_callbacks =
        durability_callbacks_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<uint64_t> begins_{0};
  std::atomic<uint64_t> commits_{0};
  std::atomic<uint64_t> aborts_{0};
  std::atomic<uint64_t> inserts_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> updates_{0};
  std::atomic<uint64_t> deletes_{0};
  std::atomic<uint64_t> cursor_rows_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batch_ops_{0};
  std::atomic<uint64_t> lock_waits_{0};
  std::atomic<uint64_t> lock_cache_hits_{0};
  std::atomic<uint64_t> log_bytes_{0};
  std::atomic<uint64_t> async_commits_{0};
  std::atomic<uint64_t> commit_waits_{0};
  std::atomic<uint64_t> commit_waits_avoided_{0};
  std::atomic<uint64_t> durability_callbacks_{0};
};

}  // namespace shoremt::sm

#endif  // SHOREMT_SM_SESSION_STATS_H_
