#include "sm/storage_manager.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <set>
#include <utility>

#include "btree/btree_node.h"
#include "io/retry.h"
#include "log/log_archive.h"
#include "page/page.h"
#include "page/slotted_page.h"

namespace shoremt::sm {

using buffer::PageHandle;
using sync::LatchMode;

namespace {

/// Catalog entry wire format: u32 name_len | name | u32 heap | u32 index |
/// u64 root.
void SerializeTableInfo(const TableInfo& info, std::vector<uint8_t>* out) {
  out->clear();
  auto put = [&](const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    out->insert(out->end(), b, b + n);
  };
  uint32_t len = static_cast<uint32_t>(info.name.size());
  put(&len, 4);
  put(info.name.data(), info.name.size());
  put(&info.heap_store, 4);
  put(&info.index_store, 4);
  put(&info.index_root, 8);
}

Status DeserializeTableInfo(std::span<const uint8_t> data, TableInfo* info) {
  if (data.size() < 4) return Status::Corruption("catalog entry truncated");
  uint32_t len;
  std::memcpy(&len, data.data(), 4);
  if (data.size() < 4 + len + 16) {
    return Status::Corruption("catalog entry truncated");
  }
  info->name.assign(reinterpret_cast<const char*>(data.data() + 4), len);
  std::memcpy(&info->heap_store, data.data() + 4 + len, 4);
  std::memcpy(&info->index_store, data.data() + 8 + len, 4);
  std::memcpy(&info->index_root, data.data() + 12 + len, 8);
  return Status::Ok();
}

}  // namespace

StorageManager::StorageManager(StorageOptions options, io::Volume* volume,
                               log::LogStorage* log_storage)
    : options_(options), volume_(volume), log_storage_(log_storage) {
  log_ = std::make_unique<log::LogManager>(log_storage_, options_.log);
  pool_ = std::make_unique<buffer::BufferPool>(
      volume_, options_.buffer,
      [this](Lsn lsn) { return log_->FlushTo(lsn); });
  pool_->SetLsnProvider([this] { return log_->next_lsn(); });
  space_ = std::make_unique<space::SpaceManager>(volume_, options_.space);
  locks_ = std::make_unique<lock::LockManager>(options_.lock);
  txns_ = std::make_unique<txn::TxnManager>(log_.get(), locks_.get(),
                                            options_.txn);
  txns_->SetUndoApplier(
      [this](txn::Transaction* txn, const log::LogRecord& rec) {
        return UndoRecord(txn, txn->id, rec);
      });
  // Close the log-lifecycle loop: cleaner write-backs are mirrored into
  // LogStats, and log-segment pressure (reported by the flush daemon after
  // its batches) wakes the cleaner and the checkpoint daemon so the
  // low-water mark advances and Recycle can free segments — cv notifies
  // end to end, nothing polls.
  pool_->SetCleanerWritebackHook([this] { log_->NoteCleanerWriteback(); });
  // Media auto-repair: a checksum-failed read-in (miss path or scrubber)
  // rebuilds the page from the archived + live log history instead of
  // surfacing Corruption to the fixer.
  pool_->SetPageRepairer(
      [this](PageNum page, uint8_t* img) { return RepairPage(page, img); });
  log_->SetPressureHook([this] {
    pool_->WakeCleaner();
    WakeCheckpoint();
  });
  // Live-metrics sources: the engine-global halves of the registry view.
  // Each source reads its subsystem's existing atomic stats struct at
  // snapshot time — the subsystems keep their structs; the registry (and
  // the profiling feed over it) is the union. Worker-side metrics (txn
  // lifecycle, DML, lock waits, log bytes) come from the sessions'
  // WorkerCounters blocks instead.
  metrics_.AddSource([this](std::array<uint64_t, obs::kMetricCount>* t) {
    const buffer::BufferPoolStats& s = pool_->stats();
    (*t)[static_cast<size_t>(obs::Metric::kBufferHits)] +=
        s.hits.load(std::memory_order_relaxed) +
        s.optimistic_hits.load(std::memory_order_relaxed);
    (*t)[static_cast<size_t>(obs::Metric::kBufferMisses)] +=
        s.misses.load(std::memory_order_relaxed);
  });
  metrics_.AddSource([this](std::array<uint64_t, obs::kMetricCount>* t) {
    const log::LogStats& s = log_->stats();
    (*t)[static_cast<size_t>(obs::Metric::kLogRecords)] +=
        s.records.load(std::memory_order_relaxed);
    (*t)[static_cast<size_t>(obs::Metric::kGroupBatches)] +=
        s.group_batches.load(std::memory_order_relaxed);
    (*t)[static_cast<size_t>(obs::Metric::kCleanerWritebacks)] +=
        s.cleaner_writebacks.load(std::memory_order_relaxed);
    (*t)[static_cast<size_t>(obs::Metric::kCheckpoints)] +=
        s.checkpoint_count.load(std::memory_order_relaxed);
    (*t)[static_cast<size_t>(obs::Metric::kSegmentsRecycled)] +=
        s.segments_recycled.load(std::memory_order_relaxed);
  });
  metrics_.AddSource([this](std::array<uint64_t, obs::kMetricCount>* t) {
    const lock::LockStats& s = locks_->stats();
    (*t)[static_cast<size_t>(obs::Metric::kLockAcquired)] +=
        s.acquired.load(std::memory_order_relaxed);
  });
  metrics_.AddSource([this](std::array<uint64_t, obs::kMetricCount>* t) {
    const io::IoStats& s = volume_->stats();
    uint64_t reads = s.reads.load(std::memory_order_relaxed);
    uint64_t writes = s.writes.load(std::memory_order_relaxed);
    uint64_t pages_read = s.pages_read.load(std::memory_order_relaxed);
    uint64_t pages_written = s.pages_written.load(std::memory_order_relaxed);
    (*t)[static_cast<size_t>(obs::Metric::kIoReads)] += reads;
    (*t)[static_cast<size_t>(obs::Metric::kIoWrites)] += writes;
    (*t)[static_cast<size_t>(obs::Metric::kIoReadNs)] +=
        s.read_ns.load(std::memory_order_relaxed);
    (*t)[static_cast<size_t>(obs::Metric::kIoWriteNs)] +=
        s.write_ns.load(std::memory_order_relaxed);
    (*t)[static_cast<size_t>(obs::Metric::kIoBatchedOps)] +=
        s.batched_reads.load(std::memory_order_relaxed) +
        s.batched_writes.load(std::memory_order_relaxed);
    // Pages that rode an existing call instead of costing their own —
    // saturating: the unsynchronized loads can be mid-update.
    (*t)[static_cast<size_t>(obs::Metric::kIoCoalescedPages)] +=
        (pages_read > reads ? pages_read - reads : 0) +
        (pages_written > writes ? pages_written - writes : 0);
    const buffer::BufferPoolStats& b = pool_->stats();
    (*t)[static_cast<size_t>(obs::Metric::kIoPrefetchIssued)] +=
        b.prefetch_issued.load(std::memory_order_relaxed);
    (*t)[static_cast<size_t>(obs::Metric::kIoPrefetchDropped)] +=
        b.prefetch_dropped.load(std::memory_order_relaxed);
  });
  metrics_.AddSource([this](std::array<uint64_t, obs::kMetricCount>* t) {
    // Integrity: retries come from the volume's IoStats (RetryTransient
    // counts there from both the scheduler workers and the pool's
    // synchronous paths, so it is the single non-double-counting source);
    // detection/repair/scrub come from the pool.
    const io::IoStats& s = volume_->stats();
    (*t)[static_cast<size_t>(obs::Metric::kIoRetries)] +=
        s.retries.load(std::memory_order_relaxed);
    (*t)[static_cast<size_t>(obs::Metric::kIoRetryBackoffNs)] +=
        s.retry_backoff_ns.load(std::memory_order_relaxed);
    const buffer::BufferPoolStats& b = pool_->stats();
    (*t)[static_cast<size_t>(obs::Metric::kChecksumFailures)] +=
        b.checksum_failures.load(std::memory_order_relaxed);
    (*t)[static_cast<size_t>(obs::Metric::kPagesRepaired)] +=
        b.pages_repaired.load(std::memory_order_relaxed);
    (*t)[static_cast<size_t>(obs::Metric::kScrubPages)] +=
        b.scrub_pages.load(std::memory_order_relaxed);
  });
}

StorageManager::~StorageManager() {
  ckpt_daemon_.Stop();
  // Disarm the pressure hook before any member dies: SetPostBatchHook
  // synchronizes under the pipeline's lock, so after this returns the
  // flush daemon can no longer poke the checkpoint cv or the cleaner.
  log_->SetPressureHook(nullptr);
  if (!crashed_) (void)Shutdown();
}

void StorageManager::StartCheckpointDaemon() {
  if (!options_.checkpoint_daemon) return;
  auto interval = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::milliseconds(options_.checkpoint_interval_ms));
  ckpt_daemon_.Start(interval,
                     [this] { (void)Checkpoint(); },  // Best effort.
                     /*min_gap=*/interval / 2 +
                         std::chrono::microseconds(1000));
}

void StorageManager::WakeCheckpoint() { ckpt_daemon_.Wake(); }

Result<std::unique_ptr<StorageManager>> StorageManager::Open(
    StorageOptions options, io::Volume* volume,
    log::LogStorage* log_storage) {
  if (volume->NumPages() < kPagesPerExtent) {
    SHOREMT_RETURN_NOT_OK(volume->Extend(kPagesPerExtent));
  }
  auto sm = std::unique_ptr<StorageManager>(
      new StorageManager(options, volume, log_storage));
  switch (options.open_mode) {
    case OpenMode::kRecover:
    case OpenMode::kRestore:
      if (log_storage->size() > 0) {
        SHOREMT_RETURN_NOT_OK(sm->Recover());
      }
      break;
    case OpenMode::kPromote:
      SHOREMT_RETURN_NOT_OK(sm->PromoteRecover());
      break;
    case OpenMode::kReplicaAttach:
      // No recovery: the repl::Replica's replay pool applies the shipped
      // log itself, continuously.
      break;
  }
  // Background checkpoints only start once recovery is done: a fuzzy
  // checkpoint mid-redo would snapshot half-replayed state. A replica
  // attach never starts one — a checkpoint would log records into a log
  // the primary owns.
  if (options.open_mode != OpenMode::kReplicaAttach) {
    sm->StartCheckpointDaemon();
  }
  return sm;
}

void StorageManager::RegisterTable(const TableInfo& info) {
  std::lock_guard<std::mutex> guard(catalog_mutex_);
  catalog_[info.name] = info;
  indexes_[info.index_store] = std::make_unique<btree::BTree>(
      pool_.get(), space_.get(), log_.get(), txns_.get(), info.index_store,
      info.index_root, options_.btree);
}

btree::BTree* StorageManager::index_of(const TableInfo& table) {
  std::lock_guard<std::mutex> guard(catalog_mutex_);
  auto it = indexes_.find(table.index_store);
  return it == indexes_.end() ? nullptr : it->second.get();
}

Result<TableInfo> StorageManager::CreateTable(txn::Transaction* txn,
                                              const std::string& name) {
  // Reserve the name under the catalog mutex so two racing CreateTable
  // calls cannot both pass the uniqueness check and overwrite each
  // other's catalog entry; the reservation is dropped on any error.
  {
    std::lock_guard<std::mutex> guard(catalog_mutex_);
    if (catalog_.contains(name) || !creating_.insert(name).second) {
      return Status::AlreadyExists("table exists: " + name);
    }
  }
  Result<TableInfo> result = CreateTableReserved(txn, name);
  std::lock_guard<std::mutex> guard(catalog_mutex_);
  creating_.erase(name);
  return result;
}

Result<TableInfo> StorageManager::CreateTableReserved(
    txn::Transaction* txn, const std::string& name) {
  TableInfo info;
  info.name = name;
  info.heap_store = next_store_.fetch_add(1, std::memory_order_relaxed);
  info.index_store = next_store_.fetch_add(1, std::memory_order_relaxed);

  // Exclusive store locks, held until the DDL transaction ends: a
  // concurrent transactional OpenTable blocks on these instead of
  // observing the table half-created.
  SHOREMT_RETURN_NOT_OK(
      txn->locks.LockStore(info.heap_store, lock::LockMode::kX));
  SHOREMT_RETURN_NOT_OK(
      txn->locks.LockStore(info.index_store, lock::LockMode::kX));

  for (StoreId sid : {info.heap_store, info.index_store}) {
    SHOREMT_RETURN_NOT_OK(space_->CreateStore(sid));
    log::LogRecord rec;
    rec.type = log::LogRecordType::kCreateStore;
    rec.store = sid;
    rec.txn = txn->id;
    rec.prev_lsn = txn->last_lsn;
    SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log_->Append(rec));
    txns_->NoteLogged(txn, a.lsn, a.end);
  }

  SHOREMT_ASSIGN_OR_RETURN(
      info.index_root,
      btree::BTree::CreateRoot(pool_.get(), space_.get(), log_.get(),
                               txns_.get(), txn, info.index_store));

  log::LogRecord cat;
  cat.type = log::LogRecordType::kCatalog;
  cat.txn = txn->id;
  cat.prev_lsn = txn->last_lsn;
  SerializeTableInfo(info, &cat.after);
  SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log_->Append(cat));
  txns_->NoteLogged(txn, a.lsn, a.end);

  RegisterTable(info);
  return info;
}

Result<TableInfo> StorageManager::OpenTable(const std::string& name) const {
  std::lock_guard<std::mutex> guard(catalog_mutex_);
  auto it = catalog_.find(name);
  if (it == catalog_.end()) return Status::NotFound("no table " + name);
  return it->second;
}

Result<TableInfo> StorageManager::OpenTable(txn::Transaction* txn,
                                            const std::string& name) {
  SHOREMT_ASSIGN_OR_RETURN(
      TableInfo info,
      static_cast<const StorageManager*>(this)->OpenTable(name));
  // Shared store lock: if the creating transaction still holds its X
  // locks, we wait here until the DDL commits (or time out if it never
  // does) rather than touch a half-built table.
  SHOREMT_RETURN_NOT_OK(
      txn->locks.LockStore(info.heap_store, lock::LockMode::kIS));
  return info;
}

Result<RecordId> StorageManager::HeapInsert(txn::Transaction* txn,
                                            StoreId heap_store,
                                            std::span<const uint8_t> payload) {
  if (payload.size() > page::SlottedPage::MaxRecordSize()) {
    return Status::InvalidArgument("row too large for a page");
  }
  for (int attempt = 0; attempt < 3; ++attempt) {
    // Append target: the store's last page (cache vs chain walk is a
    // space-manager knob, §7.6).
    auto last = space_->LastPageOf(heap_store);
    if (last.ok()) {
      // §6.2.2: every insert verifies the page belongs to the right store
      // (thread-local extent cache makes this cheap in later stages).
      auto owner = space_->OwnerOf(*last);
      if (owner.ok() && *owner == heap_store) {
        SHOREMT_ASSIGN_OR_RETURN(PageHandle h,
                                 pool_->FixPage(*last, LatchMode::kExclusive));
        page::SlottedPage sp(h.data());
        if (sp.header()->store == heap_store && sp.Fits(payload.size())) {
          SHOREMT_ASSIGN_OR_RETURN(uint16_t slot, sp.Insert(payload));
          log::LogRecord rec;
          rec.type = log::LogRecordType::kPageInsert;
          rec.page = *last;
          rec.store = heap_store;
          rec.slot = slot;
          rec.txn = txn->id;
          rec.prev_lsn = txn->last_lsn;
          rec.after.assign(payload.begin(), payload.end());
          SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log_->Append(rec));
          txns_->NoteLogged(txn, a.lsn, a.end);
          h.MarkDirty(a.end, a.lsn);
          return RecordId{*last, slot};
        }
      }
    }
    // No usable page: grow the store by one page and retry the insert on
    // it (the init callback runs inside/outside the space critical
    // section depending on the refactored_alloc knob — Figure 6).
    auto init = [&](PageNum p) -> Status {
      SHOREMT_ASSIGN_OR_RETURN(PageHandle h, pool_->NewPage(p));
      page::SlottedPage sp(h.data());
      sp.Init(p, heap_store, page::PageType::kData);
      log::LogRecord rec;
      rec.type = log::LogRecordType::kPageFormat;
      rec.page = p;
      rec.store = heap_store;
      rec.page_type = static_cast<uint8_t>(page::PageType::kData);
      rec.txn = txn->id;
      rec.prev_lsn = txn->last_lsn;
      SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log_->Append(rec));
      txns_->NoteLogged(txn, a.lsn, a.end);
      h.MarkDirty(a.end, a.lsn);
      return Status::Ok();
    };
    SHOREMT_ASSIGN_OR_RETURN(PageNum fresh,
                             space_->AllocatePage(heap_store, init));
    log::LogRecord alloc;
    alloc.type = log::LogRecordType::kAllocPage;
    alloc.page = fresh;
    alloc.store = heap_store;
    alloc.txn = txn->id;
    alloc.prev_lsn = txn->last_lsn;
    SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log_->Append(alloc));
    txns_->NoteLogged(txn, a.lsn, a.end);
    // Loop: the fresh page is now the store's last page.
  }
  return Status::Internal("heap insert failed to place the row");
}

Result<RecordId> StorageManager::Insert(txn::Transaction* txn,
                                        const TableInfo& table, uint64_t key,
                                        std::span<const uint8_t> payload) {
  btree::BTree* index = index_of(table);
  if (index == nullptr) return Status::NotFound("unknown table");
  SHOREMT_ASSIGN_OR_RETURN(RecordId rid,
                           HeapInsert(txn, table.heap_store, payload));
  SHOREMT_RETURN_NOT_OK(
      txn->locks.LockRecord(table.heap_store, rid, lock::LockMode::kX));
  // On duplicate key the caller aborts the transaction, which rolls the
  // heap placement back through the WAL chain.
  SHOREMT_RETURN_NOT_OK(index->Insert(txn, key, rid));
  return rid;
}

Status StorageManager::ReadInto(txn::Transaction* txn, const TableInfo& table,
                                uint64_t key, std::vector<uint8_t>* out) {
  btree::BTree* index = index_of(table);
  if (index == nullptr) return Status::NotFound("unknown table");
  SHOREMT_ASSIGN_OR_RETURN(RecordId rid, index->Find(txn, key));
  SHOREMT_RETURN_NOT_OK(
      txn->locks.LockRecord(table.heap_store, rid, lock::LockMode::kS));
  SHOREMT_ASSIGN_OR_RETURN(PageHandle h,
                           pool_->FixPage(rid.page, LatchMode::kShared));
  page::SlottedPage sp(h.data());
  SHOREMT_ASSIGN_OR_RETURN(std::span<const uint8_t> rec, sp.Read(rid.slot));
  out->assign(rec.begin(), rec.end());
  return Status::Ok();
}

Result<std::vector<uint8_t>> StorageManager::Read(txn::Transaction* txn,
                                                  const TableInfo& table,
                                                  uint64_t key) {
  std::vector<uint8_t> row;
  SHOREMT_RETURN_NOT_OK(ReadInto(txn, table, key, &row));
  return row;
}

Status StorageManager::Update(txn::Transaction* txn, const TableInfo& table,
                              uint64_t key,
                              std::span<const uint8_t> payload) {
  btree::BTree* index = index_of(table);
  if (index == nullptr) return Status::NotFound("unknown table");
  SHOREMT_ASSIGN_OR_RETURN(RecordId rid, index->Find(txn, key));
  SHOREMT_RETURN_NOT_OK(
      txn->locks.LockRecord(table.heap_store, rid, lock::LockMode::kX));
  SHOREMT_ASSIGN_OR_RETURN(PageHandle h,
                           pool_->FixPage(rid.page, LatchMode::kExclusive));
  page::SlottedPage sp(h.data());
  SHOREMT_ASSIGN_OR_RETURN(std::span<const uint8_t> old, sp.Read(rid.slot));
  log::LogRecord rec;
  rec.type = log::LogRecordType::kPageUpdate;
  rec.page = rid.page;
  rec.store = table.heap_store;
  rec.slot = rid.slot;
  rec.txn = txn->id;
  rec.prev_lsn = txn->last_lsn;
  rec.before.assign(old.begin(), old.end());
  rec.after.assign(payload.begin(), payload.end());
  SHOREMT_RETURN_NOT_OK(sp.Update(rid.slot, payload));
  SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log_->Append(rec));
  txns_->NoteLogged(txn, a.lsn, a.end);
  h.MarkDirty(a.end, a.lsn);
  return Status::Ok();
}

Status StorageManager::Delete(txn::Transaction* txn, const TableInfo& table,
                              uint64_t key) {
  btree::BTree* index = index_of(table);
  if (index == nullptr) return Status::NotFound("unknown table");
  SHOREMT_ASSIGN_OR_RETURN(RecordId rid, index->Find(txn, key));
  SHOREMT_RETURN_NOT_OK(
      txn->locks.LockRecord(table.heap_store, rid, lock::LockMode::kX));
  {
    SHOREMT_ASSIGN_OR_RETURN(PageHandle h,
                             pool_->FixPage(rid.page, LatchMode::kExclusive));
    page::SlottedPage sp(h.data());
    SHOREMT_ASSIGN_OR_RETURN(std::span<const uint8_t> old, sp.Read(rid.slot));
    log::LogRecord rec;
    rec.type = log::LogRecordType::kPageDelete;
    rec.page = rid.page;
    rec.store = table.heap_store;
    rec.slot = rid.slot;
    rec.txn = txn->id;
    rec.prev_lsn = txn->last_lsn;
    rec.before.assign(old.begin(), old.end());
    SHOREMT_RETURN_NOT_OK(sp.Delete(rid.slot));
    SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log_->Append(rec));
    txns_->NoteLogged(txn, a.lsn, a.end);
    h.MarkDirty(a.end, a.lsn);
  }
  return index->Remove(txn, key);
}

Status StorageManager::Scan(
    txn::Transaction* txn, const TableInfo& table, uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, std::span<const uint8_t>)>& fn) {
  btree::BTree* index = index_of(table);
  if (index == nullptr) return Status::NotFound("unknown table");
  // Collect matches first: row locks must not be acquired while holding
  // leaf latches (latch-lock deadlock).
  std::vector<std::pair<uint64_t, RecordId>> matches;
  SHOREMT_RETURN_NOT_OK(index->Scan(lo, hi, [&](uint64_t key, RecordId rid) {
    matches.emplace_back(key, rid);
    return true;
  }));
  for (const auto& [key, rid] : matches) {
    SHOREMT_RETURN_NOT_OK(
        txn->locks.LockRecord(table.heap_store, rid, lock::LockMode::kS));
    SHOREMT_ASSIGN_OR_RETURN(PageHandle h,
                             pool_->FixPage(rid.page, LatchMode::kShared));
    page::SlottedPage sp(h.data());
    auto rec = sp.Read(rid.slot);
    if (!rec.ok()) continue;  // Deleted between index scan and read.
    if (!fn(key, *rec)) return Status::Ok();
  }
  return Status::Ok();
}

Result<Lsn> StorageManager::Checkpoint() {
  // One checkpoint at a time, snapshot through recycle: two overlapping
  // checkpoints could otherwise append their records out of snapshot
  // order, and the later-appended-but-earlier-snapshotted one would
  // become recovery's "last checkpoint" while the other's Recycle had
  // already freed commit records of transactions the stale body still
  // lists as active — resurrecting committed work as losers.
  std::lock_guard<std::mutex> ckpt_guard(ckpt_api_mutex_);
  // Decoupled (§7.7 completed): the dirty-page table's incremental
  // minimum replaces the buffer-pool scan — an O(1) read while the
  // transaction table is frozen. The blocking variant keeps the original
  // Shore behavior for the stage-comparison benches. Either way the
  // no-dirty-pages fallback is the current append horizon: everything
  // below it is clean on disk, and updates racing the snapshot are
  // covered by the active-transaction begin-LSN floor TakeCheckpoint
  // applies.
  auto redo_source = [this] {
    Lsn lsn = options_.decoupled_checkpoint ? pool_->DirtyMinRecLsn()
                                            : pool_->ScanMinRecLsn();
    return lsn.IsNull() ? log_->next_lsn() : lsn;
  };
  // The body carries catalog + space snapshots: once segments below the
  // horizon are recycled, the metadata records that built these maps are
  // gone, so recovery's analysis bootstraps from the snapshot instead.
  // The snapshot is O(database pages), so it rides only every Nth
  // checkpoint (checkpoint_snapshot_every); in between, recycling is
  // clamped to the newest snapshot-carrying record so analysis can
  // always reach one.
  bool full_snapshot = last_snapshot_ckpt_.IsNull() ||
                       ++ckpts_since_snapshot_ >=
                           options_.checkpoint_snapshot_every;
  auto augment = [this](log::CheckpointBody* body) {
    {
      std::lock_guard<std::mutex> guard(catalog_mutex_);
      body->tables.reserve(catalog_.size());
      for (const auto& [name, info] : catalog_) {
        std::vector<uint8_t> bytes;
        SerializeTableInfo(info, &bytes);
        body->tables.push_back(std::move(bytes));
      }
    }
    body->stores = space_->SnapshotStores();
  };
  Lsn redo_lsn;
  SHOREMT_ASSIGN_OR_RETURN(
      Lsn ck, txns_->TakeCheckpoint(
                  redo_source,
                  full_snapshot
                      ? std::function<void(log::CheckpointBody*)>(augment)
                      : std::function<void(log::CheckpointBody*)>(),
                  &redo_lsn));
  if (full_snapshot) {
    last_snapshot_ckpt_ = ck;
    ckpts_since_snapshot_ = 0;
  }
  // The checkpoint record is durable (TakeCheckpoint flushes it): whole
  // log segments below the low-water mark can go. Recovery never needs
  // them — redo starts at redo_lsn, undo chains of live transactions are
  // floored by it, and analysis rebuilds metadata from the newest
  // snapshot body, which the clamp keeps above the horizon.
  Lsn recycle_to = redo_lsn;
  if (recycle_to > last_snapshot_ckpt_) recycle_to = last_snapshot_ckpt_;
  log_->Recycle(recycle_to);
  return ck;
}

Status StorageManager::Shutdown() {
  SHOREMT_RETURN_NOT_OK(log_->FlushAll());
  SHOREMT_RETURN_NOT_OK(pool_->FlushAll());
  return Status::Ok();
}

// ----------------------------------------------------------------- undo ----

Status StorageManager::UndoRecord(txn::Transaction* txn, TxnId txn_id,
                                  const log::LogRecord& rec, bool log_only) {
  using log::LogRecordType;
  log::LogRecord clr;
  clr.type = LogRecordType::kClr;
  clr.txn = txn_id;
  clr.prev_lsn = txn != nullptr ? txn->last_lsn : rec.lsn;
  clr.undo_next = rec.prev_lsn;
  clr.store = rec.store;

  PageHandle handle;
  switch (rec.type) {
    case LogRecordType::kPageInsert: {
      if (!log_only) {
        SHOREMT_ASSIGN_OR_RETURN(
            handle, pool_->FixPage(rec.page, LatchMode::kExclusive));
        page::SlottedPage sp(handle.data());
        SHOREMT_RETURN_NOT_OK(sp.Delete(rec.slot));
      }
      clr.page = rec.page;
      clr.slot = rec.slot;
      clr.page_type = static_cast<uint8_t>(LogRecordType::kPageDelete);
      break;
    }
    case LogRecordType::kPageUpdate: {
      if (!log_only) {
        SHOREMT_ASSIGN_OR_RETURN(
            handle, pool_->FixPage(rec.page, LatchMode::kExclusive));
        page::SlottedPage sp(handle.data());
        SHOREMT_RETURN_NOT_OK(sp.Update(rec.slot, rec.before));
      }
      clr.page = rec.page;
      clr.slot = rec.slot;
      clr.page_type = static_cast<uint8_t>(LogRecordType::kPageUpdate);
      clr.after = rec.before;
      break;
    }
    case LogRecordType::kPageDelete: {
      if (!log_only) {
        SHOREMT_ASSIGN_OR_RETURN(
            handle, pool_->FixPage(rec.page, LatchMode::kExclusive));
        page::SlottedPage sp(handle.data());
        SHOREMT_RETURN_NOT_OK(sp.InsertAt(rec.slot, rec.before));
      }
      clr.page = rec.page;
      clr.slot = rec.slot;
      clr.page_type = static_cast<uint8_t>(LogRecordType::kPageInsert);
      clr.after = rec.before;
      break;
    }
    case LogRecordType::kBtreeInsert: {
      btree::BTree* index = nullptr;
      {
        std::lock_guard<std::mutex> guard(catalog_mutex_);
        auto it = indexes_.find(rec.store);
        if (it != indexes_.end()) index = it->second.get();
      }
      if (index == nullptr) return Status::Internal("undo: unknown index");
      btree::BTreeEntry e;
      std::memcpy(&e, rec.after.data(), sizeof(e));
      uint64_t removed;
      PageNum leaf;
      SHOREMT_ASSIGN_OR_RETURN(handle,
                               index->RemoveUnlogged(e.key, &removed, &leaf));
      clr.page = leaf;
      clr.page_type = static_cast<uint8_t>(LogRecordType::kBtreeDelete);
      clr.before = rec.after;
      break;
    }
    case LogRecordType::kBtreeDelete: {
      btree::BTree* index = nullptr;
      {
        std::lock_guard<std::mutex> guard(catalog_mutex_);
        auto it = indexes_.find(rec.store);
        if (it != indexes_.end()) index = it->second.get();
      }
      if (index == nullptr) return Status::Internal("undo: unknown index");
      btree::BTreeEntry e;
      std::memcpy(&e, rec.before.data(), sizeof(e));
      PageNum leaf;
      SHOREMT_ASSIGN_OR_RETURN(handle,
                               index->InsertUnlogged(e.key, e.value, &leaf));
      clr.page = leaf;
      clr.page_type = static_cast<uint8_t>(LogRecordType::kBtreeInsert);
      clr.after = rec.before;
      break;
    }
    default:
      // Structure/space/catalog records are not undone (freed space is
      // reclaimed lazily, as in the original system).
      return Status::Ok();
  }

  SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log_->AppendClr(clr));
  if (txn != nullptr) txns_->NoteLogged(txn, a.lsn, a.end);
  if (handle.valid()) handle.MarkDirty(a.end, a.lsn);
  return Status::Ok();
}

// ------------------------------------------------------------- recovery ----

Status StorageManager::RedoRecord(const log::LogRecord& rec, Lsn end) {
  return ApplyRedo(rec, end, /*force=*/false);
}

Status StorageManager::ApplyRedo(const log::LogRecord& rec, Lsn end,
                                 bool force) {
  using log::LogRecordType;
  switch (rec.type) {
    case LogRecordType::kClr: {
      // Re-apply the embedded inverse action.
      log::LogRecord action;
      action.type = static_cast<LogRecordType>(rec.page_type);
      action.page = rec.page;
      action.slot = rec.slot;
      action.store = rec.store;
      action.before = rec.before;
      action.after = rec.after;
      return ApplyRedo(action, end, force);
    }
    case LogRecordType::kPageFormat: {
      SHOREMT_ASSIGN_OR_RETURN(PageHandle h, pool_->NewPage(rec.page));
      // A format is the page's birth: a valid image whose LSN covers this
      // record is already past it, force mode or not (re-Init would wipe
      // later applies).
      if (page::HeaderOf(h.data())->page_lsn >= end.value &&
          page::PageLooksValid(h.data(), rec.page)) {
        return Status::Ok();
      }
      auto type = static_cast<page::PageType>(rec.page_type);
      if (type == page::PageType::kData) {
        page::SlottedPage sp(h.data());
        sp.Init(rec.page, rec.store, type);
      } else {
        btree::BTreeNode node(h.data());
        node.Init(rec.page, rec.store,
                  type == page::PageType::kBTreeLeaf ? 0 : 1);
      }
      h.MarkDirty(end, rec.lsn);
      return Status::Ok();
    }
    case LogRecordType::kPageInsert:
    case LogRecordType::kPageUpdate:
    case LogRecordType::kPageDelete:
    case LogRecordType::kBtreeInsert:
    case LogRecordType::kBtreeDelete:
    case LogRecordType::kBtreeSetContent: {
      SHOREMT_ASSIGN_OR_RETURN(
          PageHandle h, pool_->FixPage(rec.page, LatchMode::kExclusive));
      uint64_t cur_lsn = page::HeaderOf(h.data())->page_lsn;
      // Recovery replays in LSN order, so "page LSN covers end" means
      // "already applied" — skip. Commit-gated replica replay applies in
      // COMMIT order: a page's LSN can already be above an unapplied
      // record's end, so force mode applies unconditionally (the
      // dispatcher guarantees exactly-once per record) and the page LSN
      // only ratchets upward.
      if (!force && cur_lsn >= end.value) {
        return Status::Ok();  // Change already on the page image.
      }
      // An unformatted or misdirected image here means the WAL invariants
      // were violated upstream; surface it as corruption instead of
      // letting a page-level apply write through garbage offsets.
      if (page::HeaderOf(h.data())->magic != page::kPageMagic ||
          page::HeaderOf(h.data())->page_num != rec.page) {
        return Status::Corruption(
            "redo hit an invalid image for page " + std::to_string(rec.page));
      }
      switch (rec.type) {
        case LogRecordType::kPageInsert: {
          page::SlottedPage sp(h.data());
          SHOREMT_RETURN_NOT_OK(sp.InsertAt(rec.slot, rec.after));
          break;
        }
        case LogRecordType::kPageUpdate: {
          page::SlottedPage sp(h.data());
          SHOREMT_RETURN_NOT_OK(sp.Update(rec.slot, rec.after));
          break;
        }
        case LogRecordType::kPageDelete: {
          page::SlottedPage sp(h.data());
          SHOREMT_RETURN_NOT_OK(sp.Delete(rec.slot));
          break;
        }
        case LogRecordType::kBtreeInsert: {
          btree::BTreeNode node(h.data());
          btree::BTreeEntry e;
          std::memcpy(&e, rec.after.data(), sizeof(e));
          node.InsertSorted(e.key, e.value);
          break;
        }
        case LogRecordType::kBtreeDelete: {
          btree::BTreeNode node(h.data());
          btree::BTreeEntry e;
          std::memcpy(&e, rec.before.data(), sizeof(e));
          node.RemoveKey(e.key);
          break;
        }
        case LogRecordType::kBtreeSetContent: {
          btree::BTreeNode node(h.data());
          node.RestoreContent(rec.after);
          break;
        }
        default:
          break;
      }
      h.MarkDirty(force ? Lsn{std::max(cur_lsn, end.value)} : end, rec.lsn);
      return Status::Ok();
    }
    default:
      return Status::Ok();  // Metadata handled during analysis.
  }
}

Status StorageManager::RepairPage(PageNum page, uint8_t* img) {
  // Reassemble the page's full history exactly the way PITR restore does:
  // archived segments first (they carry the recycled prefix), live log
  // bytes after. Stream offset 0 is LSN 1.
  std::vector<uint8_t> stream;
  uint64_t archive_end = 0;
  if (!options_.log.archive_dir.empty()) {
    SHOREMT_ASSIGN_OR_RETURN(
        log::LogArchive archive, log::LogArchive::Open(options_.log.archive_dir));
    if (!archive.empty()) {
      if (archive.base_offset() != 0) {
        return Status::Corruption(
            "archive starts at offset " +
            std::to_string(archive.base_offset()) +
            ", log prefix was recycled unarchived — page history incomplete");
      }
      // A damaged archived segment fails its manifest CRC here and the
      // repair is refused — never rebuilt from bytes that cannot be
      // trusted.
      SHOREMT_RETURN_NOT_OK(archive.Read(0, archive.end_offset(), &stream));
      archive_end = archive.end_offset();
    }
  }
  if (log_storage_->size() > archive_end) {
    std::vector<uint8_t> live;
    // ReadFrom rejects offsets below the reclamation horizon, which is
    // exactly the no-archive-and-recycled case: the history is gone.
    SHOREMT_RETURN_NOT_OK(log_storage_->ReadFrom(archive_end, &live));
    stream.insert(stream.end(), live.begin(), live.end());
  }
  if (stream.empty()) {
    return Status::Corruption("no repair source: empty archive and log");
  }

  // Replay every record that touches `page`, oldest first, into a zeroed
  // image. The final state is at least as new as any image write-back
  // could have produced (every change to an unfixed page is WAL-durable
  // before the page leaves the pool), so redo's page-LSN idempotence
  // remains correct afterwards.
  std::memset(img, 0, kPageSize);
  bool touched = false;
  uint64_t pos = 0;
  while (pos + 4 <= stream.size()) {
    uint32_t len;
    std::memcpy(&len, stream.data() + pos, 4);
    if (len < log::kLogRecordHeaderSize + log::kLogRecordCrcSize ||
        pos + len > stream.size()) {
      break;  // Torn tail (crash mid-append): history ends here.
    }
    log::LogRecord rec;
    size_t consumed = 0;
    Status ds = log::DeserializeLogRecord(
        std::span<const uint8_t>(stream).subspan(pos), &rec, &consumed);
    if (!ds.ok()) {
      // A damaged record anywhere in the stream poisons everything after
      // it — a partial replay would silently hand back a stale image.
      return Status::Corruption(ds.message() + " at LSN " +
                                std::to_string(pos + 1) + " during repair");
    }
    Lsn end{pos + 1 + len};
    rec.lsn = Lsn{pos + 1};
    if (rec.page == page) {
      SHOREMT_RETURN_NOT_OK(RepairRedoToImage(rec, end, img));
      touched = true;
    }
    pos += len;
  }
  if (!touched) {
    return Status::Corruption("no log record references page " +
                              std::to_string(page) + " — unrepairable");
  }
  if (!page::PageLooksValid(img, page)) {
    return Status::Corruption("repaired image for page " +
                              std::to_string(page) +
                              " failed validation");
  }
  page::StampPageChecksum(img);
  // Heal the media copy too, so the repair sticks even if the frame is
  // later evicted clean.
  io::RetryPolicy policy{options_.buffer.io.max_retries,
                         options_.buffer.io.retry_initial_backoff_ns,
                         options_.buffer.io.retry_max_backoff_ns};
  return io::RetryTransient(volume_, policy,
                            [&] { return volume_->WritePage(page, img); });
}

Status StorageManager::RepairRedoToImage(const log::LogRecord& rec, Lsn end,
                                         uint8_t* img) {
  using log::LogRecordType;
  switch (rec.type) {
    case LogRecordType::kClr: {
      log::LogRecord action;
      action.type = static_cast<LogRecordType>(rec.page_type);
      action.page = rec.page;
      action.slot = rec.slot;
      action.store = rec.store;
      action.before = rec.before;
      action.after = rec.after;
      return RepairRedoToImage(action, end, img);
    }
    case LogRecordType::kPageFormat: {
      auto type = static_cast<page::PageType>(rec.page_type);
      if (type == page::PageType::kData) {
        page::SlottedPage sp(img);
        sp.Init(rec.page, rec.store, type);
      } else {
        btree::BTreeNode node(img);
        node.Init(rec.page, rec.store,
                  type == page::PageType::kBTreeLeaf ? 0 : 1);
      }
      page::HeaderOf(img)->page_lsn = end.value;
      return Status::Ok();
    }
    case LogRecordType::kPageInsert:
    case LogRecordType::kPageUpdate:
    case LogRecordType::kPageDelete:
    case LogRecordType::kBtreeInsert:
    case LogRecordType::kBtreeDelete:
    case LogRecordType::kBtreeSetContent: {
      if (page::HeaderOf(img)->magic != page::kPageMagic) {
        return Status::Corruption(
            "repair replay met an update before the format of page " +
            std::to_string(rec.page));
      }
      switch (rec.type) {
        case LogRecordType::kPageInsert: {
          page::SlottedPage sp(img);
          SHOREMT_RETURN_NOT_OK(sp.InsertAt(rec.slot, rec.after));
          break;
        }
        case LogRecordType::kPageUpdate: {
          page::SlottedPage sp(img);
          SHOREMT_RETURN_NOT_OK(sp.Update(rec.slot, rec.after));
          break;
        }
        case LogRecordType::kPageDelete: {
          page::SlottedPage sp(img);
          SHOREMT_RETURN_NOT_OK(sp.Delete(rec.slot));
          break;
        }
        case LogRecordType::kBtreeInsert: {
          btree::BTreeNode node(img);
          btree::BTreeEntry e;
          std::memcpy(&e, rec.after.data(), sizeof(e));
          node.InsertSorted(e.key, e.value);
          break;
        }
        case LogRecordType::kBtreeDelete: {
          btree::BTreeNode node(img);
          btree::BTreeEntry e;
          std::memcpy(&e, rec.before.data(), sizeof(e));
          node.RemoveKey(e.key);
          break;
        }
        case LogRecordType::kBtreeSetContent: {
          btree::BTreeNode node(img);
          node.RestoreContent(rec.after);
          break;
        }
        default:
          break;
      }
      page::HeaderOf(img)->page_lsn = end.value;
      return Status::Ok();
    }
    default:
      return Status::Ok();  // Metadata records carry no page bytes.
  }
}

void StorageManager::RaiseNextStore(StoreId store) {
  StoreId want = store + 1;
  StoreId cur = next_store_.load(std::memory_order_relaxed);
  while (cur < want &&
         !next_store_.compare_exchange_weak(cur, want,
                                            std::memory_order_relaxed)) {
  }
}

Status StorageManager::ApplyMetadata(const log::LogRecord& rec,
                                     log::CheckpointBody* ckpt_out) {
  using log::LogRecordType;
  switch (rec.type) {
    case LogRecordType::kCheckpoint: {
      log::CheckpointBody local;
      log::CheckpointBody* body = ckpt_out != nullptr ? ckpt_out : &local;
      SHOREMT_RETURN_NOT_OK(DeserializeCheckpoint(rec.after, body));
      // Bootstrap metadata from the snapshots (idempotent against the
      // records already applied and those still ahead).
      for (const auto& t : body->tables) {
        TableInfo info;
        SHOREMT_RETURN_NOT_OK(DeserializeTableInfo(t, &info));
        RaiseNextStore(std::max(info.heap_store, info.index_store));
        RegisterTable(info);
      }
      for (const auto& [store, pages] : body->stores) {
        RaiseNextStore(store);
        SHOREMT_RETURN_NOT_OK(space_->ApplyCreateStore(store));
        for (PageNum page : pages) {
          SHOREMT_RETURN_NOT_OK(space_->ApplyAllocPage(store, page));
        }
      }
      return Status::Ok();
    }
    case LogRecordType::kCreateStore:
      RaiseNextStore(rec.store);
      return space_->ApplyCreateStore(rec.store);
    case LogRecordType::kAllocPage:
      return space_->ApplyAllocPage(rec.store, rec.page);
    case LogRecordType::kCatalog: {
      TableInfo info;
      SHOREMT_RETURN_NOT_OK(DeserializeTableInfo(rec.after, &info));
      RaiseNextStore(std::max(info.heap_store, info.index_store));
      RegisterTable(info);
      return Status::Ok();
    }
    default:
      return Status::Ok();
  }
}

Status StorageManager::AnalyzeLog(AnalysisState* out,
                                  bool honor_checkpoint_redo) {
  // Analysis: scan the LIVE log (from the reclamation horizon — with
  // recycling, earlier segments are gone), find the last checkpoint, and
  // rebuild the space map + catalog + active transaction table. Metadata
  // below the horizon comes from the checkpoint body's snapshots; records
  // above it are re-applied through idempotent hooks, so the fuzzy
  // overlap between the two is harmless.
  Lsn redo_start = log_->reclaim_horizon();
  // Losers evidenced by scanned records. Kept separate from checkpoint
  // hearsay: only the LAST checkpoint's active table is merged in, at the
  // end. An EARLIER checkpoint may list a transaction whose commit record
  // has since been recycled (it committed before the current horizon) —
  // seeding losers from that body would roll back committed work. For the
  // last checkpoint the hazard cannot arise: every listed transaction's
  // begin LSN is ≥ that checkpoint's redo floor ≥ the recycle horizon, so
  // its commit/abort record (which follows its begin) is in the scanned
  // region whenever it exists.
  std::map<TxnId, Lsn> scanned_losers;
  // Transactions whose commit/abort record the scan has passed: a fuzzy
  // checkpoint can still list them as active (the snapshot ran between
  // their commit-record append and their retirement), and they must never
  // be resurrected as losers.
  std::set<TxnId> ended;
  std::vector<log::CheckpointTxn> last_checkpoint_active;

  SHOREMT_RETURN_NOT_OK(log_->Scan([&](const log::LogRecord& rec, Lsn end) {
    (void)end;
    using log::LogRecordType;
    switch (rec.type) {
      case LogRecordType::kCheckpoint: {
        log::CheckpointBody body;
        SHOREMT_RETURN_NOT_OK(ApplyMetadata(rec, &body));
        // Remember only the LATEST checkpoint's active table (see the
        // scanned_losers comment above); it is merged after the scan.
        last_checkpoint_active = std::move(body.active_txns);
        if (honor_checkpoint_redo && !body.redo_lsn.IsNull()) {
          redo_start = body.redo_lsn;
        }
        break;
      }
      case LogRecordType::kCreateStore:
      case LogRecordType::kAllocPage:
      case LogRecordType::kCatalog:
        SHOREMT_RETURN_NOT_OK(ApplyMetadata(rec));
        break;
      case LogRecordType::kCommit:
      case LogRecordType::kAbort:
        scanned_losers.erase(rec.txn);
        ended.insert(rec.txn);
        break;
      default:
        break;
    }
    if (rec.txn != kInvalidTxnId &&
        rec.type != LogRecordType::kCommit &&
        rec.type != LogRecordType::kAbort) {
      scanned_losers[rec.txn] = rec.lsn;
    }
    return Status::Ok();
  }));

  // Final loser table: record-evidenced losers, plus the last checkpoint's
  // active transactions that never ended in the scanned region. Take the
  // max last_lsn per transaction — records scanned after the (fuzzy)
  // snapshot carry newer undo-chain tails than the body.
  out->losers = std::move(scanned_losers);
  for (const log::CheckpointTxn& t : last_checkpoint_active) {
    if (ended.contains(t.id)) continue;
    Lsn& slot = out->losers[t.id];
    if (t.last_lsn > slot) slot = t.last_lsn;
  }
  out->redo_start = redo_start;
  return Status::Ok();
}

Status StorageManager::UndoLosers(const std::map<TxnId, Lsn>& losers,
                                  bool structure_only) {
  // Roll back losers (newest first), logging CLRs so a crash during
  // recovery is itself recoverable. Promotion undoes structure-only: a
  // replica's commit-gated replay never applied a loser's heap records,
  // so only its immediately-applied B-tree records touch pages here —
  // but heap CLRs are still LOGGED (log_only) so a later restart of the
  // promoted log, which redoes the loser's heap records, compensates
  // them instead of colliding with post-promotion slot reuse.
  for (auto it = losers.rbegin(); it != losers.rend(); ++it) {
    TxnId txn_id = it->first;
    Lsn cursor = it->second;
    while (!cursor.IsNull()) {
      SHOREMT_ASSIGN_OR_RETURN(log::LogRecord rec, log_->ReadRecord(cursor));
      if (rec.type == log::LogRecordType::kClr) {
        cursor = rec.undo_next;
        continue;
      }
      bool is_btree = rec.type == log::LogRecordType::kBtreeInsert ||
                      rec.type == log::LogRecordType::kBtreeDelete;
      SHOREMT_RETURN_NOT_OK(UndoRecord(
          nullptr, txn_id, rec, /*log_only=*/structure_only && !is_btree));
      cursor = rec.prev_lsn;
    }
    log::LogRecord done;
    done.type = log::LogRecordType::kAbort;
    done.txn = txn_id;
    SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log_->Append(done));
    SHOREMT_RETURN_NOT_OK(log_->FlushTo(a.end));
  }
  return Status::Ok();
}

Status StorageManager::Recover() {
  AnalysisState analysis;
  SHOREMT_RETURN_NOT_OK(AnalyzeLog(
      &analysis,
      // A restore rebuilds an EMPTY volume: checkpoint redo low-water
      // marks describe page state the fresh volume does not have, so redo
      // must replay from the very beginning of the (reconstructed) log.
      /*honor_checkpoint_redo=*/options_.open_mode != OpenMode::kRestore));
  Lsn redo_start = analysis.redo_start;

  // --- Redo: replay history from the checkpoint's low-water mark only —
  // the whole point of the cleaner/checkpoint loop. redo_scan_bytes is
  // the measured window; compare it against LogStats::bytes (everything
  // ever written) to see the bound.
  log_->NoteRedoScanBytes(log_storage_->size() -
                          std::min(log_storage_->size(),
                                   redo_start.value - 1));
  // Redo windowing: buffer `window` records, prefetch the distinct pages
  // the window names (detached async reads through the buffer pool), then
  // apply the window strictly in log order. The page reads move off the
  // critical path; the applies themselves never reorder, so the replayed
  // state is byte-identical to record-at-a-time redo.
  const size_t window = options_.recovery_prefetch_window;
  std::vector<std::pair<log::LogRecord, Lsn>> pending;
  std::vector<PageNum> prefetch;
  auto flush_window = [&]() -> Status {
    if (pending.empty()) return Status::Ok();
    if (window > 0) {
      prefetch.clear();
      for (const auto& [rec, end] : pending) {
        // kPageFormat allocates via NewPage — no read to warm. A CLR's
        // embedded action targets rec.page like any page record.
        if (rec.type == log::LogRecordType::kPageFormat) continue;
        if (rec.page == kInvalidPageNum) continue;
        if (std::find(prefetch.begin(), prefetch.end(), rec.page) ==
            prefetch.end()) {
          prefetch.push_back(rec.page);
        }
      }
      pool_->PrefetchPages(prefetch);
    }
    for (const auto& [rec, end] : pending) {
      SHOREMT_RETURN_NOT_OK(RedoRecord(rec, end));
    }
    pending.clear();
    return Status::Ok();
  };
  SHOREMT_RETURN_NOT_OK(log_->Scan(
      [&](const log::LogRecord& rec, Lsn end) {
        // LogRecord owns its payload vectors, so buffering copies is safe.
        pending.emplace_back(rec, end);
        if (pending.size() < std::max<size_t>(window, 1)) return Status::Ok();
        return flush_window();
      },
      redo_start));
  SHOREMT_RETURN_NOT_OK(flush_window());

  SHOREMT_RETURN_NOT_OK(UndoLosers(analysis.losers,
                                   /*structure_only=*/false));
  SHOREMT_RETURN_NOT_OK(log_->FlushAll());
  return Status::Ok();
}

Status StorageManager::PromoteRecover() {
  // Promotion runs over a drained replica: every committed record the
  // primary shipped is already applied (page state), and the receive log
  // has been truncated to a record boundary. The normal recovery tail
  // minus redo: analysis finds the in-flight transactions, whose
  // commit-gated heap records were never applied — undo their B-tree
  // records (applied immediately during streaming) and formally abort
  // them, so a later NORMAL restart over this log sees them ended and the
  // asymmetry (skipped heap redo vs no heap undo) can never bite.
  AnalysisState analysis;
  SHOREMT_RETURN_NOT_OK(AnalyzeLog(&analysis,
                                   /*honor_checkpoint_redo=*/true));
  SHOREMT_RETURN_NOT_OK(UndoLosers(analysis.losers,
                                   /*structure_only=*/true));
  SHOREMT_RETURN_NOT_OK(log_->FlushAll());
  return Status::Ok();
}

}  // namespace shoremt::sm
