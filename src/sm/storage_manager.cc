#include "sm/storage_manager.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "btree/btree_node.h"
#include "page/page.h"
#include "page/slotted_page.h"

namespace shoremt::sm {

using buffer::PageHandle;
using sync::LatchMode;

namespace {

/// Catalog entry wire format: u32 name_len | name | u32 heap | u32 index |
/// u64 root.
void SerializeTableInfo(const TableInfo& info, std::vector<uint8_t>* out) {
  out->clear();
  auto put = [&](const void* p, size_t n) {
    const auto* b = static_cast<const uint8_t*>(p);
    out->insert(out->end(), b, b + n);
  };
  uint32_t len = static_cast<uint32_t>(info.name.size());
  put(&len, 4);
  put(info.name.data(), info.name.size());
  put(&info.heap_store, 4);
  put(&info.index_store, 4);
  put(&info.index_root, 8);
}

Status DeserializeTableInfo(std::span<const uint8_t> data, TableInfo* info) {
  if (data.size() < 4) return Status::Corruption("catalog entry truncated");
  uint32_t len;
  std::memcpy(&len, data.data(), 4);
  if (data.size() < 4 + len + 16) {
    return Status::Corruption("catalog entry truncated");
  }
  info->name.assign(reinterpret_cast<const char*>(data.data() + 4), len);
  std::memcpy(&info->heap_store, data.data() + 4 + len, 4);
  std::memcpy(&info->index_store, data.data() + 8 + len, 4);
  std::memcpy(&info->index_root, data.data() + 12 + len, 8);
  return Status::Ok();
}

}  // namespace

StorageManager::StorageManager(StorageOptions options, io::Volume* volume,
                               log::LogStorage* log_storage)
    : options_(options), volume_(volume), log_storage_(log_storage) {
  log_ = std::make_unique<log::LogManager>(log_storage_, options_.log);
  pool_ = std::make_unique<buffer::BufferPool>(
      volume_, options_.buffer,
      [this](Lsn lsn) { return log_->FlushTo(lsn); });
  pool_->SetLsnProvider([this] { return log_->next_lsn(); });
  space_ = std::make_unique<space::SpaceManager>(volume_, options_.space);
  locks_ = std::make_unique<lock::LockManager>(options_.lock);
  txns_ = std::make_unique<txn::TxnManager>(log_.get(), locks_.get(),
                                            options_.txn);
  txns_->SetUndoApplier(
      [this](txn::Transaction* txn, const log::LogRecord& rec) {
        return UndoRecord(txn, txn->id, rec);
      });
}

StorageManager::~StorageManager() {
  if (!crashed_) (void)Shutdown();
}

Result<std::unique_ptr<StorageManager>> StorageManager::Open(
    StorageOptions options, io::Volume* volume,
    log::LogStorage* log_storage) {
  if (volume->NumPages() < kPagesPerExtent) {
    SHOREMT_RETURN_NOT_OK(volume->Extend(kPagesPerExtent));
  }
  auto sm = std::unique_ptr<StorageManager>(
      new StorageManager(options, volume, log_storage));
  if (log_storage->size() > 0) {
    SHOREMT_RETURN_NOT_OK(sm->Recover());
  }
  return sm;
}

void StorageManager::RegisterTable(const TableInfo& info) {
  std::lock_guard<std::mutex> guard(catalog_mutex_);
  catalog_[info.name] = info;
  indexes_[info.index_store] = std::make_unique<btree::BTree>(
      pool_.get(), space_.get(), log_.get(), txns_.get(), info.index_store,
      info.index_root, options_.btree);
}

btree::BTree* StorageManager::index_of(const TableInfo& table) {
  std::lock_guard<std::mutex> guard(catalog_mutex_);
  auto it = indexes_.find(table.index_store);
  return it == indexes_.end() ? nullptr : it->second.get();
}

Result<TableInfo> StorageManager::CreateTable(txn::Transaction* txn,
                                              const std::string& name) {
  // Reserve the name under the catalog mutex so two racing CreateTable
  // calls cannot both pass the uniqueness check and overwrite each
  // other's catalog entry; the reservation is dropped on any error.
  {
    std::lock_guard<std::mutex> guard(catalog_mutex_);
    if (catalog_.contains(name) || !creating_.insert(name).second) {
      return Status::AlreadyExists("table exists: " + name);
    }
  }
  Result<TableInfo> result = CreateTableReserved(txn, name);
  std::lock_guard<std::mutex> guard(catalog_mutex_);
  creating_.erase(name);
  return result;
}

Result<TableInfo> StorageManager::CreateTableReserved(
    txn::Transaction* txn, const std::string& name) {
  TableInfo info;
  info.name = name;
  info.heap_store = next_store_.fetch_add(1, std::memory_order_relaxed);
  info.index_store = next_store_.fetch_add(1, std::memory_order_relaxed);

  // Exclusive store locks, held until the DDL transaction ends: a
  // concurrent transactional OpenTable blocks on these instead of
  // observing the table half-created.
  SHOREMT_RETURN_NOT_OK(
      txn->locks.LockStore(info.heap_store, lock::LockMode::kX));
  SHOREMT_RETURN_NOT_OK(
      txn->locks.LockStore(info.index_store, lock::LockMode::kX));

  for (StoreId sid : {info.heap_store, info.index_store}) {
    SHOREMT_RETURN_NOT_OK(space_->CreateStore(sid));
    log::LogRecord rec;
    rec.type = log::LogRecordType::kCreateStore;
    rec.store = sid;
    rec.txn = txn->id;
    rec.prev_lsn = txn->last_lsn;
    SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log_->Append(rec));
    txns_->NoteLogged(txn, a.lsn, a.end);
  }

  SHOREMT_ASSIGN_OR_RETURN(
      info.index_root,
      btree::BTree::CreateRoot(pool_.get(), space_.get(), log_.get(),
                               txns_.get(), txn, info.index_store));

  log::LogRecord cat;
  cat.type = log::LogRecordType::kCatalog;
  cat.txn = txn->id;
  cat.prev_lsn = txn->last_lsn;
  SerializeTableInfo(info, &cat.after);
  SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log_->Append(cat));
  txns_->NoteLogged(txn, a.lsn, a.end);

  RegisterTable(info);
  return info;
}

Result<TableInfo> StorageManager::OpenTable(const std::string& name) const {
  std::lock_guard<std::mutex> guard(catalog_mutex_);
  auto it = catalog_.find(name);
  if (it == catalog_.end()) return Status::NotFound("no table " + name);
  return it->second;
}

Result<TableInfo> StorageManager::OpenTable(txn::Transaction* txn,
                                            const std::string& name) {
  SHOREMT_ASSIGN_OR_RETURN(
      TableInfo info,
      static_cast<const StorageManager*>(this)->OpenTable(name));
  // Shared store lock: if the creating transaction still holds its X
  // locks, we wait here until the DDL commits (or time out if it never
  // does) rather than touch a half-built table.
  SHOREMT_RETURN_NOT_OK(
      txn->locks.LockStore(info.heap_store, lock::LockMode::kIS));
  return info;
}

Result<RecordId> StorageManager::HeapInsert(txn::Transaction* txn,
                                            StoreId heap_store,
                                            std::span<const uint8_t> payload) {
  if (payload.size() > page::SlottedPage::MaxRecordSize()) {
    return Status::InvalidArgument("row too large for a page");
  }
  for (int attempt = 0; attempt < 3; ++attempt) {
    // Append target: the store's last page (cache vs chain walk is a
    // space-manager knob, §7.6).
    auto last = space_->LastPageOf(heap_store);
    if (last.ok()) {
      // §6.2.2: every insert verifies the page belongs to the right store
      // (thread-local extent cache makes this cheap in later stages).
      auto owner = space_->OwnerOf(*last);
      if (owner.ok() && *owner == heap_store) {
        SHOREMT_ASSIGN_OR_RETURN(PageHandle h,
                                 pool_->FixPage(*last, LatchMode::kExclusive));
        page::SlottedPage sp(h.data());
        if (sp.header()->store == heap_store && sp.Fits(payload.size())) {
          SHOREMT_ASSIGN_OR_RETURN(uint16_t slot, sp.Insert(payload));
          log::LogRecord rec;
          rec.type = log::LogRecordType::kPageInsert;
          rec.page = *last;
          rec.store = heap_store;
          rec.slot = slot;
          rec.txn = txn->id;
          rec.prev_lsn = txn->last_lsn;
          rec.after.assign(payload.begin(), payload.end());
          SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log_->Append(rec));
          txns_->NoteLogged(txn, a.lsn, a.end);
          h.MarkDirty(a.end);
          return RecordId{*last, slot};
        }
      }
    }
    // No usable page: grow the store by one page and retry the insert on
    // it (the init callback runs inside/outside the space critical
    // section depending on the refactored_alloc knob — Figure 6).
    auto init = [&](PageNum p) -> Status {
      SHOREMT_ASSIGN_OR_RETURN(PageHandle h, pool_->NewPage(p));
      page::SlottedPage sp(h.data());
      sp.Init(p, heap_store, page::PageType::kData);
      log::LogRecord rec;
      rec.type = log::LogRecordType::kPageFormat;
      rec.page = p;
      rec.store = heap_store;
      rec.page_type = static_cast<uint8_t>(page::PageType::kData);
      rec.txn = txn->id;
      rec.prev_lsn = txn->last_lsn;
      SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log_->Append(rec));
      txns_->NoteLogged(txn, a.lsn, a.end);
      h.MarkDirty(a.end);
      return Status::Ok();
    };
    SHOREMT_ASSIGN_OR_RETURN(PageNum fresh,
                             space_->AllocatePage(heap_store, init));
    log::LogRecord alloc;
    alloc.type = log::LogRecordType::kAllocPage;
    alloc.page = fresh;
    alloc.store = heap_store;
    alloc.txn = txn->id;
    alloc.prev_lsn = txn->last_lsn;
    SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log_->Append(alloc));
    txns_->NoteLogged(txn, a.lsn, a.end);
    // Loop: the fresh page is now the store's last page.
  }
  return Status::Internal("heap insert failed to place the row");
}

Result<RecordId> StorageManager::Insert(txn::Transaction* txn,
                                        const TableInfo& table, uint64_t key,
                                        std::span<const uint8_t> payload) {
  btree::BTree* index = index_of(table);
  if (index == nullptr) return Status::NotFound("unknown table");
  SHOREMT_ASSIGN_OR_RETURN(RecordId rid,
                           HeapInsert(txn, table.heap_store, payload));
  SHOREMT_RETURN_NOT_OK(
      txn->locks.LockRecord(table.heap_store, rid, lock::LockMode::kX));
  // On duplicate key the caller aborts the transaction, which rolls the
  // heap placement back through the WAL chain.
  SHOREMT_RETURN_NOT_OK(index->Insert(txn, key, rid));
  return rid;
}

Status StorageManager::ReadInto(txn::Transaction* txn, const TableInfo& table,
                                uint64_t key, std::vector<uint8_t>* out) {
  btree::BTree* index = index_of(table);
  if (index == nullptr) return Status::NotFound("unknown table");
  SHOREMT_ASSIGN_OR_RETURN(RecordId rid, index->Find(txn, key));
  SHOREMT_RETURN_NOT_OK(
      txn->locks.LockRecord(table.heap_store, rid, lock::LockMode::kS));
  SHOREMT_ASSIGN_OR_RETURN(PageHandle h,
                           pool_->FixPage(rid.page, LatchMode::kShared));
  page::SlottedPage sp(h.data());
  SHOREMT_ASSIGN_OR_RETURN(std::span<const uint8_t> rec, sp.Read(rid.slot));
  out->assign(rec.begin(), rec.end());
  return Status::Ok();
}

Result<std::vector<uint8_t>> StorageManager::Read(txn::Transaction* txn,
                                                  const TableInfo& table,
                                                  uint64_t key) {
  std::vector<uint8_t> row;
  SHOREMT_RETURN_NOT_OK(ReadInto(txn, table, key, &row));
  return row;
}

Status StorageManager::Update(txn::Transaction* txn, const TableInfo& table,
                              uint64_t key,
                              std::span<const uint8_t> payload) {
  btree::BTree* index = index_of(table);
  if (index == nullptr) return Status::NotFound("unknown table");
  SHOREMT_ASSIGN_OR_RETURN(RecordId rid, index->Find(txn, key));
  SHOREMT_RETURN_NOT_OK(
      txn->locks.LockRecord(table.heap_store, rid, lock::LockMode::kX));
  SHOREMT_ASSIGN_OR_RETURN(PageHandle h,
                           pool_->FixPage(rid.page, LatchMode::kExclusive));
  page::SlottedPage sp(h.data());
  SHOREMT_ASSIGN_OR_RETURN(std::span<const uint8_t> old, sp.Read(rid.slot));
  log::LogRecord rec;
  rec.type = log::LogRecordType::kPageUpdate;
  rec.page = rid.page;
  rec.store = table.heap_store;
  rec.slot = rid.slot;
  rec.txn = txn->id;
  rec.prev_lsn = txn->last_lsn;
  rec.before.assign(old.begin(), old.end());
  rec.after.assign(payload.begin(), payload.end());
  SHOREMT_RETURN_NOT_OK(sp.Update(rid.slot, payload));
  SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log_->Append(rec));
  txns_->NoteLogged(txn, a.lsn, a.end);
  h.MarkDirty(a.end);
  return Status::Ok();
}

Status StorageManager::Delete(txn::Transaction* txn, const TableInfo& table,
                              uint64_t key) {
  btree::BTree* index = index_of(table);
  if (index == nullptr) return Status::NotFound("unknown table");
  SHOREMT_ASSIGN_OR_RETURN(RecordId rid, index->Find(txn, key));
  SHOREMT_RETURN_NOT_OK(
      txn->locks.LockRecord(table.heap_store, rid, lock::LockMode::kX));
  {
    SHOREMT_ASSIGN_OR_RETURN(PageHandle h,
                             pool_->FixPage(rid.page, LatchMode::kExclusive));
    page::SlottedPage sp(h.data());
    SHOREMT_ASSIGN_OR_RETURN(std::span<const uint8_t> old, sp.Read(rid.slot));
    log::LogRecord rec;
    rec.type = log::LogRecordType::kPageDelete;
    rec.page = rid.page;
    rec.store = table.heap_store;
    rec.slot = rid.slot;
    rec.txn = txn->id;
    rec.prev_lsn = txn->last_lsn;
    rec.before.assign(old.begin(), old.end());
    SHOREMT_RETURN_NOT_OK(sp.Delete(rid.slot));
    SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log_->Append(rec));
    txns_->NoteLogged(txn, a.lsn, a.end);
    h.MarkDirty(a.end);
  }
  return index->Remove(txn, key);
}

Status StorageManager::Scan(
    txn::Transaction* txn, const TableInfo& table, uint64_t lo, uint64_t hi,
    const std::function<bool(uint64_t, std::span<const uint8_t>)>& fn) {
  btree::BTree* index = index_of(table);
  if (index == nullptr) return Status::NotFound("unknown table");
  // Collect matches first: row locks must not be acquired while holding
  // leaf latches (latch-lock deadlock).
  std::vector<std::pair<uint64_t, RecordId>> matches;
  SHOREMT_RETURN_NOT_OK(index->Scan(lo, hi, [&](uint64_t key, RecordId rid) {
    matches.emplace_back(key, rid);
    return true;
  }));
  for (const auto& [key, rid] : matches) {
    SHOREMT_RETURN_NOT_OK(
        txn->locks.LockRecord(table.heap_store, rid, lock::LockMode::kS));
    SHOREMT_ASSIGN_OR_RETURN(PageHandle h,
                             pool_->FixPage(rid.page, LatchMode::kShared));
    page::SlottedPage sp(h.data());
    auto rec = sp.Read(rid.slot);
    if (!rec.ok()) continue;  // Deleted between index scan and read.
    if (!fn(key, *rec)) return Status::Ok();
  }
  return Status::Ok();
}

Result<Lsn> StorageManager::Checkpoint() {
  if (options_.decoupled_checkpoint) {
    // §7.7: the cleaner's tracked LSN replaces the buffer pool scan. Run a
    // sweep if none has completed yet (cold start).
    if (pool_->CleanerTrackedLsn().IsNull()) {
      SHOREMT_RETURN_NOT_OK(pool_->CleanerSweep());
    }
    return txns_->TakeCheckpoint([this] {
      Lsn lsn = pool_->CleanerTrackedLsn();
      return lsn.IsNull() ? Lsn{1} : lsn;
    });
  }
  // Original Shore: scan the whole pool while the transaction table is
  // frozen.
  return txns_->TakeCheckpoint([this] {
    Lsn lsn = pool_->ScanMinRecLsn();
    return lsn.IsNull() ? log_->durable_lsn() : lsn;
  });
}

Status StorageManager::Shutdown() {
  SHOREMT_RETURN_NOT_OK(log_->FlushAll());
  SHOREMT_RETURN_NOT_OK(pool_->FlushAll());
  return Status::Ok();
}

// ----------------------------------------------------------------- undo ----

Status StorageManager::UndoRecord(txn::Transaction* txn, TxnId txn_id,
                                  const log::LogRecord& rec) {
  using log::LogRecordType;
  log::LogRecord clr;
  clr.type = LogRecordType::kClr;
  clr.txn = txn_id;
  clr.prev_lsn = txn != nullptr ? txn->last_lsn : rec.lsn;
  clr.undo_next = rec.prev_lsn;
  clr.store = rec.store;

  PageHandle handle;
  switch (rec.type) {
    case LogRecordType::kPageInsert: {
      SHOREMT_ASSIGN_OR_RETURN(
          handle, pool_->FixPage(rec.page, LatchMode::kExclusive));
      page::SlottedPage sp(handle.data());
      SHOREMT_RETURN_NOT_OK(sp.Delete(rec.slot));
      clr.page = rec.page;
      clr.slot = rec.slot;
      clr.page_type = static_cast<uint8_t>(LogRecordType::kPageDelete);
      break;
    }
    case LogRecordType::kPageUpdate: {
      SHOREMT_ASSIGN_OR_RETURN(
          handle, pool_->FixPage(rec.page, LatchMode::kExclusive));
      page::SlottedPage sp(handle.data());
      SHOREMT_RETURN_NOT_OK(sp.Update(rec.slot, rec.before));
      clr.page = rec.page;
      clr.slot = rec.slot;
      clr.page_type = static_cast<uint8_t>(LogRecordType::kPageUpdate);
      clr.after = rec.before;
      break;
    }
    case LogRecordType::kPageDelete: {
      SHOREMT_ASSIGN_OR_RETURN(
          handle, pool_->FixPage(rec.page, LatchMode::kExclusive));
      page::SlottedPage sp(handle.data());
      SHOREMT_RETURN_NOT_OK(sp.InsertAt(rec.slot, rec.before));
      clr.page = rec.page;
      clr.slot = rec.slot;
      clr.page_type = static_cast<uint8_t>(LogRecordType::kPageInsert);
      clr.after = rec.before;
      break;
    }
    case LogRecordType::kBtreeInsert: {
      btree::BTree* index = nullptr;
      {
        std::lock_guard<std::mutex> guard(catalog_mutex_);
        auto it = indexes_.find(rec.store);
        if (it != indexes_.end()) index = it->second.get();
      }
      if (index == nullptr) return Status::Internal("undo: unknown index");
      btree::BTreeEntry e;
      std::memcpy(&e, rec.after.data(), sizeof(e));
      uint64_t removed;
      PageNum leaf;
      SHOREMT_ASSIGN_OR_RETURN(handle,
                               index->RemoveUnlogged(e.key, &removed, &leaf));
      clr.page = leaf;
      clr.page_type = static_cast<uint8_t>(LogRecordType::kBtreeDelete);
      clr.before = rec.after;
      break;
    }
    case LogRecordType::kBtreeDelete: {
      btree::BTree* index = nullptr;
      {
        std::lock_guard<std::mutex> guard(catalog_mutex_);
        auto it = indexes_.find(rec.store);
        if (it != indexes_.end()) index = it->second.get();
      }
      if (index == nullptr) return Status::Internal("undo: unknown index");
      btree::BTreeEntry e;
      std::memcpy(&e, rec.before.data(), sizeof(e));
      PageNum leaf;
      SHOREMT_ASSIGN_OR_RETURN(handle,
                               index->InsertUnlogged(e.key, e.value, &leaf));
      clr.page = leaf;
      clr.page_type = static_cast<uint8_t>(LogRecordType::kBtreeInsert);
      clr.after = rec.before;
      break;
    }
    default:
      // Structure/space/catalog records are not undone (freed space is
      // reclaimed lazily, as in the original system).
      return Status::Ok();
  }

  SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log_->AppendClr(clr));
  if (txn != nullptr) txns_->NoteLogged(txn, a.lsn, a.end);
  handle.MarkDirty(a.end);
  return Status::Ok();
}

// ------------------------------------------------------------- recovery ----

Status StorageManager::RedoRecord(const log::LogRecord& rec, Lsn end) {
  using log::LogRecordType;
  switch (rec.type) {
    case LogRecordType::kClr: {
      // Re-apply the embedded inverse action.
      log::LogRecord action;
      action.type = static_cast<LogRecordType>(rec.page_type);
      action.page = rec.page;
      action.slot = rec.slot;
      action.store = rec.store;
      action.before = rec.before;
      action.after = rec.after;
      return RedoRecord(action, end);
    }
    case LogRecordType::kPageFormat: {
      SHOREMT_ASSIGN_OR_RETURN(PageHandle h, pool_->NewPage(rec.page));
      if (page::HeaderOf(h.data())->page_lsn >= end.value &&
          page::PageLooksValid(h.data(), rec.page)) {
        return Status::Ok();
      }
      auto type = static_cast<page::PageType>(rec.page_type);
      if (type == page::PageType::kData) {
        page::SlottedPage sp(h.data());
        sp.Init(rec.page, rec.store, type);
      } else {
        btree::BTreeNode node(h.data());
        node.Init(rec.page, rec.store,
                  type == page::PageType::kBTreeLeaf ? 0 : 1);
      }
      h.MarkDirty(end);
      return Status::Ok();
    }
    case LogRecordType::kPageInsert:
    case LogRecordType::kPageUpdate:
    case LogRecordType::kPageDelete:
    case LogRecordType::kBtreeInsert:
    case LogRecordType::kBtreeDelete:
    case LogRecordType::kBtreeSetContent: {
      SHOREMT_ASSIGN_OR_RETURN(
          PageHandle h, pool_->FixPage(rec.page, LatchMode::kExclusive));
      if (page::HeaderOf(h.data())->page_lsn >= end.value) {
        return Status::Ok();  // Change already on the page image.
      }
      switch (rec.type) {
        case LogRecordType::kPageInsert: {
          page::SlottedPage sp(h.data());
          SHOREMT_RETURN_NOT_OK(sp.InsertAt(rec.slot, rec.after));
          break;
        }
        case LogRecordType::kPageUpdate: {
          page::SlottedPage sp(h.data());
          SHOREMT_RETURN_NOT_OK(sp.Update(rec.slot, rec.after));
          break;
        }
        case LogRecordType::kPageDelete: {
          page::SlottedPage sp(h.data());
          SHOREMT_RETURN_NOT_OK(sp.Delete(rec.slot));
          break;
        }
        case LogRecordType::kBtreeInsert: {
          btree::BTreeNode node(h.data());
          btree::BTreeEntry e;
          std::memcpy(&e, rec.after.data(), sizeof(e));
          node.InsertSorted(e.key, e.value);
          break;
        }
        case LogRecordType::kBtreeDelete: {
          btree::BTreeNode node(h.data());
          btree::BTreeEntry e;
          std::memcpy(&e, rec.before.data(), sizeof(e));
          node.RemoveKey(e.key);
          break;
        }
        case LogRecordType::kBtreeSetContent: {
          btree::BTreeNode node(h.data());
          node.RestoreContent(rec.after);
          break;
        }
        default:
          break;
      }
      h.MarkDirty(end);
      return Status::Ok();
    }
    default:
      return Status::Ok();  // Metadata handled during analysis.
  }
}

Status StorageManager::Recover() {
  // --- Analysis: rebuild space map + catalog from the whole log, find the
  // last checkpoint, and build the active transaction table.
  Lsn redo_start{1};
  std::map<TxnId, Lsn> losers;
  TxnId max_txn = 0;
  StoreId max_store = 0;

  SHOREMT_RETURN_NOT_OK(log_->Scan([&](const log::LogRecord& rec, Lsn end) {
    using log::LogRecordType;
    max_txn = std::max(max_txn, rec.txn);
    switch (rec.type) {
      case LogRecordType::kCheckpoint: {
        log::CheckpointBody body;
        SHOREMT_RETURN_NOT_OK(DeserializeCheckpoint(rec.after, &body));
        losers.clear();
        for (const auto& [id, last] : body.active_txns) {
          losers[id] = last;
        }
        if (!body.redo_lsn.IsNull()) redo_start = body.redo_lsn;
        break;
      }
      case LogRecordType::kCreateStore:
        max_store = std::max(max_store, rec.store);
        SHOREMT_RETURN_NOT_OK(space_->ApplyCreateStore(rec.store));
        break;
      case LogRecordType::kAllocPage:
        SHOREMT_RETURN_NOT_OK(space_->ApplyAllocPage(rec.store, rec.page));
        break;
      case LogRecordType::kCatalog: {
        TableInfo info;
        SHOREMT_RETURN_NOT_OK(DeserializeTableInfo(rec.after, &info));
        max_store = std::max(max_store, std::max(info.heap_store,
                                                 info.index_store));
        RegisterTable(info);
        break;
      }
      case LogRecordType::kCommit:
      case LogRecordType::kAbort:
        losers.erase(rec.txn);
        break;
      default:
        break;
    }
    if (rec.txn != kInvalidTxnId &&
        rec.type != LogRecordType::kCommit &&
        rec.type != LogRecordType::kAbort) {
      losers[rec.txn] = rec.lsn;
    }
    return Status::Ok();
  }));
  next_store_.store(max_store + 1, std::memory_order_relaxed);

  // --- Redo: replay history from the checkpoint's low-water mark.
  SHOREMT_RETURN_NOT_OK(log_->Scan(
      [&](const log::LogRecord& rec, Lsn end) {
        return RedoRecord(rec, end);
      },
      redo_start));

  // --- Undo: roll back losers (newest first), logging CLRs so a crash
  // during recovery is itself recoverable.
  for (auto it = losers.rbegin(); it != losers.rend(); ++it) {
    TxnId txn_id = it->first;
    Lsn cursor = it->second;
    while (!cursor.IsNull()) {
      SHOREMT_ASSIGN_OR_RETURN(log::LogRecord rec, log_->ReadRecord(cursor));
      if (rec.type == log::LogRecordType::kClr) {
        cursor = rec.undo_next;
        continue;
      }
      SHOREMT_RETURN_NOT_OK(UndoRecord(nullptr, txn_id, rec));
      cursor = rec.prev_lsn;
    }
    log::LogRecord done;
    done.type = log::LogRecordType::kAbort;
    done.txn = txn_id;
    SHOREMT_ASSIGN_OR_RETURN(log::Appended a, log_->Append(done));
    SHOREMT_RETURN_NOT_OK(log_->FlushTo(a.end));
  }
  SHOREMT_RETURN_NOT_OK(log_->FlushAll());
  return Status::Ok();
}

}  // namespace shoremt::sm
