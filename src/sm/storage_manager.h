#ifndef SHOREMT_SM_STORAGE_MANAGER_H_
#define SHOREMT_SM_STORAGE_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "btree/btree.h"
#include "buffer/buffer_pool.h"
#include "common/status.h"
#include "common/types.h"
#include "io/volume.h"
#include "lock/lock_manager.h"
#include "log/log_manager.h"
#include "sm/options.h"
#include "space/space_manager.h"
#include "txn/txn_manager.h"

namespace shoremt::sm {

/// A user table: a heap store for rows plus a unique B+Tree index mapping
/// 64-bit keys to row RecordIds.
struct TableInfo {
  std::string name;
  StoreId heap_store = kInvalidStoreId;
  StoreId index_store = kInvalidStoreId;
  PageNum index_root = kInvalidPageNum;
};

/// The public storage manager facade — the "value-added server" API of the
/// original Shore. Owns every subsystem: buffer pool, log, locks,
/// transactions, free space, B+Tree indexes.
///
/// Typical use:
///   auto sm = StorageManager::Open(StorageOptions::ForStage(Stage::kFinal),
///                                  &volume, &log_storage);
///   auto* txn = (*sm)->Begin();
///   auto table = (*sm)->CreateTable(txn, "accounts");
///   (*sm)->Insert(txn, *table, /*key=*/1, payload);
///   (*sm)->Commit(txn);
class StorageManager {
 public:
  /// Opens a storage manager over `volume` + `log_storage` (both owned by
  /// the caller and must outlive the manager — they are the durable state
  /// that survives simulated crashes). If the log is non-empty, crash
  /// recovery (analysis/redo/undo) runs before Open returns.
  static Result<std::unique_ptr<StorageManager>> Open(
      StorageOptions options, io::Volume* volume,
      log::LogStorage* log_storage);

  ~StorageManager();

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  // --- transactions -------------------------------------------------------

  txn::Transaction* Begin() { return txns_->Begin(); }
  Status Commit(txn::Transaction* txn) { return txns_->Commit(txn); }
  Status Abort(txn::Transaction* txn) { return txns_->Abort(txn); }

  // --- DDL ----------------------------------------------------------------

  /// Creates a table (heap + index). The catalog entry is logged and
  /// survives recovery.
  Result<TableInfo> CreateTable(txn::Transaction* txn,
                                const std::string& name);
  /// Looks up a table by name.
  Result<TableInfo> OpenTable(const std::string& name) const;

  // --- DML (key → row payload) --------------------------------------------

  /// Inserts a row; locks the new row exclusively; indexes `key`.
  Result<RecordId> Insert(txn::Transaction* txn, const TableInfo& table,
                          uint64_t key, std::span<const uint8_t> payload);
  /// Reads the row for `key` under a shared row lock.
  Result<std::vector<uint8_t>> Read(txn::Transaction* txn,
                                    const TableInfo& table, uint64_t key);
  /// Replaces the row payload for `key` under an exclusive row lock.
  Status Update(txn::Transaction* txn, const TableInfo& table, uint64_t key,
                std::span<const uint8_t> payload);
  /// Deletes the row for `key` (heap + index) under an exclusive lock.
  Status Delete(txn::Transaction* txn, const TableInfo& table, uint64_t key);
  /// Ordered scan of [lo, hi] taking shared row locks; `fn` returns false
  /// to stop.
  Status Scan(txn::Transaction* txn, const TableInfo& table, uint64_t lo,
              uint64_t hi,
              const std::function<bool(uint64_t, std::span<const uint8_t>)>& fn);

  // --- maintenance ---------------------------------------------------------

  /// Takes a fuzzy checkpoint (blocking or decoupled per options).
  Result<Lsn> Checkpoint();
  /// Flushes everything (clean shutdown).
  Status Shutdown();
  /// Marks the manager as crashed: the destructor skips the shutdown
  /// flush, so only WAL-durable state survives into the next Open —
  /// the hook recovery tests use to simulate power loss.
  void SimulateCrash() { crashed_ = true; }

  // --- component access (benches, tests, calibration) ----------------------

  buffer::BufferPool* pool() { return pool_.get(); }
  log::LogManager* log() { return log_.get(); }
  lock::LockManager* locks() { return locks_.get(); }
  txn::TxnManager* txns() { return txns_.get(); }
  space::SpaceManager* space() { return space_.get(); }
  btree::BTree* index_of(const TableInfo& table);
  const StorageOptions& options() const { return options_; }

 private:
  StorageManager(StorageOptions options, io::Volume* volume,
                 log::LogStorage* log_storage);

  /// ARIES-style restart: analysis, redo, undo.
  Status Recover();
  /// Applies one record during redo (idempotent via page LSN).
  Status RedoRecord(const log::LogRecord& rec, Lsn end);
  /// Undoes one record on behalf of `txn_id`, logging a CLR. `txn` may be
  /// null during restart undo.
  Status UndoRecord(txn::Transaction* txn, TxnId txn_id,
                    const log::LogRecord& rec);

  /// Registers a table in the in-memory catalog (create or recovery).
  void RegisterTable(const TableInfo& info);
  /// Heap row insert: picks/allocates a page with space and places the
  /// payload (logged).
  Result<RecordId> HeapInsert(txn::Transaction* txn, StoreId heap_store,
                              std::span<const uint8_t> payload);

  StorageOptions options_;
  io::Volume* volume_;
  log::LogStorage* log_storage_;

  std::unique_ptr<log::LogManager> log_;
  std::unique_ptr<buffer::BufferPool> pool_;
  std::unique_ptr<space::SpaceManager> space_;
  std::unique_ptr<lock::LockManager> locks_;
  std::unique_ptr<txn::TxnManager> txns_;

  mutable std::mutex catalog_mutex_;
  std::unordered_map<std::string, TableInfo> catalog_;
  std::unordered_map<StoreId, std::unique_ptr<btree::BTree>> indexes_;
  std::atomic<StoreId> next_store_{1};
  bool crashed_ = false;
};

}  // namespace shoremt::sm

#endif  // SHOREMT_SM_STORAGE_MANAGER_H_
