#ifndef SHOREMT_SM_STORAGE_MANAGER_H_
#define SHOREMT_SM_STORAGE_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "btree/btree.h"
#include "buffer/buffer_pool.h"
#include "common/status.h"
#include "common/types.h"
#include "io/volume.h"
#include "lock/lock_manager.h"
#include "log/log_manager.h"
#include "obs/metrics_registry.h"
#include "sm/options.h"
#include "sm/session_stats.h"
#include "space/space_manager.h"
#include "sync/periodic_daemon.h"
#include "txn/txn_manager.h"

namespace shoremt::sm {

class Session;

/// A user table: a heap store for rows plus a unique B+Tree index mapping
/// 64-bit keys to row RecordIds.
struct TableInfo {
  std::string name;
  StoreId heap_store = kInvalidStoreId;
  StoreId index_store = kInvalidStoreId;
  PageNum index_root = kInvalidPageNum;
};

/// The storage manager — the "value-added server" of the original Shore.
/// Owns every subsystem: buffer pool, log, locks, transactions, free
/// space, B+Tree indexes.
///
/// Worker threads talk to the engine through an sm::Session (sm/session.h),
/// which owns all per-thread state — RNG, read buffer, statistics:
///
///   auto sm = StorageManager::Open(StorageOptions::ForStage(Stage::kFinal),
///                                  &volume, &log_storage);
///   auto session = (*sm)->OpenSession();
///   session->Begin();
///   auto table = session->CreateTable("accounts");
///   session->Insert(*table, /*key=*/1, payload);
///   session->Commit();
///
/// The transaction-pointer facade below (Begin/Commit/Insert/... taking a
/// txn::Transaction*) is DEPRECATED: it remains as a thin shim over the
/// same internals for one release so existing callers can migrate
/// incrementally, but new code should go through Session, whose shape
/// keeps worker-thread state thread-private by construction.
class StorageManager {
 public:
  /// Opens a storage manager over `volume` + `log_storage` (both owned by
  /// the caller and must outlive the manager — they are the durable state
  /// that survives simulated crashes). If the log is non-empty, crash
  /// recovery (analysis/redo/undo) runs before Open returns.
  static Result<std::unique_ptr<StorageManager>> Open(
      StorageOptions options, io::Volume* volume,
      log::LogStorage* log_storage);

  ~StorageManager();

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  // --- sessions -----------------------------------------------------------

  /// Opens a session — the per-worker-thread handle all new code uses for
  /// transactions and DML. Each worker thread opens exactly one; the
  /// session must not outlive the manager. Destroying (or Harvest()ing)
  /// the session folds its statistics into harvested_session_stats().
  std::unique_ptr<Session> OpenSession();

  /// Sum of every harvested session's counters (sessions publish on close
  /// or explicit Harvest — the distributed-statistics design of §5).
  SessionStats harvested_session_stats() const {
    return session_stats_.Snapshot();
  }
  /// Internal: sessions fold their local counters in through this.
  void HarvestSessionStats(const SessionStats& s) { session_stats_.Add(s); }

  // --- live metrics --------------------------------------------------------

  /// The live metrics hub: sessions register WorkerCounters blocks here,
  /// the buffer/log/lock subsystems feed it through sources wired at
  /// construction, and an obs::ProfilingThread over it turns any run into
  /// a per-second CSV/JSON feed. Unlike harvested_session_stats(), its
  /// Snapshot() is live — no Harvest needed.
  obs::MetricsRegistry* metrics() { return &metrics_; }

  // --- transactions (DEPRECATED shims — use Session) ----------------------

  txn::Transaction* Begin() { return txns_->Begin(); }
  Status Commit(txn::Transaction* txn) { return txns_->Commit(txn); }
  Status Abort(txn::Transaction* txn) { return txns_->Abort(txn); }

  // --- DDL ----------------------------------------------------------------

  /// Creates a table (heap + index) holding exclusive store locks until
  /// `txn` ends, so concurrent OpenTable(txn, ...) callers cannot observe
  /// the table half-created. The catalog entry is logged and survives
  /// recovery. DDL is not undone on abort (structure records are
  /// redo-only, as in the original system): if `txn` aborts, the table
  /// remains — whole and empty — and keeps its name.
  Result<TableInfo> CreateTable(txn::Transaction* txn,
                                const std::string& name);
  /// Looks up a table by name under `txn`, taking a shared store lock: a
  /// lookup racing in-flight DDL blocks until the DDL commits or aborts.
  Result<TableInfo> OpenTable(txn::Transaction* txn, const std::string& name);
  /// DEPRECATED: lock-free catalog peek. Can observe a table whose
  /// creating transaction has not committed; use the transactional
  /// overload (or Session::OpenTable).
  Result<TableInfo> OpenTable(const std::string& name) const;

  // --- DML (key → row payload; DEPRECATED shims — use Session) ------------

  /// Inserts a row; locks the new row exclusively; indexes `key`.
  Result<RecordId> Insert(txn::Transaction* txn, const TableInfo& table,
                          uint64_t key, std::span<const uint8_t> payload);
  /// Reads the row for `key` under a shared row lock.
  Result<std::vector<uint8_t>> Read(txn::Transaction* txn,
                                    const TableInfo& table, uint64_t key);
  /// Replaces the row payload for `key` under an exclusive row lock.
  Status Update(txn::Transaction* txn, const TableInfo& table, uint64_t key,
                std::span<const uint8_t> payload);
  /// Deletes the row for `key` (heap + index) under an exclusive lock.
  Status Delete(txn::Transaction* txn, const TableInfo& table, uint64_t key);
  /// DEPRECATED: callback scan of [lo, hi] taking shared row locks; `fn`
  /// returns false to stop. New code iterates with sm::Cursor
  /// (Session::OpenCursor), which pulls rows without inverting control.
  Status Scan(txn::Transaction* txn, const TableInfo& table, uint64_t lo,
              uint64_t hi,
              const std::function<bool(uint64_t, std::span<const uint8_t>)>& fn);

  // --- maintenance ---------------------------------------------------------

  /// Takes a fuzzy checkpoint (blocking or decoupled per options): the
  /// body snapshots the dirty-page low-water mark, the active-transaction
  /// table (with begin LSNs) and the catalog/space maps, then the log is
  /// recycled up to the body's redo LSN — min(dirty low-water, oldest
  /// active transaction's begin LSN) — freeing whole segments. Recovery's
  /// redo pass starts at that LSN. Safe to call concurrently (the
  /// background daemon and manual callers may overlap).
  Result<Lsn> Checkpoint();
  /// Wakes the background checkpoint daemon immediately (no-op without
  /// one); called on log-segment pressure by the flush pipeline's hook.
  void WakeCheckpoint();
  /// Flushes everything (clean shutdown).
  Status Shutdown();
  /// Marks the manager as crashed: the destructor skips the shutdown
  /// flush and the log pipeline abandons its final drain, so only
  /// WAL-durable state survives into the next Open — the hook recovery
  /// tests use to simulate power loss. Commits submitted through
  /// CommitAsync but not yet acknowledged are deliberately lost. The
  /// background checkpoint daemon is stopped first (a checkpoint racing
  /// the teardown would be writing into an abandoned pipeline).
  void SimulateCrash() {
    ckpt_daemon_.Stop();
    crashed_ = true;
    log_->Abandon();
  }

  // --- replicated replay (src/repl) ----------------------------------------

  /// Applies one redo-able record to the local page state. `force` = false
  /// is recovery semantics (skip when the page LSN already covers `end`);
  /// `force` = true is the replica's commit-gated deferred replay, which
  /// applies records out of per-page LSN order (commit order), so the
  /// idempotence guard is skipped and the page LSN only ever ratchets up
  /// to max(current, end). Metadata records are no-ops here — feed them to
  /// ApplyMetadata.
  Status ApplyRedo(const log::LogRecord& rec, Lsn end, bool force);
  /// Applies a metadata record (kCheckpoint body snapshots, kCreateStore,
  /// kAllocPage, kCatalog) to the catalog/space maps; idempotent. Other
  /// record types are no-ops. `ckpt_out`, when non-null, receives the
  /// deserialized checkpoint body (analysis wants its active-transaction
  /// table and redo LSN; the replica does not).
  Status ApplyMetadata(const log::LogRecord& rec,
                       log::CheckpointBody* ckpt_out = nullptr);

  // --- component access (benches, tests, calibration) ----------------------

  buffer::BufferPool* pool() { return pool_.get(); }
  log::LogManager* log() { return log_.get(); }
  lock::LockManager* locks() { return locks_.get(); }
  txn::TxnManager* txns() { return txns_.get(); }
  space::SpaceManager* space() { return space_.get(); }
  btree::BTree* index_of(const TableInfo& table);
  const StorageOptions& options() const { return options_; }

 private:
  friend class Session;

  StorageManager(StorageOptions options, io::Volume* volume,
                 log::LogStorage* log_storage);

  /// Starts the checkpoint daemon (if configured) — called by Open AFTER
  /// recovery, so a background checkpoint can never interleave with the
  /// redo/undo passes.
  void StartCheckpointDaemon();

  /// Reads the row for `key` into `out` (reused across calls by sessions)
  /// under a shared row lock. Backs both Read overload styles.
  Status ReadInto(txn::Transaction* txn, const TableInfo& table, uint64_t key,
                  std::vector<uint8_t>* out);

  /// CreateTable body after the name has been reserved in `creating_`.
  Result<TableInfo> CreateTableReserved(txn::Transaction* txn,
                                        const std::string& name);

  /// Analysis output: loser transactions (id → newest logged LSN) and the
  /// redo start point.
  struct AnalysisState {
    std::map<TxnId, Lsn> losers;
    Lsn redo_start;
  };

  /// ARIES-style restart: analysis, redo, undo. In OpenMode::kRestore the
  /// redo pass starts at LSN 1 regardless of checkpoint low-water marks
  /// (the restored volume is empty — no pre-checkpoint page state exists).
  Status Recover();
  /// Replica promotion: analysis only (the replay pool already applied
  /// every committed record), then structure-only undo of losers — their
  /// commit-gated heap records were never applied, so only their
  /// immediately-applied B-tree records need compensation — and a formal
  /// kAbort per loser, making the promoted log recoverable by a normal
  /// restart.
  Status PromoteRecover();
  /// Analysis scan: rebuilds catalog/space/active-transaction state from
  /// the live log (checkpoint bodies bootstrap what recycling removed).
  /// `honor_checkpoint_redo` = false keeps redo_start at the scan start
  /// instead of adopting checkpoint redo LSNs (restore over a fresh
  /// volume).
  Status AnalyzeLog(AnalysisState* out, bool honor_checkpoint_redo);
  /// Applies one record during redo (idempotent via page LSN).
  Status RedoRecord(const log::LogRecord& rec, Lsn end);
  /// Rolls back every loser (newest first), appending a durable kAbort
  /// per transaction. `structure_only` applies only B-tree undo to pages
  /// (promotion; heap records were never applied on a replica) but still
  /// LOGS heap CLRs so a later restart of the promoted log compensates
  /// the loser's heap records it will redo.
  Status UndoLosers(const std::map<TxnId, Lsn>& losers, bool structure_only);
  /// Undoes one record on behalf of `txn_id`, logging a CLR. `txn` may be
  /// null during restart undo. With `log_only` the CLR is logged but the
  /// inverse page change is not applied (the record was never applied
  /// here — commit-gated replica replay).
  Status UndoRecord(txn::Transaction* txn, TxnId txn_id,
                    const log::LogRecord& rec, bool log_only = false);
  /// Ratchets next_store_ above `store` (metadata replay).
  void RaiseNextStore(StoreId store);

  /// Media auto-repair (wired into the buffer pool as its page repairer):
  /// rebuilds `page`'s image by replaying the full log history — archived
  /// segments (options_.log.archive_dir) first, then the live log — into
  /// a zeroed image, stamps its checksum, and durably rewrites the healed
  /// page on the volume. Fails with Corruption when the history is
  /// incomplete (prefix recycled unarchived, damaged archive segment, or
  /// no record ever referenced the page).
  Status RepairPage(PageNum page, uint8_t* img);
  /// Applies one redo-able record directly to a raw page image (never
  /// through the pool — RepairPage runs inside the pool's miss path, so a
  /// FixPage here would self-deadlock). Mirrors ApplyRedo's page-level
  /// appliers with the page LSN as the idempotence ratchet.
  Status RepairRedoToImage(const log::LogRecord& rec, Lsn end, uint8_t* img);

  /// Registers a table in the in-memory catalog (create or recovery).
  void RegisterTable(const TableInfo& info);
  /// Heap row insert: picks/allocates a page with space and places the
  /// payload (logged).
  Result<RecordId> HeapInsert(txn::Transaction* txn, StoreId heap_store,
                              std::span<const uint8_t> payload);

  StorageOptions options_;
  io::Volume* volume_;
  log::LogStorage* log_storage_;

  std::unique_ptr<log::LogManager> log_;
  std::unique_ptr<buffer::BufferPool> pool_;
  std::unique_ptr<space::SpaceManager> space_;
  std::unique_ptr<lock::LockManager> locks_;
  std::unique_ptr<txn::TxnManager> txns_;

  mutable std::mutex catalog_mutex_;
  std::unordered_map<std::string, TableInfo> catalog_;
  /// Names with an in-flight CreateTable (uniqueness holds across the
  /// gap between the check and RegisterTable).
  std::unordered_set<std::string> creating_;
  std::unordered_map<StoreId, std::unique_ptr<btree::BTree>> indexes_;
  std::atomic<StoreId> next_store_{1};
  std::atomic<uint64_t> session_seq_{1};  ///< Per-session RNG seed stream.
  SessionStatsAggregate session_stats_;
  obs::MetricsRegistry metrics_;
  bool crashed_ = false;

  /// Serializes Checkpoint() end to end (snapshot → record → recycle):
  /// overlapping checkpoints could append their records out of snapshot
  /// order, letting recovery adopt a stale active-transaction table whose
  /// commit records a fresher checkpoint already recycled. Also guards
  /// the snapshot-cadence state below.
  std::mutex ckpt_api_mutex_;
  Lsn last_snapshot_ckpt_;           ///< Newest snapshot-carrying record.
  size_t ckpts_since_snapshot_ = 0;  ///< Counter toward the next snapshot.

  /// Background checkpoint daemon (shared cv-daemon scaffold, like the
  /// page cleaner): interval tick + pressure wakes, with kick storms
  /// rate-limited to half the interval — a checkpoint that just ran
  /// cannot advance the low-water mark until the cleaner has moved it,
  /// and each checkpoint appends (and flushes) its own record, so
  /// unthrottled pressure would feed the very growth it reacts to.
  sync::PeriodicDaemon ckpt_daemon_;
};

}  // namespace shoremt::sm

#endif  // SHOREMT_SM_STORAGE_MANAGER_H_
