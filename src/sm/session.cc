#include "sm/session.h"

#include <algorithm>

#include "common/clock.h"
#include "page/slotted_page.h"

namespace shoremt::sm {

// ---------------------------------------------------------------- Session --

std::unique_ptr<Session> StorageManager::OpenSession() {
  uint64_t seq = session_seq_.fetch_add(1, std::memory_order_relaxed);
  // Distinct, well-mixed seed stream per session.
  return std::unique_ptr<Session>(
      new Session(this, 0x5e5510aaULL ^ (seq * 0x9e3779b97f4a7c15ULL)));
}

Session::Session(StorageManager* sm, uint64_t seed) : sm_(sm), rng_(seed) {
  // Live metrics block: a free slot in the manager's registry (nullptr
  // when exhausted — the session runs unmetered, never fails to open).
  wc_ = sm_->metrics()->RegisterWorker();
  // Publish the block thread-locally so deep subsystems (the B+Tree
  // latch-free probe path) can bump worker counters without a shared RMW
  // and without widening every call signature.
  obs::TlsWorkerCounters() = wc_;
}

Session::~Session() {
  if (txn_ != nullptr) (void)Abort();
  (void)WaitAll();  // Outstanding async commits acknowledge before close.
  Harvest();
  if (obs::TlsWorkerCounters() == wc_) obs::TlsWorkerCounters() = nullptr;
  if (wc_ != nullptr) {
    // Folds this worker's live counters into the registry's retired
    // accumulator — registry totals (and the profiling feed over them)
    // keep every contribution across session churn.
    sm_->metrics()->UnregisterWorker(wc_);
    wc_ = nullptr;
  }
}

void Session::Harvest() {
  sm_->HarvestSessionStats(stats_);
  stats_ = SessionStats{};
}

Status Session::RequireTxn() const {
  if (txn_ == nullptr) {
    return Status::InvalidArgument("session has no open transaction");
  }
  return Status::Ok();
}

Status Session::Begin() {
  if (txn_ != nullptr) {
    return Status::InvalidArgument("session already has an open transaction");
  }
  txn_ = sm_->txns_->Begin();
  // Re-publish the counter block on the CALLING thread: sessions are
  // routinely constructed on one thread (the opener) and driven from a
  // worker, and the deep probe paths read this thread-local. Begin is
  // the choke point every transaction passes through on its own thread.
  obs::TlsWorkerCounters() = wc_;
  ++stats_.begins;
  Bump(obs::Metric::kTxnBegins);
  txn_begin_ns_ = NowNanos();
  return Status::Ok();
}

Result<txn::CommitToken> Session::SubmitCommit() {
  SHOREMT_RETURN_NOT_OK(RequireTxn());
  Result<txn::CommitToken> token = sm_->txns_->CommitAsync(txn_);
  if (!token.ok()) {
    // Failed commit (log append error): the transaction is still active
    // and holds every lock — roll it back rather than strand them.
    (void)Abort();
    return token;
  }
  // The transaction is committed (and destroyed): from here on only the
  // durability acknowledgment is outstanding.
  txn_ = nullptr;
  stats_.lock_waits += token->counters.lock_waits;
  stats_.lock_cache_hits += token->counters.lock_cache_hits;
  stats_.log_bytes += token->counters.log_bytes;
  ++stats_.commits;
  Bump(obs::Metric::kTxnCommits);
  Bump(obs::Metric::kLockWaits, token->counters.lock_waits);
  Bump(obs::Metric::kLogBytes, token->counters.log_bytes);
  if (wc_ != nullptr) wc_->RecordLatency(NowNanos() - txn_begin_ns_);
  if (!token->durable && token->lsn > pending_ack_lsn_) {
    pending_ack_lsn_ = token->lsn;
  }
  return token;
}

Status Session::Commit() {
  SHOREMT_ASSIGN_OR_RETURN(txn::CommitToken token, SubmitCommit());
  // Blocking ack: ride the group-commit pipeline until the daemon's flush
  // passes the commit LSN. If the wait itself fails (log device error),
  // the transaction is already committed-but-unacknowledged — there is
  // nothing to abort; the error reports that durability is unknown.
  return Wait(&token);
}

Result<txn::CommitToken> Session::CommitAsync() {
  Result<txn::CommitToken> token = SubmitCommit();
  if (token.ok()) ++stats_.async_commits;
  return token;
}

Status Session::Wait(txn::CommitToken* token) {
  if (token == nullptr) return Status::InvalidArgument("null commit token");
  bool avoided = token->durable || token->lsn.IsNull() ||
                 sm_->log()->IsDurable(token->lsn);
  if (avoided) {
    ++stats_.commit_waits_avoided;
  } else {
    ++stats_.commit_waits;
  }
  Status st = sm_->txns_->Wait(token);
  // Durability is a log prefix: acknowledging the highest pending LSN
  // acknowledges everything this session had outstanding.
  if (st.ok() && token->lsn >= pending_ack_lsn_) pending_ack_lsn_ = Lsn{};
  return st;
}

bool Session::PollAcks() {
  if (pending_ack_lsn_.IsNull()) return true;
  if (sm_->log()->IsDurable(pending_ack_lsn_)) {
    // Durability is a log prefix: the highest pending LSN being durable
    // acknowledges everything this session had outstanding.
    pending_ack_lsn_ = Lsn{};
    ++stats_.commit_waits_avoided;
    return true;
  }
  // A poisoned pipeline can never acknowledge: stop the poll loop (the
  // watermark stays set) and let WaitAll report the sticky error — it
  // returns immediately in this state.
  return !sm_->log()->pipeline_error().ok();
}

void Session::OnDurable(Lsn lsn, std::function<void(Status)> fn) {
  if (!fn) return;  // Nothing registers; nothing to count.
  ++stats_.durability_callbacks;
  sm_->log()->OnDurable(lsn, std::move(fn));
}

Status Session::WaitAll() {
  if (pending_ack_lsn_.IsNull()) return Status::Ok();
  Lsn target = pending_ack_lsn_;
  if (sm_->log()->IsDurable(target)) {
    ++stats_.commit_waits_avoided;
  } else {
    ++stats_.commit_waits;
  }
  SHOREMT_RETURN_NOT_OK(sm_->log()->WaitDurable(target));
  pending_ack_lsn_ = Lsn{};
  return Status::Ok();
}

Status Session::Abort() {
  SHOREMT_RETURN_NOT_OK(RequireTxn());
  txn::TxnManager::TxnCounters counters;
  Status st = sm_->txns_->Abort(txn_, &counters);
  if (!st.ok()) return st;  // Still active; the caller may retry Abort.
  txn_ = nullptr;
  stats_.lock_waits += counters.lock_waits;
  stats_.lock_cache_hits += counters.lock_cache_hits;
  stats_.log_bytes += counters.log_bytes;
  ++stats_.aborts;
  Bump(obs::Metric::kTxnAborts);
  Bump(obs::Metric::kLockWaits, counters.lock_waits);
  Bump(obs::Metric::kLogBytes, counters.log_bytes);
  return st;
}

Result<TableInfo> Session::CreateTable(const std::string& name) {
  SHOREMT_RETURN_NOT_OK(RequireTxn());
  return sm_->CreateTable(txn_, name);
}

Result<TableInfo> Session::OpenTable(const std::string& name) {
  if (txn_ != nullptr) return sm_->OpenTable(txn_, name);
  // No open transaction: run the lookup in a short internal one so the
  // store-lock handshake with in-flight DDL still applies.
  txn::Transaction* peek = sm_->txns_->Begin();
  Result<TableInfo> info = sm_->OpenTable(peek, name);
  Status end = sm_->txns_->Commit(peek);
  if (!info.ok()) return info;
  if (!end.ok()) return end;
  return info;
}

Result<RecordId> Session::Insert(const TableInfo& table, uint64_t key,
                                 std::span<const uint8_t> payload) {
  SHOREMT_RETURN_NOT_OK(RequireTxn());
  Result<RecordId> rid = sm_->Insert(txn_, table, key, payload);
  if (rid.ok()) {
    ++stats_.inserts;
    Bump(obs::Metric::kInserts);
  }
  return rid;
}

Result<std::span<const uint8_t>> Session::Read(const TableInfo& table,
                                               uint64_t key) {
  SHOREMT_RETURN_NOT_OK(RequireTxn());
  SHOREMT_RETURN_NOT_OK(sm_->ReadInto(txn_, table, key, &read_buf_));
  ++stats_.reads;
  Bump(obs::Metric::kReads);
  return std::span<const uint8_t>(read_buf_);
}

Status Session::Update(const TableInfo& table, uint64_t key,
                       std::span<const uint8_t> payload) {
  SHOREMT_RETURN_NOT_OK(RequireTxn());
  Status st = sm_->Update(txn_, table, key, payload);
  if (st.ok()) {
    ++stats_.updates;
    Bump(obs::Metric::kUpdates);
  }
  return st;
}

Status Session::Delete(const TableInfo& table, uint64_t key) {
  SHOREMT_RETURN_NOT_OK(RequireTxn());
  Status st = sm_->Delete(txn_, table, key);
  if (st.ok()) {
    ++stats_.deletes;
    Bump(obs::Metric::kDeletes);
  }
  return st;
}

Cursor Session::OpenCursor(const TableInfo& table) {
  return Cursor(this, table, sm_->index_of(table));
}

Status Session::ApplyOps(const TableInfo& table, std::span<const Op> ops,
                         bool own_txn) {
  ++stats_.batches;
  for (const Op& op : ops) {
    Status st;
    switch (op.type) {
      case OpType::kInsert:
        st = Insert(table, op.key, op.payload).status();
        break;
      case OpType::kUpdate:
        st = Update(table, op.key, op.payload);
        break;
      case OpType::kDelete:
        st = Delete(table, op.key);
        break;
    }
    if (!st.ok()) {
      // Atomic batch: in own-transaction mode nothing survives. Inside a
      // caller transaction the caller decides (and must Abort).
      if (own_txn) (void)Abort();
      return st;
    }
    ++stats_.batch_ops;
  }
  return Status::Ok();
}

Status Session::Apply(const TableInfo& table, std::span<const Op> ops) {
  bool own_txn = (txn_ == nullptr);
  if (own_txn) SHOREMT_RETURN_NOT_OK(Begin());
  SHOREMT_RETURN_NOT_OK(ApplyOps(table, ops, own_txn));
  // One commit covers the whole batch's appends, and its flush rides the
  // group-commit pipeline — shared with every concurrently committing
  // session (the group-commit seam this entry point exists for).
  if (own_txn) return Commit();
  return Status::Ok();
}

Result<txn::CommitToken> Session::ApplyAsync(const TableInfo& table,
                                             std::span<const Op> ops) {
  if (txn_ != nullptr) {
    return Status::InvalidArgument(
        "ApplyAsync runs its own transaction; commit or abort the open one");
  }
  SHOREMT_RETURN_NOT_OK(Begin());
  SHOREMT_RETURN_NOT_OK(ApplyOps(table, ops, /*own_txn=*/true));
  return CommitAsync();
}

// ----------------------------------------------------------------- Cursor --

Cursor::Cursor(Session* session, const TableInfo& table, btree::BTree* tree)
    : session_(session), table_(table), it_(tree) {}

Status Cursor::Seek(uint64_t key) {
  valid_ = false;
  if (session_ == nullptr) return Status::InvalidArgument("detached cursor");
  SHOREMT_RETURN_NOT_OK(session_->RequireTxn());
  if (session_->sm_->index_of(table_) == nullptr) {
    return Status::NotFound("unknown table");
  }
  SHOREMT_RETURN_NOT_OK(it_.Seek(key));
  return SettleOnRow();
}

Status Cursor::Next() {
  if (!valid_) return Status::InvalidArgument("Next on invalid cursor");
  valid_ = false;
  SHOREMT_RETURN_NOT_OK(session_->RequireTxn());
  SHOREMT_RETURN_NOT_OK(it_.Next());
  return SettleOnRow();
}

void Cursor::MaybeReadahead() {
  size_t window = session_->sm_->options().scan_readahead;
  if (window == 0 || !it_.Valid()) return;
  // Once per buffered-leaf generation: the iterator's snapshot names the
  // heap pages this scan is about to fix, and the next-leaf pointer names
  // the index page the next Refill will fix. Prefetch both, deduplicated,
  // up to the window.
  if (it_.refills() == last_refill_gen_) return;
  last_refill_gen_ = it_.refills();
  ra_buf_.clear();
  for (const btree::BTreeEntry& e : it_.remaining()) {
    if (ra_buf_.size() >= window) break;
    PageNum heap_page = btree::UnpackRecordId(e.value).page;
    if (std::find(ra_buf_.begin(), ra_buf_.end(), heap_page) ==
        ra_buf_.end()) {
      ra_buf_.push_back(heap_page);
    }
  }
  if (ra_buf_.size() < window && it_.next_leaf() != kInvalidPageNum) {
    ra_buf_.push_back(it_.next_leaf());
  }
  session_->sm_->pool()->PrefetchPages(ra_buf_);
}

Status Cursor::SettleOnRow() {
  StorageManager* sm = session_->sm_;
  btree::BTree* index = sm->index_of(table_);
  if (index == nullptr) return Status::NotFound("unknown table");
  while (it_.Valid()) {
    MaybeReadahead();  // Cheap generation check; fires once per refill.
    RecordId rid = it_.record();
    SHOREMT_RETURN_NOT_OK(session_->txn_->locks.LockRecord(
        table_.heap_store, rid, lock::LockMode::kS));
    // The buffered (key, rid) pair may be stale by the time the lock is
    // granted: the row can have been deleted — and its heap slot reused
    // by a different key — between the index probe and here. Re-probe
    // the index under the lock; deletion of this rid is impossible once
    // the S lock is held, so a matching probe pins the pair for the
    // read below.
    auto current = index->Find(nullptr, it_.key());
    if (!current.ok() || *current != rid) {
      SHOREMT_RETURN_NOT_OK(it_.Next());
      continue;
    }
    SHOREMT_ASSIGN_OR_RETURN(
        buffer::PageHandle h,
        sm->pool()->FixPage(rid.page, sync::LatchMode::kShared));
    page::SlottedPage sp(h.data());
    auto rec = sp.Read(rid.slot);
    if (!rec.ok()) {
      // Row deleted between the index probe and the heap read: skip it,
      // as the callback Scan always did.
      SHOREMT_RETURN_NOT_OK(it_.Next());
      continue;
    }
    value_buf_.assign(rec->begin(), rec->end());
    key_ = it_.key();
    valid_ = true;
    ++session_->stats_.cursor_rows;
    session_->Bump(obs::Metric::kScanRows);
    return Status::Ok();
  }
  return Status::Ok();  // Exhausted: cursor stays invalid.
}

}  // namespace shoremt::sm
