#include "sm/session.h"

#include "page/slotted_page.h"

namespace shoremt::sm {

// ---------------------------------------------------------------- Session --

std::unique_ptr<Session> StorageManager::OpenSession() {
  uint64_t seq = session_seq_.fetch_add(1, std::memory_order_relaxed);
  // Distinct, well-mixed seed stream per session.
  return std::unique_ptr<Session>(
      new Session(this, 0x5e5510aaULL ^ (seq * 0x9e3779b97f4a7c15ULL)));
}

Session::Session(StorageManager* sm, uint64_t seed) : sm_(sm), rng_(seed) {}

Session::~Session() {
  if (txn_ != nullptr) (void)Abort();
  Harvest();
}

void Session::Harvest() {
  sm_->HarvestSessionStats(stats_);
  stats_ = SessionStats{};
}

Status Session::RequireTxn() const {
  if (txn_ == nullptr) {
    return Status::InvalidArgument("session has no open transaction");
  }
  return Status::Ok();
}

Status Session::Begin() {
  if (txn_ != nullptr) {
    return Status::InvalidArgument("session already has an open transaction");
  }
  txn_ = sm_->txns_->Begin();
  ++stats_.begins;
  return Status::Ok();
}

Status Session::Commit() {
  SHOREMT_RETURN_NOT_OK(RequireTxn());
  // Commit destroys the Transaction object, so its final counters come
  // back through the out-param (they include the commit record itself).
  txn::TxnManager::TxnCounters counters;
  Status st = sm_->txns_->Commit(txn_, &counters);
  if (st.ok()) {
    txn_ = nullptr;
    stats_.lock_waits += counters.lock_waits;
    stats_.log_bytes += counters.log_bytes;
    ++stats_.commits;
    return st;
  }
  // Failed commit (log append/flush error): the transaction is still
  // active and holds every lock — roll it back rather than strand them.
  // If the commit record was appended before the flush failed, the WAL
  // may end up carrying both outcomes; the CLRs + abort record win at
  // recovery, matching the failure this caller observes.
  (void)Abort();
  return st;
}

Status Session::Abort() {
  SHOREMT_RETURN_NOT_OK(RequireTxn());
  txn::TxnManager::TxnCounters counters;
  Status st = sm_->txns_->Abort(txn_, &counters);
  if (!st.ok()) return st;  // Still active; the caller may retry Abort.
  txn_ = nullptr;
  stats_.lock_waits += counters.lock_waits;
  stats_.log_bytes += counters.log_bytes;
  ++stats_.aborts;
  return st;
}

Result<TableInfo> Session::CreateTable(const std::string& name) {
  SHOREMT_RETURN_NOT_OK(RequireTxn());
  return sm_->CreateTable(txn_, name);
}

Result<TableInfo> Session::OpenTable(const std::string& name) {
  if (txn_ != nullptr) return sm_->OpenTable(txn_, name);
  // No open transaction: run the lookup in a short internal one so the
  // store-lock handshake with in-flight DDL still applies.
  txn::Transaction* peek = sm_->txns_->Begin();
  Result<TableInfo> info = sm_->OpenTable(peek, name);
  Status end = sm_->txns_->Commit(peek);
  if (!info.ok()) return info;
  if (!end.ok()) return end;
  return info;
}

Result<RecordId> Session::Insert(const TableInfo& table, uint64_t key,
                                 std::span<const uint8_t> payload) {
  SHOREMT_RETURN_NOT_OK(RequireTxn());
  Result<RecordId> rid = sm_->Insert(txn_, table, key, payload);
  if (rid.ok()) ++stats_.inserts;
  return rid;
}

Result<std::span<const uint8_t>> Session::Read(const TableInfo& table,
                                               uint64_t key) {
  SHOREMT_RETURN_NOT_OK(RequireTxn());
  SHOREMT_RETURN_NOT_OK(sm_->ReadInto(txn_, table, key, &read_buf_));
  ++stats_.reads;
  return std::span<const uint8_t>(read_buf_);
}

Status Session::Update(const TableInfo& table, uint64_t key,
                       std::span<const uint8_t> payload) {
  SHOREMT_RETURN_NOT_OK(RequireTxn());
  Status st = sm_->Update(txn_, table, key, payload);
  if (st.ok()) ++stats_.updates;
  return st;
}

Status Session::Delete(const TableInfo& table, uint64_t key) {
  SHOREMT_RETURN_NOT_OK(RequireTxn());
  Status st = sm_->Delete(txn_, table, key);
  if (st.ok()) ++stats_.deletes;
  return st;
}

Cursor Session::OpenCursor(const TableInfo& table) {
  return Cursor(this, table, sm_->index_of(table));
}

Status Session::Apply(const TableInfo& table, std::span<const Op> ops) {
  bool own_txn = (txn_ == nullptr);
  if (own_txn) SHOREMT_RETURN_NOT_OK(Begin());
  ++stats_.batches;
  for (const Op& op : ops) {
    Status st;
    switch (op.type) {
      case OpType::kInsert:
        st = Insert(table, op.key, op.payload).status();
        break;
      case OpType::kUpdate:
        st = Update(table, op.key, op.payload);
        break;
      case OpType::kDelete:
        st = Delete(table, op.key);
        break;
    }
    if (!st.ok()) {
      // Atomic batch: in own-transaction mode nothing survives. Inside a
      // caller transaction the caller decides (and must Abort).
      if (own_txn) (void)Abort();
      return st;
    }
    ++stats_.batch_ops;
  }
  // One commit — and therefore one log flush — covers the whole batch's
  // appends (the group-commit seam this entry point exists for).
  if (own_txn) return Commit();
  return Status::Ok();
}

// ----------------------------------------------------------------- Cursor --

Cursor::Cursor(Session* session, const TableInfo& table, btree::BTree* tree)
    : session_(session), table_(table), it_(tree) {}

Status Cursor::Seek(uint64_t key) {
  valid_ = false;
  if (session_ == nullptr) return Status::InvalidArgument("detached cursor");
  SHOREMT_RETURN_NOT_OK(session_->RequireTxn());
  if (session_->sm_->index_of(table_) == nullptr) {
    return Status::NotFound("unknown table");
  }
  SHOREMT_RETURN_NOT_OK(it_.Seek(key));
  return SettleOnRow();
}

Status Cursor::Next() {
  if (!valid_) return Status::InvalidArgument("Next on invalid cursor");
  valid_ = false;
  SHOREMT_RETURN_NOT_OK(session_->RequireTxn());
  SHOREMT_RETURN_NOT_OK(it_.Next());
  return SettleOnRow();
}

Status Cursor::SettleOnRow() {
  StorageManager* sm = session_->sm_;
  btree::BTree* index = sm->index_of(table_);
  if (index == nullptr) return Status::NotFound("unknown table");
  while (it_.Valid()) {
    RecordId rid = it_.record();
    SHOREMT_RETURN_NOT_OK(sm->txns()->LockRecord(
        session_->txn_, table_.heap_store, rid, lock::LockMode::kS));
    // The buffered (key, rid) pair may be stale by the time the lock is
    // granted: the row can have been deleted — and its heap slot reused
    // by a different key — between the index probe and here. Re-probe
    // the index under the lock; deletion of this rid is impossible once
    // the S lock is held, so a matching probe pins the pair for the
    // read below.
    auto current = index->Find(nullptr, it_.key());
    if (!current.ok() || *current != rid) {
      SHOREMT_RETURN_NOT_OK(it_.Next());
      continue;
    }
    SHOREMT_ASSIGN_OR_RETURN(
        buffer::PageHandle h,
        sm->pool()->FixPage(rid.page, sync::LatchMode::kShared));
    page::SlottedPage sp(h.data());
    auto rec = sp.Read(rid.slot);
    if (!rec.ok()) {
      // Row deleted between the index probe and the heap read: skip it,
      // as the callback Scan always did.
      SHOREMT_RETURN_NOT_OK(it_.Next());
      continue;
    }
    value_buf_.assign(rec->begin(), rec->end());
    key_ = it_.key();
    valid_ = true;
    ++session_->stats_.cursor_rows;
    return Status::Ok();
  }
  return Status::Ok();  // Exhausted: cursor stays invalid.
}

}  // namespace shoremt::sm
