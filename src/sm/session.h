#ifndef SHOREMT_SM_SESSION_H_
#define SHOREMT_SM_SESSION_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "common/random.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "sm/session_stats.h"
#include "sm/storage_manager.h"

namespace shoremt::sm {

/// One logical row operation for Session::Apply. `payload` must stay alive
/// until Apply returns; it is ignored for kDelete.
enum class OpType : uint8_t { kInsert, kUpdate, kDelete };
struct Op {
  OpType type = OpType::kInsert;
  uint64_t key = 0;
  std::span<const uint8_t> payload{};
};

class Session;

/// Pull-style row cursor over one table's index, bound to the session's
/// current transaction. Layered on btree::BTree::Iterator: the iterator
/// yields (key, RecordId) with no latches held between rows, the cursor
/// adds shared row locks and the heap read. Rows deleted between the index
/// probe and the heap read are skipped, exactly as the old callback Scan
/// did.
///
///   auto cur = session->OpenCursor(table);
///   for (auto st = cur.Seek(lo); cur.Valid() && cur.key() <= hi;
///        st = cur.Next()) { use(cur.key(), cur.value()); }
///
/// `value()` points into a buffer owned by the cursor and is invalidated
/// by the next Seek/Next. A cursor must not outlive its session or the
/// transaction it started under.
class Cursor {
 public:
  /// Positions at the first row with key >= `key`. A failed Seek/Next
  /// (e.g. a lock timeout) leaves the cursor invalid.
  Status Seek(uint64_t key);
  /// Advances to the next row; the cursor becomes invalid past the last.
  Status Next();
  bool Valid() const { return valid_; }

  uint64_t key() const { return key_; }
  std::span<const uint8_t> value() const { return value_buf_; }

 private:
  friend class Session;
  Cursor(Session* session, const TableInfo& table, btree::BTree* tree);

  /// Locks + heap-reads rows starting at the iterator's position until one
  /// still exists, leaving the cursor on it (or invalid at end).
  Status SettleOnRow();

  /// Issues bounded-window prefetch for the heap pages of the iterator's
  /// remaining buffered entries plus the next leaf, once per leaf
  /// snapshot generation (StorageOptions::scan_readahead; 0 disables).
  void MaybeReadahead();

  Session* session_;
  TableInfo table_;
  btree::BTree::Iterator it_;
  std::vector<uint8_t> value_buf_;
  std::vector<PageNum> ra_buf_;  ///< Scratch for MaybeReadahead.
  uint64_t last_refill_gen_ = 0;
  uint64_t key_ = 0;
  bool valid_ = false;
};

/// A worker thread's handle onto the storage manager (the tentpole of the
/// Shore-MT redesign): each thread opens one session and runs all
/// transaction lifecycle and DML through it. The session owns the state a
/// worker needs — an RNG, a reusable read buffer, and a SessionStats block
/// — so the per-operation path touches no shared counters at all;
/// statistics reach the manager only at session close or via Harvest(),
/// mirroring the paper's distributed statistics fix (§5).
///
/// A session is NOT thread-safe and carries at most one open transaction.
class Session {
 public:
  /// Aborts any open transaction, waits for outstanding commit
  /// acknowledgments (WaitAll), then harvests.
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // --- transaction lifecycle ----------------------------------------------

  /// Starts a transaction; InvalidArgument if one is already open.
  Status Begin();
  /// Commits the open transaction and blocks until it is durable — a thin
  /// CommitAsync + Wait composition riding the group-commit pipeline
  /// (several sessions committing concurrently share one device flush).
  Status Commit();
  /// Commits the open transaction asynchronously: the commit record is
  /// appended and every lock is released immediately (early lock release);
  /// durability is acknowledged later through Wait(&token) or WaitAll().
  /// After a crash, a committed-but-unacknowledged transaction may be
  /// lost — but never half-applied, and never out of commit-LSN order.
  /// On failure the transaction has been rolled back (like Commit).
  Result<txn::CommitToken> CommitAsync();
  /// Blocks until `token`'s commit is durable; returns the pipeline's
  /// sticky error if the log device failed.
  Status Wait(txn::CommitToken* token);
  /// Blocks until every CommitAsync this session has issued is durable
  /// (one wait on the highest pending commit LSN — durability is a log
  /// prefix, so it covers all of them).
  Status WaitAll();
  /// Non-blocking ack harvest: true when every CommitAsync this session
  /// has issued is durable (clearing the pending watermark), false while
  /// acknowledgments are still outstanding. Never parks — a server loop
  /// calls this between requests instead of dedicating a thread to
  /// WaitAll. Pair with CommitToken::TryWait for per-token polling.
  /// If the flush pipeline carries a sticky error it also returns true
  /// (polling can never succeed) but leaves the watermark set — call
  /// WaitAll(), which returns immediately, to observe the error.
  bool PollAcks();
  /// Registered durability callback — the push-style third option next to
  /// Wait (park) and PollAcks/TryWait (poll): `fn` is invoked exactly
  /// once when the durable LSN passes `lsn` (e.g. a CommitToken's lsn),
  /// FROM THE FLUSH DAEMON'S THREAD — or inline, before this returns, if
  /// `lsn` is already durable. The closure receives Ok on durability and
  /// the pipeline's sticky error if the log device failed first; it must
  /// not block and must not touch this (single-threaded) Session.
  /// Registration submits the flush target itself; it does not change the
  /// session's pending-ack watermark, so Wait/WaitAll/PollAcks semantics
  /// are unaffected.
  void OnDurable(Lsn lsn, std::function<void(Status)> fn);
  /// Aborts the open transaction, rolling back through the WAL chain.
  Status Abort();
  bool InTransaction() const { return txn_ != nullptr; }
  /// The open transaction (nullptr outside one) — interop hook for code
  /// still on the deprecated facade.
  txn::Transaction* txn() { return txn_; }

  // --- catalog ------------------------------------------------------------

  /// Creates a table under the open transaction, holding X store locks
  /// until it ends.
  Result<TableInfo> CreateTable(const std::string& name);
  /// Looks up a table, taking a shared store lock so in-flight DDL is
  /// never observed half-created. Uses the open transaction when there is
  /// one, else a short internal transaction.
  Result<TableInfo> OpenTable(const std::string& name);

  // --- DML (under the open transaction) -----------------------------------

  Result<RecordId> Insert(const TableInfo& table, uint64_t key,
                          std::span<const uint8_t> payload);
  /// Reads into the session's reusable buffer; the span is valid until the
  /// next Read/Apply on this session.
  Result<std::span<const uint8_t>> Read(const TableInfo& table, uint64_t key);
  Status Update(const TableInfo& table, uint64_t key,
                std::span<const uint8_t> payload);
  Status Delete(const TableInfo& table, uint64_t key);

  /// Opens a cursor over `table` bound to this session's transactions.
  Cursor OpenCursor(const TableInfo& table);

  // --- batched execution --------------------------------------------------

  /// Applies `ops` in order as one atomic batch. With no transaction open,
  /// the batch runs in its own transaction whose commit rides the
  /// group-commit pipeline (one flush acknowledges the batch, shared with
  /// every concurrent committer), and any failure aborts the whole batch —
  /// nothing persists. Inside an open transaction the ops simply join it;
  /// a failure then leaves the transaction poisoned and the caller must
  /// Abort().
  Status Apply(const TableInfo& table, std::span<const Op> ops);

  /// Apply with asynchronous durability: requires no open transaction,
  /// runs `ops` as one atomic batch and commits via CommitAsync. Returns
  /// once the batch's commit record is in the log buffer; acknowledge with
  /// Wait(&token) / WaitAll().
  Result<txn::CommitToken> ApplyAsync(const TableInfo& table,
                                      std::span<const Op> ops);

  // --- per-session state --------------------------------------------------

  /// The session's private RNG (seeded uniquely per session).
  Rng& rng() { return rng_; }
  /// This session's counters since the last Harvest().
  const SessionStats& stats() const { return stats_; }
  /// Folds the local counters into the manager's aggregate and zeroes
  /// them. Called automatically on destruction.
  void Harvest();
  /// This worker's live metrics block in the manager's MetricsRegistry
  /// (the feed the ProfilingThread aggregates once a second). The session
  /// bumps the engine metrics itself; workloads bump workload-level
  /// metrics (e.g. Metric::kRmws) through this. Null when the registry's
  /// worker slots were exhausted — callers must tolerate it.
  obs::WorkerCounters* counters() { return wc_; }

  StorageManager* manager() { return sm_; }

 private:
  friend class StorageManager;
  friend class Cursor;

  Session(StorageManager* sm, uint64_t seed);

  /// Guard used by every DML entry point.
  Status RequireTxn() const;

  /// Live-metric bump (no-op when the registry had no free worker slot).
  void Bump(obs::Metric m, uint64_t delta = 1) {
    if (wc_ != nullptr) wc_->Inc(m, delta);
  }

  /// Shared tail of Commit/CommitAsync: submits the commit record, rolls
  /// back on append failure, books the token into the session's pending
  /// set and its statistics.
  Result<txn::CommitToken> SubmitCommit();

  /// Shared body of Apply/ApplyAsync: runs `ops` under the open
  /// transaction, aborting it on failure when this session owns it.
  Status ApplyOps(const TableInfo& table, std::span<const Op> ops,
                  bool own_txn);

  StorageManager* sm_;
  txn::Transaction* txn_ = nullptr;
  Rng rng_;
  std::vector<uint8_t> read_buf_;
  SessionStats stats_;
  /// Highest commit LSN this session has submitted but not yet seen
  /// acknowledged (WaitAll target); null when nothing is outstanding.
  Lsn pending_ack_lsn_;
  /// This worker's block in the manager's MetricsRegistry (null when the
  /// slot pool was exhausted); registered at open, released at close.
  obs::WorkerCounters* wc_ = nullptr;
  /// Begin() timestamp of the open transaction — commit latency for the
  /// live feed's histogram.
  uint64_t txn_begin_ns_ = 0;
};

}  // namespace shoremt::sm

#endif  // SHOREMT_SM_SESSION_H_
