#include "sm/options.h"

namespace shoremt::sm {

StorageOptions StorageOptions::ForStage(Stage stage) {
  // Start from the original-Shore configuration and layer the stages'
  // optimizations cumulatively, mirroring §7.1–§7.7.
  StorageOptions o;
  o.buffer.table_kind = buffer::TableKind::kGlobalChained;
  o.buffer.pin_if_pinned = false;
  o.buffer.transit_shards = 1;
  o.buffer.release_clock_hand_early = false;
  o.space.mutex_kind = sync::MutexKind::kPthread;
  o.space.refactored_alloc = false;
  o.space.extent_cache = false;
  o.space.last_page_cache = false;
  o.space.full_scan_ownership = true;
  o.log.buffer_kind = log::LogBufferKind::kMutex;
  o.lock.per_shard_latch = false;
  o.lock.shards = 1;  // One centralized table, like the original Shore.
  o.lock.pool_kind = lock::RequestPoolKind::kMutexFreelist;
  o.txn.oldest_txn_cache = false;
  o.btree.probe_lock_table = true;
  o.btree.optimistic_reads = false;  // Classic shared-latch crabbing.
  o.decoupled_checkpoint = false;
  if (stage == Stage::kBaseline) return o;

  // §7.2 "bpool 1": per-bucket hash locks + atomic pin-if-pinned.
  o.buffer.table_kind = buffer::TableKind::kPerBucketChained;
  o.buffer.pin_if_pinned = true;
  if (stage == Stage::kBufferPool1) return o;

  // §7.3 "caching": free-space mutex → MCS with the latch moved outside
  // the critical section; cached oldest-transaction id.
  o.space.mutex_kind = sync::MutexKind::kMcs;
  o.space.refactored_alloc = true;
  o.txn.oldest_txn_cache = true;
  if (stage == Stage::kCaching) return o;

  // §7.4 "log": decoupled circular log buffer; thread-local extent-id
  // cache kills the per-insert metadata scan; cuckoo bufferpool table.
  o.log.buffer_kind = log::LogBufferKind::kDecoupled;
  o.space.extent_cache = true;
  o.space.full_scan_ownership = false;
  o.buffer.table_kind = buffer::TableKind::kCuckoo;
  if (stage == Stage::kLog) return o;

  // §7.5 "lock mgr" (extended): per-core table shards with independent
  // latches and per-shard lock-free request pools.
  o.lock.per_shard_latch = true;
  o.lock.shards = 0;  // Auto: one shard per hardware context.
  o.lock.pool_kind = lock::RequestPoolKind::kLockFreeStack;
  if (stage == Stage::kLockManager) return o;

  // §7.6 "bpool 2": release the clock hand before eviction I/O and
  // distribute the in-transit list; cache the last page of each store
  // (the O(n^2) allocation fix).
  o.buffer.release_clock_hand_early = true;
  o.buffer.transit_shards = 128;
  o.space.last_page_cache = true;
  if (stage == Stage::kBufferPool2) return o;

  // §7.7 "final": consolidated log inserts — taken one step past the
  // paper to the consolidation-array buffer (group claims + out-of-order
  // completion publication), checkpoints decoupled via the page cleaner,
  // redundant B+Tree probe lock search removed.
  o.log.buffer_kind = log::LogBufferKind::kCArray;
  o.btree.probe_lock_table = false;
  // One step past the paper (with the c-array): the index read path stops
  // writing shared cache lines entirely — optimistic lock coupling over
  // the version-stamped page latches.
  o.btree.optimistic_reads = true;
  o.decoupled_checkpoint = true;
  return o;
}

}  // namespace shoremt::sm
