#ifndef SHOREMT_SM_OPTIONS_H_
#define SHOREMT_SM_OPTIONS_H_

#include <string_view>

#include "btree/btree.h"
#include "buffer/buffer_pool.h"
#include "lock/lock_manager.h"
#include "log/log_manager.h"
#include "space/space_manager.h"
#include "txn/txn_manager.h"

namespace shoremt::sm {

/// The optimization stages of §7, in order. Each stage preset configures
/// every component exactly as the corresponding Shore-MT development
/// snapshot: Figure 7 sweeps these presets.
enum class Stage {
  kBaseline,     ///< §7.1: pthreads + coarse mutexes everywhere.
  kBufferPool1,  ///< §7.2: per-bucket bpool locks, pin-if-pinned, TAS.
  kCaching,      ///< §7.3: free-space refactor, oldest-txn cache.
  kLog,          ///< §7.4: decoupled log buffer, extent cache, cuckoo.
  kLockManager,  ///< §7.5: per-bucket lock table, lock-free request pool.
  kBufferPool2,  ///< §7.6: clock-hand release, distributed transit lists.
  kFinal,        ///< §7.7: consolidated log inserts, decoupled checkpoint,
                 ///<        no redundant B+Tree probe locks.
};

constexpr std::string_view StageName(Stage s) {
  switch (s) {
    case Stage::kBaseline: return "baseline";
    case Stage::kBufferPool1: return "bpool 1";
    case Stage::kCaching: return "caching";
    case Stage::kLog: return "log";
    case Stage::kLockManager: return "lock mgr";
    case Stage::kBufferPool2: return "bpool 2";
    case Stage::kFinal: return "final";
  }
  return "?";
}

inline constexpr Stage kAllStages[] = {
    Stage::kBaseline,     Stage::kBufferPool1, Stage::kCaching,
    Stage::kLog,          Stage::kLockManager, Stage::kBufferPool2,
    Stage::kFinal,
};

/// How StorageManager::Open treats the durable state it is handed.
enum class OpenMode {
  /// Normal: full ARIES restart (analysis/redo/undo) when the log is
  /// non-empty.
  kRecover,
  /// Replication replica: no recovery and no checkpoint daemon — the
  /// repl::Replica's replay pool applies the shipped log itself and owns
  /// the visibility horizon; the manager only provides the read path.
  kReplicaAttach,
  /// Replica promotion: the replay pool already applied every committed
  /// record, so redo is skipped; analysis still runs to find in-flight
  /// (loser) transactions, which are rolled back structure-only (their
  /// deferred heap records were never applied) and formally aborted.
  kPromote,
  /// Point-in-time restore: full restart over a reconstructed log and an
  /// EMPTY volume — redo starts at LSN 1 and ignores checkpoint redo
  /// low-water marks (they describe a volume state the fresh one lacks).
  kRestore,
};

/// Aggregated configuration of the whole storage manager.
struct StorageOptions {
  buffer::BufferPoolOptions buffer;
  space::SpaceOptions space;
  log::LogOptions log;
  lock::LockOptions lock;
  txn::TxnOptions txn;
  btree::BTreeOptions btree;
  /// §7.7: derive the checkpoint redo point from the dirty-page table's
  /// incremental minimum (maintained by MarkDirty / write-back, advanced
  /// by the page cleaner) instead of scanning the whole buffer pool while
  /// holding the transaction table still.
  bool decoupled_checkpoint = true;
  /// Background checkpoint daemon: takes a fuzzy checkpoint (and recycles
  /// log segments below its low-water mark) every interval, plus whenever
  /// log-segment pressure wakes it through the flush pipeline's hook.
  /// Paired with buffer.enable_cleaner and log.segment_bytes this closes
  /// the full loop — cleaner advances the low-water mark, checkpoint
  /// records it, Recycle frees segments, recovery redoes only the tail.
  bool checkpoint_daemon = false;
  uint64_t checkpoint_interval_ms = 100;
  /// The catalog/space snapshot in a checkpoint body is O(database
  /// pages); it rides only every Nth checkpoint (1 = every one). The
  /// in-between checkpoints still record the redo low-water mark and the
  /// active-transaction table, but log recycling is clamped to the
  /// newest snapshot-carrying checkpoint record so recovery's analysis
  /// can always bootstrap the metadata maps.
  size_t checkpoint_snapshot_every = 4;
  /// Cursor range scans prefetch up to this many upcoming heap/leaf pages
  /// through the buffer pool's detached async-read path (0 = off). Issued
  /// once per buffered-leaf generation, so a scan stays at most one leaf
  /// ahead of consumption.
  size_t scan_readahead = 8;
  /// Recovery redo buffers log records in windows of this size and
  /// prefetches the distinct pages the window names before applying it in
  /// order (0 = apply record-at-a-time as before). Byte-identical: only
  /// the page reads move earlier, never the redo application.
  size_t recovery_prefetch_window = 64;
  /// See OpenMode; replication paths (src/repl) set the non-default modes.
  OpenMode open_mode = OpenMode::kRecover;

  /// Configuration corresponding to a §7 development stage. Later stages
  /// include all earlier optimizations (the paper's process was strictly
  /// cumulative).
  static StorageOptions ForStage(Stage stage);
};

}  // namespace shoremt::sm

#endif  // SHOREMT_SM_OPTIONS_H_
