#include "repl/shipper.h"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "obs/metrics.h"
#include "repl/archive.h"
#include "repl/framing.h"

namespace shoremt::repl {

SegmentShipper::SegmentShipper(log::LogManager* log, int fd, Options opts)
    : log_(log), fd_(fd), opts_(opts) {}

SegmentShipper::~SegmentShipper() { Stop(); }

void SegmentShipper::Start() {
  thread_ = std::thread([this] {
    Status st = Serve();
    std::lock_guard<std::mutex> lk(status_mutex_);
    status_ = st;
  });
}

void SegmentShipper::Stop() {
  if (!stop_.exchange(true)) {
    // Under fd_mutex_ so the shutdown hits whichever socket the serve
    // loop currently owns (a reconnect may have swapped it), plus any
    // replacement parked but not yet adopted.
    std::lock_guard<std::mutex> lk(fd_mutex_);
    // Unblocks both our reads and the replica's (it sees EOF).
    ::shutdown(fd_, SHUT_RDWR);
    if (pending_fd_ >= 0) ::shutdown(pending_fd_, SHUT_RDWR);
    fd_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void SegmentShipper::ReplaceSocket(int fd) {
  std::lock_guard<std::mutex> lk(fd_mutex_);
  pending_fd_ = fd;
  fd_cv_.notify_all();
}

bool SegmentShipper::WaitForReplacementFd() {
  std::unique_lock<std::mutex> lk(fd_mutex_);
  uint64_t waited_ms = 0;
  uint64_t slice_ms = std::max<uint64_t>(1, opts_.reconnect_backoff_initial_ms);
  while (pending_fd_ < 0 && !stop_.load(std::memory_order_acquire)) {
    if (opts_.reconnect_wait_budget_ms != 0 &&
        waited_ms >= opts_.reconnect_wait_budget_ms) {
      return false;
    }
    fd_cv_.wait_for(lk, std::chrono::milliseconds(slice_ms));
    waited_ms += slice_ms;
    slice_ms = std::min(slice_ms * 2, std::max<uint64_t>(
                                          1, opts_.reconnect_backoff_max_ms));
  }
  if (stop_.load(std::memory_order_acquire) || pending_fd_ < 0) return false;
  fd_ = pending_fd_;
  pending_fd_ = -1;
  reconnects_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

Status SegmentShipper::status() const {
  std::lock_guard<std::mutex> lk(status_mutex_);
  return status_;
}

uint64_t SegmentShipper::lag_bytes() const {
  uint64_t durable = log_->durable_lsn().value;
  uint64_t replayed = acked_replayed_.load(std::memory_order_relaxed);
  // Both are LSNs (byte offset + 1); an unacked replica lags by the whole
  // durable prefix.
  if (replayed == 0) return durable > 0 ? durable - 1 : 0;
  return durable > replayed ? durable - replayed : 0;
}

void SegmentShipper::RegisterMetrics(obs::MetricsRegistry* reg) {
  reg->AddSource([this](std::array<uint64_t, obs::kMetricCount>* totals) {
    using obs::Metric;
    (*totals)[static_cast<size_t>(Metric::kReplSegmentsShipped)] +=
        segments_shipped();
    (*totals)[static_cast<size_t>(Metric::kReplBytesStreamed)] +=
        bytes_streamed();
    (*totals)[static_cast<size_t>(Metric::kReplLagBytes)] += lag_bytes();
  });
}

bool SegmentShipper::DrainControl(int timeout_ms, bool* rewound) {
  *rewound = false;
  int wait = timeout_ms;
  while (WaitReadable(fd_, wait)) {
    wait = 0;  // after the first frame, only drain what is already queued
    Frame f;
    Status st = ReadFrame(fd_, &f);
    if (!st.ok()) return false;  // EOF or a broken stream: stop serving
    size_t pos = 0;
    uint64_t a = 0, b = 0;
    switch (f.type) {
      case FrameType::kAck:
        if (GetU64(f.payload, &pos, &a) && GetU64(f.payload, &pos, &b)) {
          acked_replayed_.store(b, std::memory_order_relaxed);
        }
        break;
      case FrameType::kResend:
        if (GetU64(f.payload, &pos, &a)) {
          cursor_ = a;
          *rewound = true;
        }
        break;
      default:
        break;  // a replica never sends anything else; ignore
    }
  }
  return true;
}

Status SegmentShipper::ShipNext(bool* progressed) {
  *progressed = false;
  log::LogStorage* storage = log_->storage();
  uint64_t durable = storage->size();
  if (cursor_ >= durable) return Status::Ok();

  log::LogStorage::SegmentInfo info = storage->SegmentInfoAt(cursor_);
  std::vector<uint8_t> bytes;
  if (!info.found) {
    // Below the first live segment: the primary recycled it. Serve the
    // range from the archive (reopened per miss — recycling appends to
    // the manifest concurrently, so a cached view would go stale).
    std::string dir = storage->archive_dir();
    if (dir.empty()) {
      return Status::IOError(
          "replica requires log offset " + std::to_string(cursor_) +
          " which was recycled and no archive_dir is configured");
    }
    SHOREMT_ASSIGN_OR_RETURN(LogArchive archive, LogArchive::Open(dir));
    const ArchivedSegment* seg = archive.SegmentAt(cursor_);
    if (seg == nullptr) {
      return Status::IOError("log offset " + std::to_string(cursor_) +
                             " is in neither the live log nor the archive");
    }
    uint64_t end = seg->base + seg->length;
    SHOREMT_RETURN_NOT_OK(archive.Read(cursor_, end - cursor_, &bytes));
    uint64_t head[3] = {cursor_, seg->base, seg->capacity};
    SHOREMT_RETURN_NOT_OK(
        WriteFrame(fd_, FrameType::kSegment, head, bytes));
    cursor_ = end;
  } else if (info.filled == info.capacity) {
    // Sealed segment: one frame completes it, giving the replica geometry
    // to validate the shipment against.
    uint64_t end = info.base + info.capacity;
    Status rd = storage->Read(cursor_, end - cursor_, &bytes);
    if (!rd.ok()) {
      // The segment was recycled between SegmentInfoAt and Read; the next
      // iteration's lookup will take the archive path.
      if (!storage->archive_dir().empty()) return Status::Ok();
      return rd;
    }
    uint64_t head[3] = {cursor_, info.base, info.capacity};
    SHOREMT_RETURN_NOT_OK(
        WriteFrame(fd_, FrameType::kSegment, head, bytes));
    cursor_ = end;
  } else {
    // Open tail: ship what is durable so far.
    uint64_t end = std::min<uint64_t>(durable, info.base + info.filled);
    if (end <= cursor_) return Status::Ok();
    SHOREMT_RETURN_NOT_OK(storage->Read(cursor_, end - cursor_, &bytes));
    uint64_t head[1] = {cursor_};
    SHOREMT_RETURN_NOT_OK(
        WriteFrame(fd_, FrameType::kTailDelta, head, bytes));
    cursor_ = end;
  }
  segments_shipped_.fetch_add(1, std::memory_order_relaxed);
  bytes_streamed_.fetch_add(bytes.size(), std::memory_order_relaxed);
  shipped_offset_.store(cursor_, std::memory_order_relaxed);
  *progressed = true;
  return Status::Ok();
}

Status SegmentShipper::Serve() {
  Status st = ServeSession();
  // Reconnect mode: a dead connection (clean peer EOF — Ok — or a socket
  // error) parks the loop waiting for a replacement fd instead of ending
  // replication. Protocol violations (Corruption) still end it: a peer
  // that speaks garbage will speak garbage again. The replica's kHello on
  // the new connection carries its cursor, so shipping resumes exactly
  // where the replica's durable state ends — no bytes skipped or doubled.
  while (opts_.reconnect && !stop_.load(std::memory_order_acquire) &&
         (st.ok() || st.code() == StatusCode::kIOError)) {
    if (!WaitForReplacementFd()) break;
    st = ServeSession();
  }
  return st;
}

Status SegmentShipper::ServeSession() {
  // The replica opens with kHello{next_offset}.
  Frame hello;
  Status st = ReadFrame(fd_, &hello);
  if (st.IsNotFound()) return Status::Ok();
  if (stop_.load(std::memory_order_acquire)) return Status::Ok();
  SHOREMT_RETURN_NOT_OK(st);
  if (hello.type != FrameType::kHello) {
    return Status::Corruption("expected kHello from replica");
  }
  size_t pos = 0;
  if (!GetU64(hello.payload, &pos, &cursor_)) {
    return Status::Corruption("short kHello payload");
  }
  shipped_offset_.store(cursor_, std::memory_order_relaxed);

  while (!stop_.load(std::memory_order_acquire)) {
    bool progressed = false;
    Status ship = ShipNext(&progressed);
    if (!ship.ok()) {
      return stop_.load(std::memory_order_acquire) ? Status::Ok() : ship;
    }
    // Drain acks/resends; when nothing was shipped, park in poll() so an
    // idle primary costs no CPU.
    bool rewound = false;
    if (!DrainControl(progressed ? 0 : opts_.poll_interval_ms, &rewound)) {
      return Status::Ok();  // replica disconnected
    }
  }
  return Status::Ok();
}

}  // namespace shoremt::repl
