#ifndef SHOREMT_REPL_SHIPPER_H_
#define SHOREMT_REPL_SHIPPER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/status.h"
#include "common/types.h"
#include "log/log_manager.h"
#include "obs/metrics_registry.h"

namespace shoremt::repl {

/// Primary-side log shipper: streams the durable log to one replica over
/// a connected stream socket. Sealed segments go out as kSegment frames
/// (self-describing geometry the replica validates); the open tail is
/// trickled as kTailDelta frames, so replica lag is bounded by the flush
/// cadence, not the segment size. Control frames flow back on the same
/// socket: kAck advances the lag estimate, kResend rewinds the cursor
/// (the replica detected a torn or misordered shipment).
///
/// When the cursor falls below the storage's first live segment (the
/// primary recycled it), the shipper falls back to the segment archive
/// (LogOptions::archive_dir) — without an archive that range is gone and
/// Serve fails.
///
/// Everything in LogStorage is durable by construction, so the shipper
/// never ships bytes a crash could retract.
class SegmentShipper {
 public:
  struct Options {
    /// Idle poll interval while waiting for new durable bytes or acks.
    int poll_interval_ms = 2;
    /// Survive replica disconnects: instead of ending Serve, park and
    /// wait (bounded exponential backoff between wake-ups) for the owner
    /// to hand in a freshly connected socket via ReplaceSocket(), then
    /// redo the kHello handshake and resume from the replica's cursor.
    /// The lag gauge keeps counting across the gap — acked_replayed_lsn
    /// holds the last pre-disconnect ack while durable bytes grow.
    bool reconnect = false;
    uint64_t reconnect_backoff_initial_ms = 10;
    uint64_t reconnect_backoff_max_ms = 1000;
    /// Total time Serve waits for a replacement before giving up
    /// (0 = wait until Stop).
    uint64_t reconnect_wait_budget_ms = 10'000;
  };

  /// `log` must outlive the shipper. `fd` is owned by the caller.
  SegmentShipper(log::LogManager* log, int fd, Options opts);
  SegmentShipper(log::LogManager* log, int fd)
      : SegmentShipper(log, fd, Options()) {}
  ~SegmentShipper();

  SegmentShipper(const SegmentShipper&) = delete;
  SegmentShipper& operator=(const SegmentShipper&) = delete;

  /// Spawns a thread running Serve().
  void Start();
  /// Stops the serve loop (idempotent) and joins the thread if Start()ed.
  /// Shuts the socket down for writing so the replica sees EOF.
  void Stop();
  /// The serve loop: blocks on the replica's kHello, then ships until the
  /// peer disconnects or Stop(). Also callable directly (no Start) for
  /// single-threaded tests. A peer disconnect is a clean Ok return.
  Status Serve();
  /// Serve()'s result once it has exited (Ok while running).
  Status status() const;

  /// Hands the shipper a freshly connected replacement socket (owned by
  /// the caller, like the constructor's fd). With Options::reconnect the
  /// serve loop picks it up after the current connection dies; without,
  /// the call is remembered but never consumed. Thread-safe.
  void ReplaceSocket(int fd);

  // --- observability --------------------------------------------------------

  uint64_t shipped_offset() const {
    return shipped_offset_.load(std::memory_order_relaxed);
  }
  uint64_t segments_shipped() const {
    return segments_shipped_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_streamed() const {
    return bytes_streamed_.load(std::memory_order_relaxed);
  }
  /// Replica's last acked replayed LSN (0 before the first ack).
  uint64_t acked_replayed_lsn() const {
    return acked_replayed_.load(std::memory_order_relaxed);
  }
  /// Durable bytes the replica has not yet REPLAYED (the primary-side
  /// replication lag: ships + applies still in flight).
  uint64_t lag_bytes() const;
  /// Completed reconnects (replacement socket adopted + handshake redone).
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }

  /// Registers the shipper's counters as a source on `reg` (typically the
  /// primary StorageManager's registry): segments shipped, bytes
  /// streamed, and the replayed-LSN lag gauge. The shipper must outlive
  /// the registry's last Snapshot.
  void RegisterMetrics(obs::MetricsRegistry* reg);

 private:
  /// Drains pending control frames; blocks up to `timeout_ms` for the
  /// first one. False when the peer disconnected.
  bool DrainControl(int timeout_ms, bool* rewound);
  /// Ships the next chunk at cursor_; false with st unset when there is
  /// nothing new to ship.
  Status ShipNext(bool* progressed);
  /// One connection's lifetime: kHello handshake, then ship until the
  /// peer disconnects or Stop. (The pre-reconnect Serve body.)
  Status ServeSession();
  /// Parks until ReplaceSocket hands in a new fd (adopted into fd_),
  /// Stop, or the wait budget runs out; true only when a socket was
  /// adopted.
  bool WaitForReplacementFd();

  log::LogManager* log_;
  int fd_;  ///< Serve-thread reads; swapped/shut down under fd_mutex_.
  Options opts_;

  std::mutex fd_mutex_;
  std::condition_variable fd_cv_;
  int pending_fd_ = -1;  ///< Replacement socket not yet adopted.
  std::atomic<uint64_t> reconnects_{0};

  std::thread thread_;
  std::atomic<bool> stop_{false};
  uint64_t cursor_ = 0;  ///< Serve-thread only: next offset to ship.

  std::atomic<uint64_t> shipped_offset_{0};
  std::atomic<uint64_t> segments_shipped_{0};
  std::atomic<uint64_t> bytes_streamed_{0};
  std::atomic<uint64_t> acked_replayed_{0};

  mutable std::mutex status_mutex_;
  Status status_ = Status::Ok();
};

}  // namespace shoremt::repl

#endif  // SHOREMT_REPL_SHIPPER_H_
