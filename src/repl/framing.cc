#include "repl/framing.h"

#include <poll.h>
#include <sys/socket.h>

#include <cerrno>
#include <cstring>

namespace shoremt::repl {

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

bool GetU64(std::span<const uint8_t> data, size_t* pos, uint64_t* v) {
  if (*pos + 8 > data.size()) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(data[*pos + i]) << (8 * i);
  }
  *pos += 8;
  *v = out;
  return true;
}

namespace {

/// Writes all of `data` (send with MSG_NOSIGNAL so a dead peer is an
/// error, not a process-killing SIGPIPE).
Status SendAll(int fd, const uint8_t* data, size_t len) {
  while (len > 0) {
    ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("repl send: ") + strerror(errno));
    }
    if (n == 0) return Status::IOError("repl send: peer closed");
    data += n;
    len -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

/// Reads exactly `len` bytes. `*eof_at_start` reports a clean EOF before
/// the first byte (frame boundary).
Status RecvAll(int fd, uint8_t* data, size_t len, bool* eof_at_start) {
  *eof_at_start = false;
  size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("repl recv: ") + strerror(errno));
    }
    if (n == 0) {
      if (got == 0) {
        *eof_at_start = true;
        return Status::NotFound("peer closed");
      }
      return Status::Corruption("connection closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Status WriteFrame(int fd, FrameType type, std::span<const uint8_t> payload) {
  uint64_t head[0];
  (void)head;
  return WriteFrame(fd, type, std::span<const uint64_t>(), payload);
}

Status WriteFrame(int fd, FrameType type, std::span<const uint64_t> head,
                  std::span<const uint8_t> bytes) {
  size_t payload_len = head.size() * 8 + bytes.size();
  if (payload_len > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload too large");
  }
  std::vector<uint8_t> buf;
  buf.reserve(5 + head.size() * 8);
  uint32_t len = static_cast<uint32_t>(1 + payload_len);
  const auto* lp = reinterpret_cast<const uint8_t*>(&len);
  buf.insert(buf.end(), lp, lp + 4);
  buf.push_back(static_cast<uint8_t>(type));
  for (uint64_t v : head) PutU64(&buf, v);
  SHOREMT_RETURN_NOT_OK(SendAll(fd, buf.data(), buf.size()));
  if (!bytes.empty()) {
    SHOREMT_RETURN_NOT_OK(SendAll(fd, bytes.data(), bytes.size()));
  }
  return Status::Ok();
}

Status ReadFrame(int fd, Frame* out) {
  uint8_t lenbuf[4];
  bool eof;
  Status st = RecvAll(fd, lenbuf, 4, &eof);
  if (!st.ok()) return st;  // NotFound on clean EOF.
  uint32_t len;
  std::memcpy(&len, lenbuf, 4);
  if (len < 1 || len > 1 + kMaxFramePayload) {
    return Status::Corruption("bad frame length prefix");
  }
  uint8_t type;
  SHOREMT_RETURN_NOT_OK(RecvAll(fd, &type, 1, &eof));
  if (eof) return Status::Corruption("connection closed mid-frame");
  if (type < static_cast<uint8_t>(FrameType::kHello) ||
      type > static_cast<uint8_t>(FrameType::kResend)) {
    return Status::Corruption("unknown frame type");
  }
  out->type = static_cast<FrameType>(type);
  out->payload.resize(len - 1);
  if (len > 1) {
    SHOREMT_RETURN_NOT_OK(RecvAll(fd, out->payload.data(), len - 1, &eof));
    if (eof) return Status::Corruption("connection closed mid-frame");
  }
  return Status::Ok();
}

bool WaitReadable(int fd, int timeout_ms) {
  struct pollfd p;
  p.fd = fd;
  p.events = POLLIN;
  p.revents = 0;
  int r = ::poll(&p, 1, timeout_ms);
  return r > 0;
}

Status MakeSocketPair(int fds[2]) {
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::IOError(std::string("socketpair: ") + strerror(errno));
  }
  return Status::Ok();
}

}  // namespace shoremt::repl
