#include "repl/replica.h"

#include <sys/socket.h>

#include <cstring>
#include <utility>

#include "log/log_record.h"
#include "obs/metrics.h"
#include "repl/framing.h"

namespace shoremt::repl {

Replica::Replica(io::Volume* volume, log::LogStorage* storage, Options opts)
    : volume_(volume), storage_(storage), opts_(std::move(opts)) {}

Replica::~Replica() {
  Stop();
  // Workers borrow sm_: tear the pool down first.
  std::lock_guard<std::mutex> lk(pool_mutex_);
  pool_.reset();
}

void Replica::SetError(Status st) {
  std::lock_guard<std::mutex> lk(error_mutex_);
  if (!has_error_.load(std::memory_order_relaxed)) {
    error_ = std::move(st);
    has_error_.store(true, std::memory_order_release);
  }
}

Status Replica::error() const {
  if (!has_error_.load(std::memory_order_acquire)) return Status::Ok();
  std::lock_guard<std::mutex> lk(error_mutex_);
  return error_;
}

uint64_t Replica::replayed_lsn() const {
  std::lock_guard<std::mutex> lk(pool_mutex_);
  return pool_ != nullptr ? pool_->replayed_lsn() : 0;
}

bool Replica::WaitReplayed(uint64_t lsn, int timeout_ms) {
  ReplayPool* pool;
  {
    std::lock_guard<std::mutex> lk(pool_mutex_);
    pool = pool_.get();
  }
  return pool != nullptr && pool->WaitReplayed(lsn, timeout_ms);
}

bool Replica::WaitStreamEnd(int timeout_ms) {
  std::unique_lock<std::mutex> lk(eof_mutex_);
  return eof_cv_.wait_for(lk, std::chrono::milliseconds(timeout_ms), [&] {
    return eof_.load(std::memory_order_acquire);
  });
}

Status Replica::Start(int fd) {
  fd_ = fd;
  sm::StorageOptions o = opts_.storage;
  o.open_mode = sm::OpenMode::kReplicaAttach;
  // The replica applies through the replay pool; it must never archive or
  // recycle the log it is receiving.
  o.log.archive_dir.clear();
  SHOREMT_ASSIGN_OR_RETURN(sm_,
                           sm::StorageManager::Open(o, volume_, storage_));
  {
    std::lock_guard<std::mutex> lk(pool_mutex_);
    pool_ = std::make_unique<ReplayPool>(sm_.get(), opts_.replay_workers,
                                         ReplayPool::Mode::kDeferred);
  }
  // A previously received prefix (reconnect over a fresh volume) is
  // replayed before asking for more — the kHello offset promises the
  // primary we already hold everything below it.
  parse_pos_ = 0;
  SHOREMT_RETURN_NOT_OK(ProcessNewBytes());
  pool_->PublishBarrier(parse_pos_ + 1);

  uint64_t hello[1] = {storage_->size()};
  SHOREMT_RETURN_NOT_OK(
      WriteFrame(fd_, FrameType::kHello, hello, {}));
  thread_ = std::thread([this] {
    Status st = ReceiveLoop();
    if (!st.ok()) SetError(st);
    {
      std::lock_guard<std::mutex> lk(eof_mutex_);
      eof_.store(true, std::memory_order_release);
    }
    eof_cv_.notify_all();
  });
  return Status::Ok();
}

void Replica::Stop() {
  if (!stop_.exchange(true) && fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
}

Status Replica::ReceiveLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    Frame f;
    Status st = ReadFrame(fd_, &f);
    if (st.IsNotFound()) return Status::Ok();  // primary closed (or died)
    if (!st.ok()) {
      return stop_.load(std::memory_order_acquire) ? Status::Ok() : st;
    }
    size_t pos = 0;
    size_t n = 0;
    bool accepted = false;
    switch (f.type) {
      case FrameType::kSegment: {
        uint64_t chunk_start = 0, seg_base = 0, seg_cap = 0;
        bool parsed = GetU64(f.payload, &pos, &chunk_start) &&
                      GetU64(f.payload, &pos, &seg_base) &&
                      GetU64(f.payload, &pos, &seg_cap);
        n = parsed ? f.payload.size() - pos : 0;
        // The geometry must close the sealed segment exactly: a torn or
        // truncated shipment (n short), a stale shipment (chunk_start
        // behind us) or a gap (chunk_start ahead) all fail here and are
        // re-requested from our true position.
        if (parsed && n > 0 && n <= seg_cap &&
            chunk_start == storage_->size() &&
            chunk_start + n == seg_base + seg_cap) {
          SHOREMT_RETURN_NOT_OK(storage_->Append(
              std::span<const uint8_t>(f.payload.data() + pos, n)));
          accepted = true;
        }
        break;
      }
      case FrameType::kTailDelta: {
        uint64_t chunk_start = 0;
        bool parsed = GetU64(f.payload, &pos, &chunk_start);
        n = parsed ? f.payload.size() - pos : 0;
        if (parsed && n > 0 && chunk_start == storage_->size()) {
          SHOREMT_RETURN_NOT_OK(storage_->Append(
              std::span<const uint8_t>(f.payload.data() + pos, n)));
          accepted = true;
        }
        break;
      }
      default:
        continue;  // nothing else flows this way; ignore
    }
    if (!accepted) {
      uint64_t resend[1] = {storage_->size()};
      SHOREMT_RETURN_NOT_OK(
          WriteFrame(fd_, FrameType::kResend, resend, {}));
      continue;
    }
    frames_applied_.fetch_add(1, std::memory_order_relaxed);
    bytes_streamed_.fetch_add(n, std::memory_order_relaxed);
    SHOREMT_RETURN_NOT_OK(ProcessNewBytes());
    pool_->PublishBarrier(parse_pos_ + 1);
    uint64_t ack[2] = {storage_->size(), pool_->replayed_lsn()};
    // Best effort: a vanished primary is discovered by the next read.
    (void)WriteFrame(fd_, FrameType::kAck, ack, {});
  }
  return Status::Ok();
}

Status Replica::ProcessNewBytes() {
  uint64_t sz = storage_->size();
  std::vector<uint8_t> buf;
  while (parse_pos_ + 4 <= sz) {
    SHOREMT_RETURN_NOT_OK(storage_->Read(parse_pos_, 4, &buf));
    uint32_t len;
    std::memcpy(&len, buf.data(), 4);
    if (len < log::kLogRecordHeaderSize) {
      return Status::Corruption("replica: bad record length at offset " +
                                std::to_string(parse_pos_));
    }
    if (parse_pos_ + len > sz) break;  // incomplete tail; wait for more
    SHOREMT_RETURN_NOT_OK(storage_->Read(parse_pos_, len, &buf));
    log::LogRecord rec;
    size_t consumed;
    SHOREMT_RETURN_NOT_OK(log::DeserializeLogRecord(buf, &rec, &consumed));
    rec.lsn = Lsn{parse_pos_ + 1};
    Lsn end{parse_pos_ + consumed + 1};

    using log::LogRecordType;
    switch (rec.type) {
      case LogRecordType::kCheckpoint:
      case LogRecordType::kCreateStore:
      case LogRecordType::kAllocPage:
      case LogRecordType::kCatalog:
        // Metadata is idempotent and ordered only against itself; apply
        // inline so structure records the pool applies next can resolve
        // their stores/pages.
        SHOREMT_RETURN_NOT_OK(sm_->ApplyMetadata(rec));
        break;
      case LogRecordType::kCommit: {
        // The commit gate opens: release this transaction's buffered heap
        // records to the partition queues, in their original log order.
        auto it = pending_.find(rec.txn);
        if (it != pending_.end()) {
          for (auto& pr : it->second) {
            pool_->Dispatch(std::move(pr.first), pr.second);
          }
          pending_.erase(it);
        }
        break;
      }
      case LogRecordType::kAbort:
        pending_.erase(rec.txn);  // never applied, nothing to undo
        break;
      case LogRecordType::kPageInsert:
      case LogRecordType::kPageUpdate:
      case LogRecordType::kPageDelete:
        pending_[rec.txn].emplace_back(std::move(rec), end);
        break;
      case LogRecordType::kClr: {
        // A CLR compensates its transaction's own earlier record: heap
        // CLRs gate with the transaction like the records they undo;
        // B-tree CLRs are structural and apply immediately.
        auto embedded = static_cast<LogRecordType>(rec.page_type);
        if (embedded == LogRecordType::kPageInsert ||
            embedded == LogRecordType::kPageUpdate ||
            embedded == LogRecordType::kPageDelete) {
          pending_[rec.txn].emplace_back(std::move(rec), end);
        } else {
          pool_->Dispatch(std::move(rec), end);
        }
        break;
      }
      case LogRecordType::kPageFormat:
      case LogRecordType::kBtreeInsert:
      case LogRecordType::kBtreeDelete:
      case LogRecordType::kBtreeSetContent:
        // Structure is redo-only on the primary and later transactions
        // may build on it before its creator commits: apply immediately,
        // in log order.
        pool_->Dispatch(std::move(rec), end);
        break;
      default:
        break;  // kNoop
    }
    parse_pos_ += consumed;
  }
  return Status::Ok();
}

Status Replica::Promote() {
  Stop();
  {
    std::lock_guard<std::mutex> lk(pool_mutex_);
    if (pool_ != nullptr) {
      Status st = pool_->Drain();
      if (!st.ok()) SetError(st);
      pool_.reset();
    }
  }
  if (has_error_.load(std::memory_order_acquire)) return error();

  // Flush every replayed page to the volume and release the attach-mode
  // manager, then cut the received log at the last complete record: an
  // incomplete tail is exactly a torn write, and promotion must present
  // recovery with the same clean prefix a local crash would.
  sm_.reset();
  SHOREMT_RETURN_NOT_OK(storage_->TruncateTo(parse_pos_));

  sm::StorageOptions o = opts_.storage;
  o.open_mode = sm::OpenMode::kPromote;
  SHOREMT_ASSIGN_OR_RETURN(sm_,
                           sm::StorageManager::Open(o, volume_, storage_));
  promoted_ = true;
  return Status::Ok();
}

void Replica::RegisterMetrics() {
  sm_->metrics()->AddSource(
      [this](std::array<uint64_t, obs::kMetricCount>* totals) {
        using obs::Metric;
        (*totals)[static_cast<size_t>(Metric::kReplSegmentsApplied)] +=
            frames_applied();
        (*totals)[static_cast<size_t>(Metric::kReplBytesStreamed)] +=
            bytes_streamed();
        uint64_t batches = 0;
        uint64_t replayed = 0;
        {
          std::lock_guard<std::mutex> lk(pool_mutex_);
          if (pool_ != nullptr) {
            batches = pool_->batches();
            replayed = pool_->replayed_lsn();
          }
        }
        (*totals)[static_cast<size_t>(Metric::kReplReplayBatches)] += batches;
        uint64_t received = storage_->size();
        // Both sides of the subtraction are log positions: received bytes
        // vs the horizon's byte offset (LSN - 1).
        uint64_t applied_off = replayed > 0 ? replayed - 1 : 0;
        (*totals)[static_cast<size_t>(Metric::kReplLagBytes)] +=
            received > applied_off ? received - applied_off : 0;
      });
}

}  // namespace shoremt::repl
